// Benchmarks regenerating the paper's evaluation artifacts:
//
//   - Table 1 (the only data table): per-circuit min-area vs LAC-retiming
//     — BenchmarkTable1MinArea* / BenchmarkTable1LAC* time the two
//     retiming modes on planned circuits; cmd/table1 prints the full
//     table with all columns.
//   - Figure 1 (the planning flow): BenchmarkFigure1Flow times one
//     complete planning pass (partition → floorplan → route → repeaters →
//     retiming).
//   - Figure 2 (the tile graph): BenchmarkFigure2TileGraph times tile-
//     graph construction from a floorplan.
//   - §5 observations: BenchmarkAlphaSweep (the alpha ablation),
//     BenchmarkMinPeriod and BenchmarkWDMatrices (the retiming-engine
//     costs that dominate planning runtime).
package lacret

import (
	"testing"

	"lacret/internal/bench89"
	"lacret/internal/core"
	"lacret/internal/experiments"
	"lacret/internal/plan"
	"lacret/internal/tile"
)

// planned caches one planning result per circuit for the retiming benches.
var planned = map[string]*plan.Result{}

func plannedCircuit(b *testing.B, name string) *plan.Result {
	b.Helper()
	if r, ok := planned[name]; ok {
		return r
	}
	p, ok := bench89.ByName(name)
	if !ok {
		b.Fatalf("unknown circuit %s", name)
	}
	nl, err := bench89.Generate(p)
	if err != nil {
		b.Fatal(err)
	}
	r, err := plan.Plan(nl, plan.Config{Seed: p.Seed, Whitespace: 0.13,
		LAC: core.Options{Alpha: 0.2, Nmax: 5, MaxIters: 20}})
	if err != nil {
		b.Fatal(err)
	}
	planned[name] = r
	return r
}

func benchMinArea(b *testing.B, name string) {
	r := plannedCircuit(b, name)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Problem.MinAreaBaseline(); err != nil {
			b.Fatal(err)
		}
	}
}

func benchLAC(b *testing.B, name string) {
	r := plannedCircuit(b, name)
	opt := core.Options{Alpha: 0.2, Nmax: 5, MaxIters: 20}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Problem.Solve(opt); err != nil {
			b.Fatal(err)
		}
	}
}

// Table 1: min-area retiming column (Texec) per circuit.
func BenchmarkTable1MinAreaS386(b *testing.B) { benchMinArea(b, "s386") }
func BenchmarkTable1MinAreaS400(b *testing.B) { benchMinArea(b, "s400") }
func BenchmarkTable1MinAreaS526(b *testing.B) { benchMinArea(b, "s526") }
func BenchmarkTable1MinAreaS953(b *testing.B) { benchMinArea(b, "s953") }

// Table 1: LAC-retiming column (Texec) per circuit.
func BenchmarkTable1LACS386(b *testing.B) { benchLAC(b, "s386") }
func BenchmarkTable1LACS400(b *testing.B) { benchLAC(b, "s400") }
func BenchmarkTable1LACS526(b *testing.B) { benchLAC(b, "s526") }
func BenchmarkTable1LACS953(b *testing.B) { benchLAC(b, "s953") }

// Warm vs cold incremental LAC engine: the same LAC loop with rounds ≥ 2
// warm-starting from the previous round's solver state (default) versus
// every round re-building the constraint network, re-checking feasibility
// and solving from zero flow (Options.ColdSolves, the pre-incremental
// behavior). The per-round gap is larger than the whole-solve gap shown
// here, since round 1 is cold either way; EXPERIMENTS.md records the
// rounds ≥ 2 comparison.
func benchLACEngine(b *testing.B, name string, cold bool) {
	r := plannedCircuit(b, name)
	opt := core.Options{Alpha: 0.2, Nmax: 5, MaxIters: 20, ColdSolves: cold}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Problem.Solve(opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLACEngineWarmS526(b *testing.B) { benchLACEngine(b, "s526", false) }
func BenchmarkLACEngineColdS526(b *testing.B) { benchLACEngine(b, "s526", true) }
func BenchmarkLACEngineWarmS953(b *testing.B) { benchLACEngine(b, "s953", false) }
func BenchmarkLACEngineColdS953(b *testing.B) { benchLACEngine(b, "s953", true) }

// Figure 1: one complete interconnect-planning pass.
func BenchmarkFigure1Flow(b *testing.B) {
	p, _ := bench89.ByName("s400")
	for i := 0; i < b.N; i++ {
		nl, err := bench89.Generate(p)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := plan.Plan(nl, plan.Config{Seed: p.Seed, Whitespace: 0.13}); err != nil {
			b.Fatal(err)
		}
	}
}

// Figure 2: tile-graph construction from a floorplan.
func BenchmarkFigure2TileGraph(b *testing.B) {
	r := plannedCircuit(b, "s953")
	hard := make([]bool, r.NumBlocks)
	unitArea := make([]float64, r.NumBlocks)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tile.Build(r.Placement, hard, unitArea, tile.Params{}); err != nil {
			b.Fatal(err)
		}
	}
}

// §4.2: the alpha ablation behind "around 0.2 typically produces the best
// results".
func BenchmarkAlphaSweep(b *testing.B) {
	r := plannedCircuit(b, "s526")
	alphas := []float64{0.1, 0.2, 0.4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, a := range alphas {
			if _, err := r.Problem.Solve(core.Options{Alpha: a, Nmax: 3, MaxIters: 8}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// Retiming-engine costs (the paper's §4.2 complexity discussion: clock
// constraints generated once; min-cost flow per weighted round).
func BenchmarkWDMatrices(b *testing.B) {
	r := plannedCircuit(b, "s953")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Graph.WDMatrices()
	}
}

// Sequential vs parallel W/D construction (the same rows, one worker vs
// GOMAXPROCS workers).
func BenchmarkWDMatricesSequential(b *testing.B) {
	r := plannedCircuit(b, "s953")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Graph.WDMatricesParallel(1)
	}
}

func BenchmarkWDMatricesParallel(b *testing.B) {
	r := plannedCircuit(b, "s953")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Graph.WDMatricesParallel(0)
	}
}

// Full Table 1 driver over the three smallest circuits, sequential vs the
// worker pool.
func benchTable1(b *testing.B, jobs int) {
	circuits := []string{"s386", "s400", "s526"}
	cfg := experiments.DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, _ := experiments.Table1Run(cfg, circuits, experiments.Table1Opts{Jobs: jobs})
		for _, r := range rows {
			if r.Err != "" {
				b.Fatalf("%s: %s", r.Circuit, r.Err)
			}
		}
	}
}

func BenchmarkTable1Sequential(b *testing.B) { benchTable1(b, 1) }
func BenchmarkTable1Parallel(b *testing.B)   { benchTable1(b, 0) }

func BenchmarkMinPeriod(b *testing.B) {
	r := plannedCircuit(b, "s526")
	wd := r.Graph.WDMatrices()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := r.Graph.MinPeriodWD(1e-3, wd); err != nil {
			b.Fatal(err)
		}
	}
}

// Extension ablation: fanout-sharing-aware min-area retiming (the
// Leiserson–Saxe mirror construction) vs the paper's edge-independent
// model.
func BenchmarkSharingModel(b *testing.B) {
	r := plannedCircuit(b, "s386")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Graph.MinAreaShared(r.Tclk); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkConstraintGeneration(b *testing.B) {
	r := plannedCircuit(b, "s953")
	wd := r.Graph.WDMatrices()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Graph.BuildConstraintsWD(r.Tclk, wd); err != nil {
			b.Fatal(err)
		}
	}
}
