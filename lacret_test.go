package lacret

import (
	"bytes"
	"strings"
	"testing"
)

func TestFacadeEndToEnd(t *testing.T) {
	nl, err := GenerateCircuit(CircuitParams{
		Name: "facade", Gates: 90, DFFs: 10, Inputs: 5, Outputs: 5,
		Depth: 8, MaxFanin: 4, Seed: 11, FeedbackDepth: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Plan(nl, Config{Seed: 11, FloorplanMoves: 3000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tclk <= 0 || res.LAC == nil || res.MinArea == nil {
		t.Fatalf("incomplete result: %+v", res)
	}
	if res.LAC.NFOA > res.MinArea.NFOA {
		t.Fatalf("LAC worse than min-area")
	}
	if got := CountInterconnectFFs(res.LAC.Retimed); got != res.LACNFN {
		t.Fatalf("NFN mismatch: %d vs %d", got, res.LACNFN)
	}
}

func TestFacadeBenchRoundTrip(t *testing.T) {
	nl := NewNetlist("rt")
	a, err := nl.AddInput("a")
	if err != nil {
		t.Fatal(err)
	}
	g, _ := nl.AddGate("g", "NOT", a)
	f, _ := nl.AddDFF("f", g)
	nl.MarkOutput(f)
	var buf bytes.Buffer
	if err := WriteBench(&buf, nl); err != nil {
		t.Fatal(err)
	}
	back, err := ParseBench("rt", strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Stats() != nl.Stats() {
		t.Fatalf("round trip changed stats")
	}
}

func TestFacadeCatalog(t *testing.T) {
	cat := Catalog()
	if len(cat) != 11 {
		t.Fatalf("catalog has %d circuits", len(cat))
	}
	p, ok := CircuitByName("s5378")
	if !ok || p.Gates != 2779 {
		t.Fatalf("s5378 lookup: %+v %v", p, ok)
	}
	if _, ok := CircuitByName("bogus"); ok {
		t.Fatal("phantom circuit")
	}
}

func TestFacadeTech(t *testing.T) {
	tc := DefaultTech()
	if err := tc.Validate(); err != nil {
		t.Fatal(err)
	}
	if tc.SegmentDelay(1000) <= 0 {
		t.Fatal("segment delay")
	}
}

func TestFacadeKinds(t *testing.T) {
	if KindUnit.String() != "unit" || KindWire.String() != "wire" || KindPort.String() != "port" {
		t.Fatal("kind aliases broken")
	}
}

func TestFacadeAnalysisHelpers(t *testing.T) {
	nl, err := GenerateCircuit(CircuitParams{
		Name: "fh", Gates: 60, DFFs: 8, Inputs: 4, Outputs: 4,
		Depth: 6, MaxFanin: 3, Seed: 29, FeedbackDepth: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Plan(nl, Config{Seed: 29, FloorplanMoves: 1500})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := AnalyzeTiming(res.LAC.Retimed, res.Tclk)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Met() {
		t.Fatalf("LAC result misses Tclk: WNS=%g", rep.WNS)
	}
	if FormatCriticalPath(res.LAC.Retimed, rep) == "" {
		t.Fatal("empty critical path formatting")
	}
	if mcrv := MaxCycleRatio(res.Graph); mcrv <= 0 || mcrv > res.Tmin+1e-6 {
		t.Fatalf("cycle ratio %g vs Tmin %g", mcrv, res.Tmin)
	}
	checks, err := Verify(res)
	if err != nil {
		t.Fatal(err)
	}
	if len(checks) < 6 {
		t.Fatalf("checks: %v", checks)
	}
	svg := RenderSVG(res)
	if !strings.Contains(svg, "<svg") || !strings.Contains(svg, "</svg>") {
		t.Fatal("bad SVG")
	}
}

func TestFacadeSharedMinArea(t *testing.T) {
	nl, err := GenerateCircuit(CircuitParams{
		Name: "sh", Gates: 40, DFFs: 6, Inputs: 3, Outputs: 3,
		Depth: 5, MaxFanin: 3, Seed: 31, FeedbackDepth: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Plan(nl, Config{Seed: 31, FloorplanMoves: 1000})
	if err != nil {
		t.Fatal(err)
	}
	shared, err := res.Graph.MinAreaShared(res.Tclk)
	if err != nil {
		t.Fatal(err)
	}
	if shared.SharedRegisters > shared.EdgeRegisters {
		t.Fatalf("shared %d > edge %d", shared.SharedRegisters, shared.EdgeRegisters)
	}
}
