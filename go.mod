module lacret

go 1.22
