// Quickstart: plan a small synthetic circuit end to end and print what the
// planner did at every stage of the paper's flow (Figure 1): partition →
// floorplan → global routing → repeater planning → retiming & flip-flop
// placement.
package main

import (
	"fmt"
	"log"

	"lacret"
)

func main() {
	// A small ISCAS89-class circuit: 120 functional units, 12 flip-flops.
	nl, err := lacret.GenerateCircuit(lacret.CircuitParams{
		Name: "quickstart", Gates: 120, DFFs: 12, Inputs: 6, Outputs: 6,
		Depth: 10, MaxFanin: 4, Seed: 7, FeedbackDepth: 0.5,
	})
	if err != nil {
		log.Fatal(err)
	}
	s := nl.Stats()
	fmt.Printf("circuit %s: %d gates, %d flip-flops, %d inputs, %d outputs\n",
		nl.Name, s.Gates, s.DFFs, s.Inputs, s.Outputs)

	// Run the full interconnect-planning flow with default technology
	// (180nm-class RT units) and the paper's parameters (alpha=0.2,
	// Tclk at 20% slack between Tmin and Tinit).
	res, err := lacret.Plan(nl, lacret.Config{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n-- physical planning --\n")
	fmt.Printf("blocks: %d soft blocks on a %.0f x %.0f um chip (%dx%d tiles)\n",
		res.NumBlocks, res.Placement.ChipW, res.Placement.ChipH,
		res.Grid.Rows, res.Grid.Cols)
	fmt.Printf("routing: %.0f um over %d inter-block nets; %d repeaters -> %d interconnect units\n",
		res.RouteWirelength, res.InterBlockNets, res.RepeaterCount, res.WireUnits)

	fmt.Printf("\n-- timing --\n")
	fmt.Printf("initial period Tinit  = %.3f ns (as floorplanned and routed)\n", res.Tinit)
	fmt.Printf("minimum period Tmin   = %.3f ns (min-period retiming)\n", res.Tmin)
	fmt.Printf("target period  Tclk   = %.3f ns (Tmin + 20%% of the gap)\n", res.Tclk)

	fmt.Printf("\n-- retiming & flip-flop placement at Tclk --\n")
	fmt.Printf("min-area retiming: %4d FFs, %3d in wires, %3d violate tile capacities\n",
		res.MinArea.NF, res.MinAreaNFN, res.MinArea.NFOA)
	fmt.Printf("LAC-retiming:      %4d FFs, %3d in wires, %3d violate tile capacities (%d weighted rounds)\n",
		res.LAC.NF, res.LACNFN, res.LAC.NFOA, res.LAC.NWR)
	if res.MinArea.NFOA > 0 {
		fmt.Printf("N_FOA decrease: %.0f%%\n", res.DecreasePct())
	}

	fmt.Printf("\n-- tile map (Figure 2; '.' channel/dead space, letters = soft blocks) --\n")
	fmt.Print(res.Grid.Render())
}
