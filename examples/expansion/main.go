// Expansion: the paper's second planning iteration. When LAC-retiming
// cannot remove all area violations (blocks were sized from the original
// netlist, before any physical information existed), the floorplanning
// stage allocates more space to the congested soft blocks and channels,
// and interconnect planning runs again at the *same* target period. The
// paper removes all remaining violations this way for every circuit except
// s1269, where the carried-over Tclk becomes infeasible after the floorplan
// changes drastically.
package main

import (
	"errors"
	"fmt"
	"log"

	"lacret"
)

func main() {
	p, ok := lacret.CircuitByName("s1269")
	if !ok {
		log.Fatal("catalog circuit s1269 missing")
	}
	nl, err := lacret.GenerateCircuit(p)
	if err != nil {
		log.Fatal(err)
	}

	// A tight whitespace budget forces first-iteration violations.
	cfg := lacret.Config{Seed: p.Seed, Whitespace: 0.10}
	iters, err := lacret.PlanIterations(nl, cfg, 3)
	if err != nil {
		log.Fatal(err)
	}

	for i, it := range iters {
		fmt.Printf("=== planning iteration %d ===\n", i+1)
		if it.Err != nil {
			var inf lacret.ErrTclkInfeasible
			if errors.As(it.Err, &inf) {
				fmt.Printf("target period %.3f ns became infeasible after expansion (Tmin now %.3f ns)\n",
					inf.Tclk, inf.Tmin)
				fmt.Println("-> the paper observes exactly this on s1269: when the required")
				fmt.Println("   expansion is large, the floorplan changes drastically, which is")
				fmt.Println("   why minimizing violations in the first pass matters.")
			} else {
				fmt.Printf("failed: %v\n", it.Err)
			}
			continue
		}
		r := it.Result
		fmt.Printf("chip %.0f x %.0f um, Tclk=%.3f ns\n", r.Placement.ChipW, r.Placement.ChipH, r.Tclk)
		fmt.Printf("min-area N_FOA=%d   LAC N_FOA=%d (N_wr=%d)\n",
			r.MinArea.NFOA, r.LAC.NFOA, r.LAC.NWR)
		if r.LAC.NFOA == 0 {
			fmt.Println("-> all local area constraints met; planning converged.")
		} else {
			fmt.Printf("-> %d flip-flops still violate; expanding %d congested tiles and replanning.\n",
				r.LAC.NFOA, len(r.LAC.Violated))
		}
	}
}
