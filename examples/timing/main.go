// Timing: inspect *why* the planned design runs at the period it does.
// After planning, this example runs static timing analysis on the
// LAC-retimed design, prints the critical path (showing functional units
// and interconnect units interleaved — wire delay is a first-class citizen
// of the paper's formulation), compares Tmin against the theoretical
// iteration bound (max cycle ratio), and runs the full independent
// verification of every reported number.
package main

import (
	"fmt"
	"log"

	"lacret"
)

func main() {
	p, ok := lacret.CircuitByName("s526")
	if !ok {
		log.Fatal("catalog circuit s526 missing")
	}
	nl, err := lacret.GenerateCircuit(p)
	if err != nil {
		log.Fatal(err)
	}
	res, err := lacret.Plan(nl, lacret.Config{Seed: p.Seed})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s planned: Tinit=%.3f  Tmin=%.3f  Tclk=%.3f ns\n",
		nl.Name, res.Tinit, res.Tmin, res.Tclk)

	// Iteration bound: no retiming can beat the worst cycle's
	// delay-to-register ratio.
	bound := lacret.MaxCycleRatio(res.Graph)
	fmt.Printf("iteration bound (max cycle ratio): %.3f ns — Tmin sits %.1f%% above it\n",
		bound, 100*(res.Tmin-bound)/bound)

	// STA on the LAC-retimed design at the target period.
	rep, err := lacret.AnalyzeTiming(res.LAC.Retimed, res.Tclk)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nSTA at Tclk: worst slack %.3f ns (met: %v)\n", rep.WNS, rep.Met())
	fmt.Println("critical path (units and wires interleaved):")
	fmt.Print(lacret.FormatCriticalPath(res.LAC.Retimed, rep))

	// Count wire units on the critical path: the paper's premise is that
	// interconnect delay dominates and must be planned, not ignored.
	wires := 0
	for _, v := range rep.Critical {
		if res.LAC.Retimed.Kind(v) == lacret.KindWire {
			wires++
		}
	}
	fmt.Printf("-> %d of %d critical-path stages are interconnect segments\n",
		wires, len(rep.Critical))

	// Full independent verification of the planning result.
	checks, err := lacret.Verify(res)
	if err != nil {
		log.Fatalf("verification failed: %v", err)
	}
	fmt.Printf("\nverified %d invariants:\n", len(checks))
	for _, c := range checks {
		fmt.Println("  ✓", c)
	}
}
