// Ablation: sensitivity of LAC-retiming to the weight-adaptation
// coefficient alpha. The paper reports that "a value of around 0.2
// typically produces the best results"; this example plans one circuit and
// re-solves the LAC problem across alpha values, printing the achieved
// violation count and the number of weighted min-area rounds.
package main

import (
	"fmt"
	"log"

	"lacret"
)

func main() {
	p, ok := lacret.CircuitByName("s953")
	if !ok {
		log.Fatal("catalog circuit s953 missing")
	}
	nl, err := lacret.GenerateCircuit(p)
	if err != nil {
		log.Fatal(err)
	}
	// Starve the whitespace slightly so min-area retiming violates and the
	// alpha choice matters.
	res, err := lacret.Plan(nl, lacret.Config{Seed: p.Seed, Whitespace: 0.12})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s at Tclk=%.2f ns: min-area N_FOA=%d, N_F=%d\n\n",
		nl.Name, res.Tclk, res.MinArea.NFOA, res.MinArea.NF)

	fmt.Printf("%8s %8s %6s\n", "alpha", "N_FOA", "N_wr")
	for _, alpha := range []float64{0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0} {
		lac, err := res.Problem.Solve(lacret.LACOptions{
			Alpha: alpha, Nmax: 5, MaxIters: 20,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8.2f %8d %6d\n", alpha, lac.NFOA, lac.NWR)
	}
	fmt.Println("\n(the paper's recommendation is alpha ≈ 0.2)")
}
