// Sharing: quantify the cost of the paper's modeling simplification.
// The paper (like this planner) retimes every fanout edge independently,
// so a register on each branch of a fanout counts separately even though a
// physical implementation could share one register chain at the driver.
// The Leiserson–Saxe mirror-vertex construction optimizes the shared model
// exactly; this example compares both optima on one planned circuit.
package main

import (
	"fmt"
	"log"

	"lacret"
)

func main() {
	p, ok := lacret.CircuitByName("s641")
	if !ok {
		log.Fatal("catalog circuit s641 missing")
	}
	nl, err := lacret.GenerateCircuit(p)
	if err != nil {
		log.Fatal(err)
	}
	res, err := lacret.Plan(nl, lacret.Config{Seed: p.Seed})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s at Tclk=%.3f ns\n\n", nl.Name, res.Tclk)
	fmt.Printf("edge-independent min-area retiming (the paper's model):\n")
	fmt.Printf("  N_F = %d registers (each fanout edge counted separately)\n", res.MinArea.NF)
	fmt.Printf("  counted under the sharing metric: %d register chains\n",
		res.MinArea.Retimed.SharedRegisterCount())

	shared, err := res.Graph.MinAreaShared(res.Tclk)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfanout-sharing-aware min-area retiming (L-S mirror construction):\n")
	fmt.Printf("  %d shared register chains (its own edge-count: %d)\n",
		shared.SharedRegisters, shared.EdgeRegisters)

	save := res.MinArea.Retimed.SharedRegisterCount() - shared.SharedRegisters
	pct := 100 * float64(save) / float64(res.MinArea.Retimed.SharedRegisterCount())
	fmt.Printf("\nsharing-aware optimization saves %d chains (%.1f%%) over the\n", save, pct)
	fmt.Printf("edge-independent solution evaluated under the same metric —\n")
	fmt.Printf("an upper bound on what the paper's formulation leaves on the table.\n")
}
