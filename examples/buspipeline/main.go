// Buspipeline: the scenario that motivates the paper — a wide bus between
// two distant blocks whose flight time exceeds the clock period, so the
// signal must be pipelined. Flip-flop insertion alone would change the
// system behavior; LAC-retiming instead *relocates* existing flip-flops
// from the producer/consumer logic into the interconnect, preserving
// behavior while meeting the period, and keeps them within tile capacities.
package main

import (
	"fmt"
	"log"

	"lacret"
)

const busWidth = 12

// buildBus creates a producer cluster (input logic + two register ranks)
// driving a consumer cluster through a wide point-to-point bus.
func buildBus() (*lacret.Netlist, error) {
	nl := lacret.NewNetlist("buspipeline")
	for i := 0; i < busWidth; i++ {
		pi, err := nl.AddInput(fmt.Sprintf("pi%d", i))
		if err != nil {
			return nil, err
		}
		// Producer: input gate, two flip-flop ranks (retiming material),
		// then the bus driver.
		gin, _ := nl.AddGate(fmt.Sprintf("prod_in%d", i), "AND", pi)
		f1, _ := nl.AddDFF(fmt.Sprintf("prod_ff%da", i), gin)
		f2, _ := nl.AddDFF(fmt.Sprintf("prod_ff%db", i), f1)
		drv, _ := nl.AddGate(fmt.Sprintf("bus_drv%d", i), "BUF", f2)
		// Consumer: bus receiver, a flip-flop, output logic.
		rcv, _ := nl.AddGate(fmt.Sprintf("bus_rcv%d", i), "BUF", drv)
		f3, _ := nl.AddDFF(fmt.Sprintf("cons_ff%d", i), rcv)
		gout, _ := nl.AddGate(fmt.Sprintf("cons_out%d", i), "NOR", f3)
		nl.MarkOutput(gout)
	}
	// Cross-coupling inside each cluster (the AND/NOR gates take a second
	// fanin) so the partitioner keeps the clusters together and the bus is
	// the only inter-block traffic.
	for i := 1; i < busWidth; i++ {
		a, _ := nl.Lookup(fmt.Sprintf("prod_in%d", i))
		b, _ := nl.Lookup(fmt.Sprintf("prod_in%d", i-1))
		nl.Node(a).Fanin = append(nl.Node(a).Fanin, b)
		c, _ := nl.Lookup(fmt.Sprintf("cons_out%d", i))
		d, _ := nl.Lookup(fmt.Sprintf("cons_out%d", i-1))
		nl.Node(c).Fanin = append(nl.Node(c).Fanin, d)
	}
	if err := nl.Validate(); err != nil {
		return nil, err
	}
	return nl, nil
}

func main() {
	nl, err := buildBus()
	if err != nil {
		log.Fatal(err)
	}

	// Slow global wires make the bus flight time dominate: with the
	// producer and consumer blocks a few millimetres apart, the bus takes
	// more than a clock period to cross.
	tc := lacret.DefaultTech()
	tc.WireR *= 4 // resistive global layer

	res, err := lacret.Plan(nl, lacret.Config{
		Tech:   tc,
		Blocks: 2,
		Seed:   3,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("bus scenario: %d-bit bus between 2 blocks, chip %.0f x %.0f um\n",
		busWidth, res.Placement.ChipW, res.Placement.ChipH)
	fmt.Printf("interconnect: %d units over %d nets, %d repeaters\n",
		res.WireUnits, res.InterBlockNets, res.RepeaterCount)
	fmt.Printf("Tinit = %.3f ns  (bus crossed combinationally)\n", res.Tinit)
	fmt.Printf("Tmin  = %.3f ns  (flip-flops retimed into the bus)\n", res.Tmin)
	fmt.Printf("Tclk  = %.3f ns\n", res.Tclk)

	fmt.Printf("\nLAC-retiming: %d flip-flops total, %d inside interconnects (N_FN)\n",
		res.LAC.NF, lacret.CountInterconnectFFs(res.LAC.Retimed))
	fmt.Printf("local area violations: %d (min-area baseline: %d)\n",
		res.LAC.NFOA, res.MinArea.NFOA)

	// Show which wire segments now carry the pipeline flip-flops.
	g := res.LAC.Retimed
	tails := g.RegistersPerEdgeTail()
	shown := 0
	fmt.Println("\npipeline flip-flops inside the bus (wire unit -> count):")
	for v := 0; v < g.N() && shown < 8; v++ {
		if tails[v] > 0 && g.Kind(v) == lacret.KindWire {
			fmt.Printf("  %-22s %d\n", g.Name(v), tails[v])
			shown++
		}
	}
	if shown == 0 {
		fmt.Println("  (none — the target period was achievable without wire pipelining)")
	}
}
