package main

import "testing"

func TestValidateEngineFlag(t *testing.T) {
	for _, ok := range []string{"", "auto", "dense", "lazy"} {
		if err := validateEngineFlag(ok); err != nil {
			t.Errorf("%q rejected: %v", ok, err)
		}
	}
	for _, bad := range []string{"eager", "DENSE", "lazy ", "matrix"} {
		if err := validateEngineFlag(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}
