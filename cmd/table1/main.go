// Command table1 regenerates Table 1 of the paper: per circuit, the target
// and initial clock periods, and the violation / flip-flop / runtime
// columns of plain minimum-area retiming versus LAC-retiming, including
// the parenthesized second-planning-iteration violation counts and the
// average N_FOA decrease.
//
// Circuits are planned in parallel (-j workers); a crash while planning one
// circuit is isolated to that circuit's row.
//
// Usage:
//
//	table1 [-circuits s386,s400,...] [-ws 0.13] [-alpha 0.2] [-nmax 5] [-slack 0.2] [-j 4] [-v]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync"
	"syscall"

	"lacret/internal/experiments"
	"lacret/internal/obs"
	"lacret/internal/plan"
)

func main() {
	var (
		circuits  = flag.String("circuits", "", "comma-separated circuit subset (default: the ten Table 1 circuits; scale tiers like s100k by name only)")
		ws        = flag.Float64("ws", 0, "block whitespace fraction (default 0.13)")
		alpha     = flag.Float64("alpha", -1, "LAC weight-adaptation coefficient in [0,1] (default 0.2; 0 freezes tile weights)")
		nmax      = flag.Int("nmax", 0, "LAC no-improvement limit (default 5)")
		maxIters  = flag.Int("maxiters", 0, "LAC hard iteration cap (default 20)")
		slack     = flag.Float64("slack", 0, "Tclk slack between Tmin and Tinit (default 0.2)")
		seed      = flag.Int64("seed", 0, "base seed (default: per-circuit catalog seed)")
		md        = flag.Bool("md", false, "emit a Markdown table (for EXPERIMENTS.md)")
		jobs      = flag.Int("j", 0, "parallel planning workers (default GOMAXPROCS, 1 = sequential)")
		verbose   = flag.Bool("v", false, "print per-stage trace events per circuit and an aggregate stage summary")
		budget    = flag.Duration("budget", 0, "wall-clock budget per planning pass (e.g. 30s); anytime stages degrade to best-so-far at the deadline (0 = unbounded)")
		reportDir = flag.String("report", "", "write one versioned JSON run report per circuit into this directory")
		traceOut  = flag.String("trace-out", "", "write a Chrome trace-event file of the worker-pool timeline to this file")
		debugAddr = flag.String("debug-addr", "", "serve net/http/pprof and expvar live gauges on this address (e.g. localhost:8077)")
		engine    = flag.String("probe-engine", "", "constraint engine for the period search: dense, lazy, or auto (default auto: by vertex count)")
	)
	flag.Parse()

	if err := validateEngineFlag(*engine); err != nil {
		fmt.Fprintln(os.Stderr, "table1:", err)
		os.Exit(2)
	}

	// SIGINT/SIGTERM cancel the context: in-flight circuits stop at their
	// next stage boundary, unstarted ones are marked, and the table of
	// everything finished so far is still printed.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	cfg := experiments.DefaultConfig()
	if *ws > 0 {
		cfg.Whitespace = *ws
	}
	if *alpha >= 0 {
		cfg.LAC.Alpha = *alpha
		cfg.LAC.AlphaSet = true // -alpha 0 means literal zero, not "default"
	}
	if *nmax > 0 {
		cfg.LAC.Nmax = *nmax
	}
	if *maxIters > 0 {
		cfg.LAC.MaxIters = *maxIters
	}
	if *slack > 0 {
		cfg.TclkSlack = *slack
	}
	cfg.Seed = *seed
	cfg.Budget.Wall = *budget
	cfg.ProbeEngine = *engine

	var names []string
	if *circuits != "" {
		for _, n := range strings.Split(*circuits, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
	}
	if len(names) == 0 {
		names = append(names, experiments.Table1Names()...)
	}
	var rec *obs.Recorder
	if *reportDir != "" || *traceOut != "" || *debugAddr != "" {
		rec = obs.NewRecorder()
	}
	if *debugAddr != "" {
		ds, err := obs.StartDebugServer(*debugAddr, rec.Registry())
		if err != nil {
			fmt.Fprintln(os.Stderr, "table1:", err)
			os.Exit(1)
		}
		defer ds.Close()
		fmt.Fprintf(os.Stderr, "debug listener on http://%s/debug/\n", ds.Addr())
	}

	// Progress streams as rows complete (large circuits take minutes);
	// completion order depends on scheduling, the table itself does not.
	var mu sync.Mutex
	progress := func(row experiments.Row) {
		mu.Lock()
		defer mu.Unlock()
		if row.Err != "" {
			fmt.Fprintf(os.Stderr, "done %-8s FAILED: %s\n", row.Circuit, row.Err)
			if *verbose {
				for _, ev := range row.Trace {
					fmt.Fprintf(os.Stderr, "  %s\n", ev)
				}
			}
			return
		}
		flags := ""
		if n := row.TruncatedCount(); n > 0 {
			flags += fmt.Sprintf(" degraded=%d", n)
		}
		if n := row.RecoveredCount(); n > 0 {
			flags += fmt.Sprintf(" recovered=%d", n)
		}
		fmt.Fprintf(os.Stderr, "done %-8s minarea N_FOA=%-5d lac N_FOA=%-5d (N_wr=%d)%s\n",
			row.Circuit, row.MinArea.NFOA, row.LAC.NFOA, row.LAC.NWR, flags)
		if *verbose {
			for _, ev := range row.Trace {
				fmt.Fprintf(os.Stderr, "  %s\n", ev)
			}
		}
	}
	rows, avg := experiments.Table1RunContext(ctx, cfg, names, experiments.Table1Opts{
		Jobs: *jobs, Progress: progress, Obs: rec,
	})
	if *md {
		fmt.Print(experiments.FormatMarkdown(rows, avg))
	} else {
		fmt.Print(experiments.FormatTable(rows, avg))
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "stage summary (all passes, all workers):\n%s",
			experiments.FormatTraceSummary(rows))
	}
	if rec != nil {
		cfgMap := map[string]float64{
			"alpha": cfg.LAC.Alpha, "nmax": float64(cfg.LAC.Nmax),
			"maxiters": float64(cfg.LAC.MaxIters), "ws": cfg.Whitespace,
			"slack": cfg.TclkSlack, "seed": float64(cfg.Seed),
			"budget_ms": float64(cfg.Budget.Wall.Milliseconds()),
		}
		if err := writeSinks(rec, rows, *reportDir, *traceOut, cfgMap); err != nil {
			fmt.Fprintln(os.Stderr, "table1:", err)
			os.Exit(1)
		}
	}
	for _, row := range rows {
		if row.Err != "" {
			os.Exit(1)
		}
	}
}

// validateEngineFlag rejects bad -probe-engine values before any planning
// work starts (plan.NewState would catch them too, but only per circuit).
func validateEngineFlag(s string) error {
	switch s {
	case "", plan.ProbeEngineAuto, plan.ProbeEngineDense, plan.ProbeEngineLazy:
		return nil
	}
	return fmt.Errorf("unknown -probe-engine %q (want dense, lazy, or auto)", s)
}

// writeSinks emits the per-circuit run reports and/or the worker-pool Chrome
// trace. All circuit root spans share the recorder's epoch, so the trace
// renders the pool as one timeline — each circuit a separate track.
func writeSinks(rec *obs.Recorder, rows []experiments.Row, reportDir, traceOut string, cfgMap map[string]float64) error {
	if reportDir != "" {
		if err := os.MkdirAll(reportDir, 0o755); err != nil {
			return err
		}
		metrics := rec.Registry().Snapshot()
		for _, row := range rows {
			rep := &obs.Report{
				Tool:    "table1",
				Circuit: row.Circuit,
				Config:  cfgMap,
				Passes:  experiments.RowReport(row),
				Metrics: metrics,
			}
			data, err := rep.Encode()
			if err != nil {
				return fmt.Errorf("report %s: %v", row.Circuit, err)
			}
			path := filepath.Join(reportDir, row.Circuit+".json")
			if err := os.WriteFile(path, data, 0o644); err != nil {
				return err
			}
		}
		fmt.Fprintf(os.Stderr, "wrote %d reports to %s\n", len(rows), reportDir)
	}
	if traceOut != "" {
		var tracks []obs.TraceTrack
		for _, root := range rec.Roots() {
			tracks = append(tracks, obs.TraceTrack{Name: root.Name, Spans: []*obs.Span{root}})
		}
		f, err := os.Create(traceOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := obs.WriteChromeTrace(f, tracks); err != nil {
			return fmt.Errorf("trace: %v", err)
		}
		fmt.Fprintf(os.Stderr, "wrote trace %s (load in chrome://tracing)\n", traceOut)
	}
	return nil
}
