// Command table1 regenerates Table 1 of the paper: per circuit, the target
// and initial clock periods, and the violation / flip-flop / runtime
// columns of plain minimum-area retiming versus LAC-retiming, including
// the parenthesized second-planning-iteration violation counts and the
// average N_FOA decrease.
//
// Circuits are planned in parallel (-j workers); a crash while planning one
// circuit is isolated to that circuit's row.
//
// Usage:
//
//	table1 [-circuits s386,s400,...] [-ws 0.13] [-alpha 0.2] [-nmax 5] [-slack 0.2] [-j 4] [-v]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"

	"lacret/internal/experiments"
	"lacret/internal/obs"
	"lacret/internal/runcfg"
)

func main() {
	var (
		circuits  = flag.String("circuits", "", "comma-separated circuit subset (default: the ten Table 1 circuits; scale tiers like s100k by name only)")
		ws        = flag.Float64("ws", 0, "block whitespace fraction (default 0.13)")
		alpha     = flag.Float64("alpha", -1, "LAC weight-adaptation coefficient in [0,1] (default 0.2; 0 freezes tile weights)")
		nmax      = flag.Int("nmax", 0, "LAC no-improvement limit (default 5)")
		maxIters  = flag.Int("maxiters", 0, "LAC hard iteration cap (default 20)")
		slack     = flag.Float64("slack", 0, "Tclk slack between Tmin and Tinit (default 0.2)")
		seed      = flag.Int64("seed", 0, "base seed (default: per-circuit catalog seed)")
		md        = flag.Bool("md", false, "emit a Markdown table (for EXPERIMENTS.md)")
		jobs      = flag.Int("j", 0, "parallel planning workers (default GOMAXPROCS, 1 = sequential)")
		verbose   = flag.Bool("v", false, "print per-stage trace events per circuit and an aggregate stage summary")
		budget    = flag.Duration("budget", 0, "wall-clock budget per planning pass (e.g. 30s); anytime stages degrade to best-so-far at the deadline (0 = unbounded)")
		reportDir = flag.String("report", "", "write one versioned JSON run report per circuit into this directory")
		traceOut  = flag.String("trace-out", "", "write a Chrome trace-event file of the worker-pool timeline to this file")
		debugAddr = flag.String("debug-addr", "", "serve net/http/pprof and expvar live gauges on this address (e.g. localhost:8077)")
		engine    = flag.String("probe-engine", "", "constraint engine for the period search: dense, lazy, or auto (default auto: by vertex count)")
	)
	flag.Parse()

	if err := runcfg.ValidateEngine(*engine); err != nil {
		fmt.Fprintln(os.Stderr, "table1:", err)
		os.Exit(2)
	}

	// SIGINT/SIGTERM cancel the context: in-flight circuits stop at their
	// next stage boundary, unstarted ones are marked, and the table of
	// everything finished so far is still printed.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	// The flags resolve through the same canonical request configuration as
	// lacplan and lacretd. Table 1's own defaults beyond the shared ones:
	// the LAC solve is capped at 20 rounds, and a zero seed selects each
	// circuit's catalog seed (resolved per circuit by the driver).
	mi := *maxIters
	if mi <= 0 {
		mi = 20
	}
	reqCfg := runcfg.Params{
		Whitespace: *ws,
		Alpha:      *alpha,
		AlphaSet:   *alpha >= 0, // -alpha 0 means literal zero, not "default"
		Nmax:       *nmax,
		MaxIters:   mi,
		TclkSlack:  *slack,
		Seed:       *seed,
		Budget:     *budget,
		Engine:     *engine,
	}.Config()
	reqCfg.Normalize()
	if err := reqCfg.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "table1:", err)
		os.Exit(1)
	}
	cfg := reqCfg.PlanConfig()

	var names []string
	if *circuits != "" {
		for _, n := range strings.Split(*circuits, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
	}
	if len(names) == 0 {
		names = append(names, experiments.Table1Names()...)
	}
	o, err := runcfg.StartObs(*debugAddr, *reportDir, *traceOut)
	if err != nil {
		fmt.Fprintln(os.Stderr, "table1:", err)
		os.Exit(1)
	}
	defer o.Close()
	if o.Debug != nil {
		fmt.Fprintf(os.Stderr, "debug listener on http://%s/debug/\n", o.Debug.Addr())
	}

	// Progress streams as rows complete (large circuits take minutes);
	// completion order depends on scheduling, the table itself does not.
	var mu sync.Mutex
	progress := func(row experiments.Row) {
		mu.Lock()
		defer mu.Unlock()
		if row.Err != "" {
			fmt.Fprintf(os.Stderr, "done %-8s FAILED: %s\n", row.Circuit, row.Err)
			if *verbose {
				for _, ev := range row.Trace {
					fmt.Fprintf(os.Stderr, "  %s\n", ev)
				}
			}
			return
		}
		flags := ""
		if n := row.TruncatedCount(); n > 0 {
			flags += fmt.Sprintf(" degraded=%d", n)
		}
		if n := row.RecoveredCount(); n > 0 {
			flags += fmt.Sprintf(" recovered=%d", n)
		}
		fmt.Fprintf(os.Stderr, "done %-8s minarea N_FOA=%-5d lac N_FOA=%-5d (N_wr=%d)%s\n",
			row.Circuit, row.MinArea.NFOA, row.LAC.NFOA, row.LAC.NWR, flags)
		if *verbose {
			for _, ev := range row.Trace {
				fmt.Fprintf(os.Stderr, "  %s\n", ev)
			}
		}
	}
	rows, avg := experiments.Table1RunContext(ctx, cfg, names, experiments.Table1Opts{
		Jobs: *jobs, Progress: progress, Obs: o.Recorder,
	})
	if *md {
		fmt.Print(experiments.FormatMarkdown(rows, avg))
	} else {
		fmt.Print(experiments.FormatTable(rows, avg))
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "stage summary (all passes, all workers):\n%s",
			experiments.FormatTraceSummary(rows))
	}
	if o.Enabled() {
		if err := writeSinks(o.Recorder, rows, *reportDir, *traceOut, reqCfg.Map()); err != nil {
			fmt.Fprintln(os.Stderr, "table1:", err)
			os.Exit(1)
		}
	}
	for _, row := range rows {
		if row.Err != "" {
			os.Exit(1)
		}
	}
}

// writeSinks emits the per-circuit run reports and/or the worker-pool Chrome
// trace. All circuit root spans share the recorder's epoch, so the trace
// renders the pool as one timeline — each circuit a separate track.
func writeSinks(rec *obs.Recorder, rows []experiments.Row, reportDir, traceOut string, cfgMap map[string]float64) error {
	if reportDir != "" {
		metrics := rec.Registry().Snapshot()
		reps := make(map[string]*obs.Report, len(rows))
		for _, row := range rows {
			reps[row.Circuit] = &obs.Report{
				Tool:    "table1",
				Circuit: row.Circuit,
				Config:  cfgMap,
				Passes:  experiments.RowReport(row),
				Metrics: metrics,
			}
		}
		if err := runcfg.WriteReportDir(reportDir, reps); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %d reports to %s\n", len(rows), reportDir)
	}
	if traceOut != "" {
		var tracks []obs.TraceTrack
		for _, root := range rec.Roots() {
			tracks = append(tracks, obs.TraceTrack{Name: root.Name, Spans: []*obs.Span{root}})
		}
		if err := runcfg.WriteTrace(traceOut, tracks); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote trace %s (load in chrome://tracing)\n", traceOut)
	}
	return nil
}
