// Command table1 regenerates Table 1 of the paper: per circuit, the target
// and initial clock periods, and the violation / flip-flop / runtime
// columns of plain minimum-area retiming versus LAC-retiming, including
// the parenthesized second-planning-iteration violation counts and the
// average N_FOA decrease.
//
// Usage:
//
//	table1 [-circuits s386,s400,...] [-ws 0.13] [-alpha 0.2] [-nmax 5] [-slack 0.2]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"lacret/internal/experiments"
)

func main() {
	var (
		circuits = flag.String("circuits", "", "comma-separated circuit subset (default: all ten)")
		ws       = flag.Float64("ws", 0, "block whitespace fraction (default 0.13)")
		alpha    = flag.Float64("alpha", 0, "LAC weight-adaptation coefficient (default 0.2)")
		nmax     = flag.Int("nmax", 0, "LAC no-improvement limit (default 5)")
		maxIters = flag.Int("maxiters", 0, "LAC hard iteration cap (default 20)")
		slack    = flag.Float64("slack", 0, "Tclk slack between Tmin and Tinit (default 0.2)")
		seed     = flag.Int64("seed", 0, "base seed (default: per-circuit catalog seed)")
		md       = flag.Bool("md", false, "emit a Markdown table (for EXPERIMENTS.md)")
	)
	flag.Parse()

	cfg := experiments.DefaultConfig()
	if *ws > 0 {
		cfg.Whitespace = *ws
	}
	if *alpha > 0 {
		cfg.LAC.Alpha = *alpha
	}
	if *nmax > 0 {
		cfg.LAC.Nmax = *nmax
	}
	if *maxIters > 0 {
		cfg.LAC.MaxIters = *maxIters
	}
	if *slack > 0 {
		cfg.TclkSlack = *slack
	}
	cfg.Seed = *seed

	var names []string
	if *circuits != "" {
		for _, n := range strings.Split(*circuits, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
	}
	if len(names) == 0 {
		for _, p := range experiments.CatalogNames() {
			names = append(names, p)
		}
	}
	// Rows stream as they complete (large circuits take minutes).
	var rows []experiments.Row
	var sum float64
	var n int
	for _, name := range names {
		row, err := experiments.Table1Row(name, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "table1:", err)
			os.Exit(1)
		}
		rows = append(rows, *row)
		fmt.Fprintf(os.Stderr, "done %-8s minarea N_FOA=%-5d lac N_FOA=%-5d (N_wr=%d)\n",
			name, row.MinArea.NFOA, row.LAC.NFOA, row.LAC.NWR)
		if row.DecreasePct >= 0 {
			sum += row.DecreasePct
			n++
		}
	}
	avg := 0.0
	if n > 0 {
		avg = sum / float64(n)
	}
	if *md {
		fmt.Print(experiments.FormatMarkdown(rows, avg))
		return
	}
	fmt.Print(experiments.FormatTable(rows, avg))
}
