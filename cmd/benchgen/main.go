// Command benchgen writes the synthetic ISCAS89-class benchmark circuits
// to .bench files, so they can be inspected or replaced by the genuine
// ISCAS89 netlists. With -benchjson it instead micro-benchmarks one full
// planning pass per circuit and writes ns/op plus the key observability
// counters as JSON — the machine-readable benchmark artifact CI uploads.
//
// Usage:
//
//	benchgen [-out dir] [-circuit name]
//	benchgen -benchjson BENCH_plan.json [-benchcircuits s400,s526,s953]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lacret/internal/bench89"
	"lacret/internal/experiments"
	"lacret/internal/netlist"
	"lacret/internal/obs"
	"lacret/internal/plan"
)

func main() {
	var (
		out        = flag.String("out", ".", "output directory")
		circuit    = flag.String("circuit", "", "single circuit name (default: all)")
		benchJSON  = flag.String("benchjson", "", "benchmark one planning pass per circuit and write ns/op + obs counters as JSON to this file (skips .bench generation)")
		benchCircs = flag.String("benchcircuits", "s400,s526,s953", "comma-separated circuits for -benchjson")
	)
	flag.Parse()

	if *benchJSON != "" {
		if err := writeBenchJSON(*benchJSON, *benchCircs); err != nil {
			fmt.Fprintln(os.Stderr, "benchgen:", err)
			os.Exit(1)
		}
		return
	}

	params := bench89.Catalog()
	if *circuit != "" {
		p, ok := bench89.ByName(*circuit)
		if !ok {
			fmt.Fprintf(os.Stderr, "benchgen: unknown circuit %q\n", *circuit)
			os.Exit(1)
		}
		params = []bench89.Params{p}
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "benchgen:", err)
		os.Exit(1)
	}
	for _, p := range params {
		nl, err := bench89.Generate(p)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchgen:", err)
			os.Exit(1)
		}
		path := filepath.Join(*out, p.Name+".bench")
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchgen:", err)
			os.Exit(1)
		}
		if err := netlist.WriteBench(f, nl); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, "benchgen:", err)
			os.Exit(1)
		}
		f.Close()
		s := nl.Stats()
		fmt.Printf("%s: %d gates, %d FFs, %d/%d I/O -> %s\n",
			p.Name, s.Gates, s.DFFs, s.Inputs, s.Outputs, path)
	}
}

// benchResult is one circuit's benchmark record in the BENCH_plan.json
// artifact.
type benchResult struct {
	Name        string           `json:"name"`
	Circuit     string           `json:"circuit"`
	NsPerOp     int64            `json:"ns_per_op"`
	AllocsPerOp int64            `json:"allocs_per_op"`
	BytesPerOp  int64            `json:"bytes_per_op"`
	Counters    map[string]int64 `json:"counters"`
}

// benchFile is the artifact's top-level schema.
type benchFile struct {
	Schema  int           `json:"schema"`
	Results []benchResult `json:"results"`
}

// writeBenchJSON benchmarks one uninstrumented planning pass per circuit
// (testing.Benchmark picks the iteration count), then runs one observed pass
// to harvest the registry counters — the work profile behind the timing.
func writeBenchJSON(path, circuits string) error {
	out := benchFile{Schema: 1}
	for _, name := range strings.Split(circuits, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		p, ok := bench89.ByName(name)
		if !ok {
			return fmt.Errorf("unknown circuit %q", name)
		}
		nl, err := bench89.Generate(p)
		if err != nil {
			return err
		}
		cfg := experiments.DefaultConfig()
		cfg.Seed = p.Seed
		// One checked pass up front, so a planning failure surfaces as an
		// error instead of a meaningless timing.
		if _, err := plan.Plan(nl, cfg); err != nil {
			return fmt.Errorf("%s: %v", name, err)
		}
		br := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := plan.Plan(nl, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
		rec := obs.NewRecorder()
		ctx := obs.NewContext(context.Background(), rec)
		if _, err := plan.PlanIterationsContext(ctx, nl, cfg, 1); err != nil {
			return fmt.Errorf("%s: %v", name, err)
		}
		out.Results = append(out.Results, benchResult{
			Name:        "Plan/" + name,
			Circuit:     name,
			NsPerOp:     br.NsPerOp(),
			AllocsPerOp: br.AllocsPerOp(),
			BytesPerOp:  br.AllocedBytesPerOp(),
			Counters:    rec.Registry().Snapshot().Counters,
		})
		fmt.Printf("%s: %d ns/op  %d B/op  %d allocs/op\n",
			name, br.NsPerOp(), br.AllocedBytesPerOp(), br.AllocsPerOp())
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}
