// Command benchgen writes the synthetic ISCAS89-class benchmark circuits
// to .bench files, so they can be inspected or replaced by the genuine
// ISCAS89 netlists.
//
// Usage:
//
//	benchgen [-out dir] [-circuit name]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"lacret/internal/bench89"
	"lacret/internal/netlist"
)

func main() {
	var (
		out     = flag.String("out", ".", "output directory")
		circuit = flag.String("circuit", "", "single circuit name (default: all)")
	)
	flag.Parse()

	params := bench89.Catalog()
	if *circuit != "" {
		p, ok := bench89.ByName(*circuit)
		if !ok {
			fmt.Fprintf(os.Stderr, "benchgen: unknown circuit %q\n", *circuit)
			os.Exit(1)
		}
		params = []bench89.Params{p}
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "benchgen:", err)
		os.Exit(1)
	}
	for _, p := range params {
		nl, err := bench89.Generate(p)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchgen:", err)
			os.Exit(1)
		}
		path := filepath.Join(*out, p.Name+".bench")
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchgen:", err)
			os.Exit(1)
		}
		if err := netlist.WriteBench(f, nl); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, "benchgen:", err)
			os.Exit(1)
		}
		f.Close()
		s := nl.Stats()
		fmt.Printf("%s: %d gates, %d FFs, %d/%d I/O -> %s\n",
			p.Name, s.Gates, s.DFFs, s.Inputs, s.Outputs, path)
	}
}
