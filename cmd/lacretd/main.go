// Command lacretd is the planning daemon: it serves concurrent
// interconnect-planning jobs over HTTP, so iterative workloads — many
// near-duplicate requests over the same netlist and floorplan — reuse one
// warm process and a content-addressed result cache instead of rebuilding
// the world per CLI invocation.
//
// Usage:
//
//	lacretd -addr localhost:8411 [-workers 4] [-queue 8] [-cache 64]
//	        [-data-dir /var/lib/lacretd] [-max-mem 2GiB] [-debug-addr localhost:8077]
//	        [-log-level info] [-log-format text]
//
// With -data-dir the daemon is crash-safe: accepted jobs are journaled
// (fsync before the 202), running plans checkpoint at stage boundaries,
// and a restarted daemon re-enqueues unfinished jobs under their original
// IDs, resuming each from its last checkpoint. -max-mem (default: the
// GOMEMLIMIT, if one is set) turns on admission control: above the
// high-water mark the daemon sheds its caches and answers 429.
//
// Submit, poll, stream, cancel:
//
//	curl -X POST localhost:8411/v1/jobs -d '{"source":{"circuit":"s400"},"config":{"seed":1}}'
//	curl localhost:8411/v1/jobs/<id>
//	curl -N localhost:8411/v1/jobs/<id>/events
//	curl -X DELETE localhost:8411/v1/jobs/<id>
//	curl localhost:8411/v1/stats
//
// SIGINT/SIGTERM drain gracefully: submissions are refused, in-flight jobs
// get -grace to finish (at the deadline their contexts are canceled and
// the anytime stages commit best-so-far), then the process exits.
//
// The daemon logs structured lines (log/slog) to stderr: every job
// transition carries the job ID and request digest, every HTTP request its
// route and status. -log-format json feeds a collector; -log-level debug
// adds per-request lines. The operational endpoints — /metrics
// (Prometheus text format), /healthz, /readyz — live on the main listener.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"lacret/internal/job"
	"lacret/internal/obs"
	"lacret/internal/runcfg"
	"lacret/internal/service"
)

func main() {
	var (
		addr           = flag.String("addr", "localhost:8411", "HTTP listen address for the job API")
		workers        = flag.Int("workers", 0, "planning worker-pool size (0 = GOMAXPROCS)")
		queue          = flag.Int("queue", 0, "queued-job bound before submissions are rejected with 429 (0 = 2x workers)")
		cache          = flag.Int("cache", 64, "content-addressed result-cache entries (negative disables)")
		grace          = flag.Duration("grace", 30*time.Second, "drain window on SIGINT/SIGTERM before in-flight jobs are cut to best-so-far")
		debugAddr      = flag.String("debug-addr", "", "serve net/http/pprof and expvar live gauges on this address (e.g. localhost:8077)")
		dataDir        = flag.String("data-dir", "", "durable state directory (job journal, checkpoints, reports); empty = in-memory only")
		maxMem         = flag.String("max-mem", "", "memory limit for admission control, e.g. 2GiB (empty = GOMEMLIMIT when set, else unlimited)")
		crashAfterCkpt = flag.Int("crash-after-checkpoint", 0, "TESTING: exit the process immediately after the Nth checkpoint save")
		logLevel       = flag.String("log-level", "info", "log verbosity: debug, info, warn, or error")
		logFormat      = flag.String("log-format", "text", "log encoding: text or json")
	)
	flag.Parse()

	logger, err := runcfg.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lacretd:", err)
		os.Exit(2)
	}
	fail := func(msg string, err error) {
		logger.Error(msg, "error", err)
		os.Exit(1)
	}

	maxMemBytes, err := runcfg.ParseBytes(*maxMem)
	if err != nil {
		logger.Error("bad -max-mem", "error", err)
		os.Exit(2)
	}
	opts := job.Options{
		Workers:      *workers,
		QueueDepth:   *queue,
		CacheEntries: *cache,
		DataDir:      *dataDir,
		MaxMemBytes:  maxMemBytes,
		Logger:       logger,
	}
	if n := *crashAfterCkpt; n > 0 {
		// The chaos harness: die exactly where a crash hurts most — right
		// after a checkpoint became durable, mid-plan. os.Exit skips every
		// deferred cleanup, like a SIGKILL would.
		var saves atomic.Int64
		opts.CheckpointNotify = func(id, stage string) {
			if int(saves.Add(1)) == n {
				logger.Error("crash-after-checkpoint tripped", "n", n, "stage", stage, "job", id)
				os.Exit(137)
			}
		}
	}
	mgr, err := job.Open(opts)
	if err != nil {
		fail("manager open failed", err)
	}
	if s := mgr.Stats(); s.Recovered > 0 {
		logger.Info("recovered unfinished jobs", "count", s.Recovered, "data_dir", *dataDir)
	}

	if *debugAddr != "" {
		ds, err := obs.StartDebugServer(*debugAddr, mgr.Registry())
		if err != nil {
			fail("debug listener failed", err)
		}
		defer ds.Close()
		logger.Info("debug listener up", "url", fmt.Sprintf("http://%s/debug/", ds.Addr()))
	}

	lis, err := net.Listen("tcp", *addr)
	if err != nil {
		fail("listen failed", err)
	}
	srv := service.HTTPServer("", service.New(mgr, service.WithLogger(logger)))
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(lis) }()
	logger.Info("lacretd serving", "workers", mgr.Workers(), "url", fmt.Sprintf("http://%s/v1/", lis.Addr()))

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
	case err := <-errc:
		fail("serve failed", err)
	}
	stop() // a second signal kills immediately instead of waiting the drain

	logger.Info("lacretd draining", "grace", *grace)
	dctx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	// Drain order matters: the manager first, with HTTP still up, so
	// clients can poll their jobs to completion; then the listener.
	if err := mgr.Shutdown(dctx); err != nil {
		logger.Warn("drain window expired: in-flight jobs committed best-so-far")
	}
	hctx, hcancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer hcancel()
	_ = srv.Shutdown(hctx)
	logger.Info("lacretd stopped")
}
