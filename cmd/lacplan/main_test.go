package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestValidateEngineFlag(t *testing.T) {
	for _, ok := range []string{"", "auto", "dense", "lazy"} {
		if err := validateEngineFlag(ok); err != nil {
			t.Errorf("%q rejected: %v", ok, err)
		}
	}
	for _, bad := range []string{"eager", "DENSE", "lazy ", "matrix"} {
		if err := validateEngineFlag(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}

func TestLoadCircuitScaleTier(t *testing.T) {
	nl, err := loadCircuit("", "s100k")
	if err != nil {
		t.Fatal(err)
	}
	if nl.Stats().Gates != 6000 {
		t.Fatalf("stats %+v", nl.Stats())
	}
}

func TestLoadCircuitCatalog(t *testing.T) {
	nl, err := loadCircuit("", "s386")
	if err != nil {
		t.Fatal(err)
	}
	if nl.Stats().Gates != 159 {
		t.Fatalf("stats %+v", nl.Stats())
	}
}

func TestLoadCircuitBenchFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "c.bench")
	content := "INPUT(a)\nOUTPUT(g)\ng = NOT(a)\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	nl, err := loadCircuit(path, "")
	if err != nil {
		t.Fatal(err)
	}
	if nl.Stats().Gates != 1 {
		t.Fatalf("stats %+v", nl.Stats())
	}
}

func TestLoadCircuitErrors(t *testing.T) {
	if _, err := loadCircuit("", ""); err == nil {
		t.Fatal("empty args accepted")
	}
	if _, err := loadCircuit("x.bench", "s386"); err == nil {
		t.Fatal("both args accepted")
	}
	if _, err := loadCircuit("", "nosuch"); err == nil {
		t.Fatal("unknown circuit accepted")
	}
	if _, err := loadCircuit("/nonexistent/file.bench", ""); err == nil {
		t.Fatal("missing file accepted")
	}
}
