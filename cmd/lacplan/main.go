// Command lacplan runs the full interconnect-planning flow on one circuit
// — a .bench netlist or a named synthetic benchmark — and reports the
// floorplan, routing, and retiming outcome, optionally with the tile map
// (the paper's Figure 2) and per-iteration LAC telemetry.
//
// Usage:
//
//	lacplan -circuit s953 [-ws 0.13] [-alpha 0.2] [-iterations 2] [-tilemap] [-trace]
//	lacplan -bench path/to/circuit.bench
//	lacplan -circuit s400 -report run.json -trace-out trace.json -debug-addr localhost:8077
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"lacret/internal/check"
	"lacret/internal/obs"
	"lacret/internal/plan"
	"lacret/internal/render"
	"lacret/internal/retime"
	"lacret/internal/runcfg"
	"lacret/internal/sta"
)

func main() {
	var (
		benchPath  = flag.String("bench", "", "path to an ISCAS89 .bench netlist")
		circuit    = flag.String("circuit", "", "synthetic catalog circuit name (e.g. s953)")
		blocks     = flag.Int("blocks", 0, "number of soft blocks (0 = auto)")
		ws         = flag.Float64("ws", 0.13, "block whitespace fraction")
		alpha      = flag.Float64("alpha", 0.2, "LAC weight-adaptation coefficient (0 freezes tile weights)")
		nmax       = flag.Int("nmax", 5, "LAC no-improvement limit")
		slack      = flag.Float64("slack", 0.2, "Tclk slack between Tmin and Tinit")
		tclk       = flag.Float64("tclk", 0, "explicit target clock period (ns); overrides slack")
		seed       = flag.Int64("seed", 1, "random seed (0 = the circuit's catalog seed)")
		iterations = flag.Int("iterations", 1, "planning iterations (floorplan expansion between)")
		tilemap    = flag.Bool("tilemap", false, "print the tile map (Figure 2)")
		verbose    = flag.Bool("v", false, "print per-stage timings and per-iteration LAC telemetry")
		trace      = flag.Bool("trace", false, "stream one line per pipeline stage as it completes (wall time + counters)")
		sharing    = flag.Bool("sharing", false, "also run fanout-sharing-aware min-area retiming (extension)")
		checkFlag  = flag.Bool("check", false, "verify every reported number by independent recomputation")
		critical   = flag.Bool("critical", false, "print the critical path of the LAC-retimed design")
		svgPath    = flag.String("svg", "", "write an SVG rendering of the plan to this file")
		budget     = flag.Duration("budget", 0, "wall-clock budget per planning pass (e.g. 30s); anytime stages degrade to best-so-far at the deadline (0 = unbounded)")
		reportOut  = flag.String("report", "", "write a versioned JSON run report (stages, sub-stage spans, metrics) to this file")
		traceOut   = flag.String("trace-out", "", "write a Chrome trace-event file (load in chrome://tracing or Perfetto) to this file")
		debugAddr  = flag.String("debug-addr", "", "serve net/http/pprof and expvar live gauges on this address (e.g. localhost:8077)")
		checkRep   = flag.String("check-report", "", "validate a previously written run report (schema version + structure) and exit")
		engine     = flag.String("probe-engine", "", "constraint engine for the period search: dense, lazy, or auto (default auto: by vertex count)")
	)
	flag.Parse()

	if err := runcfg.ValidateEngine(*engine); err != nil {
		fmt.Fprintln(os.Stderr, "lacplan:", err)
		os.Exit(2)
	}

	if *checkRep != "" {
		data, err := os.ReadFile(*checkRep)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lacplan:", err)
			os.Exit(1)
		}
		rep, err := obs.DecodeReport(data)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lacplan: report invalid:", err)
			os.Exit(1)
		}
		fmt.Printf("report ok: schema %d, tool %s, circuit %s, %d passes\n",
			rep.Schema, rep.Tool, rep.Circuit, len(rep.Passes))
		return
	}

	// SIGINT/SIGTERM cancel the context: running stages stop at their next
	// checkpoint and every finished iteration is still reported below.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// The flags resolve into the same canonical request the daemon serves,
	// so lacplan, table1, and lacretd share one flag→Config code path.
	src, err := runcfg.Source(*benchPath, *circuit)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lacplan:", err)
		os.Exit(1)
	}
	req := runcfg.Params{
		Blocks: *blocks, Whitespace: *ws,
		Alpha: *alpha, AlphaSet: true, // an explicit -alpha 0 freezes the weights
		Nmax: *nmax, TclkSlack: *slack, Tclk: *tclk, Seed: *seed,
		Iterations: *iterations, Budget: *budget, Engine: *engine,
	}.Request(src)
	req.Normalize()
	if err := req.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "lacplan:", err)
		os.Exit(1)
	}
	nl, err := req.Source.Netlist()
	if err != nil {
		fmt.Fprintln(os.Stderr, "lacplan:", err)
		os.Exit(1)
	}

	// Any observability sink engages the recorder; without one, the
	// instrumented code paths stay nil no-ops end to end.
	o, err := runcfg.StartObs(*debugAddr, *reportOut, *traceOut)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lacplan:", err)
		os.Exit(1)
	}
	defer o.Close()
	if o.Enabled() {
		ctx = obs.NewContext(ctx, o.Recorder)
	}
	if o.Debug != nil {
		fmt.Fprintf(os.Stderr, "debug listener on http://%s/debug/\n", o.Debug.Addr())
	}

	cfg := req.PlanConfig()
	if *trace {
		cfg.Trace = func(ev plan.StageEvent) { fmt.Printf("stage %s\n", ev) }
	}
	iters, err := plan.PlanIterationsContext(ctx, nl, cfg, req.Config.Iterations)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lacplan:", err)
		os.Exit(1)
	}
	failed := false
	for i, it := range iters {
		fmt.Printf("=== planning iteration %d ===\n", i+1)
		if it.Err != nil {
			failed = true
			fmt.Printf("failed: %v\n", it.Err)
			reportPartial(it.Result)
			continue
		}
		report(it.Result, *tilemap, *verbose)
		if *critical {
			rep, err := sta.Analyze(it.Result.LAC.Retimed, it.Result.Tclk)
			if err != nil {
				fmt.Fprintln(os.Stderr, "lacplan: sta:", err)
				os.Exit(1)
			}
			fmt.Printf("critical path (slack %.3f ns):\n%s", rep.WNS, sta.FormatPath(it.Result.LAC.Retimed, rep))
		}
		if *checkFlag {
			out, err := check.Verify(it.Result)
			if err != nil {
				fmt.Fprintln(os.Stderr, "lacplan: verification FAILED:", err)
				os.Exit(1)
			}
			for _, c := range out.Checks {
				fmt.Println("check:", c)
			}
		}
		if *svgPath != "" {
			svg := render.SVG(it.Result, render.DefaultOptions())
			if err := os.WriteFile(*svgPath, []byte(svg), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "lacplan: svg:", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", *svgPath)
		}
		if *sharing {
			shared, err := it.Result.Graph.MinAreaShared(it.Result.Tclk)
			if err != nil {
				fmt.Printf("sharing model: %v\n", err)
				continue
			}
			fmt.Printf("sharing model (extension): %d shared registers vs %d edge-model (same labeling counts %d edge registers)\n",
				shared.SharedRegisters, it.Result.MinArea.NF, shared.EdgeRegisters)
		}
	}
	if o.Enabled() {
		if err := writeSinks(o.Recorder, nl.Name, *reportOut, *traceOut, iters, req.Config.Map()); err != nil {
			fmt.Fprintln(os.Stderr, "lacplan:", err)
			os.Exit(1)
		}
	}
	if failed {
		os.Exit(1)
	}
}

// writeSinks emits the run report and/or Chrome trace after the planning
// iterations finish — failed passes included, since a report of where a run
// died is the point of having one.
func writeSinks(rec *obs.Recorder, circuit, reportOut, traceOut string, iters []plan.Iteration, cfgMap map[string]float64) error {
	if reportOut != "" {
		rep := &obs.Report{
			Tool:    "lacplan",
			Circuit: circuit,
			Config:  cfgMap,
			Passes:  plan.PassReports(iters),
			Metrics: rec.Registry().Snapshot(),
		}
		if err := runcfg.WriteReport(reportOut, rep); err != nil {
			return err
		}
		fmt.Printf("wrote report %s\n", reportOut)
	}
	if traceOut != "" {
		if err := runcfg.WriteTrace(traceOut, []obs.TraceTrack{{Name: circuit, Spans: rec.Roots()}}); err != nil {
			return err
		}
		fmt.Printf("wrote trace %s (load in chrome://tracing)\n", traceOut)
	}
	return nil
}

// reportPartial prints the best-so-far state of an aborted planning pass:
// the stage trace up to the failure and whatever headline numbers the
// completed prefix produced. res may be nil (the pass failed before any
// stage ran).
func reportPartial(res *plan.Result) {
	if res == nil {
		return
	}
	fmt.Println("best-so-far (completed stages):")
	for _, ev := range res.Trace {
		fmt.Printf("  stage %s\n", ev)
	}
	if res.RouteWirelength > 0 {
		fmt.Printf("  routing: %.0f um wirelength, %d inter-block nets, overflow %d\n",
			res.RouteWirelength, res.InterBlockNets, res.RouteOverflow)
	}
	if res.Tclk > 0 {
		fmt.Printf("  periods: Tinit=%.3f ns  Tmin=%.3f ns  Tclk=%.3f ns\n", res.Tinit, res.Tmin, res.Tclk)
	}
	if res.Probe.Probes > 0 {
		fmt.Printf("  period probes: %d (%d warm, %d witness-rejected)  pairs scanned: %d of %d indexed\n",
			res.Probe.Probes, res.Probe.Warm, res.Probe.WitnessRejects, res.Probe.PairsScanned, res.Probe.IndexPairs)
	}
	if res.MinArea != nil {
		fmt.Printf("  min-area retiming: N_FOA=%d  N_F=%d\n", res.MinArea.NFOA, res.MinArea.NF)
	}
	if res.LAC != nil {
		fmt.Printf("  LAC-retiming:      N_FOA=%d  N_F=%d  N_wr=%d\n", res.LAC.NFOA, res.LAC.NF, res.LAC.NWR)
	}
}

// formatProbeMem renders the constraint engine's memory accounting: resident
// matrix bytes for the dense engine, cache/sweep counters for the lazy one.
func formatProbeMem(engine string, mem retime.SourceMem) string {
	if engine == plan.ProbeEngineLazy {
		return fmt.Sprintf("(%d sweeps, %d abandoned, cache %d rows / %d pairs, %d evictions, %d hits)",
			mem.Sweeps, mem.Abandoned, mem.CachedRows, mem.CachedPairs, mem.Evictions, mem.Hits)
	}
	return fmt.Sprintf("(W/D matrices %.1f MB)", float64(mem.DenseBytes)/(1<<20))
}

func report(res *plan.Result, tilemap, verbose bool) {
	s := res.Stats
	fmt.Printf("circuit %s: %d gates, %d FFs, %d inputs, %d outputs\n",
		res.Name, s.Gates, s.DFFs, s.Inputs, s.Outputs)
	fmt.Printf("blocks: %d   chip: %.0f x %.0f um   grid: %dx%d tiles\n",
		res.NumBlocks, res.Placement.ChipW, res.Placement.ChipH, res.Grid.Rows, res.Grid.Cols)
	fmt.Printf("routing: %.0f um wirelength, %d inter-block nets, overflow %d\n",
		res.RouteWirelength, res.InterBlockNets, res.RouteOverflow)
	fmt.Printf("repeaters: %d inserted, %d interconnect units\n", res.RepeaterCount, res.WireUnits)
	fmt.Printf("periods: Tinit=%.3f ns  Tmin=%.3f ns  Tclk=%.3f ns\n", res.Tinit, res.Tmin, res.Tclk)
	if res.Probe.Probes > 0 {
		fmt.Printf("period probes: %d (%d warm, %d witness-rejected)  pairs scanned: %d of %d indexed\n",
			res.Probe.Probes, res.Probe.Warm, res.Probe.WitnessRejects, res.Probe.PairsScanned, res.Probe.IndexPairs)
	}
	if res.ProbeEngine != "" {
		fmt.Printf("constraint engine: %s  %s\n", res.ProbeEngine, formatProbeMem(res.ProbeEngine, res.ProbeMem))
	}
	if res.TminLo > 0 {
		fmt.Printf("period search truncated at budget: true Tmin in (%.3f, %.3f] ns (bracket width %.3f ns)\n",
			res.TminLo, res.Tmin, res.Tmin-res.TminLo)
	}
	if ts := res.TruncatedStages(); len(ts) > 0 {
		fmt.Printf("budget-degraded stages: %s\n", strings.Join(ts, ", "))
	}
	fmt.Printf("min-area retiming: N_FOA=%d  N_F=%d  N_FN=%d  (%.2fs)\n",
		res.MinArea.NFOA, res.MinArea.NF, res.MinAreaNFN, res.MinAreaTime.Seconds())
	fmt.Printf("LAC-retiming:      N_FOA=%d  N_F=%d  N_FN=%d  N_wr=%d  (%.2fs)\n",
		res.LAC.NFOA, res.LAC.NF, res.LACNFN, res.LAC.NWR, res.LACTime.Seconds())
	if res.MinArea.NFOA > 0 {
		fmt.Printf("N_FOA decrease: %.0f%%\n", res.DecreasePct())
	}
	if verbose {
		for i, it := range res.LAC.Iters {
			fmt.Printf("  round %d: N_FOA=%d registers=%d worst AC/C=%.2f\n",
				i+1, it.NFOA, it.Registers, it.MaxRatio)
		}
		fmt.Println("stage timings:")
		fmt.Print(res.Timings.String())
	}
	if tilemap {
		fmt.Println("tile map ('.' free, letters = soft blocks, '#' hard):")
		fmt.Print(res.Grid.Render())
	}
}
