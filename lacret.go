// Package lacret reproduces "Interconnect Planning with Local Area
// Constrained Retiming" (Lu & Koh, DATE 2003): an early physical-planning
// flow that combines global routing, repeater insertion, and retiming of
// both logic and interconnect under per-tile area constraints, so that
// relocated flip-flops never overflow the floorplan.
//
// The package is a facade over the implementation packages:
//
//   - netlist model with an ISCAS89 ".bench" parser and a synthetic
//     ISCAS89-class benchmark generator;
//   - Fiduccia–Mattheyses partitioning, sequence-pair floorplanning, a
//     tile grid, congestion-aware global routing, and Lmax-constrained
//     repeater insertion;
//   - a Leiserson–Saxe retiming engine (W/D matrices, min-period,
//     min-cost-flow minimum-area retiming);
//   - the paper's LAC-retiming heuristic (adaptively weighted min-area
//     retimings).
//
// Quickstart:
//
//	nl, _ := lacret.GenerateCircuit(lacret.CircuitParams{
//		Name: "demo", Gates: 200, DFFs: 16, Inputs: 8, Outputs: 8,
//		Depth: 12, MaxFanin: 4, Seed: 1,
//	})
//	res, err := lacret.Plan(nl, lacret.Config{Seed: 1})
//	if err != nil { ... }
//	fmt.Printf("Tclk=%.2fns  min-area violations=%d  LAC violations=%d\n",
//		res.Tclk, res.MinArea.NFOA, res.LAC.NFOA)
package lacret

import (
	"context"
	"io"

	"lacret/internal/bench89"
	"lacret/internal/check"
	"lacret/internal/core"
	"lacret/internal/mcr"
	"lacret/internal/netlist"
	"lacret/internal/plan"
	"lacret/internal/render"
	"lacret/internal/retime"
	"lacret/internal/sim"
	"lacret/internal/sta"
	"lacret/internal/tech"
)

// Netlist is a gate-level / RT-level sequential netlist.
type Netlist = netlist.Netlist

// NodeID identifies a netlist node.
type NodeID = netlist.NodeID

// Tech bundles process parameters (wire RC, repeater drive, areas, Lmax).
type Tech = tech.Tech

// Config tunes the interconnect-planning flow.
type Config = plan.Config

// Result is a complete planning outcome (floorplan, routing, retiming
// graph, Tinit/Tmin/Tclk, and both retiming results).
type Result = plan.Result

// Iteration is one planning pass of PlanIterations.
type Iteration = plan.Iteration

// PlanState threads the intermediate artifacts of one planning pass through
// the pipeline stages (partition, floorplan, grid, routing, ...).
type PlanState = plan.PlanState

// Stage is one step of the planning pipeline, operating on a PlanState.
type Stage = plan.Stage

// StageEvent is one per-stage trace record (name, wall time, counters),
// streamed through Config.Trace and accumulated on Result.Trace.
type StageEvent = plan.StageEvent

// Counter is one named metric attached to a StageEvent.
type Counter = plan.Counter

// Budget is the soft wall-clock limit of one planning pass; anytime stages
// degrade to their best-so-far result at the deadline (Config.Budget).
type Budget = plan.Budget

// StageError wraps a failure inside one pipeline stage; panics in library
// code are recovered into StageErrors carrying the stage name and stack.
type StageError = plan.StageError

// ErrBudgetExceeded is the retiming period search's anytime error: the
// context expired mid-search and Partial carries the proven bracket.
type ErrBudgetExceeded = retime.ErrBudgetExceeded

// MinPeriodPartial is the bracket state of an interrupted period search.
type MinPeriodPartial = retime.MinPeriodPartial

// LACOptions tunes the LAC-retiming loop (alpha, Nmax).
type LACOptions = core.Options

// LACResult is the outcome of a (LAC- or min-area) retiming.
type LACResult = core.Result

// LACProblem is a standalone local-area-constrained retiming instance, for
// callers that bring their own retiming graph and tile capacities.
type LACProblem = core.Problem

// RetimingGraph is the Leiserson–Saxe retiming graph with interconnect
// units.
type RetimingGraph = retime.Graph

// VertexKind classifies retiming-graph vertices.
type VertexKind = retime.VertexKind

// Vertex kinds: functional units, interconnect units, port pins.
const (
	KindUnit = retime.KindUnit
	KindWire = retime.KindWire
	KindPort = retime.KindPort
)

// CircuitParams describes a synthetic ISCAS89-class benchmark circuit.
type CircuitParams = bench89.Params

// ErrTclkInfeasible reports that a fixed target period cannot be met.
type ErrTclkInfeasible = plan.ErrTclkInfeasible

// NewNetlist returns an empty netlist with the given name.
func NewNetlist(name string) *Netlist { return netlist.New(name) }

// ParseBench reads an ISCAS89 .bench description.
func ParseBench(name string, r io.Reader) (*Netlist, error) {
	return netlist.ParseBench(name, r)
}

// WriteBench emits a netlist in .bench format.
func WriteBench(w io.Writer, n *Netlist) error { return netlist.WriteBench(w, n) }

// GenerateCircuit builds a synthetic ISCAS89-class circuit.
func GenerateCircuit(p CircuitParams) (*Netlist, error) { return bench89.Generate(p) }

// Catalog lists the ten Table 1 benchmark circuits plus the s100k scale
// tier (marked CircuitParams.ScaleTier).
func Catalog() []CircuitParams { return bench89.Catalog() }

// CircuitByName returns the catalog entry with the given name.
func CircuitByName(name string) (CircuitParams, bool) { return bench89.ByName(name) }

// DefaultTech returns the 180nm-class default technology.
func DefaultTech() Tech { return tech.Default() }

// Plan runs the full interconnect-planning flow: partition → floorplan →
// tile grid → global routing → repeater insertion → retiming-graph
// construction → min-area and LAC retiming at Tclk.
func Plan(nl *Netlist, cfg Config) (*Result, error) { return plan.Plan(nl, cfg) }

// PlanContext is Plan under a context (hard stop at stage boundaries and
// checkpoints) and the configured soft Budget (anytime degradation). On a
// pipeline error the partial Result built so far accompanies it.
func PlanContext(ctx context.Context, nl *Netlist, cfg Config) (*Result, error) {
	return plan.PlanContext(ctx, nl, cfg)
}

// PlanIterations runs up to maxIters planning passes with floorplan
// expansion between passes (the paper's second-iteration flow); passes
// after the first reuse the partition and re-enter the pipeline at the
// floorplan stage.
func PlanIterations(nl *Netlist, cfg Config, maxIters int) ([]Iteration, error) {
	return plan.PlanIterations(nl, cfg, maxIters)
}

// PlanIterationsContext is PlanIterations under a context: cancellation
// stops the expansion loop between passes and the running pass at its next
// stage boundary, keeping every finished iteration.
func PlanIterationsContext(ctx context.Context, nl *Netlist, cfg Config, maxIters int) ([]Iteration, error) {
	return plan.PlanIterationsContext(ctx, nl, cfg, maxIters)
}

// NewPlanState validates inputs, resolves configuration defaults in place,
// and returns a fresh pipeline state; drive it with PlanState.Run over
// DefaultStages (or any custom stage list) for stage-level control of the
// flow Plan runs in one shot.
func NewPlanState(nl *Netlist, cfg *Config) (*PlanState, error) { return plan.NewState(nl, cfg) }

// DefaultStages returns the paper's pipeline: partition → floorplan → tile
// grid → global routing → repeater planning → retiming-graph build →
// periods → constraints → min-area retiming → LAC-retiming.
func DefaultStages() []Stage { return plan.DefaultStages() }

// ExpandedConfig derives the next-iteration configuration from a violating
// result (expanding congested blocks and channels, carrying Tclk over).
func ExpandedConfig(cfg Config, res *Result) Config { return plan.ExpandedConfig(cfg, res) }

// CountInterconnectFFs counts flip-flops residing inside interconnects
// (the paper's N_FN) in a retimed graph.
func CountInterconnectFFs(g *RetimingGraph) int { return plan.CountInterconnectFFs(g) }

// TimingReport is a static-timing-analysis result (arrivals, slacks,
// critical path) for a retiming graph at a target period.
type TimingReport = sta.Report

// AnalyzeTiming runs static timing analysis at period T.
func AnalyzeTiming(g *RetimingGraph, T float64) (*TimingReport, error) { return sta.Analyze(g, T) }

// FormatCriticalPath renders a report's critical path with unit names,
// kinds, delays, and arrivals.
func FormatCriticalPath(g *RetimingGraph, rep *TimingReport) string { return sta.FormatPath(g, rep) }

// MaxCycleRatio returns the iteration bound of a retiming graph — the
// delay-to-register ratio of its worst cycle, a lower bound on any
// achievable clock period.
func MaxCycleRatio(g *RetimingGraph) float64 { return mcr.MaxCycleRatio(g, 1e-6).Ratio }

// Verify re-derives every number a planning result reports and confirms
// the formulation's invariants; it returns the list of verified facts.
func Verify(res *Result) ([]string, error) {
	out, err := check.Verify(res)
	if err != nil {
		return nil, err
	}
	return out.Checks, nil
}

// VerifyState validates a (possibly partial) pipeline state: artifacts of
// stages that have run are checked against their invariants, later stages'
// are skipped. After a complete pass it subsumes Verify.
func VerifyState(st *PlanState) ([]string, error) {
	out, err := check.VerifyState(st)
	if err != nil {
		return nil, err
	}
	return out.Checks, nil
}

// RenderSVG draws the planning result (floorplan, tile grid, routes,
// violated tiles) as a standalone SVG document.
func RenderSVG(res *Result) string { return render.SVG(res, render.DefaultOptions()) }

// CheckRetimingEquivalence proves by 64-lane random simulation that the
// retiming labels r preserve the circuit's primary-output behavior. ops
// can be derived from a planning result with SimOps.
func CheckRetimingEquivalence(g *RetimingGraph, ops []SimOp, r []int, steps int, seed int64) error {
	return sim.CheckRetimingEquivalence(g, ops, r, steps, seed)
}

// SimOp is a simulator Boolean function.
type SimOp = sim.Op

// SimOps derives per-vertex simulator functions for a planned design.
func SimOps(res *Result) ([]SimOp, error) { return sim.OpsFromGraph(res.Graph, res.Netlist) }
