// Package steiner constructs rectilinear Steiner trees for global nets, in
// the spirit of the Ho–Vijayan–Wong construction the paper cites for its
// routing step: a rectilinear minimum spanning tree is built first, then
// every tree edge is embedded as an L-shape chosen to maximize overlap with
// the segments already embedded, and overlapping collinear segments are
// merged so shared trunks are counted once.
//
// The tree is used for wirelength estimation and for ordering maze-routing
// targets; the grid router performs the final embedding.
package steiner

import (
	"fmt"
	"math"
	"sort"
)

// Point is a terminal or Steiner point.
type Point struct {
	X, Y float64
}

// Segment is an axis-parallel wire segment.
type Segment struct {
	A, B Point // A.X == B.X (vertical) or A.Y == B.Y (horizontal)
}

// Length returns the segment length.
func (s Segment) Length() float64 {
	return math.Abs(s.A.X-s.B.X) + math.Abs(s.A.Y-s.B.Y)
}

// Horizontal reports whether the segment is horizontal.
func (s Segment) Horizontal() bool { return s.A.Y == s.B.Y }

// Tree is a rectilinear Steiner tree.
type Tree struct {
	Terminals []Point
	Segments  []Segment
	// MSTEdges lists the spanning-tree edges as terminal index pairs, in
	// construction order — the router uses this to order its targets.
	MSTEdges [][2]int
}

// Length returns the total wire length of the tree (overlaps merged).
func (t *Tree) Length() float64 {
	l := 0.0
	for _, s := range t.Segments {
		l += s.Length()
	}
	return l
}

func manhattan(a, b Point) float64 {
	return math.Abs(a.X-b.X) + math.Abs(a.Y-b.Y)
}

// Build constructs a rectilinear Steiner tree over the terminals.
// Degenerate inputs (zero or one terminal) yield an empty segment set.
func Build(terminals []Point) (*Tree, error) {
	for i, p := range terminals {
		if math.IsNaN(p.X) || math.IsNaN(p.Y) || math.IsInf(p.X, 0) || math.IsInf(p.Y, 0) {
			return nil, fmt.Errorf("steiner: terminal %d has invalid coordinates", i)
		}
	}
	t := &Tree{Terminals: append([]Point(nil), terminals...)}
	n := len(terminals)
	if n <= 1 {
		return t, nil
	}

	// Prim MST on Manhattan distance, deterministic tie-breaking by index.
	inTree := make([]bool, n)
	dist := make([]float64, n)
	parent := make([]int, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		parent[i] = -1
	}
	inTree[0] = true
	for j := 1; j < n; j++ {
		dist[j] = manhattan(terminals[0], terminals[j])
		parent[j] = 0
	}
	for k := 1; k < n; k++ {
		best := -1
		for j := 0; j < n; j++ {
			if !inTree[j] && (best < 0 || dist[j] < dist[best]) {
				best = j
			}
		}
		inTree[best] = true
		t.MSTEdges = append(t.MSTEdges, [2]int{parent[best], best})
		for j := 0; j < n; j++ {
			if !inTree[j] {
				if d := manhattan(terminals[best], terminals[j]); d < dist[j] {
					dist[j] = d
					parent[j] = best
				}
			}
		}
	}

	// Embed each MST edge as an L-shape; of the two corner choices pick
	// the one overlapping more with segments already embedded (HVW-style
	// local improvement), then merge collinear overlaps.
	var raw []Segment
	addL := func(a, b Point, corner Point) {
		if a.X != corner.X && a.Y != corner.Y {
			panic("steiner: corner not aligned")
		}
		if a != corner {
			raw = append(raw, Segment{A: a, B: corner})
		}
		if b != corner {
			raw = append(raw, Segment{A: corner, B: b})
		}
	}
	for _, e := range t.MSTEdges {
		a, b := terminals[e[0]], terminals[e[1]]
		if a.X == b.X || a.Y == b.Y {
			if a != b {
				raw = append(raw, Segment{A: a, B: b})
			}
			continue
		}
		c1 := Point{X: a.X, Y: b.Y} // vertical first
		c2 := Point{X: b.X, Y: a.Y} // horizontal first
		if overlapGain(raw, a, b, c1) >= overlapGain(raw, a, b, c2) {
			addL(a, b, c1)
		} else {
			addL(a, b, c2)
		}
	}
	t.Segments = mergeSegments(raw)
	return t, nil
}

// overlapGain estimates how much of the L-path a→corner→b coincides with
// existing segments.
func overlapGain(segs []Segment, a, b, corner Point) float64 {
	return pathOverlap(segs, a, corner) + pathOverlap(segs, corner, b)
}

// pathOverlap returns the overlapped length of the axis-parallel segment
// (p,q) with the existing segments.
func pathOverlap(segs []Segment, p, q Point) float64 {
	if p == q {
		return 0
	}
	total := 0.0
	for _, s := range segs {
		total += segOverlap(s, Segment{A: p, B: q})
	}
	return total
}

// segOverlap returns the length of the collinear overlap of two
// axis-parallel segments (0 if not collinear).
func segOverlap(s, t Segment) float64 {
	if s.Horizontal() != t.Horizontal() {
		return 0
	}
	if s.Horizontal() {
		if s.A.Y != t.A.Y {
			return 0
		}
		lo := math.Max(math.Min(s.A.X, s.B.X), math.Min(t.A.X, t.B.X))
		hi := math.Min(math.Max(s.A.X, s.B.X), math.Max(t.A.X, t.B.X))
		if hi > lo {
			return hi - lo
		}
		return 0
	}
	if s.A.X != t.A.X {
		return 0
	}
	lo := math.Max(math.Min(s.A.Y, s.B.Y), math.Min(t.A.Y, t.B.Y))
	hi := math.Min(math.Max(s.A.Y, s.B.Y), math.Max(t.A.Y, t.B.Y))
	if hi > lo {
		return hi - lo
	}
	return 0
}

// mergeSegments merges collinear overlapping/adjacent segments so shared
// trunks count once.
func mergeSegments(raw []Segment) []Segment {
	type key struct {
		horizontal bool
		coord      float64
	}
	groups := map[key][][2]float64{}
	for _, s := range raw {
		if s.Horizontal() {
			lo, hi := math.Min(s.A.X, s.B.X), math.Max(s.A.X, s.B.X)
			k := key{true, s.A.Y}
			groups[k] = append(groups[k], [2]float64{lo, hi})
		} else {
			lo, hi := math.Min(s.A.Y, s.B.Y), math.Max(s.A.Y, s.B.Y)
			k := key{false, s.A.X}
			groups[k] = append(groups[k], [2]float64{lo, hi})
		}
	}
	keys := make([]key, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].horizontal != keys[j].horizontal {
			return keys[i].horizontal
		}
		return keys[i].coord < keys[j].coord
	})
	var out []Segment
	for _, k := range keys {
		ivs := groups[k]
		sort.Slice(ivs, func(i, j int) bool { return ivs[i][0] < ivs[j][0] })
		cur := ivs[0]
		flush := func() {
			if k.horizontal {
				out = append(out, Segment{A: Point{cur[0], k.coord}, B: Point{cur[1], k.coord}})
			} else {
				out = append(out, Segment{A: Point{k.coord, cur[0]}, B: Point{k.coord, cur[1]}})
			}
		}
		for _, iv := range ivs[1:] {
			if iv[0] <= cur[1] {
				if iv[1] > cur[1] {
					cur[1] = iv[1]
				}
			} else {
				flush()
				cur = iv
			}
		}
		flush()
	}
	return out
}

// MSTLength returns the total Manhattan length of the spanning tree before
// Steinerization — an upper bound on the Steiner tree length.
func (t *Tree) MSTLength() float64 {
	l := 0.0
	for _, e := range t.MSTEdges {
		l += manhattan(t.Terminals[e[0]], t.Terminals[e[1]])
	}
	return l
}

// HPWL returns the half-perimeter wirelength of the terminals — a lower
// bound for nets of up to three terminals.
func HPWL(terminals []Point) float64 {
	if len(terminals) < 2 {
		return 0
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, p := range terminals {
		minX = math.Min(minX, p.X)
		maxX = math.Max(maxX, p.X)
		minY = math.Min(minY, p.Y)
		maxY = math.Max(maxY, p.Y)
	}
	return (maxX - minX) + (maxY - minY)
}
