package steiner

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDegenerate(t *testing.T) {
	tr, err := Build(nil)
	if err != nil || tr.Length() != 0 {
		t.Fatalf("empty: %v %g", err, tr.Length())
	}
	tr, err = Build([]Point{{1, 2}})
	if err != nil || tr.Length() != 0 || len(tr.MSTEdges) != 0 {
		t.Fatalf("single: %+v", tr)
	}
}

func TestTwoTerminals(t *testing.T) {
	tr, err := Build([]Point{{0, 0}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Length() != 7 {
		t.Fatalf("length %g, want 7", tr.Length())
	}
	if len(tr.MSTEdges) != 1 {
		t.Fatalf("edges %v", tr.MSTEdges)
	}
}

func TestCollinearTerminals(t *testing.T) {
	tr, err := Build([]Point{{0, 0}, {5, 0}, {2, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Length() != 5 {
		t.Fatalf("length %g, want 5 (merged line)", tr.Length())
	}
}

func TestSteinerBeatsIndependentLs(t *testing.T) {
	// Classic case: three terminals forming a "T" benefit from a shared
	// trunk. Terminals (0,0), (10,0), (5,5): MST length 15; a Steiner
	// tree uses trunk (0,0)-(10,0) plus stem (5,0)-(5,5): length 15 too.
	// Use the case where overlap merging matters: 4 corners + center.
	pts := []Point{{0, 0}, {10, 0}, {0, 10}, {10, 10}, {5, 5}}
	tr, err := Build(pts)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Length() > tr.MSTLength()+1e-9 {
		t.Fatalf("steiner length %g exceeds MST %g", tr.Length(), tr.MSTLength())
	}
}

func TestDuplicateTerminals(t *testing.T) {
	tr, err := Build([]Point{{2, 2}, {2, 2}, {5, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Length() != 3 {
		t.Fatalf("length %g, want 3", tr.Length())
	}
}

func TestInvalidCoordinates(t *testing.T) {
	if _, err := Build([]Point{{math.NaN(), 0}}); err == nil {
		t.Fatal("NaN accepted")
	}
	if _, err := Build([]Point{{math.Inf(1), 0}}); err == nil {
		t.Fatal("Inf accepted")
	}
}

func TestSegmentHelpers(t *testing.T) {
	h := Segment{A: Point{0, 1}, B: Point{5, 1}}
	v := Segment{A: Point{2, 0}, B: Point{2, 7}}
	if !h.Horizontal() || v.Horizontal() {
		t.Fatal("orientation")
	}
	if h.Length() != 5 || v.Length() != 7 {
		t.Fatal("length")
	}
	if got := segOverlap(h, Segment{A: Point{3, 1}, B: Point{9, 1}}); got != 2 {
		t.Fatalf("overlap %g", got)
	}
	if got := segOverlap(h, v); got != 0 {
		t.Fatalf("cross overlap %g", got)
	}
}

func TestHPWL(t *testing.T) {
	if HPWL(nil) != 0 || HPWL([]Point{{1, 1}}) != 0 {
		t.Fatal("degenerate HPWL")
	}
	if got := HPWL([]Point{{0, 0}, {3, 4}, {1, 1}}); got != 7 {
		t.Fatalf("HPWL %g", got)
	}
}

// Properties on random instances.
func TestQuickTreeProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{X: float64(rng.Intn(20)), Y: float64(rng.Intn(20))}
		}
		tr, err := Build(pts)
		if err != nil {
			return false
		}
		// Sandwich: HPWL <= steiner <= MST  (HPWL is a valid lower bound
		// for any connected rectilinear tree).
		if tr.Length() > tr.MSTLength()+1e-9 {
			return false
		}
		if tr.Length() < HPWL(pts)-1e-9 {
			return false
		}
		// Spanning: n-1 MST edges.
		return len(tr.MSTEdges) == n-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickConnectivity: the segment set must connect all terminals
// (union-find over touching segments and terminals).
func TestQuickConnectivity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{X: float64(rng.Intn(12)), Y: float64(rng.Intn(12))}
		}
		tr, err := Build(pts)
		if err != nil {
			return false
		}
		return connected(tr)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// connected checks all terminals are joined by the segments.
func connected(tr *Tree) bool {
	n := len(tr.Terminals)
	if n <= 1 {
		return true
	}
	m := len(tr.Segments)
	parentUF := make([]int, n+m)
	for i := range parentUF {
		parentUF[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parentUF[x] != x {
			parentUF[x] = parentUF[parentUF[x]]
			x = parentUF[x]
		}
		return x
	}
	union := func(a, b int) { parentUF[find(a)] = find(b) }

	onSeg := func(s Segment, p Point) bool {
		if s.Horizontal() {
			return p.Y == s.A.Y && p.X >= math.Min(s.A.X, s.B.X)-1e-9 && p.X <= math.Max(s.A.X, s.B.X)+1e-9
		}
		return p.X == s.A.X && p.Y >= math.Min(s.A.Y, s.B.Y)-1e-9 && p.Y <= math.Max(s.A.Y, s.B.Y)+1e-9
	}
	segsTouch := func(a, b Segment) bool {
		return onSeg(a, b.A) || onSeg(a, b.B) || onSeg(b, a.A) || onSeg(b, a.B) || crossing(a, b)
	}
	for i := 0; i < m; i++ {
		for j := i + 1; j < m; j++ {
			if segsTouch(tr.Segments[i], tr.Segments[j]) {
				union(n+i, n+j)
			}
		}
		for ti, p := range tr.Terminals {
			if onSeg(tr.Segments[i], p) {
				union(ti, n+i)
			}
		}
	}
	// Duplicate terminals connect trivially.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if tr.Terminals[i] == tr.Terminals[j] {
				union(i, j)
			}
		}
	}
	root := find(0)
	for i := 1; i < n; i++ {
		if find(i) != root {
			return false
		}
	}
	return true
}

// crossing reports whether a horizontal and vertical segment intersect.
func crossing(a, b Segment) bool {
	if a.Horizontal() == b.Horizontal() {
		return false
	}
	h, v := a, b
	if !h.Horizontal() {
		h, v = b, a
	}
	x := v.A.X
	y := h.A.Y
	return x >= math.Min(h.A.X, h.B.X) && x <= math.Max(h.A.X, h.B.X) &&
		y >= math.Min(v.A.Y, v.B.Y) && y <= math.Max(v.A.Y, v.B.Y)
}
