package mcr

import (
	"math"
	"math/rand"
	"testing"

	"lacret/internal/retime"
)

func ring(k int, d float64, regs int) *retime.Graph {
	rg := retime.NewGraph()
	for i := 0; i < k; i++ {
		rg.AddVertex("u", retime.KindUnit, d)
	}
	for i := 0; i < k-1; i++ {
		rg.AddEdge(i, i+1, 0)
	}
	rg.AddEdge(k-1, 0, regs)
	return rg
}

func TestRingRatio(t *testing.T) {
	// 4 vertices of delay 2, 2 registers: MCR = 8/2 = 4.
	rg := ring(4, 2, 2)
	r := MaxCycleRatio(rg, 1e-8)
	if !r.HasCycle {
		t.Fatal("cycle not found")
	}
	if math.Abs(r.Ratio-4) > 1e-6 {
		t.Fatalf("ratio %g, want 4", r.Ratio)
	}
}

func TestAcyclicGraph(t *testing.T) {
	rg := retime.NewGraph()
	a := rg.AddVertex("a", retime.KindUnit, 3)
	b := rg.AddVertex("b", retime.KindUnit, 3)
	rg.AddEdge(a, b, 1)
	r := MaxCycleRatio(rg, 1e-8)
	if r.HasCycle || r.Ratio != 0 {
		t.Fatalf("acyclic graph: %+v", r)
	}
}

func TestTwoCyclesTakesWorse(t *testing.T) {
	// Cycle A: delay 6, 3 regs (ratio 2). Cycle B: delay 4, 1 reg (ratio 4).
	rg := retime.NewGraph()
	a0 := rg.AddVertex("a0", retime.KindUnit, 3)
	a1 := rg.AddVertex("a1", retime.KindUnit, 3)
	rg.AddEdge(a0, a1, 1)
	rg.AddEdge(a1, a0, 2)
	b0 := rg.AddVertex("b0", retime.KindUnit, 2)
	b1 := rg.AddVertex("b1", retime.KindUnit, 2)
	rg.AddEdge(b0, b1, 0)
	rg.AddEdge(b1, b0, 1)
	r := MaxCycleRatio(rg, 1e-8)
	if math.Abs(r.Ratio-4) > 1e-6 {
		t.Fatalf("ratio %g, want 4", r.Ratio)
	}
}

func TestSelfLoop(t *testing.T) {
	rg := retime.NewGraph()
	v := rg.AddVertex("v", retime.KindUnit, 5)
	rg.AddEdge(v, v, 2)
	r := MaxCycleRatio(rg, 1e-8)
	if math.Abs(r.Ratio-2.5) > 1e-6 {
		t.Fatalf("ratio %g, want 2.5", r.Ratio)
	}
}

// TestMCRLowerBoundsMinPeriod: on random graphs, the achieved minimum
// period is never below the cycle-ratio bound, and without pinned ports
// the bound is achieved within rounding (registers are integral, so the
// attained period can exceed MCR by a fraction of a vertex delay).
func TestMCRLowerBoundsMinPeriod(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 30; trial++ {
		n := 4 + rng.Intn(5)
		rg := retime.NewGraph()
		for i := 0; i < n; i++ {
			rg.AddVertex("u", retime.KindUnit, float64(1+rng.Intn(4)))
		}
		for i := 0; i < n; i++ {
			j := (i + 1) % n
			w := rng.Intn(2)
			if j <= i && w == 0 {
				w = 1
			}
			rg.AddEdge(i, j, w)
		}
		for k := 0; k < n; k++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a == b {
				continue
			}
			w := rng.Intn(3)
			if b <= a && w == 0 {
				w = 1
			}
			rg.AddEdge(a, b, w)
		}
		if rg.Validate() != nil {
			continue
		}
		tmin, _, err := rg.MinPeriod(1e-5)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !LowerBoundsPeriod(rg, tmin, 1e-5) {
			r := MaxCycleRatio(rg, 1e-8)
			t.Fatalf("trial %d: Tmin %g below MCR %g", trial, tmin, r.Ratio)
		}
	}
}

// TestMCRAgainstBruteForce enumerates simple cycles on tiny graphs.
func TestMCRAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 40; trial++ {
		n := 3 + rng.Intn(3)
		rg := retime.NewGraph()
		delays := make([]float64, n)
		for i := 0; i < n; i++ {
			delays[i] = float64(1 + rng.Intn(5))
			rg.AddVertex("u", retime.KindUnit, delays[i])
		}
		type E struct {
			from, to, w int
		}
		var es []E
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == j || rng.Float64() < 0.4 {
					continue
				}
				w := rng.Intn(3)
				if j <= i && w == 0 {
					w = 1
				}
				es = append(es, E{i, j, w})
				rg.AddEdge(i, j, w)
			}
		}
		// Brute force over simple cycles via DFS.
		best := 0.0
		found := false
		var path []int
		onPath := make([]bool, n)
		var dfs func(start, v int, delay float64, regs int)
		dfs = func(start, v int, delay float64, regs int) {
			for _, e := range es {
				if e.from != v {
					continue
				}
				if e.to == start {
					d := delay + 0.0
					r := regs + e.w
					if r > 0 {
						ratio := d / float64(r)
						if ratio > best {
							best = ratio
						}
						found = true
					}
					continue
				}
				if e.to < start || onPath[e.to] {
					continue // canonical: cycles rooted at smallest vertex
				}
				onPath[e.to] = true
				path = append(path, e.to)
				dfs(start, e.to, delay+delays[e.to], regs+e.w)
				path = path[:len(path)-1]
				onPath[e.to] = false
			}
		}
		for s := 0; s < n; s++ {
			onPath[s] = true
			dfs(s, s, delays[s], 0)
			onPath[s] = false
		}
		got := MaxCycleRatio(rg, 1e-9)
		if !found {
			if got.HasCycle {
				t.Fatalf("trial %d: solver found a cycle, brute force none", trial)
			}
			continue
		}
		if !got.HasCycle {
			t.Fatalf("trial %d: brute force found a cycle, solver none", trial)
		}
		if math.Abs(got.Ratio-best) > 1e-6 {
			t.Fatalf("trial %d: solver %g, brute force %g", trial, got.Ratio, best)
		}
	}
}
