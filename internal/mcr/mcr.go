// Package mcr computes the maximum cycle ratio of a retiming graph:
//
//	MCR = max over cycles c of  delay(c) / registers(c)
//
// For a sequential circuit this is the classical iteration bound — no
// retiming can achieve a clock period below it, and (ignoring I/O-path
// limits) a period of MCR is always achievable. The planner uses it as an
// independent cross-check of the binary-search minimum-period retiming,
// and it is an informative lower bound to report next to Tmin.
//
// The implementation is a parametric shortest-path search (Lawler's
// binary search over the ratio λ): a cycle with delay(c) − λ·regs(c) > 0
// exists iff λ < MCR, and the existence test is a Bellman–Ford positive-
// cycle detection on edge lengths delay(u) − λ·w(e). Vertex delays are
// folded onto outgoing edges, matching the retiming convention that a
// cycle's delay is the sum of its vertex delays.
package mcr

import (
	"math"

	"lacret/internal/retime"
)

// Result reports the maximum cycle ratio.
type Result struct {
	// Ratio is the maximum cycle ratio (0 when the graph is acyclic).
	Ratio float64
	// HasCycle reports whether any cycle exists at all.
	HasCycle bool
}

// MaxCycleRatio computes the maximum delay-to-register ratio over all
// cycles of the graph to within eps (<=0 selects 1e-6). Well-formed
// retiming graphs have at least one register on every cycle, so the ratio
// is finite.
func MaxCycleRatio(rg *retime.Graph, eps float64) Result {
	if eps <= 0 {
		eps = 1e-6
	}
	n := rg.N()
	type edge struct {
		from, to int
		w        int
		d        float64
	}
	var edges []edge
	hi := 0.0 // upper bound: total delay over min registers (1) on a cycle
	total := 0.0
	for i := 0; i < rg.M(); i++ {
		f, t, w := rg.Edge(i)
		edges = append(edges, edge{from: f, to: t, w: w, d: rg.Delay(f)})
	}
	for v := 0; v < n; v++ {
		total += rg.Delay(v)
	}
	hi = total
	if hi == 0 {
		hi = 1
	}

	// positiveCycle reports whether some cycle has Σ(d − λ·w) > 0.
	positiveCycle := func(lambda float64) bool {
		dist := make([]float64, n) // longest-path potentials from virtual root
		for iter := 0; iter <= n; iter++ {
			changed := false
			for _, e := range edges {
				if nd := dist[e.from] + e.d - lambda*float64(e.w); nd > dist[e.to]+1e-12 {
					dist[e.to] = nd
					changed = true
				}
			}
			if !changed {
				return false
			}
		}
		return true
	}

	if !hasCycle(rg) {
		return Result{Ratio: 0, HasCycle: false}
	}

	lo := 0.0
	for hi-lo > eps {
		mid := (lo + hi) / 2
		if positiveCycle(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return Result{Ratio: hi, HasCycle: true}
}

func hasCycle(rg *retime.Graph) bool {
	n := rg.N()
	indeg := make([]int, n)
	for i := 0; i < rg.M(); i++ {
		_, t, _ := rg.Edge(i)
		indeg[t]++
	}
	queue := make([]int, 0, n)
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			queue = append(queue, v)
		}
	}
	removed := 0
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		removed++
		for _, ei := range rg.Out(v) {
			_, t, _ := rg.Edge(ei)
			indeg[t]--
			if indeg[t] == 0 {
				queue = append(queue, t)
			}
		}
	}
	return removed != n
}

// LowerBoundsPeriod reports whether the given achieved minimum period is
// consistent with the cycle-ratio bound: Tmin >= MCR − eps. The gap above
// MCR, if any, comes from I/O-path constraints (pinned ports) and the
// integrality of register placement.
func LowerBoundsPeriod(rg *retime.Graph, tmin, eps float64) bool {
	r := MaxCycleRatio(rg, eps)
	if !r.HasCycle {
		return true
	}
	return tmin >= r.Ratio-math.Max(eps, 1e-6)
}
