package sta

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"lacret/internal/retime"
)

// pipe builds pi -> a(1) -> b(2) -> po with a register on a->b.
func pipe() *retime.Graph {
	rg := retime.NewGraph()
	pi := rg.AddVertex("pi", retime.KindPort, 0)
	a := rg.AddVertex("a", retime.KindUnit, 1)
	b := rg.AddVertex("b", retime.KindUnit, 2)
	po := rg.AddVertex("po", retime.KindPort, 0)
	rg.AddEdge(pi, a, 0)
	rg.AddEdge(a, b, 1)
	rg.AddEdge(b, po, 0)
	return rg
}

func TestAnalyzePipeline(t *testing.T) {
	rg := pipe()
	rep, err := Analyze(rg, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Arrivals: pi=0, a=1, b=2 (launches from register), po=2.
	want := []float64{0, 1, 2, 2}
	for v, w := range want {
		if math.Abs(rep.Arrival[v]-w) > 1e-12 {
			t.Fatalf("arrival[%d]=%g, want %g", v, rep.Arrival[v], w)
		}
	}
	// Required at a: register boundary -> T; at b: po must be <= 3 so
	// required(b)=3; slack(b)=1.
	if !rep.Met() {
		t.Fatalf("period 3 should be met, WNS=%g", rep.WNS)
	}
	if math.Abs(rep.Slack[1]-2) > 1e-12 { // a: required 3 (next is reg) - 1
		t.Fatalf("slack[a]=%g", rep.Slack[1])
	}
	if err := CheckConsistency(rg, rep); err != nil {
		t.Fatal(err)
	}
}

func TestAnalyzeViolation(t *testing.T) {
	rg := pipe()
	rep, err := Analyze(rg, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Met() {
		t.Fatal("period 1.5 cannot be met (b alone takes 2)")
	}
	if math.Abs(rep.WNS-(-0.5)) > 1e-9 {
		t.Fatalf("WNS=%g, want -0.5", rep.WNS)
	}
	if err := CheckConsistency(rg, rep); err != nil {
		t.Fatal(err)
	}
	// Critical path ends at b or po with the same arrival.
	if len(rep.Critical) == 0 {
		t.Fatal("no critical path")
	}
	out := FormatPath(rg, rep)
	if !strings.Contains(out, "b") {
		t.Fatalf("critical path missing b:\n%s", out)
	}
}

func TestAnalyzeErrors(t *testing.T) {
	rg := pipe()
	if _, err := Analyze(rg, 0); err == nil {
		t.Fatal("zero period accepted")
	}
	if _, err := Analyze(rg, math.NaN()); err == nil {
		t.Fatal("NaN period accepted")
	}
}

func TestHistogram(t *testing.T) {
	rep := &Report{Slack: []float64{-1, 0.5, 2, 10}}
	counts := Histogram(rep, []float64{0, 1, 5})
	want := []int{1, 1, 1, 1}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("histogram %v, want %v", counts, want)
		}
	}
}

func TestFormatPathEmpty(t *testing.T) {
	if FormatPath(pipe(), &Report{}) != "(no path)" {
		t.Fatal("empty path formatting")
	}
}

// Property: on random graphs, T-WNS equals the period whenever violated,
// and all slacks at T=Period are nonnegative with minimum ~0.
func TestQuickConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 50; trial++ {
		rg := randomGraph(rng, 4+rng.Intn(6))
		p, err := rg.Period()
		if err != nil {
			t.Fatal(err)
		}
		for _, T := range []float64{p, p * 1.5, p * 0.7} {
			if T <= 0 {
				continue
			}
			rep, err := Analyze(rg, T)
			if err != nil {
				t.Fatal(err)
			}
			if err := CheckConsistency(rg, rep); err != nil {
				t.Fatalf("trial %d T=%g: %v", trial, T, err)
			}
		}
		rep, _ := Analyze(rg, p)
		if math.Abs(rep.WNS) > 1e-9 {
			t.Fatalf("trial %d: WNS at exact period = %g", trial, rep.WNS)
		}
	}
}

func randomGraph(rng *rand.Rand, n int) *retime.Graph {
	rg := retime.NewGraph()
	for i := 0; i < n; i++ {
		rg.AddVertex("u", retime.KindUnit, float64(1+rng.Intn(4)))
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j || rng.Float64() < 0.5 {
				continue
			}
			w := rng.Intn(2)
			if j <= i && w == 0 {
				w = 1
			}
			rg.AddEdge(i, j, w)
		}
	}
	return rg
}

// TestCriticalPathIsReal: replaying the critical path's delays must
// reproduce the endpoint arrival.
func TestCriticalPathIsReal(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for trial := 0; trial < 30; trial++ {
		rg := randomGraph(rng, 5+rng.Intn(5))
		p, err := rg.Period()
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Analyze(rg, p)
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Critical) == 0 {
			continue
		}
		sum := 0.0
		for _, v := range rep.Critical {
			sum += rg.Delay(v)
		}
		end := rep.Critical[len(rep.Critical)-1]
		if math.Abs(sum-rep.Arrival[end]) > 1e-9 {
			t.Fatalf("trial %d: path delays %g != arrival %g", trial, sum, rep.Arrival[end])
		}
		// Consecutive path vertices must be joined by zero-weight edges.
		for i := 1; i < len(rep.Critical); i++ {
			ok := false
			for _, ei := range rg.Out(rep.Critical[i-1]) {
				_, to, w := rg.Edge(ei)
				if to == rep.Critical[i] && w == 0 {
					ok = true
				}
			}
			if !ok {
				t.Fatalf("trial %d: path step %d not a zero-weight edge", trial, i)
			}
		}
	}
}
