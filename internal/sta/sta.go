// Package sta performs static timing analysis on a retiming graph under
// the current register assignment: arrival and required times per unit,
// slacks against a target period, worst negative slack, and critical-path
// extraction. The planner and the examples use it to explain *why* a
// period is what it is (which units and wires sit on the critical path).
package sta

import (
	"fmt"
	"math"

	"lacret/internal/retime"
)

// Report is a timing analysis result.
type Report struct {
	// T is the analyzed clock period.
	T float64
	// Arrival[v] is the latest data-valid time at the output of v
	// (register outputs launch at t=0; vertex delays included).
	Arrival []float64
	// Required[v] is the latest permissible data-valid time at the output
	// of v so every downstream register (or sink) meets the period.
	Required []float64
	// Slack[v] = Required[v] − Arrival[v].
	Slack []float64
	// WNS is the worst (most negative) slack.
	WNS float64
	// Critical is a worst-slack combinational path, as vertex IDs from
	// launch to capture.
	Critical []int
}

// Met reports whether the period is met (no negative slack).
func (r *Report) Met() bool { return r.WNS >= -1e-9 }

// Analyze runs STA at period T. The graph must be free of combinational
// cycles (retime.Graph.Validate guarantees this).
func Analyze(rg *retime.Graph, T float64) (*Report, error) {
	if T <= 0 || math.IsNaN(T) {
		return nil, fmt.Errorf("sta: invalid period %g", T)
	}
	arr, err := rg.Arrivals()
	if err != nil {
		return nil, err
	}
	n := rg.N()
	req := make([]float64, n)
	// Backward pass in reverse topological order of the zero-weight
	// subgraph.
	order, err := zeroTopo(rg)
	if err != nil {
		return nil, err
	}
	for i := range req {
		req[i] = T
	}
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		for _, ei := range rg.Out(v) {
			_, to, w := rg.Edge(ei)
			if w != 0 {
				continue
			}
			if r := req[to] - rg.Delay(to); r < req[v] {
				req[v] = r
			}
		}
	}
	rep := &Report{T: T, Arrival: arr, Required: req}
	rep.Slack = make([]float64, n)
	rep.WNS = math.Inf(1)
	worst := -1
	for v := 0; v < n; v++ {
		rep.Slack[v] = req[v] - arr[v]
		if rep.Slack[v] < rep.WNS {
			rep.WNS = rep.Slack[v]
			worst = v
		}
	}
	if worst >= 0 {
		rep.Critical = tracePath(rg, arr, req, worst)
	}
	return rep, nil
}

// tracePath reconstructs a worst-slack path through the given vertex:
// slack is uniform along a critical path, so the path extends backward
// along arrival-tight zero-weight in-edges and forward along
// required-tight zero-weight out-edges.
func tracePath(rg *retime.Graph, arr, req []float64, mid int) []int {
	var rev []int
	v := mid
	for {
		rev = append(rev, v)
		next := -1
		for _, ei := range rg.In(v) {
			from, _, w := rg.Edge(ei)
			if w != 0 {
				continue
			}
			if math.Abs(arr[from]+rg.Delay(v)-arr[v]) < 1e-9 {
				next = from
				break
			}
		}
		if next < 0 {
			break
		}
		v = next
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	path := rev
	v = mid
	for {
		next := -1
		for _, ei := range rg.Out(v) {
			_, to, w := rg.Edge(ei)
			if w != 0 {
				continue
			}
			if math.Abs((req[to]-rg.Delay(to))-req[v]) < 1e-9 {
				next = to
				break
			}
		}
		if next < 0 {
			break
		}
		path = append(path, next)
		v = next
	}
	return path
}

// zeroTopo returns a topological order of the zero-weight subgraph.
func zeroTopo(rg *retime.Graph) ([]int, error) {
	n := rg.N()
	indeg := make([]int, n)
	for i := 0; i < rg.M(); i++ {
		_, to, w := rg.Edge(i)
		if w == 0 {
			indeg[to]++
		}
	}
	queue := make([]int, 0, n)
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			queue = append(queue, v)
		}
	}
	order := make([]int, 0, n)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for _, ei := range rg.Out(v) {
			_, to, w := rg.Edge(ei)
			if w != 0 {
				continue
			}
			indeg[to]--
			if indeg[to] == 0 {
				queue = append(queue, to)
			}
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("sta: combinational cycle")
	}
	return order, nil
}

// FormatPath renders a critical path with names, kinds, delays, and the
// running arrival time.
func FormatPath(rg *retime.Graph, rep *Report) string {
	if len(rep.Critical) == 0 {
		return "(no path)"
	}
	out := ""
	for _, v := range rep.Critical {
		out += fmt.Sprintf("  %-24s %-5s d=%.3f arr=%.3f\n",
			rg.Name(v), rg.Kind(v), rg.Delay(v), rep.Arrival[v])
	}
	return out
}

// Histogram buckets slacks for a compact textual overview: counts of
// vertices with slack in [edges[i], edges[i+1]).
func Histogram(rep *Report, edges []float64) []int {
	counts := make([]int, len(edges)+1)
	for _, s := range rep.Slack {
		placed := false
		for i, e := range edges {
			if s < e {
				counts[i]++
				placed = true
				break
			}
		}
		if !placed {
			counts[len(edges)]++
		}
	}
	return counts
}

// CheckConsistency validates STA invariants against the independent period
// computation: WNS >= 0 iff Period <= T, and T - WNS equals the period for
// failing designs (the most violating path defines the period).
func CheckConsistency(rg *retime.Graph, rep *Report) error {
	p, err := rg.Period()
	if err != nil {
		return err
	}
	if rep.Met() != (p <= rep.T+1e-9) {
		return fmt.Errorf("sta: Met()=%v inconsistent with period %g vs T %g", rep.Met(), p, rep.T)
	}
	if !rep.Met() {
		if math.Abs((rep.T-rep.WNS)-p) > 1e-6 {
			return fmt.Errorf("sta: T-WNS=%g != period %g", rep.T-rep.WNS, p)
		}
	}
	return nil
}
