package floorplan

import (
	"math"
	"math/rand"
	"testing"
)

func softBlocks(areas ...float64) []Block {
	bs := make([]Block, len(areas))
	for i, a := range areas {
		bs[i] = Block{Name: "b", Area: a}
	}
	return bs
}

func TestPlaceSingleBlock(t *testing.T) {
	pl, err := Place(softBlocks(10000), nil, Options{Seed: 1, Moves: 100})
	if err != nil {
		t.Fatal(err)
	}
	if err := pl.Validate(); err != nil {
		t.Fatal(err)
	}
	if pl.ChipW*pl.ChipH < 10000 {
		t.Fatalf("chip %gx%g too small", pl.ChipW, pl.ChipH)
	}
}

func TestPlaceNoOverlap(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(10)
		var blocks []Block
		for i := 0; i < n; i++ {
			blocks = append(blocks, Block{Name: "b", Area: 1000 + rng.Float64()*9000})
		}
		var nets []Net
		for i := 0; i < n; i++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a != b {
				nets = append(nets, Net{a, b})
			}
		}
		pl, err := Place(blocks, nets, Options{Seed: int64(trial), Moves: 3000})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := pl.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestPlaceHardBlocksKeepFootprint(t *testing.T) {
	blocks := []Block{
		{Name: "h1", Hard: true, W: 100, H: 50, Area: 5000},
		{Name: "h2", Hard: true, W: 80, H: 80, Area: 6400},
		{Name: "s1", Area: 4000},
	}
	pl, err := Place(blocks, nil, Options{Seed: 3, Moves: 4000})
	if err != nil {
		t.Fatal(err)
	}
	if pl.W[0] != 100 || pl.H[0] != 50 || pl.W[1] != 80 || pl.H[1] != 80 {
		t.Fatalf("hard blocks resized: %v %v", pl.W, pl.H)
	}
	if err := pl.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPlaceSoftBlockAspectBounds(t *testing.T) {
	blocks := []Block{
		{Name: "s", Area: 10000, MinAspect: 0.5, MaxAspect: 2},
		{Name: "t", Area: 10000, MinAspect: 0.5, MaxAspect: 2},
	}
	pl, err := Place(blocks, nil, Options{Seed: 4, Moves: 2000, Whitespace: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range blocks {
		aspect := pl.H[i] / pl.W[i]
		if aspect < 0.45 || aspect > 2.2 {
			t.Fatalf("block %d aspect %g outside bounds", i, aspect)
		}
		area := pl.W[i] * pl.H[i]
		want := 10000 * 1.1
		if math.Abs(area-want)/want > 0.01 {
			t.Fatalf("block %d area %g, want %g", i, area, want)
		}
	}
}

func TestPlaceDeterministic(t *testing.T) {
	blocks := softBlocks(1000, 2000, 3000, 4000)
	nets := []Net{{0, 1}, {2, 3}, {0, 3}}
	a, err := Place(blocks, nets, Options{Seed: 7, Moves: 2000})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Place(blocks, nets, Options{Seed: 7, Moves: 2000})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.X {
		if a.X[i] != b.X[i] || a.Y[i] != b.Y[i] {
			t.Fatal("same seed, different placements")
		}
	}
}

func TestPlaceReasonablePacking(t *testing.T) {
	// 9 equal soft blocks should pack with limited dead space.
	blocks := softBlocks(1000, 1000, 1000, 1000, 1000, 1000, 1000, 1000, 1000)
	pl, err := Place(blocks, nil, Options{Seed: 5, Moves: 20000, Whitespace: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	blockArea := 9 * 1000 * 1.1
	util := blockArea / (pl.ChipW * pl.ChipH)
	if util < 0.6 {
		t.Fatalf("packing utilization %.2f too low (chip %gx%g)", util, pl.ChipW, pl.ChipH)
	}
}

func TestWirelengthPullsConnectedBlocks(t *testing.T) {
	// Two cliques of 4 blocks; heavily weighted nets should keep clique
	// members closer on average than cross pairs.
	blocks := softBlocks(1000, 1000, 1000, 1000, 1000, 1000, 1000, 1000)
	var nets []Net
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			nets = append(nets, Net{i, j}, Net{i + 4, j + 4})
		}
	}
	pl, err := Place(blocks, nets, Options{Seed: 11, Moves: 30000, WireWeight: 5})
	if err != nil {
		t.Fatal(err)
	}
	dist := func(a, b int) float64 {
		ax, ay := pl.Center(a)
		bx, by := pl.Center(b)
		return math.Abs(ax-bx) + math.Abs(ay-by)
	}
	var intra, cross float64
	var ni, nc int
	for i := 0; i < 8; i++ {
		for j := i + 1; j < 8; j++ {
			if (i < 4) == (j < 4) {
				intra += dist(i, j)
				ni++
			} else {
				cross += dist(i, j)
				nc++
			}
		}
	}
	if intra/float64(ni) >= cross/float64(nc) {
		t.Fatalf("intra-clique distance %.1f >= cross %.1f", intra/float64(ni), cross/float64(nc))
	}
}

func TestPlaceErrors(t *testing.T) {
	if _, err := Place(nil, nil, Options{}); err == nil {
		t.Fatal("empty blocks accepted")
	}
	if _, err := Place([]Block{{Hard: true}}, nil, Options{}); err == nil {
		t.Fatal("hard block without footprint accepted")
	}
	if _, err := Place([]Block{{Area: 0}}, nil, Options{}); err == nil {
		t.Fatal("soft block without area accepted")
	}
	if _, err := Place(softBlocks(100), []Net{{5}}, Options{}); err == nil {
		t.Fatal("net with bad block accepted")
	}
	if _, err := Place(softBlocks(100), nil, Options{WireWeight: -1}); err == nil {
		t.Fatal("negative wire weight accepted")
	}
	if _, err := Place(softBlocks(100), nil, Options{Whitespace: -1}); err == nil {
		t.Fatal("negative whitespace accepted")
	}
}

func TestDeadSpaceAndCenters(t *testing.T) {
	pl := &Placement{
		X: []float64{0, 10}, Y: []float64{0, 0},
		W: []float64{10, 5}, H: []float64{10, 5},
		ChipW: 15, ChipH: 10,
	}
	if err := pl.Validate(); err != nil {
		t.Fatal(err)
	}
	if ds := pl.DeadSpace(); math.Abs(ds-(150-125)) > 1e-9 {
		t.Fatalf("dead space %g", ds)
	}
	cx, cy := pl.Center(1)
	if cx != 12.5 || cy != 2.5 {
		t.Fatalf("center (%g,%g)", cx, cy)
	}
	if pl.BlockArea(0) != 100 {
		t.Fatalf("area %g", pl.BlockArea(0))
	}
}

func TestValidateCatchesOverlap(t *testing.T) {
	pl := &Placement{
		X: []float64{0, 5}, Y: []float64{0, 5},
		W: []float64{10, 10}, H: []float64{10, 10},
		ChipW: 20, ChipH: 20,
	}
	if err := pl.Validate(); err == nil {
		t.Fatal("overlap not caught")
	}
	pl2 := &Placement{
		X: []float64{0}, Y: []float64{0},
		W: []float64{30}, H: []float64{10},
		ChipW: 20, ChipH: 20,
	}
	if err := pl2.Validate(); err == nil {
		t.Fatal("out-of-chip not caught")
	}
}
