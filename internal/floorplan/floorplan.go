// Package floorplan implements a sequence-pair floorplanner with simulated
// annealing, supporting hard blocks (fixed footprint) and soft blocks
// (fixed area, adjustable aspect ratio). The planner floorplans the circuit
// blocks produced by partitioning; the resulting placement, chip outline,
// and dead space feed the tile graph used by LAC-retiming.
package floorplan

import (
	"fmt"
	"math"
	"math/rand"
)

// Block describes one circuit block to place.
type Block struct {
	Name string
	// Area is the block area (um^2); used for soft blocks and sanity
	// checks on hard ones.
	Area float64
	// Hard fixes the footprint at W x H; soft blocks derive their
	// footprint from Area and an aspect ratio chosen by the annealer.
	Hard bool
	// W, H: footprint of hard blocks (ignored for soft on input).
	W, H float64
	// MinAspect/MaxAspect bound H/W for soft blocks (defaults 0.5 / 2).
	MinAspect, MaxAspect float64
}

// Net is a set of block indices whose connection length (half-perimeter of
// the bounding box of block centers) enters the annealing cost.
type Net []int

// Placement is the floorplanning result.
type Placement struct {
	X, Y, W, H   []float64 // per block
	ChipW, ChipH float64
	// Cost components at the accepted solution.
	AreaCost, WireCost float64
}

// BlockArea returns the placed area of block i.
func (p *Placement) BlockArea(i int) float64 { return p.W[i] * p.H[i] }

// DeadSpace returns chip area minus total block area.
func (p *Placement) DeadSpace() float64 {
	t := 0.0
	for i := range p.W {
		t += p.W[i] * p.H[i]
	}
	return p.ChipW*p.ChipH - t
}

// Center returns the center coordinates of block i.
func (p *Placement) Center(i int) (float64, float64) {
	return p.X[i] + p.W[i]/2, p.Y[i] + p.H[i]/2
}

// Validate checks that no two blocks overlap and all fit the chip outline.
func (p *Placement) Validate() error {
	n := len(p.X)
	const eps = 1e-6
	for i := 0; i < n; i++ {
		if p.X[i] < -eps || p.Y[i] < -eps ||
			p.X[i]+p.W[i] > p.ChipW+eps || p.Y[i]+p.H[i] > p.ChipH+eps {
			return fmt.Errorf("floorplan: block %d outside chip", i)
		}
		for j := i + 1; j < n; j++ {
			if p.X[i] < p.X[j]+p.W[j]-eps && p.X[j] < p.X[i]+p.W[i]-eps &&
				p.Y[i] < p.Y[j]+p.H[j]-eps && p.Y[j] < p.Y[i]+p.H[i]-eps {
				return fmt.Errorf("floorplan: blocks %d and %d overlap", i, j)
			}
		}
	}
	return nil
}

// Options tunes the annealer.
type Options struct {
	Seed int64
	// Moves is the number of annealing moves (default 20000).
	Moves int
	// WireWeight scales the wirelength term against area (default 0.1).
	WireWeight float64
	// Whitespace inflates soft block footprints so the block can later
	// absorb repeaters and relocated flip-flops (default 0.15 = 15%).
	Whitespace float64
	// Channel is the routing-channel spacing kept around every block
	// (um). Blocks are packed on a grid inflated by Channel and then
	// centered in their slots, leaving free space for routing, repeaters,
	// and relocated flip-flops between blocks (default 0: abutted).
	Channel float64
}

type state struct {
	gp, gn []int // sequence pair: block indices in Γ+ and Γ- order
	w, h   []float64
}

// Place floorplans the blocks. The result is deterministic for a given
// seed. An error is returned for invalid inputs only; the annealer always
// produces a legal (overlap-free) placement.
func Place(blocks []Block, nets []Net, opt Options) (*Placement, error) {
	n := len(blocks)
	if n == 0 {
		return nil, fmt.Errorf("floorplan: no blocks")
	}
	for i, b := range blocks {
		if b.Hard {
			if b.W <= 0 || b.H <= 0 {
				return nil, fmt.Errorf("floorplan: hard block %d (%s) needs positive W,H", i, b.Name)
			}
		} else if b.Area <= 0 {
			return nil, fmt.Errorf("floorplan: soft block %d (%s) needs positive area", i, b.Name)
		}
	}
	for _, net := range nets {
		for _, b := range net {
			if b < 0 || b >= n {
				return nil, fmt.Errorf("floorplan: net references block %d outside [0,%d)", b, n)
			}
		}
	}
	if opt.Moves <= 0 {
		opt.Moves = 20000
	}
	if opt.WireWeight < 0 {
		return nil, fmt.Errorf("floorplan: negative wire weight")
	}
	if opt.WireWeight == 0 {
		opt.WireWeight = 0.1
	}
	if opt.Whitespace < 0 {
		return nil, fmt.Errorf("floorplan: negative whitespace")
	}
	if opt.Whitespace == 0 {
		opt.Whitespace = 0.15
	}
	if opt.Channel < 0 {
		return nil, fmt.Errorf("floorplan: negative channel width")
	}
	rng := rand.New(rand.NewSource(opt.Seed))

	st := state{gp: rng.Perm(n), gn: rng.Perm(n), w: make([]float64, n), h: make([]float64, n)}
	aspect := make([]float64, n)
	for i, b := range blocks {
		if b.Hard {
			st.w[i], st.h[i] = b.W, b.H
			continue
		}
		aspect[i] = 1
		setSoftSize(&st, i, b, 1, opt.Whitespace)
	}

	evalCost := func(s *state) (float64, *Placement) {
		pl := evaluate(s, opt.Channel)
		wl := wirelength(pl, nets)
		area := pl.ChipW * pl.ChipH
		// Penalize non-square chips mildly so tiles stay useful.
		ar := pl.ChipW / pl.ChipH
		if ar < 1 {
			ar = 1 / ar
		}
		pl.AreaCost = area
		pl.WireCost = wl
		return area*(1+0.05*(ar-1)) + opt.WireWeight*wl, pl
	}

	cost, pl := evalCost(&st)
	bestCost, bestPl := cost, pl

	temp := cost * 0.1
	cooling := math.Pow(1e-4, 1.0/float64(opt.Moves)) // temp decays to 0.01% over the run
	for move := 0; move < opt.Moves; move++ {
		cand := cloneState(&st)
		switch m := rng.Intn(3); m {
		case 0: // swap two blocks in Γ+
			i, j := rng.Intn(n), rng.Intn(n)
			cand.gp[i], cand.gp[j] = cand.gp[j], cand.gp[i]
		case 1: // swap two blocks in both sequences
			i, j := rng.Intn(n), rng.Intn(n)
			cand.gp[i], cand.gp[j] = cand.gp[j], cand.gp[i]
			k, l := posOf(cand.gn, cand.gp[i]), posOf(cand.gn, cand.gp[j])
			cand.gn[k], cand.gn[l] = cand.gn[l], cand.gn[k]
		default: // reshape a soft block
			softs := softIndices(blocks)
			if len(softs) == 0 {
				i, j := rng.Intn(n), rng.Intn(n)
				cand.gp[i], cand.gp[j] = cand.gp[j], cand.gp[i]
				break
			}
			i := softs[rng.Intn(len(softs))]
			b := blocks[i]
			lo, hi := b.MinAspect, b.MaxAspect
			if lo <= 0 {
				lo = 0.5
			}
			if hi <= 0 {
				hi = 2
			}
			a := lo * math.Pow(hi/lo, rng.Float64())
			aspect[i] = a
			setSoftSize(cand, i, b, a, opt.Whitespace)
		}
		cCost, cPl := evalCost(cand)
		if cCost < cost || rng.Float64() < math.Exp((cost-cCost)/math.Max(temp, 1e-12)) {
			st, cost = *cand, cCost
			if cCost < bestCost {
				bestCost, bestPl = cCost, cPl
			}
		}
		temp *= cooling
	}
	if err := bestPl.Validate(); err != nil {
		return nil, fmt.Errorf("floorplan: internal error: %v", err)
	}
	return bestPl, nil
}

func softIndices(blocks []Block) []int {
	var s []int
	for i, b := range blocks {
		if !b.Hard {
			s = append(s, i)
		}
	}
	return s
}

func setSoftSize(s *state, i int, b Block, aspect, whitespace float64) {
	area := b.Area * (1 + whitespace)
	w := math.Sqrt(area / aspect)
	s.w[i] = w
	s.h[i] = area / w
}

func posOf(seq []int, v int) int {
	for i, x := range seq {
		if x == v {
			return i
		}
	}
	panic("floorplan: value not in sequence")
}

func cloneState(s *state) *state {
	return &state{
		gp: append([]int(nil), s.gp...),
		gn: append([]int(nil), s.gn...),
		w:  append([]float64(nil), s.w...),
		h:  append([]float64(nil), s.h...),
	}
}

// evaluate computes block positions from the sequence pair by longest-path
// ("a before b in both sequences" means a is left of b; "after in Γ+,
// before in Γ-" means a is below b). Each block is packed in a slot
// inflated by the channel spacing and centered in it, so channels of free
// space separate the blocks.
func evaluate(s *state, channel float64) *Placement {
	n := len(s.gp)
	posP := make([]int, n)
	posN := make([]int, n)
	for i, b := range s.gp {
		posP[b] = i
	}
	for i, b := range s.gn {
		posN[b] = i
	}
	x := make([]float64, n)
	y := make([]float64, n)
	// X: process blocks in Γ- order; a left-of b iff posP and posN both
	// smaller, so all lefts of b precede it in Γ- order. Slot widths are
	// inflated by the channel spacing.
	var chipW, chipH float64
	for _, b := range s.gn {
		for _, a := range s.gn {
			if a == b {
				break
			}
			if posP[a] < posP[b] { // and posN[a] < posN[b] by iteration order
				if xa := x[a] + s.w[a] + channel; xa > x[b] {
					x[b] = xa
				}
			}
		}
		if xb := x[b] + s.w[b] + channel; xb > chipW {
			chipW = xb
		}
	}
	// Y: a below b iff posP[a] > posP[b] and posN[a] < posN[b].
	for _, b := range s.gn {
		for _, a := range s.gn {
			if a == b {
				break
			}
			if posP[a] > posP[b] {
				if ya := y[a] + s.h[a] + channel; ya > y[b] {
					y[b] = ya
				}
			}
		}
		if yb := y[b] + s.h[b] + channel; yb > chipH {
			chipH = yb
		}
	}
	// Center each block in its channel-inflated slot.
	xs := make([]float64, n)
	ys := make([]float64, n)
	for b := 0; b < n; b++ {
		xs[b] = x[b] + channel/2
		ys[b] = y[b] + channel/2
	}
	return &Placement{
		X: xs, Y: ys,
		W:     append([]float64(nil), s.w...),
		H:     append([]float64(nil), s.h...),
		ChipW: chipW, ChipH: chipH,
	}
}

func wirelength(p *Placement, nets []Net) float64 {
	total := 0.0
	for _, net := range nets {
		if len(net) < 2 {
			continue
		}
		minX, maxX := math.Inf(1), math.Inf(-1)
		minY, maxY := math.Inf(1), math.Inf(-1)
		for _, b := range net {
			cx, cy := p.Center(b)
			minX = math.Min(minX, cx)
			maxX = math.Max(maxX, cx)
			minY = math.Min(minY, cy)
			maxY = math.Max(maxY, cy)
		}
		total += (maxX - minX) + (maxY - minY)
	}
	return total
}
