package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
)

// activeRegistry backs the process-wide "lacret" expvar: expvar.Publish is
// forever (republishing a name panics), so the var is registered once and
// reads through this pointer, which each debug server re-points at its
// registry.
var (
	activeRegistry atomic.Pointer[Registry]
	publishOnce    sync.Once
)

func publishRegistry(reg *Registry) {
	activeRegistry.Store(reg)
	publishOnce.Do(func() {
		expvar.Publish("lacret", expvar.Func(func() any {
			return activeRegistry.Load().Snapshot()
		}))
	})
}

// DebugServer is the live-introspection HTTP listener: net/http/pprof
// under /debug/pprof/ (heap, goroutine, CPU profiles of a run in flight),
// expvar under /debug/vars, where the "lacret" var is the given
// registry's live snapshot — current stage, pass, search bracket, best
// overflow, and every counter, updating while the planner runs — and the
// same registry in Prometheus text format under /metrics, so a scraper
// can watch a long run without speaking the expvar JSON dialect.
type DebugServer struct {
	lis  net.Listener
	srv  *http.Server
	done chan struct{}
}

// StartDebugServer binds addr (e.g. "localhost:6060"; ":0" picks a free
// port) and serves in a background goroutine until Close. The registry may
// be shared with a running recorder; snapshots are taken per request.
func StartDebugServer(addr string, reg *Registry) (*DebugServer, error) {
	publishRegistry(reg)
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.Handle("/metrics", PromHandler(reg))
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, "lacret debug listener\n\n/debug/vars\n/debug/pprof/\n/metrics\n")
	})
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug listener: %v", err)
	}
	ds := &DebugServer{lis: lis, srv: &http.Server{Handler: mux}, done: make(chan struct{})}
	go func() {
		_ = ds.srv.Serve(lis)
		close(ds.done)
	}()
	return ds, nil
}

// Addr returns the bound address (useful with ":0").
func (d *DebugServer) Addr() string { return d.lis.Addr().String() }

// Close shuts the listener down and waits for the serve goroutine to
// exit, so a caller that closed the server has no goroutine left behind.
func (d *DebugServer) Close() error {
	err := d.srv.Close()
	<-d.done
	return err
}
