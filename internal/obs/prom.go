package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// This file is the registry's fourth sink: Prometheus text exposition
// (format version 0.0.4), the lingua franca of scrape-based monitoring.
// Like the rest of the package it is zero-dependency — the format is
// simple enough that a client library would cost more than it saves, and
// the registry already holds exactly the state a scrape needs.
//
// Mapping:
//
//	Counter   → counter            job.submitted      → job_submitted
//	Gauge     → gauge              job.heap_bytes     → job_heap_bytes
//	Status    → gauge, info-style  plan.stage="route" → plan_stage{value="route"} 1
//	Histogram → histogram          cumulative _bucket{le=...}, _sum, _count
//
// Metric names are sanitized to the Prometheus grammar
// ([a-zA-Z_:][a-zA-Z0-9_:]*): every other rune becomes '_', and a leading
// digit gets a '_' prefix. Two raw names that collide after sanitization
// keep the first (sorted) one; the duplicate is dropped rather than
// emitted twice, because a scrape with duplicate series is rejected whole.

// PromContentType is the Content-Type of the text exposition format.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// SanitizeMetricName maps an internal metric name ("job.queue_wait_ms")
// onto the Prometheus name grammar ("job_queue_wait_ms").
func SanitizeMetricName(name string) string {
	if name == "" {
		return "_"
	}
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			b.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// escapeLabelValue escapes a label value per the exposition format:
// backslash, double quote, and newline.
func escapeLabelValue(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// formatFloat renders a sample value; Prometheus accepts Go's shortest
// round-trip form, including "+Inf"/"-Inf"/"NaN".
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders the registry's current state in Prometheus text
// exposition format. The nil registry writes nothing.
func WritePrometheus(w io.Writer, reg *Registry) error {
	return WritePrometheusSnapshot(w, reg.Snapshot())
}

// WritePrometheusSnapshot renders one metrics snapshot in Prometheus text
// exposition format. Families are emitted counters-gauges-status-histograms,
// each sorted by name, so the output is deterministic for a given snapshot.
func WritePrometheusSnapshot(w io.Writer, snap MetricsSnapshot) error {
	seen := map[string]bool{}
	// claim reserves a sanitized name; false means a collision already owns
	// it and this series must be dropped rather than double-emitted.
	claim := func(name string) bool {
		if seen[name] {
			return false
		}
		seen[name] = true
		return true
	}

	for _, k := range sortedKeys(snap.Counters) {
		name := SanitizeMetricName(k)
		if !claim(name) {
			continue
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, snap.Counters[k]); err != nil {
			return err
		}
	}
	for _, k := range sortedKeys(snap.Gauges) {
		name := SanitizeMetricName(k)
		if !claim(name) {
			continue
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", name, name, formatFloat(snap.Gauges[k])); err != nil {
			return err
		}
	}
	for _, k := range sortedKeys(snap.Status) {
		name := SanitizeMetricName(k)
		if !claim(name) {
			continue
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s{value=\"%s\"} 1\n",
			name, name, escapeLabelValue(snap.Status[k])); err != nil {
			return err
		}
	}
	for _, k := range sortedKeys(snap.Histograms) {
		name := SanitizeMetricName(k)
		// A histogram owns three derived names; all must be free.
		if !claim(name) || !claim(name+"_sum") || !claim(name+"_count") {
			continue
		}
		if err := writePromHistogram(w, name, snap.Histograms[k]); err != nil {
			return err
		}
	}
	return nil
}

// writePromHistogram emits one histogram family: cumulative buckets (the
// registry stores per-bucket counts; Prometheus wants running totals up to
// and including each bound), the mandatory +Inf bucket equal to the total
// count, then _sum and _count.
func writePromHistogram(w io.Writer, name string, h HistogramSnapshot) error {
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
		return err
	}
	var cum int64
	for i, bound := range h.Bounds {
		if i < len(h.Counts) {
			cum += h.Counts[i]
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", name, formatFloat(bound), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, h.Count); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", name, formatFloat(h.Sum), name, h.Count)
	return err
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// PromHandler serves the registry in text exposition format; the handler
// snapshots per request, so it is safe to mount on a live daemon.
func PromHandler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", PromContentType)
		_ = WritePrometheus(w, reg)
	})
}
