// Package obs is the planner's observability substrate: a zero-dependency
// metrics registry (counters, gauges, status strings, fixed-bucket
// histograms) and hierarchical spans that extend the pipeline's flat
// per-stage trace into nested sub-stage events (period-search probes,
// rip-up rounds, LAC reweighting rounds, flow-engine phases).
//
// Everything is nil-safe by design: a nil *Registry, *Recorder, *Counter,
// *Gauge, *Histogram, or *Span accepts every method as a no-op. Code under
// instrumentation therefore never branches on "is observability on" — it
// asks the context for a recorder (FromContext / StartSpan) and calls
// through whatever it gets. When no recorder was installed the handles are
// nil and the whole path is zero-alloc (locked by TestDisabledZeroAlloc
// and BenchmarkDisabled), so the golden bit-identity of unobserved runs is
// preserved at effectively zero cost.
//
// One event stream, three sinks: a versioned JSON run report (report.go),
// Chrome trace-event export for chrome://tracing / Perfetto
// (chrometrace.go), and a live pprof/expvar HTTP listener (debug.go).
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The nil counter discards
// all updates.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for the nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a point-in-time float value (last write wins). The nil gauge
// discards all updates.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v as the gauge's current value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the gauge's current value (0 for the nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Status is a string-valued gauge (e.g. the pipeline stage currently
// running), for the live expvar view. The nil status discards updates.
type Status struct {
	v atomic.Value // string
}

// Set stores s as the status's current value.
func (s *Status) Set(val string) {
	if s == nil {
		return
	}
	s.v.Store(val)
}

// Value returns the current string ("" for the nil status).
func (s *Status) Value() string {
	if s == nil {
		return ""
	}
	v, _ := s.v.Load().(string)
	return v
}

// Registry holds named metrics. Lookup creates on first use; handles are
// stable and safe for concurrent use. The nil registry returns nil handles
// from every lookup, which in turn no-op, so callers never guard.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	status   map[string]*Status
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		status:   map[string]*Status{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Status returns the named status string, creating it on first use.
func (r *Registry) Status(name string) *Status {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.status[name]
	if !ok {
		s = &Status{}
		r.status[name] = s
	}
	return s
}

// Histogram returns the named histogram, creating it with the given bucket
// upper bounds on first use. Later lookups return the existing histogram
// regardless of bounds, so call sites agree on one layout per name.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// HistogramSnapshot is the serializable state of one histogram.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
	Min    float64   `json:"min"`
	Max    float64   `json:"max"`
	P50    float64   `json:"p50"`
	P90    float64   `json:"p90"`
	P99    float64   `json:"p99"`
}

// MetricsSnapshot is a point-in-time copy of a registry, with sorted keys,
// for the run report and the expvar view.
type MetricsSnapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Status     map[string]string            `json:"status,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies the registry's current values. The nil registry yields a
// zero snapshot.
func (r *Registry) Snapshot() MetricsSnapshot {
	var snap MetricsSnapshot
	if r == nil {
		return snap
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.counters) > 0 {
		snap.Counters = make(map[string]int64, len(r.counters))
		for k, c := range r.counters {
			snap.Counters[k] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		snap.Gauges = make(map[string]float64, len(r.gauges))
		for k, g := range r.gauges {
			snap.Gauges[k] = g.Value()
		}
	}
	if len(r.status) > 0 {
		snap.Status = make(map[string]string, len(r.status))
		for k, s := range r.status {
			snap.Status[k] = s.Value()
		}
	}
	if len(r.hists) > 0 {
		snap.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
		for k, h := range r.hists {
			snap.Histograms[k] = h.Snapshot()
		}
	}
	return snap
}

// CounterNames lists the registered counter names in sorted order.
func (r *Registry) CounterNames() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters))
	for k := range r.counters {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
