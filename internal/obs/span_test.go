package obs

import (
	"context"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestSpanTree(t *testing.T) {
	rec := NewRecorder()
	ctx := NewContext(context.Background(), rec)
	if FromContext(ctx) != rec {
		t.Fatal("recorder not in context")
	}

	pctx, pass := StartSpan(ctx, "pass")
	if CurrentSpan(pctx) != pass {
		t.Fatal("current span not the started one")
	}
	sctx, stage := StartSpan(pctx, "periods")
	_, probe := StartSpan(sctx, "probe")
	probe.SetAttr("t", 3.5)
	probe.End()
	stage.End()
	pass.End()

	roots := rec.Roots()
	if len(roots) != 1 || roots[0] != pass {
		t.Fatalf("roots = %v", roots)
	}
	if len(pass.Children) != 1 || pass.Children[0] != stage {
		t.Fatalf("pass children = %v", pass.Children)
	}
	if len(stage.Children) != 1 || stage.Children[0].Name != "probe" {
		t.Fatalf("stage children = %v", stage.Children)
	}
	if v, ok := probe.Attr("t"); !ok || v != 3.5 {
		t.Fatalf("probe attr = %g, %v", v, ok)
	}
	if _, ok := probe.Attr("missing"); ok {
		t.Fatal("missing attr found")
	}
	if probe.Start < stage.Start || probe.Dur < 0 {
		t.Fatalf("probe timing start=%v dur=%v (stage start %v)", probe.Start, probe.Dur, stage.Start)
	}
}

func TestSpanEndIdempotent(t *testing.T) {
	rec := NewRecorder()
	ctx := NewContext(context.Background(), rec)
	_, sp := StartSpan(ctx, "x")
	sp.End()
	d := sp.Dur
	time.Sleep(time.Millisecond)
	sp.End()
	if sp.Dur != d {
		t.Fatal("second End changed the duration")
	}
}

func TestSiblingSpans(t *testing.T) {
	rec := NewRecorder()
	ctx := NewContext(context.Background(), rec)
	pctx, pass := StartSpan(ctx, "pass")
	// Two sub-spans started from the same parent context are siblings,
	// not nested — the shape of a loop instrumenting each round.
	for i := 0; i < 3; i++ {
		_, sp := StartSpan(pctx, "round")
		sp.End()
	}
	pass.End()
	if len(pass.Children) != 3 {
		t.Fatalf("want 3 sibling rounds, got %d", len(pass.Children))
	}
}

func TestChromeTraceExport(t *testing.T) {
	rec := NewRecorder()
	ctx := NewContext(context.Background(), rec)
	pctx, pass := StartSpan(ctx, "pass")
	_, sp := StartSpan(pctx, "route")
	sp.SetAttr("overflow", 2)
	sp.End()
	pass.End()

	var b strings.Builder
	err := WriteChromeTrace(&b, []TraceTrack{{Name: "s400", Spans: rec.Roots()}})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`"traceEvents"`, `"thread_name"`, `"s400"`,
		`"pass"`, `"route"`, `"overflow"`, `"ph": "X"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %s in:\n%s", want, out)
		}
	}
}

func TestDebugServer(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("retime.probes").Add(7)
	reg.Status("plan.stage").Set("lac")
	ds, err := StartDebugServer("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()

	get := func(path string) string {
		resp, err := http.Get("http://" + ds.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}
	vars := get("/debug/vars")
	if !strings.Contains(vars, "retime.probes") || !strings.Contains(vars, `"lac"`) {
		t.Fatalf("expvar missing registry values:\n%s", vars)
	}
	if idx := get("/debug/pprof/"); !strings.Contains(idx, "goroutine") {
		t.Fatalf("pprof index unexpected:\n%s", idx)
	}

	// A second server re-points the shared expvar at its registry.
	reg2 := NewRegistry()
	reg2.Counter("route.rounds").Add(1)
	ds2, err := StartDebugServer("127.0.0.1:0", reg2)
	if err != nil {
		t.Fatal(err)
	}
	defer ds2.Close()
	if v := get("/debug/vars"); !strings.Contains(v, "route.rounds") {
		t.Fatalf("expvar not re-pointed:\n%s", v)
	}
}
