package obs

import (
	"math"
	"reflect"
	"testing"
)

func TestHistogramQuantileExact(t *testing.T) {
	// One observation per bucket, each sitting exactly on its bucket's
	// upper bound, so interpolation must reproduce the values exactly.
	h := NewHistogram([]float64{1, 2, 3, 4})
	for _, v := range []float64{1, 2, 3, 4} {
		h.Observe(v)
	}
	for _, tc := range []struct{ q, want float64 }{
		{0, 1}, {0.25, 1}, {0.5, 2}, {0.75, 3}, {1, 4},
	} {
		if got := h.Quantile(tc.q); got != tc.want {
			t.Errorf("Quantile(%g) = %g, want %g", tc.q, got, tc.want)
		}
	}
	if h.Count() != 4 || h.Sum() != 10 {
		t.Fatalf("count %d sum %g", h.Count(), h.Sum())
	}
}

func TestHistogramQuantileInterpolates(t *testing.T) {
	// Two observations at the edges of one bucket: the median interpolates
	// to the bucket midpoint.
	h := NewHistogram([]float64{10})
	h.Observe(0)
	h.Observe(10)
	if got := h.Quantile(0.5); got != 5 {
		t.Fatalf("Quantile(0.5) = %g, want 5", got)
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	h := NewHistogram([]float64{1})
	h.Observe(5)
	h.Observe(7)
	// Overflow values interpolate between the observed extremes, clamped
	// to [min, max]: no bound above means max is the ceiling.
	if got := h.Quantile(1); got != 7 {
		t.Fatalf("Quantile(1) = %g, want 7", got)
	}
	if got := h.Quantile(0); got != 5 {
		t.Fatalf("Quantile(0) = %g, want 5", got)
	}
}

func TestHistogramEdgeCases(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Fatal("empty histogram quantile must be NaN")
	}
	h.Observe(math.NaN()) // ignored
	if h.Count() != 0 {
		t.Fatal("NaN observation counted")
	}
	h.Observe(1.5)
	if !math.IsNaN(h.Quantile(-0.1)) || !math.IsNaN(h.Quantile(1.1)) {
		t.Fatal("out-of-range q must be NaN")
	}
	snap := h.Snapshot()
	if snap.Count != 1 || snap.Min != 1.5 || snap.Max != 1.5 || snap.P50 != 1.5 {
		t.Fatalf("snapshot %+v", snap)
	}
}

func TestHistogramMergeAssociative(t *testing.T) {
	bounds := []float64{1, 5, 25, 100}
	mk := func(vals ...float64) *Histogram {
		h := NewHistogram(bounds)
		for _, v := range vals {
			h.Observe(v)
		}
		return h
	}
	obsA := []float64{0.5, 3, 140}
	obsB := []float64{4, 4, 30, 99}
	obsC := []float64{12, 0.1}

	// (a ⊕ b) ⊕ c
	left := mk()
	if err := left.Merge(mk(obsA...)); err != nil {
		t.Fatal(err)
	}
	if err := left.Merge(mk(obsB...)); err != nil {
		t.Fatal(err)
	}
	if err := left.Merge(mk(obsC...)); err != nil {
		t.Fatal(err)
	}
	// a ⊕ (b ⊕ c)
	bc := mk(obsB...)
	if err := bc.Merge(mk(obsC...)); err != nil {
		t.Fatal(err)
	}
	right := mk(obsA...)
	if err := right.Merge(bc); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(left.Snapshot(), right.Snapshot()) {
		t.Fatalf("merge not associative:\n left %+v\nright %+v", left.Snapshot(), right.Snapshot())
	}
	// The merged state equals observing everything on one histogram.
	all := mk(append(append(append([]float64{}, obsA...), obsB...), obsC...)...)
	if !reflect.DeepEqual(left.Snapshot(), all.Snapshot()) {
		t.Fatalf("merge differs from direct observation:\n merged %+v\n direct %+v", left.Snapshot(), all.Snapshot())
	}
}

func TestHistogramMergeBoundMismatch(t *testing.T) {
	a := NewHistogram([]float64{1, 2})
	if err := a.Merge(NewHistogram([]float64{1})); err == nil {
		t.Fatal("bucket-count mismatch accepted")
	}
	if err := a.Merge(NewHistogram([]float64{1, 3})); err == nil {
		t.Fatal("bound-value mismatch accepted")
	}
	var nilH *Histogram
	if err := nilH.Merge(a); err != nil {
		t.Fatal("nil merge must no-op")
	}
	if err := a.Merge(nil); err != nil {
		t.Fatal("merge of nil must no-op")
	}
}

func TestHistogramInvalidBoundsPanic(t *testing.T) {
	for _, bounds := range [][]float64{nil, {}, {2, 1}, {1, 1}, {math.NaN()}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("bounds %v accepted", bounds)
				}
			}()
			NewHistogram(bounds)
		}()
	}
}
