package obs

import (
	"io"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"
)

func TestDebugServerServesVars(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("test.counter").Inc()
	ds, err := StartDebugServer("localhost:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	resp, err := http.Get("http://" + ds.Addr() + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "test.counter") {
		t.Fatalf("vars output missing counter: %s", body)
	}
}

// TestDebugServerCloseWaitsForServeGoroutine pins the shutdown fix: Close
// must not return until the serve goroutine has exited, so a caller that
// closed the server leaves no goroutine behind.
func TestDebugServerCloseWaitsForServeGoroutine(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		ds, err := StartDebugServer("localhost:0", NewRegistry())
		if err != nil {
			t.Fatal(err)
		}
		select {
		case <-ds.done:
			t.Fatal("serve goroutine exited before Close")
		default:
		}
		if err := ds.Close(); err != nil {
			t.Fatal(err)
		}
		select {
		case <-ds.done:
		default:
			t.Fatal("Close returned before the serve goroutine exited")
		}
	}
	// The goroutine count settles back: allow scheduler slack, but five
	// leaked serve goroutines would show.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+2 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
