package obs

import (
	"context"
	"testing"
)

func TestRegistryHandles(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("probes")
	c.Add(3)
	c.Inc()
	if got := r.Counter("probes").Value(); got != 4 {
		t.Fatalf("counter = %d, want 4", got)
	}
	g := r.Gauge("bracket_lo")
	g.Set(1.5)
	g.Set(2.5)
	if got := r.Gauge("bracket_lo").Value(); got != 2.5 {
		t.Fatalf("gauge = %g, want 2.5", got)
	}
	s := r.Status("stage")
	s.Set("route")
	if got := r.Status("stage").Value(); got != "route" {
		t.Fatalf("status = %q", got)
	}
	h := r.Histogram("probe_ms", []float64{1, 10})
	h.Observe(5)
	if got := r.Histogram("probe_ms", nil).Count(); got != 1 {
		t.Fatalf("histogram count = %d, want 1", got)
	}

	snap := r.Snapshot()
	if snap.Counters["probes"] != 4 || snap.Gauges["bracket_lo"] != 2.5 ||
		snap.Status["stage"] != "route" || snap.Histograms["probe_ms"].Count != 1 {
		t.Fatalf("snapshot = %+v", snap)
	}
	names := r.CounterNames()
	if len(names) != 1 || names[0] != "probes" {
		t.Fatalf("counter names = %v", names)
	}
}

// TestNilSafety: the entire disabled surface must accept calls on nil
// receivers — this is the contract that lets instrumented code skip all
// "is observability enabled" branching.
func TestNilSafety(t *testing.T) {
	var reg *Registry
	reg.Counter("x").Add(1)
	reg.Gauge("x").Set(1)
	reg.Status("x").Set("y")
	reg.Histogram("x", []float64{1}).Observe(1)
	if s := reg.Snapshot(); s.Counters != nil || s.Gauges != nil {
		t.Fatalf("nil registry snapshot = %+v", s)
	}
	if reg.CounterNames() != nil {
		t.Fatal("nil registry has counter names")
	}

	var rec *Recorder
	if rec.Registry() != nil || rec.Roots() != nil {
		t.Fatal("nil recorder leaks handles")
	}
	ctx := NewContext(context.Background(), rec)
	if FromContext(ctx) != nil {
		t.Fatal("nil recorder installed into context")
	}
	ctx2, sp := StartSpan(ctx, "x")
	if sp != nil || ctx2 != ctx {
		t.Fatal("StartSpan without recorder must be identity")
	}
	sp.SetAttr("k", 1)
	sp.End()
	if _, ok := sp.Attr("k"); ok {
		t.Fatal("nil span has attributes")
	}
	if CurrentSpan(ctx) != nil {
		t.Fatal("nil context has a span")
	}
}

// TestDisabledZeroAlloc locks the acceptance criterion: with no recorder
// installed, the instrumentation fast path allocates nothing.
func TestDisabledZeroAlloc(t *testing.T) {
	ctx := context.Background()
	var reg *Registry
	c := reg.Counter("x")
	g := reg.Gauge("x")
	h := reg.Histogram("x", []float64{1})
	allocs := testing.AllocsPerRun(100, func() {
		sctx, sp := StartSpan(ctx, "probe")
		sp.SetAttr("t", 1.0)
		sp.End()
		c.Add(1)
		g.Set(1)
		h.Observe(1)
		_ = FromContext(sctx)
	})
	if allocs != 0 {
		t.Fatalf("disabled path allocates %.1f/op, want 0", allocs)
	}
}

// BenchmarkDisabled is the perf lock for the disabled path: the whole
// sub-stage instrumentation sequence must stay branch-cheap and
// zero-alloc when no recorder is installed.
func BenchmarkDisabled(b *testing.B) {
	ctx := context.Background()
	var reg *Registry
	c := reg.Counter("x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sctx, sp := StartSpan(ctx, "probe")
		sp.SetAttr("t", 1.0)
		sp.End()
		c.Add(1)
		_ = sctx
	}
}

// BenchmarkEnabledSpan measures the enabled-path span cost for scale (not
// locked: it allocates by design).
func BenchmarkEnabledSpan(b *testing.B) {
	rec := NewRecorder()
	ctx := NewContext(context.Background(), rec)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, sp := StartSpan(ctx, "probe")
		sp.SetAttr("t", 1.0)
		sp.End()
	}
}
