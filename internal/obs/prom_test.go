package obs

import (
	"bytes"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
)

// TestPromGolden pins the exposition output for a registry holding all
// four metric kinds. The format is a wire contract with scrapers, so the
// whole body is compared, not just substrings.
func TestPromGolden(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("job.submitted").Add(3)
	reg.Gauge("job.heap_bytes").Set(1.5e6)
	reg.Status("plan.stage").Set("route")
	h := reg.Histogram("rt.ms", []float64{1, 5, 25})
	for _, v := range []float64{0.5, 0.7, 3, 100} {
		h.Observe(v)
	}

	var b bytes.Buffer
	if err := WritePrometheus(&b, reg); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE job_submitted counter
job_submitted 3
# TYPE job_heap_bytes gauge
job_heap_bytes 1.5e+06
# TYPE plan_stage gauge
plan_stage{value="route"} 1
# TYPE rt_ms histogram
rt_ms_bucket{le="1"} 2
rt_ms_bucket{le="5"} 3
rt_ms_bucket{le="25"} 3
rt_ms_bucket{le="+Inf"} 4
rt_ms_sum 104.2
rt_ms_count 4
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestPromSanitize covers the name grammar mapping.
func TestPromSanitize(t *testing.T) {
	cases := map[string]string{
		"job.submitted":       "job_submitted",
		"http.latency_ms.get": "http_latency_ms_get",
		"a-b c/d":             "a_b_c_d",
		"9lives":              "_9lives",
		"ok:name_1":           "ok:name_1",
		"":                    "_",
		"héap":                "h_ap", // one rune, one underscore
	}
	for in, want := range cases {
		if got := SanitizeMetricName(in); got != want {
			t.Errorf("SanitizeMetricName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestPromSanitizeCollision: two raw names mapping to one sanitized name
// must not produce duplicate series — the first (sorted) wins.
func TestPromSanitizeCollision(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("job.done").Add(1)
	reg.Counter("job/done").Add(7)
	var b bytes.Buffer
	if err := WritePrometheus(&b, reg); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(b.String(), "# TYPE job_done counter"); n != 1 {
		t.Fatalf("collision emitted %d TYPE lines:\n%s", n, b.String())
	}
	if n := strings.Count(b.String(), "\njob_done "); n != 1 {
		t.Fatalf("collision emitted %d sample lines:\n%s", n, b.String())
	}
}

// TestPromHistogramCumulative checks the bucket math against the
// snapshot: exposition buckets are running totals of the snapshot's
// per-bucket counts, +Inf equals the total count, and _sum/_count match.
func TestPromHistogramCumulative(t *testing.T) {
	h := NewHistogram([]float64{10, 20, 30})
	for _, v := range []float64{5, 15, 15, 25, 99, 100} {
		h.Observe(v)
	}
	snap := h.Snapshot()

	var b bytes.Buffer
	if err := writePromHistogram(&b, "x", snap); err != nil {
		t.Fatal(err)
	}
	var cum int64
	for i, bound := range snap.Bounds {
		cum += snap.Counts[i]
		line := "x_bucket{le=\"" + formatFloat(bound) + "\"} " + itoa(cum)
		if !strings.Contains(b.String(), line+"\n") {
			t.Errorf("missing cumulative bucket line %q in:\n%s", line, b.String())
		}
	}
	if !strings.Contains(b.String(), "x_bucket{le=\"+Inf\"} "+itoa(snap.Count)+"\n") {
		t.Errorf("+Inf bucket != total count in:\n%s", b.String())
	}
	if !strings.Contains(b.String(), "x_sum "+formatFloat(snap.Sum)+"\n") {
		t.Errorf("missing sum in:\n%s", b.String())
	}
	if !strings.Contains(b.String(), "x_count "+itoa(snap.Count)+"\n") {
		t.Errorf("missing count in:\n%s", b.String())
	}
}

func itoa(n int64) string { return strconv.FormatInt(n, 10) }

// TestPromLabelEscaping: status values reach label position and must be
// escaped, not truncated or emitted raw.
func TestPromLabelEscaping(t *testing.T) {
	reg := NewRegistry()
	reg.Status("s").Set("a\"b\\c\nd")
	var b bytes.Buffer
	if err := WritePrometheus(&b, reg); err != nil {
		t.Fatal(err)
	}
	want := `s{value="a\"b\\c\nd"} 1`
	if !strings.Contains(b.String(), want) {
		t.Errorf("escaped label %q missing in:\n%s", want, b.String())
	}
}

// TestPromHandler serves the format with its content type.
func TestPromHandler(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("c").Inc()
	rr := httptest.NewRecorder()
	PromHandler(reg).ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rr.Header().Get("Content-Type"); ct != PromContentType {
		t.Errorf("content type %q", ct)
	}
	if !strings.Contains(rr.Body.String(), "c 1\n") {
		t.Errorf("body:\n%s", rr.Body.String())
	}
}

// TestPromNilRegistry: the nil registry writes nothing and stays error-free,
// matching the package's nil-is-disabled discipline.
func TestPromNilRegistry(t *testing.T) {
	var b bytes.Buffer
	if err := WritePrometheus(&b, nil); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 {
		t.Errorf("nil registry wrote %q", b.String())
	}
}
