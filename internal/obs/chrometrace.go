package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// TraceTrack is one timeline row of a Chrome trace: a named thread (tid)
// whose spans render as nested slices. The table1 worker pool exports one
// track per circuit; lacplan one per planning pass.
type TraceTrack struct {
	Name  string
	Spans []*Span
}

// chromeEvent is one entry of the Chrome trace-event format ("Trace Event
// Format", the JSON dialect chrome://tracing and Perfetto load). Complete
// events ("X") carry ts+dur in microseconds; metadata events ("M") name
// the threads.
type chromeEvent struct {
	Name string             `json:"name"`
	Ph   string             `json:"ph"`
	Pid  int                `json:"pid"`
	Tid  int                `json:"tid"`
	Ts   float64            `json:"ts"`
	Dur  float64            `json:"dur,omitempty"`
	Args map[string]float64 `json:"args,omitempty"`
	// SArgs carries string-valued metadata args (thread names).
	SArgs map[string]string `json:"-"`
}

// MarshalJSON folds SArgs into args (the two are mutually exclusive here).
func (e chromeEvent) MarshalJSON() ([]byte, error) {
	type alias chromeEvent
	if e.SArgs == nil {
		return json.Marshal(alias(e))
	}
	return json.Marshal(struct {
		alias
		Args map[string]string `json:"args"`
	}{alias: alias(e), Args: e.SArgs})
}

// WriteChromeTrace renders the tracks as a Chrome trace-event JSON object.
// Open the file in chrome://tracing or https://ui.perfetto.dev to see the
// run as a zoomable timeline: one row per track, nested slices per span,
// attributes in the selection panel.
func WriteChromeTrace(w io.Writer, tracks []TraceTrack) error {
	var events []chromeEvent
	for tid, tr := range tracks {
		name := tr.Name
		if name == "" {
			name = fmt.Sprintf("track %d", tid)
		}
		events = append(events, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: tid,
			SArgs: map[string]string{"name": name},
		})
		for _, sp := range tr.Spans {
			events = appendSpanEvents(events, sp, tid)
		}
	}
	out := struct {
		TraceEvents     []chromeEvent `json:"traceEvents"`
		DisplayTimeUnit string        `json:"displayTimeUnit"`
	}{TraceEvents: events, DisplayTimeUnit: "ms"}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

// Tracks reconstructs a trace-track view from a decoded run report: one
// track per planning pass, one synthesized span per stage (the report
// keeps each stage's wall time and its recorded sub-spans, but not the
// stage's own start offset — it is recovered from the earliest sub-span
// when the stage has any, and from the running sum of prior stage walls
// otherwise). This is the fallback path for jobs whose live span forest
// is gone — a daemon restart, a cache rebuilt from disk — where the
// report bytes are all that survive; the sub-spans keep their exact
// recorded offsets, only the stage envelopes are approximate.
func (r *Report) Tracks() []TraceTrack {
	tracks := make([]TraceTrack, 0, len(r.Passes))
	for _, p := range r.Passes {
		tr := TraceTrack{Name: fmt.Sprintf("pass %d", p.Index)}
		var cursor time.Duration
		for _, st := range p.Stages {
			start := cursor
			if len(st.Spans) > 0 {
				start = st.Spans[0].Start
				for _, sp := range st.Spans[1:] {
					if sp.Start < start {
						start = sp.Start
					}
				}
			}
			sp := &Span{
				Name:     st.Name,
				Start:    start,
				Dur:      time.Duration(st.WallNS),
				Children: st.Spans,
			}
			tr.Spans = append(tr.Spans, sp)
			if end := start + sp.Dur; end > cursor {
				cursor = end
			}
		}
		tracks = append(tracks, tr)
	}
	return tracks
}

func appendSpanEvents(events []chromeEvent, sp *Span, tid int) []chromeEvent {
	if sp == nil {
		return events
	}
	ev := chromeEvent{
		Name: sp.Name, Ph: "X", Pid: 1, Tid: tid,
		Ts:  float64(sp.Start.Nanoseconds()) / 1e3,
		Dur: float64(sp.Dur.Nanoseconds()) / 1e3,
	}
	if len(sp.Attrs) > 0 {
		ev.Args = make(map[string]float64, len(sp.Attrs))
		for _, a := range sp.Attrs {
			ev.Args[a.Key] = a.Value
		}
	}
	events = append(events, ev)
	for _, c := range sp.Children {
		events = appendSpanEvents(events, c, tid)
	}
	return events
}
