package obs

import (
	"encoding/json"
	"fmt"
)

// SchemaVersion is the run-report schema version. Bump it on any breaking
// change to the Report structure (field removal or retype); additive
// optional fields keep the version. DecodeReport rejects mismatched
// versions, so producers and consumers drift loudly, never silently — a CI
// step decodes a freshly emitted report on every build.
const SchemaVersion = 1

// Report is one machine-readable planning run: tool and circuit identity,
// the resolved configuration, one PassReport per planning pass (with
// nested sub-stage spans), and the final metrics snapshot. The schema is
// deliberately tool-agnostic: lacplan emits one report per run, table1 one
// per circuit row.
type Report struct {
	Schema  int    `json:"schema"`
	Tool    string `json:"tool"`
	Circuit string `json:"circuit"`
	// Config holds the numeric knobs the run resolved to (alpha, nmax,
	// whitespace, seed, budget_ms, ...). Numeric-only keeps the schema
	// closed under one value type.
	Config  map[string]float64 `json:"config,omitempty"`
	Passes  []PassReport       `json:"passes"`
	Metrics MetricsSnapshot    `json:"metrics"`
}

// PassReport is one planning pass: its stages in execution order, plus the
// pass-level error when the pipeline aborted.
type PassReport struct {
	Index  int           `json:"index"`
	Err    string        `json:"err,omitempty"`
	Stages []StageReport `json:"stages"`
}

// StageReport is one pipeline stage of one pass: the flat StageEvent data
// (wall time, counters, skip/degradation/recovery flags) plus the nested
// sub-stage spans recorded while the stage ran (probes, rip-up rounds, LAC
// rounds, flow phases).
type StageReport struct {
	Name      string  `json:"name"`
	WallNS    int64   `json:"wall_ns"`
	Skipped   bool    `json:"skipped,omitempty"`
	Truncated bool    `json:"truncated,omitempty"`
	Recovered bool    `json:"recovered,omitempty"`
	Counters  []Attr  `json:"counters,omitempty"`
	Spans     []*Span `json:"spans,omitempty"`
}

// Encode marshals the report (indented, stable field order), stamping the
// schema version.
func (r *Report) Encode() ([]byte, error) {
	r.Schema = SchemaVersion
	if err := r.validate(); err != nil {
		return nil, err
	}
	return json.MarshalIndent(r, "", "  ")
}

// DecodeReport parses and validates a run report. It is the consumer-side
// contract: any report Encode accepts round-trips through here unchanged,
// and schema drift (version bump, malformed spans) fails decoding instead
// of propagating garbage downstream.
func DecodeReport(data []byte) (*Report, error) {
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("obs: report: %v", err)
	}
	if r.Schema != SchemaVersion {
		return nil, fmt.Errorf("obs: report schema %d, this decoder speaks %d", r.Schema, SchemaVersion)
	}
	if err := r.validate(); err != nil {
		return nil, err
	}
	return &r, nil
}

func (r *Report) validate() error {
	if r.Tool == "" {
		return fmt.Errorf("obs: report has no tool")
	}
	if r.Circuit == "" {
		return fmt.Errorf("obs: report has no circuit")
	}
	for pi, p := range r.Passes {
		if p.Index != pi {
			return fmt.Errorf("obs: report pass %d has index %d", pi, p.Index)
		}
		for si, st := range p.Stages {
			if st.Name == "" {
				return fmt.Errorf("obs: report pass %d stage %d has no name", pi, si)
			}
			if st.WallNS < 0 {
				return fmt.Errorf("obs: report stage %s has negative wall time", st.Name)
			}
			for _, sp := range st.Spans {
				if err := validateSpan(sp, st.Name); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func validateSpan(sp *Span, where string) error {
	if sp == nil {
		return fmt.Errorf("obs: report stage %s has a nil span", where)
	}
	if sp.Name == "" {
		return fmt.Errorf("obs: report stage %s has an unnamed span", where)
	}
	if sp.Start < 0 || sp.Dur < 0 {
		return fmt.Errorf("obs: report span %s/%s has negative time", where, sp.Name)
	}
	for _, a := range sp.Attrs {
		if a.Key == "" {
			return fmt.Errorf("obs: report span %s/%s has an unnamed attribute", where, sp.Name)
		}
	}
	for _, c := range sp.Children {
		if err := validateSpan(c, where+"/"+sp.Name); err != nil {
			return err
		}
	}
	return nil
}
