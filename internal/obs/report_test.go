package obs

import (
	"reflect"
	"strings"
	"testing"
	"time"
)

func sampleReport() *Report {
	return &Report{
		Tool:    "lacplan",
		Circuit: "s400",
		Config:  map[string]float64{"alpha": 0.2, "nmax": 5, "seed": 7},
		Passes: []PassReport{
			{
				Index: 0,
				Stages: []StageReport{
					{Name: "partition", WallNS: 1200},
					{
						Name: "periods", WallNS: 5400,
						Counters: []Attr{{Key: "tmin", Value: 3.2}},
						Spans: []*Span{
							{
								Name: "probe", Start: 10 * time.Microsecond, Dur: time.Microsecond,
								Attrs: []Attr{{Key: "t", Value: 3.5}, {Key: "feasible", Value: 1}},
								Children: []*Span{
									{Name: "bellman-ford", Start: 10 * time.Microsecond, Dur: 500 * time.Nanosecond},
								},
							},
						},
					},
					{Name: "lac", WallNS: 900, Truncated: true},
				},
			},
			{Index: 1, Err: "plan: target period 3 infeasible (Tmin 4)",
				Stages: []StageReport{{Name: "partition", Skipped: true}}},
		},
		Metrics: MetricsSnapshot{
			Counters: map[string]int64{"retime.probes": 12},
			Gauges:   map[string]float64{"route.best_overflow": 0},
		},
	}
}

// TestReportRoundTrip is the schema contract: Encode → Decode must be the
// identity (this is also what the CI report-schema step exercises end to
// end against a real lacplan run).
func TestReportRoundTrip(t *testing.T) {
	r := sampleReport()
	data, err := r.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeReport(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, r) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, r)
	}
	if got.Schema != SchemaVersion {
		t.Fatalf("schema = %d", got.Schema)
	}
}

func TestReportSchemaVersionMismatch(t *testing.T) {
	data, err := sampleReport().Encode()
	if err != nil {
		t.Fatal(err)
	}
	bad := strings.Replace(string(data), `"schema": 1`, `"schema": 999`, 1)
	if _, err := DecodeReport([]byte(bad)); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("version mismatch accepted: %v", err)
	}
}

func TestReportValidation(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Report)
	}{
		{"no tool", func(r *Report) { r.Tool = "" }},
		{"no circuit", func(r *Report) { r.Circuit = "" }},
		{"bad pass index", func(r *Report) { r.Passes[1].Index = 7 }},
		{"unnamed stage", func(r *Report) { r.Passes[0].Stages[0].Name = "" }},
		{"negative wall", func(r *Report) { r.Passes[0].Stages[0].WallNS = -1 }},
		{"unnamed span", func(r *Report) { r.Passes[0].Stages[1].Spans[0].Name = "" }},
		{"negative span time", func(r *Report) { r.Passes[0].Stages[1].Spans[0].Children[0].Dur = -1 }},
		{"unnamed attr", func(r *Report) { r.Passes[0].Stages[1].Spans[0].Attrs[0].Key = "" }},
	}
	for _, tc := range cases {
		r := sampleReport()
		tc.mutate(r)
		if _, err := r.Encode(); err == nil {
			t.Errorf("%s: encode accepted", tc.name)
		}
	}
	if _, err := DecodeReport([]byte("{not json")); err == nil {
		t.Error("malformed JSON accepted")
	}
}
