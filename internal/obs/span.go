package obs

import (
	"context"
	"sync"
	"time"
)

// Attr is one named numeric attribute of a span (probe period, overflow
// count, augmenting paths, ...). Spans carry numbers only: strings belong
// in the span name or the registry's status values, which keeps the report
// schema flat and the Chrome trace args uniform.
type Attr struct {
	Key   string  `json:"k"`
	Value float64 `json:"v"`
}

// Span is one timed node of the hierarchical trace: a pipeline pass, a
// stage, or a sub-stage event (one period probe, one rip-up round, one LAC
// reweighting round, one flow phase). Start is the offset from the owning
// recorder's epoch, so spans from one recorder share a timeline — the
// property the Chrome trace export relies on. The nil span accepts every
// method as a no-op.
type Span struct {
	Name     string        `json:"name"`
	Start    time.Duration `json:"start_ns"`
	Dur      time.Duration `json:"dur_ns"`
	Attrs    []Attr        `json:"attrs,omitempty"`
	Children []*Span       `json:"children,omitempty"`

	rec    *Recorder
	parent *Span
	ended  bool
}

// SetAttr records a numeric attribute on the span. Attributes are owned by
// the goroutine that started the span; set them before End.
func (s *Span) SetAttr(key string, v float64) {
	if s == nil {
		return
	}
	s.Attrs = append(s.Attrs, Attr{Key: key, Value: v})
}

// Attr returns the value of the named attribute and whether it is set.
func (s *Span) Attr(key string) (float64, bool) {
	if s == nil {
		return 0, false
	}
	for _, a := range s.Attrs {
		if a.Key == key {
			return a.Value, true
		}
	}
	return 0, false
}

// End stamps the span's duration. End is idempotent; a span that is never
// ended keeps duration zero (it still appears in the tree, attached at
// start time — how an in-flight or panicked sub-stage shows up).
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	s.Dur = time.Since(s.rec.epoch) - s.Start
}

// Recorder collects one run's span tree and metrics registry. All spans
// started through a recorder share its epoch. Safe for concurrent use; the
// nil recorder is the disabled state and records nothing.
type Recorder struct {
	mu    sync.Mutex
	epoch time.Time
	roots []*Span
	reg   *Registry
}

// NewRecorder returns an enabled recorder with a fresh registry, with the
// epoch set to now.
func NewRecorder() *Recorder {
	return &Recorder{epoch: time.Now(), reg: NewRegistry()}
}

// Registry returns the recorder's metrics registry (nil for the nil
// recorder — which every registry method accepts).
func (r *Recorder) Registry() *Registry {
	if r == nil {
		return nil
	}
	return r.reg
}

// Roots returns the top-level spans recorded so far, in start order.
func (r *Recorder) Roots() []*Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*Span(nil), r.roots...)
}

// Epoch returns the recorder's time origin.
func (r *Recorder) Epoch() time.Time {
	if r == nil {
		return time.Time{}
	}
	return r.epoch
}

// attach adds a started span to its parent's children (or the roots).
func (r *Recorder) attach(s *Span) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.parent != nil {
		s.parent.Children = append(s.parent.Children, s)
	} else {
		r.roots = append(r.roots, s)
	}
}

// ctxKey carries the recorder plus the current parent span.
type ctxKey struct{}

type ctxState struct {
	rec  *Recorder
	span *Span
}

// NewContext installs the recorder into the context. A nil recorder
// returns ctx unchanged, so the disabled path adds no context layer (and
// FromContext stays a nil lookup).
func NewContext(ctx context.Context, rec *Recorder) context.Context {
	if rec == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, ctxState{rec: rec})
}

// FromContext returns the recorder installed by NewContext, or nil.
func FromContext(ctx context.Context) *Recorder {
	st, _ := ctx.Value(ctxKey{}).(ctxState)
	return st.rec
}

// CurrentSpan returns the innermost span started on this context, or nil.
func CurrentSpan(ctx context.Context) *Span {
	st, _ := ctx.Value(ctxKey{}).(ctxState)
	return st.span
}

// StartSpan starts a child of the context's current span (a root span when
// none) and returns a derived context carrying it. Without a recorder in
// the context it returns (ctx, nil) with zero allocation — the disabled
// fast path every instrumented loop runs.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	st, _ := ctx.Value(ctxKey{}).(ctxState)
	if st.rec == nil {
		return ctx, nil
	}
	sp := &Span{
		Name:   name,
		Start:  time.Since(st.rec.epoch),
		rec:    st.rec,
		parent: st.span,
	}
	st.rec.attach(sp)
	return context.WithValue(ctx, ctxKey{}, ctxState{rec: st.rec, span: sp}), sp
}
