package obs

import (
	"fmt"
	"math"
	"sync"
)

// Histogram is a fixed-bucket histogram: bucket i counts observations in
// (bounds[i-1], bounds[i]], with one overflow bucket above the last bound.
// Bounds are fixed at construction, so histograms with equal bounds merge
// exactly (Merge is associative and commutative: the merged state is the
// element-wise sum, independent of grouping). The nil histogram discards
// observations.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // strictly increasing upper bounds
	counts []int64   // len(bounds)+1; last is the overflow bucket
	count  int64
	sum    float64
	min    float64
	max    float64
}

// DurationBucketsMS is the default bucket layout for wall-time histograms,
// in milliseconds: sub-millisecond through minute-scale sub-stage work.
var DurationBucketsMS = []float64{0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 30000, 60000}

// NewHistogram returns a histogram over the given strictly increasing
// bucket upper bounds. Invalid bounds (empty, unsorted, NaN) panic: bucket
// layouts are compile-time decisions, not data.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	for i, b := range bounds {
		if math.IsNaN(b) || (i > 0 && bounds[i-1] >= b) {
			panic(fmt.Sprintf("obs: histogram bounds must be strictly increasing, got %v", bounds))
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]int64, len(bounds)+1),
		min:    math.Inf(1),
		max:    math.Inf(-1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of observations (0 for the nil histogram).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Quantile estimates the q-quantile (q in [0,1]) by linear interpolation
// inside the bucket holding the target rank. The estimate is clamped to
// the observed [min, max], so exact extremes survive bucketing; values in
// the overflow bucket interpolate between the last bound and max. Returns
// NaN when the histogram is empty, q outside [0,1], or h is nil.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return math.NaN()
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.quantileLocked(q)
}

func (h *Histogram) quantileLocked(q float64) float64 {
	if h.count == 0 || math.IsNaN(q) || q < 0 || q > 1 {
		return math.NaN()
	}
	// The extremes are tracked exactly; only interior quantiles estimate.
	if q == 0 {
		return h.min
	}
	if q == 1 {
		return h.max
	}
	// rank in [1, count]: the smallest observation has rank 1.
	rank := q * float64(h.count)
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		if float64(cum+c) >= rank {
			// Interpolate within bucket i between its lower and upper edge
			// by the fractional position of the rank among its c entries.
			lo := h.min
			if i > 0 && h.bounds[i-1] > lo {
				lo = h.bounds[i-1]
			}
			hi := h.max
			if i < len(h.bounds) && h.bounds[i] < hi {
				hi = h.bounds[i]
			}
			if hi < lo {
				hi = lo
			}
			frac := (rank - float64(cum)) / float64(c)
			v := lo + (hi-lo)*frac
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
		cum += c
	}
	return h.max
}

// Merge adds the observations of o into h. The bucket bounds must be
// identical; merging is then exact (sums of per-bucket counts), so it is
// associative and commutative across any grouping of partial histograms —
// the property that lets per-worker histograms combine into one aggregate.
func (h *Histogram) Merge(o *Histogram) error {
	if h == nil || o == nil {
		return nil
	}
	// Lock ordering by address avoids deadlock on concurrent cross-merges.
	first, second := h, o
	if fmt.Sprintf("%p", h) > fmt.Sprintf("%p", o) {
		first, second = o, h
	}
	first.mu.Lock()
	defer first.mu.Unlock()
	if second != first {
		second.mu.Lock()
		defer second.mu.Unlock()
	}
	if len(h.bounds) != len(o.bounds) {
		return fmt.Errorf("obs: merge of histograms with %d vs %d buckets", len(h.bounds), len(o.bounds))
	}
	for i := range h.bounds {
		if h.bounds[i] != o.bounds[i] {
			return fmt.Errorf("obs: merge of histograms with different bounds at %d: %g vs %g", i, h.bounds[i], o.bounds[i])
		}
	}
	for i := range h.counts {
		h.counts[i] += o.counts[i]
	}
	h.count += o.count
	h.sum += o.sum
	if o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	return nil
}

// Snapshot copies the histogram's state, including the p50/p90/p99
// estimates. The nil histogram yields a zero snapshot.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	snap := HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: append([]int64(nil), h.counts...),
		Count:  h.count,
		Sum:    h.sum,
	}
	if h.count > 0 {
		snap.Min, snap.Max = h.min, h.max
		snap.P50 = h.quantileLocked(0.50)
		snap.P90 = h.quantileLocked(0.90)
		snap.P99 = h.quantileLocked(0.99)
	}
	return snap
}
