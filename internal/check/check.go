// Package check verifies a completed planning result end to end: it
// re-derives every reported quantity from first principles and confirms
// the invariants that the paper's formulation promises. The test suite and
// cmd/lacplan's -check flag run it after every planning pass; it is the
// belt-and-braces guard against drift between the planner's bookkeeping
// and the underlying graphs.
package check

import (
	"fmt"
	"math"

	"lacret/internal/core"
	"lacret/internal/mcr"
	"lacret/internal/plan"
	"lacret/internal/sim"
	"lacret/internal/sta"
)

// Result lists the verified facts (for reporting) — Verify returns the
// first violated invariant as an error instead.
type Result struct {
	Checks []string
}

// Verify validates a planning result:
//
//  1. the floorplan is legal (no overlaps, inside the chip);
//  2. the retiming graph is structurally valid;
//  3. Tinit is the true period of the as-planned graph;
//  4. both retimings are legal labelings meeting Tclk (via STA);
//  5. Tmin is not below the max-cycle-ratio bound;
//  6. reported register counts and violation counts match independent
//     recomputation;
//  7. per-tile accounting is self-consistent.
func Verify(res *plan.Result) (*Result, error) {
	out := &Result{}
	note := func(format string, args ...interface{}) {
		out.Checks = append(out.Checks, fmt.Sprintf(format, args...))
	}

	if err := res.Placement.Validate(); err != nil {
		return nil, fmt.Errorf("check: floorplan: %v", err)
	}
	note("floorplan legal (%d blocks, %.0fx%.0f um)", res.NumBlocks, res.Placement.ChipW, res.Placement.ChipH)

	if err := res.Graph.Validate(); err != nil {
		return nil, fmt.Errorf("check: retiming graph: %v", err)
	}
	note("retiming graph valid (%d vertices, %d edges)", res.Graph.N(), res.Graph.M())

	p, err := res.Graph.Period()
	if err != nil {
		return nil, fmt.Errorf("check: period: %v", err)
	}
	if math.Abs(p-res.Tinit) > 1e-6 {
		return nil, fmt.Errorf("check: Tinit %g != recomputed period %g", res.Tinit, p)
	}
	note("Tinit verified (%.3f ns)", p)

	bound := mcr.MaxCycleRatio(res.Graph, 1e-6)
	if bound.HasCycle && res.Tmin < bound.Ratio-1e-4 {
		return nil, fmt.Errorf("check: Tmin %g below cycle-ratio bound %g", res.Tmin, bound.Ratio)
	}
	note("Tmin %.3f ns respects cycle-ratio bound %.3f ns", res.Tmin, bound.Ratio)

	for _, side := range []struct {
		name string
		r    *core.Result
		nfn  int
	}{
		{"min-area", res.MinArea, res.MinAreaNFN},
		{"LAC", res.LAC, res.LACNFN},
	} {
		if err := res.Graph.CheckFeasible(side.r.R, res.Tclk); err != nil {
			return nil, fmt.Errorf("check: %s labeling: %v", side.name, err)
		}
		rep, err := sta.Analyze(side.r.Retimed, res.Tclk)
		if err != nil {
			return nil, fmt.Errorf("check: %s STA: %v", side.name, err)
		}
		if !rep.Met() {
			return nil, fmt.Errorf("check: %s violates Tclk by %g", side.name, -rep.WNS)
		}
		if got := side.r.Retimed.TotalRegisters(); got != side.r.NF {
			return nil, fmt.Errorf("check: %s N_F %d != recount %d", side.name, side.r.NF, got)
		}
		if got := plan.CountInterconnectFFs(side.r.Retimed); got != side.nfn {
			return nil, fmt.Errorf("check: %s N_FN %d != recount %d", side.name, side.nfn, got)
		}
		tileFF := res.Problem.TileFFCounts(side.r.Retimed)
		nfoa, violated := res.Problem.Violations(tileFF)
		if nfoa != side.r.NFOA {
			return nil, fmt.Errorf("check: %s N_FOA %d != recount %d", side.name, side.r.NFOA, nfoa)
		}
		if len(violated) != len(side.r.Violated) {
			return nil, fmt.Errorf("check: %s violated tiles %d != recount %d",
				side.name, len(side.r.Violated), len(violated))
		}
		totalTileFF := 0
		for _, c := range tileFF {
			totalTileFF += c
		}
		if totalTileFF != side.r.NF {
			return nil, fmt.Errorf("check: %s tile accounting %d != N_F %d", side.name, totalTileFF, side.r.NF)
		}
		note("%s: Tclk met, N_F=%d, N_FN=%d, N_FOA=%d all verified",
			side.name, side.r.NF, side.nfn, side.r.NFOA)
	}

	if res.LAC.NFOA > res.MinArea.NFOA {
		return nil, fmt.Errorf("check: LAC has more violations than min-area (%d > %d)",
			res.LAC.NFOA, res.MinArea.NFOA)
	}
	note("LAC no worse than min-area (%d <= %d)", res.LAC.NFOA, res.MinArea.NFOA)

	// Register conservation between pinned ports: the total registers on
	// any PI->PO path are invariant, so port-to-port latency is preserved.
	// Spot-check via the labeling: pinned labels must be zero.
	for v := 0; v < res.Graph.N(); v++ {
		if res.Graph.Pinned(v) {
			if res.MinArea.R[v] != 0 || res.LAC.R[v] != 0 {
				return nil, fmt.Errorf("check: pinned vertex %d relabeled", v)
			}
		}
	}
	note("I/O latency preserved (all port labels zero)")

	// Functional equivalence: 64-lane random simulation proves both
	// retimings preserve primary-output behavior bit for bit.
	if res.Netlist != nil {
		ops, err := sim.OpsFromGraph(res.Graph, res.Netlist)
		if err != nil {
			return nil, fmt.Errorf("check: ops: %v", err)
		}
		for _, side := range []struct {
			name string
			r    []int
		}{{"min-area", res.MinArea.R}, {"LAC", res.LAC.R}} {
			if err := sim.CheckRetimingEquivalence(res.Graph, ops, side.r, 64, 1); err != nil {
				return nil, fmt.Errorf("check: %s equivalence: %v", side.name, err)
			}
		}
		note("functional equivalence proven for both retimings (64-lane random simulation)")
	}
	return out, nil
}
