package check

import (
	"testing"

	"lacret/internal/bench89"
	"lacret/internal/plan"
)

// TestVerifyStateStageByStage runs the pipeline one stage at a time and
// verifies the partial state after every stage: each stage's artifacts must
// already satisfy their invariants before the next stage consumes them.
func TestVerifyStateStageByStage(t *testing.T) {
	nl, err := bench89.Generate(bench89.Params{
		Name: "chk", Gates: 90, DFFs: 10, Inputs: 5, Outputs: 5,
		Depth: 8, MaxFanin: 3, Seed: 17, FeedbackDepth: 0.4,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := plan.Config{Seed: 17, FloorplanMoves: 2000}
	st, err := plan.NewState(nl, &cfg)
	if err != nil {
		t.Fatal(err)
	}
	prevChecks := 0
	for _, s := range plan.DefaultStages() {
		if err := st.Run([]plan.Stage{s}, &cfg); err != nil {
			t.Fatalf("stage %s: %v", s.Name(), err)
		}
		out, err := VerifyState(st)
		if err != nil {
			t.Fatalf("after stage %s: %v", s.Name(), err)
		}
		if len(out.Checks) < prevChecks {
			t.Fatalf("after stage %s: %d checks, had %d before — verification regressed",
				s.Name(), len(out.Checks), prevChecks)
		}
		prevChecks = len(out.Checks)
	}
	// After the full pipeline, VerifyState subsumes Verify.
	full, err := Verify(st.Result)
	if err != nil {
		t.Fatal(err)
	}
	if prevChecks < len(full.Checks) {
		t.Fatalf("complete-state verification ran %d checks, Verify alone runs %d",
			prevChecks, len(full.Checks))
	}
}

func TestVerifyStateCatchesCorruption(t *testing.T) {
	nl, err := bench89.Generate(bench89.Params{
		Name: "chk", Gates: 90, DFFs: 10, Inputs: 5, Outputs: 5,
		Depth: 8, MaxFanin: 3, Seed: 17, FeedbackDepth: 0.4,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := plan.Config{Seed: 17, FloorplanMoves: 2000}
	st, err := plan.NewState(nl, &cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Run through the route stage only.
	if err := st.Run(plan.DefaultStages()[:4], &cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyState(st); err != nil {
		t.Fatalf("clean partial state rejected: %v", err)
	}
	// Disconnect one routed sink: the walk from sink to source must fail.
	for i := range st.Nets {
		if len(st.Nets[i].Sinks) == 0 {
			continue
		}
		sink := st.Nets[i].Sinks[0]
		if sink == st.Routing.Trees[i].Source {
			continue
		}
		delete(st.Routing.Trees[i].Parent, sink)
		break
	}
	if _, err := VerifyState(st); err == nil {
		t.Fatal("disconnected routed sink not caught")
	}
}

func TestVerifyStateNilState(t *testing.T) {
	if _, err := VerifyState(nil); err == nil {
		t.Fatal("nil state accepted")
	}
}
