package check

import (
	"fmt"

	"lacret/internal/netlist"
	"lacret/internal/plan"
)

// VerifyState validates a (possibly partial) pipeline state: every artifact
// a stage has produced so far is checked against the invariants it must
// satisfy, and artifacts of stages that have not run yet are skipped. After
// a complete pass it subsumes Verify — the full-result checks run last.
// Use it between stages (st.Run one stage at a time) to localize a broken
// invariant to the stage that introduced it.
func VerifyState(st *plan.PlanState) (*Result, error) {
	out := &Result{}
	note := func(format string, args ...interface{}) {
		out.Checks = append(out.Checks, fmt.Sprintf(format, args...))
	}
	if st == nil || st.Netlist == nil {
		return nil, fmt.Errorf("check: state has no netlist")
	}

	// Partition stage.
	if st.Collapsed != nil {
		if st.NumBlocks <= 0 {
			return nil, fmt.Errorf("check: partition: %d blocks", st.NumBlocks)
		}
		assigned := 0
		for _, id := range st.Collapsed.Units {
			if st.Netlist.Node(id).Kind == netlist.KindInput {
				continue
			}
			b, ok := st.BlockOf[id]
			if !ok {
				return nil, fmt.Errorf("check: partition: unit %s has no block", st.Netlist.Node(id).Name)
			}
			if b < 0 || b >= st.NumBlocks {
				return nil, fmt.Errorf("check: partition: unit %s in block %d of %d", st.Netlist.Node(id).Name, b, st.NumBlocks)
			}
			assigned++
		}
		note("partition covers all %d units (%d blocks)", assigned, st.NumBlocks)
	}

	// Floorplan stage.
	if st.Placement != nil {
		if st.Collapsed == nil {
			return nil, fmt.Errorf("check: floorplan present without a partition")
		}
		if err := st.Placement.Validate(); err != nil {
			return nil, fmt.Errorf("check: floorplan: %v", err)
		}
		if len(st.GateArea) != st.NumBlocks || len(st.HardBlock) != st.NumBlocks {
			return nil, fmt.Errorf("check: floorplan: block metadata for %d/%d of %d blocks",
				len(st.GateArea), len(st.HardBlock), st.NumBlocks)
		}
		note("floorplan legal (%d blocks, %.0fx%.0f um)", st.NumBlocks, st.Placement.ChipW, st.Placement.ChipH)
	}

	// Grid stage.
	if st.Grid != nil {
		if st.Grid.Rows < 2 || st.Grid.Cols < 2 {
			return nil, fmt.Errorf("check: grid: %dx%d below the 2x2 minimum", st.Grid.Rows, st.Grid.Cols)
		}
		if st.Grid.NumTiles() < 1 {
			return nil, fmt.Errorf("check: grid: no capacity tiles")
		}
		note("grid %dx%d with %d capacity tiles", st.Grid.Rows, st.Grid.Cols, st.Grid.NumTiles())
	}

	// Route stage.
	if st.Routing != nil {
		nCells := st.Grid.NumCells()
		for _, pads := range []map[netlist.NodeID]int{st.PadOfInput, st.PadOfOutput, st.CellOfUnit} {
			for id, c := range pads {
				if c < 0 || c >= nCells {
					return nil, fmt.Errorf("check: route: %s placed at cell %d of %d",
						st.Netlist.Node(id).Name, c, nCells)
				}
			}
		}
		if len(st.Routing.Trees) != len(st.Nets) {
			return nil, fmt.Errorf("check: route: %d trees for %d nets", len(st.Routing.Trees), len(st.Nets))
		}
		for i, n := range st.Nets {
			tr := &st.Routing.Trees[i]
			if tr.Source != n.Source {
				return nil, fmt.Errorf("check: route: net %d tree rooted at %d, source is %d", i, tr.Source, n.Source)
			}
			for _, s := range n.Sinks {
				cur, steps := s, 0
				for cur != tr.Source {
					p, ok := tr.Parent[cur]
					if !ok {
						return nil, fmt.Errorf("check: route: net %d sink %d not connected", i, s)
					}
					if steps++; steps > len(tr.Parent) {
						return nil, fmt.Errorf("check: route: net %d has a parent cycle at cell %d", i, s)
					}
					cur = p
				}
			}
		}
		note("routing connects every sink of %d nets (overflow %d)", len(st.Nets), st.Routing.Overflow)
	}

	// Repeater stage.
	if st.RepeaterPlans != nil {
		if len(st.RepeaterPlans) != len(st.Conns) {
			return nil, fmt.Errorf("check: repeaters: %d plans for %d connections",
				len(st.RepeaterPlans), len(st.Conns))
		}
		reps := 0
		for i, p := range st.RepeaterPlans {
			if p == nil {
				continue
			}
			if err := p.Validate(st.Tech); err != nil {
				return nil, fmt.Errorf("check: repeaters: connection %d: %v", i, err)
			}
			reps += p.Repeaters
		}
		if reps != st.Result.RepeaterCount {
			return nil, fmt.Errorf("check: repeaters: %d planned != %d reported", reps, st.Result.RepeaterCount)
		}
		note("%d repeater plans valid (%d repeaters)", len(st.RepeaterPlans), reps)
	}

	// Graph stage.
	if st.Result.Graph != nil {
		g := st.Result.Graph
		if err := g.Validate(); err != nil {
			return nil, fmt.Errorf("check: retiming graph: %v", err)
		}
		if len(st.TileOf) != g.N() {
			return nil, fmt.Errorf("check: graph: %d tile assignments for %d vertices", len(st.TileOf), g.N())
		}
		for v, tl := range st.TileOf {
			if tl < 0 || tl >= st.Grid.NumTiles() {
				return nil, fmt.Errorf("check: graph: vertex %d in tile %d of %d", v, tl, st.Grid.NumTiles())
			}
		}
		note("retiming graph valid (%d vertices, %d edges, all in tiles)", g.N(), g.M())
	}

	// Periods stage.
	if res := st.Result; res.Tclk > 0 {
		if res.Tmin > res.Tinit+1e-9 {
			return nil, fmt.Errorf("check: periods: Tmin %g above Tinit %g", res.Tmin, res.Tinit)
		}
		note("periods ordered (Tmin %.3f <= Tinit %.3f, Tclk %.3f)", res.Tmin, res.Tinit, res.Tclk)
	}

	// Constraints stage.
	if st.Constraints != nil {
		g := st.Result.Graph
		if st.Constraints.N != g.N() {
			return nil, fmt.Errorf("check: constraints: %d variables for %d vertices", st.Constraints.N, g.N())
		}
		prob := st.Result.Problem
		if prob == nil {
			return nil, fmt.Errorf("check: constraints present without a problem")
		}
		if len(prob.Cap) != st.Grid.NumTiles() {
			return nil, fmt.Errorf("check: constraints: %d tile capacities for %d tiles",
				len(prob.Cap), st.Grid.NumTiles())
		}
		for t, c := range prob.Cap {
			if c < 0 {
				return nil, fmt.Errorf("check: constraints: tile %d capacity %g negative", t, c)
			}
		}
		note("constraint system sized (%d constraints, %d tiles capped)",
			len(st.Constraints.Cons), len(prob.Cap))
	}

	// Retiming stages: once both retimings exist the full-result
	// verification applies.
	if st.Result.MinArea != nil && st.Result.LAC != nil {
		full, err := Verify(st.Result)
		if err != nil {
			return nil, err
		}
		out.Checks = append(out.Checks, full.Checks...)
	}
	return out, nil
}
