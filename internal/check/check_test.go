package check

import (
	"strings"
	"testing"

	"lacret/internal/bench89"
	"lacret/internal/plan"
)

func planned(t *testing.T, ws float64) *plan.Result {
	t.Helper()
	nl, err := bench89.Generate(bench89.Params{
		Name: "chk", Gates: 90, DFFs: 10, Inputs: 5, Outputs: 5,
		Depth: 8, MaxFanin: 3, Seed: 17, FeedbackDepth: 0.4,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := plan.Plan(nl, plan.Config{Seed: 17, FloorplanMoves: 2000, Whitespace: ws})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestVerifyCleanResult(t *testing.T) {
	res := planned(t, 0.15)
	out, err := Verify(res)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Checks) < 6 {
		t.Fatalf("too few checks recorded: %v", out.Checks)
	}
	joined := strings.Join(out.Checks, "\n")
	for _, want := range []string{"floorplan legal", "Tinit verified", "cycle-ratio", "LAC"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("missing check %q in:\n%s", want, joined)
		}
	}
}

func TestVerifyViolatingResultStillConsistent(t *testing.T) {
	// A starved configuration has violations, but the bookkeeping must
	// still be internally consistent.
	res := planned(t, 0.03)
	if _, err := Verify(res); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyCatchesCorruption(t *testing.T) {
	cases := []func(*plan.Result){
		func(r *plan.Result) { r.Tinit += 1 },
		func(r *plan.Result) { r.MinArea.NF += 1 },
		func(r *plan.Result) { r.LAC.NFOA = r.MinArea.NFOA + 5 },
		func(r *plan.Result) { r.LACNFN += 3 },
		func(r *plan.Result) { r.MinArea.R[1] += 7 },
	}
	for i, corrupt := range cases {
		res := planned(t, 0.15)
		corrupt(res)
		if _, err := Verify(res); err == nil {
			t.Fatalf("case %d: corruption not caught", i)
		}
	}
}

func TestVerifyReturnsErrorNotPanic(t *testing.T) {
	// Verify must report violations as errors; the package exports no
	// panicking entry point (the old MustVerify is gone).
	res := planned(t, 0.15)
	res.Tinit = 0.001
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("Verify panicked: %v", r)
		}
	}()
	if _, err := Verify(res); err == nil {
		t.Fatal("expected an error for a corrupted Tinit")
	}
}
