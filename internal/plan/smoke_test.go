package plan

import (
	"os"
	"testing"
	"time"

	"lacret/internal/bench89"
	"lacret/internal/core"
	"lacret/internal/retime"
)

// TestLazyEngineSmokeS5378 is the CI guard for the lazy constraint engine:
// a full s5378 plan (47k retiming vertices as planned) must run on the lazy
// engine without ever materializing the dense W/D matrices — at this size
// they would be ~27 GB, more than a CI runner has, where the measured lazy
// peak under the CI budget is ~8 GB. DenseBuildCount catches the matrices
// sneaking back onto the probe path even on machines with memory to spare.
//
// Gated behind LACRET_SMOKE=1 like the warm-probe smoke: it plans the
// largest Table 1 circuit, which is too slow for the default test run. The
// pass runs under a wall budget (default 5m, LACRET_SMOKE_BUDGET to
// override) — a converged s5378 search takes ~18 min of period probing on a
// 1-CPU box, and a budget-degraded pass exercises the engine and the
// dense-build guard just as well.
func TestLazyEngineSmokeS5378(t *testing.T) {
	if os.Getenv("LACRET_SMOKE") == "" {
		t.Skip("set LACRET_SMOKE=1 to run")
	}
	budget := 5 * time.Minute
	if s := os.Getenv("LACRET_SMOKE_BUDGET"); s != "" {
		d, err := time.ParseDuration(s)
		if err != nil {
			t.Fatalf("LACRET_SMOKE_BUDGET: %v", err)
		}
		budget = d
	}
	p, ok := bench89.ByName("s5378")
	if !ok {
		t.Fatal("no s5378 in catalog")
	}
	nl, err := bench89.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	before := retime.DenseBuildCount()
	res, err := Plan(nl, Config{
		Seed: p.Seed, Whitespace: 0.13, TclkSlack: 0.2,
		LAC:    core.Options{Alpha: 0.2, Nmax: 5, MaxIters: 20},
		Budget: Budget{Wall: budget},
		// Auto would pick lazy at this size too; pin it so the guard is
		// explicit about what it certifies.
		ProbeEngine: ProbeEngineLazy,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := retime.DenseBuildCount(); got != before {
		t.Fatalf("dense W/D matrices built %d times during a lazy plan", got-before)
	}
	if res.ProbeEngine != ProbeEngineLazy {
		t.Fatalf("engine %q", res.ProbeEngine)
	}
	if res.ProbeMem.Sweeps == 0 {
		t.Fatal("lazy engine swept nothing")
	}
	if res.ProbeMem.DenseBytes != 0 {
		t.Fatalf("lazy engine reports %d dense bytes", res.ProbeMem.DenseBytes)
	}
	if res.Tmin <= 0 || res.Tclk < res.Tmin || res.LAC == nil {
		t.Fatalf("implausible plan: Tmin=%g Tclk=%g", res.Tmin, res.Tclk)
	}
	t.Logf("s5378 lazy plan: %d vertices, Tmin=%.3f Tclk=%.3f, %d sweeps (%d abandoned), cache %d rows/%d pairs (%d evictions, %d hits), degraded=%v",
		res.Graph.N(), res.Tmin, res.Tclk, res.ProbeMem.Sweeps, res.ProbeMem.Abandoned,
		res.ProbeMem.CachedRows, res.ProbeMem.CachedPairs, res.ProbeMem.Evictions, res.ProbeMem.Hits,
		res.TruncatedStages())
}
