package plan

import (
	"context"
	"fmt"

	"lacret/internal/tile"
)

// gridStage overlays the tile graph (Figure 2) on the placement: free
// channel/dead cells, hard-block cells with pre-located sites, and merged
// soft-block capacity tiles.
type gridStage struct{}

func (gridStage) Name() string { return stageGrid }

func (gridStage) Run(ctx context.Context, st *PlanState, cfg *Config) error {
	tp := cfg.Tile
	if tp.HardSiteArea == 0 {
		tp.HardSiteArea = cfg.HardSiteArea
	}
	g, err := tile.Build(st.Placement, st.HardBlock, st.GateArea, tp)
	if err != nil {
		return err
	}
	if g.Rows < 2 || g.Cols < 2 {
		return fmt.Errorf("plan: tile grid %dx%d too small (pads need a 2x2 boundary)", g.Rows, g.Cols)
	}
	st.Grid = g
	st.Result.Grid = g
	return nil
}

func (gridStage) Counters(st *PlanState) []Counter {
	if st.Grid == nil {
		return nil
	}
	return []Counter{
		{"rows", float64(st.Grid.Rows)},
		{"cols", float64(st.Grid.Cols)},
		{"tiles", float64(st.Grid.NumTiles())},
	}
}
