package plan

import (
	"testing"

	"lacret/internal/netlist"
	"lacret/internal/tile"
)

// padCircuit builds a netlist with the given I/O count; the gates just give
// each output something to be driven by.
func padCircuit(t *testing.T, nin, nout int) *netlist.Netlist {
	t.Helper()
	nl := netlist.New("pads")
	var ins []netlist.NodeID
	for i := 0; i < nin; i++ {
		id, err := nl.AddInput(string(rune('a' + i)))
		if err != nil {
			t.Fatal(err)
		}
		ins = append(ins, id)
	}
	for i := 0; i < nout; i++ {
		g, err := nl.AddGate("g"+string(rune('0'+i)), "not", ins[i%len(ins)])
		if err != nil {
			t.Fatal(err)
		}
		nl.MarkOutput(g)
	}
	return nl
}

// TestAssignPadsNoCollisions is the regression test for the pad-collision
// bug: on a short boundary the old nominal-position formula mapped several
// pads to the same cell ((i*L)/n truncates, and the output offset lands on
// input positions). Every pad must get its own boundary cell while free
// cells remain.
func TestAssignPadsNoCollisions(t *testing.T) {
	// 3x3 grid: 8 boundary cells for 5 inputs + 3 outputs. The old formula
	// put inputs 0,1 both on boundary[0] and output 0 on an input's cell.
	nl := padCircuit(t, 5, 3)
	g := &tile.Grid{Rows: 3, Cols: 3}
	padIn, padOut := assignPads(nl, g)
	if len(padIn) != 5 || len(padOut) != 3 {
		t.Fatalf("%d input pads, %d output pads", len(padIn), len(padOut))
	}
	seen := map[int]string{}
	for _, pads := range []map[netlist.NodeID]int{padIn, padOut} {
		for id, c := range pads {
			name := nl.Node(id).Name
			if prev, dup := seen[c]; dup {
				t.Fatalf("pads %s and %s share boundary cell %d", prev, name, c)
			}
			seen[c] = name
		}
	}
	// All pads must sit on the boundary.
	onBoundary := map[int]bool{}
	for _, c := range boundaryCells(g) {
		onBoundary[c] = true
	}
	for c := range seen {
		if !onBoundary[c] {
			t.Fatalf("pad cell %d is not a boundary cell", c)
		}
	}
}

// TestAssignPadsOversubscribed: with more pads than boundary cells, every
// cell is claimed exactly once before any sharing starts.
func TestAssignPadsOversubscribed(t *testing.T) {
	nl := padCircuit(t, 5, 5)
	g := &tile.Grid{Rows: 2, Cols: 2} // 4 boundary cells for 10 pads
	padIn, padOut := assignPads(nl, g)
	count := map[int]int{}
	for _, pads := range []map[netlist.NodeID]int{padIn, padOut} {
		for _, c := range pads {
			count[c]++
		}
	}
	if len(count) != 4 {
		t.Fatalf("only %d of 4 boundary cells used", len(count))
	}
	total := 0
	for _, n := range count {
		total += n
	}
	if total != 10 {
		t.Fatalf("%d pads assigned, want 10", total)
	}
}

// TestAssignPadsMatchesNominalWhenSparse: with plenty of boundary, the
// collision handling must not move anything — pads stay on the nominal
// evenly-spread positions the pre-fix code chose.
func TestAssignPadsMatchesNominalWhenSparse(t *testing.T) {
	nl := padCircuit(t, 2, 2)
	g := &tile.Grid{Rows: 6, Cols: 6}
	boundary := boundaryCells(g)
	padIn, padOut := assignPads(nl, g)
	n := 4
	for i, id := range nl.InputIDs() {
		want := boundary[(i*len(boundary))/n]
		if padIn[id] != want {
			t.Fatalf("input %d moved off its nominal cell: %d != %d", i, padIn[id], want)
		}
	}
	off := len(boundary) / 2
	for i, id := range nl.Outputs {
		want := boundary[(off+(i*len(boundary))/n)%len(boundary)]
		if padOut[id] != want {
			t.Fatalf("output %d moved off its nominal cell: %d != %d", i, padOut[id], want)
		}
	}
}
