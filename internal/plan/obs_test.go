package plan

import (
	"context"
	"testing"

	"lacret/internal/obs"
)

// countSpans counts spans named name anywhere under the given forest.
func countSpans(spans []*obs.Span, name string) int {
	n := 0
	for _, sp := range spans {
		if sp.Name == name {
			n++
		}
		n += countSpans(sp.Children, name)
	}
	return n
}

// TestPlanObserved is the instrumentation contract end to end: a recorder on
// the context yields a pass span with one child per executed stage, the
// anytime stages carry their sub-stage spans (period probes, routing rounds,
// LAC rounds with nested flow solves), the shared registry fills — and none
// of it changes the planning result.
func TestPlanObserved(t *testing.T) {
	nl := smallCircuit(t)
	cfg := Config{Seed: 1, FloorplanMoves: 2000}
	plain, err := Plan(nl, cfg)
	if err != nil {
		t.Fatal(err)
	}

	rec := obs.NewRecorder()
	ctx := obs.NewContext(context.Background(), rec)
	iters, err := PlanIterationsContext(ctx, nl, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(iters) != 1 || iters[0].Err != nil {
		t.Fatalf("iters = %+v", iters)
	}
	res := iters[0].Result

	// Observation must not perturb the numbers.
	if res.Tmin != plain.Tmin || res.Tclk != plain.Tclk {
		t.Errorf("periods drift under observation: Tmin %v vs %v, Tclk %v vs %v",
			res.Tmin, plain.Tmin, res.Tclk, plain.Tclk)
	}
	if res.RouteWirelength != plain.RouteWirelength {
		t.Errorf("wirelength drift: %v vs %v", res.RouteWirelength, plain.RouteWirelength)
	}
	if res.MinArea.NF != plain.MinArea.NF || res.LAC.NF != plain.LAC.NF ||
		res.LAC.NFOA != plain.LAC.NFOA || res.LAC.NWR != plain.LAC.NWR {
		t.Errorf("retiming drift: MinArea.NF %d vs %d, LAC %d/%d/%d vs %d/%d/%d",
			res.MinArea.NF, plain.MinArea.NF,
			res.LAC.NF, res.LAC.NFOA, res.LAC.NWR,
			plain.LAC.NF, plain.LAC.NFOA, plain.LAC.NWR)
	}

	// One root pass span whose children are the executed stages in order.
	roots := rec.Roots()
	if len(roots) != 1 || roots[0].Name != "pass" {
		t.Fatalf("roots = %+v", roots)
	}
	if len(roots[0].Children) != len(defaultStageNames) {
		t.Fatalf("pass has %d stage spans, want %d", len(roots[0].Children), len(defaultStageNames))
	}
	for i, sp := range roots[0].Children {
		if sp.Name != defaultStageNames[i] {
			t.Fatalf("stage span %d is %q, want %q", i, sp.Name, defaultStageNames[i])
		}
	}

	// Sub-stage spans land on the matching trace events.
	sub := map[string][]*obs.Span{}
	for _, ev := range res.Trace {
		sub[ev.Stage] = ev.Sub
	}
	for _, c := range []struct {
		stage, span string
		min         int
	}{
		{"periods", "probe", 1},
		{"route", "initial", 1},
		{"route", "round", 1},
		{"lac", "lac-round", 1},
		{"lac", "mcmf-solve", 1},
		{"lac", "phase", 1},
	} {
		if n := countSpans(sub[c.stage], c.span); n < c.min {
			t.Errorf("stage %s has %d %q sub-spans, want >= %d", c.stage, n, c.span, c.min)
		}
	}
	if n := countSpans(sub["periods"], "probe"); n > 0 {
		// Every probe records its target period and feasibility verdict.
		for _, sp := range sub["periods"] {
			if sp.Name != "probe" {
				continue
			}
			if _, ok := sp.Attr("t"); !ok {
				t.Error("probe span missing t attr")
			}
			if _, ok := sp.Attr("feasible"); !ok {
				t.Error("probe span missing feasible attr")
			}
		}
	}

	// The shared registry accumulated the work counters.
	snap := rec.Registry().Snapshot()
	for _, name := range []string{"retime.probes", "route.rounds", "lac.rounds", "mcmf.phases", "mcmf.augpaths"} {
		if snap.Counters[name] == 0 {
			t.Errorf("counter %s is zero after an observed plan", name)
		}
	}
	if snap.Gauges["plan.pass"] != 1 {
		t.Errorf("plan.pass gauge = %g, want 1", snap.Gauges["plan.pass"])
	}
	if snap.Histograms["retime.probe_ms"].Count == 0 {
		t.Error("probe duration histogram is empty")
	}
	if got, want := snap.Counters["retime.probes"], int64(countSpans(sub["periods"], "probe")); got != want {
		t.Errorf("retime.probes counter %d != probe span count %d", got, want)
	}
}

// TestStageReportsFromTrace covers the trace → report conversion including
// sub-stage spans and flags.
func TestStageReportsFromTrace(t *testing.T) {
	nl := smallCircuit(t)
	rec := obs.NewRecorder()
	ctx := obs.NewContext(context.Background(), rec)
	iters, err := PlanIterationsContext(ctx, nl, Config{Seed: 1, FloorplanMoves: 2000}, 1)
	if err != nil || iters[0].Err != nil {
		t.Fatal(err, iters[0].Err)
	}
	passes := PassReports(iters)
	if len(passes) != 1 || passes[0].Index != 0 || passes[0].Err != "" {
		t.Fatalf("passes = %+v", passes)
	}
	stages := passes[0].Stages
	if len(stages) != len(defaultStageNames) {
		t.Fatalf("%d stage reports, want %d", len(stages), len(defaultStageNames))
	}
	probeSeen := false
	for i, sr := range stages {
		if sr.Name != defaultStageNames[i] {
			t.Fatalf("stage report %d is %q", i, sr.Name)
		}
		if sr.WallNS <= 0 {
			t.Errorf("stage %s wall %d", sr.Name, sr.WallNS)
		}
		if sr.Name == "periods" && countSpans(sr.Spans, "probe") > 0 {
			probeSeen = true
		}
	}
	// The converted report must survive the schema round trip.
	if !probeSeen {
		t.Error("periods stage report has no probe spans")
	}
	rep := &obs.Report{Tool: "test", Circuit: nl.Name, Passes: passes,
		Metrics: rec.Registry().Snapshot()}
	data, err := rep.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := obs.DecodeReport(data); err != nil {
		t.Fatal(err)
	}
}
