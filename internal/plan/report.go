package plan

import "lacret/internal/obs"

// StageReports converts a pass's trace into the report schema's stage
// records, carrying each stage's counters and sub-stage spans verbatim.
func StageReports(trace []StageEvent) []obs.StageReport {
	out := make([]obs.StageReport, 0, len(trace))
	for _, ev := range trace {
		sr := obs.StageReport{
			Name:      ev.Stage,
			WallNS:    ev.Wall.Nanoseconds(),
			Skipped:   ev.Skipped,
			Truncated: ev.Truncated,
			Recovered: ev.Recovered,
			Spans:     ev.Sub,
		}
		for _, c := range ev.Counters {
			sr.Counters = append(sr.Counters, obs.Attr{Key: c.Name, Value: c.Value})
		}
		out = append(out, sr)
	}
	return out
}

// PassReports converts the iterations of one planning run into the report
// schema's pass records (one per pass, errors included).
func PassReports(iters []Iteration) []obs.PassReport {
	out := make([]obs.PassReport, 0, len(iters))
	for i, it := range iters {
		pr := obs.PassReport{Index: i}
		if it.Err != nil {
			pr.Err = it.Err.Error()
		}
		if it.Result != nil {
			pr.Stages = StageReports(it.Result.Trace)
		}
		out = append(out, pr)
	}
	return out
}
