package plan

import (
	"testing"

	"lacret/internal/bench89"
	"lacret/internal/core"
	"lacret/internal/retime"
)

func planS400(t *testing.T, engine string) *Result {
	t.Helper()
	p, ok := bench89.ByName("s400")
	if !ok {
		t.Fatal("no s400 in catalog")
	}
	nl, err := bench89.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Plan(nl, Config{
		Seed: p.Seed, Whitespace: 0.13, TclkSlack: 0.2,
		LAC:         core.Options{Alpha: 0.2, Nmax: 5, MaxIters: 20},
		ProbeEngine: engine,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestPlanGoldenS400BothEngines pins the golden s400 plan under an explicit
// engine choice: the dense and lazy constraint engines must produce the
// bit-identical plan (and the same golden values TestPlanGoldenS400 pins
// for the auto path).
func TestPlanGoldenS400BothEngines(t *testing.T) {
	if testing.Short() {
		t.Skip("catalog circuit in short mode")
	}
	dense := planS400(t, ProbeEngineDense)
	lazy := planS400(t, ProbeEngineLazy)
	if dense.ProbeEngine != ProbeEngineDense || lazy.ProbeEngine != ProbeEngineLazy {
		t.Fatalf("engines resolved to %q / %q", dense.ProbeEngine, lazy.ProbeEngine)
	}
	exact := func(name string, got, want float64) {
		if got != want {
			t.Errorf("%s: lazy %.17g != dense %.17g", name, got, want)
		}
	}
	exact("Tinit", lazy.Tinit, dense.Tinit)
	exact("Tmin", lazy.Tmin, dense.Tmin)
	exact("Tclk", lazy.Tclk, dense.Tclk)
	exact("RouteWirelength", lazy.RouteWirelength, dense.RouteWirelength)
	for _, c := range []struct {
		name      string
		got, want int
	}{
		{"MinArea.NFOA", lazy.MinArea.NFOA, dense.MinArea.NFOA},
		{"MinArea.NF", lazy.MinArea.NF, dense.MinArea.NF},
		{"LAC.NFOA", lazy.LAC.NFOA, dense.LAC.NFOA},
		{"LAC.NF", lazy.LAC.NF, dense.LAC.NF},
		{"LAC.NWR", lazy.LAC.NWR, dense.LAC.NWR},
		{"RepeaterCount", lazy.RepeaterCount, dense.RepeaterCount},
	} {
		if c.got != c.want {
			t.Errorf("%s: lazy %d != dense %d", c.name, c.got, c.want)
		}
	}
	// Cross-check against the pre-refactor golden values directly so both
	// engines stay pinned even if the dense run drifts.
	exact("dense Tmin vs golden", dense.Tmin, 3.0401092935255556)
	exact("dense Tclk vs golden", dense.Tclk, 4.6144248994400368)
	// And the engines report coherent accounting: the dense run holds the
	// matrices, the lazy run swept rows without them.
	if dense.ProbeMem.DenseBytes == 0 {
		t.Error("dense run reports no matrix bytes")
	}
	if lazy.ProbeMem.DenseBytes != 0 {
		t.Error("lazy run reports dense matrix bytes")
	}
	if lazy.ProbeMem.Sweeps == 0 {
		t.Error("lazy run reports no sweeps")
	}
	if lazy.LAC == nil || len(lazy.LAC.R) != len(dense.LAC.R) {
		t.Fatal("labeling lengths differ")
	}
	for i := range lazy.LAC.R {
		if lazy.LAC.R[i] != dense.LAC.R[i] {
			t.Fatalf("LAC labeling differs at vertex %d: lazy %d dense %d",
				i, lazy.LAC.R[i], dense.LAC.R[i])
		}
	}
}

// TestResolveProbeEngine pins auto-selection by vertex count and explicit
// overrides.
func TestResolveProbeEngine(t *testing.T) {
	small, big := LazyEngineThreshold-1, LazyEngineThreshold
	for _, c := range []struct {
		cfg  string
		n    int
		want string
	}{
		{"", small, ProbeEngineDense},
		{"", big, ProbeEngineLazy},
		{ProbeEngineAuto, small, ProbeEngineDense},
		{ProbeEngineAuto, big, ProbeEngineLazy},
		{ProbeEngineDense, big, ProbeEngineDense},
		{ProbeEngineLazy, small, ProbeEngineLazy},
	} {
		cfg := &Config{ProbeEngine: c.cfg}
		if got := resolveProbeEngine(cfg, c.n); got != c.want {
			t.Errorf("resolveProbeEngine(%q, %d) = %q, want %q", c.cfg, c.n, got, c.want)
		}
	}
}

// TestConfigRejectsUnknownProbeEngine: NewState validates the engine name.
func TestConfigRejectsUnknownProbeEngine(t *testing.T) {
	nl := smallCircuit(t)
	if _, err := NewState(nl, &Config{ProbeEngine: "eager"}); err == nil {
		t.Fatal("unknown ProbeEngine accepted")
	}
	st, err := NewState(nl, &Config{})
	if err != nil {
		t.Fatal(err)
	}
	_ = st
}

// TestProblemSourceRegeneratesConstraints: a core Problem carrying only the
// engine (no prebuilt constraint system) regenerates the same system the
// dense build produces.
func TestProblemSourceRegeneratesConstraints(t *testing.T) {
	nl := smallCircuit(t)
	res, err := Plan(nl, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	p := *res.Problem
	p.Constraints = nil // force regeneration through p.Source
	if p.Source == nil {
		t.Fatal("planned Problem carries no constraint source")
	}
	ma, err := p.MinAreaBaseline()
	if err != nil {
		t.Fatal(err)
	}
	if ma.NF != res.MinArea.NF || ma.NFOA != res.MinArea.NFOA {
		t.Fatalf("regenerated baseline NF=%d NFOA=%d, want NF=%d NFOA=%d",
			ma.NF, ma.NFOA, res.MinArea.NF, res.MinArea.NFOA)
	}
}

var _ retime.ConstraintSource = (*retime.LazySource)(nil)
