package plan

import (
	"testing"

	"lacret/internal/bench89"
	"lacret/internal/netlist"
	"lacret/internal/retime"
	"lacret/internal/tech"
	"lacret/internal/tile"
)

func genCircuit(t *testing.T, name string) *netlist.Netlist {
	t.Helper()
	p, ok := bench89.ByName(name)
	if !ok {
		t.Fatalf("no circuit %s", name)
	}
	nl, err := bench89.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	return nl
}

func smallCircuit(t testing.TB) *netlist.Netlist {
	t.Helper()
	nl, err := bench89.Generate(bench89.Params{
		Name: "tiny", Gates: 80, DFFs: 10, Inputs: 5, Outputs: 5,
		Depth: 8, MaxFanin: 3, Seed: 42, FeedbackDepth: 0.4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return nl
}

func TestPlanSmallEndToEnd(t *testing.T) {
	nl := smallCircuit(t)
	res, err := Plan(nl, Config{Seed: 1, FloorplanMoves: 3000})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumBlocks < 2 {
		t.Fatalf("blocks %d", res.NumBlocks)
	}
	if res.Tinit < res.Tmin-1e-9 {
		t.Fatalf("Tinit %g < Tmin %g", res.Tinit, res.Tmin)
	}
	if res.Tclk < res.Tmin-1e-9 || res.Tclk > res.Tinit+1e-9 {
		t.Fatalf("Tclk %g outside [%g,%g]", res.Tclk, res.Tmin, res.Tinit)
	}
	// Both retimings meet the period.
	for _, r := range []interface {
		// core.Result
	}{} {
		_ = r
	}
	if err := res.Graph.CheckFeasible(res.MinArea.R, res.Tclk); err != nil {
		t.Fatalf("min-area labeling: %v", err)
	}
	if err := res.Graph.CheckFeasible(res.LAC.R, res.Tclk); err != nil {
		t.Fatalf("LAC labeling: %v", err)
	}
	// The headline property: LAC never has more violations than min-area.
	if res.LAC.NFOA > res.MinArea.NFOA {
		t.Fatalf("LAC NFOA %d > min-area %d", res.LAC.NFOA, res.MinArea.NFOA)
	}
	if res.Graph.N() == 0 || res.Graph.M() == 0 {
		t.Fatal("empty retiming graph")
	}
}

func TestPlanProducesInterconnectUnits(t *testing.T) {
	nl := smallCircuit(t)
	res, err := Plan(nl, Config{Seed: 2, FloorplanMoves: 3000})
	if err != nil {
		t.Fatal(err)
	}
	if res.WireUnits == 0 {
		t.Fatal("no interconnect units created — blocks must be connected by routed wires")
	}
	wires := 0
	for v := 0; v < res.Graph.N(); v++ {
		if res.Graph.Kind(v) == retime.KindWire {
			wires++
		}
	}
	if wires != res.WireUnits {
		t.Fatalf("wire count mismatch: %d vs %d", wires, res.WireUnits)
	}
}

func TestPlanDeterministic(t *testing.T) {
	nl1 := smallCircuit(t)
	nl2 := smallCircuit(t)
	a, err := Plan(nl1, Config{Seed: 3, FloorplanMoves: 2000})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Plan(nl2, Config{Seed: 3, FloorplanMoves: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if a.Tinit != b.Tinit || a.Tmin != b.Tmin || a.Tclk != b.Tclk {
		t.Fatalf("periods differ: %v vs %v", []float64{a.Tinit, a.Tmin}, []float64{b.Tinit, b.Tmin})
	}
	if a.MinArea.NFOA != b.MinArea.NFOA || a.LAC.NFOA != b.LAC.NFOA {
		t.Fatal("results not deterministic")
	}
}

func TestPlanTclkOverride(t *testing.T) {
	nl := smallCircuit(t)
	base, err := Plan(nl, Config{Seed: 4, FloorplanMoves: 2000})
	if err != nil {
		t.Fatal(err)
	}
	nl2 := smallCircuit(t)
	over, err := Plan(nl2, Config{Seed: 4, FloorplanMoves: 2000, TclkOverride: base.Tinit})
	if err != nil {
		t.Fatal(err)
	}
	if over.Tclk != base.Tinit {
		t.Fatalf("override ignored: %g", over.Tclk)
	}
}

func TestPlanInfeasibleOverride(t *testing.T) {
	nl := smallCircuit(t)
	_, err := Plan(nl, Config{Seed: 5, FloorplanMoves: 2000, TclkOverride: 0.01})
	if err == nil {
		t.Fatal("impossible Tclk accepted")
	}
	if _, ok := err.(ErrTclkInfeasible); !ok {
		t.Fatalf("err = %T %v", err, err)
	}
}

func TestPlanCatalogCircuit(t *testing.T) {
	if testing.Short() {
		t.Skip("catalog circuit in short mode")
	}
	nl := genCircuit(t, "s400")
	res, err := Plan(nl, Config{Seed: 400})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tmin > res.Tinit {
		t.Fatalf("Tmin %g > Tinit %g", res.Tmin, res.Tinit)
	}
	if res.LAC.NFOA > res.MinArea.NFOA {
		t.Fatalf("LAC worse than min-area: %d > %d", res.LAC.NFOA, res.MinArea.NFOA)
	}
	t.Logf("s400: Tinit=%.2f Tmin=%.2f Tclk=%.2f NF=%d/%d NFOA=%d/%d NFN=%d/%d wires=%d",
		res.Tinit, res.Tmin, res.Tclk,
		res.MinArea.NF, res.LAC.NF, res.MinArea.NFOA, res.LAC.NFOA,
		res.MinAreaNFN, res.LACNFN, res.WireUnits)
}

func TestPlanValidationErrors(t *testing.T) {
	nl := netlist.New("empty")
	if _, err := Plan(nl, Config{}); err == nil {
		t.Fatal("empty netlist accepted")
	}
	nl2 := smallCircuit(t)
	if _, err := Plan(nl2, Config{TclkSlack: 5}); err == nil {
		t.Fatal("bad slack accepted")
	}
	bad := tech.Default()
	bad.Lmax = -1
	nl3 := smallCircuit(t)
	if _, err := Plan(nl3, Config{Tech: bad}); err == nil {
		t.Fatal("bad tech accepted")
	}
}

func TestCountInterconnectFFs(t *testing.T) {
	rg := retime.NewGraph()
	u := rg.AddVertex("u", retime.KindUnit, 1)
	w := rg.AddVertex("w", retime.KindWire, 0.1)
	v := rg.AddVertex("v", retime.KindUnit, 1)
	rg.AddEdge(u, w, 1)
	rg.AddEdge(w, v, 2)
	if got := CountInterconnectFFs(rg); got != 2 {
		t.Fatalf("NFN=%d, want 2", got)
	}
}

func TestExpandedConfigGrowsViolatingBlocks(t *testing.T) {
	nl := smallCircuit(t)
	// Force violations with a starved whitespace.
	res, err := Plan(nl, Config{Seed: 6, FloorplanMoves: 2000, Whitespace: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	if res.LAC.NFOA == 0 {
		t.Skip("no violations to expand at this configuration")
	}
	next := ExpandedConfig(Config{Seed: 6, FloorplanMoves: 2000, Whitespace: 0.02}, res)
	if next.TclkOverride != res.Tclk {
		t.Fatal("Tclk not carried over")
	}
	grew := false
	for _, s := range next.BlockScale {
		if s > 1 {
			grew = true
		}
	}
	if !grew && next.Whitespace <= 0.02 {
		t.Fatal("nothing expanded despite violations")
	}
}

func TestPlanIterationsConverge(t *testing.T) {
	if testing.Short() {
		t.Skip("iterative planning in short mode")
	}
	nl := smallCircuit(t)
	iters, err := PlanIterations(nl, Config{Seed: 7, FloorplanMoves: 2000, Whitespace: 0.02}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(iters) == 0 {
		t.Fatal("no iterations")
	}
	last := iters[len(iters)-1]
	if last.Err == nil && len(iters) > 1 {
		first := iters[0].Result.LAC.NFOA
		if last.Result.LAC.NFOA > first {
			t.Fatalf("expansion made violations worse: %d -> %d", first, last.Result.LAC.NFOA)
		}
	}
}

func TestBoundaryCellsCoverPerimeter(t *testing.T) {
	nl := smallCircuit(t)
	res, err := Plan(nl, Config{Seed: 8, FloorplanMoves: 1000})
	if err != nil {
		t.Fatal(err)
	}
	cells := boundaryCells(res.Grid)
	want := 2*res.Grid.Cols + 2*res.Grid.Rows - 4
	if len(cells) != want {
		t.Fatalf("%d boundary cells, want %d", len(cells), want)
	}
	seen := map[int]bool{}
	for _, c := range cells {
		if seen[c] {
			t.Fatalf("duplicate boundary cell %d", c)
		}
		seen[c] = true
	}
}

func TestPlanWithHardBlocks(t *testing.T) {
	nl := smallCircuit(t)
	res, err := Plan(nl, Config{
		Seed: 9, FloorplanMoves: 3000,
		HardBlocks: []int{0}, HardSiteArea: 5000,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Block 0 must be hard: no merged soft tile, square footprint.
	if res.Grid.SoftTile[0] != -1 {
		t.Fatal("hard block got a merged soft tile")
	}
	if res.Placement.W[0] != res.Placement.H[0] {
		t.Fatal("hard block not square")
	}
	// Its tiles expose only the pre-located site capacity.
	found := false
	for c := 0; c < res.Grid.NumCells(); c++ {
		if res.Grid.CellBlock[c] == 0 {
			found = true
			if res.Grid.Cap[c] != 5000 {
				t.Fatalf("hard cell capacity %g, want 5000", res.Grid.Cap[c])
			}
		}
	}
	if !found {
		t.Fatal("no cells classified as the hard block")
	}
	if res.LAC.NFOA > res.MinArea.NFOA {
		t.Fatal("LAC worse than min-area")
	}
}

func TestPlanHardBlockErrors(t *testing.T) {
	nl := smallCircuit(t)
	if _, err := Plan(nl, Config{HardBlocks: []int{99}}); err == nil {
		t.Fatal("bad hard block index accepted")
	}
	nl2 := smallCircuit(t)
	if _, err := Plan(nl2, Config{HardSiteArea: -1}); err == nil {
		t.Fatal("negative site area accepted")
	}
}

func TestPlanCombinationalCircuit(t *testing.T) {
	// No flip-flops at all: planning still works; retiming is trivial
	// (ports pinned, registers cannot appear), Tmin == Tinit.
	nl, err := bench89.Generate(bench89.Params{
		Name: "comb", Gates: 40, DFFs: 0, Inputs: 6, Outputs: 4,
		Depth: 5, MaxFanin: 3, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Plan(nl, Config{Seed: 5, FloorplanMoves: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if res.MinArea.NF != 0 || res.LAC.NF != 0 {
		t.Fatalf("registers appeared in a combinational circuit: %d/%d", res.MinArea.NF, res.LAC.NF)
	}
	if res.Tmin < res.Tinit-1e-6 {
		t.Fatalf("Tmin %g < Tinit %g in a combinational circuit", res.Tmin, res.Tinit)
	}
}

func TestPlanRejectsTinyGrid(t *testing.T) {
	nl := smallCircuit(t)
	_, err := Plan(nl, Config{Seed: 1, FloorplanMoves: 500,
		Tile: tile.Params{Rows: 1, Cols: 1}})
	if err == nil {
		t.Fatal("1x1 grid accepted")
	}
}
