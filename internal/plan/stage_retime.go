package plan

import (
	"context"
	"errors"
	"math"
	"time"

	"lacret/internal/core"
	"lacret/internal/obs"
	"lacret/internal/retime"
)

// ProbeEngine values for Config.ProbeEngine.
const (
	ProbeEngineAuto  = "auto"
	ProbeEngineDense = "dense"
	ProbeEngineLazy  = "lazy"
)

// LazyEngineThreshold is the vertex count at which ProbeEngineAuto switches
// from the dense W/D matrices to the lazy sweep engine. Below it the dense
// build is cheap (a few MB, milliseconds) and its rows amortize across the
// whole pass; above it the O(V²) footprint dominates the pass — 47k
// vertices (s5378 as planned) already means ~27 GB of matrices.
const LazyEngineThreshold = 20000

// resolveProbeEngine maps the configured engine to the one that runs,
// settling "auto" by vertex count.
func resolveProbeEngine(cfg *Config, n int) string {
	switch cfg.ProbeEngine {
	case ProbeEngineDense, ProbeEngineLazy:
		return cfg.ProbeEngine
	}
	if n >= LazyEngineThreshold {
		return ProbeEngineLazy
	}
	return ProbeEngineDense
}

// periodsStage derives the timing envelope of the as-planned design: the
// initial period Tinit, the optimal retimed period Tmin, and the target
// Tclk. It selects and builds the pass's constraint engine (dense W/D
// matrices or the lazy per-source sweep engine, Config.ProbeEngine), which
// the constraints stage reuses for generation at Tclk.
type periodsStage struct{}

func (periodsStage) Name() string { return stagePeriods }

// buildConstraintSource constructs the pass's constraint engine over the
// retiming graph — shared by the regular periods run and the
// checkpoint-resume path, which must rebuild the exact same engine without
// re-running the period search.
func buildConstraintSource(rg *retime.Graph, engine string) (retime.ConstraintSource, error) {
	if engine == ProbeEngineLazy {
		// Floor at the search's lower bracket end (the maximum vertex
		// delay): no probe, and no later constraint generation at
		// Tclk >= Tmin >= floor, ever asks below it.
		floor := 0.0
		for v := 0; v < rg.N(); v++ {
			if d := rg.Delay(v); d > floor {
				floor = d
			}
		}
		return retime.NewLazySource(rg, floor, 0), nil
	}
	return retime.NewDenseSource(rg, rg.WDMatrices(), 0)
}

func (periodsStage) Run(ctx context.Context, st *PlanState, cfg *Config) error {
	rg, res := st.Result.Graph, st.Result
	engine := resolveProbeEngine(cfg, rg.N())
	reg := obs.FromContext(ctx).Registry()
	if rp := st.restoredPeriods; rp != nil {
		// Checkpoint resume: the search outcome is already known. Rebuild
		// only the constraint engine (the graph stage re-ran, so the graph
		// is fresh) and adopt the restored envelope; the probe counters
		// stay zero — the proof the search was skipped, not repeated.
		src, err := buildConstraintSource(rg, engine)
		if err != nil {
			return err
		}
		st.Source = src
		res.ProbeEngine = engine
		reg.Status("retime.probe_engine").Set(engine)
		res.ProbeMem = src.Mem()
		emitSourceGauges(reg, res.ProbeMem)
		res.Tinit, res.Tmin, res.TminLo, res.Tclk = rp.Tinit, rp.Tmin, rp.TminLo, rp.Tclk
		if rp.Truncated {
			st.noteTruncated(stagePeriods)
		}
		return nil
	}
	tinit, err := rg.Period()
	if err != nil {
		return err
	}
	src, err := buildConstraintSource(rg, engine)
	if err != nil {
		return err
	}
	res.ProbeEngine = engine
	reg.Status("retime.probe_engine").Set(engine)
	tmin, _, pstats, err := rg.MinPeriodSourceStatsContext(ctx, 1e-3, src)
	res.Probe = pstats
	var tminLo float64
	if err != nil {
		// Anytime degradation: a budget-interrupted search still yields an
		// achievable period (the bracket's upper end), so the pass plans
		// against that instead of failing. The proven-infeasible lower end
		// is reported as Result.TminLo.
		var beb *retime.ErrBudgetExceeded
		if !errors.As(err, &beb) {
			return err
		}
		tmin, tminLo = beb.Partial.Hi, beb.Partial.Lo
		st.noteTruncated(stagePeriods)
	}
	st.Source = src
	res.ProbeMem = src.Mem()
	emitSourceGauges(reg, res.ProbeMem)
	res.Tinit, res.Tmin, res.TminLo = tinit, tmin, tminLo
	if cfg.TclkOverride > 0 {
		res.Tclk = cfg.TclkOverride
	} else {
		res.Tclk = tmin + cfg.TclkSlack*(tinit-tmin)
	}
	return nil
}

// emitSourceGauges publishes the constraint engine's memory accounting:
// the dense matrices' resident bytes, and the lazy engine's row-cache size
// and eviction/sweep counters.
func emitSourceGauges(reg *obs.Registry, mem retime.SourceMem) {
	reg.Gauge("retime.dense_wd_bytes").Set(float64(mem.DenseBytes))
	reg.Gauge("retime.rowcache_rows").Set(float64(mem.CachedRows))
	reg.Gauge("retime.rowcache_pairs").Set(float64(mem.CachedPairs))
	reg.Gauge("retime.rowcache_evictions").Set(float64(mem.Evictions))
	reg.Gauge("retime.lazy_sweeps").Set(float64(mem.Sweeps))
	reg.Gauge("retime.lazy_abandoned").Set(float64(mem.Abandoned))
}

func (periodsStage) Counters(st *PlanState) []Counter {
	res := st.Result
	cs := []Counter{
		{"tinit", res.Tinit},
		{"tmin", res.Tmin},
		{"tclk", res.Tclk},
		{"probes", float64(res.Probe.Probes)},
		{"feas_warm", float64(res.Probe.Warm)},
		{"witness_rejects", float64(res.Probe.WitnessRejects)},
		{"pairs_scanned", float64(res.Probe.PairsScanned)},
	}
	mem := res.ProbeMem
	if res.ProbeEngine == ProbeEngineLazy {
		cs = append(cs,
			Counter{"engine_lazy", 1},
			Counter{"rowcache_rows", float64(mem.CachedRows)},
			Counter{"rowcache_pairs", float64(mem.CachedPairs)},
			Counter{"rowcache_evictions", float64(mem.Evictions)},
			Counter{"sweeps", float64(mem.Sweeps)},
			Counter{"sweeps_abandoned", float64(mem.Abandoned)},
		)
	} else {
		cs = append(cs,
			Counter{"engine_lazy", 0},
			Counter{"dense_wd_bytes", float64(mem.DenseBytes)},
		)
	}
	return cs
}

// constraintsStage generates the clock/edge/pin constraint system at Tclk
// (built once, per the paper's §4.2), pre-checks feasibility, and
// assembles the LAC problem with per-tile free capacities.
type constraintsStage struct{}

func (constraintsStage) Name() string { return stageConstraints }

func (constraintsStage) Run(ctx context.Context, st *PlanState, cfg *Config) error {
	rg, res := st.Result.Graph, st.Result
	cs, err := rg.BuildConstraintsFrom(res.Tclk, st.Source)
	// Constraint generation pulls rows from the same engine the search
	// used, so refresh the engine accounting: after a budget-truncated
	// search this is where a lazy engine does most of its sweeping.
	res.ProbeMem = st.Source.Mem()
	emitSourceGauges(obs.FromContext(ctx).Registry(), res.ProbeMem)
	if err != nil {
		return ErrTclkInfeasible{Tclk: res.Tclk, Tmin: res.Tmin}
	}
	if _, ok := cs.Feasible(rg); !ok {
		return ErrTclkInfeasible{Tclk: res.Tclk, Tmin: res.Tmin}
	}
	st.Constraints = cs
	g := st.Grid
	caps := make([]float64, g.NumTiles())
	for t := range caps {
		caps[t] = math.Max(0, g.Free(t))
	}
	res.Problem = &core.Problem{
		Graph: rg, Tclk: res.Tclk,
		TileOf: st.TileOf, Cap: caps, FFArea: st.Tech.FFArea,
		Constraints: cs, Source: st.Source,
	}
	return nil
}

func (constraintsStage) Counters(st *PlanState) []Counter {
	var n int
	if st.Constraints != nil {
		n = len(st.Constraints.Cons)
	}
	return []Counter{{"constraints", float64(n)}}
}

// minAreaStage runs the plain minimum-area retiming baseline (one
// min-cost-flow solve, no tile awareness). It opens the retiming half of
// the pipeline, so it also closes out Result.PrepTime.
type minAreaStage struct{}

func (minAreaStage) Name() string { return stageMinArea }

func (minAreaStage) Run(ctx context.Context, st *PlanState, cfg *Config) error {
	res := st.Result
	res.PrepTime = time.Since(st.start)
	ma, err := res.Problem.MinAreaBaseline()
	if err != nil {
		return err
	}
	res.MinArea = ma
	res.MinAreaNFN = CountInterconnectFFs(ma.Retimed)
	return nil
}

func (minAreaStage) Counters(st *PlanState) []Counter {
	if st.Result.MinArea == nil {
		return nil
	}
	var aug, ph int
	for _, it := range st.Result.MinArea.Iters {
		aug += it.AugPaths
		ph += it.Phases
	}
	return []Counter{
		{"nfoa", float64(st.Result.MinArea.NFOA)},
		{"nf", float64(st.Result.MinArea.NF)},
		{"augpaths", float64(aug)},
		{"phases", float64(ph)},
	}
}

// lacStage runs the paper's contribution: LAC-retiming, a series of
// adaptively re-weighted min-area retimings until the per-tile area
// constraints hold or Nmax rounds bring no improvement.
type lacStage struct{}

func (lacStage) Name() string { return stageLAC }

func (lacStage) Run(ctx context.Context, st *PlanState, cfg *Config) error {
	res := st.Result
	lac, err := res.Problem.SolveContext(ctx, cfg.LAC)
	if err != nil {
		if !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
			return err
		}
		// The context expired before the loop produced even a first round.
		// The min-area baseline is itself a feasible (tile-oblivious) LAC
		// answer — same NFOA accounting, zero reweighting rounds — so the
		// pass degrades to it rather than failing.
		cp := *res.MinArea
		cp.Truncated = true
		lac = &cp
	}
	if lac.Truncated {
		st.noteTruncated(stageLAC)
	}
	res.LAC = lac
	res.LACNFN = CountInterconnectFFs(lac.Retimed)
	for _, it := range lac.Iters {
		st.tm.LACRounds = append(st.tm.LACRounds, it.Duration)
	}
	return nil
}

func (lacStage) Counters(st *PlanState) []Counter {
	if st.Result.LAC == nil {
		return nil
	}
	// Incremental-engine telemetry: how many rounds reused the previous
	// solver state, and the total augmenting paths and search phases
	// across the loop (each phase batch-routes the whole admissible
	// subgraph, so phases ≪ augpaths measures how well batching worked).
	var aug, ph, warm int
	for _, it := range st.Result.LAC.Iters {
		aug += it.AugPaths
		ph += it.Phases
		if it.Warm {
			warm++
		}
	}
	return []Counter{
		{"nfoa", float64(st.Result.LAC.NFOA)},
		{"nf", float64(st.Result.LAC.NF)},
		{"rounds", float64(st.Result.LAC.NWR)},
		{"warm", float64(warm)},
		{"augpaths", float64(aug)},
		{"phases", float64(ph)},
	}
}
