package plan

import (
	"context"
	"fmt"

	"lacret/internal/netlist"
	"lacret/internal/retime"
)

// graphStage builds the Leiserson–Saxe retiming graph: one vertex per
// functional unit and port, plus a chain of interconnect-unit vertices per
// repeater segment, every vertex mapped to its capacity tile.
type graphStage struct{}

func (graphStage) Name() string { return stageGraph }

func (graphStage) Run(ctx context.Context, st *PlanState, cfg *Config) error {
	nl, g, pl, col := st.Netlist, st.Grid, st.Placement, st.Collapsed
	rg := retime.NewGraph()
	tileOf := make([]int, 0, 2*len(col.Units))
	vertexOf := make(map[netlist.NodeID]int, len(col.Units))
	addVertex := func(name string, kind retime.VertexKind, delay float64, tl int) int {
		v := rg.AddVertex(name, kind, delay)
		tileOf = append(tileOf, tl)
		return v
	}
	for _, id := range col.Units {
		node := nl.Node(id)
		switch node.Kind {
		case netlist.KindInput:
			v := addVertex(node.Name, retime.KindPort, 0, g.CapTile(st.PadOfInput[id]))
			rg.SetOrigin(v, id)
			vertexOf[id] = v
		case netlist.KindGate:
			v := addVertex(node.Name, retime.KindUnit, node.Delay, g.BlockTile(st.BlockOf[id], pl))
			rg.SetOrigin(v, id)
			vertexOf[id] = v
		}
	}
	res := st.Result
	wireUnits := 0
	for i, c := range st.Conns {
		fromV := vertexOf[c.From]
		var toV int
		if c.ToOutput {
			toV = addVertex("po:"+nl.Node(c.To).Name, retime.KindPort, 0, g.CapTile(c.SinkCell))
			rg.SetOrigin(toV, c.To)
		} else {
			toV = vertexOf[c.To]
		}
		plan := st.RepeaterPlans[i]
		if plan == nil {
			rg.AddEdge(fromV, toV, c.W)
			continue
		}
		prev := fromV
		w := c.W
		for si, seg := range plan.Segments {
			wu := addVertex(fmt.Sprintf("w:%s#%d", nl.Node(c.From).Name, si),
				retime.KindWire, seg.Delay, g.CapTile(seg.EndCell))
			rg.AddEdge(prev, wu, w)
			w = 0
			prev = wu
			wireUnits++
		}
		rg.AddEdge(prev, toV, w)
	}
	if err := rg.Validate(); err != nil {
		return fmt.Errorf("plan: retiming graph invalid: %v", err)
	}
	st.TileOf, st.VertexOf = tileOf, vertexOf
	res.WireUnits = wireUnits
	res.Graph = rg
	return nil
}

func (graphStage) Counters(st *PlanState) []Counter {
	var n, m int
	if st.Result.Graph != nil {
		n, m = st.Result.Graph.N(), st.Result.Graph.M()
	}
	return []Counter{
		{"vertices", float64(n)},
		{"edges", float64(m)},
		{"wire_units", float64(st.Result.WireUnits)},
	}
}
