package plan

import (
	"fmt"
	"strings"
	"time"
)

// Timings records the per-stage wall time of one planning pass, filled by
// the pipeline driver from the same measurements that feed StageEvents.
// It is the instrumentation substrate for the parallel experiments driver
// and the benchmarks: every stage of Figure 1 is timed individually, so
// hot paths are measurable before any sharding or batching work targets
// them.
type Timings struct {
	// Partition is the recursive FM bisection of the netlist.
	Partition time.Duration
	// Floorplan covers block sizing plus the sequence-pair annealer.
	Floorplan time.Duration
	// TileGrid is tile-graph construction from the placement.
	TileGrid time.Duration
	// Route covers pad assignment, Steiner estimation, net ordering, and
	// the congestion-aware global router.
	Route time.Duration
	// Repeaters covers Lmax repeater planning and retiming-graph
	// construction (interconnect units).
	Repeaters time.Duration
	// Periods covers Tinit evaluation, the W/D matrices, and the Tmin
	// binary search.
	Periods time.Duration
	// Constraints is clock/edge/pin constraint generation at Tclk plus the
	// feasibility pre-check.
	Constraints time.Duration
	// MinArea and LAC time the two retiming modes (also exposed as
	// Result.MinAreaTime / Result.LACTime).
	MinArea time.Duration
	LAC     time.Duration
	// Other accumulates stages outside the canonical list (custom stages
	// run through PlanState.Run), so the per-stage buckets always sum to
	// the stage wall time actually spent.
	Other time.Duration
	// LACRounds holds the wall time of each weighted min-area round of the
	// LAC loop, in execution order.
	LACRounds []time.Duration
	// Total is the complete Plan call.
	Total time.Duration
}

// String renders the timings as an aligned multi-line report (one stage per
// line, LAC rounds summarized).
func (t *Timings) String() string {
	var b strings.Builder
	line := func(name string, d time.Duration) {
		fmt.Fprintf(&b, "  %-12s %10.3fms\n", name, float64(d.Microseconds())/1000)
	}
	line("partition", t.Partition)
	line("floorplan", t.Floorplan)
	line("tile grid", t.TileGrid)
	line("route", t.Route)
	line("repeaters", t.Repeaters)
	line("periods", t.Periods)
	line("constraints", t.Constraints)
	line("min-area", t.MinArea)
	line("lac", t.LAC)
	if t.Other > 0 {
		line("other", t.Other)
	}
	if len(t.LACRounds) > 0 {
		var min, max, sum time.Duration
		min = t.LACRounds[0]
		for _, d := range t.LACRounds {
			if d < min {
				min = d
			}
			if d > max {
				max = d
			}
			sum += d
		}
		fmt.Fprintf(&b, "  %-12s %d rounds, %.3fms..%.3fms (avg %.3fms)\n",
			"lac rounds", len(t.LACRounds),
			float64(min.Microseconds())/1000, float64(max.Microseconds())/1000,
			float64(sum.Microseconds())/float64(len(t.LACRounds))/1000)
	}
	line("total", t.Total)
	return b.String()
}
