package plan

import (
	"strings"
	"testing"
	"time"
)

func TestPlanFillsTimings(t *testing.T) {
	nl := smallCircuit(t)
	res, err := Plan(nl, Config{Seed: 1, FloorplanMoves: 3000})
	if err != nil {
		t.Fatal(err)
	}
	tm := res.Timings
	for _, s := range []struct {
		name string
		d    time.Duration
	}{
		{"partition", tm.Partition}, {"floorplan", tm.Floorplan},
		{"tile grid", tm.TileGrid}, {"route", tm.Route},
		{"repeaters", tm.Repeaters}, {"periods", tm.Periods},
		{"constraints", tm.Constraints}, {"min-area", tm.MinArea},
		{"lac", tm.LAC}, {"total", tm.Total},
	} {
		if s.d < 0 {
			t.Fatalf("stage %s has negative duration %v", s.name, s.d)
		}
	}
	if tm.Total <= 0 {
		t.Fatalf("total duration %v", tm.Total)
	}
	stages := tm.Partition + tm.Floorplan + tm.TileGrid + tm.Route +
		tm.Repeaters + tm.Periods + tm.Constraints + tm.MinArea + tm.LAC
	if stages > tm.Total {
		t.Fatalf("stage sum %v exceeds total %v", stages, tm.Total)
	}
	if tm.MinArea != res.MinAreaTime || tm.LAC != res.LACTime {
		t.Fatal("Timings aggregates disagree with the legacy fields")
	}
	if len(tm.LACRounds) != res.LAC.NWR {
		t.Fatalf("%d LAC round timings for NWR=%d", len(tm.LACRounds), res.LAC.NWR)
	}
}

func TestTimingsOtherBucket(t *testing.T) {
	var tm Timings
	tm.record(stagePartition, time.Millisecond)
	tm.record("custom-stage", 2*time.Millisecond)
	tm.record("another", 3*time.Millisecond)
	if tm.Partition != time.Millisecond {
		t.Fatalf("partition bucket %v", tm.Partition)
	}
	if tm.Other != 5*time.Millisecond {
		t.Fatalf("unknown stages must land in Other, got %v", tm.Other)
	}
	if tm.Route != 0 || tm.LAC != 0 || tm.Periods != 0 {
		t.Fatal("unknown stage leaked into a canonical bucket")
	}
	tm.Total = 10 * time.Millisecond
	if out := tm.String(); !strings.Contains(out, "other") {
		t.Fatalf("timings report hides the other bucket:\n%s", out)
	}
	// Zero Other stays out of the report — the common all-canonical case.
	var clean Timings
	clean.record(stageRoute, time.Millisecond)
	clean.Total = time.Millisecond
	if out := clean.String(); strings.Contains(out, "other") {
		t.Fatalf("empty other bucket printed:\n%s", out)
	}
}

func TestTimingsString(t *testing.T) {
	tm := &Timings{
		Partition: time.Millisecond, LAC: 3 * time.Millisecond,
		LACRounds: []time.Duration{time.Millisecond, 2 * time.Millisecond},
		Total:     10 * time.Millisecond,
	}
	out := tm.String()
	for _, want := range []string{"partition", "lac rounds", "2 rounds", "total"} {
		if !strings.Contains(out, want) {
			t.Fatalf("timings report missing %q:\n%s", want, out)
		}
	}
}
