package plan

import (
	"strings"
	"testing"
	"time"
)

func TestPlanFillsTimings(t *testing.T) {
	nl := smallCircuit(t)
	res, err := Plan(nl, Config{Seed: 1, FloorplanMoves: 3000})
	if err != nil {
		t.Fatal(err)
	}
	tm := res.Timings
	for _, s := range []struct {
		name string
		d    time.Duration
	}{
		{"partition", tm.Partition}, {"floorplan", tm.Floorplan},
		{"tile grid", tm.TileGrid}, {"route", tm.Route},
		{"repeaters", tm.Repeaters}, {"periods", tm.Periods},
		{"constraints", tm.Constraints}, {"min-area", tm.MinArea},
		{"lac", tm.LAC}, {"total", tm.Total},
	} {
		if s.d < 0 {
			t.Fatalf("stage %s has negative duration %v", s.name, s.d)
		}
	}
	if tm.Total <= 0 {
		t.Fatalf("total duration %v", tm.Total)
	}
	stages := tm.Partition + tm.Floorplan + tm.TileGrid + tm.Route +
		tm.Repeaters + tm.Periods + tm.Constraints + tm.MinArea + tm.LAC
	if stages > tm.Total {
		t.Fatalf("stage sum %v exceeds total %v", stages, tm.Total)
	}
	if tm.MinArea != res.MinAreaTime || tm.LAC != res.LACTime {
		t.Fatal("Timings aggregates disagree with the legacy fields")
	}
	if len(tm.LACRounds) != res.LAC.NWR {
		t.Fatalf("%d LAC round timings for NWR=%d", len(tm.LACRounds), res.LAC.NWR)
	}
}

func TestTimingsString(t *testing.T) {
	tm := &Timings{
		Partition: time.Millisecond, LAC: 3 * time.Millisecond,
		LACRounds: []time.Duration{time.Millisecond, 2 * time.Millisecond},
		Total:     10 * time.Millisecond,
	}
	out := tm.String()
	for _, want := range []string{"partition", "lac rounds", "2 rounds", "total"} {
		if !strings.Contains(out, want) {
			t.Fatalf("timings report missing %q:\n%s", want, out)
		}
	}
}
