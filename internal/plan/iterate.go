package plan

import (
	"context"
	"fmt"

	"lacret/internal/netlist"
	"lacret/internal/obs"
)

// Iteration is one planning pass plus its outcome; Err is non-nil when the
// pass failed (e.g. the carried-over Tclk became infeasible after
// expansion — the paper's s1269 case).
type Iteration struct {
	Result *Result
	Err    error
}

// ExpandedConfig derives the configuration for the next planning iteration
// from a violating result: soft blocks owning over-capacity tiles are
// grown proportionally to their overflow (the paper: "we expand those
// congested soft blocks and channel"), the channel budget grows via
// whitespace, and the target period is carried over unchanged.
func ExpandedConfig(cfg Config, res *Result) Config {
	next := cfg
	next.TclkOverride = res.Tclk
	scale := make([]float64, res.NumBlocks)
	for b := range scale {
		scale[b] = 1
		if cfg.BlockScale != nil && b < len(cfg.BlockScale) {
			scale[b] = cfg.BlockScale[b]
		}
	}
	grewChannel := false
	for _, t := range res.LAC.Violated {
		need := float64(res.LAC.TileFF[t]) * res.Problem.FFArea
		cap := res.Problem.Cap[t]
		factor := 1.25
		if cap > 0 {
			factor = need / cap
			if factor < 1.1 {
				factor = 1.1
			}
			if factor > 2 {
				factor = 2
			}
		}
		if b := softBlockOfTile(res, t); b >= 0 {
			if f := scale[b] * factor; f > scale[b] {
				scale[b] = f
			}
		} else if !grewChannel {
			// Free-cell violation: grow the global whitespace once.
			next.Whitespace = cfg.Whitespace * 1.25
			if next.Whitespace == 0 {
				next.Whitespace = 0.2
			}
			grewChannel = true
		}
	}
	next.BlockScale = scale
	return next
}

// softBlockOfTile maps a capacity tile back to its soft block, or -1.
func softBlockOfTile(res *Result, t int) int {
	for b, st := range res.Grid.SoftTile {
		if st == t {
			return b
		}
	}
	return -1
}

// PlanIterations runs up to maxIters planning passes, expanding the
// floorplan between passes while LAC violations remain (the paper runs two
// passes). The first pass derives Tclk from Tinit/Tmin; later passes keep
// it fixed. Iterations stop early once violations reach zero or a pass
// fails.
//
// Iteration ≥ 2 re-enters the pipeline at the floorplan stage, reusing the
// first pass's collapsed netlist and partition (ExpandedConfig only
// rescales block footprints, which the partition never reads); the skipped
// partition stage appears as a Skipped event in that pass's trace.
func PlanIterations(nl *netlist.Netlist, cfg Config, maxIters int) ([]Iteration, error) {
	return PlanIterationsContext(context.Background(), nl, cfg, maxIters)
}

// PlanIterationsContext is PlanIterations under a context: each pass runs
// with it (hard stop at stage boundaries), and it is re-checked between
// passes, so cancellation stops the expansion loop but keeps every finished
// iteration. A pass aborted mid-pipeline reports its partial Result
// alongside Iteration.Err — the best-so-far trace for the caller to print.
func PlanIterationsContext(ctx context.Context, nl *netlist.Netlist, cfg Config, maxIters int) ([]Iteration, error) {
	if maxIters < 1 {
		return nil, fmt.Errorf("plan: maxIters must be >= 1")
	}
	gPass := obs.FromContext(ctx).Registry().Gauge("plan.pass")
	var iters []Iteration
	var prev *PlanState
	for i := 0; i < maxIters; i++ {
		if i > 0 {
			if cerr := ctx.Err(); cerr != nil {
				break
			}
		}
		gPass.Set(float64(i + 1))
		res, st, err := planPass(ctx, nl, cfg, prev)
		iters = append(iters, Iteration{Result: res, Err: err})
		if err != nil || res.LAC.NFOA == 0 || i+1 >= maxIters {
			break
		}
		prev = st
		cfg = ExpandedConfig(cfg, res)
	}
	return iters, nil
}

// planPass runs one pipeline pass, adopting the partition of prev when
// given. It returns the completed state so the next pass can reuse it. A
// failed pass still returns the partial Result built before the failure
// (nil only when the state could not even be constructed).
func planPass(ctx context.Context, nl *netlist.Netlist, cfg Config, prev *PlanState) (*Result, *PlanState, error) {
	st, err := NewState(nl, &cfg)
	if err != nil {
		return nil, nil, err
	}
	if prev != nil {
		// Expansion passes reuse live in-memory state and run under a
		// derived config; their artifacts are never snapshotted (a crash
		// mid-expansion resumes from the first pass's final checkpoint and
		// replays the deterministic expansion passes from scratch).
		cfg.Checkpoint = nil
		if err := st.ReusePartition(prev); err != nil {
			return nil, nil, err
		}
	} else {
		st.applyResume(&cfg)
	}
	if err := st.RunContext(ctx, DefaultStages(), &cfg); err != nil {
		return st.Result, nil, err
	}
	return st.Result, st, nil
}
