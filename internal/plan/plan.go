// Package plan implements the paper's interconnect-planning flow end to
// end (Figure 1): partition the RT-level netlist into soft blocks,
// floorplan them with a sequence-pair annealer, build the tile graph,
// globally route the inter-block connections, insert repeaters under the
// Lmax constraint, construct the retiming graph with interconnect units,
// derive Tinit / Tmin / Tclk, and run both plain minimum-area retiming and
// LAC-retiming for comparison. A floorplan-expansion step supports the
// paper's second planning iteration.
package plan

import (
	"fmt"
	"math"
	"sort"
	"time"

	"lacret/internal/core"
	"lacret/internal/floorplan"
	"lacret/internal/netlist"
	"lacret/internal/partition"
	"lacret/internal/repeater"
	"lacret/internal/retime"
	"lacret/internal/route"
	"lacret/internal/steiner"
	"lacret/internal/tech"
	"lacret/internal/tile"
)

// Config tunes the planning flow. The zero value selects sensible defaults
// everywhere (tech.Default, automatic block count, 20% slack, etc.).
type Config struct {
	// Tech supplies process parameters; zero value selects tech.Default.
	Tech tech.Tech
	// Blocks is the number of soft blocks to partition into (0 = auto).
	Blocks int
	// BalanceTol is the per-bisection area balance tolerance (default 0.1).
	BalanceTol float64
	// Whitespace inflates block footprints; it is the budget for
	// repeaters and relocated flip-flops inside blocks (default 0.15).
	Whitespace float64
	// BlockScale optionally scales individual block areas (floorplan
	// expansion between planning iterations); nil = all 1.0.
	BlockScale []float64
	// HardBlocks lists block indices to treat as hard macros: fixed
	// square footprint, closed to insertion except for pre-located
	// repeater/flip-flop sites of HardSiteArea per tile (paper §2, §4).
	HardBlocks []int
	// HardSiteArea is the insertion-site area per hard-block tile (um^2).
	HardSiteArea float64
	// FloorplanMoves bounds the annealing effort (default 20000).
	FloorplanMoves int
	// ChannelWidth is the routing-channel spacing between blocks (um);
	// channels carry routed wires and host repeaters and relocated
	// flip-flops (default: 0.8 * sqrt(UnitArea)).
	ChannelWidth float64
	// Tile tunes grid construction.
	Tile tile.Params
	// RouteCapacity is the per-boundary routing capacity (default 16).
	RouteCapacity float64
	// TclkSlack positions the target period between Tmin and Tinit:
	// Tclk = Tmin + TclkSlack*(Tinit-Tmin) (default 0.2, the paper's
	// choice).
	TclkSlack float64
	// TclkOverride, when positive, fixes Tclk directly (used by the
	// second planning iteration, which must keep the same target).
	TclkOverride float64
	// LAC tunes the adaptive loop.
	LAC core.Options
	// Seed drives all randomized substeps.
	Seed int64
}

// ErrTclkInfeasible is returned when the (overridden) target period cannot
// be met — the paper hits this on s1269 after floorplan expansion.
type ErrTclkInfeasible struct {
	Tclk, Tmin float64
}

func (e ErrTclkInfeasible) Error() string {
	return fmt.Sprintf("plan: target period %g infeasible (Tmin %g)", e.Tclk, e.Tmin)
}

// Result is the complete planning outcome for one circuit.
type Result struct {
	Name  string
	Stats netlist.Stats
	// Netlist is the planned netlist (with technology-assigned delays).
	Netlist *netlist.Netlist

	NumBlocks int
	// BlockOf maps non-input netlist nodes to blocks.
	BlockOf map[netlist.NodeID]int

	Placement *floorplan.Placement
	Grid      *tile.Grid

	// Routing summary.
	RouteWirelength float64
	// SteinerEstimate is the pre-routing total rectilinear Steiner length
	// of the inter-block nets (um).
	SteinerEstimate float64
	RouteOverflow   int
	RepeaterCount   int
	WireUnits       int
	InterBlockNets  int
	// Routes holds the routed trees of the inter-block nets (tile-cell
	// parent maps), for rendering and inspection.
	Routes []route.Tree

	Graph   *retime.Graph
	Problem *core.Problem

	Tinit, Tmin, Tclk float64

	MinArea *core.Result
	LAC     *core.Result
	// NFN: flip-flops inside interconnects (wire-unit tails).
	MinAreaNFN, LACNFN int

	MinAreaTime, LACTime, PrepTime time.Duration

	// Timings breaks the pass down per stage (see Timings); MinAreaTime,
	// LACTime, and PrepTime are retained as coarse aggregates.
	Timings Timings
}

// DecreasePct returns the percentage decrease of N_FOA from min-area to
// LAC (the last column of Table 1); 100 when min-area has violations and
// LAC removed all, 0 when neither has any.
func (r *Result) DecreasePct() float64 {
	if r.MinArea.NFOA == 0 {
		return 0
	}
	return 100 * float64(r.MinArea.NFOA-r.LAC.NFOA) / float64(r.MinArea.NFOA)
}

// CountInterconnectFFs counts registers sitting on out-edges of
// interconnect units — the paper's N_FN.
func CountInterconnectFFs(g *retime.Graph) int {
	n := 0
	tails := g.RegistersPerEdgeTail()
	for v, c := range tails {
		if g.Kind(v) == retime.KindWire {
			n += c
		}
	}
	return n
}

// Plan runs the full interconnect-planning flow on a netlist. The netlist
// must validate; gates with zero delay/area get the technology defaults.
func Plan(nl *netlist.Netlist, cfg Config) (*Result, error) {
	start := time.Now()
	if err := nl.Validate(); err != nil {
		return nil, err
	}
	tc := cfg.Tech
	if tc == (tech.Tech{}) {
		tc = tech.Default()
	}
	if err := tc.Validate(); err != nil {
		return nil, err
	}
	assignDefaults(nl, tc)
	stats := nl.Stats()
	if stats.Gates == 0 {
		return nil, fmt.Errorf("plan: netlist %s has no gates", nl.Name)
	}
	if cfg.TclkSlack == 0 {
		cfg.TclkSlack = 0.2
	}
	if cfg.TclkSlack < 0 || cfg.TclkSlack > 1 {
		return nil, fmt.Errorf("plan: TclkSlack %g outside [0,1]", cfg.TclkSlack)
	}
	if cfg.Whitespace == 0 {
		cfg.Whitespace = 0.15
	}
	if cfg.BalanceTol == 0 {
		cfg.BalanceTol = 0.1
	}

	col, err := nl.Collapse()
	if err != nil {
		return nil, err
	}

	var tm Timings
	clock := newStageClock()

	// --- Partition ---------------------------------------------------
	nBlocks := cfg.Blocks
	if nBlocks <= 0 {
		nBlocks = autoBlocks(stats.Gates)
	}
	blockOf, err := partitionNetlist(nl, nBlocks, cfg.BalanceTol, cfg.Seed)
	if err != nil {
		return nil, err
	}
	clock.Mark(&tm.Partition)

	// --- Floorplan ----------------------------------------------------
	gateArea := make([]float64, nBlocks) // functional-unit area per block
	ffArea := make([]float64, nBlocks)   // original flip-flop area per block
	for id, b := range blockOf {
		node := nl.Node(id)
		switch node.Kind {
		case netlist.KindGate:
			gateArea[b] += node.Area
		case netlist.KindDFF:
			ffArea[b] += tc.FFArea
		}
	}
	hardSet := map[int]bool{}
	for _, b := range cfg.HardBlocks {
		if b < 0 || b >= nBlocks {
			return nil, fmt.Errorf("plan: hard block index %d outside [0,%d)", b, nBlocks)
		}
		hardSet[b] = true
	}
	if cfg.HardSiteArea < 0 {
		return nil, fmt.Errorf("plan: negative HardSiteArea")
	}
	blocks := make([]floorplan.Block, nBlocks)
	for b := 0; b < nBlocks; b++ {
		scale := 1.0
		if cfg.BlockScale != nil {
			if len(cfg.BlockScale) != nBlocks {
				return nil, fmt.Errorf("plan: BlockScale has %d entries for %d blocks", len(cfg.BlockScale), nBlocks)
			}
			scale = cfg.BlockScale[b]
		}
		area := (gateArea[b] + ffArea[b]) * scale
		if area <= 0 {
			area = tc.UnitArea // empty block guard
		}
		blocks[b] = floorplan.Block{Name: fmt.Sprintf("blk%d", b), Area: area}
		if hardSet[b] {
			side := math.Sqrt(area * (1 + cfg.Whitespace))
			blocks[b].Hard = true
			blocks[b].W, blocks[b].H = side, side
		}
	}
	channel := cfg.ChannelWidth
	if channel == 0 {
		channel = 0.8 * math.Sqrt(tc.UnitArea)
	}
	fpNets := blockNets(nl, col, blockOf, nBlocks)
	pl, err := floorplan.Place(blocks, fpNets, floorplan.Options{
		Seed: cfg.Seed, Moves: cfg.FloorplanMoves, Whitespace: cfg.Whitespace,
		Channel: channel,
	})
	if err != nil {
		return nil, err
	}
	clock.Mark(&tm.Floorplan)

	// --- Tile grid -----------------------------------------------------
	hard := make([]bool, nBlocks)
	for b := range hard {
		hard[b] = hardSet[b]
	}
	tp := cfg.Tile
	if tp.HardSiteArea == 0 {
		tp.HardSiteArea = cfg.HardSiteArea
	}
	g, err := tile.Build(pl, hard, gateArea, tp)
	if err != nil {
		return nil, err
	}
	if g.Rows < 2 || g.Cols < 2 {
		return nil, fmt.Errorf("plan: tile grid %dx%d too small (pads need a 2x2 boundary)", g.Rows, g.Cols)
	}
	clock.Mark(&tm.TileGrid)

	// --- Pads and unit cells -------------------------------------------
	padOfInput, padOfOutput := assignPads(nl, g)
	cellOfUnit := make(map[netlist.NodeID]int, len(col.Units))
	for _, id := range col.Units {
		if nl.Node(id).Kind == netlist.KindInput {
			cellOfUnit[id] = padOfInput[id]
			continue
		}
		b := blockOf[id]
		cx, cy := pl.Center(b)
		cellOfUnit[id] = g.CellAt(cx, cy)
	}

	// --- Deduplicate connections ---------------------------------------
	type conn struct {
		from, to netlist.NodeID
		w        int
		sinkCell int
		toOutput bool // "to" is a primary-output marker
	}
	seen := map[[2]int64]bool{}
	var conns []conn
	for _, e := range col.Edges {
		k := [2]int64{int64(e.From), int64(e.To)}
		if seen[k] {
			continue
		}
		seen[k] = true
		conns = append(conns, conn{from: e.From, to: e.To, w: e.W, sinkCell: cellOfUnit[e.To]})
	}
	for _, o := range col.OutputUnits {
		conns = append(conns, conn{
			from: o.Driver, to: o.Output, w: o.W,
			sinkCell: padOfOutput[o.Output], toOutput: true,
		})
	}

	// --- Global routing -------------------------------------------------
	netOfUnit := map[netlist.NodeID]int{}
	var rnets []route.Net
	for _, c := range conns {
		src := cellOfUnit[c.from]
		if src == c.sinkCell {
			continue
		}
		ni, ok := netOfUnit[c.from]
		if !ok {
			ni = len(rnets)
			netOfUnit[c.from] = ni
			rnets = append(rnets, route.Net{ID: ni, Source: src})
		}
		rnets[ni].Sinks = append(rnets[ni].Sinks, c.sinkCell)
	}
	// Route long nets first: order by rectilinear Steiner estimate
	// (descending), so multi-millimetre nets get clean embeddings before
	// congestion builds up. The estimate is also reported for comparison
	// against the routed wirelength.
	var steinerTotal float64
	estimate := make([]float64, len(rnets))
	for i, rn := range rnets {
		pts := make([]steiner.Point, 0, len(rn.Sinks)+1)
		cx, cy := g.CellCenter(rn.Source)
		pts = append(pts, steiner.Point{X: cx, Y: cy})
		for _, s := range rn.Sinks {
			sx, sy := g.CellCenter(s)
			pts = append(pts, steiner.Point{X: sx, Y: sy})
		}
		st, serr := steiner.Build(pts)
		if serr != nil {
			return nil, serr
		}
		estimate[i] = st.Length()
		steinerTotal += st.Length()
	}
	order := make([]int, len(rnets))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return estimate[order[a]] > estimate[order[b]] })
	ordered := make([]route.Net, len(rnets))
	newIndex := make([]int, len(rnets))
	for pos, old := range order {
		ordered[pos] = rnets[old]
		newIndex[old] = pos
	}
	for u, ni := range netOfUnit {
		netOfUnit[u] = newIndex[ni]
	}
	rres, err := route.Route(g, ordered, route.Options{Capacity: cfg.RouteCapacity})
	if err != nil {
		return nil, err
	}
	clock.Mark(&tm.Route)

	// --- Retiming graph with interconnect units -------------------------
	rg := retime.NewGraph()
	tileOf := make([]int, 0, 2*len(col.Units))
	vertexOf := make(map[netlist.NodeID]int, len(col.Units))
	addVertex := func(name string, kind retime.VertexKind, delay float64, tl int) int {
		v := rg.AddVertex(name, kind, delay)
		tileOf = append(tileOf, tl)
		return v
	}
	for _, id := range col.Units {
		node := nl.Node(id)
		switch node.Kind {
		case netlist.KindInput:
			v := addVertex(node.Name, retime.KindPort, 0, g.CapTile(padOfInput[id]))
			rg.SetOrigin(v, id)
			vertexOf[id] = v
		case netlist.KindGate:
			v := addVertex(node.Name, retime.KindUnit, node.Delay, g.BlockTile(blockOf[id], pl))
			rg.SetOrigin(v, id)
			vertexOf[id] = v
		}
	}
	res := &Result{
		Name: nl.Name, Stats: stats, Netlist: nl, NumBlocks: nBlocks, BlockOf: blockOf,
		Placement: pl, Grid: g,
		RouteWirelength: rres.Wirelength, RouteOverflow: rres.Overflow,
		InterBlockNets: len(rnets), SteinerEstimate: steinerTotal,
		Routes: rres.Trees,
	}
	ropt := repeater.Options{Reserve: true}
	for _, c := range conns {
		fromV := vertexOf[c.from]
		var toV int
		if c.toOutput {
			toV = addVertex("po:"+nl.Node(c.to).Name, retime.KindPort, 0, g.CapTile(c.sinkCell))
			rg.SetOrigin(toV, c.to)
		} else {
			toV = vertexOf[c.to]
		}
		srcCell := cellOfUnit[c.from]
		if srcCell == c.sinkCell {
			rg.AddEdge(fromV, toV, c.w)
			continue
		}
		tr := &rres.Trees[netOfUnit[c.from]]
		plan, err := repeater.PlanConnection(g, tc, tr, c.sinkCell, ropt)
		if err != nil {
			return nil, fmt.Errorf("plan: repeater insertion for %s→%s: %v",
				nl.Node(c.from).Name, nl.Node(c.to).Name, err)
		}
		res.RepeaterCount += plan.Repeaters
		prev := fromV
		w := c.w
		for si, seg := range plan.Segments {
			wu := addVertex(fmt.Sprintf("w:%s#%d", nl.Node(c.from).Name, si),
				retime.KindWire, seg.Delay, g.CapTile(seg.EndCell))
			rg.AddEdge(prev, wu, w)
			w = 0
			prev = wu
			res.WireUnits++
		}
		rg.AddEdge(prev, toV, w)
	}
	if err := rg.Validate(); err != nil {
		return nil, fmt.Errorf("plan: retiming graph invalid: %v", err)
	}
	res.Graph = rg
	clock.Mark(&tm.Repeaters)

	// --- Periods ---------------------------------------------------------
	tinit, err := rg.Period()
	if err != nil {
		return nil, err
	}
	wd := rg.WDMatrices()
	tmin, _, err := rg.MinPeriodWD(1e-3, wd)
	if err != nil {
		return nil, err
	}
	res.Tinit, res.Tmin = tinit, tmin
	if cfg.TclkOverride > 0 {
		res.Tclk = cfg.TclkOverride
	} else {
		res.Tclk = tmin + cfg.TclkSlack*(tinit-tmin)
	}
	clock.Mark(&tm.Periods)

	cs, err := rg.BuildConstraintsWD(res.Tclk, wd)
	if err != nil {
		return nil, ErrTclkInfeasible{Tclk: res.Tclk, Tmin: tmin}
	}
	if _, ok := cs.Feasible(rg); !ok {
		return nil, ErrTclkInfeasible{Tclk: res.Tclk, Tmin: tmin}
	}
	clock.Mark(&tm.Constraints)

	// --- Capacities and LAC problem ---------------------------------------
	caps := make([]float64, g.NumTiles())
	for t := range caps {
		caps[t] = math.Max(0, g.Free(t))
	}
	res.Problem = &core.Problem{
		Graph: rg, Tclk: res.Tclk,
		TileOf: tileOf, Cap: caps, FFArea: tc.FFArea,
		Constraints: cs,
	}
	res.PrepTime = time.Since(start)

	t0 := time.Now()
	res.MinArea, err = res.Problem.MinAreaBaseline()
	if err != nil {
		return nil, err
	}
	res.MinAreaTime = time.Since(t0)
	res.MinAreaNFN = CountInterconnectFFs(res.MinArea.Retimed)

	t0 = time.Now()
	res.LAC, err = res.Problem.Solve(cfg.LAC)
	if err != nil {
		return nil, err
	}
	res.LACTime = time.Since(t0)
	res.LACNFN = CountInterconnectFFs(res.LAC.Retimed)

	tm.MinArea, tm.LAC = res.MinAreaTime, res.LACTime
	for _, it := range res.LAC.Iters {
		tm.LACRounds = append(tm.LACRounds, it.Duration)
	}
	tm.Total = time.Since(start)
	res.Timings = tm
	return res, nil
}

// assignDefaults fills zero gate delays/areas from the technology.
func assignDefaults(nl *netlist.Netlist, tc tech.Tech) {
	for i := range nl.Nodes {
		n := &nl.Nodes[i]
		if n.Kind != netlist.KindGate {
			continue
		}
		if n.Delay == 0 {
			n.Delay = tc.UnitDelay
		}
		if n.Area == 0 {
			n.Area = tc.UnitArea
		}
	}
}

// autoBlocks picks a block count from the gate count.
func autoBlocks(gates int) int {
	b := gates / 60
	if b < 4 {
		b = 4
	}
	if b > 16 {
		b = 16
	}
	return b
}

// partitionNetlist splits the non-input nodes into blocks.
func partitionNetlist(nl *netlist.Netlist, k int, tol float64, seed int64) (map[netlist.NodeID]int, error) {
	var cells []netlist.NodeID
	cellIdx := map[netlist.NodeID]int{}
	var areas []float64
	for id := range nl.Nodes {
		node := nl.Node(netlist.NodeID(id))
		if node.Kind == netlist.KindInput {
			continue
		}
		cellIdx[netlist.NodeID(id)] = len(cells)
		cells = append(cells, netlist.NodeID(id))
		a := node.Area
		if a == 0 {
			a = 1
		}
		areas = append(areas, a)
	}
	h := &partition.Hypergraph{Area: areas}
	fo := nl.Fanouts()
	for id := range nl.Nodes {
		var pins []int
		if i, ok := cellIdx[netlist.NodeID(id)]; ok {
			pins = append(pins, i)
		}
		for _, f := range fo[id] {
			if i, ok := cellIdx[f]; ok {
				pins = append(pins, i)
			}
		}
		if len(pins) >= 2 {
			h.Nets = append(h.Nets, pins)
		}
	}
	h.Normalize()
	if k > len(cells) {
		k = len(cells)
		if k == 0 {
			return nil, fmt.Errorf("plan: nothing to partition")
		}
	}
	parts, err := partition.KWay(h, k, tol, seed)
	if err != nil {
		return nil, err
	}
	blockOf := make(map[netlist.NodeID]int, len(cells))
	for i, id := range cells {
		blockOf[id] = parts[i]
	}
	return blockOf, nil
}

// blockNets extracts block-level 2-pin nets for floorplanning.
func blockNets(nl *netlist.Netlist, col *netlist.Collapsed, blockOf map[netlist.NodeID]int, nBlocks int) []floorplan.Net {
	seen := map[[2]int]bool{}
	var nets []floorplan.Net
	add := func(a, b int) {
		if a == b {
			return
		}
		if a > b {
			a, b = b, a
		}
		if !seen[[2]int{a, b}] {
			seen[[2]int{a, b}] = true
			nets = append(nets, floorplan.Net{a, b})
		}
	}
	for _, e := range col.Edges {
		ba, okA := blockOf[e.From]
		bb, okB := blockOf[e.To]
		if okA && okB {
			add(ba, bb)
		}
	}
	return nets
}

// assignPads distributes primary inputs and outputs over the grid's
// boundary cells (inputs from the top-left going clockwise, outputs offset
// half a perimeter for separation).
func assignPads(nl *netlist.Netlist, g *tile.Grid) (map[netlist.NodeID]int, map[netlist.NodeID]int) {
	boundary := boundaryCells(g)
	ins := nl.InputIDs()
	outs := append([]netlist.NodeID(nil), nl.Outputs...)
	padIn := make(map[netlist.NodeID]int, len(ins))
	padOut := make(map[netlist.NodeID]int, len(outs))
	for i, id := range ins {
		padIn[id] = boundary[(i*len(boundary))/(len(ins)+len(outs))]
	}
	off := len(boundary) / 2
	for i, id := range outs {
		padOut[id] = boundary[(off+(i*len(boundary))/(len(ins)+len(outs)))%len(boundary)]
	}
	return padIn, padOut
}

// boundaryCells lists the grid's perimeter cells clockwise from (0,0).
func boundaryCells(g *tile.Grid) []int {
	var cells []int
	r, c := 0, 0
	for ; c < g.Cols; c++ {
		cells = append(cells, r*g.Cols+c)
	}
	c = g.Cols - 1
	for r = 1; r < g.Rows; r++ {
		cells = append(cells, r*g.Cols+c)
	}
	r = g.Rows - 1
	for c = g.Cols - 2; c >= 0; c-- {
		cells = append(cells, r*g.Cols+c)
	}
	c = 0
	for r = g.Rows - 2; r >= 1; r-- {
		cells = append(cells, r*g.Cols+c)
	}
	return cells
}
