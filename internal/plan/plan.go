// Package plan implements the paper's interconnect-planning flow end to
// end (Figure 1) as a staged pipeline: partition the RT-level netlist into
// soft blocks, floorplan them with a sequence-pair annealer, build the
// tile graph, globally route the inter-block connections, insert repeaters
// under the Lmax constraint, construct the retiming graph with
// interconnect units, derive Tinit / Tmin / Tclk, and run both plain
// minimum-area retiming and LAC-retiming for comparison.
//
// Each step is a Stage operating on a shared PlanState, so the flow can be
// instrumented per stage (Config.Trace), verified between stages
// (internal/check.VerifyState), and re-entered midway: the floorplan
// expansion of a second planning iteration reuses the first pass's
// partition (PlanState.ReusePartition), since expansion only rescales
// block footprints.
package plan

import (
	"context"
	"fmt"
	"time"

	"lacret/internal/core"
	"lacret/internal/floorplan"
	"lacret/internal/netlist"
	"lacret/internal/retime"
	"lacret/internal/route"
	"lacret/internal/tech"
	"lacret/internal/tile"
)

// Config tunes the planning flow. The zero value selects sensible defaults
// everywhere (tech.Default, automatic block count, 20% slack, etc.).
type Config struct {
	// Tech supplies process parameters; zero value selects tech.Default.
	Tech tech.Tech
	// Blocks is the number of soft blocks to partition into (0 = auto).
	Blocks int
	// BalanceTol is the per-bisection area balance tolerance (default 0.1).
	BalanceTol float64
	// Whitespace inflates block footprints; it is the budget for
	// repeaters and relocated flip-flops inside blocks (default 0.15).
	Whitespace float64
	// BlockScale optionally scales individual block areas (floorplan
	// expansion between planning iterations); nil = all 1.0.
	BlockScale []float64
	// HardBlocks lists block indices to treat as hard macros: fixed
	// square footprint, closed to insertion except for pre-located
	// repeater/flip-flop sites of HardSiteArea per tile (paper §2, §4).
	HardBlocks []int
	// HardSiteArea is the insertion-site area per hard-block tile (um^2).
	HardSiteArea float64
	// FloorplanMoves bounds the annealing effort (default 20000).
	FloorplanMoves int
	// ChannelWidth is the routing-channel spacing between blocks (um);
	// channels carry routed wires and host repeaters and relocated
	// flip-flops (default: 0.8 * sqrt(UnitArea)).
	ChannelWidth float64
	// Tile tunes grid construction.
	Tile tile.Params
	// RouteCapacity is the per-boundary routing capacity (default 16).
	RouteCapacity float64
	// TclkSlack positions the target period between Tmin and Tinit:
	// Tclk = Tmin + TclkSlack*(Tinit-Tmin) (default 0.2, the paper's
	// choice).
	TclkSlack float64
	// TclkOverride, when positive, fixes Tclk directly (used by the
	// second planning iteration, which must keep the same target).
	TclkOverride float64
	// LAC tunes the adaptive loop.
	LAC core.Options
	// ProbeEngine selects the constraint engine behind the period search
	// and constraint generation: ProbeEngineDense materializes the O(V²)
	// W/D matrices (the classical path), ProbeEngineLazy runs per-source
	// sweeps on demand with O(V)-per-worker memory, and ProbeEngineAuto
	// (or empty) picks by vertex count (LazyEngineThreshold). Results are
	// bit-identical across engines.
	ProbeEngine string
	// Budget bounds the wall-clock time of one planning pass; the zero
	// value disables budgeting entirely (bit-identical to pre-budget
	// behavior). See Budget.
	Budget Budget
	// Seed drives all randomized substeps.
	Seed int64
	// Trace, when non-nil, receives one StageEvent per pipeline stage as
	// it completes (stage name, wall time, key counters). The same events
	// accumulate on Result.Trace.
	Trace func(StageEvent)
	// Checkpoint, when non-nil, receives a serialized snapshot of the
	// pipeline state after each checkpointable stage commits (the stage
	// name plus self-contained versioned bytes; see PlanState.Checkpoint).
	// A later run of the same netlist and configuration can resume from
	// the last snapshot through Resume. Snapshot encoding failures are
	// counted on the context's obs registry (plan.checkpoint_errors), not
	// surfaced as pipeline errors — checkpointing is an overlay, never a
	// reason to fail a plan.
	Checkpoint func(stage string, data []byte)
	// Resume, when non-empty, is a snapshot produced by a previous run's
	// Checkpoint hook for the same netlist and configuration. The first
	// planning pass restores it and skips the covered stages (their trace
	// events are flagged Skipped, Result.Resumed names the restored
	// boundary). An incompatible or corrupt snapshot is ignored — the pass
	// plans from scratch and Result.ResumeRejected records why.
	Resume []byte
}

// Budget is the soft wall-clock limit of one planning pass. When Wall is
// positive, the anytime stages — the period binary search, the router's
// rip-up loop, and the LAC reweighting loop — each run under a deadline
// derived from it and return their best-so-far result when it fires, so a
// budgeted pass still produces a complete (possibly degraded) plan. The
// non-anytime stages always run to completion; a pass can therefore exceed
// Wall by the non-anytime work plus at most one in-flight probe/round per
// anytime stage.
type Budget struct {
	// Wall is the overall wall-clock budget for the pass (0 = unbounded).
	Wall time.Duration
	// Weights optionally splits the budget across the anytime stages by
	// stage name ("periods", "route", "lac"): each weighted stage gets its
	// proportional share of the time remaining when it starts, measured
	// against the weighted anytime stages still to run. Unweighted (or
	// absent) stages simply run until the overall deadline.
	Weights map[string]float64
}

// ErrTclkInfeasible is returned when the (overridden) target period cannot
// be met — the paper hits this on s1269 after floorplan expansion.
type ErrTclkInfeasible struct {
	Tclk, Tmin float64
}

func (e ErrTclkInfeasible) Error() string {
	return fmt.Sprintf("plan: target period %g infeasible (Tmin %g)", e.Tclk, e.Tmin)
}

// Result is the complete planning outcome for one circuit.
type Result struct {
	Name  string
	Stats netlist.Stats
	// Netlist is the planned netlist (with technology-assigned delays).
	Netlist *netlist.Netlist

	NumBlocks int
	// BlockOf maps non-input netlist nodes to blocks.
	BlockOf map[netlist.NodeID]int

	Placement *floorplan.Placement
	Grid      *tile.Grid

	// Routing summary.
	RouteWirelength float64
	// SteinerEstimate is the pre-routing total rectilinear Steiner length
	// of the inter-block nets (um).
	SteinerEstimate float64
	RouteOverflow   int
	RepeaterCount   int
	WireUnits       int
	InterBlockNets  int
	// Routes holds the routed trees of the inter-block nets (tile-cell
	// parent maps), for rendering and inspection.
	Routes []route.Tree

	Graph   *retime.Graph
	Problem *core.Problem

	Tinit, Tmin, Tclk float64
	// TminLo is set when the period search was truncated by the budget: the
	// largest period proven unachievable, so the true minimum lies in the
	// bracket (TminLo, Tmin] and Tmin is the achievable upper end the pass
	// planned against. Zero when the search ran to convergence.
	TminLo float64
	// Probe is the work profile of the minimum-period search's incremental
	// feasibility solver (warm probes, pairs scanned, witness rejects).
	Probe retime.ProbeStats
	// ProbeEngine is the constraint engine the periods stage actually ran
	// ("dense" or "lazy" — auto is resolved before the stage runs).
	ProbeEngine string
	// ProbeMem is the engine's memory/work accounting at the end of the
	// pass (dense matrix bytes, or the lazy engine's cache and sweep
	// counters).
	ProbeMem retime.SourceMem

	MinArea *core.Result
	LAC     *core.Result
	// NFN: flip-flops inside interconnects (wire-unit tails).
	MinAreaNFN, LACNFN int

	MinAreaTime, LACTime, PrepTime time.Duration

	// Timings breaks the pass down per stage (see Timings); MinAreaTime,
	// LACTime, and PrepTime are retained as coarse aggregates.
	Timings Timings

	// Trace lists the pipeline's stage events in execution order (the
	// same events Config.Trace streams), including Skipped entries for
	// stages satisfied by reused state on planning iteration ≥ 2.
	Trace []StageEvent

	// Resumed names the checkpoint boundary this pass restored through
	// Config.Resume (empty for a from-scratch pass); the covered stages
	// were skipped, not re-run.
	Resumed string
	// ResumeRejected records why a Config.Resume snapshot was refused
	// (version/netlist/seed mismatch, corrupt bytes); the pass then ran
	// from scratch.
	ResumeRejected string
}

// TruncatedStages lists the stages whose events carry the Truncated flag —
// the anytime stages that degraded at the budget deadline — in execution
// order. Empty on an unbudgeted or within-budget pass.
func (r *Result) TruncatedStages() []string {
	var out []string
	for _, ev := range r.Trace {
		if ev.Truncated {
			out = append(out, ev.Stage)
		}
	}
	return out
}

// DecreasePct returns the percentage decrease of N_FOA from min-area to
// LAC (the last column of Table 1): 100 when min-area has violations and
// LAC removed all, 0 when neither has any. When min-area is clean but LAC
// is not (a regression the percentage cannot express), it returns the
// violation delta negated — -100 per introduced violation — so regressions
// read as negative instead of hiding behind 0.
func (r *Result) DecreasePct() float64 {
	if r.MinArea.NFOA == 0 {
		return -100 * float64(r.LAC.NFOA)
	}
	return 100 * float64(r.MinArea.NFOA-r.LAC.NFOA) / float64(r.MinArea.NFOA)
}

// CountInterconnectFFs counts registers sitting on out-edges of
// interconnect units — the paper's N_FN.
func CountInterconnectFFs(g *retime.Graph) int {
	n := 0
	tails := g.RegistersPerEdgeTail()
	for v, c := range tails {
		if g.Kind(v) == retime.KindWire {
			n += c
		}
	}
	return n
}

// Plan runs the full interconnect-planning flow on a netlist — a thin
// driver over NewState and the default stage list. The netlist must
// validate; gates with zero delay/area get the technology defaults.
func Plan(nl *netlist.Netlist, cfg Config) (*Result, error) {
	return PlanContext(context.Background(), nl, cfg)
}

// PlanContext is Plan under a context (hard stop at stage boundaries and
// stage checkpoints) and the configured soft Budget (anytime degradation);
// see PlanState.RunContext for the two limits' semantics. On a pipeline
// error the partial Result built so far is returned alongside it, so
// callers can report the best-so-far trace and artifacts.
func PlanContext(ctx context.Context, nl *netlist.Netlist, cfg Config) (*Result, error) {
	st, err := NewState(nl, &cfg)
	if err != nil {
		return nil, err
	}
	st.applyResume(&cfg)
	if err := st.RunContext(ctx, DefaultStages(), &cfg); err != nil {
		return st.Result, err
	}
	return st.Result, nil
}

// assignDefaults fills zero gate delays/areas from the technology.
func assignDefaults(nl *netlist.Netlist, tc tech.Tech) {
	for i := range nl.Nodes {
		n := &nl.Nodes[i]
		if n.Kind != netlist.KindGate {
			continue
		}
		if n.Delay == 0 {
			n.Delay = tc.UnitDelay
		}
		if n.Area == 0 {
			n.Area = tc.UnitArea
		}
	}
}
