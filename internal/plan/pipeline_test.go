package plan

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"

	"lacret/internal/bench89"
	"lacret/internal/core"
)

// The stage names of the default pipeline, in order.
var defaultStageNames = []string{
	"partition", "floorplan", "grid", "route", "repeaters",
	"graph", "periods", "constraints", "minarea", "lac",
}

func TestDefaultStagesOrder(t *testing.T) {
	stages := DefaultStages()
	if len(stages) != len(defaultStageNames) {
		t.Fatalf("%d stages, want %d", len(stages), len(defaultStageNames))
	}
	for i, s := range stages {
		if s.Name() != defaultStageNames[i] {
			t.Fatalf("stage %d is %q, want %q", i, s.Name(), defaultStageNames[i])
		}
	}
}

// TestPlanGoldenS400 pins the pipeline to the pre-refactor monolith: these
// values were captured from the single-function plan.Plan at the commit
// before the stage split, on catalog circuit s400 with its catalog seed
// and the Table 1 configuration. Any drift means the pipeline is not a
// pure refactoring.
func TestPlanGoldenS400(t *testing.T) {
	if testing.Short() {
		t.Skip("catalog circuit in short mode")
	}
	p, ok := bench89.ByName("s400")
	if !ok {
		t.Fatal("no s400 in catalog")
	}
	nl, err := bench89.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Plan(nl, Config{
		Seed: p.Seed, Whitespace: 0.13, TclkSlack: 0.2,
		LAC: core.Options{Alpha: 0.2, Nmax: 5, MaxIters: 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	exact := func(name string, got, want float64) {
		if got != want {
			t.Errorf("%s = %.17g, want %.17g (pre-refactor monolith)", name, got, want)
		}
	}
	exact("Tinit", res.Tinit, 10.911687323097958)
	exact("Tmin", res.Tmin, 3.0401092935255556)
	exact("Tclk", res.Tclk, 4.6144248994400368)
	// The pre-refactor monolith summed wirelength in map-iteration order,
	// so its last ulp wandered run to run (…446/…449/…451/…454 observed);
	// the router now counts edges and multiplies once, which lands — and
	// stays — on this value.
	exact("RouteWirelength", res.RouteWirelength, 225501.13820302521)
	exact("SteinerEstimate", res.SteinerEstimate, 215432.45856162327)
	for _, c := range []struct {
		name      string
		got, want int
	}{
		{"MinArea.NFOA", res.MinArea.NFOA, 0},
		{"MinArea.NF", res.MinArea.NF, 235},
		{"LAC.NFOA", res.LAC.NFOA, 0},
		{"LAC.NF", res.LAC.NF, 235},
		{"LAC.NWR", res.LAC.NWR, 1},
		{"RepeaterCount", res.RepeaterCount, 272},
		{"WireUnits", res.WireUnits, 480},
		{"InterBlockNets", res.InterBlockNets, 77},
		{"RouteOverflow", res.RouteOverflow, 0},
		{"Grid.Rows", res.Grid.Rows, 16},
		{"Grid.Cols", res.Grid.Cols, 15},
	} {
		if c.got != c.want {
			t.Errorf("%s = %d, want %d (pre-refactor monolith)", c.name, c.got, c.want)
		}
	}
}

func TestPlanEmitsTraceEvents(t *testing.T) {
	nl := smallCircuit(t)
	var streamed []StageEvent
	res, err := Plan(nl, Config{
		Seed: 1, FloorplanMoves: 2000,
		Trace: func(ev StageEvent) { streamed = append(streamed, ev) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(streamed) != len(defaultStageNames) {
		t.Fatalf("%d streamed events, want %d", len(streamed), len(defaultStageNames))
	}
	if len(res.Trace) != len(defaultStageNames) {
		t.Fatalf("%d result events, want %d", len(res.Trace), len(defaultStageNames))
	}
	counters := map[string]map[string]float64{}
	for i, ev := range res.Trace {
		if ev.Stage != defaultStageNames[i] {
			t.Fatalf("event %d is %q, want %q", i, ev.Stage, defaultStageNames[i])
		}
		if ev.Index != i {
			t.Fatalf("event %s has index %d, want %d", ev.Stage, ev.Index, i)
		}
		if ev.Skipped {
			t.Fatalf("stage %s skipped on a fresh plan", ev.Stage)
		}
		if ev.Wall <= 0 {
			t.Fatalf("stage %s has wall time %v", ev.Stage, ev.Wall)
		}
		if streamed[i].Stage != ev.Stage || streamed[i].Wall != ev.Wall {
			t.Fatalf("streamed event %d diverges from Result.Trace", i)
		}
		counters[ev.Stage] = map[string]float64{}
		for _, c := range ev.Counters {
			counters[ev.Stage][c.Name] = c.Value
		}
	}
	// The issue's key counters: nets routed, overflow, repeaters, wire
	// units, LAC rounds.
	for _, want := range []struct {
		stage, counter string
		value          float64
	}{
		{"route", "nets", float64(res.InterBlockNets)},
		{"route", "overflow", float64(res.RouteOverflow)},
		{"repeaters", "repeaters", float64(res.RepeaterCount)},
		{"graph", "wire_units", float64(res.WireUnits)},
		{"lac", "rounds", float64(res.LAC.NWR)},
		{"partition", "blocks", float64(res.NumBlocks)},
		{"periods", "tclk", res.Tclk},
		{"minarea", "nfoa", float64(res.MinArea.NFOA)},
	} {
		got, ok := counters[want.stage][want.counter]
		if !ok {
			t.Errorf("stage %s missing counter %s", want.stage, want.counter)
		} else if got != want.value {
			t.Errorf("stage %s counter %s = %g, want %g", want.stage, want.counter, got, want.value)
		}
	}
}

// TestPipelineStageByStage drives the stages one at a time through the
// public API and checks the outcome matches the one-shot driver.
func TestPipelineStageByStage(t *testing.T) {
	nl := smallCircuit(t)
	cfg := Config{Seed: 3, FloorplanMoves: 2000}
	st, err := NewState(nl, &cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range DefaultStages() {
		if err := st.Run([]Stage{s}, &cfg); err != nil {
			t.Fatalf("stage %s: %v", s.Name(), err)
		}
	}
	nl2 := smallCircuit(t)
	ref, err := Plan(nl2, Config{Seed: 3, FloorplanMoves: 2000})
	if err != nil {
		t.Fatal(err)
	}
	res := st.Result
	if res.Tinit != ref.Tinit || res.Tmin != ref.Tmin || res.Tclk != ref.Tclk {
		t.Fatalf("stage-by-stage periods diverge: %v vs %v",
			[]float64{res.Tinit, res.Tmin, res.Tclk}, []float64{ref.Tinit, ref.Tmin, ref.Tclk})
	}
	if res.LAC.NFOA != ref.LAC.NFOA || res.LAC.NF != ref.LAC.NF ||
		res.RepeaterCount != ref.RepeaterCount || res.WireUnits != ref.WireUnits {
		t.Fatal("stage-by-stage outcome diverges from the one-shot driver")
	}
}

// TestReusePartitionSkipsStage locks the state-reuse contract: a pass
// seeded from an earlier pass skips partitioning, reports it as a Skipped
// trace event, and still produces the identical result.
func TestReusePartitionSkipsStage(t *testing.T) {
	nl := smallCircuit(t)
	cfg := Config{Seed: 6, FloorplanMoves: 2000, Whitespace: 0.02}
	first, st1, err := planPass(context.Background(), nl, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := ExpandedConfig(cfg, first)

	// Reference: full pipeline at the expanded configuration.
	nlRef := smallCircuit(t)
	ref, err := Plan(nlRef, cfg2)
	if err != nil {
		t.Fatal(err)
	}

	// Reused: re-enter at the floorplan stage.
	reused, _, err := planPass(context.Background(), nl, cfg2, st1)
	if err != nil {
		t.Fatal(err)
	}
	if len(reused.Trace) == 0 || reused.Trace[0].Stage != "partition" || !reused.Trace[0].Skipped {
		t.Fatalf("partition not reported as skipped: %+v", reused.Trace)
	}
	for _, ev := range reused.Trace[1:] {
		if ev.Skipped {
			t.Fatalf("stage %s unexpectedly skipped", ev.Stage)
		}
	}
	if reused.Timings.Partition != 0 {
		t.Fatalf("skipped partition charged %v", reused.Timings.Partition)
	}
	if reused.Tinit != ref.Tinit || reused.Tmin != ref.Tmin || reused.Tclk != ref.Tclk ||
		reused.LAC.NFOA != ref.LAC.NFOA || reused.LAC.NF != ref.LAC.NF ||
		reused.MinArea.NFOA != ref.MinArea.NFOA ||
		reused.RouteWirelength != ref.RouteWirelength ||
		reused.RepeaterCount != ref.RepeaterCount {
		t.Fatal("partition reuse changed the planning outcome")
	}
}

// TestReusePartitionResultCarriesBlocks is a regression test: a pass that
// reuses a partition must still report the block structure on its Result.
// It used to stay zero, so ExpandedConfig on a violating last-iteration
// result indexed a zero-length scale slice and panicked (first seen on
// s5378, the first circuit to end its final pass with violations).
func TestReusePartitionResultCarriesBlocks(t *testing.T) {
	nl := smallCircuit(t)
	cfg := Config{Seed: 6, FloorplanMoves: 2000, Whitespace: 0.02}
	first, st1, err := planPass(context.Background(), nl, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	reused, _, err := planPass(context.Background(), nl, ExpandedConfig(cfg, first), st1)
	if err != nil {
		t.Fatal(err)
	}
	if reused.NumBlocks != first.NumBlocks || reused.NumBlocks == 0 {
		t.Fatalf("reused pass reports %d blocks, first pass %d", reused.NumBlocks, first.NumBlocks)
	}
	if len(reused.BlockOf) != len(first.BlockOf) {
		t.Fatalf("reused pass reports %d block assignments, first pass %d",
			len(reused.BlockOf), len(first.BlockOf))
	}
	// Force a violation in the last soft block's tile and expand again —
	// exactly the path that used to panic.
	b := reused.NumBlocks - 1
	tl := reused.Grid.SoftTile[b]
	reused.LAC.Violated = append(reused.LAC.Violated, tl)
	next := ExpandedConfig(cfg, reused)
	if len(next.BlockScale) != reused.NumBlocks {
		t.Fatalf("BlockScale has %d entries for %d blocks", len(next.BlockScale), reused.NumBlocks)
	}
	if next.BlockScale[b] <= 1 {
		t.Fatalf("violated block %d not grown: scale %g", b, next.BlockScale[b])
	}
}

func TestReusePartitionErrors(t *testing.T) {
	nl := smallCircuit(t)
	cfg := Config{Seed: 1}
	st, err := NewState(nl, &cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.ReusePartition(nil); err == nil {
		t.Fatal("nil previous state accepted")
	}
	if err := st.ReusePartition(&PlanState{}); err == nil {
		t.Fatal("empty previous state accepted")
	}
	other := smallCircuit(t)
	cfgO := Config{Seed: 1}
	prev, err := NewState(other, &cfgO)
	if err != nil {
		t.Fatal(err)
	}
	if err := prev.Run(DefaultStages()[:1], &cfgO); err != nil {
		t.Fatal(err)
	}
	if err := st.ReusePartition(prev); err == nil {
		t.Fatal("partition from a different netlist accepted")
	}
}

func TestPlanIterationsReusePartition(t *testing.T) {
	if testing.Short() {
		t.Skip("iterative planning in short mode")
	}
	nl := smallCircuit(t)
	iters, err := PlanIterations(nl, Config{Seed: 6, FloorplanMoves: 2000, Whitespace: 0.02}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(iters) < 2 {
		t.Skip("no second iteration at this configuration")
	}
	for i, it := range iters {
		if it.Err != nil {
			continue
		}
		skipped := false
		for _, ev := range it.Result.Trace {
			if ev.Stage == "partition" && ev.Skipped {
				skipped = true
			}
		}
		if i == 0 && skipped {
			t.Fatal("first iteration skipped the partition stage")
		}
		if i > 0 && !skipped {
			t.Fatalf("iteration %d did not skip the partition stage", i+1)
		}
	}
}

// TestPlanIterationsInfeasibleSecondPass covers the paper's s1269 case
// through PlanIterations: the first pass succeeds (with violations), the
// expansion carries its Tclk over as TclkOverride, and the expanded
// floorplan's Tmin rises above it — the second pass must fail with
// ErrTclkInfeasible while the iteration list still carries the successful
// first pass. A near-zero slack puts Tclk right at the first pass's Tmin,
// so any Tmin increase after expansion trips the error.
func TestPlanIterationsInfeasibleSecondPass(t *testing.T) {
	nl := smallCircuit(t)
	iters, err := PlanIterations(nl, Config{
		Seed: 1, FloorplanMoves: 2000, Whitespace: 0.02, TclkSlack: 0.01,
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(iters) != 2 {
		t.Fatalf("%d iterations, want 2 (violating first pass, failing second)", len(iters))
	}
	first := iters[0]
	if first.Err != nil {
		t.Fatalf("first pass failed: %v", first.Err)
	}
	if first.Result == nil || first.Result.LAC == nil {
		t.Fatal("first pass result not carried in the iteration list")
	}
	if first.Result.LAC.NFOA == 0 {
		t.Fatal("first pass has no violations; nothing forced the second pass")
	}
	second := iters[1]
	var infeasible ErrTclkInfeasible
	if second.Err == nil || !errors.As(second.Err, &infeasible) {
		t.Fatalf("second pass error = %v, want ErrTclkInfeasible", second.Err)
	}
	if infeasible.Tclk >= infeasible.Tmin {
		t.Fatalf("infeasible with Tclk %g >= Tmin %g", infeasible.Tclk, infeasible.Tmin)
	}
	if infeasible.Tclk != first.Result.Tclk {
		t.Fatalf("second pass targeted %g, first pass's Tclk is %g",
			infeasible.Tclk, first.Result.Tclk)
	}
}

// benchSecondPass times one second-iteration pass (the expanded
// configuration after a violating first pass), with and without adopting
// the first pass's partition. The delta is what state reuse buys.
func benchSecondPass(b *testing.B, reuse bool) {
	nl := smallCircuit(b)
	cfg := Config{Seed: 6, FloorplanMoves: 2000, Whitespace: 0.02}
	first, st1, err := planPass(context.Background(), nl, cfg, nil)
	if err != nil {
		b.Fatal(err)
	}
	cfg2 := ExpandedConfig(cfg, first)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var prev *PlanState
		if reuse {
			prev = st1
		}
		if _, _, err := planPass(context.Background(), nl, cfg2, prev); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIteration2Full(b *testing.B)   { benchSecondPass(b, false) }
func BenchmarkIteration2Reused(b *testing.B) { benchSecondPass(b, true) }

func TestStageEventString(t *testing.T) {
	ev := StageEvent{Stage: "route", Wall: 1500 * 1000, // 1.5ms
		Counters: []Counter{{"nets", 77}, {"wirelength", 225501.138}}}
	s := ev.String()
	for _, want := range []string{"route", "nets=77", "wirelength=225501.138"} {
		if !strings.Contains(s, want) {
			t.Fatalf("event string %q missing %q", s, want)
		}
	}
	skip := StageEvent{Stage: "partition", Skipped: true, Counters: []Counter{{"blocks", 4}}}
	if !strings.Contains(skip.String(), "reused") {
		t.Fatalf("skipped event string %q missing 'reused'", skip.String())
	}
}

func TestDecreasePct(t *testing.T) {
	mk := func(ma, lac int) *Result {
		return &Result{MinArea: &core.Result{NFOA: ma}, LAC: &core.Result{NFOA: lac}}
	}
	for _, c := range []struct {
		ma, lac int
		want    float64
	}{
		{0, 0, 0},    // neither violates
		{10, 0, 100}, // LAC removed all
		{10, 5, 50},  // halved
		{8, 8, 0},    // no change
		{0, 3, -300}, // regression: min-area clean, LAC violates
		{4, 5, -25},  // LAC worse than a violating min-area
	} {
		got := mk(c.ma, c.lac).DecreasePct()
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("DecreasePct(MA=%d, LAC=%d) = %g, want %g", c.ma, c.lac, got, c.want)
		}
	}
}
