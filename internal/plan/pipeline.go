package plan

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"strings"
	"time"

	"lacret/internal/floorplan"
	"lacret/internal/netlist"
	"lacret/internal/obs"
	"lacret/internal/repeater"
	"lacret/internal/retime"
	"lacret/internal/route"
	"lacret/internal/tech"
	"lacret/internal/tile"
)

// Stage is one step of the planning pipeline (Figure 1). Stages read and
// write the shared PlanState; the default stage list (DefaultStages)
// reproduces the paper's flow, and callers may run a custom list — or one
// stage at a time — through PlanState.Run.
type Stage interface {
	// Name identifies the stage in trace events and timing buckets.
	Name() string
	// Run executes the stage against the state. cfg carries the resolved
	// configuration (NewState fills in defaults). ctx carries cancellation
	// plus, for the anytime stages (periods, route, lac), the per-stage
	// budget deadline; stages commit their artifacts to st only as a
	// consistent whole, so an interrupted or failed run leaves a state
	// that still passes check.VerifyState for the completed prefix.
	Run(ctx context.Context, st *PlanState, cfg *Config) error
}

// StageError wraps a failure inside one pipeline stage. The pipeline's
// recover wrapper converts library-internal panics (graph/retime/mcmf/
// steiner input violations) into StageErrors carrying the stage name and
// the panicking goroutine's stack, so a malformed input can never crash a
// caller out of PlanState.Run. Regular stage errors pass through unwrapped.
type StageError struct {
	// Stage is the pipeline stage that failed.
	Stage string
	// Cause is the underlying error (the recovered panic value, wrapped).
	Cause error
	// Stack is the panicking goroutine's stack trace; nil when the error
	// did not come from a panic.
	Stack []byte
}

func (e *StageError) Error() string {
	return fmt.Sprintf("plan: stage %s: %v", e.Stage, e.Cause)
}

func (e *StageError) Unwrap() error { return e.Cause }

// Recovered reports whether this error was converted from a panic.
func (e *StageError) Recovered() bool { return e.Stack != nil }

// CounterReporter is an optional Stage extension: stages implementing it
// attach key counters (nets routed, overflow, repeaters, ...) to their
// trace events.
type CounterReporter interface {
	Counters(st *PlanState) []Counter
}

// Counter is one named trace metric.
type Counter struct {
	Name  string
	Value float64
}

// StageEvent is emitted once per pipeline stage — through Config.Trace as
// stages complete, and accumulated on Result.Trace. Skipped marks stages
// satisfied by state reused from an earlier pass (partition on planning
// iteration ≥ 2); their counters still describe the reused artifacts.
// Truncated marks an anytime stage that hit its budget deadline and
// committed a degraded-but-valid result; Recovered marks a stage whose
// failure was a panic converted to a StageError.
type StageEvent struct {
	Stage    string
	Index    int // position in the executed stage list
	Wall     time.Duration
	Skipped  bool
	Counters []Counter
	// Truncated: the stage returned its best-so-far result at the budget
	// deadline instead of running to convergence.
	Truncated bool
	// Recovered: the stage panicked and the pipeline converted the panic
	// into a StageError (the stage's artifacts were not committed).
	Recovered bool
	// Sub holds the stage's sub-stage spans (period probes, rip-up rounds,
	// LAC rounds, flow solves) when the run's context carried an obs
	// recorder; nil otherwise. The spans are shared with the recorder's
	// tree, not copied.
	Sub []*obs.Span
}

// String renders the event as one aligned trace line.
func (ev StageEvent) String() string {
	var b strings.Builder
	if ev.Skipped {
		fmt.Fprintf(&b, "%-11s %12s", ev.Stage, "reused")
	} else {
		fmt.Fprintf(&b, "%-11s %10.3fms", ev.Stage, float64(ev.Wall.Microseconds())/1000)
	}
	for _, c := range ev.Counters {
		if c.Value == float64(int64(c.Value)) {
			fmt.Fprintf(&b, "  %s=%.0f", c.Name, c.Value)
		} else {
			fmt.Fprintf(&b, "  %s=%.3f", c.Name, c.Value)
		}
	}
	if ev.Truncated {
		b.WriteString("  [truncated]")
	}
	if ev.Recovered {
		b.WriteString("  [recovered]")
	}
	return b.String()
}

// Conn is one deduplicated unit→unit (or unit→primary-output) connection
// from the collapsed netlist: the routable atom of the flow, carrying the
// register count W of the collapsed path and the sink's grid cell.
type Conn struct {
	From, To netlist.NodeID
	W        int
	SinkCell int
	// ToOutput marks To as a primary-output rather than a unit.
	ToOutput bool
}

// PlanState threads the intermediate artifacts of one planning pass
// through the pipeline stages. Fields are grouped by the stage that
// produces them; later stages only read what earlier stages wrote, so a
// later pass can adopt an earlier pass's prefix (ReusePartition) and
// re-enter the pipeline midway.
type PlanState struct {
	// Inputs, resolved by NewState.
	Netlist *netlist.Netlist
	Tech    tech.Tech
	Stats   netlist.Stats

	// Partition stage.
	Collapsed *netlist.Collapsed
	NumBlocks int
	BlockOf   map[netlist.NodeID]int

	// Floorplan stage.
	GateArea  []float64 // per-block functional-unit area (unscaled)
	HardBlock []bool
	Placement *floorplan.Placement

	// Grid stage.
	Grid *tile.Grid

	// Route stage.
	PadOfInput  map[netlist.NodeID]int
	PadOfOutput map[netlist.NodeID]int
	CellOfUnit  map[netlist.NodeID]int
	Conns       []Conn
	Nets        []route.Net // inter-block nets, in routing order
	NetOfUnit   map[netlist.NodeID]int
	Routing     *route.Result

	// Repeater stage: one plan per Conn (nil for intra-tile connections).
	RepeaterPlans []*repeater.Plan

	// Graph stage.
	TileOf   []int // capacity tile per retiming-graph vertex
	VertexOf map[netlist.NodeID]int

	// Periods / constraints stages. Source is the constraint engine the
	// periods stage selected (dense matrices or the lazy sweep engine);
	// the constraints stage and the LAC problem regenerate clock
	// constraints through it.
	Source      retime.ConstraintSource
	Constraints *retime.Constraints

	// Result accumulates the reported outcome; stages fill their fields as
	// they run and the driver finalizes the timings.
	Result *Result

	start     time.Time
	tm        Timings
	satisfied map[string]bool // stages covered by reused state
	truncated map[string]bool // stages that degraded at the budget deadline
	// restoredPeriods carries a resumed checkpoint's period-search outcome:
	// the periods stage rebuilds its constraint engine but adopts these
	// values instead of searching again (see RestoreCheckpoint).
	restoredPeriods *periodsRestore
}

// noteTruncated records that a stage hit its budget deadline and committed
// a degraded-but-valid result; the pipeline flags the stage's event and
// Result.TruncatedStages reports it.
func (st *PlanState) noteTruncated(stage string) {
	if st.truncated == nil {
		st.truncated = map[string]bool{}
	}
	st.truncated[stage] = true
}

// NewState validates the netlist and configuration, resolves the config
// defaults in place (technology, slack, whitespace, balance tolerance),
// and returns a fresh pipeline state ready for Run.
func NewState(nl *netlist.Netlist, cfg *Config) (*PlanState, error) {
	start := time.Now()
	if err := nl.Validate(); err != nil {
		return nil, err
	}
	tc := cfg.Tech
	if tc == (tech.Tech{}) {
		tc = tech.Default()
	}
	if err := tc.Validate(); err != nil {
		return nil, err
	}
	assignDefaults(nl, tc)
	stats := nl.Stats()
	if stats.Gates == 0 {
		return nil, fmt.Errorf("plan: netlist %s has no gates", nl.Name)
	}
	if cfg.TclkSlack == 0 {
		cfg.TclkSlack = 0.2
	}
	if cfg.TclkSlack < 0 || cfg.TclkSlack > 1 {
		return nil, fmt.Errorf("plan: TclkSlack %g outside [0,1]", cfg.TclkSlack)
	}
	if cfg.Whitespace == 0 {
		cfg.Whitespace = 0.15
	}
	if cfg.BalanceTol == 0 {
		cfg.BalanceTol = 0.1
	}
	if cfg.ProbeEngine == "" {
		cfg.ProbeEngine = ProbeEngineAuto
	}
	switch cfg.ProbeEngine {
	case ProbeEngineAuto, ProbeEngineDense, ProbeEngineLazy:
	default:
		return nil, fmt.Errorf("plan: unknown ProbeEngine %q (want %s, %s or %s)",
			cfg.ProbeEngine, ProbeEngineAuto, ProbeEngineDense, ProbeEngineLazy)
	}
	return &PlanState{
		Netlist: nl, Tech: tc, Stats: stats,
		Result: &Result{Name: nl.Name, Stats: stats, Netlist: nl},
		start:  start,
	}, nil
}

// ReusePartition seeds the state with the partition artifacts (collapsed
// netlist, block count, block assignment) of a completed earlier pass, so
// Run skips the partition stage. Valid when the netlist and the
// partition-relevant configuration (Blocks, BalanceTol, Seed) are
// unchanged — floorplan expansion between planning iterations only
// rescales block footprints (BlockScale, Whitespace, TclkOverride), which
// the partition never reads.
func (st *PlanState) ReusePartition(prev *PlanState) error {
	if prev == nil || prev.Collapsed == nil || prev.BlockOf == nil {
		return fmt.Errorf("plan: previous state has no partition to reuse")
	}
	if prev.Netlist != st.Netlist {
		return fmt.Errorf("plan: partition reuse requires the same netlist")
	}
	st.Collapsed = prev.Collapsed
	st.NumBlocks = prev.NumBlocks
	st.BlockOf = prev.BlockOf
	// The reused artifacts are as much part of this pass's outcome as
	// freshly computed ones: consumers of the Result (ExpandedConfig,
	// rendering) must see the block structure either way.
	st.Result.NumBlocks = prev.NumBlocks
	st.Result.BlockOf = prev.BlockOf
	if st.satisfied == nil {
		st.satisfied = map[string]bool{}
	}
	st.satisfied[stagePartition] = true
	return nil
}

// Run executes the stages in order against the state. Stages satisfied by
// reused state emit a Skipped trace event instead of running. Each event
// is appended to Result.Trace and, when set, delivered to cfg.Trace; wall
// times land in the matching Result.Timings bucket.
func (st *PlanState) Run(stages []Stage, cfg *Config) error {
	return st.RunContext(context.Background(), stages, cfg)
}

// RunContext is Run under a context and the configured time budget.
//
// Two time limits with different semantics flow through here:
//
//   - cfg.Budget (soft): the per-pass wall-clock budget. Anytime stages
//     (periods, route, lac) get a derived context whose deadline is their
//     weighted share of the remaining budget; at that deadline they commit
//     their best-so-far result, the stage's event is flagged Truncated,
//     and the pipeline continues — a budgeted pass still completes end to
//     end.
//   - ctx (hard): the caller's cancellation or deadline. It is checked at
//     every stage boundary; once done, no further stage starts and
//     RunContext returns the context's error. Stages already running see
//     it through their derived context and stop at their next checkpoint,
//     committing whatever consistent prefix they built.
//
// Either way the returned state passes check.VerifyState for the prefix
// that completed. Panics inside a stage are recovered into a typed
// *StageError (stage name + stack); the panicking stage's artifacts are
// not committed, so the prefix stays clean.
func (st *PlanState) RunContext(ctx context.Context, stages []Stage, cfg *Config) error {
	bud := newBudgetState(cfg.Budget)
	// Observability: one "pass" span per RunContext with one child span per
	// executed stage; the stage's sub-stage spans (probes, rounds, solves)
	// land on StageEvent.Sub for the report sink, and the live status names
	// the stage currently running. All nil no-ops without a recorder.
	gStage := obs.FromContext(ctx).Registry().Status("plan.stage")
	pctx, passSpan := obs.StartSpan(ctx, "pass")
	defer passSpan.End()
	for i, s := range stages {
		ev := StageEvent{Stage: s.Name(), Index: i}
		if st.satisfied[s.Name()] {
			ev.Skipped = true
		} else {
			if err := ctx.Err(); err != nil {
				st.finish()
				return fmt.Errorf("plan: stage %s not run: %w", s.Name(), err)
			}
			gStage.Set(s.Name())
			sctx, cancel := bud.stageContext(pctx, s.Name())
			ssctx, ssp := obs.StartSpan(sctx, s.Name())
			t0 := time.Now()
			err := runStage(ssctx, s, st, cfg)
			ssp.End()
			cancel()
			ev.Wall = time.Since(t0)
			st.tm.record(s.Name(), ev.Wall)
			ev.Truncated = st.truncated[s.Name()]
			if ssp != nil {
				ev.Sub = ssp.Children
			}
			if err != nil {
				var serr *StageError
				if errors.As(err, &serr) {
					ev.Recovered = serr.Recovered()
				}
				st.emit(ev, s, cfg)
				st.finish()
				return err
			}
			// The stage committed (commit-at-end discipline: the state now
			// holds a consistent prefix through this stage); snapshot it
			// for crash recovery when the caller asked for checkpoints.
			if cfg.Checkpoint != nil && checkpointIndex(s.Name()) >= 0 {
				if data, cerr := st.Checkpoint(s.Name(), cfg); cerr != nil {
					obs.FromContext(ctx).Registry().Counter("plan.checkpoint_errors").Inc()
				} else {
					cfg.Checkpoint(s.Name(), data)
				}
			}
		}
		st.emit(ev, s, cfg)
	}
	st.finish()
	return nil
}

// emit fills the event's counters and delivers it to the trace sinks.
func (st *PlanState) emit(ev StageEvent, s Stage, cfg *Config) {
	if cr, ok := s.(CounterReporter); ok {
		ev.Counters = cr.Counters(st)
	}
	st.Result.Trace = append(st.Result.Trace, ev)
	if cfg.Trace != nil {
		cfg.Trace(ev)
	}
}

// runStage executes one stage under the panic-containment wrapper: a panic
// anywhere below (graph construction, retiming, flow, Steiner, ...) comes
// back as a *StageError with the stage name and stack instead of unwinding
// through the pipeline.
func runStage(ctx context.Context, s Stage, st *PlanState, cfg *Config) (err error) {
	defer func() {
		if r := recover(); r != nil {
			cause, ok := r.(error)
			if !ok {
				cause = fmt.Errorf("panic: %v", r)
			}
			err = &StageError{Stage: s.Name(), Cause: cause, Stack: debug.Stack()}
		}
	}()
	return s.Run(ctx, st, cfg)
}

// anytimeStages are the pipeline stages that honor a budget deadline by
// returning a degraded-but-valid result: the period binary search, the
// rip-up/re-route loop, and the LAC reweighting loop. All other stages
// must run to completion for the state to stay consistent, so they only
// see the caller's context.
var anytimeStages = map[string]bool{
	stagePeriods: true,
	stageRoute:   true,
	stageLAC:     true,
}

// budgetState allocates the per-pass wall-clock budget across the anytime
// stages as they come up: each receives its weight's share of the time
// remaining, relative to the weighted anytime stages not yet run.
type budgetState struct {
	deadline time.Time // zero = unbudgeted
	weights  map[string]float64
	done     map[string]bool
}

func newBudgetState(b Budget) *budgetState {
	bs := &budgetState{weights: b.Weights, done: map[string]bool{}}
	if b.Wall > 0 {
		bs.deadline = time.Now().Add(b.Wall)
	}
	return bs
}

// stageContext derives the context a stage runs under. Non-anytime stages
// and unbudgeted runs get the parent unchanged (and a no-op cancel).
func (bs *budgetState) stageContext(ctx context.Context, stage string) (context.Context, context.CancelFunc) {
	if bs.deadline.IsZero() || !anytimeStages[stage] {
		return ctx, func() {}
	}
	d := bs.deadline
	if w := bs.weights[stage]; w > 0 {
		sum := 0.0
		for name, wt := range bs.weights {
			if anytimeStages[name] && !bs.done[name] && wt > 0 {
				sum += wt
			}
		}
		if rem := time.Until(bs.deadline); rem > 0 && sum > 0 {
			if sd := time.Now().Add(time.Duration(float64(rem) * w / sum)); sd.Before(d) {
				d = sd
			}
		}
	}
	bs.done[stage] = true
	return context.WithDeadline(ctx, d)
}

// finish reconciles the timing bookkeeping after a (partial or complete)
// pipeline run.
func (st *PlanState) finish() {
	st.tm.Total = time.Since(st.start)
	res := st.Result
	res.MinAreaTime, res.LACTime = st.tm.MinArea, st.tm.LAC
	res.Timings = st.tm
}

// Canonical stage names (trace events, timing buckets, skip bookkeeping).
const (
	stagePartition   = "partition"
	stageFloorplan   = "floorplan"
	stageGrid        = "grid"
	stageRoute       = "route"
	stageRepeaters   = "repeaters"
	stageGraph       = "graph"
	stagePeriods     = "periods"
	stageConstraints = "constraints"
	stageMinArea     = "minarea"
	stageLAC         = "lac"
)

// DefaultStages returns the paper's flow: partition → floorplan → tile
// grid → global routing → repeater planning → retiming-graph build →
// period derivation → constraint generation → min-area retiming →
// LAC-retiming.
func DefaultStages() []Stage {
	return []Stage{
		partitionStage{}, floorplanStage{}, gridStage{}, routeStage{},
		repeaterStage{}, graphStage{}, periodsStage{}, constraintsStage{},
		minAreaStage{}, lacStage{},
	}
}

// record charges a stage's wall time to its Timings bucket. Repeater
// planning and retiming-graph construction share a bucket, preserving the
// pre-pipeline meaning of Timings.Repeaters.
func (t *Timings) record(stage string, d time.Duration) {
	switch stage {
	case stagePartition:
		t.Partition += d
	case stageFloorplan:
		t.Floorplan += d
	case stageGrid:
		t.TileGrid += d
	case stageRoute:
		t.Route += d
	case stageRepeaters, stageGraph:
		t.Repeaters += d
	case stagePeriods:
		t.Periods += d
	case stageConstraints:
		t.Constraints += d
	case stageMinArea:
		t.MinArea += d
	case stageLAC:
		t.LAC += d
	default:
		// Custom stages outside the canonical list land in Other rather
		// than vanishing from the timing totals.
		t.Other += d
	}
}
