package plan

import (
	"fmt"
	"strings"
	"time"

	"lacret/internal/floorplan"
	"lacret/internal/netlist"
	"lacret/internal/repeater"
	"lacret/internal/retime"
	"lacret/internal/route"
	"lacret/internal/tech"
	"lacret/internal/tile"
)

// Stage is one step of the planning pipeline (Figure 1). Stages read and
// write the shared PlanState; the default stage list (DefaultStages)
// reproduces the paper's flow, and callers may run a custom list — or one
// stage at a time — through PlanState.Run.
type Stage interface {
	// Name identifies the stage in trace events and timing buckets.
	Name() string
	// Run executes the stage against the state. cfg carries the resolved
	// configuration (NewState fills in defaults).
	Run(st *PlanState, cfg *Config) error
}

// CounterReporter is an optional Stage extension: stages implementing it
// attach key counters (nets routed, overflow, repeaters, ...) to their
// trace events.
type CounterReporter interface {
	Counters(st *PlanState) []Counter
}

// Counter is one named trace metric.
type Counter struct {
	Name  string
	Value float64
}

// StageEvent is emitted once per pipeline stage — through Config.Trace as
// stages complete, and accumulated on Result.Trace. Skipped marks stages
// satisfied by state reused from an earlier pass (partition on planning
// iteration ≥ 2); their counters still describe the reused artifacts.
type StageEvent struct {
	Stage    string
	Index    int // position in the executed stage list
	Wall     time.Duration
	Skipped  bool
	Counters []Counter
}

// String renders the event as one aligned trace line.
func (ev StageEvent) String() string {
	var b strings.Builder
	if ev.Skipped {
		fmt.Fprintf(&b, "%-11s %12s", ev.Stage, "reused")
	} else {
		fmt.Fprintf(&b, "%-11s %10.3fms", ev.Stage, float64(ev.Wall.Microseconds())/1000)
	}
	for _, c := range ev.Counters {
		if c.Value == float64(int64(c.Value)) {
			fmt.Fprintf(&b, "  %s=%.0f", c.Name, c.Value)
		} else {
			fmt.Fprintf(&b, "  %s=%.3f", c.Name, c.Value)
		}
	}
	return b.String()
}

// Conn is one deduplicated unit→unit (or unit→primary-output) connection
// from the collapsed netlist: the routable atom of the flow, carrying the
// register count W of the collapsed path and the sink's grid cell.
type Conn struct {
	From, To netlist.NodeID
	W        int
	SinkCell int
	// ToOutput marks To as a primary-output rather than a unit.
	ToOutput bool
}

// PlanState threads the intermediate artifacts of one planning pass
// through the pipeline stages. Fields are grouped by the stage that
// produces them; later stages only read what earlier stages wrote, so a
// later pass can adopt an earlier pass's prefix (ReusePartition) and
// re-enter the pipeline midway.
type PlanState struct {
	// Inputs, resolved by NewState.
	Netlist *netlist.Netlist
	Tech    tech.Tech
	Stats   netlist.Stats

	// Partition stage.
	Collapsed *netlist.Collapsed
	NumBlocks int
	BlockOf   map[netlist.NodeID]int

	// Floorplan stage.
	GateArea  []float64 // per-block functional-unit area (unscaled)
	HardBlock []bool
	Placement *floorplan.Placement

	// Grid stage.
	Grid *tile.Grid

	// Route stage.
	PadOfInput  map[netlist.NodeID]int
	PadOfOutput map[netlist.NodeID]int
	CellOfUnit  map[netlist.NodeID]int
	Conns       []Conn
	Nets        []route.Net // inter-block nets, in routing order
	NetOfUnit   map[netlist.NodeID]int
	Routing     *route.Result

	// Repeater stage: one plan per Conn (nil for intra-tile connections).
	RepeaterPlans []*repeater.Plan

	// Graph stage.
	TileOf   []int // capacity tile per retiming-graph vertex
	VertexOf map[netlist.NodeID]int

	// Periods / constraints stages.
	WD          *retime.WD
	Constraints *retime.Constraints

	// Result accumulates the reported outcome; stages fill their fields as
	// they run and the driver finalizes the timings.
	Result *Result

	start     time.Time
	tm        Timings
	satisfied map[string]bool // stages covered by reused state
}

// NewState validates the netlist and configuration, resolves the config
// defaults in place (technology, slack, whitespace, balance tolerance),
// and returns a fresh pipeline state ready for Run.
func NewState(nl *netlist.Netlist, cfg *Config) (*PlanState, error) {
	start := time.Now()
	if err := nl.Validate(); err != nil {
		return nil, err
	}
	tc := cfg.Tech
	if tc == (tech.Tech{}) {
		tc = tech.Default()
	}
	if err := tc.Validate(); err != nil {
		return nil, err
	}
	assignDefaults(nl, tc)
	stats := nl.Stats()
	if stats.Gates == 0 {
		return nil, fmt.Errorf("plan: netlist %s has no gates", nl.Name)
	}
	if cfg.TclkSlack == 0 {
		cfg.TclkSlack = 0.2
	}
	if cfg.TclkSlack < 0 || cfg.TclkSlack > 1 {
		return nil, fmt.Errorf("plan: TclkSlack %g outside [0,1]", cfg.TclkSlack)
	}
	if cfg.Whitespace == 0 {
		cfg.Whitespace = 0.15
	}
	if cfg.BalanceTol == 0 {
		cfg.BalanceTol = 0.1
	}
	return &PlanState{
		Netlist: nl, Tech: tc, Stats: stats,
		Result: &Result{Name: nl.Name, Stats: stats, Netlist: nl},
		start:  start,
	}, nil
}

// ReusePartition seeds the state with the partition artifacts (collapsed
// netlist, block count, block assignment) of a completed earlier pass, so
// Run skips the partition stage. Valid when the netlist and the
// partition-relevant configuration (Blocks, BalanceTol, Seed) are
// unchanged — floorplan expansion between planning iterations only
// rescales block footprints (BlockScale, Whitespace, TclkOverride), which
// the partition never reads.
func (st *PlanState) ReusePartition(prev *PlanState) error {
	if prev == nil || prev.Collapsed == nil || prev.BlockOf == nil {
		return fmt.Errorf("plan: previous state has no partition to reuse")
	}
	if prev.Netlist != st.Netlist {
		return fmt.Errorf("plan: partition reuse requires the same netlist")
	}
	st.Collapsed = prev.Collapsed
	st.NumBlocks = prev.NumBlocks
	st.BlockOf = prev.BlockOf
	if st.satisfied == nil {
		st.satisfied = map[string]bool{}
	}
	st.satisfied[stagePartition] = true
	return nil
}

// Run executes the stages in order against the state. Stages satisfied by
// reused state emit a Skipped trace event instead of running. Each event
// is appended to Result.Trace and, when set, delivered to cfg.Trace; wall
// times land in the matching Result.Timings bucket.
func (st *PlanState) Run(stages []Stage, cfg *Config) error {
	for i, s := range stages {
		ev := StageEvent{Stage: s.Name(), Index: i}
		if st.satisfied[s.Name()] {
			ev.Skipped = true
		} else {
			t0 := time.Now()
			if err := s.Run(st, cfg); err != nil {
				return err
			}
			ev.Wall = time.Since(t0)
			st.tm.record(s.Name(), ev.Wall)
		}
		if cr, ok := s.(CounterReporter); ok {
			ev.Counters = cr.Counters(st)
		}
		st.Result.Trace = append(st.Result.Trace, ev)
		if cfg.Trace != nil {
			cfg.Trace(ev)
		}
	}
	st.finish()
	return nil
}

// finish reconciles the timing bookkeeping after a (partial or complete)
// pipeline run.
func (st *PlanState) finish() {
	st.tm.Total = time.Since(st.start)
	res := st.Result
	res.MinAreaTime, res.LACTime = st.tm.MinArea, st.tm.LAC
	res.Timings = st.tm
}

// Canonical stage names (trace events, timing buckets, skip bookkeeping).
const (
	stagePartition   = "partition"
	stageFloorplan   = "floorplan"
	stageGrid        = "grid"
	stageRoute       = "route"
	stageRepeaters   = "repeaters"
	stageGraph       = "graph"
	stagePeriods     = "periods"
	stageConstraints = "constraints"
	stageMinArea     = "minarea"
	stageLAC         = "lac"
)

// DefaultStages returns the paper's flow: partition → floorplan → tile
// grid → global routing → repeater planning → retiming-graph build →
// period derivation → constraint generation → min-area retiming →
// LAC-retiming.
func DefaultStages() []Stage {
	return []Stage{
		partitionStage{}, floorplanStage{}, gridStage{}, routeStage{},
		repeaterStage{}, graphStage{}, periodsStage{}, constraintsStage{},
		minAreaStage{}, lacStage{},
	}
}

// record charges a stage's wall time to its Timings bucket. Repeater
// planning and retiming-graph construction share a bucket, preserving the
// pre-pipeline meaning of Timings.Repeaters.
func (t *Timings) record(stage string, d time.Duration) {
	switch stage {
	case stagePartition:
		t.Partition += d
	case stageFloorplan:
		t.Floorplan += d
	case stageGrid:
		t.TileGrid += d
	case stageRoute:
		t.Route += d
	case stageRepeaters, stageGraph:
		t.Repeaters += d
	case stagePeriods:
		t.Periods += d
	case stageConstraints:
		t.Constraints += d
	case stageMinArea:
		t.MinArea += d
	case stageLAC:
		t.LAC += d
	}
}
