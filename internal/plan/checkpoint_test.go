package plan

import (
	"strings"
	"testing"

	"lacret/internal/bench89"
	"lacret/internal/core"
)

// s400Config is the Table 1 configuration the golden test pins.
func s400Config(seed int64) Config {
	return Config{
		Seed: seed, Whitespace: 0.13, TclkSlack: 0.2,
		LAC: core.Options{Alpha: 0.2, Nmax: 5, MaxIters: 20},
	}
}

// TestCheckpointResumeBitIdenticalS400 is the durability pin: a pass
// resumed from any checkpoint boundary must reproduce the uninterrupted
// pass's planning outputs exactly — same periods, same wirelength, same
// retiming results — with the covered stages skipped, not re-run.
func TestCheckpointResumeBitIdenticalS400(t *testing.T) {
	if testing.Short() {
		t.Skip("catalog circuit in short mode")
	}
	p, ok := bench89.ByName("s400")
	if !ok {
		t.Fatal("no s400 in catalog")
	}
	nl, err := bench89.Generate(p)
	if err != nil {
		t.Fatal(err)
	}

	// Baseline run, capturing a snapshot at every boundary.
	snaps := map[string][]byte{}
	cfg := s400Config(p.Seed)
	cfg.Checkpoint = func(stage string, data []byte) { snaps[stage] = data }
	base, err := Plan(nl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, stage := range checkpointOrder {
		if len(snaps[stage]) == 0 {
			t.Fatalf("no snapshot captured at %q", stage)
		}
	}

	for _, stage := range checkpointOrder {
		stage := stage
		t.Run(stage, func(t *testing.T) {
			nl2, err := bench89.Generate(p)
			if err != nil {
				t.Fatal(err)
			}
			rcfg := s400Config(p.Seed)
			rcfg.Resume = snaps[stage]
			res, err := Plan(nl2, rcfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.ResumeRejected != "" {
				t.Fatalf("resume rejected: %s", res.ResumeRejected)
			}
			if res.Resumed != stage {
				t.Fatalf("Resumed = %q, want %q", res.Resumed, stage)
			}

			exact := func(name string, got, want float64) {
				if got != want {
					t.Errorf("%s = %.17g, want %.17g (uninterrupted run)", name, got, want)
				}
			}
			exact("Tinit", res.Tinit, base.Tinit)
			exact("Tmin", res.Tmin, base.Tmin)
			exact("Tclk", res.Tclk, base.Tclk)
			exact("RouteWirelength", res.RouteWirelength, base.RouteWirelength)
			exact("SteinerEstimate", res.SteinerEstimate, base.SteinerEstimate)
			for _, c := range []struct {
				name      string
				got, want int
			}{
				{"MinArea.NFOA", res.MinArea.NFOA, base.MinArea.NFOA},
				{"MinArea.NF", res.MinArea.NF, base.MinArea.NF},
				{"LAC.NFOA", res.LAC.NFOA, base.LAC.NFOA},
				{"LAC.NF", res.LAC.NF, base.LAC.NF},
				{"LAC.NWR", res.LAC.NWR, base.LAC.NWR},
				{"RepeaterCount", res.RepeaterCount, base.RepeaterCount},
				{"WireUnits", res.WireUnits, base.WireUnits},
				{"InterBlockNets", res.InterBlockNets, base.InterBlockNets},
				{"RouteOverflow", res.RouteOverflow, base.RouteOverflow},
				{"MinAreaNFN", res.MinAreaNFN, base.MinAreaNFN},
				{"LACNFN", res.LACNFN, base.LACNFN},
			} {
				if c.got != c.want {
					t.Errorf("%s = %d, want %d (uninterrupted run)", c.name, c.got, c.want)
				}
			}

			// The covered stages must be skipped. The periods boundary is
			// special: its own stage re-runs (to rebuild the constraint
			// engine) but adopts the restored envelope without searching.
			idx := checkpointIndex(stage)
			skipUpTo := idx
			if stage == stagePeriods {
				skipUpTo = idx - 1
			}
			skipped := map[string]bool{}
			for _, ev := range res.Trace {
				skipped[ev.Stage] = ev.Skipped
			}
			for i, s := range checkpointOrder {
				want := i <= skipUpTo
				if skipped[s] != want {
					t.Errorf("stage %s skipped=%v, want %v", s, skipped[s], want)
				}
			}
			if skipped[stageGraph] {
				t.Error("graph stage skipped; it must re-run on resume")
			}
			if stage == stagePeriods && res.Probe.Probes != 0 {
				t.Errorf("restored periods stage ran %d probes, want 0", res.Probe.Probes)
			}
		})
	}
}

// TestCheckpointResumeRejects covers the refusal paths: a rejected
// snapshot must never poison the pass — it plans from scratch and reports
// why on Result.ResumeRejected.
func TestCheckpointResumeRejects(t *testing.T) {
	nl := smallCircuit(t)
	var snap []byte
	cfg := Config{Seed: 7, FloorplanMoves: 2000}
	cfg.Checkpoint = func(stage string, data []byte) { snap = data }
	base, err := Plan(nl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap) == 0 {
		t.Fatal("no snapshot captured")
	}

	cases := []struct {
		name   string
		resume []byte
		seed   int64
		frag   string
	}{
		{"corrupt", append([]byte(checkpointMagic), []byte("not gob")...), 7, "decode"},
		{"truncated", snap[:len(snap)/2], 7, "decode"},
		{"bad-magic", append([]byte("lacret-ckpt-v9\x00"), snap[len(checkpointMagic):]...), 7, "version"},
		{"short", []byte("xy"), 7, "version"},
		{"seed-mismatch", snap, 8, "seed"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			rcfg := Config{Seed: c.seed, FloorplanMoves: 2000, Resume: c.resume}
			res, err := Plan(smallCircuit(t), rcfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Resumed != "" {
				t.Fatalf("Resumed = %q on a rejected snapshot", res.Resumed)
			}
			if res.ResumeRejected == "" || !strings.Contains(res.ResumeRejected, c.frag) {
				t.Fatalf("ResumeRejected = %q, want mention of %q", res.ResumeRejected, c.frag)
			}
			// From-scratch fallback must match the baseline (same seed only).
			if c.seed == 7 && res.Tclk != base.Tclk {
				t.Fatalf("fallback Tclk = %g, want %g", res.Tclk, base.Tclk)
			}
		})
	}
}

// TestCheckpointNetlistMismatch rejects a snapshot restored against a
// different circuit.
func TestCheckpointNetlistMismatch(t *testing.T) {
	nl := smallCircuit(t)
	var snap []byte
	cfg := Config{Seed: 7, FloorplanMoves: 2000}
	cfg.Checkpoint = func(stage string, data []byte) { snap = data }
	if _, err := Plan(nl, cfg); err != nil {
		t.Fatal(err)
	}
	p, ok := bench89.ByName("s400")
	if !ok {
		t.Fatal("no s400 in catalog")
	}
	other, err := bench89.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Plan(other, Config{
		Seed: 7, Whitespace: 0.13, TclkSlack: 0.2,
		LAC:    core.Options{Alpha: 0.2, Nmax: 5, MaxIters: 20},
		Resume: snap,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Resumed != "" || !strings.Contains(res.ResumeRejected, "netlist") {
		t.Fatalf("Resumed=%q ResumeRejected=%q, want netlist rejection", res.Resumed, res.ResumeRejected)
	}
}
