package plan

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"lacret/internal/floorplan"
	"lacret/internal/netlist"
	"lacret/internal/repeater"
	"lacret/internal/route"
	"lacret/internal/tile"
)

// checkpointMagic versions the snapshot encoding; bump it whenever the
// payload below changes shape, so a daemon upgraded across the change can
// never misread an old checkpoint — Restore rejects the prefix and the run
// starts from scratch instead.
const checkpointMagic = "lacret-ckpt-v1\x00"

// checkpointOrder lists the stage boundaries a snapshot can be taken at,
// in pipeline order. A checkpoint at stage s captures the artifacts of
// every checkpointable stage up to and including s.
//
// The graph stage and everything after the periods stage are deliberately
// absent: their artifacts (retime.Graph, ConstraintSource, the live flow
// problem) hold unexported solver state that cannot round-trip through a
// snapshot. They are instead recomputed on resume — cheap, deterministic
// reconstruction from the restored prefix — while the expensive searches
// they drive (the route rip-up loop, the min-period probe sequence) are
// exactly what the route and periods checkpoints make skippable.
var checkpointOrder = []string{
	stagePartition, stageFloorplan, stageGrid, stageRoute, stageRepeaters, stagePeriods,
}

// checkpointIndex maps a checkpointable stage name to its position in
// checkpointOrder, or -1.
func checkpointIndex(stage string) int {
	for i, s := range checkpointOrder {
		if s == stage {
			return i
		}
	}
	return -1
}

// periodsRestore carries a restored periods-stage outcome: the stage
// re-runs on resume, but only to rebuild the constraint engine — the
// binary search whose result these fields pin is skipped.
type periodsRestore struct {
	Tinit, Tmin, TminLo, Tclk float64
	Truncated                 bool
}

// checkpointPayload is the serialized artifact set. Fields are grouped by
// producing stage; a payload carries the groups of every stage up to its
// Stage, zero values elsewhere. Only exported, solver-free artifact types
// appear here — that is what makes the snapshot stable across processes.
type checkpointPayload struct {
	// Guard: a resumed pass must plan the same input with the same
	// randomized substeps, or the restored artifacts are meaningless.
	Netlist string
	Nodes   int
	Seed    int64

	Stage string // last completed checkpointable stage

	// partition
	Collapsed *netlist.Collapsed
	NumBlocks int
	BlockOf   map[netlist.NodeID]int

	// floorplan
	GateArea  []float64
	HardBlock []bool
	Placement *floorplan.Placement

	// grid (captured as of the snapshot's stage: routing and repeater
	// reservation mutate tile usage in place, so a later snapshot carries
	// the later grid)
	Grid *tile.Grid

	// route
	PadOfInput      map[netlist.NodeID]int
	PadOfOutput     map[netlist.NodeID]int
	CellOfUnit      map[netlist.NodeID]int
	Conns           []Conn
	Nets            []route.Net
	NetOfUnit       map[netlist.NodeID]int
	Routing         *route.Result
	RouteWirelength float64
	SteinerEstimate float64
	RouteOverflow   int
	InterBlockNets  int
	Routes          []route.Tree

	// repeaters (flattened: RepeaterPlans is index-aligned with Conns and
	// nil at intra-tile hookups, and gob rejects nil slice elements)
	RepeaterConns int
	RepeaterIdx   []int
	RepeaterDense []repeater.Plan
	RepeaterCount int

	// periods
	Periods *periodsRestore
}

// Checkpoint serializes the state's artifacts as of the given completed
// stage into a versioned, self-contained snapshot. The stage must be one
// of the checkpointable boundaries (checkpointOrder); the pipeline calls
// this through Config.Checkpoint after each such stage commits, and a
// later run of the same netlist and configuration can hand the bytes back
// through Config.Resume to skip the covered stages.
func (st *PlanState) Checkpoint(stage string, cfg *Config) ([]byte, error) {
	idx := checkpointIndex(stage)
	if idx < 0 {
		return nil, fmt.Errorf("plan: stage %q is not a checkpoint boundary", stage)
	}
	p := checkpointPayload{
		Netlist: st.Netlist.Name,
		Nodes:   len(st.Netlist.Nodes),
		Seed:    cfg.Seed,
		Stage:   stage,
	}
	// Cumulative groups, gated by how far the pipeline has come.
	p.Collapsed, p.NumBlocks, p.BlockOf = st.Collapsed, st.NumBlocks, st.BlockOf
	if idx >= 1 {
		p.GateArea, p.HardBlock, p.Placement = st.GateArea, st.HardBlock, st.Placement
	}
	if idx >= 2 {
		p.Grid = st.Grid
	}
	if idx >= 3 {
		res := st.Result
		p.PadOfInput, p.PadOfOutput, p.CellOfUnit = st.PadOfInput, st.PadOfOutput, st.CellOfUnit
		p.Conns, p.Nets, p.NetOfUnit, p.Routing = st.Conns, st.Nets, st.NetOfUnit, st.Routing
		p.RouteWirelength, p.SteinerEstimate = res.RouteWirelength, res.SteinerEstimate
		p.RouteOverflow, p.InterBlockNets = res.RouteOverflow, res.InterBlockNets
		p.Routes = res.Routes
	}
	if idx >= 4 {
		p.RepeaterConns, p.RepeaterCount = len(st.RepeaterPlans), st.Result.RepeaterCount
		for i, rp := range st.RepeaterPlans {
			if rp != nil {
				p.RepeaterIdx = append(p.RepeaterIdx, i)
				p.RepeaterDense = append(p.RepeaterDense, *rp)
			}
		}
	}
	if idx >= 5 {
		res := st.Result
		p.Periods = &periodsRestore{
			Tinit: res.Tinit, Tmin: res.Tmin, TminLo: res.TminLo, Tclk: res.Tclk,
			Truncated: st.truncated[stagePeriods],
		}
	}
	var buf bytes.Buffer
	buf.WriteString(checkpointMagic)
	if err := gob.NewEncoder(&buf).Encode(&p); err != nil {
		return nil, fmt.Errorf("plan: encode checkpoint: %w", err)
	}
	return buf.Bytes(), nil
}

// RestoreCheckpoint loads a snapshot produced by Checkpoint into a fresh
// state (NewState, before any stage has run), marking the covered stages
// satisfied so RunContext skips them. It returns the restored stage name.
// A snapshot from a different encoding version, netlist, or seed is
// rejected with an error and the state is left untouched — the caller
// plans from scratch.
//
// The restored pass is bit-identical to an uninterrupted one for every
// planning output: the skipped stages' artifacts are replayed exactly and
// the re-run stages are deterministic functions of them. Only work
// accounting differs (skipped stages report zero wall time, a restored
// period search reports zero probes).
func (st *PlanState) RestoreCheckpoint(data []byte, cfg *Config) (string, error) {
	if len(data) < len(checkpointMagic) || string(data[:len(checkpointMagic)]) != checkpointMagic {
		return "", fmt.Errorf("plan: checkpoint version mismatch (want %q)", checkpointMagic[:len(checkpointMagic)-1])
	}
	var p checkpointPayload
	if err := gob.NewDecoder(bytes.NewReader(data[len(checkpointMagic):])).Decode(&p); err != nil {
		return "", fmt.Errorf("plan: decode checkpoint: %w", err)
	}
	idx := checkpointIndex(p.Stage)
	if idx < 0 {
		return "", fmt.Errorf("plan: checkpoint names unknown stage %q", p.Stage)
	}
	if p.Netlist != st.Netlist.Name || p.Nodes != len(st.Netlist.Nodes) {
		return "", fmt.Errorf("plan: checkpoint is for netlist %s/%d nodes, state has %s/%d",
			p.Netlist, p.Nodes, st.Netlist.Name, len(st.Netlist.Nodes))
	}
	if p.Seed != cfg.Seed {
		return "", fmt.Errorf("plan: checkpoint seed %d, config seed %d", p.Seed, cfg.Seed)
	}
	if st.satisfied == nil {
		st.satisfied = map[string]bool{}
	}
	res := st.Result
	st.Collapsed, st.NumBlocks, st.BlockOf = p.Collapsed, p.NumBlocks, p.BlockOf
	res.NumBlocks, res.BlockOf = p.NumBlocks, p.BlockOf
	st.satisfied[stagePartition] = true
	if idx >= 1 {
		st.GateArea, st.HardBlock, st.Placement = p.GateArea, p.HardBlock, p.Placement
		res.Placement = p.Placement
		st.satisfied[stageFloorplan] = true
	}
	if idx >= 2 {
		// gob drops unexported fields; recompute the grid's derived ones.
		p.Grid.Rehydrate()
		st.Grid, res.Grid = p.Grid, p.Grid
		st.satisfied[stageGrid] = true
	}
	if idx >= 3 {
		st.PadOfInput, st.PadOfOutput, st.CellOfUnit = p.PadOfInput, p.PadOfOutput, p.CellOfUnit
		st.Conns, st.Nets, st.NetOfUnit, st.Routing = p.Conns, p.Nets, p.NetOfUnit, p.Routing
		// gob flattens empty maps to nil; downstream stages index these
		// unconditionally, so restore the allocated-but-empty shape.
		if st.PadOfInput == nil {
			st.PadOfInput = map[netlist.NodeID]int{}
		}
		if st.PadOfOutput == nil {
			st.PadOfOutput = map[netlist.NodeID]int{}
		}
		if st.CellOfUnit == nil {
			st.CellOfUnit = map[netlist.NodeID]int{}
		}
		if st.NetOfUnit == nil {
			st.NetOfUnit = map[netlist.NodeID]int{}
		}
		res.RouteWirelength, res.SteinerEstimate = p.RouteWirelength, p.SteinerEstimate
		res.RouteOverflow, res.InterBlockNets = p.RouteOverflow, p.InterBlockNets
		res.Routes = p.Routes
		if p.Routing != nil && p.Routing.Truncated {
			st.noteTruncated(stageRoute)
		}
		st.satisfied[stageRoute] = true
	}
	if idx >= 4 {
		plans := make([]*repeater.Plan, p.RepeaterConns)
		for i, ci := range p.RepeaterIdx {
			if ci < 0 || ci >= len(plans) {
				return "", fmt.Errorf("plan: checkpoint repeater index %d out of range", ci)
			}
			plans[ci] = &p.RepeaterDense[i]
		}
		st.RepeaterPlans, res.RepeaterCount = plans, p.RepeaterCount
		st.satisfied[stageRepeaters] = true
	}
	if idx >= 5 && p.Periods != nil {
		// The periods stage still runs — it must rebuild the constraint
		// engine over the (re-run) graph stage's output — but it adopts
		// this outcome instead of searching again.
		st.restoredPeriods = p.Periods
	}
	res.Resumed = p.Stage
	return p.Stage, nil
}

// applyResume restores cfg.Resume into the fresh state when present. An
// invalid or incompatible snapshot is not an error: the pass plans from
// scratch, and the rejection is reported on Result.ResumeRejected so
// callers (and their metrics) can see the checkpoint did not take.
func (st *PlanState) applyResume(cfg *Config) {
	if len(cfg.Resume) == 0 {
		return
	}
	if _, err := st.RestoreCheckpoint(cfg.Resume, cfg); err != nil {
		st.Result.ResumeRejected = err.Error()
	}
}
