package plan

import (
	"context"
	"sort"

	"lacret/internal/netlist"
	"lacret/internal/route"
	"lacret/internal/steiner"
	"lacret/internal/tile"
)

// routeStage assigns I/O pads to boundary cells, locates every collapsed
// unit on the grid, deduplicates the unit→unit connections, and globally
// routes the inter-block nets — longest Steiner estimate first, so
// multi-millimetre nets get clean embeddings before congestion builds up.
type routeStage struct{}

func (routeStage) Name() string { return stageRoute }

func (routeStage) Run(ctx context.Context, st *PlanState, cfg *Config) error {
	nl, g, col, pl := st.Netlist, st.Grid, st.Collapsed, st.Placement

	// --- Pads and unit cells -------------------------------------------
	padOfInput, padOfOutput := assignPads(nl, g)
	cellOfUnit := make(map[netlist.NodeID]int, len(col.Units))
	for _, id := range col.Units {
		if nl.Node(id).Kind == netlist.KindInput {
			cellOfUnit[id] = padOfInput[id]
			continue
		}
		b := st.BlockOf[id]
		cx, cy := pl.Center(b)
		cellOfUnit[id] = g.CellAt(cx, cy)
	}
	st.PadOfInput, st.PadOfOutput = padOfInput, padOfOutput
	st.CellOfUnit = cellOfUnit

	// --- Deduplicate connections ---------------------------------------
	seen := map[[2]int64]bool{}
	var conns []Conn
	for _, e := range col.Edges {
		k := [2]int64{int64(e.From), int64(e.To)}
		if seen[k] {
			continue
		}
		seen[k] = true
		conns = append(conns, Conn{From: e.From, To: e.To, W: e.W, SinkCell: cellOfUnit[e.To]})
	}
	for _, o := range col.OutputUnits {
		conns = append(conns, Conn{
			From: o.Driver, To: o.Output, W: o.W,
			SinkCell: padOfOutput[o.Output], ToOutput: true,
		})
	}
	st.Conns = conns

	// --- Global routing -------------------------------------------------
	netOfUnit := map[netlist.NodeID]int{}
	var rnets []route.Net
	for _, c := range conns {
		src := cellOfUnit[c.From]
		if src == c.SinkCell {
			continue
		}
		ni, ok := netOfUnit[c.From]
		if !ok {
			ni = len(rnets)
			netOfUnit[c.From] = ni
			rnets = append(rnets, route.Net{ID: ni, Source: src})
		}
		rnets[ni].Sinks = append(rnets[ni].Sinks, c.SinkCell)
	}
	var steinerTotal float64
	estimate := make([]float64, len(rnets))
	for i, rn := range rnets {
		pts := make([]steiner.Point, 0, len(rn.Sinks)+1)
		cx, cy := g.CellCenter(rn.Source)
		pts = append(pts, steiner.Point{X: cx, Y: cy})
		for _, s := range rn.Sinks {
			sx, sy := g.CellCenter(s)
			pts = append(pts, steiner.Point{X: sx, Y: sy})
		}
		stree, serr := steiner.Build(pts)
		if serr != nil {
			return serr
		}
		estimate[i] = stree.Length()
		steinerTotal += stree.Length()
	}
	order := make([]int, len(rnets))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return estimate[order[a]] > estimate[order[b]] })
	ordered := make([]route.Net, len(rnets))
	newIndex := make([]int, len(rnets))
	for pos, old := range order {
		ordered[pos] = rnets[old]
		newIndex[old] = pos
	}
	for u, ni := range netOfUnit {
		netOfUnit[u] = newIndex[ni]
	}
	rres, err := route.RouteContext(ctx, g, ordered, route.Options{Capacity: cfg.RouteCapacity})
	if err != nil {
		return err
	}
	if rres.Truncated {
		st.noteTruncated(stageRoute)
	}
	st.Nets, st.NetOfUnit, st.Routing = ordered, netOfUnit, rres

	res := st.Result
	res.RouteWirelength = rres.Wirelength
	res.RouteOverflow = rres.Overflow
	res.InterBlockNets = len(rnets)
	res.SteinerEstimate = steinerTotal
	res.Routes = rres.Trees
	return nil
}

func (routeStage) Counters(st *PlanState) []Counter {
	res := st.Result
	return []Counter{
		{"nets", float64(res.InterBlockNets)},
		{"wirelength", res.RouteWirelength},
		{"overflow", float64(res.RouteOverflow)},
	}
}

// assignPads distributes primary inputs and outputs over the grid's
// boundary cells (inputs from the top-left going clockwise, outputs offset
// half a perimeter for separation). Each pad claims the first free
// boundary cell at or clockwise after its nominal position, so pads never
// share a cell while free cells remain — on grids whose perimeter is
// shorter than the pad count, leftover pads share their nominal cell.
func assignPads(nl *netlist.Netlist, g *tile.Grid) (map[netlist.NodeID]int, map[netlist.NodeID]int) {
	boundary := boundaryCells(g)
	ins := nl.InputIDs()
	outs := append([]netlist.NodeID(nil), nl.Outputs...)
	used := make(map[int]bool, len(ins)+len(outs))
	claim := func(pos int) int {
		for k := 0; k < len(boundary); k++ {
			c := boundary[(pos+k)%len(boundary)]
			if !used[c] {
				used[c] = true
				return c
			}
		}
		return boundary[pos%len(boundary)]
	}
	n := len(ins) + len(outs)
	padIn := make(map[netlist.NodeID]int, len(ins))
	padOut := make(map[netlist.NodeID]int, len(outs))
	for i, id := range ins {
		padIn[id] = claim((i * len(boundary)) / n)
	}
	off := len(boundary) / 2
	for i, id := range outs {
		padOut[id] = claim((off + (i*len(boundary))/n) % len(boundary))
	}
	return padIn, padOut
}

// boundaryCells lists the grid's perimeter cells clockwise from (0,0).
func boundaryCells(g *tile.Grid) []int {
	var cells []int
	r, c := 0, 0
	for ; c < g.Cols; c++ {
		cells = append(cells, r*g.Cols+c)
	}
	c = g.Cols - 1
	for r = 1; r < g.Rows; r++ {
		cells = append(cells, r*g.Cols+c)
	}
	r = g.Rows - 1
	for c = g.Cols - 2; c >= 0; c-- {
		cells = append(cells, r*g.Cols+c)
	}
	c = 0
	for r = g.Rows - 2; r >= 1; r-- {
		cells = append(cells, r*g.Cols+c)
	}
	return cells
}
