package plan

import (
	"context"
	"fmt"

	"lacret/internal/netlist"
	"lacret/internal/partition"
)

// partitionStage collapses the netlist (DFFs become retiming-edge
// weights) and splits the non-input nodes into soft blocks with recursive
// FM bisection. Its artifacts depend only on the netlist, the block
// count, the balance tolerance, and the seed — so a second planning
// iteration reuses them verbatim (ReusePartition).
type partitionStage struct{}

func (partitionStage) Name() string { return stagePartition }

func (partitionStage) Run(ctx context.Context, st *PlanState, cfg *Config) error {
	col, err := st.Netlist.Collapse()
	if err != nil {
		return err
	}
	nBlocks := cfg.Blocks
	if nBlocks <= 0 {
		nBlocks = autoBlocks(st.Stats.Gates)
	}
	blockOf, err := partitionNetlist(st.Netlist, nBlocks, cfg.BalanceTol, cfg.Seed)
	if err != nil {
		return err
	}
	// Commit only on success, so a failed stage leaves no half-built state.
	st.Collapsed = col
	st.NumBlocks = nBlocks
	st.BlockOf = blockOf
	st.Result.NumBlocks = nBlocks
	st.Result.BlockOf = blockOf
	return nil
}

func (partitionStage) Counters(st *PlanState) []Counter {
	units := 0
	if st.Collapsed != nil {
		units = len(st.Collapsed.Units)
	}
	return []Counter{
		{"blocks", float64(st.NumBlocks)},
		{"units", float64(units)},
	}
}

// autoBlocks picks a block count from the gate count.
func autoBlocks(gates int) int {
	b := gates / 60
	if b < 4 {
		b = 4
	}
	if b > 16 {
		b = 16
	}
	return b
}

// partitionNetlist splits the non-input nodes into blocks.
func partitionNetlist(nl *netlist.Netlist, k int, tol float64, seed int64) (map[netlist.NodeID]int, error) {
	var cells []netlist.NodeID
	cellIdx := map[netlist.NodeID]int{}
	var areas []float64
	for id := range nl.Nodes {
		node := nl.Node(netlist.NodeID(id))
		if node.Kind == netlist.KindInput {
			continue
		}
		cellIdx[netlist.NodeID(id)] = len(cells)
		cells = append(cells, netlist.NodeID(id))
		a := node.Area
		if a == 0 {
			a = 1
		}
		areas = append(areas, a)
	}
	h := &partition.Hypergraph{Area: areas}
	fo := nl.Fanouts()
	for id := range nl.Nodes {
		var pins []int
		if i, ok := cellIdx[netlist.NodeID(id)]; ok {
			pins = append(pins, i)
		}
		for _, f := range fo[id] {
			if i, ok := cellIdx[f]; ok {
				pins = append(pins, i)
			}
		}
		if len(pins) >= 2 {
			h.Nets = append(h.Nets, pins)
		}
	}
	h.Normalize()
	if k > len(cells) {
		k = len(cells)
		if k == 0 {
			return nil, fmt.Errorf("plan: nothing to partition")
		}
	}
	parts, err := partition.KWay(h, k, tol, seed)
	if err != nil {
		return nil, err
	}
	blockOf := make(map[netlist.NodeID]int, len(cells))
	for i, id := range cells {
		blockOf[id] = parts[i]
	}
	return blockOf, nil
}
