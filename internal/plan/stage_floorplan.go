package plan

import (
	"context"
	"fmt"
	"math"

	"lacret/internal/floorplan"
	"lacret/internal/netlist"
)

// floorplanStage sizes the blocks from the partition (applying BlockScale
// from floorplan expansion, whitespace, and hard-macro footprints) and
// places them with the sequence-pair annealer.
type floorplanStage struct{}

func (floorplanStage) Name() string { return stageFloorplan }

func (floorplanStage) Run(ctx context.Context, st *PlanState, cfg *Config) error {
	nl, tc, nBlocks := st.Netlist, st.Tech, st.NumBlocks
	gateArea := make([]float64, nBlocks) // functional-unit area per block
	ffArea := make([]float64, nBlocks)   // original flip-flop area per block
	for id, b := range st.BlockOf {
		node := nl.Node(id)
		switch node.Kind {
		case netlist.KindGate:
			gateArea[b] += node.Area
		case netlist.KindDFF:
			ffArea[b] += tc.FFArea
		}
	}
	hardSet := map[int]bool{}
	for _, b := range cfg.HardBlocks {
		if b < 0 || b >= nBlocks {
			return fmt.Errorf("plan: hard block index %d outside [0,%d)", b, nBlocks)
		}
		hardSet[b] = true
	}
	if cfg.HardSiteArea < 0 {
		return fmt.Errorf("plan: negative HardSiteArea")
	}
	blocks := make([]floorplan.Block, nBlocks)
	for b := 0; b < nBlocks; b++ {
		scale := 1.0
		if cfg.BlockScale != nil {
			if len(cfg.BlockScale) != nBlocks {
				return fmt.Errorf("plan: BlockScale has %d entries for %d blocks", len(cfg.BlockScale), nBlocks)
			}
			scale = cfg.BlockScale[b]
		}
		area := (gateArea[b] + ffArea[b]) * scale
		if area <= 0 {
			area = tc.UnitArea // empty block guard
		}
		blocks[b] = floorplan.Block{Name: fmt.Sprintf("blk%d", b), Area: area}
		if hardSet[b] {
			side := math.Sqrt(area * (1 + cfg.Whitespace))
			blocks[b].Hard = true
			blocks[b].W, blocks[b].H = side, side
		}
	}
	channel := cfg.ChannelWidth
	if channel == 0 {
		channel = 0.8 * math.Sqrt(tc.UnitArea)
	}
	fpNets := blockNets(nl, st.Collapsed, st.BlockOf, nBlocks)
	pl, err := floorplan.Place(blocks, fpNets, floorplan.Options{
		Seed: cfg.Seed, Moves: cfg.FloorplanMoves, Whitespace: cfg.Whitespace,
		Channel: channel,
	})
	if err != nil {
		return err
	}
	hard := make([]bool, nBlocks)
	for b := range hard {
		hard[b] = hardSet[b]
	}
	st.GateArea = gateArea
	st.HardBlock = hard
	st.Placement = pl
	st.Result.Placement = pl
	return nil
}

func (floorplanStage) Counters(st *PlanState) []Counter {
	var w, h float64
	if st.Placement != nil {
		w, h = st.Placement.ChipW, st.Placement.ChipH
	}
	return []Counter{
		{"blocks", float64(st.NumBlocks)},
		{"chip_w", w},
		{"chip_h", h},
	}
}

// blockNets extracts block-level 2-pin nets for floorplanning.
func blockNets(nl *netlist.Netlist, col *netlist.Collapsed, blockOf map[netlist.NodeID]int, nBlocks int) []floorplan.Net {
	seen := map[[2]int]bool{}
	var nets []floorplan.Net
	add := func(a, b int) {
		if a == b {
			return
		}
		if a > b {
			a, b = b, a
		}
		if !seen[[2]int{a, b}] {
			seen[[2]int{a, b}] = true
			nets = append(nets, floorplan.Net{a, b})
		}
	}
	for _, e := range col.Edges {
		ba, okA := blockOf[e.From]
		bb, okB := blockOf[e.To]
		if okA && okB {
			add(ba, bb)
		}
	}
	return nets
}
