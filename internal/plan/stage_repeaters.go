package plan

import (
	"context"
	"fmt"

	"lacret/internal/repeater"
)

// repeaterStage runs Lmax-constrained DP repeater insertion along every
// routed connection, reserving repeater area in the grid tiles. The
// resulting segment plans (one per Conn, nil for intra-tile hookups) are
// the interconnect units the graph stage turns into retiming vertices.
type repeaterStage struct{}

func (repeaterStage) Name() string { return stageRepeaters }

func (repeaterStage) Run(ctx context.Context, st *PlanState, cfg *Config) error {
	nl, g := st.Netlist, st.Grid
	ropt := repeater.Options{Reserve: true}
	plans := make([]*repeater.Plan, len(st.Conns))
	repeaters := 0
	for i, c := range st.Conns {
		if st.CellOfUnit[c.From] == c.SinkCell {
			continue // intra-tile: no wire to plan
		}
		tr := &st.Routing.Trees[st.NetOfUnit[c.From]]
		p, err := repeater.PlanConnection(g, st.Tech, tr, c.SinkCell, ropt)
		if err != nil {
			return fmt.Errorf("plan: repeater insertion for %s→%s: %v",
				nl.Node(c.From).Name, nl.Node(c.To).Name, err)
		}
		plans[i] = p
		repeaters += p.Repeaters
	}
	st.Result.RepeaterCount = repeaters
	st.RepeaterPlans = plans
	return nil
}

func (repeaterStage) Counters(st *PlanState) []Counter {
	return []Counter{{"repeaters", float64(st.Result.RepeaterCount)}}
}
