// Package graph provides the directed-graph primitives used throughout the
// planner: adjacency-list digraphs, topological ordering, strongly connected
// components, difference-constraint solving (Bellman–Ford), and the
// lexicographic Dijkstra used by retiming-constraint generation.
//
// Vertices are dense integer IDs in [0, N). All algorithms are deterministic:
// ties are broken by vertex ID so repeated runs produce identical results.
package graph

import "fmt"

// Edge is a directed edge with an integer weight (for retiming graphs the
// weight is a flip-flop count) and an auxiliary float payload (typically a
// delay or a cost, depending on the algorithm).
type Edge struct {
	From, To int
	// W is the integral edge weight (e.g. register count).
	W int
	// Cost is an auxiliary real-valued weight (e.g. delay).
	Cost float64
}

// Digraph is a directed multigraph over dense vertex IDs.
type Digraph struct {
	n     int
	edges []Edge
	// out[v] and in[v] hold indices into edges.
	out [][]int
	in  [][]int
}

// NewDigraph returns an empty digraph with n vertices.
func NewDigraph(n int) *Digraph {
	if n < 0 {
		panic(fmt.Sprintf("graph: negative vertex count %d", n))
	}
	return &Digraph{
		n:   n,
		out: make([][]int, n),
		in:  make([][]int, n),
	}
}

// N returns the number of vertices.
func (g *Digraph) N() int { return g.n }

// M returns the number of edges.
func (g *Digraph) M() int { return len(g.edges) }

// AddVertex appends a new vertex and returns its ID.
func (g *Digraph) AddVertex() int {
	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	g.n++
	return g.n - 1
}

// AddEdge appends a directed edge and returns its index.
func (g *Digraph) AddEdge(from, to, w int, cost float64) int {
	if from < 0 || from >= g.n || to < 0 || to >= g.n {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", from, to, g.n))
	}
	idx := len(g.edges)
	g.edges = append(g.edges, Edge{From: from, To: to, W: w, Cost: cost})
	g.out[from] = append(g.out[from], idx)
	g.in[to] = append(g.in[to], idx)
	return idx
}

// Edge returns the edge with index i.
func (g *Digraph) Edge(i int) Edge { return g.edges[i] }

// Edges returns all edges. The returned slice is owned by the graph and must
// not be modified.
func (g *Digraph) Edges() []Edge { return g.edges }

// SetEdgeW updates the integral weight of edge i.
func (g *Digraph) SetEdgeW(i, w int) { g.edges[i].W = w }

// SetEdgeCost updates the real cost of edge i.
func (g *Digraph) SetEdgeCost(i int, c float64) { g.edges[i].Cost = c }

// Out returns the indices of edges leaving v.
func (g *Digraph) Out(v int) []int { return g.out[v] }

// In returns the indices of edges entering v.
func (g *Digraph) In(v int) []int { return g.in[v] }

// OutDegree returns the number of edges leaving v.
func (g *Digraph) OutDegree(v int) int { return len(g.out[v]) }

// InDegree returns the number of edges entering v.
func (g *Digraph) InDegree(v int) int { return len(g.in[v]) }

// Clone returns a deep copy of the graph.
func (g *Digraph) Clone() *Digraph {
	c := &Digraph{
		n:     g.n,
		edges: append([]Edge(nil), g.edges...),
		out:   make([][]int, g.n),
		in:    make([][]int, g.n),
	}
	for v := 0; v < g.n; v++ {
		c.out[v] = append([]int(nil), g.out[v]...)
		c.in[v] = append([]int(nil), g.in[v]...)
	}
	return c
}

// TopoOrder returns a topological order of the subgraph induced by the edges
// for which keep returns true. If that subgraph has a cycle, ok is false and
// the returned order is the partial order discovered so far.
//
// Retiming uses this with keep = "edge weight is zero" to order the
// combinational subgraph.
func (g *Digraph) TopoOrder(keep func(Edge) bool) (order []int, ok bool) {
	indeg := make([]int, g.n)
	for _, e := range g.edges {
		if keep(e) {
			indeg[e.To]++
		}
	}
	queue := make([]int, 0, g.n)
	for v := 0; v < g.n; v++ {
		if indeg[v] == 0 {
			queue = append(queue, v)
		}
	}
	order = make([]int, 0, g.n)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for _, ei := range g.out[v] {
			e := g.edges[ei]
			if !keep(e) {
				continue
			}
			indeg[e.To]--
			if indeg[e.To] == 0 {
				queue = append(queue, e.To)
			}
		}
	}
	return order, len(order) == g.n
}

// SCC computes strongly connected components of the subgraph induced by edges
// for which keep returns true, using Tarjan's algorithm (iterative). It
// returns the component ID of every vertex and the number of components.
// Component IDs are in reverse topological order of the condensation.
func (g *Digraph) SCC(keep func(Edge) bool) (comp []int, ncomp int) {
	const unvisited = -1
	comp = make([]int, g.n)
	low := make([]int, g.n)
	disc := make([]int, g.n)
	onStack := make([]bool, g.n)
	for i := range comp {
		comp[i] = unvisited
		disc[i] = unvisited
	}
	var stack []int
	timer := 0

	type frame struct {
		v, ei int // vertex and position in its out list
	}
	for root := 0; root < g.n; root++ {
		if disc[root] != unvisited {
			continue
		}
		call := []frame{{root, 0}}
		disc[root] = timer
		low[root] = timer
		timer++
		stack = append(stack, root)
		onStack[root] = true
		for len(call) > 0 {
			f := &call[len(call)-1]
			v := f.v
			if f.ei < len(g.out[v]) {
				ei := g.out[v][f.ei]
				f.ei++
				e := g.edges[ei]
				if !keep(e) {
					continue
				}
				w := e.To
				if disc[w] == unvisited {
					disc[w] = timer
					low[w] = timer
					timer++
					stack = append(stack, w)
					onStack[w] = true
					call = append(call, frame{w, 0})
				} else if onStack[w] && disc[w] < low[v] {
					low[v] = disc[w]
				}
				continue
			}
			// Retreat.
			call = call[:len(call)-1]
			if len(call) > 0 {
				p := call[len(call)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
			if low[v] == disc[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = ncomp
					if w == v {
						break
					}
				}
				ncomp++
			}
		}
	}
	return comp, ncomp
}

// HasCycle reports whether the subgraph induced by keep contains a cycle.
func (g *Digraph) HasCycle(keep func(Edge) bool) bool {
	_, ok := g.TopoOrder(keep)
	return !ok
}
