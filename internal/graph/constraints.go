package graph

import (
	"fmt"
	"math"
)

// DiffConstraint encodes X[U] - X[V] <= Bound.
//
// A system of difference constraints is feasible iff the corresponding
// constraint graph has no negative cycle; see SolveDifference.
type DiffConstraint struct {
	U, V  int
	Bound float64
}

// SolveDifference solves the system {x[c.U] - x[c.V] <= c.Bound} over n
// variables with Bellman–Ford. It returns a feasible assignment (the
// shortest-path potentials from a virtual source connected to every vertex
// with zero-length arcs), or ok=false if the system is infeasible.
//
// The returned assignment is the component-wise maximum solution with
// x <= 0; any constant may be added to it.
func SolveDifference(n int, cons []DiffConstraint) (x []float64, ok bool) {
	// Constraint x[u] - x[v] <= b becomes arc v -> u with length b;
	// dist[u] <= dist[v] + b after relaxation.
	x = make([]float64, n) // virtual source: all start at 0
	for iter := 0; iter <= n; iter++ {
		changed := false
		for _, c := range cons {
			if c.U < 0 || c.U >= n || c.V < 0 || c.V >= n {
				panic(fmt.Sprintf("graph: constraint (%d,%d) out of range [0,%d)", c.U, c.V, n))
			}
			if nd := x[c.V] + c.Bound; nd < x[c.U]-1e-12 {
				x[c.U] = nd
				changed = true
			}
		}
		if !changed {
			return x, true
		}
	}
	return nil, false
}

// SolveDifferenceInt solves an integral system of difference constraints
// {x[us[i]] - x[vs[i]] <= bounds[i]} with integer bounds, returning an
// integral solution. ok=false if infeasible.
func SolveDifferenceInt(n int, us, vs, bounds []int) (x []int, ok bool) {
	x, ok, _ = SolveDifferenceIntSPFA(n, us, vs, bounds)
	return x, ok
}

// Worklist is a FIFO queue of vertex IDs with membership dedup: pushing a
// vertex already in the queue is a no-op, so each vertex appears at most
// once. It is the scan frontier of the SPFA-style difference-constraint
// solvers — only vertices whose label changed get rescanned, instead of the
// full O(n) sweeps of textbook Bellman–Ford. Buffers are reused across
// Reset, so a persistent solver runs its probes allocation-free.
type Worklist struct {
	q    []int32
	in   []bool
	head int
}

// NewWorklist returns a worklist over vertices [0, n).
func NewWorklist(n int) *Worklist {
	return &Worklist{q: make([]int32, 0, n), in: make([]bool, n)}
}

// Reset empties the worklist, keeping its buffers.
func (w *Worklist) Reset() {
	for _, v := range w.q[w.head:] {
		w.in[v] = false
	}
	w.q = w.q[:0]
	w.head = 0
}

// Push enqueues v unless it is already queued.
func (w *Worklist) Push(v int) {
	if w.in[v] {
		return
	}
	w.in[v] = true
	w.q = append(w.q, int32(v))
}

// Pop dequeues the next vertex, or returns ok=false when empty. The pop
// compacts lazily: consumed prefix space is reclaimed when the queue drains.
func (w *Worklist) Pop() (v int, ok bool) {
	if w.head >= len(w.q) {
		return 0, false
	}
	v = int(w.q[w.head])
	w.head++
	w.in[v] = false
	if w.head == len(w.q) {
		w.q = w.q[:0]
		w.head = 0
	}
	return v, true
}

// Len returns the number of queued vertices.
func (w *Worklist) Len() int { return len(w.q) - w.head }

// FindParentCycle looks for a cycle in a parent forest (parent[v] < 0 marks
// a root) and returns its vertices in parent order, or nil when the forest
// is acyclic. During difference-constraint relaxation the parent pointers
// record, for each vertex, the constraint that last tightened it; a cycle in
// that forest corresponds to a negative-weight constraint cycle, i.e. an
// infeasible system. O(n) with two color sweeps.
func FindParentCycle(parent []int32) []int32 {
	const (
		white = 0 // unvisited
		gray  = 1 // on the current walk
		black = 2 // finished, known cycle-free
	)
	color := make([]uint8, len(parent))
	for s := range parent {
		if color[s] != white {
			continue
		}
		// Walk up the parent chain, graying vertices; hitting gray means
		// the walk re-entered itself — extract the cycle.
		v := int32(s)
		for v >= 0 && color[v] == white {
			color[v] = gray
			v = parent[v]
		}
		if v >= 0 && color[v] == gray {
			cyc := []int32{v}
			for u := parent[v]; u != v; u = parent[u] {
				cyc = append(cyc, u)
			}
			return cyc
		}
		// Blacken the walked chain.
		u := int32(s)
		for u >= 0 && color[u] == gray {
			color[u] = black
			u = parent[u]
		}
	}
	return nil
}

// SolveDifferenceIntSPFA solves the same system as SolveDifferenceInt with
// a worklist (SPFA) instead of full Bellman–Ford passes, and detects
// infeasibility early: every n successful relaxations the parent forest is
// walked for a cycle (FindParentCycle), so a negative constraint cycle is
// reported as soon as the relaxation starts orbiting it rather than after
// n+1 full passes over every constraint — the case that dominates a
// binary search over clock periods, where most probes are infeasible.
// Between periodic checks, a per-vertex relaxation-path-length bound
// guarantees termination: every relaxation extends the parent walk by one
// arc, so a walk longer than n vertices must repeat a vertex, and a cycle
// of strict relaxations has negative weight.
//
// The returned assignment is the component-wise maximum solution with
// x <= 0 — identical to SolveDifferenceInt's. The third result counts
// successful relaxations.
func SolveDifferenceIntSPFA(n int, us, vs, bounds []int) (x []int, ok bool, relaxations int) {
	if len(us) != len(vs) || len(us) != len(bounds) {
		panic("graph: constraint slice length mismatch")
	}
	// CSR adjacency keyed by the V side: constraint x[u]-x[v] <= b is arc
	// v -> u of length b, rescanned whenever x[v] drops.
	head := make([]int32, n+1)
	for i := range vs {
		if us[i] < 0 || us[i] >= n || vs[i] < 0 || vs[i] >= n {
			panic(fmt.Sprintf("graph: constraint (%d,%d) out of range [0,%d)", us[i], vs[i], n))
		}
		head[vs[i]+1]++
	}
	for v := 0; v < n; v++ {
		head[v+1] += head[v]
	}
	arcU := make([]int32, len(us))
	arcB := make([]int, len(us))
	next := append([]int32(nil), head[:n]...)
	for i := range us {
		p := next[vs[i]]
		arcU[p], arcB[p] = int32(us[i]), bounds[i]
		next[vs[i]]++
	}
	x = make([]int, n)
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = -1
	}
	plen := make([]int32, n)
	wl := NewWorklist(n)
	for v := 0; v < n; v++ {
		if head[v] < head[v+1] {
			wl.Push(v)
		}
	}
	checkEvery := n
	if checkEvery < 64 {
		checkEvery = 64
	}
	sinceCheck := 0
	for {
		v, okPop := wl.Pop()
		if !okPop {
			return x, true, relaxations
		}
		xv, pv := x[v], plen[v]
		for p := head[v]; p < head[v+1]; p++ {
			u := arcU[p]
			if nd := xv + arcB[p]; nd < x[u] {
				x[u] = nd
				parent[u] = int32(v)
				relaxations++
				sinceCheck++
				if plen[u] = pv + 1; plen[u] > int32(n) {
					// plen is a fast over-approximation of the parent-walk
					// depth (stale ancestor updates can inflate it); confirm
					// against the forest before declaring a cycle, and
					// deflate to the true depth when it was a false alarm.
					if FindParentCycle(parent) != nil {
						return nil, false, relaxations
					}
					plen[u] = parentDepth(parent, u)
					sinceCheck = 0
				}
				wl.Push(int(u))
			}
		}
		if sinceCheck >= checkEvery {
			sinceCheck = 0
			if FindParentCycle(parent) != nil {
				return nil, false, relaxations
			}
		}
	}
}

// parentDepth returns the number of arcs on the walk from u to its root in
// an acyclic parent forest.
func parentDepth(parent []int32, u int32) int32 {
	var d int32
	for v := parent[u]; v >= 0; v = parent[v] {
		d++
	}
	return d
}

// WDDist is the per-destination result of WDFromSource: the minimum register
// count W over all paths from the source, and the maximum accumulated vertex
// delay D over paths attaining that minimum. Unreachable vertices have W=-1.
type WDDist struct {
	W int     // registers along a minimum-latency path
	D float64 // worst-case delay at minimum latency (endpoint delays included)
}

// WDSolver runs repeated WDFromSource sweeps over one graph, reusing its
// working buffers between sources. A fresh WDFromSource call allocates six
// vertex-sized slices; an all-pairs W/D build does n of them, so the solver
// turns O(n²) allocations into O(n). A solver serves one goroutine at a
// time — parallel sweeps use one solver per worker.
type WDSolver struct {
	g       *Digraph
	w       []int
	d       []float64
	indeg   []int
	queue   []int
	buckets [][]int
}

// NewWDSolver returns a solver bound to g.
func NewWDSolver(g *Digraph) *WDSolver {
	return &WDSolver{
		g:     g,
		w:     make([]int, g.n),
		d:     make([]float64, g.n),
		indeg: make([]int, g.n),
	}
}

// FromSource fills res (length g.N()) with the (W, D) labels from source s;
// delay[v] is the vertex delay. Semantics match WDFromSource.
//
// The computation is two-phase: a shortest-path pass on the nonnegative
// integer register counts, then a longest-path pass over the "tight"
// subgraph (edges on some minimum-weight path). Register counts are small
// integers, so the first phase uses Dial's bucket queue — a monotone scan of
// per-distance buckets — instead of a binary heap. The tight subgraph is
// acyclic whenever the input has no zero-weight cycle, which holds for any
// well-formed retiming graph (every cycle carries at least one register);
// this method panics otherwise.
func (sv *WDSolver) FromSource(s int, delay []float64, res []WDDist) {
	g := sv.g
	const unreach = -1
	w := sv.w
	for i := range w {
		w[i] = unreach
	}
	// Phase 1: bucket-queue shortest paths for W.
	w[s] = 0
	bk := sv.buckets
	for i := range bk {
		bk[i] = bk[i][:0]
	}
	push := func(key, v int) {
		for key >= len(bk) {
			bk = append(bk, nil)
		}
		bk[key] = append(bk[key], v)
	}
	push(0, s)
	for key := 0; key < len(bk); key++ {
		// Zero-weight edges append to the current bucket mid-scan; the
		// index loop picks those up.
		for i := 0; i < len(bk[key]); i++ {
			v := bk[key][i]
			if w[v] != key {
				continue // superseded by a shorter path
			}
			for _, ei := range g.out[v] {
				e := g.edges[ei]
				if e.W < 0 {
					panic("graph: WDFromSource requires nonnegative edge weights")
				}
				if nk := key + e.W; w[e.To] == unreach || nk < w[e.To] {
					w[e.To] = nk
					push(nk, e.To)
				}
			}
		}
	}
	sv.buckets = bk
	// Phase 2: longest delay over tight edges, in topological order of the
	// tight subgraph restricted to reachable vertices (Kahn's algorithm).
	indeg := sv.indeg
	for i := range indeg {
		indeg[i] = 0
	}
	for _, e := range g.edges {
		if w[e.From] != unreach && w[e.From]+e.W == w[e.To] {
			indeg[e.To]++
		}
	}
	d := sv.d
	for i := range d {
		d[i] = math.Inf(-1)
	}
	d[s] = delay[s]
	queue := sv.queue[:0]
	reachable := 0
	for v := 0; v < g.n; v++ {
		if w[v] == unreach {
			continue
		}
		reachable++
		if indeg[v] == 0 {
			queue = append(queue, v)
		}
	}
	processed := 0
	for qi := 0; qi < len(queue); qi++ {
		v := queue[qi]
		processed++
		for _, ei := range g.out[v] {
			e := g.edges[ei]
			if w[e.From]+e.W != w[e.To] {
				continue
			}
			if nd := d[v] + delay[e.To]; nd > d[e.To] {
				d[e.To] = nd
			}
			indeg[e.To]--
			if indeg[e.To] == 0 {
				queue = append(queue, e.To)
			}
		}
	}
	sv.queue = queue
	if processed != reachable {
		panic("graph: WDFromSource found a zero-weight cycle (combinational loop)")
	}
	for v := 0; v < g.n; v++ {
		if w[v] == unreach {
			res[v] = WDDist{W: -1, D: math.Inf(-1)}
		} else {
			res[v] = WDDist{W: w[v], D: d[v]}
		}
	}
}

// WDFromSource computes, for every vertex v reachable from s, the pair
// (W(s,v), D(s,v)) used by Leiserson–Saxe retiming: W is the minimum total
// edge weight (register count) of any s→v path, and D is the maximum total
// vertex delay over paths of weight exactly W. The delays of both endpoints
// are included in D.
//
// One-shot convenience over WDSolver; repeated sweeps over the same graph
// should hold a solver to amortize the buffer allocations.
func (g *Digraph) WDFromSource(s int, delay func(v int) float64) []WDDist {
	ds := make([]float64, g.n)
	for v := range ds {
		ds[v] = delay(v)
	}
	res := make([]WDDist, g.n)
	NewWDSolver(g).FromSource(s, ds, res)
	return res
}
