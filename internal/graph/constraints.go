package graph

import (
	"container/heap"
	"fmt"
	"math"
)

// DiffConstraint encodes X[U] - X[V] <= Bound.
//
// A system of difference constraints is feasible iff the corresponding
// constraint graph has no negative cycle; see SolveDifference.
type DiffConstraint struct {
	U, V  int
	Bound float64
}

// SolveDifference solves the system {x[c.U] - x[c.V] <= c.Bound} over n
// variables with Bellman–Ford. It returns a feasible assignment (the
// shortest-path potentials from a virtual source connected to every vertex
// with zero-length arcs), or ok=false if the system is infeasible.
//
// The returned assignment is the component-wise maximum solution with
// x <= 0; any constant may be added to it.
func SolveDifference(n int, cons []DiffConstraint) (x []float64, ok bool) {
	// Constraint x[u] - x[v] <= b becomes arc v -> u with length b;
	// dist[u] <= dist[v] + b after relaxation.
	x = make([]float64, n) // virtual source: all start at 0
	for iter := 0; iter <= n; iter++ {
		changed := false
		for _, c := range cons {
			if c.U < 0 || c.U >= n || c.V < 0 || c.V >= n {
				panic(fmt.Sprintf("graph: constraint (%d,%d) out of range [0,%d)", c.U, c.V, n))
			}
			if nd := x[c.V] + c.Bound; nd < x[c.U]-1e-12 {
				x[c.U] = nd
				changed = true
			}
		}
		if !changed {
			return x, true
		}
	}
	return nil, false
}

// SolveDifferenceInt solves an integral system of difference constraints
// {x[us[i]] - x[vs[i]] <= bounds[i]} with integer bounds, returning an
// integral solution. ok=false if infeasible.
func SolveDifferenceInt(n int, us, vs, bounds []int) (x []int, ok bool) {
	if len(us) != len(vs) || len(us) != len(bounds) {
		panic("graph: constraint slice length mismatch")
	}
	x = make([]int, n)
	for iter := 0; iter <= n; iter++ {
		changed := false
		for i := range us {
			if nd := x[vs[i]] + bounds[i]; nd < x[us[i]] {
				x[us[i]] = nd
				changed = true
			}
		}
		if !changed {
			return x, true
		}
	}
	return nil, false
}

// WDDist is the per-destination result of WDFromSource: the minimum register
// count W over all paths from the source, and the maximum accumulated vertex
// delay D over paths attaining that minimum. Unreachable vertices have W=-1.
type WDDist struct {
	W int     // registers along a minimum-latency path
	D float64 // worst-case delay at minimum latency (endpoint delays included)
}

// intHeap is a minimal binary heap of (vertex, key) pairs for Dijkstra.
type intHeapItem struct {
	v   int
	key int
}

type intHeap []intHeapItem

func (h intHeap) Len() int { return len(h) }
func (h intHeap) Less(i, j int) bool {
	if h[i].key != h[j].key {
		return h[i].key < h[j].key
	}
	return h[i].v < h[j].v
}
func (h intHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *intHeap) Push(x interface{}) { *h = append(*h, x.(intHeapItem)) }
func (h *intHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// WDFromSource computes, for every vertex v reachable from s, the pair
// (W(s,v), D(s,v)) used by Leiserson–Saxe retiming: W is the minimum total
// edge weight (register count) of any s→v path, and D is the maximum total
// vertex delay over paths of weight exactly W. The delays of both endpoints
// are included in D.
//
// The computation is two-phase: Dijkstra on the nonnegative register counts,
// then a longest-path pass over the "tight" subgraph (edges on some
// minimum-weight path). The tight subgraph is acyclic whenever the input has
// no zero-weight cycle, which holds for any well-formed retiming graph
// (every cycle carries at least one register); this method panics otherwise.
func (g *Digraph) WDFromSource(s int, delay func(v int) float64) []WDDist {
	const unreach = -1
	w := make([]int, g.n)
	for i := range w {
		w[i] = unreach
	}
	// Phase 1: Dijkstra for W.
	w[s] = 0
	h := &intHeap{{v: s, key: 0}}
	settled := make([]bool, g.n)
	for h.Len() > 0 {
		it := heap.Pop(h).(intHeapItem)
		if settled[it.v] || it.key != w[it.v] {
			continue
		}
		settled[it.v] = true
		for _, ei := range g.out[it.v] {
			e := g.edges[ei]
			if e.W < 0 {
				panic("graph: WDFromSource requires nonnegative edge weights")
			}
			if nk := w[it.v] + e.W; w[e.To] == unreach || nk < w[e.To] {
				w[e.To] = nk
				heap.Push(h, intHeapItem{v: e.To, key: nk})
			}
		}
	}
	// Phase 2: longest delay over tight edges, in topological order of the
	// tight subgraph restricted to reachable vertices.
	tight := func(e Edge) bool {
		return w[e.From] != unreach && w[e.From]+e.W == w[e.To]
	}
	// Kahn's algorithm over reachable vertices only.
	indeg := make([]int, g.n)
	for _, e := range g.edges {
		if tight(e) {
			indeg[e.To]++
		}
	}
	d := make([]float64, g.n)
	for i := range d {
		d[i] = math.Inf(-1)
	}
	d[s] = delay(s)
	queue := make([]int, 0, g.n)
	for v := 0; v < g.n; v++ {
		if w[v] != unreach && indeg[v] == 0 {
			queue = append(queue, v)
		}
	}
	processed := 0
	reachable := 0
	for v := 0; v < g.n; v++ {
		if w[v] != unreach {
			reachable++
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		processed++
		for _, ei := range g.out[v] {
			e := g.edges[ei]
			if !tight(e) {
				continue
			}
			if nd := d[v] + delay(e.To); nd > d[e.To] {
				d[e.To] = nd
			}
			indeg[e.To]--
			if indeg[e.To] == 0 {
				queue = append(queue, e.To)
			}
		}
	}
	if processed != reachable {
		panic("graph: WDFromSource found a zero-weight cycle (combinational loop)")
	}
	res := make([]WDDist, g.n)
	for v := 0; v < g.n; v++ {
		if w[v] == unreach {
			res[v] = WDDist{W: -1, D: math.Inf(-1)}
		} else {
			res[v] = WDDist{W: w[v], D: d[v]}
		}
	}
	return res
}
