package graph

import (
	"fmt"
	"math"
)

// DiffConstraint encodes X[U] - X[V] <= Bound.
//
// A system of difference constraints is feasible iff the corresponding
// constraint graph has no negative cycle; see SolveDifference.
type DiffConstraint struct {
	U, V  int
	Bound float64
}

// SolveDifference solves the system {x[c.U] - x[c.V] <= c.Bound} over n
// variables with Bellman–Ford. It returns a feasible assignment (the
// shortest-path potentials from a virtual source connected to every vertex
// with zero-length arcs), or ok=false if the system is infeasible.
//
// The returned assignment is the component-wise maximum solution with
// x <= 0; any constant may be added to it.
func SolveDifference(n int, cons []DiffConstraint) (x []float64, ok bool) {
	// Constraint x[u] - x[v] <= b becomes arc v -> u with length b;
	// dist[u] <= dist[v] + b after relaxation.
	x = make([]float64, n) // virtual source: all start at 0
	for iter := 0; iter <= n; iter++ {
		changed := false
		for _, c := range cons {
			if c.U < 0 || c.U >= n || c.V < 0 || c.V >= n {
				panic(fmt.Sprintf("graph: constraint (%d,%d) out of range [0,%d)", c.U, c.V, n))
			}
			if nd := x[c.V] + c.Bound; nd < x[c.U]-1e-12 {
				x[c.U] = nd
				changed = true
			}
		}
		if !changed {
			return x, true
		}
	}
	return nil, false
}

// SolveDifferenceInt solves an integral system of difference constraints
// {x[us[i]] - x[vs[i]] <= bounds[i]} with integer bounds, returning an
// integral solution. ok=false if infeasible.
func SolveDifferenceInt(n int, us, vs, bounds []int) (x []int, ok bool) {
	if len(us) != len(vs) || len(us) != len(bounds) {
		panic("graph: constraint slice length mismatch")
	}
	x = make([]int, n)
	for iter := 0; iter <= n; iter++ {
		changed := false
		for i := range us {
			if nd := x[vs[i]] + bounds[i]; nd < x[us[i]] {
				x[us[i]] = nd
				changed = true
			}
		}
		if !changed {
			return x, true
		}
	}
	return nil, false
}

// WDDist is the per-destination result of WDFromSource: the minimum register
// count W over all paths from the source, and the maximum accumulated vertex
// delay D over paths attaining that minimum. Unreachable vertices have W=-1.
type WDDist struct {
	W int     // registers along a minimum-latency path
	D float64 // worst-case delay at minimum latency (endpoint delays included)
}

// WDSolver runs repeated WDFromSource sweeps over one graph, reusing its
// working buffers between sources. A fresh WDFromSource call allocates six
// vertex-sized slices; an all-pairs W/D build does n of them, so the solver
// turns O(n²) allocations into O(n). A solver serves one goroutine at a
// time — parallel sweeps use one solver per worker.
type WDSolver struct {
	g       *Digraph
	w       []int
	d       []float64
	indeg   []int
	queue   []int
	buckets [][]int
}

// NewWDSolver returns a solver bound to g.
func NewWDSolver(g *Digraph) *WDSolver {
	return &WDSolver{
		g:     g,
		w:     make([]int, g.n),
		d:     make([]float64, g.n),
		indeg: make([]int, g.n),
	}
}

// FromSource fills res (length g.N()) with the (W, D) labels from source s;
// delay[v] is the vertex delay. Semantics match WDFromSource.
//
// The computation is two-phase: a shortest-path pass on the nonnegative
// integer register counts, then a longest-path pass over the "tight"
// subgraph (edges on some minimum-weight path). Register counts are small
// integers, so the first phase uses Dial's bucket queue — a monotone scan of
// per-distance buckets — instead of a binary heap. The tight subgraph is
// acyclic whenever the input has no zero-weight cycle, which holds for any
// well-formed retiming graph (every cycle carries at least one register);
// this method panics otherwise.
func (sv *WDSolver) FromSource(s int, delay []float64, res []WDDist) {
	g := sv.g
	const unreach = -1
	w := sv.w
	for i := range w {
		w[i] = unreach
	}
	// Phase 1: bucket-queue shortest paths for W.
	w[s] = 0
	bk := sv.buckets
	for i := range bk {
		bk[i] = bk[i][:0]
	}
	push := func(key, v int) {
		for key >= len(bk) {
			bk = append(bk, nil)
		}
		bk[key] = append(bk[key], v)
	}
	push(0, s)
	for key := 0; key < len(bk); key++ {
		// Zero-weight edges append to the current bucket mid-scan; the
		// index loop picks those up.
		for i := 0; i < len(bk[key]); i++ {
			v := bk[key][i]
			if w[v] != key {
				continue // superseded by a shorter path
			}
			for _, ei := range g.out[v] {
				e := g.edges[ei]
				if e.W < 0 {
					panic("graph: WDFromSource requires nonnegative edge weights")
				}
				if nk := key + e.W; w[e.To] == unreach || nk < w[e.To] {
					w[e.To] = nk
					push(nk, e.To)
				}
			}
		}
	}
	sv.buckets = bk
	// Phase 2: longest delay over tight edges, in topological order of the
	// tight subgraph restricted to reachable vertices (Kahn's algorithm).
	indeg := sv.indeg
	for i := range indeg {
		indeg[i] = 0
	}
	for _, e := range g.edges {
		if w[e.From] != unreach && w[e.From]+e.W == w[e.To] {
			indeg[e.To]++
		}
	}
	d := sv.d
	for i := range d {
		d[i] = math.Inf(-1)
	}
	d[s] = delay[s]
	queue := sv.queue[:0]
	reachable := 0
	for v := 0; v < g.n; v++ {
		if w[v] == unreach {
			continue
		}
		reachable++
		if indeg[v] == 0 {
			queue = append(queue, v)
		}
	}
	processed := 0
	for qi := 0; qi < len(queue); qi++ {
		v := queue[qi]
		processed++
		for _, ei := range g.out[v] {
			e := g.edges[ei]
			if w[e.From]+e.W != w[e.To] {
				continue
			}
			if nd := d[v] + delay[e.To]; nd > d[e.To] {
				d[e.To] = nd
			}
			indeg[e.To]--
			if indeg[e.To] == 0 {
				queue = append(queue, e.To)
			}
		}
	}
	sv.queue = queue
	if processed != reachable {
		panic("graph: WDFromSource found a zero-weight cycle (combinational loop)")
	}
	for v := 0; v < g.n; v++ {
		if w[v] == unreach {
			res[v] = WDDist{W: -1, D: math.Inf(-1)}
		} else {
			res[v] = WDDist{W: w[v], D: d[v]}
		}
	}
}

// WDFromSource computes, for every vertex v reachable from s, the pair
// (W(s,v), D(s,v)) used by Leiserson–Saxe retiming: W is the minimum total
// edge weight (register count) of any s→v path, and D is the maximum total
// vertex delay over paths of weight exactly W. The delays of both endpoints
// are included in D.
//
// One-shot convenience over WDSolver; repeated sweeps over the same graph
// should hold a solver to amortize the buffer allocations.
func (g *Digraph) WDFromSource(s int, delay func(v int) float64) []WDDist {
	ds := make([]float64, g.n)
	for v := range ds {
		ds[v] = delay(v)
	}
	res := make([]WDDist, g.n)
	NewWDSolver(g).FromSource(s, ds, res)
	return res
}
