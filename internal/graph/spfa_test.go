package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// referenceSolveDiffInt is the textbook n+1-pass Bellman–Ford the SPFA
// solver replaced, kept here as the oracle: both must return the identical
// component-wise maximum solution <= 0 and the identical verdict.
func referenceSolveDiffInt(n int, us, vs, bounds []int) ([]int, bool) {
	x := make([]int, n)
	for iter := 0; iter <= n; iter++ {
		changed := false
		for i := range us {
			if nd := x[vs[i]] + bounds[i]; nd < x[us[i]] {
				x[us[i]] = nd
				changed = true
			}
		}
		if !changed {
			return x, true
		}
	}
	return nil, false
}

func TestWorklistFIFOAndDedup(t *testing.T) {
	w := NewWorklist(4)
	w.Push(2)
	w.Push(0)
	w.Push(2) // duplicate: no-op
	if w.Len() != 2 {
		t.Fatalf("Len=%d, want 2", w.Len())
	}
	if v, ok := w.Pop(); !ok || v != 2 {
		t.Fatalf("Pop=%d,%v want 2", v, ok)
	}
	w.Push(2) // re-push after pop is allowed
	if v, ok := w.Pop(); !ok || v != 0 {
		t.Fatalf("Pop=%d,%v want 0", v, ok)
	}
	if v, ok := w.Pop(); !ok || v != 2 {
		t.Fatalf("Pop=%d,%v want 2", v, ok)
	}
	if _, ok := w.Pop(); ok {
		t.Fatal("Pop on empty should fail")
	}
	w.Push(1)
	w.Reset()
	if w.Len() != 0 {
		t.Fatalf("Len after Reset=%d", w.Len())
	}
	w.Push(1) // membership flags must have been cleared by Reset
	if w.Len() != 1 {
		t.Fatal("push after Reset lost")
	}
}

func TestFindParentCycle(t *testing.T) {
	// Forest: 1->0, 2->0, 3->1 (roots at -1). Acyclic.
	if cyc := FindParentCycle([]int32{-1, 0, 0, 1}); cyc != nil {
		t.Fatalf("acyclic forest reported cycle %v", cyc)
	}
	// 0->1->2->0 cycle plus a tail 3->0.
	cyc := FindParentCycle([]int32{1, 2, 0, 0})
	if len(cyc) != 3 {
		t.Fatalf("cycle=%v, want 3 vertices", cyc)
	}
	seen := map[int32]bool{}
	for _, v := range cyc {
		seen[v] = true
	}
	if !seen[0] || !seen[1] || !seen[2] {
		t.Fatalf("cycle=%v, want {0,1,2}", cyc)
	}
	// Self-loop.
	if cyc := FindParentCycle([]int32{-1, 1}); len(cyc) != 1 || cyc[0] != 1 {
		t.Fatalf("self-loop cycle=%v", cyc)
	}
}

// TestSPFAMatchesReference: on random systems (feasible and infeasible
// alike) the SPFA solver and the full-pass reference agree on the verdict
// and, when feasible, on the exact labeling.
func TestSPFAMatchesReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(12)
		m := rng.Intn(4 * n)
		us := make([]int, m)
		vs := make([]int, m)
		bs := make([]int, m)
		for i := 0; i < m; i++ {
			us[i], vs[i] = rng.Intn(n), rng.Intn(n)
			bs[i] = rng.Intn(7) - 3 // negative bounds make infeasibility common
		}
		wantX, wantOK := referenceSolveDiffInt(n, us, vs, bs)
		gotX, gotOK, _ := SolveDifferenceIntSPFA(n, us, vs, bs)
		if gotOK != wantOK {
			t.Logf("seed %d: verdict spfa=%v reference=%v", seed, gotOK, wantOK)
			return false
		}
		if !wantOK {
			return true
		}
		for i := range wantX {
			if gotX[i] != wantX[i] {
				t.Logf("seed %d: x[%d] spfa=%d reference=%d", seed, i, gotX[i], wantX[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestSPFAInfeasibleEarly: a negative two-cycle buried in a large benign
// system is detected without the relaxation orbiting far past the
// path-length bound — the early-exit case that dominates infeasible
// period probes.
func TestSPFAInfeasibleEarly(t *testing.T) {
	const n = 20000
	us := []int{0, 1}
	vs := []int{1, 0}
	bs := []int{-1, -1} // x0-x1<=-1 and x1-x0<=-1: negative cycle
	// Benign chain constraints over the rest of the system.
	for v := 2; v+1 < n; v++ {
		us = append(us, v+1)
		vs = append(vs, v)
		bs = append(bs, 0)
	}
	x, ok, relax := SolveDifferenceIntSPFA(n, us, vs, bs)
	if ok || x != nil {
		t.Fatal("negative cycle not detected")
	}
	// The cycle relaxes ~2 labels per orbit and trips the periodic parent
	// walk within O(n) relaxations; a regression to pass-counting would
	// need ~n passes over all ~n constraints first.
	if relax > 10*n {
		t.Fatalf("relaxations=%d, expected early negative-cycle exit (<= %d)", relax, 10*n)
	}
}

func TestSPFAInfeasibleTiny(t *testing.T) {
	// x0-x1 <= -1, x1-x2 <= 0, x2-x0 <= 0: cycle weight -1.
	_, ok, _ := SolveDifferenceIntSPFA(3, []int{0, 1, 2}, []int{1, 2, 0}, []int{-1, 0, 0})
	if ok {
		t.Fatal("infeasible system reported feasible")
	}
	// Relaxing the cycle to weight 0 makes it feasible.
	x, ok, _ := SolveDifferenceIntSPFA(3, []int{0, 1, 2}, []int{1, 2, 0}, []int{-1, 0, 1})
	if !ok {
		t.Fatal("feasible system reported infeasible")
	}
	if x[0]-x[1] > -1 || x[1]-x[2] > 0 || x[2]-x[0] > 1 {
		t.Fatalf("solution %v violates constraints", x)
	}
}
