package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDigraphBasics(t *testing.T) {
	g := NewDigraph(3)
	if g.N() != 3 || g.M() != 0 {
		t.Fatalf("got N=%d M=%d, want 3,0", g.N(), g.M())
	}
	e0 := g.AddEdge(0, 1, 2, 1.5)
	e1 := g.AddEdge(1, 2, 0, 0.5)
	g.AddEdge(2, 0, 1, 0)
	if g.M() != 3 {
		t.Fatalf("M=%d, want 3", g.M())
	}
	if e := g.Edge(e0); e.From != 0 || e.To != 1 || e.W != 2 || e.Cost != 1.5 {
		t.Fatalf("edge0 = %+v", e)
	}
	if got := g.OutDegree(1); got != 1 {
		t.Fatalf("outdeg(1)=%d, want 1", got)
	}
	if got := g.InDegree(2); got != 1 {
		t.Fatalf("indeg(2)=%d, want 1", got)
	}
	g.SetEdgeW(e1, 7)
	if g.Edge(e1).W != 7 {
		t.Fatalf("SetEdgeW failed")
	}
	g.SetEdgeCost(e1, 9)
	if g.Edge(e1).Cost != 9 {
		t.Fatalf("SetEdgeCost failed")
	}
	v := g.AddVertex()
	if v != 3 || g.N() != 4 {
		t.Fatalf("AddVertex -> %d, N=%d", v, g.N())
	}
}

func TestDigraphAddEdgeOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g := NewDigraph(2)
	g.AddEdge(0, 5, 0, 0)
}

func TestCloneIsDeep(t *testing.T) {
	g := NewDigraph(2)
	g.AddEdge(0, 1, 1, 1)
	c := g.Clone()
	c.SetEdgeW(0, 99)
	c.AddEdge(1, 0, 0, 0)
	if g.Edge(0).W != 1 {
		t.Fatal("clone shares edge storage")
	}
	if g.M() != 1 {
		t.Fatal("clone shares edge slice")
	}
}

func TestTopoOrderDAG(t *testing.T) {
	g := NewDigraph(4)
	g.AddEdge(0, 1, 0, 0)
	g.AddEdge(0, 2, 0, 0)
	g.AddEdge(1, 3, 0, 0)
	g.AddEdge(2, 3, 0, 0)
	order, ok := g.TopoOrder(func(Edge) bool { return true })
	if !ok {
		t.Fatal("DAG reported cyclic")
	}
	pos := make(map[int]int)
	for i, v := range order {
		pos[v] = i
	}
	for _, e := range g.Edges() {
		if pos[e.From] >= pos[e.To] {
			t.Fatalf("edge (%d,%d) violates topo order %v", e.From, e.To, order)
		}
	}
}

func TestTopoOrderCycleDetected(t *testing.T) {
	g := NewDigraph(3)
	g.AddEdge(0, 1, 0, 0)
	g.AddEdge(1, 2, 0, 0)
	g.AddEdge(2, 0, 0, 0)
	if _, ok := g.TopoOrder(func(Edge) bool { return true }); ok {
		t.Fatal("cycle not detected")
	}
	// Excluding the back edge makes it acyclic.
	if _, ok := g.TopoOrder(func(e Edge) bool { return !(e.From == 2 && e.To == 0) }); !ok {
		t.Fatal("filtered subgraph should be acyclic")
	}
}

func TestTopoOrderFilteredByWeight(t *testing.T) {
	// Cycle exists but carries one weighted edge; zero-weight subgraph is
	// a DAG — exactly the retiming well-formedness condition.
	g := NewDigraph(3)
	g.AddEdge(0, 1, 0, 0)
	g.AddEdge(1, 2, 0, 0)
	g.AddEdge(2, 0, 1, 0)
	if _, ok := g.TopoOrder(func(e Edge) bool { return e.W == 0 }); !ok {
		t.Fatal("zero-weight subgraph should be acyclic")
	}
	if !g.HasCycle(func(Edge) bool { return true }) {
		t.Fatal("full graph should be cyclic")
	}
}

func TestSCC(t *testing.T) {
	// Two SCCs: {0,1,2} and {3}; 4 isolated.
	g := NewDigraph(5)
	g.AddEdge(0, 1, 0, 0)
	g.AddEdge(1, 2, 0, 0)
	g.AddEdge(2, 0, 0, 0)
	g.AddEdge(2, 3, 0, 0)
	comp, n := g.SCC(func(Edge) bool { return true })
	if n != 3 {
		t.Fatalf("ncomp=%d, want 3", n)
	}
	if comp[0] != comp[1] || comp[1] != comp[2] {
		t.Fatalf("0,1,2 should share a component: %v", comp)
	}
	if comp[3] == comp[0] || comp[4] == comp[0] || comp[3] == comp[4] {
		t.Fatalf("3 and 4 should be singleton components: %v", comp)
	}
}

func TestSCCFiltered(t *testing.T) {
	g := NewDigraph(2)
	g.AddEdge(0, 1, 1, 0)
	g.AddEdge(1, 0, 0, 0)
	comp, n := g.SCC(func(e Edge) bool { return e.W == 0 })
	if n != 2 || comp[0] == comp[1] {
		t.Fatalf("filtered SCC wrong: comp=%v n=%d", comp, n)
	}
}

func TestSolveDifferenceFeasible(t *testing.T) {
	// x0 - x1 <= 3; x1 - x2 <= -2; x2 - x0 <= 0 (cycle sum 1 >= 0: feasible)
	cons := []DiffConstraint{{0, 1, 3}, {1, 2, -2}, {2, 0, 0}}
	x, ok := SolveDifference(3, cons)
	if !ok {
		t.Fatal("feasible system reported infeasible")
	}
	for _, c := range cons {
		if x[c.U]-x[c.V] > c.Bound+1e-9 {
			t.Fatalf("constraint violated: x%d-x%d=%g > %g", c.U, c.V, x[c.U]-x[c.V], c.Bound)
		}
	}
}

func TestSolveDifferenceInfeasible(t *testing.T) {
	// Negative cycle: x0-x1<=-1, x1-x0<=-1.
	if _, ok := SolveDifference(2, []DiffConstraint{{0, 1, -1}, {1, 0, -1}}); ok {
		t.Fatal("infeasible system reported feasible")
	}
}

func TestSolveDifferenceIntMatchesFloat(t *testing.T) {
	us := []int{0, 1, 2, 0}
	vs := []int{1, 2, 0, 2}
	bs := []int{2, -1, 0, 5}
	x, ok := SolveDifferenceInt(3, us, vs, bs)
	if !ok {
		t.Fatal("infeasible")
	}
	for i := range us {
		if x[us[i]]-x[vs[i]] > bs[i] {
			t.Fatalf("violated constraint %d", i)
		}
	}
}

func TestSolveDifferenceIntInfeasible(t *testing.T) {
	if _, ok := SolveDifferenceInt(2, []int{0, 1}, []int{1, 0}, []int{0, -1}); ok {
		t.Fatal("negative cycle accepted")
	}
}

// TestSolveDifferenceProperty: random feasible-by-construction systems are
// reported feasible, and the returned assignment satisfies every constraint.
func TestSolveDifferenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		// Generate a hidden assignment; constraints derived from it with
		// nonnegative slack are guaranteed feasible.
		hidden := make([]float64, n)
		for i := range hidden {
			hidden[i] = rng.Float64()*20 - 10
		}
		m := 1 + rng.Intn(50)
		cons := make([]DiffConstraint, m)
		for i := range cons {
			u, v := rng.Intn(n), rng.Intn(n)
			cons[i] = DiffConstraint{U: u, V: v, Bound: hidden[u] - hidden[v] + rng.Float64()*3}
		}
		x, ok := SolveDifference(n, cons)
		if !ok {
			return false
		}
		for _, c := range cons {
			if x[c.U]-x[c.V] > c.Bound+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestWDFromSourceChain(t *testing.T) {
	// 0 -w1-> 1 -w0-> 2; delays 1,2,3.
	g := NewDigraph(3)
	g.AddEdge(0, 1, 1, 0)
	g.AddEdge(1, 2, 0, 0)
	delay := func(v int) float64 { return float64(v + 1) }
	wd := g.WDFromSource(0, delay)
	if wd[0].W != 0 || wd[0].D != 1 {
		t.Fatalf("wd[0]=%+v", wd[0])
	}
	if wd[1].W != 1 || wd[1].D != 3 {
		t.Fatalf("wd[1]=%+v", wd[1])
	}
	if wd[2].W != 1 || wd[2].D != 6 {
		t.Fatalf("wd[2]=%+v", wd[2])
	}
}

func TestWDFromSourceMaxDelayAtMinWeight(t *testing.T) {
	// Two 0-weight paths 0->3: via 1 (delay 5) and via 2 (delay 1).
	// D must take the worse (larger) one. A cheaper-W path does not exist.
	g := NewDigraph(4)
	g.AddEdge(0, 1, 0, 0)
	g.AddEdge(1, 3, 0, 0)
	g.AddEdge(0, 2, 0, 0)
	g.AddEdge(2, 3, 0, 0)
	delays := []float64{1, 5, 1, 1}
	wd := g.WDFromSource(0, func(v int) float64 { return delays[v] })
	if wd[3].W != 0 || wd[3].D != 7 {
		t.Fatalf("wd[3]=%+v, want {0 7}", wd[3])
	}
}

func TestWDFromSourcePrefersLowerW(t *testing.T) {
	// 0->3 via 1: weight 0, delay huge. Via 2: weight 1, small delay.
	// W must be 0 and D the delay of the weight-0 path.
	g := NewDigraph(4)
	g.AddEdge(0, 1, 0, 0)
	g.AddEdge(1, 3, 0, 0)
	g.AddEdge(0, 2, 1, 0)
	g.AddEdge(2, 3, 0, 0)
	delays := []float64{1, 100, 1, 1}
	wd := g.WDFromSource(0, func(v int) float64 { return delays[v] })
	if wd[3].W != 0 || wd[3].D != 102 {
		t.Fatalf("wd[3]=%+v, want {0 102}", wd[3])
	}
}

func TestWDFromSourceUnreachable(t *testing.T) {
	g := NewDigraph(3)
	g.AddEdge(0, 1, 0, 0)
	wd := g.WDFromSource(0, func(int) float64 { return 1 })
	if wd[2].W != -1 {
		t.Fatalf("unreachable vertex has W=%d, want -1", wd[2].W)
	}
}

func TestWDFromSourceCycleThroughRegisters(t *testing.T) {
	// Cycle 0->1->0 with one register: fine; W(0,0) stays 0 (trivial path).
	g := NewDigraph(2)
	g.AddEdge(0, 1, 0, 0)
	g.AddEdge(1, 0, 1, 0)
	wd := g.WDFromSource(0, func(int) float64 { return 2 })
	if wd[0].W != 0 || wd[0].D != 2 {
		t.Fatalf("wd[0]=%+v", wd[0])
	}
	if wd[1].W != 0 || wd[1].D != 4 {
		t.Fatalf("wd[1]=%+v", wd[1])
	}
}

func TestWDFromSourceCombinationalCyclePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on zero-weight cycle")
		}
	}()
	g := NewDigraph(2)
	g.AddEdge(0, 1, 0, 0)
	g.AddEdge(1, 0, 0, 0)
	g.WDFromSource(0, func(int) float64 { return 1 })
}

// TestWDFromSourceAgainstBruteForce cross-checks W/D against exhaustive path
// enumeration on small random register-positive graphs.
func TestWDFromSourceAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(6)
		g := NewDigraph(n)
		delays := make([]float64, n)
		for i := range delays {
			delays[i] = float64(1 + rng.Intn(5))
		}
		// Random edges; forward (i<j) edges may have weight 0, back edges
		// must carry a register to keep zero-weight subgraph acyclic.
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == j || rng.Float64() < 0.5 {
					continue
				}
				w := rng.Intn(2)
				if j < i {
					w = 1 + rng.Intn(2)
				}
				g.AddEdge(i, j, w, 0)
			}
		}
		got := g.WDFromSource(0, func(v int) float64 { return delays[v] })
		// Brute force: BFS over (vertex, registers) states up to a register
		// budget; track max delay per (v, w) and then min-w per v.
		type state struct{ v, w int }
		best := map[state]float64{{0, 0}: delays[0]}
		maxW := 2*n + 4
		for changed := true; changed; {
			changed = false
			for st, d := range best {
				for _, ei := range g.Out(st.v) {
					e := g.Edge(ei)
					nw := st.w + e.W
					if nw > maxW {
						continue
					}
					ns := state{e.To, nw}
					nd := d + delays[e.To]
					if old, ok := best[ns]; !ok || nd > old+1e-12 {
						best[ns] = nd
						changed = true
					}
				}
			}
		}
		for v := 0; v < n; v++ {
			wantW, wantD := -1, 0.0
			for st, d := range best {
				if st.v != v {
					continue
				}
				if wantW == -1 || st.w < wantW || (st.w == wantW && d > wantD) {
					wantW, wantD = st.w, d
				}
			}
			if got[v].W != wantW {
				t.Fatalf("trial %d: W(0,%d)=%d, want %d", trial, v, got[v].W, wantW)
			}
			if wantW >= 0 && got[v].D != wantD {
				t.Fatalf("trial %d: D(0,%d)=%g, want %g", trial, v, got[v].D, wantD)
			}
		}
	}
}
