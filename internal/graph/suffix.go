package graph

import "math"

// DelaySuffixBound returns, per vertex v, an upper bound on the total delay
// of the vertices strictly after v on any path leaving v (so
// delay[v] + suffix[v] bounds the delay of every path starting at v,
// endpoints included). The bound is exact on the acyclic part of the graph
// (a reverse-topological longest-delay DP over the SCC condensation) and
// +Inf for every vertex inside — or reaching — a cyclic strongly connected
// component, where the longest simple path is not tractable.
//
// The bound ignores edge weights entirely: it holds for any path, in
// particular for the register-minimal paths whose delays the W/D sweeps
// maximize. That is what makes it a sound pruning certificate for the
// delay-cut sweeps (FromSourceAbove): if delay[s] + suffix[s] <= cut, no
// path out of s can accumulate delay above cut.
func (g *Digraph) DelaySuffixBound(delay []float64) []float64 {
	comp, ncomp := g.SCC(func(Edge) bool { return true })
	cyclic := make([]bool, ncomp)
	size := make([]int, ncomp)
	for v := 0; v < g.n; v++ {
		size[comp[v]]++
	}
	for c, s := range size {
		if s > 1 {
			cyclic[c] = true
		}
	}
	for _, e := range g.edges {
		if e.From == e.To {
			cyclic[comp[e.From]] = true
		}
	}
	// Component IDs are in reverse topological order of the condensation
	// (sinks first), so scanning vertices grouped by ascending component ID
	// sees every out-neighbor's suffix before it is needed. Bucket the
	// vertices by component with a counting pass.
	start := make([]int, ncomp+1)
	for v := 0; v < g.n; v++ {
		start[comp[v]+1]++
	}
	for c := 0; c < ncomp; c++ {
		start[c+1] += start[c]
	}
	order := make([]int, g.n)
	fill := append([]int(nil), start[:ncomp]...)
	for v := 0; v < g.n; v++ {
		order[fill[comp[v]]] = v
		fill[comp[v]]++
	}
	suffix := make([]float64, g.n)
	for _, v := range order {
		if cyclic[comp[v]] {
			suffix[v] = math.Inf(1)
			continue
		}
		s := 0.0
		for _, ei := range g.out[v] {
			t := g.edges[ei].To
			// comp[t] < comp[v] here (acyclic singleton, no self-loop),
			// so suffix[t] is final.
			if cand := delay[t] + suffix[t]; cand > s {
				s = cand
			}
		}
		suffix[v] = s
	}
	return suffix
}

// FromSourceAbove is FromSource with a delay-pruned frontier for consumers
// that only care about destinations v with D(s,v) > cut. suffix must come
// from DelaySuffixBound over the same graph and delays.
//
// Two prunes apply, both certified by the suffix bounds:
//
//   - Source abandonment: when delay[s] + suffix[s] <= cut, no path out of
//     s can exceed the cut, so the sweep is skipped entirely and the method
//     reports swept=false with res untouched.
//   - Frontier pruning: during the longest-delay phase, a vertex v whose
//     accumulated delay cannot be extended past the cut
//     (d[v] + suffix[v] <= cut) does not propagate its delay. Descendants
//     may end up with understated D values, but only where the true value
//     is itself <= cut: any path P with delay(P) > cut contains no prunable
//     vertex (for every y on P, d[y] >= delay of P's prefix and suffix[y]
//     >= delay of P's remainder, so d[y] + suffix[y] >= delay(P) > cut, by
//     induction along P), hence its full delay is propagated.
//
// Consequently every res[v].D strictly above cut is exactly the FromSource
// value, every other res[v].D is <= cut (possibly understated), and the W
// labels — whose phase is never pruned — are always exact.
func (sv *WDSolver) FromSourceAbove(s int, delay []float64, cut float64, suffix []float64, res []WDDist) (swept bool) {
	if delay[s]+suffix[s] <= cut {
		return false
	}
	g := sv.g
	const unreach = -1
	w := sv.w
	for i := range w {
		w[i] = unreach
	}
	// Phase 1: bucket-queue shortest paths for W — identical to FromSource
	// (pruning here would corrupt the register counts and the tightness
	// tests downstream consumers share with the dense matrices).
	w[s] = 0
	bk := sv.buckets
	for i := range bk {
		bk[i] = bk[i][:0]
	}
	push := func(key, v int) {
		for key >= len(bk) {
			bk = append(bk, nil)
		}
		bk[key] = append(bk[key], v)
	}
	push(0, s)
	for key := 0; key < len(bk); key++ {
		for i := 0; i < len(bk[key]); i++ {
			v := bk[key][i]
			if w[v] != key {
				continue
			}
			for _, ei := range g.out[v] {
				e := g.edges[ei]
				if e.W < 0 {
					panic("graph: WDFromSource requires nonnegative edge weights")
				}
				if nk := key + e.W; w[e.To] == unreach || nk < w[e.To] {
					w[e.To] = nk
					push(nk, e.To)
				}
			}
		}
	}
	sv.buckets = bk
	// Phase 2: longest delay over tight edges. The topological traversal
	// (indegree bookkeeping) runs in full; only the delay propagation from
	// prunable vertices is skipped.
	indeg := sv.indeg
	for i := range indeg {
		indeg[i] = 0
	}
	for _, e := range g.edges {
		if w[e.From] != unreach && w[e.From]+e.W == w[e.To] {
			indeg[e.To]++
		}
	}
	d := sv.d
	for i := range d {
		d[i] = math.Inf(-1)
	}
	d[s] = delay[s]
	queue := sv.queue[:0]
	reachable := 0
	for v := 0; v < g.n; v++ {
		if w[v] == unreach {
			continue
		}
		reachable++
		if indeg[v] == 0 {
			queue = append(queue, v)
		}
	}
	processed := 0
	for qi := 0; qi < len(queue); qi++ {
		v := queue[qi]
		processed++
		propagate := d[v]+suffix[v] > cut
		for _, ei := range g.out[v] {
			e := g.edges[ei]
			if w[e.From]+e.W != w[e.To] {
				continue
			}
			if propagate {
				if nd := d[v] + delay[e.To]; nd > d[e.To] {
					d[e.To] = nd
				}
			}
			indeg[e.To]--
			if indeg[e.To] == 0 {
				queue = append(queue, e.To)
			}
		}
	}
	sv.queue = queue
	if processed != reachable {
		panic("graph: WDFromSource found a zero-weight cycle (combinational loop)")
	}
	for v := 0; v < g.n; v++ {
		if w[v] == unreach {
			res[v] = WDDist{W: -1, D: math.Inf(-1)}
		} else {
			res[v] = WDDist{W: w[v], D: d[v]}
		}
	}
	return true
}
