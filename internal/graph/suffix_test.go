package graph

import (
	"math"
	"math/rand"
	"testing"
)

func TestDelaySuffixBoundDAG(t *testing.T) {
	// 0 -> 1 -> 2, 0 -> 2. delays 1, 2, 4.
	g := NewDigraph(3)
	g.AddEdge(0, 1, 1, 0)
	g.AddEdge(1, 2, 0, 0)
	g.AddEdge(0, 2, 1, 0)
	delay := []float64{1, 2, 4}
	suf := g.DelaySuffixBound(delay)
	// From 0 the worst continuation is 1 then 2 (2+4=6); from 1 it is 2 (4).
	if suf[0] != 6 || suf[1] != 4 || suf[2] != 0 {
		t.Fatalf("suffix = %v, want [6 4 0]", suf)
	}
}

func TestDelaySuffixBoundCyclic(t *testing.T) {
	// 0 -> 1 <-> 2 -> 3, plus an isolated self-loop at 4.
	g := NewDigraph(5)
	g.AddEdge(0, 1, 1, 0)
	g.AddEdge(1, 2, 1, 0)
	g.AddEdge(2, 1, 1, 0)
	g.AddEdge(2, 3, 1, 0)
	g.AddEdge(4, 4, 1, 0)
	delay := []float64{1, 1, 1, 1, 1}
	suf := g.DelaySuffixBound(delay)
	// 0 reaches the {1,2} cycle; 1 and 2 are inside it; 4 self-loops.
	for _, v := range []int{0, 1, 2, 4} {
		if !math.IsInf(suf[v], 1) {
			t.Fatalf("suffix[%d] = %v, want +Inf", v, suf[v])
		}
	}
	if suf[3] != 0 {
		t.Fatalf("suffix[3] = %v, want 0", suf[3])
	}
}

// TestDelaySuffixBoundIsBound checks the defining property on random graphs:
// delay[s] + suffix[s] bounds every D(s,v) from a full sweep.
func TestDelaySuffixBoundIsBound(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g, delay := randomRetimingDigraph(rng, 30)
		suf := g.DelaySuffixBound(delay)
		sv := NewWDSolver(g)
		res := make([]WDDist, g.N())
		for s := 0; s < g.N(); s++ {
			sv.FromSource(s, delay, res)
			for v, r := range res {
				if r.W < 0 {
					continue
				}
				if r.D > delay[s]+suf[s]+1e-12 {
					t.Fatalf("seed %d: D(%d,%d)=%g exceeds bound %g",
						seed, s, v, r.D, delay[s]+suf[s])
				}
			}
		}
	}
}

// TestFromSourceAboveMatchesFromSource pins the pruned sweep's contract on
// random graphs: W labels are always exact, every D strictly above the cut
// equals the unpruned value, every other D does not exceed the cut, and a
// sweep is only abandoned when the unpruned row has nothing above the cut.
func TestFromSourceAboveMatchesFromSource(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g, delay := randomRetimingDigraph(rng, 25)
		suf := g.DelaySuffixBound(delay)
		full := NewWDSolver(g)
		pruned := NewWDSolver(g)
		want := make([]WDDist, g.N())
		got := make([]WDDist, g.N())
		maxD := 0.0
		for v := range delay {
			if delay[v] > maxD {
				maxD = delay[v]
			}
		}
		for _, cut := range []float64{0, maxD, 2 * maxD, 5 * maxD} {
			for s := 0; s < g.N(); s++ {
				full.FromSource(s, delay, want)
				if !pruned.FromSourceAbove(s, delay, cut, suf, got) {
					for v, r := range want {
						if r.W >= 0 && r.D > cut {
							t.Fatalf("seed %d cut %g: source %d abandoned but D(%d,%d)=%g > cut",
								seed, cut, s, s, v, r.D)
						}
					}
					continue
				}
				for v := range want {
					if got[v].W != want[v].W {
						t.Fatalf("seed %d cut %g: W(%d,%d) = %d, want %d",
							seed, cut, s, v, got[v].W, want[v].W)
					}
					if want[v].D > cut && got[v].D != want[v].D {
						t.Fatalf("seed %d cut %g: D(%d,%d) = %g, want %g",
							seed, cut, s, v, got[v].D, want[v].D)
					}
					if want[v].D <= cut && got[v].D > cut {
						t.Fatalf("seed %d cut %g: D(%d,%d) = %g overstates value %g past the cut",
							seed, cut, s, v, got[v].D, want[v].D)
					}
				}
			}
		}
	}
}

// randomRetimingDigraph builds a random digraph where every cycle carries at
// least one register (edges closing a "back" range get weight >= 1), the
// well-formedness the W/D sweeps require.
func randomRetimingDigraph(rng *rand.Rand, n int) (*Digraph, []float64) {
	g := NewDigraph(n)
	delay := make([]float64, n)
	for v := range delay {
		delay[v] = 0.5 + rng.Float64()*4.5
	}
	m := n * 3
	for i := 0; i < m; i++ {
		u := rng.Intn(n)
		v := rng.Intn(n)
		if u == v {
			continue
		}
		w := 0
		if v <= u { // back edge in vertex order: force a register
			w = 1 + rng.Intn(2)
		} else if rng.Intn(3) == 0 {
			w = rng.Intn(3)
		}
		g.AddEdge(u, v, w, 0)
	}
	return g, delay
}
