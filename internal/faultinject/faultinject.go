// Package faultinject provides deterministic fault-injection harnesses for
// the planning pipeline: contexts that cancel themselves at the Nth
// checkpoint observation, and stage wrappers that panic on demand. Both are
// count-based rather than time-based, so every injected failure lands at
// the same place on every run — the tests enumerate the pipeline's
// checkpoints exhaustively instead of racing a timer.
package faultinject

import (
	"context"
	"sync/atomic"

	"lacret/internal/plan"
)

// Ctx is a context.Context that cancels itself the Nth time its Err method
// is consulted. It wraps a real cancelable context, so Done returns a live
// channel and contexts derived from it (the pipeline's per-stage deadline
// children) observe the cancellation through the usual propagation.
type Ctx struct {
	context.Context
	cancel context.CancelFunc
	n      int64
	hits   atomic.Int64
}

// CancelAtNth returns a context that cancels itself at the nth Err
// observation (1-based). Every checkpoint in the planning stack — stage
// boundaries, period-search probes, rip-up rounds, LAC rounds, flow phases
// — consults Err exactly once, so n indexes the checkpoints in execution
// order and a run under CancelAtNth(n) dies deterministically at the nth
// one. Pass a number larger than any run's checkpoint count to count
// checkpoints without firing (see Hits).
func CancelAtNth(n int) *Ctx {
	inner, cancel := context.WithCancel(context.Background())
	return &Ctx{Context: inner, cancel: cancel, n: int64(n)}
}

// Err counts the observation and, at the Nth, cancels the context before
// reporting its state.
func (c *Ctx) Err() error {
	if c.hits.Add(1) >= c.n {
		c.cancel()
	}
	return c.Context.Err()
}

// Hits reports how many times Err has been consulted so far.
func (c *Ctx) Hits() int { return int(c.hits.Load()) }

// Cancel releases the context's resources; call it when done with the Ctx.
func (c *Ctx) Cancel() { c.cancel() }

// PanicStage wraps a pipeline stage so that running it panics with Value,
// for exercising the pipeline's panic containment. Name (and Counters,
// when the wrapped stage reports any) delegate to the wrapped stage.
type PanicStage struct {
	plan.Stage
	Value interface{}
}

// Run panics with the configured value.
func (p PanicStage) Run(ctx context.Context, st *plan.PlanState, cfg *plan.Config) error {
	panic(p.Value)
}

// WithPanicAt returns a copy of stages in which the stage with the given
// name is wrapped to panic with v when run; all other stages are passed
// through unchanged.
func WithPanicAt(stages []plan.Stage, name string, v interface{}) []plan.Stage {
	out := make([]plan.Stage, len(stages))
	for i, s := range stages {
		if s.Name() == name {
			out[i] = PanicStage{Stage: s, Value: v}
		} else {
			out[i] = s
		}
	}
	return out
}
