package faultinject

import (
	"bytes"
	"context"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"lacret/internal/job"
)

func req(circuit string) job.PlanRequest {
	r := job.PlanRequest{Source: job.Source{Circuit: circuit}}
	r.Normalize()
	return r
}

// reportBytes is deliberately indented: the crash contract promises the
// stored report back byte-for-byte, whitespace included.
var reportBytes = []byte("{\n  \"tool\": \"lacretd\"\n}\n")

// scenarioAcks records which store operations were acknowledged (returned
// nil) before the injected fault stopped the scenario. Acknowledged is the
// durability promise: an acked operation must survive any later crash.
type scenarioAcks struct {
	a1, a2, ck, t1 bool
}

const (
	idJ1 = "j1-aaaaaaaaaaaa"
	idJ2 = "j2-bbbbbbbbbbbb"
)

// storeScenario is the fixed store workload the crash enumeration replays:
// open, accept two jobs, checkpoint the second, settle the first with a
// report, close. It stops at the first error, returning what was acked.
func storeScenario(fsys job.FS, dir string) (scenarioAcks, error) {
	var acks scenarioAcks
	s, _, err := job.OpenStore(fsys, dir)
	if err != nil {
		return acks, err
	}
	defer s.Close()
	r1, r2 := req("s400"), req("s953")
	if err := s.Accept(idJ1, r1.Digest(), &r1); err != nil {
		return acks, err
	}
	acks.a1 = true
	if err := s.Accept(idJ2, r2.Digest(), &r2); err != nil {
		return acks, err
	}
	acks.a2 = true
	if err := s.SaveCheckpoint(idJ2, []byte("ckpt-bytes")); err != nil {
		return acks, err
	}
	acks.ck = true
	out := &job.Outcome{Report: reportBytes, Summary: job.Summary{Circuit: "s400"}}
	if err := s.Terminal(idJ1, r1.Digest(), job.StateDone, "", out); err != nil {
		return acks, err
	}
	acks.t1 = true
	return acks, nil
}

// verifyInvariants reopens the crashed directory with a clean filesystem
// and checks the durability contract: acked operations survived, nothing
// recovered is corrupt, and nothing phantom appeared.
func verifyInvariants(t *testing.T, dir string, acks scenarioAcks) {
	t.Helper()
	s, rec, err := job.OpenStore(job.OSFS(), dir)
	if err != nil {
		t.Fatalf("reopen after injected crash: %v", err)
	}
	defer s.Close()
	r1, r2 := req("s400"), req("s953")
	pend := map[string]job.PendingJob{}
	for _, p := range rec.Pending {
		switch p.ID {
		case idJ1:
			if p.Digest != r1.Digest() || p.Req.Source.Circuit != "s400" {
				t.Fatalf("recovered %s corrupt: %+v", idJ1, p)
			}
		case idJ2:
			if p.Digest != r2.Digest() || p.Req.Source.Circuit != "s953" {
				t.Fatalf("recovered %s corrupt: %+v", idJ2, p)
			}
		default:
			t.Fatalf("phantom pending job %+v", p)
		}
		pend[p.ID] = p
	}
	if acks.t1 {
		if _, ok := pend[idJ1]; ok {
			t.Fatalf("job %s resurrected after acked terminal", idJ1)
		}
		found := false
		for _, r := range rec.Reports {
			if r.Digest == r1.Digest() {
				found = true
				if !bytes.Equal(r.Outcome.Report, reportBytes) {
					t.Fatalf("acked report came back altered: %q", r.Outcome.Report)
				}
			}
		}
		if !found {
			t.Fatal("acked report lost in crash")
		}
	} else if acks.a1 {
		if _, ok := pend[idJ1]; !ok {
			// An unacked terminal may still have reached the disk (its
			// record written, the fsync after it failed — the classic
			// ambiguity). The job may settle early, never vanish: its
			// report must then be present and intact.
			settled := false
			for _, r := range rec.Reports {
				if r.Digest == r1.Digest() && bytes.Equal(r.Outcome.Report, reportBytes) {
					settled = true
				}
			}
			if !settled {
				t.Fatalf("acked accept of %s lost in crash", idJ1)
			}
		}
	}
	if acks.a2 {
		p, ok := pend[idJ2]
		if !ok {
			t.Fatalf("acked accept of %s lost in crash", idJ2)
		}
		if acks.ck && string(p.Checkpoint) != "ckpt-bytes" {
			t.Fatalf("acked checkpoint of %s came back %q", idJ2, p.Checkpoint)
		}
	}
}

// TestStoreCrashAtEveryIO enumerates every write and every fsync of the
// store workload and crashes there three ways — failed write, torn (short)
// write, failed fsync — then reopens with a healthy filesystem and checks
// the durability invariants. This is the exhaustive "kill -9 at the Nth
// I/O" test, deterministic instead of timer-raced.
func TestStoreCrashAtEveryIO(t *testing.T) {
	probe := NewFS(job.OSFS())
	acks, err := storeScenario(probe, t.TempDir())
	if err != nil || !acks.t1 {
		t.Fatalf("fault-free scenario: acks=%+v err=%v", acks, err)
	}
	writes, syncs := probe.Writes(), probe.Syncs()
	if writes == 0 || syncs == 0 {
		t.Fatalf("scenario exercised %d writes, %d syncs — nothing to enumerate", writes, syncs)
	}

	cases := []struct {
		mode string
		n    int
		arm  func(f *FS, i int)
	}{
		{"fail-write", writes, (*FS).FailWriteAt},
		{"torn-write", writes, (*FS).ShortWriteAt},
		{"fail-sync", syncs, (*FS).FailSyncAt},
	}
	for _, c := range cases {
		for i := 1; i <= c.n; i++ {
			t.Run(fmt.Sprintf("%s-%d", c.mode, i), func(t *testing.T) {
				fsys := NewFS(job.OSFS())
				c.arm(fsys, i)
				dir := t.TempDir()
				acks, err := storeScenario(fsys, dir)
				if err == nil {
					t.Fatalf("fault at %s %d went unnoticed", c.mode, i)
				}
				verifyInvariants(t, dir, acks)
			})
		}
	}
}

// TestJournalBrokenLatch: once an append tears, the journal must refuse
// every later append — a record written beyond a torn frame would be
// unreachable at replay, an acked-but-lost acceptance.
func TestJournalBrokenLatch(t *testing.T) {
	fsys := NewFS(job.OSFS())
	dir := t.TempDir()
	s, _, err := job.OpenStore(fsys, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	r1, r2, r3 := req("s400"), req("s953"), req("s1269")
	if err := s.Accept(idJ1, r1.Digest(), &r1); err != nil {
		t.Fatal(err)
	}
	fsys.ShortWriteAt(fsys.Writes() + 1)
	if err := s.Accept(idJ2, r2.Digest(), &r2); err == nil {
		t.Fatal("torn append went unnoticed")
	}
	// The fault is spent; only the latch can reject this one.
	if err := s.Accept("j3-cccccccccccc", r3.Digest(), &r3); err == nil {
		t.Fatal("append after a torn frame accepted — record would be unreachable")
	}
	s.Close()

	_, rec, err := job.OpenStore(job.OSFS(), dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Pending) != 1 || rec.Pending[0].ID != idJ1 {
		t.Fatalf("recovered %+v, want exactly the pre-tear accept", rec.Pending)
	}
}

// TestCrashAfterEveryCheckpoint freezes a real daemon at each of the six
// stage-boundary checkpoint saves of an s400 plan — the worker parks
// inside the save notification, exactly the state a SIGKILL there leaves
// on disk — then opens a second manager on the same data directory and
// requires the recovered job to resume from that boundary and land on the
// same answer as an uninterrupted run.
func TestCrashAfterEveryCheckpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("full s400 plans per checkpoint boundary")
	}
	r := req("s400")

	// Baseline: one uninterrupted run.
	mb := job.NewManager(job.Options{Workers: 1})
	jb, err := mb.Submit(r)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, jb)
	if jb.State() != job.StateDone {
		t.Fatalf("baseline ended %s: %s", jb.State(), jb.Status().Err)
	}
	base := jb.Outcome().Summary
	mb.Shutdown(context.Background())

	// Must match the pipeline's checkpoint boundary order.
	boundaries := []string{"partition", "floorplan", "grid", "route", "repeaters", "periods"}
	for k := 1; k <= len(boundaries); k++ {
		boundary := boundaries[k-1]
		t.Run(boundary, func(t *testing.T) {
			dir := t.TempDir()
			park := make(chan struct{})
			t.Cleanup(func() { close(park) })
			var saves atomic.Int64
			var frozen atomic.Bool
			m1, err := job.Open(job.Options{
				DataDir: dir, Workers: 1,
				CheckpointNotify: func(id, stage string) {
					if int(saves.Add(1)) == k {
						frozen.Store(true)
						<-park // the "crash": this incarnation never makes progress again
					}
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			j1, err := m1.Submit(r)
			if err != nil {
				t.Fatal(err)
			}
			deadline := time.Now().Add(120 * time.Second)
			for !frozen.Load() {
				if time.Now().After(deadline) {
					t.Fatalf("never reached checkpoint %d (%s)", k, boundary)
				}
				time.Sleep(5 * time.Millisecond)
			}
			// No Shutdown: m1 is the crashed incarnation.

			m2, err := job.Open(job.Options{DataDir: dir, Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			defer m2.Shutdown(context.Background())
			j2, ok := m2.Get(j1.ID())
			if !ok {
				t.Fatalf("restart lost job %s", j1.ID())
			}
			waitDone(t, j2)
			if j2.State() != job.StateDone {
				t.Fatalf("recovered job ended %s: %s", j2.State(), j2.Status().Err)
			}
			sum := j2.Outcome().Summary
			if sum.Resumed != boundary {
				t.Errorf("resumed from %q, want %q", sum.Resumed, boundary)
			}
			got, want := sum, base
			got.Resumed, want.Resumed = "", ""
			if got != want {
				t.Errorf("resumed summary diverged:\n got %+v\nwant %+v", got, want)
			}
			if n := m2.Stats().Resumed; n != 1 {
				t.Errorf("job.resumed metric = %d, want 1", n)
			}
		})
	}
}

func waitDone(t *testing.T, j *job.Job) {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(120 * time.Second):
		t.Fatalf("job %s stuck in %s", j.ID(), j.State())
	}
}
