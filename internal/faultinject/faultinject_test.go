package faultinject

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"lacret/internal/bench89"
	"lacret/internal/check"
	"lacret/internal/core"
	"lacret/internal/netlist"
	"lacret/internal/plan"
	"lacret/internal/retime"
)

func tinyNetlist(t *testing.T) *netlist.Netlist {
	t.Helper()
	nl, err := bench89.Generate(bench89.Params{
		Name: "fi", Gates: 60, DFFs: 8, Inputs: 4, Outputs: 4,
		Depth: 6, MaxFanin: 3, Seed: 7, FeedbackDepth: 0.4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return nl
}

func tinyConfig() plan.Config {
	return plan.Config{Seed: 7, FloorplanMoves: 1000, Whitespace: 0.15}
}

// runWithCtx runs one full pipeline pass under ctx and returns the state
// and the pipeline error; any panic escaping PlanState.RunContext fails
// the test immediately.
func runWithCtx(t *testing.T, ctx context.Context, nl *netlist.Netlist, label string) (*plan.PlanState, error) {
	t.Helper()
	cfg := tinyConfig()
	st, err := plan.NewState(nl, &cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("%s: panic escaped RunContext: %v", label, r)
		}
	}()
	return st, st.RunContext(ctx, plan.DefaultStages(), &cfg)
}

// TestCancelAtEveryCheckpoint counts the pipeline's checkpoints with a
// never-firing probe context, then cancels at every index (stride-sampled
// when the count is large): no cancellation point may panic out of the
// pipeline or leave a state the prefix verifier rejects.
func TestCancelAtEveryCheckpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive checkpoint sweep in short mode")
	}
	nl := tinyNetlist(t)
	probe := CancelAtNth(1 << 30)
	defer probe.Cancel()
	if _, err := runWithCtx(t, probe, nl, "probe"); err != nil {
		t.Fatalf("probe run failed: %v", err)
	}
	total := probe.Hits()
	if total < 10 {
		t.Fatalf("suspiciously few checkpoints: %d", total)
	}
	stride := 1
	if total > 64 {
		stride = total/64 + 1
	}
	t.Logf("%d checkpoints, sampling every %d", total, stride)
	for k := 1; k <= total; k += stride {
		ctx := CancelAtNth(k)
		st, err := runWithCtx(t, ctx, nl, fmt.Sprintf("cancel@%d", k))
		ctx.Cancel()
		// Anytime stages absorb the cancellation (a truncated-but-complete
		// run), otherwise the boundary checkpoint reports it.
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("cancel@%d: unexpected error: %v", k, err)
		}
		if _, verr := check.VerifyState(st); verr != nil {
			t.Fatalf("cancel@%d: completed prefix fails verification: %v", k, verr)
		}
	}
}

// TestPanicContainment injects a panic into representative stages and
// checks the pipeline converts it into a typed *plan.StageError (stage
// name, stack, Recovered event flag) while the completed prefix stays
// verifiable.
func TestPanicContainment(t *testing.T) {
	nl := tinyNetlist(t)
	for _, stageName := range []string{"partition", "route", "periods", "lac"} {
		cfg := tinyConfig()
		st, err := plan.NewState(nl, &cfg)
		if err != nil {
			t.Fatal(err)
		}
		stages := WithPanicAt(plan.DefaultStages(), stageName, fmt.Errorf("injected fault"))
		err = func() (err error) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("stage %s: panic escaped RunContext: %v", stageName, r)
				}
			}()
			return st.RunContext(context.Background(), stages, &cfg)
		}()
		var serr *plan.StageError
		if !errors.As(err, &serr) {
			t.Fatalf("stage %s: error %v is not a StageError", stageName, err)
		}
		if serr.Stage != stageName || !serr.Recovered() || len(serr.Stack) == 0 {
			t.Fatalf("stage %s: StageError = {Stage:%s Recovered:%v stack:%d bytes}",
				stageName, serr.Stage, serr.Recovered(), len(serr.Stack))
		}
		trace := st.Result.Trace
		if len(trace) == 0 || trace[len(trace)-1].Stage != stageName || !trace[len(trace)-1].Recovered {
			t.Fatalf("stage %s: failing stage's event missing or unflagged: %+v", stageName, trace)
		}
		if _, verr := check.VerifyState(st); verr != nil {
			t.Fatalf("stage %s: prefix fails verification after panic: %v", stageName, verr)
		}
	}
}

// TestMinPeriodBracketInvariant interrupts the period search at every probe
// index and checks the anytime bracket: the upper end must be feasible (and
// realized by the returned labeling), the lower end proven infeasible.
func TestMinPeriodBracketInvariant(t *testing.T) {
	nl := tinyNetlist(t)
	cfg := tinyConfig()
	res, err := plan.PlanContext(context.Background(), nl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rg := res.Graph
	wd := rg.WDMatrices()
	for k := 1; ; k++ {
		ctx := CancelAtNth(k)
		_, _, err := rg.MinPeriodWDContext(ctx, 1e-3, wd)
		ctx.Cancel()
		if err == nil {
			break // the search finished before the kth checkpoint
		}
		var beb *retime.ErrBudgetExceeded
		if !errors.As(err, &beb) {
			t.Fatalf("cancel@%d: unexpected error: %v", k, err)
		}
		p := beb.Partial
		if p.Hi <= p.Lo {
			t.Fatalf("cancel@%d: degenerate bracket (%g, %g]", k, p.Lo, p.Hi)
		}
		if _, ok := rg.FeasiblePeriod(p.Hi, wd); !ok {
			t.Fatalf("cancel@%d: bracket Hi %g not feasible", k, p.Hi)
		}
		if _, ok := rg.FeasiblePeriod(p.Lo, wd); ok {
			t.Fatalf("cancel@%d: bracket Lo %g unexpectedly feasible", k, p.Lo)
		}
		if cerr := rg.CheckFeasible(p.R, p.Hi); cerr != nil {
			t.Fatalf("cancel@%d: partial labeling does not realize Hi: %v", k, cerr)
		}
		if k > 200 {
			t.Fatalf("period search did not terminate within 200 checkpoints")
		}
	}
}

// TestGenerousBudgetBitIdentical pins the budget machinery's zero-cost
// property on the golden circuit: a pass under a budget it never hits must
// produce exactly the result of an unbudgeted pass — same floats, same
// labelings, no truncation flags.
func TestGenerousBudgetBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("catalog circuit in short mode")
	}
	p, ok := bench89.ByName("s400")
	if !ok {
		t.Fatal("no s400 in catalog")
	}
	run := func(budget plan.Budget) *plan.Result {
		nl, err := bench89.Generate(p)
		if err != nil {
			t.Fatal(err)
		}
		res, err := plan.Plan(nl, plan.Config{
			Seed: p.Seed, Whitespace: 0.13, TclkSlack: 0.2,
			LAC:    core.Options{Alpha: 0.2, Nmax: 5, MaxIters: 20},
			Budget: budget,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := run(plan.Budget{})
	generous := run(plan.Budget{Wall: time.Hour, Weights: map[string]float64{
		"periods": 2, "route": 1, "lac": 3,
	}})
	exact := func(name string, got, want float64) {
		if got != want {
			t.Errorf("%s = %.17g, want %.17g (unbudgeted)", name, got, want)
		}
	}
	exact("Tinit", generous.Tinit, base.Tinit)
	exact("Tmin", generous.Tmin, base.Tmin)
	exact("TminLo", generous.TminLo, 0)
	exact("Tclk", generous.Tclk, base.Tclk)
	exact("RouteWirelength", generous.RouteWirelength, base.RouteWirelength)
	exact("SteinerEstimate", generous.SteinerEstimate, base.SteinerEstimate)
	ints := map[string][2]int{
		"MinArea.NF":     {generous.MinArea.NF, base.MinArea.NF},
		"MinArea.NFOA":   {generous.MinArea.NFOA, base.MinArea.NFOA},
		"LAC.NF":         {generous.LAC.NF, base.LAC.NF},
		"LAC.NFOA":       {generous.LAC.NFOA, base.LAC.NFOA},
		"LAC.NWR":        {generous.LAC.NWR, base.LAC.NWR},
		"RepeaterCount":  {generous.RepeaterCount, base.RepeaterCount},
		"WireUnits":      {generous.WireUnits, base.WireUnits},
		"InterBlockNets": {generous.InterBlockNets, base.InterBlockNets},
		"RouteOverflow":  {generous.RouteOverflow, base.RouteOverflow},
	}
	for name, v := range ints {
		if v[0] != v[1] {
			t.Errorf("%s = %d, want %d (unbudgeted)", name, v[0], v[1])
		}
	}
	for v := range base.LAC.R {
		if generous.LAC.R[v] != base.LAC.R[v] || generous.MinArea.R[v] != base.MinArea.R[v] {
			t.Fatalf("labelings diverge at vertex %d", v)
		}
	}
	if ts := generous.TruncatedStages(); len(ts) != 0 {
		t.Fatalf("generous budget truncated stages: %v", ts)
	}
}

// TestHardCancelBeforeStart: an already-canceled context never starts a
// stage and reports which stage was cut off.
func TestHardCancelBeforeStart(t *testing.T) {
	nl := tinyNetlist(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	st, err := runWithCtx(t, ctx, nl, "precanceled")
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(st.Result.Trace) != 0 {
		t.Fatalf("stages ran under a canceled context: %+v", st.Result.Trace)
	}
}
