package faultinject

import (
	"fmt"
	"io/fs"
	"os"
	"sync/atomic"

	"lacret/internal/job"
)

// FS wraps a job.FS with deterministic, count-based I/O faults: the Nth
// write across all files can fail outright or complete short, and the Nth
// fsync can error. Like the package's cancellation harness, the counters
// index operations in execution order, so a durability test can enumerate
// every write/sync site of the store exhaustively — "crash at the Nth
// I/O" — instead of racing a timer.
//
// Counts are process-order global across the files of one FS (writes on
// one shared counter, syncs on another), matching how a store interleaves
// journal appends and atomic file writes. Zero-valued triggers are
// disabled. Safe for concurrent use.
type FS struct {
	inner job.FS

	writes atomic.Int64
	syncs  atomic.Int64

	failWriteAt  atomic.Int64
	shortWriteAt atomic.Int64
	failSyncAt   atomic.Int64
}

// NewFS wraps inner (job.OSFS() in the durability tests) with fault hooks.
func NewFS(inner job.FS) *FS { return &FS{inner: inner} }

// FailWriteAt makes the nth write (1-based, counted across all files)
// return an error having written nothing.
func (f *FS) FailWriteAt(n int) { f.failWriteAt.Store(int64(n)) }

// ShortWriteAt makes the nth write persist only the first half of its
// buffer and then return an error — the torn-record case a crash mid
// write leaves behind.
func (f *FS) ShortWriteAt(n int) { f.shortWriteAt.Store(int64(n)) }

// FailSyncAt makes the nth fsync return an error (the data may or may not
// be durable — exactly the ambiguity real fsync failures have).
func (f *FS) FailSyncAt(n int) { f.failSyncAt.Store(int64(n)) }

// Writes reports the writes observed so far — run once fault-free to learn
// the count, then re-run failing each site.
func (f *FS) Writes() int { return int(f.writes.Load()) }

// Syncs reports the fsyncs observed so far.
func (f *FS) Syncs() int { return int(f.syncs.Load()) }

func (f *FS) MkdirAll(path string, perm os.FileMode) error { return f.inner.MkdirAll(path, perm) }
func (f *FS) ReadFile(name string) ([]byte, error)         { return f.inner.ReadFile(name) }
func (f *FS) Rename(oldpath, newpath string) error         { return f.inner.Rename(oldpath, newpath) }
func (f *FS) Remove(name string) error                     { return f.inner.Remove(name) }
func (f *FS) ReadDir(name string) ([]fs.DirEntry, error)   { return f.inner.ReadDir(name) }

func (f *FS) OpenFile(name string, flag int, perm os.FileMode) (job.File, error) {
	inner, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: inner}, nil
}

// faultFile counts this FS's writes and syncs and injects the armed
// faults at their trigger counts.
type faultFile struct {
	fs    *FS
	inner job.File
}

func (f *faultFile) Write(p []byte) (int, error) {
	n := f.fs.writes.Add(1)
	if at := f.fs.failWriteAt.Load(); at > 0 && n == at {
		return 0, fmt.Errorf("faultinject: write %d failed", n)
	}
	if at := f.fs.shortWriteAt.Load(); at > 0 && n == at {
		half := len(p) / 2
		written, _ := f.inner.Write(p[:half])
		return written, fmt.Errorf("faultinject: write %d torn after %d bytes", n, written)
	}
	return f.inner.Write(p)
}

func (f *faultFile) Sync() error {
	n := f.fs.syncs.Add(1)
	if at := f.fs.failSyncAt.Load(); at > 0 && n == at {
		return fmt.Errorf("faultinject: sync %d failed", n)
	}
	return f.inner.Sync()
}

func (f *faultFile) Close() error { return f.inner.Close() }
