// Package tech holds the technology/process parameters used by the planner:
// wire RC, repeater drive characteristics, unit areas, and the Lmax
// signal-integrity bound on repeater spacing.
//
// The paper (DATE 2003) does not publish absolute process numbers; the
// defaults here model a 180 nm-class global-wire stack with RT-level
// functional units. Everything is a plain struct field so experiments can
// sweep any parameter. Units: ns, um, kOhm, pF (so R*C is directly ns).
package tech

import "fmt"

// Tech is a bundle of process and cell parameters.
type Tech struct {
	// WireR is wire resistance per um (kOhm/um).
	WireR float64
	// WireC is wire capacitance per um (pF/um).
	WireC float64

	// RepeaterR is the repeater output resistance (kOhm).
	RepeaterR float64
	// RepeaterC is the repeater input capacitance (pF).
	RepeaterC float64
	// RepeaterT is the repeater intrinsic delay (ns).
	RepeaterT float64
	// RepeaterArea is the layout area of one repeater (um^2).
	RepeaterArea float64

	// FFArea is the layout area of one flip-flop (um^2).
	FFArea float64

	// UnitDelay is the propagation delay assigned to an RT-level
	// functional unit (ns). The paper treats ISCAS89 gates as functional
	// units "with large area and delay".
	UnitDelay float64
	// UnitArea is the layout area of an RT-level functional unit (um^2).
	UnitArea float64

	// Lmax is the maximum wire length between consecutive repeaters (um),
	// fixed by the signal-integrity (transition time) constraint.
	Lmax float64
}

// Default returns the 180nm-class parameter set used by the experiments.
// Functional units are RT-level (the paper treats ISCAS89 gates as units
// "with large area and delay"), so chips come out millimetre-scale and
// global wires cost a meaningful fraction of a clock period.
func Default() Tech {
	return Tech{
		WireR:        3e-4, // 0.3 Ohm/um (global wire)
		WireC:        3e-4, // 0.3 fF/um
		RepeaterR:    0.30, // 300 Ohm
		RepeaterC:    0.05, // 50 fF
		RepeaterT:    0.03, // 30 ps
		RepeaterArea: 800,
		FFArea:       2000,
		UnitDelay:    0.5,
		UnitArea:     40000, // 200um x 200um RT unit
		Lmax:         2000,
	}
}

// Validate checks that all parameters are physically sensible.
func (t Tech) Validate() error {
	pos := []struct {
		v    float64
		name string
	}{
		{t.WireR, "WireR"}, {t.WireC, "WireC"}, {t.RepeaterR, "RepeaterR"},
		{t.RepeaterC, "RepeaterC"}, {t.RepeaterArea, "RepeaterArea"},
		{t.FFArea, "FFArea"}, {t.UnitDelay, "UnitDelay"}, {t.UnitArea, "UnitArea"},
		{t.Lmax, "Lmax"},
	}
	for _, p := range pos {
		if p.v <= 0 {
			return fmt.Errorf("tech: %s must be positive, got %g", p.name, p.v)
		}
	}
	if t.RepeaterT < 0 {
		return fmt.Errorf("tech: RepeaterT must be nonnegative, got %g", t.RepeaterT)
	}
	return nil
}

// SegmentDelay returns the Elmore delay (ns) of a repeater driving a wire of
// length um into the input capacitance of the next repeater (or an
// equivalent sink load):
//
//	d = T + R*(c*L + C) + r*L*(c*L/2 + C)
//
// where T, R, C describe the repeater and r, c the wire.
func (t Tech) SegmentDelay(length float64) float64 {
	if length < 0 {
		panic(fmt.Sprintf("tech: negative wire length %g", length))
	}
	return t.RepeaterT +
		t.RepeaterR*(t.WireC*length+t.RepeaterC) +
		t.WireR*length*(t.WireC*length/2+t.RepeaterC)
}

// UnbufferedDelay returns the Elmore delay (ns) of a bare wire of the given
// length driven by a repeater-strength driver with a repeater-sized sink:
// the delay a net segment would have without intermediate repeaters.
func (t Tech) UnbufferedDelay(length float64) float64 {
	return t.SegmentDelay(length)
}

// MinSegments returns the minimum number of repeater segments needed to
// cover a route of the given length under the Lmax constraint. A zero-length
// route still occupies one segment (the driver).
func (t Tech) MinSegments(length float64) int {
	if length <= 0 {
		return 1
	}
	n := int(length / t.Lmax)
	if float64(n)*t.Lmax < length {
		n++
	}
	return n
}
