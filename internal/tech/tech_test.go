package tech

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultValid(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesBadFields(t *testing.T) {
	mut := []func(*Tech){
		func(t *Tech) { t.WireR = 0 },
		func(t *Tech) { t.WireC = -1 },
		func(t *Tech) { t.RepeaterR = 0 },
		func(t *Tech) { t.RepeaterC = 0 },
		func(t *Tech) { t.RepeaterT = -0.1 },
		func(t *Tech) { t.RepeaterArea = 0 },
		func(t *Tech) { t.FFArea = -5 },
		func(t *Tech) { t.UnitDelay = 0 },
		func(t *Tech) { t.UnitArea = 0 },
		func(t *Tech) { t.Lmax = 0 },
	}
	for i, m := range mut {
		tc := Default()
		m(&tc)
		if err := tc.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestSegmentDelayMonotone(t *testing.T) {
	tc := Default()
	prev := tc.SegmentDelay(0)
	if prev <= 0 {
		t.Fatal("zero-length segment should still have driver delay")
	}
	for l := 100.0; l <= 10000; l += 100 {
		d := tc.SegmentDelay(l)
		if d <= prev {
			t.Fatalf("delay not monotone at %g: %g <= %g", l, d, prev)
		}
		prev = d
	}
}

func TestSegmentDelayQuadraticTerm(t *testing.T) {
	tc := Default()
	// For large L the rc*L^2/2 term dominates: doubling L should roughly
	// quadruple the wire part.
	base := tc.SegmentDelay(0)
	d1 := tc.SegmentDelay(40000) - base
	d2 := tc.SegmentDelay(80000) - base
	if ratio := d2 / d1; ratio < 3 || ratio > 4.2 {
		t.Fatalf("quadratic regime ratio %g, want about 4", ratio)
	}
}

func TestSegmentDelayNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Default().SegmentDelay(-1)
}

func TestMinSegments(t *testing.T) {
	tc := Default() // Lmax 2000
	cases := []struct {
		len  float64
		want int
	}{
		{0, 1}, {-5, 1}, {1, 1}, {2000, 1}, {2001, 2}, {4000, 2}, {4001, 3}, {25000, 13},
	}
	for _, c := range cases {
		if got := tc.MinSegments(c.len); got != c.want {
			t.Errorf("MinSegments(%g) = %d, want %d", c.len, got, c.want)
		}
	}
}

func TestMinSegmentsCoversLength(t *testing.T) {
	tc := Default()
	f := func(raw uint32) bool {
		l := float64(raw%1000000) / 7.0
		n := tc.MinSegments(l)
		if n < 1 {
			return false
		}
		// n segments of Lmax cover l; n-1 do not (unless l<=0).
		if float64(n)*tc.Lmax < l {
			return false
		}
		if l > 0 && n > 1 && float64(n-1)*tc.Lmax >= l {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUnbufferedDelayMatchesSegment(t *testing.T) {
	tc := Default()
	if math.Abs(tc.UnbufferedDelay(1234)-tc.SegmentDelay(1234)) > 1e-12 {
		t.Fatal("UnbufferedDelay should equal SegmentDelay for a single span")
	}
}
