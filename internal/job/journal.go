package job

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
)

// The journal is the manager's write-ahead log: every accepted request is
// appended (and synced) before the submission is acknowledged, and every
// terminal transition is appended before the job's artifacts are
// considered settled. A restarted daemon replays it to find the jobs that
// were accepted but never finished.
//
// Record framing: a 4-byte big-endian payload length, a 4-byte IEEE CRC32
// of the payload, then the JSON payload. The CRC plus the length make a
// torn tail — the half-written record of the write the crash interrupted —
// detectable: replay stops at the first frame that does not check out and
// ignores the rest. Everything before a valid frame was synced before it
// was written (append-only, one writer), so a valid prefix is a consistent
// state.

// journalRecord is one WAL entry.
type journalRecord struct {
	// Kind is "accept" (a request entered the queue) or "terminal" (the
	// job reached a final state).
	Kind   string `json:"kind"`
	ID     string `json:"id"`
	Digest string `json:"digest,omitempty"`
	// Req rides on accept records — the full request, so replay can
	// re-enqueue without any other file.
	Req *PlanRequest `json:"req,omitempty"`
	// State and Err ride on terminal records.
	State State  `json:"state,omitempty"`
	Err   string `json:"err,omitempty"`
}

const (
	recAccept   = "accept"
	recTerminal = "terminal"
)

// journal is the open WAL. Not safe for concurrent use on its own; the
// Store serializes access.
type journal struct {
	fs   FS
	path string
	f    File
	// broken latches after a failed append: a short write may have left a
	// torn frame mid-log, and anything appended after it would be
	// unreachable on replay. Further appends fail fast instead of
	// silently journaling into the void.
	broken bool
}

// replayJournal decodes every valid record of a WAL image, stopping —
// without error — at the first torn or corrupt frame.
func replayJournal(data []byte) []journalRecord {
	var recs []journalRecord
	for len(data) >= 8 {
		n := binary.BigEndian.Uint32(data[:4])
		sum := binary.BigEndian.Uint32(data[4:8])
		if uint64(len(data)) < 8+uint64(n) {
			break // torn tail: length frame outruns the file
		}
		payload := data[8 : 8+n]
		if crc32.ChecksumIEEE(payload) != sum {
			break // torn or bit-rotted record
		}
		var rec journalRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			break
		}
		recs = append(recs, rec)
		data = data[8+n:]
	}
	return recs
}

// encodeRecord frames one record.
func encodeRecord(rec journalRecord) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, 8+len(payload))
	binary.BigEndian.PutUint32(buf[:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	copy(buf[8:], payload)
	return buf, nil
}

// openJournal replays the WAL at path (if any) and reopens it for append.
// compact rewrites the file first to only the given records — the startup
// path drops settled jobs so the log does not grow without bound.
func openJournal(fsys FS, path string, compact []journalRecord) (*journal, error) {
	if compact != nil {
		var img []byte
		for _, rec := range compact {
			frame, err := encodeRecord(rec)
			if err != nil {
				return nil, fmt.Errorf("job: encode journal record: %w", err)
			}
			img = append(img, frame...)
		}
		if err := writeFileAtomic(fsys, path, img); err != nil {
			return nil, fmt.Errorf("job: compact journal: %w", err)
		}
	}
	f, err := fsys.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("job: open journal: %w", err)
	}
	return &journal{fs: fsys, path: path, f: f}, nil
}

// append frames, writes, and syncs one record; the record is durable when
// append returns nil.
func (jl *journal) append(rec journalRecord) error {
	if jl.broken {
		return fmt.Errorf("job: journal is broken (earlier append failed)")
	}
	frame, err := encodeRecord(rec)
	if err != nil {
		return fmt.Errorf("job: encode journal record: %w", err)
	}
	if _, err := jl.f.Write(frame); err != nil {
		jl.broken = true
		return fmt.Errorf("job: append journal: %w", err)
	}
	if err := jl.f.Sync(); err != nil {
		jl.broken = true
		return fmt.Errorf("job: sync journal: %w", err)
	}
	return nil
}

func (jl *journal) close() error { return jl.f.Close() }
