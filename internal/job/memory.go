package job

import (
	"fmt"
	"log/slog"
	"math"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"lacret/internal/obs"
)

// ErrMemoryPressure is the admission-control rejection: the live heap is
// above the high-water mark of the memory limit and shedding did not bring
// it back down, so taking another plan risks the OOM killer. The service
// layer maps it to 429 with Retry-After, the polite twin of ErrQueueFull.
type ErrMemoryPressure struct {
	Heap, Limit uint64
	RetryAfter  time.Duration
}

func (e *ErrMemoryPressure) Error() string {
	return fmt.Sprintf("job: memory pressure (heap %d of limit %d), retry after %s",
		e.Heap, e.Limit, e.RetryAfter)
}

// defaultMemHighWater is the admission threshold as a fraction of the
// memory limit: above it, new submissions shed caches and, failing that,
// are rejected. Chosen below 1.0 so a plan already in flight has headroom
// to finish.
const defaultMemHighWater = 0.85

// memLowWaterRatio scales the high-water mark down to the restore
// threshold: once the heap falls below it the shed caches get their full
// budgets back. The hysteresis gap keeps the governor from flapping the
// cache scale on every submission around the boundary.
const memLowWaterRatio = 0.7

// memGovernor is the admission controller under memory pressure. It
// compares the live heap against a memory limit on every submission,
// sheds the process's discretionary caches (the lazy engine's row caches,
// the manager's report cache) at the high-water mark, and rejects when
// shedding is not enough. All methods are safe for concurrent use.
type memGovernor struct {
	limit     uint64
	highWater float64
	readHeap  func() uint64
	shed      func()
	restore   func()
	log       *slog.Logger // nil = logging disabled

	mu       sync.Mutex
	shedding bool

	cShed, cRejected *obs.Counter
	gHeap, gLimit    *obs.Gauge
}

// resolveMemLimit picks the effective memory limit: an explicit maxMem
// wins, otherwise the runtime's GOMEMLIMIT when one is set. Zero means no
// limit — the governor stays disabled.
func resolveMemLimit(maxMem int64) uint64 {
	if maxMem > 0 {
		return uint64(maxMem)
	}
	// SetMemoryLimit(-1) reads the current limit without changing it;
	// MaxInt64 is the documented "unlimited" default.
	if lim := debug.SetMemoryLimit(-1); lim > 0 && lim < math.MaxInt64 {
		return uint64(lim)
	}
	return 0
}

// liveHeap is the default heap probe.
func liveHeap() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// newMemGovernor builds the governor, or returns nil when no limit
// applies (admission control disabled). shed and restore are the cache
// hooks the manager provides; log is the manager's logger (nil disabled).
func newMemGovernor(limit uint64, highWater float64, readHeap func() uint64, shed, restore func(), reg *obs.Registry, log *slog.Logger) *memGovernor {
	if limit == 0 {
		return nil
	}
	if highWater <= 0 || highWater > 1 {
		highWater = defaultMemHighWater
	}
	if readHeap == nil {
		readHeap = liveHeap
	}
	g := &memGovernor{
		limit: limit, highWater: highWater, readHeap: readHeap,
		shed: shed, restore: restore, log: log,
		cShed:     reg.Counter("job.mem_shed"),
		cRejected: reg.Counter("job.mem_rejected"),
		gHeap:     reg.Gauge("job.heap_bytes"),
		gLimit:    reg.Gauge("job.mem_limit_bytes"),
	}
	g.gLimit.Set(float64(limit))
	return g
}

// admit gates one submission. Above the high-water mark it sheds the
// caches, forces a collection, and re-reads the heap; still above means
// rejection with *ErrMemoryPressure. Below the low-water mark the shed
// caches are restored.
func (g *memGovernor) admit() error {
	heap := g.readHeap()
	g.gHeap.Set(float64(heap))
	high := uint64(g.highWater * float64(g.limit))
	low := uint64(g.highWater * memLowWaterRatio * float64(g.limit))

	g.mu.Lock()
	defer g.mu.Unlock()
	if heap < high {
		if g.shedding && heap < low {
			g.shedding = false
			if g.restore != nil {
				g.restore()
			}
			if g.log != nil {
				g.log.Info("memory pressure cleared: caches restored",
					slog.Uint64("heap", heap), slog.Uint64("limit", g.limit))
			}
		}
		return nil
	}
	if !g.shedding {
		g.shedding = true
		g.cShed.Inc()
		if g.shed != nil {
			g.shed()
		}
		if g.log != nil {
			g.log.Warn("memory pressure: shedding caches",
				slog.Uint64("heap", heap), slog.Uint64("limit", g.limit))
		}
		// The shed dropped references; collect so the re-read below sees
		// the heap the next plan would actually start from.
		runtime.GC()
		heap = g.readHeap()
		g.gHeap.Set(float64(heap))
		if heap < high {
			return nil
		}
	}
	g.cRejected.Inc()
	if g.log != nil {
		g.log.Warn("job rejected: memory pressure",
			slog.Uint64("heap", heap), slog.Uint64("limit", g.limit))
	}
	return &ErrMemoryPressure{Heap: heap, Limit: g.limit, RetryAfter: 5 * time.Second}
}

// isShedding reports whether the governor is currently between the shed
// and restore thresholds — the degraded state the readiness probe exposes.
func (g *memGovernor) isShedding() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.shedding
}
