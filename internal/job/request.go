// Package job turns the planning pipeline into a reusable, servable unit
// of work: a canonical PlanRequest (netlist source + configuration) with a
// deterministic content digest, and a Manager that runs requests on a
// bounded worker pool with per-job cancellation, queue backpressure, live
// progress events, and a content-addressed result cache keyed by the
// digest.
//
// The package sits between the planning library (internal/plan) and the
// entry points: cmd/lacplan and cmd/table1 build requests through
// internal/runcfg, and cmd/lacretd serves them over HTTP via
// internal/service. Identical requests hash to identical digests, so a
// repeated submission is served from the cache byte-for-byte without
// re-planning.
package job

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"lacret/internal/bench89"
	"lacret/internal/core"
	"lacret/internal/netlist"
	"lacret/internal/plan"
)

// Source names the netlist a request plans: either a catalog circuit by
// name or an inline ISCAS89 .bench netlist. Exactly one of Circuit and
// Bench must be set.
type Source struct {
	// Circuit is a synthetic catalog circuit name (e.g. "s953").
	Circuit string `json:"circuit,omitempty"`
	// Bench is the text of an ISCAS89 .bench netlist, inlined so the
	// request is self-contained (and the digest covers the netlist bytes).
	Bench string `json:"bench,omitempty"`
	// Name labels an inline Bench netlist (default "bench"); ignored for
	// catalog circuits, which are labeled by Circuit.
	Name string `json:"name,omitempty"`
}

// Label returns the circuit label the source plans under.
func (s Source) Label() string {
	if s.Circuit != "" {
		return s.Circuit
	}
	if s.Name != "" {
		return s.Name
	}
	return "bench"
}

// Netlist materializes the source. Each call builds a fresh netlist:
// planning mutates it (technology-default assignment), so instances are
// never shared between jobs.
func (s Source) Netlist() (*netlist.Netlist, error) {
	switch {
	case s.Circuit != "" && s.Bench != "":
		return nil, fmt.Errorf("job: source has both circuit and bench")
	case s.Circuit != "":
		p, ok := bench89.ByName(s.Circuit)
		if !ok {
			return nil, fmt.Errorf("job: unknown catalog circuit %q", s.Circuit)
		}
		return bench89.Generate(p)
	case s.Bench != "":
		return netlist.ParseBench(s.Label(), strings.NewReader(s.Bench))
	default:
		return nil, fmt.Errorf("job: source names no netlist (need circuit or bench)")
	}
}

func (s Source) validate() error {
	switch {
	case s.Circuit != "" && s.Bench != "":
		return fmt.Errorf("job: source has both circuit and bench")
	case s.Circuit == "" && s.Bench == "":
		return fmt.Errorf("job: source names no netlist (need circuit or bench)")
	case s.Circuit != "":
		if _, ok := bench89.ByName(s.Circuit); !ok {
			return fmt.Errorf("job: unknown catalog circuit %q", s.Circuit)
		}
	}
	return nil
}

// ReqConfig is the canonical planning configuration of a request — the
// subset of plan.Config every entry point exposes, in a JSON- and
// digest-friendly shape. The zero value selects the Table 1 regime
// (whitespace 0.13, slack 0.2, nmax 5, default alpha) after Normalize.
type ReqConfig struct {
	// Blocks is the soft-block count (0 = auto).
	Blocks int `json:"blocks,omitempty"`
	// Whitespace is the block whitespace fraction (0 = 0.13, the Table 1
	// regime).
	Whitespace float64 `json:"whitespace,omitempty"`
	// Alpha is the LAC weight-adaptation coefficient. nil selects the
	// default (0.2); an explicit 0 freezes the tile weights — the pointer
	// keeps the two distinguishable (plan.Config's AlphaSet).
	Alpha *float64 `json:"alpha,omitempty"`
	// Nmax is the LAC no-improvement limit (0 = 5).
	Nmax int `json:"nmax,omitempty"`
	// MaxIters hard-caps the LAC solve rounds (0 = the core default).
	MaxIters int `json:"max_iters,omitempty"`
	// TclkSlack positions Tclk between Tmin and Tinit (0 = 0.2).
	TclkSlack float64 `json:"tclk_slack,omitempty"`
	// Tclk, when positive, fixes the target period directly.
	Tclk float64 `json:"tclk,omitempty"`
	// Seed drives the randomized substeps; 0 selects the catalog seed for
	// catalog circuits (resolved by PlanRequest.Normalize).
	Seed int64 `json:"seed,omitempty"`
	// Iterations is the planning-pass count with floorplan expansion
	// between passes (0 = 1).
	Iterations int `json:"iterations,omitempty"`
	// BudgetMS is the soft wall-clock budget per planning pass in
	// milliseconds (0 = unbounded); anytime stages degrade to best-so-far
	// at the deadline.
	BudgetMS int64 `json:"budget_ms,omitempty"`
	// ProbeEngine selects the period-search constraint engine: "dense",
	// "lazy", or "auto" ("" = auto).
	ProbeEngine string `json:"probe_engine,omitempty"`
}

// Normalize fills the defaulted fields in place so that equivalent
// requests share one canonical form (and therefore one digest).
func (c *ReqConfig) Normalize() {
	if c.Whitespace == 0 {
		c.Whitespace = 0.13
	}
	if c.TclkSlack == 0 {
		c.TclkSlack = 0.2
	}
	if c.Nmax == 0 {
		c.Nmax = 5
	}
	if c.Iterations == 0 {
		c.Iterations = 1
	}
	if c.ProbeEngine == "" {
		c.ProbeEngine = plan.ProbeEngineAuto
	}
}

// Validate rejects configurations the planner would refuse (or silently
// misread) once the job is already running, so bad requests fail at
// submission.
func (c ReqConfig) Validate() error {
	if c.Blocks < 0 {
		return fmt.Errorf("job: negative block count %d", c.Blocks)
	}
	if c.Whitespace < 0 || c.Whitespace >= 1 {
		return fmt.Errorf("job: whitespace %g outside [0,1)", c.Whitespace)
	}
	if c.Alpha != nil && (*c.Alpha < 0 || *c.Alpha > 1) {
		return fmt.Errorf("job: alpha %g outside [0,1]", *c.Alpha)
	}
	if c.Nmax < 0 {
		return fmt.Errorf("job: negative nmax %d", c.Nmax)
	}
	if c.MaxIters < 0 {
		return fmt.Errorf("job: negative max_iters %d", c.MaxIters)
	}
	if c.TclkSlack < 0 || c.TclkSlack > 1 {
		return fmt.Errorf("job: tclk_slack %g outside [0,1]", c.TclkSlack)
	}
	if c.Tclk < 0 {
		return fmt.Errorf("job: negative tclk %g", c.Tclk)
	}
	if c.Iterations < 1 {
		return fmt.Errorf("job: iterations %d < 1", c.Iterations)
	}
	if c.BudgetMS < 0 {
		return fmt.Errorf("job: negative budget_ms %d", c.BudgetMS)
	}
	switch c.ProbeEngine {
	case plan.ProbeEngineAuto, plan.ProbeEngineDense, plan.ProbeEngineLazy:
	default:
		return fmt.Errorf("job: unknown probe engine %q (want %s, %s or %s)",
			c.ProbeEngine, plan.ProbeEngineDense, plan.ProbeEngineLazy, plan.ProbeEngineAuto)
	}
	return nil
}

// PlanConfig maps the request configuration onto the planner's Config.
// This is the single flag→Config code path shared by lacplan, table1, and
// the daemon: every knob a request carries lands here exactly once.
func (c ReqConfig) PlanConfig() plan.Config {
	cfg := plan.Config{
		Blocks:       c.Blocks,
		Whitespace:   c.Whitespace,
		TclkSlack:    c.TclkSlack,
		TclkOverride: c.Tclk,
		Seed:         c.Seed,
		LAC:          core.Options{Alpha: 0.2, Nmax: c.Nmax, MaxIters: c.MaxIters},
		Budget:       plan.Budget{Wall: time.Duration(c.BudgetMS) * time.Millisecond},
		ProbeEngine:  c.ProbeEngine,
	}
	if c.Alpha != nil {
		// An explicit alpha — including 0, which freezes the tile weights —
		// must survive the zero-value sentinel.
		cfg.LAC.Alpha = *c.Alpha
		cfg.LAC.AlphaSet = true
	}
	return cfg
}

// Map renders the configuration as the run report's numeric config map.
func (c ReqConfig) Map() map[string]float64 {
	m := map[string]float64{
		"blocks":     float64(c.Blocks),
		"ws":         c.Whitespace,
		"nmax":       float64(c.Nmax),
		"maxiters":   float64(c.MaxIters),
		"slack":      c.TclkSlack,
		"tclk":       c.Tclk,
		"seed":       float64(c.Seed),
		"iterations": float64(c.Iterations),
		"budget_ms":  float64(c.BudgetMS),
	}
	if c.Alpha != nil {
		m["alpha"] = *c.Alpha
	} else {
		m["alpha"] = 0.2
	}
	return m
}

// PlanRequest is one canonical planning request: what to plan (Source) and
// how (Config). Two requests that normalize to the same fields digest
// identically, which is the key of the Manager's result cache.
type PlanRequest struct {
	Source Source    `json:"source"`
	Config ReqConfig `json:"config"`
}

// Normalize canonicalizes the request in place: config defaults are made
// explicit, inline netlists get their default label, and a zero seed on a
// catalog circuit resolves to the circuit's catalog seed (the experiments
// driver's convention), so the defaulted and the explicit form share one
// digest.
func (r *PlanRequest) Normalize() {
	r.Config.Normalize()
	if r.Source.Bench != "" && r.Source.Name == "" {
		r.Source.Name = "bench"
	}
	if r.Config.Seed == 0 && r.Source.Circuit != "" {
		if p, ok := bench89.ByName(r.Source.Circuit); ok {
			r.Config.Seed = p.Seed
		}
	}
}

// Validate checks the whole request; call after Normalize.
func (r *PlanRequest) Validate() error {
	if err := r.Source.validate(); err != nil {
		return err
	}
	return r.Config.Validate()
}

// PlanConfig maps the request onto the planner's Config.
func (r *PlanRequest) PlanConfig() plan.Config {
	return r.Config.PlanConfig()
}

// digestVersion prefixes every digest; bump it when the encoding below
// changes shape so stale caches can never alias new requests.
const digestVersion = "lacret-req-v1"

// Digest returns the request's content address: a SHA-256 over a stable
// field-by-field encoding (fixed order, NUL-separated tags, exact
// hexadecimal floats). Digest the normalized request — the Manager
// normalizes on submit — so equivalent requests collide on purpose.
func (r *PlanRequest) Digest() string {
	h := sha256.New()
	io.WriteString(h, digestVersion)
	ws := func(tag, val string) {
		h.Write([]byte{0})
		io.WriteString(h, tag)
		h.Write([]byte{0})
		io.WriteString(h, val)
	}
	wi := func(tag string, v int64) { ws(tag, strconv.FormatInt(v, 10)) }
	wf := func(tag string, v float64) { ws(tag, strconv.FormatFloat(v, 'x', -1, 64)) }
	ws("circuit", r.Source.Circuit)
	ws("name", r.Source.Name)
	ws("bench", r.Source.Bench)
	wi("blocks", int64(r.Config.Blocks))
	wf("ws", r.Config.Whitespace)
	if r.Config.Alpha != nil {
		wf("alpha", *r.Config.Alpha)
	} else {
		ws("alpha", "default")
	}
	wi("nmax", int64(r.Config.Nmax))
	wi("maxiters", int64(r.Config.MaxIters))
	wf("slack", r.Config.TclkSlack)
	wf("tclk", r.Config.Tclk)
	wi("seed", r.Config.Seed)
	wi("iterations", int64(r.Config.Iterations))
	wi("budget_ms", r.Config.BudgetMS)
	ws("engine", r.Config.ProbeEngine)
	return hex.EncodeToString(h.Sum(nil))
}
