package job

import (
	"context"
	"testing"
	"time"
)

// TestSamplerTimeSeries: the self-sampler fills the ring and Stats serves
// the history oldest-first with live vitals.
func TestSamplerTimeSeries(t *testing.T) {
	m := NewManager(Options{Workers: 1, SampleInterval: time.Millisecond})
	defer m.Shutdown(context.Background())

	deadline := time.Now().Add(5 * time.Second)
	var samples []Sample
	for {
		samples = m.Stats().Samples
		if len(samples) >= 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sampler produced %d samples, want >= 3", len(samples))
		}
		time.Sleep(time.Millisecond)
	}
	for i, s := range samples {
		if s.T.IsZero() || s.HeapBytes == 0 || s.Goroutines <= 0 {
			t.Fatalf("sample %d has zero vitals: %+v", i, s)
		}
		if i > 0 && s.T.Before(samples[i-1].T) {
			t.Fatalf("samples out of order at %d: %v < %v", i, s.T, samples[i-1].T)
		}
	}
	// The gauges track the sampler.
	snap := m.Registry().Snapshot()
	if snap.Gauges["job.heap_bytes"] == 0 || snap.Gauges["job.goroutines"] == 0 {
		t.Fatalf("sampler gauges not set: %+v", snap.Gauges)
	}
}

// TestSamplerRingBound: the retained history never exceeds the ring size
// and keeps the newest samples.
func TestSamplerRingBound(t *testing.T) {
	s := &sampler{stop: make(chan struct{}), done: make(chan struct{})}
	base := time.Now()
	for i := 0; i < samplerRingSize+50; i++ {
		s.record(Sample{T: base.Add(time.Duration(i) * time.Second), Queued: i})
	}
	hist := s.history()
	if len(hist) != samplerRingSize {
		t.Fatalf("history len %d, want %d", len(hist), samplerRingSize)
	}
	if hist[0].Queued != 50 || hist[len(hist)-1].Queued != samplerRingSize+49 {
		t.Fatalf("ring kept wrong window: first=%d last=%d", hist[0].Queued, hist[len(hist)-1].Queued)
	}
}

// TestSamplerDisabled: a negative interval turns sampling off entirely.
func TestSamplerDisabled(t *testing.T) {
	m := NewManager(Options{Workers: 1, SampleInterval: -1})
	defer m.Shutdown(context.Background())
	if got := m.Stats().Samples; got != nil {
		t.Fatalf("disabled sampler produced %d samples", len(got))
	}
}
