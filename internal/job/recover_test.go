package job

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"lacret/internal/plan"
)

// doneRun completes instantly with an empty (but reportable) result.
func doneRun(ctx context.Context, req *PlanRequest, trace func(plan.StageEvent)) (*RunResult, error) {
	return &RunResult{Circuit: req.Source.Label()}, nil
}

func waitJob(t *testing.T, j *Job) {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(60 * time.Second):
		t.Fatalf("job %s stuck in %s", j.ID(), j.State())
	}
}

// TestManagerRecoversPendingAndResumes is the crash contract end to end at
// the manager level: jobs acknowledged before a "crash" (an abandoned
// manager, its store left as the crash would leave it) are re-enqueued by
// the next Open under their original IDs, the job that had checkpointed
// resumes from its snapshot, and the ID sequence continues past the
// recovered jobs.
func TestManagerRecoversPendingAndResumes(t *testing.T) {
	dir := t.TempDir()

	// First incarnation: the running job saves a checkpoint, then parks
	// until the test ends (simulating a plan in flight when the process
	// dies). The second submission never leaves the queue.
	release := make(chan struct{})
	defer close(release)
	checkpointed := make(chan string, 1)
	run1 := func(ctx context.Context, req *PlanRequest, trace func(plan.StageEvent)) (*RunResult, error) {
		if h := checkpointFrom(ctx); h != nil {
			h.save("route", []byte("ckpt-"+req.Source.Circuit))
		}
		select {
		case <-release:
		case <-ctx.Done():
		}
		return nil, context.Canceled
	}
	m1, err := Open(Options{
		DataDir: dir, Workers: 1, Run: run1,
		CheckpointNotify: func(id, stage string) {
			select {
			case checkpointed <- id + "/" + stage:
			default:
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	j1, err := m1.Submit(testReq("s400"))
	if err != nil {
		t.Fatal(err)
	}
	j2, err := m1.Submit(testReq("s953"))
	if err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-checkpointed:
		if got != j1.ID()+"/route" {
			t.Fatalf("checkpoint notify %q, want %s/route", got, j1.ID())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("no checkpoint saved")
	}
	// No Shutdown: the "crash". m1's worker stays parked on run1.

	var mu sync.Mutex
	resumes := map[string]string{}
	run2 := func(ctx context.Context, req *PlanRequest, trace func(plan.StageEvent)) (*RunResult, error) {
		mu.Lock()
		if h := checkpointFrom(ctx); h != nil {
			resumes[req.Source.Circuit] = string(h.resume)
		}
		mu.Unlock()
		return &RunResult{Circuit: req.Source.Label()}, nil
	}
	m2, err := Open(Options{DataDir: dir, Workers: 2, Run: run2})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Shutdown(context.Background())
	if got := m2.Stats().Recovered; got != 2 {
		t.Fatalf("Recovered = %d, want 2", got)
	}
	r1, ok := m2.Get(j1.ID())
	if !ok {
		t.Fatalf("recovered manager lost job %s", j1.ID())
	}
	r2, ok := m2.Get(j2.ID())
	if !ok {
		t.Fatalf("recovered manager lost job %s", j2.ID())
	}
	waitJob(t, r1)
	waitJob(t, r2)
	if r1.State() != StateDone || r2.State() != StateDone {
		t.Fatalf("recovered jobs ended %s/%s, want done/done", r1.State(), r2.State())
	}
	mu.Lock()
	if resumes["s400"] != "ckpt-s400" {
		t.Errorf("s400 resumed with %q, want its checkpoint", resumes["s400"])
	}
	if resumes["s953"] != "" {
		t.Errorf("s953 resumed with %q, want none (it never started)", resumes["s953"])
	}
	mu.Unlock()

	// The ID sequence continues: a fresh submission must not collide with
	// the recovered IDs.
	j3, err := m2.Submit(testReq("s1269"))
	if err != nil {
		t.Fatal(err)
	}
	if j3.ID() == j1.ID() || j3.ID() == j2.ID() || idSeq(j3.ID()) <= idSeq(j2.ID()) {
		t.Fatalf("post-recovery ID %s does not continue past %s", j3.ID(), j2.ID())
	}
	waitJob(t, j3)
}

// TestManagerCacheSurvivesRestart: a cleanly stopped daemon's outcomes are
// served as cache hits — byte-for-byte — by the next incarnation.
func TestManagerCacheSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	m1, err := Open(Options{DataDir: dir, Workers: 1, Run: doneRun})
	if err != nil {
		t.Fatal(err)
	}
	j1, err := m1.Submit(testReq("s400"))
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, j1)
	if j1.State() != StateDone {
		t.Fatalf("job ended %s: %s", j1.State(), j1.Status().Err)
	}
	want := j1.Outcome().Report
	if err := m1.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	m2, err := Open(Options{DataDir: dir, Workers: 1,
		Run: func(ctx context.Context, req *PlanRequest, trace func(plan.StageEvent)) (*RunResult, error) {
			t.Error("cache miss after restart: run invoked")
			return doneRun(ctx, req, trace)
		}})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Shutdown(context.Background())
	j2, err := m2.Submit(testReq("s400"))
	if err != nil {
		t.Fatal(err)
	}
	st := j2.Status()
	if !st.CacheHit || st.State != StateDone {
		t.Fatalf("restart submission: cacheHit=%v state=%s, want hit/done", st.CacheHit, st.State)
	}
	if string(j2.Outcome().Report) != string(want) {
		t.Fatal("restarted cache served different report bytes")
	}
}

// TestDrainCancelsQueuedJobPersistently: a queued job canceled by an
// expired drain reaches canceled in memory AND in the journal — the next
// incarnation must not resurrect it.
func TestDrainCancelsQueuedJobPersistently(t *testing.T) {
	dir := t.TempDir()
	release := make(chan struct{})
	park := func(ctx context.Context, req *PlanRequest, trace func(plan.StageEvent)) (*RunResult, error) {
		select {
		case <-release:
			return &RunResult{Circuit: req.Source.Label()}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	m1, err := Open(Options{DataDir: dir, Workers: 1, Run: park})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m1.Submit(testReq("s400")); err != nil {
		t.Fatal(err)
	}
	jq, err := m1.Submit(testReq("s953"))
	if err != nil {
		t.Fatal(err)
	}
	expired, cancel := context.WithCancel(context.Background())
	cancel()
	m1.Shutdown(expired)
	if jq.State() != StateCanceled {
		t.Fatalf("queued job ended %s, want canceled", jq.State())
	}

	m2, err := Open(Options{DataDir: dir, Workers: 1, Run: doneRun})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Shutdown(context.Background())
	if got := m2.Stats().Recovered; got != 0 {
		t.Fatalf("recovered %d jobs after a full drain, want 0", got)
	}
	if _, ok := m2.Get(jq.ID()); ok {
		t.Fatalf("drain-canceled job %s resurrected", jq.ID())
	}
}

// TestWorkerSkipsQueueCanceledJobExactlyOnce pins the dequeue/cancel race
// accounting: a job canceled while queued is finalized by the cancel, the
// worker that later dequeues it skips it, and it is counted canceled
// exactly once in both the state stats and the metrics.
func TestWorkerSkipsQueueCanceledJobExactlyOnce(t *testing.T) {
	release := make(chan struct{})
	park := func(ctx context.Context, req *PlanRequest, trace func(plan.StageEvent)) (*RunResult, error) {
		select {
		case <-release:
			return &RunResult{Circuit: req.Source.Label()}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	m := NewManager(Options{Workers: 1, Run: park})
	defer m.Shutdown(context.Background())
	ja, err := m.Submit(testReq("s400"))
	if err != nil {
		t.Fatal(err)
	}
	jb, err := m.Submit(testReq("s953"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Cancel(jb.ID()); err != nil {
		t.Fatal(err)
	}
	if jb.State() != StateCanceled {
		t.Fatalf("canceled queued job is %s", jb.State())
	}
	close(release)
	waitJob(t, ja)
	// Give the worker its dequeue-and-skip of jb.
	deadline := time.Now().Add(10 * time.Second)
	for m.cCanceled.Value() < 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	s := m.Stats()
	if s.Canceled != 1 || s.Done != 1 || s.Queued != 0 || s.Running != 0 {
		t.Fatalf("stats = canceled %d done %d queued %d running %d, want 1/1/0/0",
			s.Canceled, s.Done, s.Queued, s.Running)
	}
	if got := m.cCanceled.Value(); got != 1 {
		t.Fatalf("job.canceled metric = %d, want exactly 1", got)
	}
	if !strings.Contains(jb.Status().Err, "canceled before start") {
		t.Fatalf("queued-cancel err = %q", jb.Status().Err)
	}
}
