package job

import (
	"context"
	"sync"
	"time"

	"lacret/internal/obs"
	"lacret/internal/plan"
)

// State is a job's lifecycle position. Transitions are strictly forward:
// queued → running → {done, failed, canceled}, or queued → canceled for a
// job canceled before a worker picked it up. Cache-hit jobs are born done.
type State string

const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Event is one progress notification of a job: a state transition, a
// completed pipeline stage, or a "lagged" marker standing in for events a
// slow consumer missed. Events are sequenced per job and replayed to late
// subscribers, so a stream started after the job finished still sees the
// retained history.
type Event struct {
	Seq  int    `json:"seq"`
	Type string `json:"type"` // "state", "stage", or "lagged"
	// State is set on "state" events.
	State State `json:"state,omitempty"`
	// Stage fields, set on "stage" events: the planning pass (0-based),
	// the stage name, and the flat StageEvent flags.
	Pass      int     `json:"pass,omitempty"`
	Stage     string  `json:"stage,omitempty"`
	WallMS    float64 `json:"wall_ms,omitempty"`
	Skipped   bool    `json:"skipped,omitempty"`
	Truncated bool    `json:"truncated,omitempty"`
	Recovered bool    `json:"recovered,omitempty"`
	// Err carries the job error on a terminal "state" event.
	Err string `json:"err,omitempty"`
	// Dropped is set on "lagged" events: how many events the subscriber
	// (or the retained history) lost before this marker.
	Dropped int `json:"dropped,omitempty"`
}

// Summary is the headline outcome of a finished job — the numbers lacplan
// prints, taken from the final completed planning pass.
type Summary struct {
	Circuit      string  `json:"circuit"`
	Passes       int     `json:"passes"`
	TclkNS       float64 `json:"tclk_ns"`
	TinitNS      float64 `json:"tinit_ns"`
	TminNS       float64 `json:"tmin_ns"`
	WirelengthUM float64 `json:"wirelength_um"`
	Repeaters    int     `json:"repeaters"`
	MinAreaNFOA  int     `json:"minarea_nfoa"`
	MinAreaNF    int     `json:"minarea_nf"`
	LACNFOA      int     `json:"lac_nfoa"`
	LACNF        int     `json:"lac_nf"`
	LACNWR       int     `json:"lac_nwr"`
	// Truncated counts the stage events across all passes that degraded at
	// their budget deadline.
	Truncated int `json:"truncated,omitempty"`
	// Resumed names the checkpoint boundary the first pass restored after
	// a daemon restart (empty for an uninterrupted run).
	Resumed string `json:"resumed,omitempty"`
}

// Outcome is a job's cached product: the encoded obs.Report — the exact
// bytes, so cache hits are bit-identical to the run that produced them —
// plus the decoded headline summary and the run's span forest for the
// trace endpoint.
type Outcome struct {
	Report  []byte
	Summary Summary
	// Trace is the run's hierarchical span forest (one "pass" root per
	// planning pass, stage and sub-stage spans nested), captured from the
	// job's recorder when the run finished and persisted next to the
	// report. Cache hits share the producing run's trace. May be nil for
	// outcomes recovered from a pre-trace store.
	Trace []*obs.Span
}

// Status is a point-in-time snapshot of a job, shaped for the service
// layer's JSON responses.
type Status struct {
	ID       string     `json:"id"`
	Digest   string     `json:"digest"`
	State    State      `json:"state"`
	CacheHit bool       `json:"cache_hit,omitempty"`
	Created  time.Time  `json:"created"`
	Started  *time.Time `json:"started,omitempty"`
	Finished *time.Time `json:"finished,omitempty"`
	Err      string     `json:"err,omitempty"`
	Summary  *Summary   `json:"summary,omitempty"`
}

// Job is one submitted request tracked by a Manager. All methods are safe
// for concurrent use.
type Job struct {
	id     string
	digest string
	req    *PlanRequest

	ctx    context.Context
	cancel context.CancelFunc

	// resume is the stage checkpoint a crashed incarnation of this job
	// saved; the worker hands it to the pipeline. Set before the job is
	// visible to any worker, read-only afterwards.
	resume []byte

	mu       sync.Mutex
	state    State
	cacheHit bool
	created  time.Time
	started  time.Time
	finished time.Time
	err      string
	outcome  *Outcome
	events   []Event
	eventSeq int
	// histDropped counts events aged out of the retained history
	// (maxEventHistory); late subscribers get one lagged marker for them.
	histDropped int
	subs        map[int]*subscriber
	subSeq      int

	// persist, when set by the manager, is called exactly once after the
	// job commits its terminal transition — outside the job lock, so the
	// store's fsync never stalls subscribers or status polls.
	persist func(j *Job, state State, errMsg string, out *Outcome)

	done chan struct{}
}

// subscriber is one live event consumer. dropped counts the events lost
// to its full buffer since the last marker it managed to take.
type subscriber struct {
	ch      chan Event
	dropped int
}

// maxEventHistory bounds the retained per-job event history. A job with
// many planning passes (or pathological stage churn) ages out its oldest
// events rather than growing without bound; subscribers see a lagged
// marker in place of the aged-out prefix.
const maxEventHistory = 4096

func newJob(id, digest string, req *PlanRequest) *Job {
	ctx, cancel := context.WithCancel(context.Background())
	j := &Job{
		id: id, digest: digest, req: req,
		ctx: ctx, cancel: cancel,
		state: StateQueued, created: time.Now(),
		subs: map[int]*subscriber{},
		done: make(chan struct{}),
	}
	j.emitLocked(Event{Type: "state", State: StateQueued})
	return j
}

// newCachedJob builds a job that is done on arrival: its outcome was
// served from the content-addressed cache and no worker ever runs it.
func newCachedJob(id, digest string, req *PlanRequest, out *Outcome) *Job {
	j := &Job{
		id: id, digest: digest, req: req,
		ctx: context.Background(), cancel: func() {},
		state: StateDone, cacheHit: true,
		created: time.Now(), finished: time.Now(),
		outcome: out,
		subs:    map[int]*subscriber{},
		done:    make(chan struct{}),
	}
	j.emitLocked(Event{Type: "state", State: StateDone})
	close(j.done)
	return j
}

// ID returns the job's identifier.
func (j *Job) ID() string { return j.id }

// Digest returns the request's content digest.
func (j *Job) Digest() string { return j.digest }

// Request returns the normalized request the job runs.
func (j *Job) Request() *PlanRequest { return j.req }

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Outcome returns the job's product, or nil while it is still in flight
// (and for jobs that failed before producing a report).
func (j *Job) Outcome() *Outcome {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.outcome
}

// State returns the job's current state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Status snapshots the job.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{
		ID: j.id, Digest: j.digest, State: j.state,
		CacheHit: j.cacheHit, Created: j.created, Err: j.err,
	}
	if !j.started.IsZero() {
		t := j.started
		st.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.Finished = &t
	}
	if j.outcome != nil {
		s := j.outcome.Summary
		st.Summary = &s
	}
	return st
}

// Subscribe returns the job's retained event history plus a live channel
// for what follows, and a cancel function releasing the subscription. For
// a job already in a terminal state the channel comes back closed, so a
// subscriber always sees history-then-EOF regardless of when it arrives.
// The live channel is buffered; a subscriber that stops draining loses
// events rather than blocking the worker, and sees a "lagged" event (with
// the dropped count) once it drains again. History aged out of the
// retention bound appears the same way, as one leading lagged marker.
func (j *Job) Subscribe() ([]Event, <-chan Event, func()) {
	j.mu.Lock()
	defer j.mu.Unlock()
	var hist []Event
	if j.histDropped > 0 {
		hist = append(hist, Event{Type: "lagged", Dropped: j.histDropped})
	}
	hist = append(hist, j.events...)
	ch := make(chan Event, 64)
	if j.state.Terminal() {
		close(ch)
		return hist, ch, func() {}
	}
	id := j.subSeq
	j.subSeq++
	j.subs[id] = &subscriber{ch: ch}
	cancel := func() {
		j.mu.Lock()
		defer j.mu.Unlock()
		if s, ok := j.subs[id]; ok {
			delete(j.subs, id)
			close(s.ch)
		}
	}
	return hist, ch, cancel
}

// emitLocked appends an event and fans it out; the caller holds no lock
// only during construction (newJob/newCachedJob), every other caller goes
// through emit.
func (j *Job) emitLocked(ev Event) {
	ev.Seq = j.eventSeq
	j.eventSeq++
	j.events = append(j.events, ev)
	if len(j.events) > maxEventHistory {
		// Age out the oldest quarter in one copy instead of sliding by one
		// per event — O(1) amortized, and the slice header is reallocated
		// so the dropped prefix is actually released.
		drop := maxEventHistory / 4
		j.histDropped += drop
		j.events = append([]Event(nil), j.events[drop:]...)
	}
	for _, s := range j.subs {
		if s.dropped > 0 {
			// The subscriber fell behind earlier; a marker for the gap must
			// land before anything newer.
			select {
			case s.ch <- Event{Type: "lagged", Dropped: s.dropped}:
				s.dropped = 0
			default:
				s.dropped++
				continue
			}
		}
		select {
		case s.ch <- ev:
		default: // slow subscriber: drop rather than stall the worker
			s.dropped++
		}
	}
}

func (j *Job) emit(ev Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.emitLocked(ev)
}

// emitStage converts one pipeline stage event into a job event.
func (j *Job) emitStage(pass int, ev plan.StageEvent) {
	j.emit(Event{
		Type: "stage", Pass: pass, Stage: ev.Stage,
		WallMS:  float64(ev.Wall.Microseconds()) / 1000,
		Skipped: ev.Skipped, Truncated: ev.Truncated, Recovered: ev.Recovered,
	})
}

// toRunning moves a queued job to running; it reports false when the job
// was canceled while waiting in the queue, in which case the worker must
// skip it.
func (j *Job) toRunning() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateRunning
	j.started = time.Now()
	j.emitLocked(Event{Type: "state", State: StateRunning})
	return true
}

// requestCancel cancels the job's context; a job still in the queue is
// finalized immediately (its worker slot is never consumed), a running job
// stops at its next checkpoint and finalizes through the worker.
func (j *Job) requestCancel() {
	j.cancel()
	j.mu.Lock()
	did := false
	if j.state == StateQueued {
		did = j.finishLocked(StateCanceled, "canceled before start", nil)
	}
	p := j.persist
	j.mu.Unlock()
	if did && p != nil {
		p(j, StateCanceled, "canceled before start", nil)
	}
}

// finish moves the job to a terminal state exactly once: later calls are
// no-ops, so a queue-cancel racing the worker's finalization is safe. The
// transition that wins also runs the manager's persist hook (terminal
// journal record + report store), outside the job lock.
func (j *Job) finish(state State, errMsg string, out *Outcome) {
	j.mu.Lock()
	did := j.finishLocked(state, errMsg, out)
	p := j.persist
	j.mu.Unlock()
	if did && p != nil {
		p(j, state, errMsg, out)
	}
}

// finishLocked commits the terminal transition; true when this call won.
func (j *Job) finishLocked(state State, errMsg string, out *Outcome) bool {
	if j.state.Terminal() {
		return false
	}
	j.state = state
	j.finished = time.Now()
	j.err = errMsg
	j.outcome = out
	j.emitLocked(Event{Type: "state", State: state, Err: errMsg})
	for id, s := range j.subs {
		delete(j.subs, id)
		close(s.ch)
	}
	close(j.done)
	return true
}
