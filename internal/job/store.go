package job

import (
	"encoding/json"
	"fmt"
	"path"
	"sort"
	"strings"
	"sync"
	"time"

	"lacret/internal/obs"
)

// Store is the manager's durable state under one data directory:
//
//	journal.wal          write-ahead log of accepts and terminal states
//	reports/<digest>.json terminal outcomes, content-addressed like the cache
//	checkpoints/<id>.ckpt the newest stage-boundary snapshot of a live job
//
// Reports and checkpoints are written atomically (temp + fsync + rename);
// the journal is append-only with per-record CRCs. Together they give the
// crash contract: an acknowledged submission survives a crash (it is
// re-enqueued on restart, resuming from its last checkpoint if one was
// taken), and a reported outcome survives byte-for-byte.
//
// All methods are safe for concurrent use.
type Store struct {
	fs  FS
	dir string

	mu sync.Mutex
	jl *journal
}

// PendingJob is one journaled-but-unfinished job found at recovery: the
// restarted manager re-enqueues it under its original ID, handing the
// checkpoint (when one was saved) back to the pipeline as the resume point.
type PendingJob struct {
	ID         string
	Digest     string
	Req        PlanRequest
	Checkpoint []byte
}

// Recovered is what OpenStore found on disk.
type Recovered struct {
	// Pending lists the accepted jobs with no terminal record, in accept
	// order — the restart re-runs these.
	Pending []PendingJob
	// Reports lists the stored outcomes oldest-first (so replaying them
	// into an LRU cache in order leaves the newest most recently used).
	Reports []StoredReport
}

// StoredReport is one recovered outcome.
type StoredReport struct {
	Digest  string
	Outcome *Outcome
}

// reportEnvelope is the on-disk outcome format. Report is []byte (base64
// in the envelope), NOT json.RawMessage: marshaling a RawMessage compacts
// it, and the crash contract promises the recovered report byte-for-byte
// as the producing run encoded it (indentation included). Trace is the
// run's span forest (additive field: envelopes written before it existed
// decode with a nil trace, and the trace endpoint falls back to the
// report's stage spans).
type reportEnvelope struct {
	Digest  string      `json:"digest"`
	State   State       `json:"state"`
	Err     string      `json:"err,omitempty"`
	Summary Summary     `json:"summary"`
	Report  []byte      `json:"report,omitempty"`
	Trace   []*obs.Span `json:"trace,omitempty"`
}

// OpenStore opens (creating as needed) the durable store at dir, replays
// the journal, loads the stored reports, and compacts the journal down to
// the still-pending jobs.
func OpenStore(fsys FS, dir string) (*Store, *Recovered, error) {
	for _, d := range []string{dir, path.Join(dir, "reports"), path.Join(dir, "checkpoints")} {
		if err := fsys.MkdirAll(d, 0o755); err != nil {
			return nil, nil, fmt.Errorf("job: create data dir: %w", err)
		}
	}
	s := &Store{fs: fsys, dir: dir}

	// Replay: accepts minus terminals, in accept order. The WAL image may
	// be missing (first boot) or torn (crash mid-append) — both are fine.
	img, err := fsys.ReadFile(s.journalPath())
	if err != nil {
		img = nil
	}
	var pendingOrder []string
	pending := map[string]*PendingJob{}
	for _, rec := range replayJournal(img) {
		switch rec.Kind {
		case recAccept:
			if rec.Req == nil || rec.ID == "" {
				continue
			}
			if _, ok := pending[rec.ID]; !ok {
				pendingOrder = append(pendingOrder, rec.ID)
			}
			pending[rec.ID] = &PendingJob{ID: rec.ID, Digest: rec.Digest, Req: *rec.Req}
		case recTerminal:
			delete(pending, rec.ID)
		}
	}
	rec := &Recovered{}
	var compact []journalRecord
	for _, id := range pendingOrder {
		p, ok := pending[id]
		if !ok {
			continue
		}
		p.Checkpoint, _ = fsys.ReadFile(s.checkpointPath(id))
		rec.Pending = append(rec.Pending, *p)
		req := p.Req
		compact = append(compact, journalRecord{Kind: recAccept, ID: p.ID, Digest: p.Digest, Req: &req})
	}
	if compact == nil {
		compact = []journalRecord{} // non-nil: always rewrite at open
	}
	s.mu.Lock()
	s.jl, err = openJournal(fsys, s.journalPath(), compact)
	s.mu.Unlock()
	if err != nil {
		return nil, nil, err
	}

	rec.Reports, err = s.loadReports()
	if err != nil {
		return nil, nil, err
	}
	return s, rec, nil
}

func (s *Store) journalPath() string { return path.Join(s.dir, "journal.wal") }
func (s *Store) reportPath(digest string) string {
	return path.Join(s.dir, "reports", digest+".json")
}
func (s *Store) checkpointPath(id string) string {
	return path.Join(s.dir, "checkpoints", id+".ckpt")
}

// Accept journals an accepted request; when it returns nil the acceptance
// is durable and the submission may be acknowledged.
func (s *Store) Accept(id, digest string, req *PlanRequest) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jl.append(journalRecord{Kind: recAccept, ID: id, Digest: digest, Req: req})
}

// Terminal settles a job: the outcome (when there is one) is persisted
// content-addressed first, then the terminal record is journaled, then the
// job's checkpoint is dropped. A crash between the steps re-runs the job —
// wasteful but correct, since the report write is atomic and idempotent.
func (s *Store) Terminal(id, digest string, state State, errMsg string, out *Outcome) error {
	if out != nil && len(out.Report) > 0 {
		env := reportEnvelope{
			Digest: digest, State: state, Err: errMsg,
			Summary: out.Summary, Report: out.Report, Trace: out.Trace,
		}
		data, err := json.Marshal(&env)
		if err != nil {
			return fmt.Errorf("job: encode report envelope: %w", err)
		}
		if err := writeFileAtomic(s.fs, s.reportPath(digest), data); err != nil {
			return fmt.Errorf("job: persist report: %w", err)
		}
	}
	s.mu.Lock()
	err := s.jl.append(journalRecord{Kind: recTerminal, ID: id, Digest: digest, State: state, Err: errMsg})
	s.mu.Unlock()
	if err != nil {
		return err
	}
	s.fs.Remove(s.checkpointPath(id))
	return nil
}

// SaveCheckpoint atomically replaces the job's resume point. Called from
// the pipeline's stage boundary, so a crash at any instant leaves either
// the previous checkpoint or the new one.
func (s *Store) SaveCheckpoint(id string, data []byte) error {
	if err := writeFileAtomic(s.fs, s.checkpointPath(id), data); err != nil {
		return fmt.Errorf("job: persist checkpoint: %w", err)
	}
	return nil
}

// LoadCheckpoint returns the job's saved resume point, nil if none.
func (s *Store) LoadCheckpoint(id string) []byte {
	data, err := s.fs.ReadFile(s.checkpointPath(id))
	if err != nil {
		return nil
	}
	return data
}

// loadReports reads every stored outcome, oldest-first by modification
// time; unreadable or corrupt envelopes are skipped, not fatal.
func (s *Store) loadReports() ([]StoredReport, error) {
	entries, err := s.fs.ReadDir(path.Join(s.dir, "reports"))
	if err != nil {
		return nil, fmt.Errorf("job: list reports: %w", err)
	}
	type stamped struct {
		rep StoredReport
		mod time.Time
	}
	var reps []stamped
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".json") {
			continue
		}
		data, err := s.fs.ReadFile(path.Join(s.dir, "reports", name))
		if err != nil {
			continue
		}
		var env reportEnvelope
		if err := json.Unmarshal(data, &env); err != nil || env.Digest == "" {
			continue
		}
		var mod time.Time
		if info, err := e.Info(); err == nil {
			mod = info.ModTime()
		}
		reps = append(reps, stamped{
			rep: StoredReport{Digest: env.Digest, Outcome: &Outcome{Report: env.Report, Summary: env.Summary, Trace: env.Trace}},
			mod: mod,
		})
	}
	sort.SliceStable(reps, func(i, j int) bool { return reps[i].mod.Before(reps[j].mod) })
	out := make([]StoredReport, len(reps))
	for i, r := range reps {
		out[i] = r.rep
	}
	return out, nil
}

// PruneReports deletes the oldest stored reports past keep, bounding the
// data directory the same way the in-memory cache is bounded.
func (s *Store) PruneReports(keep int) {
	reps, err := s.loadReports()
	if err != nil || len(reps) <= keep {
		return
	}
	for _, r := range reps[:len(reps)-keep] {
		s.fs.Remove(s.reportPath(r.Digest))
	}
}

// Close releases the journal handle.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.jl == nil {
		return nil
	}
	err := s.jl.close()
	s.jl = nil
	return err
}
