package job_test

import (
	"strings"
	"testing"

	"lacret/internal/bench89"
	"lacret/internal/job"
)

// TestDigestDeterministic pins that the digest is a pure function of the
// normalized request.
func TestDigestDeterministic(t *testing.T) {
	a := job.PlanRequest{Source: job.Source{Circuit: "s386"}, Config: job.ReqConfig{Seed: 7}}
	b := job.PlanRequest{Source: job.Source{Circuit: "s386"}, Config: job.ReqConfig{Seed: 7}}
	a.Normalize()
	b.Normalize()
	if a.Digest() != b.Digest() {
		t.Fatalf("identical requests digest differently:\n%s\n%s", a.Digest(), b.Digest())
	}
	c := b
	c.Config.Seed = 8
	if c.Digest() == b.Digest() {
		t.Fatal("different seeds collide")
	}
}

// TestDigestNormalizedEquivalence pins the point of normalization: the
// defaulted form and the spelled-out form of the same request are one cache
// entry.
func TestDigestNormalizedEquivalence(t *testing.T) {
	ws, slack := 0.13, 0.2
	defaulted := job.PlanRequest{Source: job.Source{Circuit: "s386"}, Config: job.ReqConfig{Seed: 1}}
	explicit := job.PlanRequest{
		Source: job.Source{Circuit: "s386"},
		Config: job.ReqConfig{
			Whitespace: ws, TclkSlack: slack, Nmax: 5, Iterations: 1,
			Seed: 1, ProbeEngine: "auto",
		},
	}
	defaulted.Normalize()
	explicit.Normalize()
	if defaulted.Digest() != explicit.Digest() {
		t.Fatal("defaulted and explicit forms of the same request digest differently")
	}
}

// TestDigestCatalogSeed pins the experiments convention: seed 0 on a
// catalog circuit is that circuit's catalog seed, so both spellings share a
// digest (and therefore a cache entry).
func TestDigestCatalogSeed(t *testing.T) {
	p, ok := bench89.ByName("s386")
	if !ok {
		t.Fatal("s386 missing from catalog")
	}
	zero := job.PlanRequest{Source: job.Source{Circuit: "s386"}}
	explicit := job.PlanRequest{Source: job.Source{Circuit: "s386"}, Config: job.ReqConfig{Seed: p.Seed}}
	zero.Normalize()
	explicit.Normalize()
	if zero.Config.Seed != p.Seed {
		t.Fatalf("seed 0 resolved to %d, want catalog seed %d", zero.Config.Seed, p.Seed)
	}
	if zero.Digest() != explicit.Digest() {
		t.Fatal("catalog-seed and explicit-seed forms digest differently")
	}
}

// TestAlphaSentinelDigests pins that "default alpha" and "explicit alpha 0"
// (freeze the tile weights) are different requests.
func TestAlphaSentinelDigests(t *testing.T) {
	zero := 0.0
	def := job.PlanRequest{Source: job.Source{Circuit: "s386"}}
	frozen := job.PlanRequest{Source: job.Source{Circuit: "s386"}, Config: job.ReqConfig{Alpha: &zero}}
	def.Normalize()
	frozen.Normalize()
	if def.Digest() == frozen.Digest() {
		t.Fatal("default alpha and explicit alpha=0 collide")
	}
	cfg := frozen.PlanConfig()
	if !cfg.LAC.AlphaSet || cfg.LAC.Alpha != 0 {
		t.Fatalf("explicit zero alpha lost: %+v", cfg.LAC)
	}
	if def.PlanConfig().LAC.AlphaSet {
		t.Fatal("default request set AlphaSet")
	}
}

func TestValidateRejections(t *testing.T) {
	bad := []struct {
		name string
		req  job.PlanRequest
	}{
		{"no source", job.PlanRequest{}},
		{"both sources", job.PlanRequest{Source: job.Source{Circuit: "s386", Bench: "INPUT(a)\n"}}},
		{"unknown circuit", job.PlanRequest{Source: job.Source{Circuit: "nosuch"}}},
		{"bad engine", job.PlanRequest{
			Source: job.Source{Circuit: "s386"},
			Config: job.ReqConfig{ProbeEngine: "eager"},
		}},
		{"negative budget", job.PlanRequest{
			Source: job.Source{Circuit: "s386"},
			Config: job.ReqConfig{BudgetMS: -1},
		}},
		{"whitespace out of range", job.PlanRequest{
			Source: job.Source{Circuit: "s386"},
			Config: job.ReqConfig{Whitespace: 1.5},
		}},
	}
	for _, tc := range bad {
		req := tc.req
		req.Normalize()
		if err := req.Validate(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	alpha := 1.5
	req := job.PlanRequest{Source: job.Source{Circuit: "s386"}, Config: job.ReqConfig{Alpha: &alpha}}
	req.Normalize()
	if err := req.Validate(); err == nil || !strings.Contains(err.Error(), "alpha") {
		t.Errorf("alpha 1.5 accepted (err: %v)", err)
	}
}

// TestSourceNetlist pins that inline bench sources parse and catalog
// sources generate, each with the right label.
func TestSourceNetlist(t *testing.T) {
	s := job.Source{Bench: "INPUT(a)\nOUTPUT(g)\ng = NOT(a)\n"}
	if s.Label() != "bench" {
		t.Fatalf("label %q", s.Label())
	}
	nl, err := s.Netlist()
	if err != nil {
		t.Fatal(err)
	}
	if nl.Stats().Gates != 1 {
		t.Fatalf("stats %+v", nl.Stats())
	}
	c := job.Source{Circuit: "s386"}
	nl, err = c.Netlist()
	if err != nil {
		t.Fatal(err)
	}
	if nl.Stats().Gates != 159 {
		t.Fatalf("stats %+v", nl.Stats())
	}
}
