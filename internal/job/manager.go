package job

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"lacret/internal/obs"
	"lacret/internal/plan"
)

// ErrShutdown is returned by Submit once Shutdown has begun.
var ErrShutdown = errors.New("job: manager is shutting down")

// ErrNotFound is returned when a job ID is unknown.
var ErrNotFound = errors.New("job: no such job")

// ErrQueueFull is the backpressure signal: the queue had no room for the
// request. RetryAfter is the suggested resubmission delay (the service
// layer maps it to a Retry-After header on a 429).
type ErrQueueFull struct {
	RetryAfter time.Duration
}

func (e *ErrQueueFull) Error() string {
	return fmt.Sprintf("job: queue full, retry after %s", e.RetryAfter)
}

// RunFunc executes one planning request. The default is DefaultRun; tests
// substitute their own to control timing and failure modes. trace receives
// every pipeline stage event as it completes (never nil).
type RunFunc func(ctx context.Context, req *PlanRequest, trace func(plan.StageEvent)) (*RunResult, error)

// RunResult is what a run hands back for reporting: the circuit label and
// the planning iterations (per-pass errors included — a canceled pass
// still carries its best-so-far partial result).
type RunResult struct {
	Circuit string
	Iters   []plan.Iteration
}

// DefaultRun plans the request with the real pipeline.
func DefaultRun(ctx context.Context, req *PlanRequest, trace func(plan.StageEvent)) (*RunResult, error) {
	nl, err := req.Source.Netlist()
	if err != nil {
		return nil, err
	}
	cfg := req.PlanConfig()
	cfg.Trace = trace
	iters, err := plan.PlanIterationsContext(ctx, nl, cfg, req.Config.Iterations)
	if err != nil {
		return nil, err
	}
	return &RunResult{Circuit: nl.Name, Iters: iters}, nil
}

// Options configures a Manager. The zero value selects GOMAXPROCS
// workers, a queue of twice that, a 64-entry cache, and the real planning
// pipeline.
type Options struct {
	// Workers is the worker-pool size (0 = GOMAXPROCS).
	Workers int
	// QueueDepth bounds the submissions waiting for a worker; a full
	// queue rejects with ErrQueueFull (0 = 2×Workers).
	QueueDepth int
	// CacheEntries bounds the content-addressed result cache; at most
	// this many outcomes are retained, LRU-evicted (0 = 64, negative
	// disables caching).
	CacheEntries int
	// RetainJobs bounds the terminal jobs kept for polling; the oldest
	// are forgotten past it (0 = 4096).
	RetainJobs int
	// Registry receives the manager's metrics (job.submitted,
	// job.cache_hits, job.running, ...). nil creates a private one.
	Registry *obs.Registry
	// Run is the planning implementation (nil = DefaultRun).
	Run RunFunc
}

// Manager owns the job layer: a bounded worker pool consuming a bounded
// queue of PlanRequests, a job table for poll/cancel, and the
// content-addressed outcome cache. All methods are safe for concurrent
// use.
type Manager struct {
	workers  int
	queueCap int
	retain   int
	run      RunFunc
	reg      *obs.Registry

	mu     sync.Mutex
	closed bool
	seq    int
	jobs   map[string]*Job
	order  []string // creation order, for retention and listing
	cache  *resultCache
	queue  chan *Job

	wg       sync.WaitGroup
	runningN atomic.Int64

	cSubmitted, cCacheHits, cCacheMiss, cRejected *obs.Counter
	cDone, cFailed, cCanceled                     *obs.Counter
	gRunning, gQueued, gCacheEntries              *obs.Gauge
}

// NewManager starts the worker pool and returns the manager.
func NewManager(opts Options) *Manager {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 2 * opts.Workers
	}
	switch {
	case opts.CacheEntries == 0:
		opts.CacheEntries = 64
	case opts.CacheEntries < 0:
		opts.CacheEntries = 0
	}
	if opts.RetainJobs <= 0 {
		opts.RetainJobs = 4096
	}
	if opts.Run == nil {
		opts.Run = DefaultRun
	}
	reg := opts.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	m := &Manager{
		workers:  opts.Workers,
		queueCap: opts.QueueDepth,
		retain:   opts.RetainJobs,
		run:      opts.Run,
		reg:      reg,
		jobs:     map[string]*Job{},
		cache:    newResultCache(opts.CacheEntries),
		queue:    make(chan *Job, opts.QueueDepth),

		cSubmitted: reg.Counter("job.submitted"),
		cCacheHits: reg.Counter("job.cache_hits"),
		cCacheMiss: reg.Counter("job.cache_misses"),
		cRejected:  reg.Counter("job.rejected"),
		cDone:      reg.Counter("job.done"),
		cFailed:    reg.Counter("job.failed"),
		cCanceled:  reg.Counter("job.canceled"),

		gRunning:      reg.Gauge("job.running"),
		gQueued:       reg.Gauge("job.queued"),
		gCacheEntries: reg.Gauge("job.cache_entries"),
	}
	for i := 0; i < m.workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m
}

// Registry returns the manager's metrics registry (for the debug listener
// and the stats endpoint).
func (m *Manager) Registry() *obs.Registry { return m.reg }

// Workers returns the worker-pool size.
func (m *Manager) Workers() int { return m.workers }

// QueueDepth returns the queue capacity.
func (m *Manager) QueueDepth() int { return m.queueCap }

// Submit normalizes, validates, and enqueues a request. A request whose
// digest is already in the outcome cache comes back as a job that is done
// on arrival, carrying the cached report byte-for-byte — no worker runs.
// A full queue rejects with *ErrQueueFull; a draining manager with
// ErrShutdown.
func (m *Manager) Submit(req PlanRequest) (*Job, error) {
	req.Normalize()
	if err := req.Validate(); err != nil {
		return nil, err
	}
	digest := req.Digest()
	m.cSubmitted.Inc()

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, ErrShutdown
	}
	if out, ok := m.cache.get(digest); ok {
		j := newCachedJob(m.nextIDLocked(digest), digest, &req, out)
		m.registerLocked(j)
		m.mu.Unlock()
		m.cCacheHits.Inc()
		m.cDone.Inc()
		return j, nil
	}
	j := newJob(m.nextIDLocked(digest), digest, &req)
	select {
	case m.queue <- j:
	default:
		m.mu.Unlock()
		m.cRejected.Inc()
		return nil, &ErrQueueFull{RetryAfter: time.Second}
	}
	m.registerLocked(j)
	m.gQueued.Set(float64(len(m.queue)))
	m.mu.Unlock()
	m.cCacheMiss.Inc()
	return j, nil
}

// nextIDLocked mints a job ID: a process-unique sequence number plus a
// digest prefix for human correlation.
func (m *Manager) nextIDLocked(digest string) string {
	m.seq++
	return fmt.Sprintf("j%d-%s", m.seq, digest[:12])
}

// registerLocked adds the job to the table, forgetting the oldest terminal
// jobs past the retention bound so a long-lived daemon's table stays flat.
// Active jobs are never evicted; a table full of them is allowed to grow.
func (m *Manager) registerLocked(j *Job) {
	m.jobs[j.id] = j
	m.order = append(m.order, j.id)
	for len(m.jobs) > m.retain {
		idx := -1
		for i, id := range m.order {
			if old, ok := m.jobs[id]; ok && old.State().Terminal() {
				idx = i
				break
			}
		}
		if idx < 0 {
			break
		}
		delete(m.jobs, m.order[idx])
		m.order = append(m.order[:idx], m.order[idx+1:]...)
	}
}

// Get returns the job with the given ID.
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// Cancel cancels the job with the given ID: a queued job finalizes
// immediately, a running one stops at its next checkpoint and commits its
// best-so-far result through the anytime path.
func (m *Manager) Cancel(id string) (*Job, error) {
	j, ok := m.Get(id)
	if !ok {
		return nil, ErrNotFound
	}
	j.requestCancel()
	return j, nil
}

// Jobs snapshots every tracked job's status in creation order.
func (m *Manager) Jobs() []Status {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Status, 0, len(m.jobs))
	for _, id := range m.order {
		if j, ok := m.jobs[id]; ok {
			out = append(out, j.Status())
		}
	}
	return out
}

// Stats is the pool/cache snapshot served by the stats endpoint.
type Stats struct {
	Workers      int                 `json:"workers"`
	QueueCap     int                 `json:"queue_cap"`
	Queued       int                 `json:"queued"`
	Running      int                 `json:"running"`
	Done         int                 `json:"done"`
	Failed       int                 `json:"failed"`
	Canceled     int                 `json:"canceled"`
	CacheEntries int                 `json:"cache_entries"`
	CacheHits    int64               `json:"cache_hits"`
	CacheMisses  int64               `json:"cache_misses"`
	Rejected     int64               `json:"rejected"`
	Draining     bool                `json:"draining,omitempty"`
	Metrics      obs.MetricsSnapshot `json:"metrics"`
}

// Stats snapshots the manager.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	s := Stats{
		Workers:      m.workers,
		QueueCap:     m.queueCap,
		CacheEntries: m.cache.len(),
		Draining:     m.closed,
	}
	var jobs []*Job
	for _, j := range m.jobs {
		jobs = append(jobs, j)
	}
	m.mu.Unlock()
	for _, j := range jobs {
		switch j.State() {
		case StateQueued:
			s.Queued++
		case StateRunning:
			s.Running++
		case StateDone:
			s.Done++
		case StateFailed:
			s.Failed++
		case StateCanceled:
			s.Canceled++
		}
	}
	s.CacheHits = m.cCacheHits.Value()
	s.CacheMisses = m.cCacheMiss.Value()
	s.Rejected = m.cRejected.Value()
	s.Metrics = m.reg.Snapshot()
	return s
}

// Shutdown drains the manager: no further submissions are accepted, and
// queued plus running jobs are given until ctx expires to finish. At the
// deadline every in-flight job's context is canceled, which makes the
// anytime stages commit their best-so-far results; Shutdown then waits for
// the workers to finalize those jobs and returns. The error is ctx's when
// the grace period fired, nil on a clean drain.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	if !m.closed {
		m.closed = true
		close(m.queue)
	}
	m.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
	}
	m.mu.Lock()
	for _, j := range m.jobs {
		if !j.State().Terminal() {
			j.requestCancel()
		}
	}
	m.mu.Unlock()
	<-drained
	return ctx.Err()
}

// worker consumes the queue until Shutdown closes it.
func (m *Manager) worker() {
	defer m.wg.Done()
	for j := range m.queue {
		m.gQueued.Set(float64(len(m.queue)))
		m.runJob(j)
	}
}

// runJob executes one job end to end. A panic escaping the run — the
// pipeline already contains stage panics into StageErrors, so this is the
// last line of defense — fails the job without killing the worker or the
// daemon.
func (m *Manager) runJob(j *Job) {
	if !j.toRunning() {
		// Canceled while queued; requestCancel already finalized it.
		m.cCanceled.Inc()
		return
	}
	m.gRunning.Set(float64(m.runningN.Add(1)))
	defer func() { m.gRunning.Set(float64(m.runningN.Add(-1))) }()
	defer func() {
		if r := recover(); r != nil {
			j.finish(StateFailed, fmt.Sprintf("panic: %v", r), nil)
			m.cFailed.Inc()
		}
	}()

	// Each job records into its own recorder: the spans and metrics land
	// in that job's report, while the manager's registry keeps the
	// fleet-wide counters.
	rec := obs.NewRecorder()
	ctx := obs.NewContext(j.ctx, rec)
	pass := -1
	trace := func(ev plan.StageEvent) {
		if ev.Index == 0 {
			pass++
		}
		j.emitStage(pass, ev)
	}

	res, err := m.run(ctx, j.req, trace)
	if err != nil {
		state, c := StateFailed, m.cFailed
		if j.ctx.Err() != nil {
			state, c = StateCanceled, m.cCanceled
		}
		j.finish(state, err.Error(), nil)
		c.Inc()
		return
	}

	var iterErr error
	for _, it := range res.Iters {
		if it.Err != nil {
			iterErr = it.Err
		}
	}
	rep := &obs.Report{
		Tool:    "lacretd",
		Circuit: res.Circuit,
		Config:  j.req.Config.Map(),
		Passes:  plan.PassReports(res.Iters),
		Metrics: rec.Registry().Snapshot(),
	}
	data, encErr := rep.Encode()
	if encErr != nil {
		j.finish(StateFailed, fmt.Sprintf("encode report: %v", encErr), nil)
		m.cFailed.Inc()
		return
	}
	out := &Outcome{Report: data, Summary: summarize(res)}
	switch {
	case iterErr != nil && j.ctx.Err() != nil:
		// Canceled mid-plan: the anytime path committed best-so-far, and
		// the report of the completed prefix rides along.
		j.finish(StateCanceled, iterErr.Error(), out)
		m.cCanceled.Inc()
	case iterErr != nil:
		j.finish(StateFailed, iterErr.Error(), out)
		m.cFailed.Inc()
	default:
		m.mu.Lock()
		m.cache.put(j.digest, out)
		m.gCacheEntries.Set(float64(m.cache.len()))
		m.mu.Unlock()
		j.finish(StateDone, "", out)
		m.cDone.Inc()
	}
}

// summarize extracts the headline numbers from the final completed pass.
func summarize(res *RunResult) Summary {
	s := Summary{Circuit: res.Circuit, Passes: len(res.Iters)}
	var final *plan.Result
	for _, it := range res.Iters {
		if it.Result != nil && it.Err == nil {
			final = it.Result
		}
	}
	if final == nil {
		for _, it := range res.Iters {
			if it.Result != nil {
				final = it.Result
			}
		}
	}
	if final == nil {
		return s
	}
	s.TclkNS, s.TinitNS, s.TminNS = final.Tclk, final.Tinit, final.Tmin
	s.WirelengthUM = final.RouteWirelength
	s.Repeaters = final.RepeaterCount
	if final.MinArea != nil {
		s.MinAreaNFOA, s.MinAreaNF = final.MinArea.NFOA, final.MinArea.NF
	}
	if final.LAC != nil {
		s.LACNFOA, s.LACNF, s.LACNWR = final.LAC.NFOA, final.LAC.NF, final.LAC.NWR
	}
	for _, it := range res.Iters {
		if it.Result != nil {
			s.Truncated += len(it.Result.TruncatedStages())
		}
	}
	return s
}
