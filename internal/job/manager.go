package job

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"lacret/internal/obs"
	"lacret/internal/plan"
	"lacret/internal/retime"
)

// ErrShutdown is returned by Submit once Shutdown has begun.
var ErrShutdown = errors.New("job: manager is shutting down")

// ErrNotFound is returned when a job ID is unknown.
var ErrNotFound = errors.New("job: no such job")

// ErrQueueFull is the backpressure signal: the queue had no room for the
// request. RetryAfter is the suggested resubmission delay (the service
// layer maps it to a Retry-After header on a 429).
type ErrQueueFull struct {
	RetryAfter time.Duration
}

func (e *ErrQueueFull) Error() string {
	return fmt.Sprintf("job: queue full, retry after %s", e.RetryAfter)
}

// RunFunc executes one planning request. The default is DefaultRun; tests
// substitute their own to control timing and failure modes. trace receives
// every pipeline stage event as it completes (never nil).
type RunFunc func(ctx context.Context, req *PlanRequest, trace func(plan.StageEvent)) (*RunResult, error)

// RunResult is what a run hands back for reporting: the circuit label and
// the planning iterations (per-pass errors included — a canceled pass
// still carries its best-so-far partial result).
type RunResult struct {
	Circuit string
	Iters   []plan.Iteration
}

// DefaultRun plans the request with the real pipeline. When the manager
// runs with a durable store, the context carries the job's checkpoint
// handle: stage snapshots flow out to disk, and a snapshot left behind by
// a crashed incarnation flows back in as the resume point.
func DefaultRun(ctx context.Context, req *PlanRequest, trace func(plan.StageEvent)) (*RunResult, error) {
	nl, err := req.Source.Netlist()
	if err != nil {
		return nil, err
	}
	cfg := req.PlanConfig()
	cfg.Trace = trace
	if h := checkpointFrom(ctx); h != nil {
		cfg.Checkpoint = h.save
		cfg.Resume = h.resume
	}
	iters, err := plan.PlanIterationsContext(ctx, nl, cfg, req.Config.Iterations)
	if err != nil {
		return nil, err
	}
	return &RunResult{Circuit: nl.Name, Iters: iters}, nil
}

// Options configures a Manager. The zero value selects GOMAXPROCS
// workers, a queue of twice that, a 64-entry cache, and the real planning
// pipeline.
type Options struct {
	// Workers is the worker-pool size (0 = GOMAXPROCS).
	Workers int
	// QueueDepth bounds the submissions waiting for a worker; a full
	// queue rejects with ErrQueueFull (0 = 2×Workers).
	QueueDepth int
	// CacheEntries bounds the content-addressed result cache; at most
	// this many outcomes are retained, LRU-evicted (0 = 64, negative
	// disables caching).
	CacheEntries int
	// RetainJobs bounds the terminal jobs kept for polling; the oldest
	// are forgotten past it (0 = 4096).
	RetainJobs int
	// Registry receives the manager's metrics (job.submitted,
	// job.cache_hits, job.running, ...). nil creates a private one.
	Registry *obs.Registry
	// Logger receives the manager's structured log stream: submissions,
	// dequeues, terminal transitions, cache hits, rejections, shed events,
	// and the WAL replay summary at Open, every line carrying the job ID
	// and request digest. nil disables logging entirely — the same
	// nil-is-disabled discipline as the obs package, so the silent path
	// allocates nothing.
	Logger *slog.Logger
	// SampleInterval is the self-sampler period (heap, goroutines, queue
	// depth, cache size onto a fixed ring served by Stats). 0 = 10s;
	// negative disables sampling.
	SampleInterval time.Duration
	// Run is the planning implementation (nil = DefaultRun).
	Run RunFunc

	// DataDir, when set, makes the manager durable: accepted requests are
	// journaled (fsync before the submission is acknowledged), terminal
	// reports are persisted content-addressed, and running jobs snapshot
	// their pipeline state at stage boundaries. Open replays the directory
	// on start: unfinished jobs are re-enqueued under their original IDs
	// (resuming from their last checkpoint) and the report cache is
	// rebuilt. Empty keeps the manager fully in-memory.
	DataDir string
	// FS overrides the store's filesystem (fault injection); nil = OSFS.
	FS FS
	// CheckpointNotify, when set, is called after each stage checkpoint of
	// any job has been durably saved — the crash-harness hook (a chaos
	// test kills the process here and asserts the restart resumes).
	CheckpointNotify func(jobID, stage string)

	// MaxMemBytes is the admission-control memory limit. 0 falls back to
	// the runtime's GOMEMLIMIT when one is set; with neither, admission
	// control is disabled. Above MemHighWater of the limit, submissions
	// first shed the process's discretionary caches and then, still
	// above, are rejected with *ErrMemoryPressure (HTTP 429).
	MaxMemBytes int64
	// MemHighWater is the admission threshold as a fraction of the limit
	// (0 = 0.85).
	MemHighWater float64
	// ReadHeap overrides the live-heap probe (tests inject pressure);
	// nil reads runtime.MemStats.HeapAlloc.
	ReadHeap func() uint64
}

// Manager owns the job layer: a bounded worker pool consuming a bounded
// queue of PlanRequests, a job table for poll/cancel, and the
// content-addressed outcome cache. All methods are safe for concurrent
// use.
type Manager struct {
	workers  int
	queueCap int
	retain   int
	run      RunFunc
	reg      *obs.Registry
	log      *slog.Logger // nil = logging disabled
	sampler  *sampler     // nil = self-sampling disabled

	store      *Store // nil for an in-memory manager
	mem        *memGovernor
	ckptNotify func(jobID, stage string)
	recovered  int

	mu     sync.Mutex
	closed bool
	seq    int
	jobs   map[string]*Job
	order  []string // creation order, for retention and listing
	cache  *resultCache
	queue  chan *Job

	wg       sync.WaitGroup
	runningN atomic.Int64

	cSubmitted, cCacheHits, cCacheMiss, cRejected *obs.Counter
	cDone, cFailed, cCanceled                     *obs.Counter
	cResumed, cJournalErr                         *obs.Counter
	gRunning, gQueued, gCacheEntries              *obs.Gauge
	gHeap, gGoroutines                            *obs.Gauge
	hQueueWait, hRunDur                           *obs.Histogram
}

// NewManager starts an in-memory manager (no DataDir). It is the
// constructor for tests and embedded use; daemons wanting durability call
// Open. A DataDir in opts makes it panic on store errors — use Open to
// handle them.
func NewManager(opts Options) *Manager {
	m, err := Open(opts)
	if err != nil {
		panic(err)
	}
	return m
}

// Open starts the manager, replaying opts.DataDir when set: the journal's
// unfinished jobs are re-enqueued under their original IDs (each resuming
// from its last stage checkpoint), and the content-addressed report cache
// is rebuilt from the stored outcomes, so restarts keep both the queue and
// the cache. Without a DataDir it is NewManager with an error return.
func Open(opts Options) (*Manager, error) {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 2 * opts.Workers
	}
	switch {
	case opts.CacheEntries == 0:
		opts.CacheEntries = 64
	case opts.CacheEntries < 0:
		opts.CacheEntries = 0
	}
	if opts.RetainJobs <= 0 {
		opts.RetainJobs = 4096
	}
	if opts.Run == nil {
		opts.Run = DefaultRun
	}
	reg := opts.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}

	// Durable store first: recovery decides the queue's initial contents
	// (and can demand a deeper channel than the configured cap).
	var store *Store
	var recovered *Recovered
	if opts.DataDir != "" {
		fsys := opts.FS
		if fsys == nil {
			fsys = OSFS()
		}
		var err error
		store, recovered, err = OpenStore(fsys, opts.DataDir)
		if err != nil {
			return nil, err
		}
	}
	queueLen := opts.QueueDepth
	if recovered != nil && len(recovered.Pending) > queueLen {
		// Recovered jobs were all acknowledged before the crash; they must
		// re-enter the queue regardless of the configured depth. The
		// advertised cap stays opts.QueueDepth, so new submissions see
		// backpressure until the backlog drains.
		queueLen = len(recovered.Pending)
	}

	m := &Manager{
		workers:    opts.Workers,
		queueCap:   opts.QueueDepth,
		retain:     opts.RetainJobs,
		run:        opts.Run,
		reg:        reg,
		log:        opts.Logger,
		store:      store,
		ckptNotify: opts.CheckpointNotify,
		jobs:       map[string]*Job{},
		cache:      newResultCache(opts.CacheEntries),
		queue:      make(chan *Job, queueLen),

		cSubmitted:  reg.Counter("job.submitted"),
		cCacheHits:  reg.Counter("job.cache_hits"),
		cCacheMiss:  reg.Counter("job.cache_misses"),
		cRejected:   reg.Counter("job.rejected"),
		cDone:       reg.Counter("job.done"),
		cFailed:     reg.Counter("job.failed"),
		cCanceled:   reg.Counter("job.canceled"),
		cResumed:    reg.Counter("job.resumed"),
		cJournalErr: reg.Counter("job.journal_errors"),

		gRunning:      reg.Gauge("job.running"),
		gQueued:       reg.Gauge("job.queued"),
		gCacheEntries: reg.Gauge("job.cache_entries"),
		gHeap:         reg.Gauge("job.heap_bytes"),
		gGoroutines:   reg.Gauge("job.goroutines"),

		hQueueWait: reg.Histogram("job.queue_wait_ms", obs.DurationBucketsMS),
		hRunDur:    reg.Histogram("job.run_ms", obs.DurationBucketsMS),
	}
	m.mem = newMemGovernor(resolveMemLimit(opts.MaxMemBytes), opts.MemHighWater,
		opts.ReadHeap, m.shedCachesLocked, m.restoreCachesLocked, reg, m.log)

	if m.log != nil && store != nil {
		// The replay/compaction summary: what the WAL yielded and what the
		// open-time compaction kept (the journal is rewritten pending-only).
		m.log.Info("journal replayed",
			slog.String("data_dir", opts.DataDir),
			slog.Int("pending", len(recovered.Pending)),
			slog.Int("stored_reports", len(recovered.Reports)))
	}
	if recovered != nil {
		// Rebuild the LRU cache oldest-first so recency order survives the
		// restart, then bound the on-disk mirror the same way.
		for _, r := range recovered.Reports {
			m.cache.put(r.Digest, r.Outcome)
		}
		m.gCacheEntries.Set(float64(m.cache.len()))
		store.PruneReports(opts.CacheEntries)
		// Re-enqueue the unfinished jobs under their original IDs; their
		// saved checkpoints become the pipeline's resume points.
		for _, p := range recovered.Pending {
			p := p
			j := newJob(p.ID, p.Digest, &p.Req)
			j.resume = p.Checkpoint
			j.persist = m.persistTerminal
			if seq := idSeq(p.ID); seq > m.seq {
				m.seq = seq
			}
			m.queue <- j
			m.registerLocked(j) // no contention yet: workers start below
		}
		m.recovered = len(recovered.Pending)
		m.gQueued.Set(float64(len(m.queue)))
	}

	for i := 0; i < m.workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	if opts.SampleInterval >= 0 {
		interval := opts.SampleInterval
		if interval == 0 {
			interval = defaultSampleInterval
		}
		m.startSampler(interval)
	}
	return m, nil
}

// idSeq parses the sequence number out of a job ID ("j<seq>-<digest>"),
// 0 when the ID has another shape.
func idSeq(id string) int {
	if len(id) < 2 || id[0] != 'j' {
		return 0
	}
	n := 0
	for _, c := range id[1:] {
		if c == '-' {
			return n
		}
		if c < '0' || c > '9' {
			return 0
		}
		n = n*10 + int(c-'0')
	}
	return 0
}

// shedCachesLocked is the memory governor's pressure hook: scale the lazy
// engines' row caches down hard and drop the older half of the report
// cache. Both are pure optimizations, so shedding never changes results.
// Called with m.mu held (the governor only runs inside Submit).
func (m *Manager) shedCachesLocked() {
	retime.SetLazyCacheScale(10)
	m.cache.trim(m.cache.len() / 2)
	m.gCacheEntries.Set(float64(m.cache.len()))
}

// restoreCachesLocked undoes the shed once the heap is back under the
// low-water mark. The report cache refills on its own; only the scale
// comes back.
func (m *Manager) restoreCachesLocked() {
	retime.SetLazyCacheScale(100)
}

// persistTerminal is the Job.persist hook: settle the job in the store.
// Persistence failures are counted and logged, not surfaced — the
// in-memory terminal state already happened, and a retrying client would
// only re-plan.
func (m *Manager) persistTerminal(j *Job, state State, errMsg string, out *Outcome) {
	if err := m.store.Terminal(j.id, j.digest, state, errMsg, out); err != nil {
		m.cJournalErr.Inc()
		if m.log != nil {
			m.log.Error("terminal record not persisted",
				slog.String("job", j.id), slog.String("digest", j.digest),
				slog.String("err", err.Error()))
		}
	}
}

// Ready reports whether the manager should be offered new work: false
// while draining and while the memory governor is shedding — the states
// where a submission would answer 503 or (likely) 429. The service layer's
// readiness probe serves this, so a load balancer stops routing before
// clients start eating rejections.
func (m *Manager) Ready() (bool, string) {
	m.mu.Lock()
	closed := m.closed
	m.mu.Unlock()
	if closed {
		return false, "draining"
	}
	if m.mem != nil && m.mem.isShedding() {
		return false, "memory pressure"
	}
	return true, ""
}

// Registry returns the manager's metrics registry (for the debug listener
// and the stats endpoint).
func (m *Manager) Registry() *obs.Registry { return m.reg }

// Workers returns the worker-pool size.
func (m *Manager) Workers() int { return m.workers }

// QueueDepth returns the queue capacity.
func (m *Manager) QueueDepth() int { return m.queueCap }

// Submit normalizes, validates, and enqueues a request. A request whose
// digest is already in the outcome cache comes back as a job that is done
// on arrival, carrying the cached report byte-for-byte — no worker runs.
// A full queue rejects with *ErrQueueFull, memory pressure with
// *ErrMemoryPressure, a draining manager with ErrShutdown. On a durable
// manager the acceptance is journaled and synced before Submit returns:
// an acknowledged job survives a crash.
func (m *Manager) Submit(req PlanRequest) (*Job, error) {
	req.Normalize()
	if err := req.Validate(); err != nil {
		if m.log != nil {
			m.log.Debug("job rejected: invalid request", slog.String("err", err.Error()))
		}
		return nil, err
	}
	digest := req.Digest()
	m.cSubmitted.Inc()

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		if m.log != nil {
			m.log.Warn("job rejected: draining", slog.String("digest", digest))
		}
		return nil, ErrShutdown
	}
	if out, ok := m.cache.get(digest); ok {
		// Cache hits bypass admission control and the journal: no plan
		// runs, and the outcome is already persisted content-addressed.
		j := newCachedJob(m.nextIDLocked(digest), digest, &req, out)
		m.registerLocked(j)
		m.mu.Unlock()
		m.cCacheHits.Inc()
		m.cDone.Inc()
		if m.log != nil {
			m.log.Info("job cache hit",
				slog.String("job", j.id), slog.String("digest", digest))
		}
		return j, nil
	}
	if len(m.queue) >= m.queueCap {
		m.mu.Unlock()
		m.cRejected.Inc()
		if m.log != nil {
			m.log.Warn("job rejected: queue full",
				slog.String("digest", digest), slog.Int("queue_cap", m.queueCap))
		}
		return nil, &ErrQueueFull{RetryAfter: time.Second}
	}
	if m.mem != nil {
		if err := m.mem.admit(); err != nil {
			m.mu.Unlock()
			m.cRejected.Inc()
			return nil, err
		}
	}
	j := newJob(m.nextIDLocked(digest), digest, &req)
	if m.store != nil {
		// The write-ahead contract: fsync the acceptance before the
		// submission is acknowledged. A journal that cannot take the
		// record means the durability promise cannot be kept, so the
		// request is refused rather than accepted in memory only.
		if err := m.store.Accept(j.id, digest, &req); err != nil {
			m.mu.Unlock()
			m.cJournalErr.Inc()
			m.cRejected.Inc()
			if m.log != nil {
				m.log.Error("job rejected: journal append failed",
					slog.String("job", j.id), slog.String("digest", digest),
					slog.String("err", err.Error()))
			}
			return nil, err
		}
		j.persist = m.persistTerminal
	}
	// Cannot block: every sender holds m.mu and the length was checked
	// above (recovery enqueues before the workers start).
	m.queue <- j
	m.registerLocked(j)
	queued := len(m.queue)
	m.gQueued.Set(float64(queued))
	m.mu.Unlock()
	m.cCacheMiss.Inc()
	if m.log != nil {
		m.log.Info("job accepted",
			slog.String("job", j.id), slog.String("digest", digest),
			slog.Int("queued", queued))
	}
	return j, nil
}

// nextIDLocked mints a job ID: a process-unique sequence number plus a
// digest prefix for human correlation.
func (m *Manager) nextIDLocked(digest string) string {
	m.seq++
	return fmt.Sprintf("j%d-%s", m.seq, digest[:12])
}

// registerLocked adds the job to the table, forgetting the oldest terminal
// jobs past the retention bound so a long-lived daemon's table stays flat.
// Active jobs are never evicted; a table full of them is allowed to grow.
func (m *Manager) registerLocked(j *Job) {
	m.jobs[j.id] = j
	m.order = append(m.order, j.id)
	for len(m.jobs) > m.retain {
		idx := -1
		for i, id := range m.order {
			if old, ok := m.jobs[id]; ok && old.State().Terminal() {
				idx = i
				break
			}
		}
		if idx < 0 {
			break
		}
		delete(m.jobs, m.order[idx])
		m.order = append(m.order[:idx], m.order[idx+1:]...)
	}
}

// Get returns the job with the given ID.
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// Cancel cancels the job with the given ID: a queued job finalizes
// immediately, a running one stops at its next checkpoint and commits its
// best-so-far result through the anytime path.
func (m *Manager) Cancel(id string) (*Job, error) {
	j, ok := m.Get(id)
	if !ok {
		return nil, ErrNotFound
	}
	j.requestCancel()
	return j, nil
}

// Jobs snapshots every tracked job's status in creation order.
func (m *Manager) Jobs() []Status {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Status, 0, len(m.jobs))
	for _, id := range m.order {
		if j, ok := m.jobs[id]; ok {
			out = append(out, j.Status())
		}
	}
	return out
}

// Stats is the pool/cache snapshot served by the stats endpoint.
type Stats struct {
	Workers      int   `json:"workers"`
	QueueCap     int   `json:"queue_cap"`
	Queued       int   `json:"queued"`
	Running      int   `json:"running"`
	Done         int   `json:"done"`
	Failed       int   `json:"failed"`
	Canceled     int   `json:"canceled"`
	CacheEntries int   `json:"cache_entries"`
	CacheHits    int64 `json:"cache_hits"`
	CacheMisses  int64 `json:"cache_misses"`
	Rejected     int64 `json:"rejected"`
	Draining     bool  `json:"draining,omitempty"`
	// Durable-manager fields: jobs re-enqueued from the journal at start,
	// runs that resumed from a stage checkpoint, journal/store write
	// failures, and submissions shed by the memory governor.
	Recovered     int                 `json:"recovered,omitempty"`
	Resumed       int64               `json:"resumed,omitempty"`
	JournalErrors int64               `json:"journal_errors,omitempty"`
	MemRejected   int64               `json:"mem_rejected,omitempty"`
	Metrics       obs.MetricsSnapshot `json:"metrics"`
	// Samples is the self-sampler's retained time series (oldest first):
	// process vitals at a fixed cadence, so a stats poll shows the recent
	// history — not just the instant — of heap, goroutines, queue, cache.
	Samples []Sample `json:"samples,omitempty"`
}

// Stats snapshots the manager.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	s := Stats{
		Workers:      m.workers,
		QueueCap:     m.queueCap,
		CacheEntries: m.cache.len(),
		Draining:     m.closed,
	}
	var jobs []*Job
	for _, j := range m.jobs {
		jobs = append(jobs, j)
	}
	m.mu.Unlock()
	for _, j := range jobs {
		switch j.State() {
		case StateQueued:
			s.Queued++
		case StateRunning:
			s.Running++
		case StateDone:
			s.Done++
		case StateFailed:
			s.Failed++
		case StateCanceled:
			s.Canceled++
		}
	}
	s.CacheHits = m.cCacheHits.Value()
	s.CacheMisses = m.cCacheMiss.Value()
	s.Rejected = m.cRejected.Value()
	s.Recovered = m.recovered
	s.Resumed = m.cResumed.Value()
	s.JournalErrors = m.cJournalErr.Value()
	if m.mem != nil {
		s.MemRejected = m.mem.cRejected.Value()
	}
	s.Metrics = m.reg.Snapshot()
	s.Samples = m.sampler.history()
	return s
}

// Shutdown drains the manager: no further submissions are accepted, and
// queued plus running jobs are given until ctx expires to finish. At the
// deadline every in-flight job's context is canceled, which makes the
// anytime stages commit their best-so-far results; Shutdown then waits for
// the workers to finalize those jobs and returns. The error is ctx's when
// the grace period fired, nil on a clean drain.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	already := m.closed
	if !m.closed {
		m.closed = true
		close(m.queue)
	}
	m.mu.Unlock()
	if !already {
		m.sampler.close()
		if m.log != nil {
			m.log.Info("manager draining")
		}
	}

	drained := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		if m.store != nil {
			m.store.Close()
		}
		return nil
	case <-ctx.Done():
	}
	m.mu.Lock()
	var live []*Job
	for _, j := range m.jobs {
		if !j.State().Terminal() {
			live = append(live, j)
		}
	}
	m.mu.Unlock()
	// Outside m.mu: requestCancel on a queued job runs the persist hook
	// (journal fsync), and holding the manager lock through that would
	// stall every status poll of the drain.
	for _, j := range live {
		j.requestCancel()
	}
	<-drained
	if m.store != nil {
		m.store.Close()
	}
	return ctx.Err()
}

// worker consumes the queue until Shutdown closes it.
func (m *Manager) worker() {
	defer m.wg.Done()
	for j := range m.queue {
		m.gQueued.Set(float64(len(m.queue)))
		m.runJob(j)
	}
}

// runJob executes one job end to end. A panic escaping the run — the
// pipeline already contains stage panics into StageErrors, so this is the
// last line of defense — fails the job without killing the worker or the
// daemon.
func (m *Manager) runJob(j *Job) {
	if !j.toRunning() {
		// Canceled while queued; requestCancel already finalized it.
		m.cCanceled.Inc()
		return
	}
	queueWait := j.started.Sub(j.created)
	m.hQueueWait.Observe(float64(queueWait.Microseconds()) / 1000)
	if m.log != nil {
		m.log.Info("job running",
			slog.String("job", j.id), slog.String("digest", j.digest),
			slog.Duration("queue_wait", queueWait))
	}
	t0 := time.Now()
	defer func() {
		m.hRunDur.Observe(float64(time.Since(t0).Microseconds()) / 1000)
		if m.log != nil {
			st := j.State()
			lvl := slog.LevelInfo
			if st == StateFailed {
				lvl = slog.LevelWarn
			}
			m.log.Log(context.Background(), lvl, "job "+string(st),
				slog.String("job", j.id), slog.String("digest", j.digest),
				slog.Duration("run", time.Since(t0)),
				slog.String("err", j.Status().Err))
		}
	}()
	m.gRunning.Set(float64(m.runningN.Add(1)))
	defer func() { m.gRunning.Set(float64(m.runningN.Add(-1))) }()
	defer func() {
		if r := recover(); r != nil {
			j.finish(StateFailed, fmt.Sprintf("panic: %v", r), nil)
			m.cFailed.Inc()
		}
	}()

	// Each job records into its own recorder: the spans and metrics land
	// in that job's report, while the manager's registry keeps the
	// fleet-wide counters.
	rec := obs.NewRecorder()
	ctx := obs.NewContext(j.ctx, rec)
	if m.store != nil {
		id := j.id
		ctx = withCheckpoint(ctx, &ckptHandle{
			resume: j.resume,
			save: func(stage string, data []byte) {
				if err := m.store.SaveCheckpoint(id, data); err != nil {
					m.cJournalErr.Inc()
					if m.log != nil {
						m.log.Error("checkpoint not persisted",
							slog.String("job", id), slog.String("stage", stage),
							slog.String("err", err.Error()))
					}
					return
				}
				if m.ckptNotify != nil {
					m.ckptNotify(id, stage)
				}
			},
		})
	}
	pass := -1
	trace := func(ev plan.StageEvent) {
		if ev.Index == 0 {
			pass++
		}
		j.emitStage(pass, ev)
	}

	res, err := m.run(ctx, j.req, trace)
	if err != nil {
		state, c := StateFailed, m.cFailed
		if j.ctx.Err() != nil {
			state, c = StateCanceled, m.cCanceled
		}
		j.finish(state, err.Error(), nil)
		c.Inc()
		return
	}

	var iterErr error
	for _, it := range res.Iters {
		if it.Err != nil {
			iterErr = it.Err
		}
	}
	if len(res.Iters) > 0 && res.Iters[0].Result != nil && res.Iters[0].Result.Resumed != "" {
		m.cResumed.Inc()
	}
	rep := &obs.Report{
		Tool:    "lacretd",
		Circuit: res.Circuit,
		Config:  j.req.Config.Map(),
		Passes:  plan.PassReports(res.Iters),
		Metrics: rec.Registry().Snapshot(),
	}
	data, encErr := rep.Encode()
	if encErr != nil {
		j.finish(StateFailed, fmt.Sprintf("encode report: %v", encErr), nil)
		m.cFailed.Inc()
		return
	}
	// The span forest rides along with the report: the trace endpoint
	// serves it for any terminal job, and cache hits share it.
	out := &Outcome{Report: data, Summary: summarize(res), Trace: rec.Roots()}
	switch {
	case iterErr != nil && j.ctx.Err() != nil:
		// Canceled mid-plan: the anytime path committed best-so-far, and
		// the report of the completed prefix rides along.
		j.finish(StateCanceled, iterErr.Error(), out)
		m.cCanceled.Inc()
	case iterErr != nil:
		j.finish(StateFailed, iterErr.Error(), out)
		m.cFailed.Inc()
	default:
		m.mu.Lock()
		m.cache.put(j.digest, out)
		m.gCacheEntries.Set(float64(m.cache.len()))
		m.mu.Unlock()
		j.finish(StateDone, "", out)
		m.cDone.Inc()
	}
}

// summarize extracts the headline numbers from the final completed pass.
func summarize(res *RunResult) Summary {
	s := Summary{Circuit: res.Circuit, Passes: len(res.Iters)}
	var final *plan.Result
	for _, it := range res.Iters {
		if it.Result != nil && it.Err == nil {
			final = it.Result
		}
	}
	if final == nil {
		for _, it := range res.Iters {
			if it.Result != nil {
				final = it.Result
			}
		}
	}
	if final == nil {
		return s
	}
	if res.Iters[0].Result != nil {
		s.Resumed = res.Iters[0].Result.Resumed
	}
	s.TclkNS, s.TinitNS, s.TminNS = final.Tclk, final.Tinit, final.Tmin
	s.WirelengthUM = final.RouteWirelength
	s.Repeaters = final.RepeaterCount
	if final.MinArea != nil {
		s.MinAreaNFOA, s.MinAreaNF = final.MinArea.NFOA, final.MinArea.NF
	}
	if final.LAC != nil {
		s.LACNFOA, s.LACNF, s.LACNWR = final.LAC.NFOA, final.LAC.NF, final.LAC.NWR
	}
	for _, it := range res.Iters {
		if it.Result != nil {
			s.Truncated += len(it.Result.TruncatedStages())
		}
	}
	return s
}
