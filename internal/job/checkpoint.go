package job

import "context"

// ckptHandle carries a job's crash-recovery wiring into DefaultRun through
// the context: where stage snapshots go, and the snapshot (if any) a
// previous incarnation of this job saved before the daemon died. Context
// is the carrier so RunFunc's signature — which every test double
// implements — stays untouched by the durability layer.
type ckptHandle struct {
	save   func(stage string, data []byte)
	resume []byte
}

type ckptKey struct{}

// withCheckpoint attaches the handle.
func withCheckpoint(ctx context.Context, h *ckptHandle) context.Context {
	return context.WithValue(ctx, ckptKey{}, h)
}

// checkpointFrom extracts the handle, nil when the manager runs without a
// durable store.
func checkpointFrom(ctx context.Context) *ckptHandle {
	h, _ := ctx.Value(ckptKey{}).(*ckptHandle)
	return h
}
