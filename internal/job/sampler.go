package job

import (
	"runtime"
	"sync"
	"time"
)

// Sample is one point of the daemon's self-sampled time series: the
// process vitals an operator wants a recent history of when a daemon
// starts misbehaving — was the heap climbing before the 429s, did the
// queue back up, did goroutines leak. Sampling is cheap (one
// ReadMemStats), so the daemon keeps it on by default.
type Sample struct {
	T            time.Time `json:"t"`
	HeapBytes    uint64    `json:"heap_bytes"`
	Goroutines   int       `json:"goroutines"`
	Queued       int       `json:"queued"`
	Running      int       `json:"running"`
	CacheEntries int       `json:"cache_entries"`
}

// samplerRingSize bounds the retained history: at the default 10s period
// this is one hour, a fixed ~30 KB regardless of daemon uptime.
const samplerRingSize = 360

// defaultSampleInterval is the sampling period when Options leaves it 0.
const defaultSampleInterval = 10 * time.Second

// sampler owns the fixed ring buffer and the background goroutine filling
// it. All methods are safe for concurrent use; the nil sampler yields an
// empty history, so an in-memory manager with sampling disabled costs
// nothing.
type sampler struct {
	mu   sync.Mutex
	ring [samplerRingSize]Sample
	n    int // total samples ever taken; ring index is n % size
	stop chan struct{}
	done chan struct{}
}

// startSampler launches the manager's self-sampler at the given period.
func (m *Manager) startSampler(interval time.Duration) {
	s := &sampler{stop: make(chan struct{}), done: make(chan struct{})}
	m.sampler = s
	go func() {
		defer close(s.done)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			s.record(m.sample())
			select {
			case <-tick.C:
			case <-s.stop:
				return
			}
		}
	}()
}

// sample reads one point of vitals, refreshing the heap and goroutine
// gauges as a side effect so /metrics carries them even when the memory
// governor (which also writes job.heap_bytes) is disabled.
func (m *Manager) sample() Sample {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	m.mu.Lock()
	queued := len(m.queue)
	cacheN := m.cache.len()
	m.mu.Unlock()
	sm := Sample{
		T:            time.Now(),
		HeapBytes:    ms.HeapAlloc,
		Goroutines:   runtime.NumGoroutine(),
		Queued:       queued,
		Running:      int(m.runningN.Load()),
		CacheEntries: cacheN,
	}
	m.gHeap.Set(float64(sm.HeapBytes))
	m.gGoroutines.Set(float64(sm.Goroutines))
	return sm
}

// record appends one sample to the ring.
func (s *sampler) record(sm Sample) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ring[s.n%samplerRingSize] = sm
	s.n++
}

// history returns the retained samples oldest-first (nil sampler: none).
func (s *sampler) history() []Sample {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.n
	if n > samplerRingSize {
		n = samplerRingSize
	}
	out := make([]Sample, 0, n)
	start := s.n - n
	for i := start; i < s.n; i++ {
		out = append(out, s.ring[i%samplerRingSize])
	}
	return out
}

// close stops the sampling goroutine and waits it out (nil-safe).
func (s *sampler) close() {
	if s == nil {
		return
	}
	close(s.stop)
	<-s.done
}
