package job

import (
	"io"
	"io/fs"
	"os"
)

// FS is the filesystem surface the durable store needs — small enough for
// the fault-injection suite (internal/faultinject) to wrap with failing,
// short-writing, or sync-erroring implementations, since real crash bugs
// live exactly in those paths.
type FS interface {
	MkdirAll(path string, perm os.FileMode) error
	// OpenFile opens with os.OpenFile semantics (flag is os.O_* bits).
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	ReadFile(name string) ([]byte, error)
	// Rename atomically replaces newpath with oldpath (POSIX rename).
	Rename(oldpath, newpath string) error
	Remove(name string) error
	ReadDir(name string) ([]fs.DirEntry, error)
}

// File is the open-file surface the store writes through. Sync is the
// durability point: the store never acknowledges an accept or a terminal
// state before the carrying file has synced.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// osFS is the real filesystem.
type osFS struct{}

// OSFS returns the real-filesystem implementation of FS.
func OSFS() FS { return osFS{} }

func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }
func (osFS) ReadFile(name string) ([]byte, error)         { return os.ReadFile(name) }
func (osFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                     { return os.Remove(name) }
func (osFS) ReadDir(name string) ([]fs.DirEntry, error)   { return os.ReadDir(name) }

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

// writeFileAtomic writes data to path via a temporary sibling, syncing
// before the rename, so a crash at any instant leaves either the old file
// or the complete new one — never a torn mix.
func writeFileAtomic(fsys FS, path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := fsys.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return err
	}
	if err := fsys.Rename(tmp, path); err != nil {
		fsys.Remove(tmp)
		return err
	}
	return nil
}
