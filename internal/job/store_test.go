package job

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func testReq(circuit string) PlanRequest {
	req := PlanRequest{Source: Source{Circuit: circuit}}
	req.Normalize()
	return req
}

// TestJournalReplayAnyPrefix is the torn-tail property: for EVERY byte
// prefix of a valid journal image, replay returns a clean prefix of the
// appended records — never an error, never a partial record, never
// anything out of order. This is exactly the state a crash mid-append can
// leave on disk.
func TestJournalReplayAnyPrefix(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "journal.wal")
	jl, err := openJournal(OSFS(), path, nil)
	if err != nil {
		t.Fatal(err)
	}
	reqs := []PlanRequest{testReq("s400"), testReq("s953"), testReq("s1269")}
	for i, req := range reqs {
		req := req
		rec := journalRecord{Kind: recAccept, ID: jobID(i), Digest: req.Digest(), Req: &req}
		if err := jl.append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := jl.append(journalRecord{Kind: recTerminal, ID: jobID(0), State: StateDone}); err != nil {
		t.Fatal(err)
	}
	jl.close()

	img, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	full := replayJournal(img)
	if len(full) != 4 {
		t.Fatalf("full replay: %d records, want 4", len(full))
	}
	prev := 0
	for n := 0; n <= len(img); n++ {
		recs := replayJournal(img[:n])
		if len(recs) > len(full) {
			t.Fatalf("prefix %d: %d records, more than the %d appended", n, len(recs), len(full))
		}
		if len(recs) < prev {
			t.Fatalf("prefix %d: record count fell from %d to %d", n, prev, len(recs))
		}
		prev = len(recs)
		for i, rec := range recs {
			if rec.ID != full[i].ID || rec.Kind != full[i].Kind {
				t.Fatalf("prefix %d record %d: got %s/%s, want %s/%s",
					n, i, rec.Kind, rec.ID, full[i].Kind, full[i].ID)
			}
		}
	}
	if prev != len(full) {
		t.Fatalf("full-length prefix replayed %d records, want %d", prev, len(full))
	}
}

func jobID(i int) string {
	return []string{"j1-aaaaaaaaaaaa", "j2-bbbbbbbbbbbb", "j3-cccccccccccc", "j4-dddddddddddd"}[i]
}

// TestJournalTornTailWithGarbage appends random garbage after valid
// records: replay must keep the valid prefix and ignore the rest.
func TestJournalTornTailWithGarbage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "journal.wal")
	jl, err := openJournal(OSFS(), path, nil)
	if err != nil {
		t.Fatal(err)
	}
	req := testReq("s400")
	if err := jl.append(journalRecord{Kind: recAccept, ID: jobID(0), Digest: req.Digest(), Req: &req}); err != nil {
		t.Fatal(err)
	}
	jl.close()
	for _, garbage := range [][]byte{
		{0xff, 0xff, 0xff, 0xff},                       // absurd length frame
		{0, 0, 0, 4, 1, 2, 3, 4, 'j', 'u', 'n', 'k'},   // bad CRC
		bytes.Repeat([]byte{0}, 7),                     // truncated header
		{0, 0, 0, 2, 0xd4, 0x2d, 0x98, 0x85, '{', '}'}, // would need CRC of "{}"
	} {
		img, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		recs := replayJournal(append(append([]byte(nil), img...), garbage...))
		if len(recs) != 1 || recs[0].ID != jobID(0) {
			t.Fatalf("garbage %x: replayed %d records, want the 1 valid one", garbage, len(recs))
		}
	}
}

// TestStoreRecoverPending pins the journal lifecycle: accepted jobs are
// pending until their terminal record lands, reopening compacts settled
// jobs away, and checkpoints ride along with their pending job.
func TestStoreRecoverPending(t *testing.T) {
	dir := t.TempDir()
	fsys := OSFS()
	s, rec, err := OpenStore(fsys, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Pending) != 0 || len(rec.Reports) != 0 {
		t.Fatalf("fresh store recovered %d pending, %d reports", len(rec.Pending), len(rec.Reports))
	}
	r1, r2 := testReq("s400"), testReq("s953")
	if err := s.Accept(jobID(0), r1.Digest(), &r1); err != nil {
		t.Fatal(err)
	}
	if err := s.Accept(jobID(1), r2.Digest(), &r2); err != nil {
		t.Fatal(err)
	}
	if err := s.SaveCheckpoint(jobID(1), []byte("snapshot-bytes")); err != nil {
		t.Fatal(err)
	}
	out := &Outcome{Report: []byte(`{"tool":"lacretd"}`), Summary: Summary{Circuit: "s400"}}
	if err := s.Terminal(jobID(0), r1.Digest(), StateDone, "", out); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2, rec2, err := OpenStore(fsys, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if len(rec2.Pending) != 1 {
		t.Fatalf("recovered %d pending, want 1", len(rec2.Pending))
	}
	p := rec2.Pending[0]
	if p.ID != jobID(1) || p.Digest != r2.Digest() || p.Req.Source.Circuit != "s953" {
		t.Fatalf("pending = %+v, want job %s planning s953", p, jobID(1))
	}
	if string(p.Checkpoint) != "snapshot-bytes" {
		t.Fatalf("pending checkpoint = %q", p.Checkpoint)
	}
	if len(rec2.Reports) != 1 || rec2.Reports[0].Digest != r1.Digest() {
		t.Fatalf("recovered reports = %+v, want s400's", rec2.Reports)
	}
	if got := rec2.Reports[0].Outcome.Report; !bytes.Equal(got, out.Report) {
		t.Fatalf("recovered report bytes = %q, want %q", got, out.Report)
	}

	// The terminal record settled the job and dropped its checkpoint.
	if err := s2.Terminal(jobID(1), r2.Digest(), StateCanceled, "drain", nil); err != nil {
		t.Fatal(err)
	}
	if ck := s2.LoadCheckpoint(jobID(1)); ck != nil {
		t.Fatalf("checkpoint survived terminal: %q", ck)
	}
	s2.Close()
	_, rec3, err := OpenStore(fsys, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec3.Pending) != 0 {
		t.Fatalf("third open recovered %d pending, want 0", len(rec3.Pending))
	}
}

// TestStorePruneReports bounds the on-disk report mirror.
func TestStorePruneReports(t *testing.T) {
	dir := t.TempDir()
	s, _, err := OpenStore(OSFS(), dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for _, c := range []string{"s400", "s953", "s1269"} {
		r := testReq(c)
		out := &Outcome{Report: []byte(`{}`), Summary: Summary{Circuit: c}}
		if err := s.Terminal("j-"+c, r.Digest(), StateDone, "", out); err != nil {
			t.Fatal(err)
		}
	}
	s.PruneReports(2)
	reps, err := s.loadReports()
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 2 {
		t.Fatalf("%d reports after prune, want 2", len(reps))
	}
}

// TestCheckpointAtomicReplace: a checkpoint save replaces the previous one
// atomically, and LoadCheckpoint returns the latest.
func TestCheckpointAtomicReplace(t *testing.T) {
	dir := t.TempDir()
	s, _, err := OpenStore(OSFS(), dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i, data := range []string{"v1", "v2", "v3"} {
		if err := s.SaveCheckpoint("j9-x", []byte(data)); err != nil {
			t.Fatalf("save %d: %v", i, err)
		}
		if got := s.LoadCheckpoint("j9-x"); string(got) != data {
			t.Fatalf("load after save %d = %q, want %q", i, got, data)
		}
	}
}
