package job

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"lacret/internal/retime"
)

// TestMemoryPressureAdmission drives the governor with a fake heap probe:
// submissions above the high-water mark shed the lazy-source row caches
// (global scale drops to its floor) and are rejected with a retryable
// error; once the heap falls below the low-water mark the caches get
// their budgets back and submissions flow again.
func TestMemoryPressureAdmission(t *testing.T) {
	defer retime.SetLazyCacheScale(100)
	var heap atomic.Uint64
	heap.Store(500)
	// Limit 1000 → high water 850, low water 595.
	m := NewManager(Options{
		Workers: 1, Run: doneRun,
		MaxMemBytes: 1000,
		ReadHeap:    func() uint64 { return heap.Load() },
	})
	defer m.Shutdown(context.Background())

	j1, err := m.Submit(testReq("s400"))
	if err != nil {
		t.Fatalf("submit below high water: %v", err)
	}
	waitJob(t, j1)
	if got := retime.LazyCacheScale(); got != 100 {
		t.Fatalf("cache scale %d before any pressure, want 100", got)
	}

	heap.Store(900)
	_, err = m.Submit(testReq("s953"))
	var mp *ErrMemoryPressure
	if !errors.As(err, &mp) {
		t.Fatalf("submit at heap 900/1000 = %v, want ErrMemoryPressure", err)
	}
	if mp.Heap != 900 || mp.Limit != 1000 || mp.RetryAfter <= 0 {
		t.Fatalf("pressure detail = %+v", mp)
	}
	if got := retime.LazyCacheScale(); got != 10 {
		t.Fatalf("cache scale %d under pressure, want shed to 10", got)
	}
	if got := m.Stats().MemRejected; got != 1 {
		t.Fatalf("MemRejected = %d, want 1", got)
	}

	// Still above high water: rejected again, but the shed happens once.
	if _, err := m.Submit(testReq("s1269")); !errors.As(err, &mp) {
		t.Fatalf("second overloaded submit = %v, want ErrMemoryPressure", err)
	}
	if got := m.mem.cShed.Value(); got != 1 {
		t.Fatalf("job.mem_shed = %d after two rejections, want 1", got)
	}

	// Between low (595) and high (850): admitted, but caches stay shed.
	heap.Store(700)
	j2, err := m.Submit(testReq("s1269"))
	if err != nil {
		t.Fatalf("submit in hysteresis band: %v", err)
	}
	waitJob(t, j2)
	if got := retime.LazyCacheScale(); got != 10 {
		t.Fatalf("cache scale %d in hysteresis band, want still 10", got)
	}

	// Below low water: restored.
	heap.Store(500)
	j3, err := m.Submit(testReq("s5378"))
	if err != nil {
		t.Fatalf("submit after recovery: %v", err)
	}
	waitJob(t, j3)
	if got := retime.LazyCacheScale(); got != 100 {
		t.Fatalf("cache scale %d after recovery, want restored 100", got)
	}
	if got := m.Stats().MemRejected; got != 2 {
		t.Fatalf("MemRejected = %d at end, want 2", got)
	}
}
