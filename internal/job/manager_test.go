package job_test

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lacret/internal/faultinject"
	"lacret/internal/job"
	"lacret/internal/obs"
	"lacret/internal/plan"
)

func req(circuit string) job.PlanRequest {
	return job.PlanRequest{Source: job.Source{Circuit: circuit}, Config: job.ReqConfig{Seed: 1}}
}

func waitTerminal(t *testing.T, j *job.Job) {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(60 * time.Second):
		t.Fatalf("job %s stuck in %s", j.ID(), j.State())
	}
}

// blockingRun returns a RunFunc that parks until release is closed (or the
// job is canceled), recording the concurrency high-water mark.
func blockingRun(release <-chan struct{}, cur, max *atomic.Int64) job.RunFunc {
	return func(ctx context.Context, r *job.PlanRequest, trace func(plan.StageEvent)) (*job.RunResult, error) {
		n := cur.Add(1)
		for {
			old := max.Load()
			if n <= old || max.CompareAndSwap(old, n) {
				break
			}
		}
		defer cur.Add(-1)
		select {
		case <-release:
			return &job.RunResult{Circuit: r.Source.Label()}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// TestCacheHitBitIdentity is the tentpole cache contract: a second identical
// submission is served from the content-addressed cache — byte-for-byte the
// first run's report, no second planning run, and the hit visible on the
// job.cache_hits counter.
func TestCacheHitBitIdentity(t *testing.T) {
	var runs atomic.Int64
	counted := func(ctx context.Context, r *job.PlanRequest, trace func(plan.StageEvent)) (*job.RunResult, error) {
		runs.Add(1)
		return job.DefaultRun(ctx, r, trace)
	}
	m := job.NewManager(job.Options{Workers: 1, Run: counted})
	defer m.Shutdown(context.Background())

	j1, err := m.Submit(req("s386"))
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, j1)
	if st := j1.State(); st != job.StateDone {
		t.Fatalf("first run %s: %s", st, j1.Status().Err)
	}
	first := j1.Outcome()
	if first == nil || len(first.Report) == 0 {
		t.Fatal("first run produced no report")
	}
	if _, err := obs.DecodeReport(first.Report); err != nil {
		t.Fatalf("first report invalid: %v", err)
	}

	j2, err := m.Submit(req("s386"))
	if err != nil {
		t.Fatal(err)
	}
	if !j2.Status().CacheHit {
		t.Fatal("second submission was not a cache hit")
	}
	if st := j2.State(); st != job.StateDone {
		t.Fatalf("cached job state %s", st)
	}
	if j1.ID() == j2.ID() {
		t.Fatal("cache hit reused the job ID")
	}
	second := j2.Outcome()
	if second == nil || !bytes.Equal(first.Report, second.Report) {
		t.Fatal("cached report differs from the original bytes")
	}
	if n := runs.Load(); n != 1 {
		t.Fatalf("planner ran %d times, want 1", n)
	}
	if s := m.Stats(); s.CacheHits != 1 || s.CacheMisses != 1 {
		t.Fatalf("cache counters hits=%d misses=%d", s.CacheHits, s.CacheMisses)
	}
	if v, ok := m.Registry().Snapshot().Counters["job.cache_hits"]; !ok || v != 1 {
		t.Fatalf("job.cache_hits counter = %v (present %v)", v, ok)
	}
}

// TestNumericIdentity is the acceptance criterion: planning through the job
// layer produces exactly the numbers a direct library run produces.
func TestNumericIdentity(t *testing.T) {
	m := job.NewManager(job.Options{Workers: 1})
	defer m.Shutdown(context.Background())
	j, err := m.Submit(req("s400"))
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, j)
	if j.State() != job.StateDone {
		t.Fatalf("job %s: %s", j.State(), j.Status().Err)
	}
	sum := j.Outcome().Summary

	r := req("s400")
	r.Normalize()
	nl, err := r.Source.Netlist()
	if err != nil {
		t.Fatal(err)
	}
	iters, err := plan.PlanIterations(nl, r.PlanConfig(), r.Config.Iterations)
	if err != nil {
		t.Fatal(err)
	}
	res := iters[len(iters)-1].Result
	if sum.TclkNS != res.Tclk || sum.TinitNS != res.Tinit || sum.TminNS != res.Tmin {
		t.Fatalf("periods differ: job (%g %g %g) vs direct (%g %g %g)",
			sum.TclkNS, sum.TinitNS, sum.TminNS, res.Tclk, res.Tinit, res.Tmin)
	}
	if sum.WirelengthUM != res.RouteWirelength {
		t.Fatalf("wirelength differs: %g vs %g", sum.WirelengthUM, res.RouteWirelength)
	}
	if sum.MinAreaNFOA != res.MinArea.NFOA || sum.LACNFOA != res.LAC.NFOA || sum.LACNWR != res.LAC.NWR {
		t.Fatalf("retiming differs: job (%d %d %d) vs direct (%d %d %d)",
			sum.MinAreaNFOA, sum.LACNFOA, sum.LACNWR, res.MinArea.NFOA, res.LAC.NFOA, res.LAC.NWR)
	}
}

// TestQueueBackpressure fills the pool and the queue, then expects the
// typed rejection with a retry hint.
func TestQueueBackpressure(t *testing.T) {
	release := make(chan struct{})
	var cur, max atomic.Int64
	m := job.NewManager(job.Options{Workers: 1, QueueDepth: 1, Run: blockingRun(release, &cur, &max)})
	defer m.Shutdown(context.Background())

	j1, err := m.Submit(req("s386"))
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the worker picked j1 up, so the queue slot is truly free.
	deadline := time.Now().Add(10 * time.Second)
	for j1.State() != job.StateRunning {
		if time.Now().After(deadline) {
			t.Fatalf("job never started: %s", j1.State())
		}
		time.Sleep(time.Millisecond)
	}
	r2 := req("s386")
	r2.Config.Seed = 2
	if _, err := m.Submit(r2); err != nil {
		t.Fatal(err)
	}
	r3 := req("s386")
	r3.Config.Seed = 3
	_, err = m.Submit(r3)
	var full *job.ErrQueueFull
	if !errors.As(err, &full) {
		t.Fatalf("err = %v, want *ErrQueueFull", err)
	}
	if full.RetryAfter <= 0 {
		t.Fatalf("RetryAfter = %s", full.RetryAfter)
	}
	if s := m.Stats(); s.Rejected != 1 {
		t.Fatalf("rejected counter = %d", s.Rejected)
	}
	close(release)
}

// TestConcurrencyCap submits more jobs than workers and asserts the pool
// never runs more than its size simultaneously — the acceptance criterion's
// "at most pool-size running".
func TestConcurrencyCap(t *testing.T) {
	const workers, jobs = 2, 6
	release := make(chan struct{})
	var cur, max atomic.Int64
	m := job.NewManager(job.Options{Workers: workers, QueueDepth: jobs, Run: blockingRun(release, &cur, &max)})
	defer m.Shutdown(context.Background())

	var all []*job.Job
	for i := 0; i < jobs; i++ {
		r := req("s386")
		r.Config.Seed = int64(i + 1)
		j, err := m.Submit(r)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, j)
	}
	// Let the workers saturate before releasing.
	deadline := time.Now().Add(10 * time.Second)
	for cur.Load() < workers {
		if time.Now().After(deadline) {
			t.Fatalf("pool never saturated: %d running", cur.Load())
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	for _, j := range all {
		waitTerminal(t, j)
		if j.State() != job.StateDone {
			t.Fatalf("job %s: %s", j.ID(), j.State())
		}
	}
	if got := max.Load(); got > workers {
		t.Fatalf("max concurrency %d exceeds pool size %d", got, workers)
	}
}

// TestCancel covers both cancellation paths: a queued job finalizes without
// ever consuming a worker, a running job stops through its context.
func TestCancel(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	var cur, max atomic.Int64
	m := job.NewManager(job.Options{Workers: 1, QueueDepth: 2, Run: blockingRun(release, &cur, &max)})
	defer m.Shutdown(context.Background())

	running, err := m.Submit(req("s386"))
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for running.State() != job.StateRunning {
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(time.Millisecond)
	}
	r2 := req("s386")
	r2.Config.Seed = 2
	queued, err := m.Submit(r2)
	if err != nil {
		t.Fatal(err)
	}

	if _, err := m.Cancel(queued.ID()); err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, queued)
	if queued.State() != job.StateCanceled {
		t.Fatalf("queued job %s, want canceled", queued.State())
	}

	if _, err := m.Cancel(running.ID()); err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, running)
	if running.State() != job.StateCanceled {
		t.Fatalf("running job %s, want canceled", running.State())
	}

	if _, err := m.Cancel("j999-nosuch"); !errors.Is(err, job.ErrNotFound) {
		t.Fatalf("cancel unknown: %v", err)
	}
}

// TestPipelinePanicContained injects a panic into the route stage via
// faultinject and expects the pipeline's containment to fail that job only:
// the manager keeps serving, and the next job completes.
func TestPipelinePanicContained(t *testing.T) {
	boom := func(ctx context.Context, r *job.PlanRequest, trace func(plan.StageEvent)) (*job.RunResult, error) {
		nl, err := r.Source.Netlist()
		if err != nil {
			return nil, err
		}
		cfg := r.PlanConfig()
		cfg.Trace = trace
		st, err := plan.NewState(nl, &cfg)
		if err != nil {
			return nil, err
		}
		runErr := st.RunContext(ctx, faultinject.WithPanicAt(plan.DefaultStages(), "route", "boom"), &cfg)
		return &job.RunResult{Circuit: nl.Name, Iters: []plan.Iteration{{Result: st.Result, Err: runErr}}}, nil
	}
	m := job.NewManager(job.Options{Workers: 1, CacheEntries: -1, Run: boom})
	defer m.Shutdown(context.Background())

	j, err := m.Submit(req("s386"))
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, j)
	if j.State() != job.StateFailed {
		t.Fatalf("job %s, want failed", j.State())
	}
	if err := j.Status().Err; !strings.Contains(err, "route") || !strings.Contains(err, "boom") {
		t.Fatalf("failed job error %q does not name the panicking stage", err)
	}
	// The contained panic still yields a report of the completed prefix.
	if out := j.Outcome(); out == nil || len(out.Report) == 0 {
		t.Fatal("failed job carries no partial report")
	}

	// The daemon survives: swap nothing, submit again, same failing run, and
	// the manager still answers.
	j2, err := m.Submit(req("s400"))
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, j2)
	if s := m.Stats(); s.Failed != 2 {
		t.Fatalf("failed count %d", s.Failed)
	}
}

// TestRunFuncPanicContained is the last line of defense: a panic escaping
// the RunFunc itself (outside the pipeline's containment) fails the job
// without killing the worker.
func TestRunFuncPanicContained(t *testing.T) {
	calls := atomic.Int64{}
	m := job.NewManager(job.Options{Workers: 1, CacheEntries: -1,
		Run: func(ctx context.Context, r *job.PlanRequest, trace func(plan.StageEvent)) (*job.RunResult, error) {
			if calls.Add(1) == 1 {
				panic("worker bomb")
			}
			return &job.RunResult{Circuit: r.Source.Label()}, nil
		}})
	defer m.Shutdown(context.Background())

	j1, err := m.Submit(req("s386"))
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, j1)
	if j1.State() != job.StateFailed {
		t.Fatalf("job %s, want failed", j1.State())
	}
	r2 := req("s386")
	r2.Config.Seed = 2
	j2, err := m.Submit(r2)
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, j2)
	if j2.State() != job.StateDone {
		t.Fatalf("worker died: second job %s", j2.State())
	}
}

// TestShutdownDrain: a clean drain waits for in-flight jobs; an expired
// grace cancels them, and they finalize as canceled (the anytime path's
// best-so-far commit is exercised by the plan package's own tests).
func TestShutdownDrain(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	var cur, max atomic.Int64
	m := job.NewManager(job.Options{Workers: 1, Run: blockingRun(release, &cur, &max)})
	j, err := m.Submit(req("s386"))
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for j.State() != job.StateRunning {
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := m.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown = %v, want deadline exceeded", err)
	}
	// Shutdown returned, so the workers have exited and the job finalized.
	select {
	case <-j.Done():
	default:
		t.Fatal("job not finalized after Shutdown returned")
	}
	if j.State() != job.StateCanceled {
		t.Fatalf("job %s, want canceled", j.State())
	}
	if _, err := m.Submit(req("s386")); !errors.Is(err, job.ErrShutdown) {
		t.Fatalf("submit after shutdown: %v", err)
	}
	if !m.Stats().Draining {
		t.Fatal("stats does not report draining")
	}
}

// TestConcurrentSubmitPollCancel hammers the manager from many goroutines —
// the -race exercise the issue asks for.
func TestConcurrentSubmitPollCancel(t *testing.T) {
	m := job.NewManager(job.Options{Workers: 4, QueueDepth: 256, CacheEntries: 8,
		Run: func(ctx context.Context, r *job.PlanRequest, trace func(plan.StageEvent)) (*job.RunResult, error) {
			trace(plan.StageEvent{Stage: "fake"})
			select {
			case <-time.After(time.Duration(r.Config.Seed%5) * time.Millisecond):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			return &job.RunResult{Circuit: r.Source.Label()}, nil
		}})

	var submitters, pollers sync.WaitGroup
	ids := make(chan string, 1024)
	for g := 0; g < 8; g++ {
		submitters.Add(1)
		go func(g int) {
			defer submitters.Done()
			for i := 0; i < 40; i++ {
				r := req("s386")
				r.Config.Seed = int64(g*40 + i + 1)
				j, err := m.Submit(r)
				if err != nil {
					var full *job.ErrQueueFull
					if !errors.As(err, &full) {
						t.Errorf("submit: %v", err)
					}
					continue
				}
				ids <- j.ID()
			}
		}(g)
	}
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		pollers.Add(1)
		go func(g int) {
			defer pollers.Done()
			for {
				select {
				case id := <-ids:
					if j, ok := m.Get(id); ok {
						_ = j.Status()
						hist, live, cancel := j.Subscribe()
						_ = hist
						_ = live
						cancel()
						if g == 0 {
							_, _ = m.Cancel(id)
						}
					}
					_ = m.Stats()
					_ = m.Jobs()
				case <-done:
					return
				}
			}
		}(g)
	}
	submitters.Wait()
	close(done)
	pollers.Wait()
	if err := m.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	for _, st := range m.Jobs() {
		if !st.State.Terminal() {
			t.Fatalf("job %s left %s after drain", st.ID, st.State)
		}
	}
}

// TestEventsHistoryReplay pins the subscriber contract: late subscribers see
// the full history and a closed channel; live subscribers see the stage
// events as the job runs.
func TestEventsHistoryReplay(t *testing.T) {
	m := job.NewManager(job.Options{Workers: 1, CacheEntries: -1,
		Run: func(ctx context.Context, r *job.PlanRequest, trace func(plan.StageEvent)) (*job.RunResult, error) {
			trace(plan.StageEvent{Stage: "partition"})
			trace(plan.StageEvent{Stage: "route", Index: 1})
			return &job.RunResult{Circuit: r.Source.Label()}, nil
		}})
	defer m.Shutdown(context.Background())

	j, err := m.Submit(req("s386"))
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, j)
	hist, live, cancel := j.Subscribe()
	defer cancel()
	if _, open := <-live; open {
		t.Fatal("live channel open on a terminal job")
	}
	var stages []string
	var last job.Event
	for i, ev := range hist {
		if ev.Seq != i {
			t.Fatalf("event %d has seq %d", i, ev.Seq)
		}
		if ev.Type == "stage" {
			stages = append(stages, ev.Stage)
		}
		last = ev
	}
	if len(stages) != 2 || stages[0] != "partition" || stages[1] != "route" {
		t.Fatalf("stage events %v", stages)
	}
	if last.Type != "state" || last.State != job.StateDone {
		t.Fatalf("final event %+v", last)
	}
}

// TestCacheLRUEviction bounds the cache: old entries fall out, and a
// re-submission after eviction plans again.
func TestCacheLRUEviction(t *testing.T) {
	var runs atomic.Int64
	m := job.NewManager(job.Options{Workers: 1, CacheEntries: 2,
		Run: func(ctx context.Context, r *job.PlanRequest, trace func(plan.StageEvent)) (*job.RunResult, error) {
			runs.Add(1)
			return &job.RunResult{Circuit: r.Source.Label()}, nil
		}})
	defer m.Shutdown(context.Background())

	submit := func(seed int64) *job.Job {
		r := req("s386")
		r.Config.Seed = seed
		j, err := m.Submit(r)
		if err != nil {
			t.Fatal(err)
		}
		waitTerminal(t, j)
		return j
	}
	submit(1)
	submit(2)
	submit(3) // evicts seed 1
	if j := submit(2); !j.Status().CacheHit {
		t.Fatal("seed 2 should still be cached")
	}
	if j := submit(1); j.Status().CacheHit {
		t.Fatal("seed 1 should have been evicted")
	}
	if n := runs.Load(); n != 4 {
		t.Fatalf("planner ran %d times, want 4", n)
	}
}
