package job

import (
	"context"
	"testing"
	"time"

	"lacret/internal/plan"
)

// TestSubscriberLaggedMarker: a subscriber that stops draining loses
// events instead of stalling the emitter, and the first thing it sees once
// it drains again is one "lagged" marker carrying the dropped count —
// before anything newer.
func TestSubscriberLaggedMarker(t *testing.T) {
	req := testReq("s400")
	j := newJob("j1-x", req.Digest(), &req)
	hist, ch, cancel := j.Subscribe()
	defer cancel()
	if len(hist) != 1 || hist[0].State != StateQueued {
		t.Fatalf("history at subscribe = %+v, want the queued event", hist)
	}

	// Overflow the subscriber buffer (cap 64) without draining.
	const emitted = 70
	for i := 0; i < emitted; i++ {
		j.emit(Event{Type: "stage", Stage: "flood"})
	}
	for i := 0; i < cap(ch); i++ {
		ev := <-ch
		if ev.Type != "stage" {
			t.Fatalf("buffered event %d is %q, want the stage flood", i, ev.Type)
		}
	}
	select {
	case ev := <-ch:
		t.Fatalf("unexpected event beyond the buffer: %+v", ev)
	default:
	}

	// The next emission must deliver the gap marker first, then the event.
	j.emit(Event{Type: "stage", Stage: "tail"})
	ev := <-ch
	if ev.Type != "lagged" || ev.Dropped != emitted-cap(ch) {
		t.Fatalf("first event after drain = %+v, want lagged with %d dropped", ev, emitted-cap(ch))
	}
	if ev = <-ch; ev.Type != "stage" || ev.Stage != "tail" {
		t.Fatalf("event after the marker = %+v, want the tail stage", ev)
	}

	// The retained history is complete — drops are per-subscriber only.
	if got := len(j.events); got != emitted+2 {
		t.Fatalf("retained history has %d events, want %d", got, emitted+2)
	}
}

// TestEventHistoryBounded: per-job history stops growing at
// maxEventHistory; late subscribers get one leading lagged marker for the
// aged-out prefix, and sequence numbers stay continuous across the gap.
func TestEventHistoryBounded(t *testing.T) {
	req := testReq("s400")
	j := newJob("j1-x", req.Digest(), &req)
	total := maxEventHistory + 10 // the queued event plus this many stage events
	for i := 0; i < total; i++ {
		j.emit(Event{Type: "stage", Stage: "churn"})
	}
	hist, ch, cancel := j.Subscribe()
	defer cancel()
	_ = ch
	if got := len(j.events); got > maxEventHistory {
		t.Fatalf("retained history grew to %d, bound is %d", got, maxEventHistory)
	}
	if hist[0].Type != "lagged" || hist[0].Dropped == 0 {
		t.Fatalf("late subscriber's first event = %+v, want a lagged marker", hist[0])
	}
	// Seq of the first retained event equals the dropped count: nothing was
	// lost silently and nothing was double-counted.
	if hist[1].Seq != hist[0].Dropped {
		t.Fatalf("first retained seq %d != dropped count %d", hist[1].Seq, hist[0].Dropped)
	}
	last := hist[len(hist)-1]
	if last.Seq != total {
		t.Fatalf("last retained seq %d, want %d", last.Seq, total)
	}
}

// TestDrainWhileSubscribed is the satellite regression: a subscriber
// attached to a queued job watches the drain cancel it — the terminal
// canceled state arrives on the live channel and the channel then closes,
// rather than leaking or blocking Shutdown.
func TestDrainWhileSubscribed(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	park := func(ctx context.Context, req *PlanRequest, trace func(plan.StageEvent)) (*RunResult, error) {
		select {
		case <-release:
			return &RunResult{Circuit: req.Source.Label()}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	m := NewManager(Options{Workers: 1, Run: park})
	if _, err := m.Submit(testReq("s400")); err != nil {
		t.Fatal(err)
	}
	jq, err := m.Submit(testReq("s953"))
	if err != nil {
		t.Fatal(err)
	}
	hist, ch, cancel := jq.Subscribe()
	defer cancel()
	if len(hist) == 0 || hist[len(hist)-1].State != StateQueued {
		t.Fatalf("pre-drain history = %+v, want queued", hist)
	}

	expired, cancelCtx := context.WithCancel(context.Background())
	cancelCtx()
	m.Shutdown(expired)

	var last Event
	deadline := time.After(30 * time.Second)
	for {
		select {
		case ev, ok := <-ch:
			if !ok {
				if last.Type != "state" || last.State != StateCanceled {
					t.Fatalf("stream closed after %+v, want a canceled state event", last)
				}
				return
			}
			last = ev
		case <-deadline:
			t.Fatal("subscriber channel never closed after drain")
		}
	}
}
