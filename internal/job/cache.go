package job

import "container/list"

// resultCache is the content-addressed outcome store: request digest →
// encoded run report + summary, LRU-bounded by entry count. Reports are
// stored and returned as the exact bytes the producing run encoded, so a
// cache hit is bit-identical to the run it memoizes. Not safe for
// concurrent use on its own — the Manager serializes access under its
// mutex.
type resultCache struct {
	max     int
	entries map[string]*list.Element
	order   *list.List // front = most recently used
}

type cacheEntry struct {
	digest  string
	outcome *Outcome
}

func newResultCache(max int) *resultCache {
	return &resultCache{
		max:     max,
		entries: map[string]*list.Element{},
		order:   list.New(),
	}
}

func (c *resultCache) get(digest string) (*Outcome, bool) {
	el, ok := c.entries[digest]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).outcome, true
}

func (c *resultCache) put(digest string, out *Outcome) {
	if c.max <= 0 {
		return
	}
	if el, ok := c.entries[digest]; ok {
		el.Value.(*cacheEntry).outcome = out
		c.order.MoveToFront(el)
		return
	}
	c.entries[digest] = c.order.PushFront(&cacheEntry{digest: digest, outcome: out})
	for len(c.entries) > c.max {
		el := c.order.Back()
		c.order.Remove(el)
		delete(c.entries, el.Value.(*cacheEntry).digest)
	}
}

func (c *resultCache) len() int { return len(c.entries) }

// trim evicts least-recently-used entries down to n (memory-pressure
// shedding).
func (c *resultCache) trim(n int) {
	if n < 0 {
		n = 0
	}
	for len(c.entries) > n {
		el := c.order.Back()
		c.order.Remove(el)
		delete(c.entries, el.Value.(*cacheEntry).digest)
	}
}
