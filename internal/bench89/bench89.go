// Package bench89 generates synthetic ISCAS89-class sequential benchmark
// circuits.
//
// The paper evaluates on ISCAS89 netlists (treated as RT-level netlists of
// functional units). Those netlist files are not distributable with this
// repository, so bench89 synthesizes circuits that match the published
// size statistics of each benchmark — gate count, flip-flop count, primary
// I/O count, and approximate combinational depth — with ISCAS89-like
// topology: layered combinational logic between flip-flop ranks, bounded
// fanin, feedback only through flip-flops. Generation is fully
// deterministic for a given seed.
//
// Real .bench files can be used instead via netlist.ParseBench; every
// consumer in this repository accepts either source.
package bench89

import (
	"fmt"
	"math/rand"
	"sort"

	"lacret/internal/netlist"
)

// Params describes a synthetic circuit.
type Params struct {
	Name    string
	Gates   int // combinational functional units
	DFFs    int // flip-flops
	Inputs  int // primary inputs
	Outputs int // primary outputs
	// Depth is the target combinational depth (levels of logic between
	// register ranks).
	Depth int
	// MaxFanin bounds gate fanin (>= 1); typical ISCAS89 gates have 2-4.
	MaxFanin int
	// Seed drives the deterministic generator.
	Seed int64
	// FeedbackDepth is the fraction of the core depth from which flip-flop
	// data inputs are drawn (0 selects the default 0.34). It controls the
	// delay-to-register ratio of the critical cycles and therefore the gap
	// between the initial and the minimum retimed clock period: 1.0 means
	// feedback from the deepest logic (no retiming headroom), small values
	// leave the deep logic register-to-output and fully pipelinable.
	FeedbackDepth float64
	// ScaleTier marks synthetic stress circuits that are not part of the
	// paper's Table 1 (excluded from Table1Names and the table1 default
	// run, selectable explicitly by name).
	ScaleTier bool
}

func (p Params) validate() error {
	switch {
	case p.Name == "":
		return fmt.Errorf("bench89: empty circuit name")
	case p.Gates < 1:
		return fmt.Errorf("bench89 %s: need at least one gate", p.Name)
	case p.Inputs < 1:
		return fmt.Errorf("bench89 %s: need at least one input", p.Name)
	case p.Outputs < 1:
		return fmt.Errorf("bench89 %s: need at least one output", p.Name)
	case p.DFFs < 0:
		return fmt.Errorf("bench89 %s: negative DFF count", p.Name)
	case p.Depth < 1:
		return fmt.Errorf("bench89 %s: depth must be >= 1", p.Name)
	case p.MaxFanin < 1:
		return fmt.Errorf("bench89 %s: MaxFanin must be >= 1", p.Name)
	case p.Depth > p.Gates:
		return fmt.Errorf("bench89 %s: depth %d exceeds gate count %d", p.Name, p.Depth, p.Gates)
	case p.FeedbackDepth < 0 || p.FeedbackDepth > 1:
		return fmt.Errorf("bench89 %s: FeedbackDepth %g outside [0,1]", p.Name, p.FeedbackDepth)
	}
	return nil
}

var gateOps = []string{"AND", "NAND", "OR", "NOR", "XOR", "NOT", "BUF"}

// Generate builds a synthetic circuit. The result always passes
// netlist.Validate: combinational logic is layered (acyclic) and all
// sequential feedback goes through flip-flops. Gate delays and areas are
// left zero for the caller to assign.
func Generate(p Params) (*netlist.Netlist, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(p.Seed))
	n := netlist.New(p.Name)

	inputs := make([]netlist.NodeID, p.Gates+p.Inputs) // scratch; trimmed below
	inputs = inputs[:0]
	for i := 0; i < p.Inputs; i++ {
		id, err := n.AddInput(fmt.Sprintf("pi%d", i))
		if err != nil {
			return nil, err
		}
		inputs = append(inputs, id)
	}

	// Flip-flops are created up front with placeholder fanins (patched once
	// the gates exist) so that gates can use FF outputs as fanins — this is
	// how sequential feedback loops arise.
	ffs := make([]netlist.NodeID, 0, p.DFFs)
	for i := 0; i < p.DFFs; i++ {
		id, err := n.AddDFF(fmt.Sprintf("ff%d", i), inputs[rng.Intn(len(inputs))])
		if err != nil {
			return nil, err
		}
		ffs = append(ffs, id)
	}

	// The circuit is split into a shallow "input cloud" — the only gates
	// primary inputs may feed, whose outputs go only to flip-flops and
	// primary outputs — and a deep "core" reachable from inputs only
	// through flip-flops. This mirrors real sequential benchmarks, where
	// the deep paths run register-to-register: a combinational PI→PO path
	// has invariant register count under retiming (ports are pinned), so
	// deep PI→PO paths would artificially pin the minimum period at the
	// initial period.
	cloudDepth := 3
	if cloudDepth > p.Depth {
		cloudDepth = p.Depth
	}
	cloudGates := p.Gates / 8
	if cloudGates < cloudDepth {
		cloudGates = cloudDepth
	}
	if p.DFFs == 0 {
		// Purely combinational circuit: everything is "cloud".
		cloudGates = p.Gates
		cloudDepth = p.Depth
	}
	coreGates := p.Gates - cloudGates
	coreDepth := p.Depth
	if coreGates < coreDepth {
		coreDepth = coreGates
	}

	// buildLayers creates count gates over depth levels drawing fanins
	// from base signals (available at level 0) plus earlier levels.
	levelOfGate := map[netlist.NodeID]int{}
	buildLayers := func(prefix string, count, depth int, base []netlist.NodeID) ([]netlist.NodeID, [][]netlist.NodeID, error) {
		if count == 0 {
			return nil, nil, nil
		}
		levelOf := make([]int, count)
		for i := 0; i < depth; i++ {
			levelOf[i] = i
		}
		for i := depth; i < count; i++ {
			levelOf[i] = rng.Intn(depth)
		}
		sort.Ints(levelOf)
		byLevel := make([][]netlist.NodeID, depth)
		all := make([]netlist.NodeID, 0, count)
		for gi := 0; gi < count; gi++ {
			lvl := levelOf[gi]
			nf := 1 + rng.Intn(p.MaxFanin)
			if nf > 4 { // keep a 2-3 typical fanin profile even for big MaxFanin
				nf = 2 + rng.Intn(3)
			}
			fanin := make([]netlist.NodeID, 0, nf)
			// One fanin forces the depth: from the previous level if any.
			if lvl > 0 && len(byLevel[lvl-1]) > 0 {
				prev := byLevel[lvl-1]
				fanin = append(fanin, prev[rng.Intn(len(prev))])
			} else {
				fanin = append(fanin, base[rng.Intn(len(base))])
			}
			for len(fanin) < nf {
				// Remaining fanins come from any strictly earlier level or
				// a base signal — never the same or a later level, so the
				// combinational graph is acyclic by construction.
				var cand netlist.NodeID
				if lvl > 0 && rng.Float64() < 0.6 {
					l := rng.Intn(lvl)
					if len(byLevel[l]) == 0 {
						cand = base[rng.Intn(len(base))]
					} else {
						cand = byLevel[l][rng.Intn(len(byLevel[l]))]
					}
				} else {
					cand = base[rng.Intn(len(base))]
				}
				dup := false
				for _, f := range fanin {
					if f == cand {
						dup = true
						break
					}
				}
				if !dup {
					fanin = append(fanin, cand)
				} else if rng.Float64() < 0.3 {
					break // occasional smaller fanin instead of retrying forever
				}
			}
			op := gateOps[rng.Intn(len(gateOps))]
			if len(fanin) == 1 && op != "NOT" && op != "BUF" {
				op = "NOT"
			}
			if len(fanin) > 1 && (op == "NOT" || op == "BUF") {
				op = "NAND"
			}
			id, err := n.AddGate(prefix+fmt.Sprint(len(all)), op, fanin...)
			if err != nil {
				return nil, nil, err
			}
			all = append(all, id)
			byLevel[lvl] = append(byLevel[lvl], id)
			levelOfGate[id] = lvl
		}
		return all, byLevel, nil
	}

	cloudBase := append(append([]netlist.NodeID(nil), inputs...), ffs...)
	cloud, _, err := buildLayers("g", cloudGates, cloudDepth, cloudBase)
	if err != nil {
		return nil, err
	}
	coreBase := append([]netlist.NodeID(nil), ffs...)
	if len(coreBase) == 0 {
		coreBase = inputs
	}
	core, coreByLevel, err := buildLayers("h", coreGates, coreDepth, coreBase)
	if err != nil {
		return nil, err
	}
	gates := append(append([]netlist.NodeID(nil), cloud...), core...)
	// FF data sources draw from the core when it exists, else the cloud.
	ffPoolByLevel := coreByLevel
	ffPoolDepth := coreDepth
	if len(core) == 0 {
		ffPoolByLevel = [][]netlist.NodeID{cloud}
		ffPoolDepth = 1
	}

	// Patch flip-flop data inputs: mostly core gates biased deep
	// (sequential feedback over real logic), some cloud gates (registered
	// input logic), and occasionally an earlier FF (shift-register chains —
	// strictly earlier, so no FF-only cycles).
	for i, ff := range ffs {
		var src netlist.NodeID
		switch {
		case i > 0 && rng.Float64() < 0.10:
			src = ffs[rng.Intn(i)]
		case len(cloud) > 0 && rng.Float64() < 0.25:
			src = cloud[rng.Intn(len(cloud))]
		default:
			// Draw from the feedback window [0, FeedbackDepth*coreDepth).
			frac := p.FeedbackDepth
			if frac == 0 {
				frac = 0.34
			}
			window := int(frac * float64(ffPoolDepth))
			if window < 1 {
				window = 1
			}
			lvl := rng.Intn(window)
			if lvl >= ffPoolDepth {
				lvl = ffPoolDepth - 1
			}
			for lvl > 0 && len(ffPoolByLevel[lvl]) == 0 {
				lvl--
			}
			pool := ffPoolByLevel[lvl]
			if len(pool) == 0 {
				pool = gates
			}
			src = pool[rng.Intn(len(pool))]
		}
		n.Node(ff).Fanin = []netlist.NodeID{src}
	}

	// Primary outputs come from fanout-free gates (sinks), deepest first.
	// Excess sinks are absorbed as extra fanins of deeper gates in the
	// same region (cloud sinks must stay out of the core — cloud outputs
	// feed only flip-flops and primary outputs), so the PO count tracks
	// the catalog instead of ballooning with every dangling gate.
	fo := n.Fanouts()
	var sinks []netlist.NodeID
	for _, g := range gates {
		if len(fo[g]) == 0 {
			sinks = append(sinks, g)
		}
	}
	sort.Slice(sinks, func(i, j int) bool {
		li, lj := levelOfGate[sinks[i]], levelOfGate[sinks[j]]
		if li != lj {
			return li > lj // deepest first
		}
		return sinks[i] < sinks[j]
	})
	inCore := map[netlist.NodeID]bool{}
	for _, g := range core {
		inCore[g] = true
	}
	absorb := func(s netlist.NodeID) bool {
		region := cloud
		if inCore[s] {
			region = core
		}
		lvl := levelOfGate[s]
		// Deterministic scan from a random start for a deeper gate with
		// spare fanin.
		if len(region) == 0 {
			return false
		}
		start := rng.Intn(len(region))
		for k := 0; k < len(region); k++ {
			g := region[(start+k)%len(region)]
			if levelOfGate[g] <= lvl {
				continue
			}
			node := n.Node(g)
			if node.Op == "NOT" || node.Op == "BUF" {
				continue // unary gates cannot absorb extra fanins
			}
			if len(node.Fanin) >= p.MaxFanin || len(node.Fanin) >= 4 {
				continue
			}
			dup := false
			for _, f := range node.Fanin {
				if f == s {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			node.Fanin = append(node.Fanin, s)
			return true
		}
		return false
	}
	marked := map[netlist.NodeID]bool{}
	for i, s := range sinks {
		if i < p.Outputs || !absorb(s) {
			n.MarkOutput(s)
			marked[s] = true
		}
	}
	for tries := 0; len(n.Outputs) < p.Outputs && tries < 20*p.Outputs; tries++ {
		g := gates[rng.Intn(len(gates))]
		if !marked[g] {
			n.MarkOutput(g)
			marked[g] = true
		}
	}

	if err := n.Validate(); err != nil {
		return nil, fmt.Errorf("bench89 %s: generated circuit invalid: %v", p.Name, err)
	}
	return n, nil
}

// Catalog returns the ten Table 1 circuits with their published size
// statistics (gate/FF/IO counts from the ISCAS89 suite and its 1993
// addendum; depths approximate the originals), plus the s100k scale tier —
// a synthetic circuit sized so its planned retiming graph exceeds 100k
// vertices (wire units inflate the netlist ~20x), for exercising the lazy
// constraint engine where the dense W/D matrices would need >100 GB.
func Catalog() []Params {
	return []Params{
		{Name: "s386", Gates: 159, DFFs: 6, Inputs: 7, Outputs: 7, Depth: 11, MaxFanin: 4, Seed: 386, FeedbackDepth: 0.50},
		{Name: "s400", Gates: 162, DFFs: 21, Inputs: 3, Outputs: 6, Depth: 11, MaxFanin: 4, Seed: 400, FeedbackDepth: 0.40},
		{Name: "s526", Gates: 193, DFFs: 21, Inputs: 3, Outputs: 6, Depth: 9, MaxFanin: 4, Seed: 526, FeedbackDepth: 0.60},
		{Name: "s641", Gates: 379, DFFs: 19, Inputs: 35, Outputs: 24, Depth: 24, MaxFanin: 4, Seed: 641, FeedbackDepth: 0.80},
		{Name: "s820", Gates: 289, DFFs: 5, Inputs: 18, Outputs: 19, Depth: 10, MaxFanin: 4, Seed: 820, FeedbackDepth: 1.00},
		{Name: "s953", Gates: 395, DFFs: 29, Inputs: 16, Outputs: 23, Depth: 16, MaxFanin: 4, Seed: 953, FeedbackDepth: 0.50},
		{Name: "s1196", Gates: 529, DFFs: 18, Inputs: 14, Outputs: 14, Depth: 24, MaxFanin: 4, Seed: 1196, FeedbackDepth: 0.45},
		{Name: "s1269", Gates: 569, DFFs: 37, Inputs: 18, Outputs: 10, Depth: 25, MaxFanin: 4, Seed: 1269, FeedbackDepth: 0.40},
		{Name: "s1423", Gates: 657, DFFs: 74, Inputs: 17, Outputs: 5, Depth: 40, MaxFanin: 4, Seed: 1423, FeedbackDepth: 0.45},
		{Name: "s5378", Gates: 2779, DFFs: 179, Inputs: 35, Outputs: 49, Depth: 25, MaxFanin: 4, Seed: 5378, FeedbackDepth: 0.50},
		{Name: "s100k", Gates: 6000, DFFs: 400, Inputs: 38, Outputs: 52, Depth: 28, MaxFanin: 4, Seed: 100000, FeedbackDepth: 0.50, ScaleTier: true},
	}
}

// Table1Names lists the paper's Table 1 circuits in catalog order,
// excluding scale-tier entries.
func Table1Names() []string {
	var names []string
	for _, p := range Catalog() {
		if !p.ScaleTier {
			names = append(names, p.Name)
		}
	}
	return names
}

// ByName returns the catalog entry with the given name.
func ByName(name string) (Params, bool) {
	for _, p := range Catalog() {
		if p.Name == name {
			return p, true
		}
	}
	return Params{}, false
}
