package bench89

import (
	"bytes"
	"testing"

	"lacret/internal/netlist"
)

func TestGenerateSmall(t *testing.T) {
	p := Params{Name: "t1", Gates: 50, DFFs: 8, Inputs: 4, Outputs: 5, Depth: 6, MaxFanin: 4, Seed: 1}
	n, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	s := n.Stats()
	if s.Gates != p.Gates || s.DFFs != p.DFFs || s.Inputs != p.Inputs {
		t.Fatalf("stats %+v != params %+v", s, p)
	}
	if s.Outputs < 1 {
		t.Fatal("no outputs")
	}
	if s.MaxFanin > p.MaxFanin {
		t.Fatalf("fanin %d exceeds max %d", s.MaxFanin, p.MaxFanin)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := Params{Name: "t", Gates: 120, DFFs: 12, Inputs: 6, Outputs: 6, Depth: 10, MaxFanin: 4, Seed: 99}
	a, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	var ba, bb bytes.Buffer
	if err := netlist.WriteBench(&ba, a); err != nil {
		t.Fatal(err)
	}
	if err := netlist.WriteBench(&bb, b); err != nil {
		t.Fatal(err)
	}
	if ba.String() != bb.String() {
		t.Fatal("same seed produced different circuits")
	}
}

func TestGenerateSeedChangesCircuit(t *testing.T) {
	p := Params{Name: "t", Gates: 120, DFFs: 12, Inputs: 6, Outputs: 6, Depth: 10, MaxFanin: 4, Seed: 1}
	a, _ := Generate(p)
	p.Seed = 2
	b, _ := Generate(p)
	var ba, bb bytes.Buffer
	netlist.WriteBench(&ba, a)
	netlist.WriteBench(&bb, b)
	if ba.String() == bb.String() {
		t.Fatal("different seeds produced identical circuits")
	}
}

func TestGenerateCollapsible(t *testing.T) {
	// Every generated circuit must collapse (no DFF-only cycles) and have
	// every cycle through a flip-flop (Validate checks this).
	for _, p := range Catalog()[:4] {
		n, err := Generate(p)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if _, err := n.Collapse(); err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
	}
}

func TestCatalogAllGenerate(t *testing.T) {
	if testing.Short() {
		t.Skip("full catalog in short mode")
	}
	for _, p := range Catalog() {
		n, err := Generate(p)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		s := n.Stats()
		if s.Gates != p.Gates || s.DFFs != p.DFFs {
			t.Fatalf("%s: stats %+v", p.Name, s)
		}
		if err := n.Validate(); err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
	}
}

func TestScaleTierS100k(t *testing.T) {
	if testing.Short() {
		t.Skip("large circuit in short mode")
	}
	p, ok := ByName("s100k")
	if !ok {
		t.Fatal("no s100k in catalog")
	}
	if !p.ScaleTier {
		t.Fatal("s100k not marked ScaleTier")
	}
	if contains(Table1Names(), "s100k") {
		t.Fatal("s100k leaked into Table1Names")
	}
	if got := Table1Names(); len(got) != 10 {
		t.Fatalf("Table1Names has %d entries", len(got))
	}
	n, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	s := n.Stats()
	if s.Gates != p.Gates || s.DFFs != p.DFFs || s.Inputs != p.Inputs {
		t.Fatalf("stats %+v != params %+v", s, p)
	}
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Collapse(); err != nil {
		t.Fatal(err)
	}
}

func contains(names []string, want string) bool {
	for _, n := range names {
		if n == want {
			return true
		}
	}
	return false
}

func TestByName(t *testing.T) {
	p, ok := ByName("s1269")
	if !ok || p.Gates != 569 || p.DFFs != 37 {
		t.Fatalf("ByName(s1269) = %+v, %v", p, ok)
	}
	if _, ok := ByName("nosuch"); ok {
		t.Fatal("phantom circuit")
	}
}

func TestParamValidation(t *testing.T) {
	bad := []Params{
		{},
		{Name: "x"},
		{Name: "x", Gates: 5},
		{Name: "x", Gates: 5, Inputs: 1},
		{Name: "x", Gates: 5, Inputs: 1, Outputs: 1},
		{Name: "x", Gates: 5, Inputs: 1, Outputs: 1, Depth: 1},
		{Name: "x", Gates: 5, Inputs: 1, Outputs: 1, Depth: 9, MaxFanin: 2},
		{Name: "x", Gates: 5, Inputs: 1, Outputs: 1, Depth: 1, MaxFanin: 2, DFFs: -1},
	}
	for i, p := range bad {
		if _, err := Generate(p); err == nil {
			t.Errorf("case %d: bad params accepted: %+v", i, p)
		}
	}
}

func TestGeneratedDepthRoughlyMatches(t *testing.T) {
	// The level-forcing fanin should give a combinational depth close to
	// the requested depth (within a small tolerance from dead levels).
	p := Params{Name: "d", Gates: 200, DFFs: 10, Inputs: 5, Outputs: 5, Depth: 15, MaxFanin: 4, Seed: 3}
	n, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	// Longest combinational path by dynamic programming over non-DFF nodes.
	depth := make([]int, n.N())
	order := make([]netlist.NodeID, 0, n.N())
	// Nodes were created so gate fanins precede them except FF patches;
	// compute in ID order but skip DFF boundaries.
	for id := 0; id < n.N(); id++ {
		order = append(order, netlist.NodeID(id))
	}
	best := 0
	for _, id := range order {
		node := n.Node(id)
		if node.Kind != netlist.KindGate {
			continue
		}
		d := 0
		for _, f := range node.Fanin {
			if n.Node(f).Kind == netlist.KindGate && depth[f]+1 > d {
				d = depth[f] + 1
			}
		}
		depth[id] = d
		if d > best {
			best = d
		}
	}
	if best < p.Depth-2 || best > p.Depth {
		t.Fatalf("combinational depth %d, want about %d", best, p.Depth)
	}
}
