// Package mcmf implements a minimum-cost flow solver using successive
// shortest paths with node potentials (Bellman–Ford for initial potentials,
// so negative arc costs are supported; Dijkstra on reduced costs thereafter).
//
// It is the workhorse behind (weighted) minimum-area retiming: the LP dual of
// the retiming problem is a transshipment problem on the constraint graph,
// and the optimal retiming labels are recovered from shortest-path potentials
// of the final residual network (see Potentials).
//
// The solver has two driving modes:
//
//   - One-shot: Solve routes one supply vector and consumes the network
//     (the historical interface).
//   - Incremental: SetSupply/SetArcCost followed by Resolve, repeatedly.
//     The residual network and node potentials persist across calls, so a
//     re-solve after a cost or supply change repairs optimality from the
//     previous flow (drain flow on cost-changed arcs, restore feasible
//     potentials, then run successive shortest paths on the remaining
//     imbalance) instead of starting cold. This is what makes the LAC
//     reweighting loop cheap: the constraint network is built once and each
//     round only routes the supply delta induced by the new weights.
//
// Capacities, costs, and supplies are float64, but callers that need
// guaranteed termination and integral optima should supply integral values
// (the retiming packages scale their real-valued area weights to integers
// before calling in here).
package mcmf

import (
	"context"
	"errors"
	"fmt"
	"math"

	"lacret/internal/obs"
)

// Eps is the comparison tolerance for capacities and supplies. It is the
// solver's single numerical knob: every other tolerance derives from it.
const Eps = 1e-9

// costEps is the tolerance for cost-space comparisons (reduced costs,
// shortest-path label relaxations). Kept equal to Eps so the solver has one
// consistent notion of "numerically zero"; retiming callers scale their
// costs to integers, so any drift below this is pure floating-point noise.
const costEps = Eps

// ErrNegativeCycle is returned when the network contains a negative-cost
// cycle of unbounded capacity, making the problem unbounded (for retiming
// this means the constraint system is infeasible).
var ErrNegativeCycle = errors.New("mcmf: negative-cost cycle in network")

// ErrInfeasible is returned when the supplies cannot be routed (not enough
// capacity between sources and sinks).
var ErrInfeasible = errors.New("mcmf: flow infeasible, supplies cannot be routed")

// Inf is a convenience "infinite" capacity.
var Inf = math.Inf(1)

// ArcID identifies an arc added with AddArc.
type ArcID int

// arc is one direction of a residual pair; arcs[i^1] is its reverse.
type arc struct {
	to   int
	cap  float64 // remaining capacity
	cost float64
}

// SolveStats reports how the engine handled the most recent Resolve.
type SolveStats struct {
	// Warm is true when the solve reused the previous residual network and
	// potentials instead of starting from zero flow.
	Warm bool
	// CostChanged counts arc pairs whose cost changed (or that were newly
	// added) since the previous Resolve.
	CostChanged int
	// SupplyChanged counts nodes whose supply changed since the previous
	// Resolve.
	SupplyChanged int
	// AugmentingPaths counts the shortest augmenting paths run by this
	// Resolve (the warm path routes only the imbalance, so this is the
	// direct measure of work saved).
	AugmentingPaths int
	// Phases counts the multi-source Dijkstra searches run by this
	// Resolve. Each phase settles every reachable deficit and then
	// batch-augments along the shortest-path forest, so Phases ≤
	// AugmentingPaths, usually by a wide margin.
	Phases int
	// Restarted is true when the warm potential repair hit a residual
	// negative cycle and the solve fell back to a cold restart from zero
	// flow.
	Restarted bool
	// FlowReset is true when a warm solve dropped the previous flow but
	// kept its potentials: when most supplies changed, re-routing from
	// zero through a clean residual beats threading the delta through the
	// narrow reverse arcs the old flow left behind, and the potentials
	// stay dual-feasible (every original arc kept reduced cost ≥ 0), so
	// the Bellman–Ford pass a genuinely cold solve pays is still skipped.
	FlowReset bool
}

// Graph is a min-cost flow network. The zero value is not usable; call New.
type Graph struct {
	n      int
	arcs   []arc
	head   [][]int // head[v] = indices into arcs
	orig   []float64
	solved bool // legacy one-shot Solve consumed the network
	inc    bool // incremental mode engaged (a Resolve has run)

	// Incremental state: potentials and per-node imbalance (target supply
	// minus currently routed net outflow) persist across Resolve calls.
	pot      []float64
	excess   []float64
	supply   []float64
	dirty    []int  // arc-pair indices with changed cost since last Resolve
	dirtyArc []bool // membership mask for dirty
	pendSup  int    // nodes with supply changed since last Resolve
	stats    SolveStats
	ctx      context.Context // consulted between routing phases; nil = never

	// Per-phase scratch, reused across solves: Dijkstra labels, then the
	// admissible-subgraph DFS (visited doubles as on-stack/dead marks, cur
	// is the current-arc pointer, stack holds the DFS path's arc indices).
	dist    []float64
	prevArc []int
	visited []bool
	cur     []int
	srcs    []int
	stack   []int
	heap    pqHeap
}

// New returns a network with n nodes and no arcs.
func New(n int) *Graph {
	if n < 0 {
		panic(fmt.Sprintf("mcmf: negative node count %d", n))
	}
	return &Graph{n: n, head: make([][]int, n)}
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// AddNode appends a node and returns its index.
func (g *Graph) AddNode() int {
	g.head = append(g.head, nil)
	g.n++
	if g.inc {
		g.pot = append(g.pot, 0)
		g.excess = append(g.excess, 0)
		g.supply = append(g.supply, 0)
	}
	return g.n - 1
}

// AddArc adds a directed arc with the given capacity and per-unit cost and
// returns its identifier. Capacity may be mcmf.Inf. Arcs may be added
// between Resolve calls; the next Resolve repairs optimality around them.
func (g *Graph) AddArc(from, to int, capacity, cost float64) ArcID {
	if from < 0 || from >= g.n || to < 0 || to >= g.n {
		panic(fmt.Sprintf("mcmf: arc (%d,%d) out of range [0,%d)", from, to, g.n))
	}
	if capacity < 0 {
		panic("mcmf: negative capacity")
	}
	id := ArcID(len(g.arcs))
	g.arcs = append(g.arcs, arc{to: to, cap: capacity, cost: cost})
	g.arcs = append(g.arcs, arc{to: from, cap: 0, cost: -cost})
	g.head[from] = append(g.head[from], int(id))
	g.head[to] = append(g.head[to], int(id)+1)
	g.orig = append(g.orig, capacity)
	if g.inc {
		// A fresh arc may violate the maintained reduced-cost invariant;
		// treat it like a cost change so Resolve repairs around it.
		g.markDirty(int(id) / 2)
	}
	return id
}

// Flow returns the flow routed through arc a after Solve or Resolve.
func (g *Graph) Flow(a ArcID) float64 {
	return g.arcs[int(a)^1].cap
}

// Capacity returns the original capacity arc a was created with.
func (g *Graph) Capacity(a ArcID) float64 {
	return g.orig[int(a)/2]
}

// Cost returns the current per-unit cost of arc a.
func (g *Graph) Cost(a ArcID) float64 {
	return g.arcs[int(a)&^1].cost
}

// Stats returns the counters of the most recent Resolve (or of the Solve
// call, which drives the same engine).
func (g *Graph) Stats() SolveStats { return g.stats }

// SetContext installs a cancellation context consulted between routing
// phases, so even a single pathological solve is interruptible: when the
// context is done, the in-flight Solve/Resolve returns its error. A nil
// context (the default) restores the uninterruptible behavior. After a
// context-aborted solve the residual state is undefined, like after any
// other solve error, and the network should be discarded.
func (g *Graph) SetContext(ctx context.Context) { g.ctx = ctx }

func (g *Graph) markDirty(pair int) {
	for len(g.dirtyArc) <= pair {
		g.dirtyArc = append(g.dirtyArc, false)
	}
	if !g.dirtyArc[pair] {
		g.dirtyArc[pair] = true
		g.dirty = append(g.dirty, pair)
	}
}

// SetArcCost changes the per-unit cost of arc a. On a network driven
// incrementally, the next Resolve drains any flow the arc carries, repairs
// the node potentials, and re-routes the displaced units — the standard
// warm-start move for re-solving structurally identical flow problems under
// changing costs.
func (g *Graph) SetArcCost(a ArcID, cost float64) {
	if math.IsNaN(cost) {
		panic("mcmf: NaN arc cost")
	}
	fwd := int(a) &^ 1
	if g.arcs[fwd].cost == cost {
		return
	}
	g.arcs[fwd].cost = cost
	g.arcs[fwd^1].cost = -cost
	if g.inc {
		g.markDirty(fwd / 2)
	}
}

// SetSupply sets the target supply vector (supply[v] > 0 means v produces
// flow, < 0 means v consumes; the vector must sum to ~0). Only the delta
// against the previously set supplies becomes new routing work for the next
// Resolve. It returns an error on a length mismatch, an unbalanced vector,
// or a network already consumed by the one-shot Solve.
func (g *Graph) SetSupply(supply []float64) error {
	if g.solved {
		return errors.New("mcmf: SetSupply on a network consumed by Solve")
	}
	if len(supply) != g.n {
		return fmt.Errorf("mcmf: supply length %d != node count %d", len(supply), g.n)
	}
	var total float64
	for _, s := range supply {
		total += s
	}
	if math.Abs(total) > 1e-6 {
		return fmt.Errorf("mcmf: supplies sum to %g, want 0", total)
	}
	g.ensureIncState()
	for v, s := range supply {
		if d := s - g.supply[v]; d > Eps || d < -Eps {
			g.excess[v] += d
			g.supply[v] = s
			g.pendSup++
		}
	}
	return nil
}

func (g *Graph) ensureIncState() {
	if g.excess == nil {
		g.excess = make([]float64, g.n)
		g.supply = make([]float64, g.n)
	}
}

// Resolve routes the currently set supplies at minimum total cost and
// returns the cost of the resulting flow. The first call solves cold
// (Bellman–Ford potentials, then phase-batched successive shortest paths);
// subsequent calls warm-start from the previous residual network: flow on
// cost-changed arcs is drained and potentials are repaired, then a
// localized supply change routes only the remaining per-node imbalance,
// while a global one (most supplies changed) re-routes from zero flow
// through the already-built network (see SolveStats.FlowReset). After an
// error the residual state is undefined and the network should be
// discarded.
func (g *Graph) Resolve() (float64, error) {
	if g.solved {
		return 0, errors.New("mcmf: Resolve on a network consumed by Solve")
	}
	return g.resolve()
}

func (g *Graph) resolve() (float64, error) {
	g.ensureIncState()
	st := SolveStats{
		Warm:          g.inc,
		CostChanged:   len(g.dirty),
		SupplyChanged: g.pendSup,
	}
	g.pendSup = 0
	// One "mcmf-solve" span per Resolve, carrying the final SolveStats; its
	// children are the per-phase spans created in route. All no-ops (nil
	// span, nil counters) unless the installed context carries a recorder.
	sctx := context.Background()
	if g.ctx != nil {
		sctx = g.ctx
	}
	rctx, sp := obs.StartSpan(sctx, "mcmf-solve")
	defer func() {
		if sp == nil {
			return
		}
		sp.SetAttr("warm", b2f(st.Warm))
		sp.SetAttr("restarted", b2f(st.Restarted))
		sp.SetAttr("flow_reset", b2f(st.FlowReset))
		sp.SetAttr("cost_changed", float64(st.CostChanged))
		sp.SetAttr("supply_changed", float64(st.SupplyChanged))
		sp.SetAttr("phases", float64(st.Phases))
		sp.SetAttr("augpaths", float64(st.AugmentingPaths))
		sp.End()
		reg := obs.FromContext(sctx).Registry()
		reg.Counter("mcmf.phases").Add(int64(st.Phases))
		reg.Counter("mcmf.augpaths").Add(int64(st.AugmentingPaths))
	}()
	if !g.inc {
		g.inc = true
		pot, err := g.Potentials()
		if err != nil {
			g.stats = st
			return 0, err
		}
		g.pot = pot
	} else if len(g.dirty) > 0 {
		g.drainDirty()
		if !g.repairPotentials() {
			// The repaired system has a negative residual cycle through
			// existing flow: restart cold (correct for any cost change; the
			// cycle is genuine only if the cold pass also finds it).
			st.Restarted = true
			st.Warm = false
			g.resetFlow()
			pot, err := g.Potentials()
			if err != nil {
				g.stats = st
				return 0, err
			}
			g.pot = pot
		}
	}
	// Adaptive warm start: a localized supply change routes fastest as a
	// delta through the existing flow, but a global one (e.g. a LAC
	// reweighting round, which perturbs every node's supply) routes fewer
	// and wider paths from zero flow. Keep the potentials either way — that
	// is the expensive part of a cold start.
	if st.Warm && !st.Restarted && 4*st.SupplyChanged >= g.n {
		st.FlowReset = true
		g.resetFlow()
		pot, err := g.Potentials()
		if err != nil {
			g.stats = st
			return 0, err
		}
		g.pot = pot
	}
	if err := g.route(rctx, &st); err != nil {
		g.stats = st
		return 0, err
	}
	g.stats = st
	return g.flowCost(), nil
}

// drainDirty removes the flow carried by every cost-changed arc, turning it
// back into per-node imbalance that route re-routes under the new costs.
func (g *Graph) drainDirty() {
	for _, pair := range g.dirty {
		fwd, rev := 2*pair, 2*pair+1
		f := g.arcs[rev].cap // reverse residual capacity == routed flow
		if f > Eps {
			g.arcs[fwd].cap += f
			g.arcs[rev].cap = 0
			u, v := g.arcs[rev].to, g.arcs[fwd].to
			g.excess[u] += f
			g.excess[v] -= f
		}
		g.dirtyArc[pair] = false
	}
	g.dirty = g.dirty[:0]
}

// repairPotentials restores the reduced-cost invariant (cost + pot[u] −
// pot[v] ≥ 0 on every residual arc) after cost changes, by Bellman–Ford
// relaxation warm-started from the current potentials. It reports false if
// the residual network has a negative cycle (the caller restarts cold).
func (g *Graph) repairPotentials() bool {
	for iter := 0; iter <= g.n; iter++ {
		changed := false
		for v := 0; v < g.n; v++ {
			for _, ai := range g.head[v] {
				a := g.arcs[ai]
				if a.cap <= Eps {
					continue
				}
				if nd := g.pot[v] + a.cost; nd < g.pot[a.to]-costEps {
					g.pot[a.to] = nd
					changed = true
				}
			}
		}
		if !changed {
			return true
		}
	}
	return false
}

// resetFlow returns every arc to its original capacity and the imbalance to
// the full supply vector (the cold-restart fallback).
func (g *Graph) resetFlow() {
	for p, c := range g.orig {
		g.arcs[2*p].cap = c
		g.arcs[2*p+1].cap = 0
	}
	copy(g.excess, g.supply)
}

// flowCost recomputes the total cost of the routed flow under the current
// arc costs (incremental accounting would drift across drains and
// re-routes; the direct sum is exact and O(m)).
func (g *Graph) flowCost() float64 {
	var total float64
	for p := range g.orig {
		if f := g.arcs[2*p+1].cap; f > 0 {
			total += f * g.arcs[2*p].cost
		}
	}
	return total
}

// route drives the residual network to zero imbalance in phases. Each phase
// runs one multi-source Dijkstra with reduced costs from the excess set,
// settling every reachable deficit, then raises potentials by min(dist, D)
// with D the farthest settled deficit (the early-termination label update of
// Ahuja–Magnanti–Orlin §9.7). After the update every shortest path consists
// of zero-reduced-cost arcs, so the phase batch-routes with a Dinic-style
// depth-first search over that admissible subgraph: augmenting only
// zero-reduced-cost arcs keeps the invariant (their reverses are zero too),
// and the DFS re-roots freely when a source dries up instead of being stuck
// with the one tree branch Dijkstra happened to record.
//
// The alternative — one Dijkstra per augmenting path, the classical SSP loop
// — is what made reweighted LAC rounds expensive: reweighting leaves nearly
// every node with some imbalance, so path count ≈ node count, and almost all
// of those paths have length zero under the previous round's potentials.
// Phase batching routes the whole zero-cost region per search.
func (g *Graph) route(ctx context.Context, st *SolveStats) error {
	n := g.n
	if len(g.dist) < n {
		g.dist = make([]float64, n)
		g.prevArc = make([]int, n)
		g.visited = make([]bool, n)
		g.cur = make([]int, n)
	}
	dist, prevArc, visited, cur := g.dist[:n], g.prevArc[:n], g.visited[:n], g.cur[:n]
	for {
		if g.ctx != nil {
			if err := g.ctx.Err(); err != nil {
				return err
			}
		}
		g.heap.reset()
		g.srcs = g.srcs[:0]
		ndef := 0
		for v := 0; v < n; v++ {
			visited[v] = false
			prevArc[v] = -1
			cur[v] = 0
			switch {
			case g.excess[v] > Eps:
				dist[v] = 0
				// Ascending v with equal keys: each push is O(1), no sift.
				g.heap.push(pqItem{v: v, dist: 0})
				g.srcs = append(g.srcs, v)
			default:
				if g.excess[v] < -Eps {
					ndef++
				}
				dist[v] = Inf
			}
		}
		if len(g.srcs) == 0 {
			return nil // no imbalance left
		}
		st.Phases++
		_, psp := obs.StartSpan(ctx, "phase")
		psp.SetAttr("sources", float64(len(g.srcs)))
		augBefore := st.AugmentingPaths
		// Dijkstra until every deficit is settled or the frontier dies.
		// first/D record the nearest settled deficit (fallback target) and
		// the farthest settled distance (potential-update cap).
		nset, first := 0, -1
		var D float64
		for g.heap.len() > 0 && nset < ndef {
			it := g.heap.pop()
			if visited[it.v] {
				continue
			}
			visited[it.v] = true
			if g.excess[it.v] < -Eps {
				nset++
				D = it.dist
				if first < 0 {
					first = it.v
				}
				// Keep relaxing: shortest paths may run through deficits.
			}
			for _, ai := range g.head[it.v] {
				a := g.arcs[ai]
				if a.cap <= Eps || visited[a.to] {
					continue
				}
				rc := a.cost + g.pot[it.v] - g.pot[a.to]
				if rc < 0 {
					// Residual reduced costs are nonnegative in exact
					// arithmetic (the successive-shortest-path invariant),
					// so any negative value is floating-point drift; clamp
					// it so Dijkstra's settled-label assumption holds.
					rc = 0
				}
				if nd := it.dist + rc; nd < dist[a.to]-costEps {
					dist[a.to] = nd
					prevArc[a.to] = ai
					g.heap.push(pqItem{v: a.to, dist: nd})
				}
			}
		}
		if nset == 0 {
			psp.End()
			return ErrInfeasible
		}
		// Settled deficits have distances ≤ D, so after the capped update
		// every arc on their shortest-path trees has reduced cost exactly 0
		// and stays shortest throughout the batch below. D == 0 (all
		// deficits tied at zero) leaves every potential unchanged, so the
		// O(n) pass is skipped.
		if D > 0 {
			for v := 0; v < n; v++ {
				if dist[v] < D {
					g.pot[v] += dist[v]
				} else {
					g.pot[v] += D
				}
			}
		}
		// Batch-route the admissible subgraph until it is exhausted. The
		// dead-node marks are only valid until the next augmentation (a
		// revived reverse arc can resurrect a dead node), so keep running
		// passes with fresh marks until one routes nothing; only then is a
		// new Dijkstra — the expensive part of a phase — worth paying for.
		// visited switches roles here: Dijkstra's settled marks become the
		// DFS's on-stack/dead marks.
		phaseAug := 0
		for {
			for v := 0; v < n; v++ {
				visited[v] = false
				cur[v] = 0
			}
			passAug := 0
			for _, s := range g.srcs {
				for g.excess[s] > Eps && g.dfsAugment(s, st) {
					passAug++
				}
			}
			phaseAug += passAug
			if passAug == 0 {
				break
			}
		}
		if phaseAug > 0 {
			psp.SetAttr("augpaths", float64(st.AugmentingPaths-augBefore))
			psp.End()
			continue
		}
		// The DFS's dead-node marking is phase-local and approximate (an
		// augmentation can revive a node already marked dead), so in
		// principle a phase can route nothing. Guarantee progress by
		// augmenting the nearest settled deficit along its Dijkstra tree
		// branch: no flow moved this phase, so the branch still has
		// capacity and its root still has excess.
		bottleneck := -g.excess[first]
		v := first
		for prevArc[v] != -1 {
			ai := prevArc[v]
			if g.arcs[ai].cap < bottleneck {
				bottleneck = g.arcs[ai].cap
			}
			v = g.arcs[ai^1].to
		}
		root := v
		if g.excess[root] < bottleneck {
			bottleneck = g.excess[root]
		}
		for v = first; prevArc[v] != -1; {
			ai := prevArc[v]
			g.arcs[ai].cap -= bottleneck
			g.arcs[ai^1].cap += bottleneck
			v = g.arcs[ai^1].to
		}
		g.excess[root] -= bottleneck
		g.excess[first] += bottleneck
		st.AugmentingPaths++
		if augmentCheck != nil {
			augmentCheck(g, g.pot)
		}
		psp.SetAttr("augpaths", float64(st.AugmentingPaths-augBefore))
		psp.End()
	}
}

// b2f encodes a flag as a span attribute value.
func b2f(v bool) float64 {
	if v {
		return 1
	}
	return 0
}

// dfsAugment routes one augmenting path from source s to any deficit along
// admissible (zero-reduced-cost, positive-capacity) residual arcs,
// depth-first. It returns false when the unexplored admissible subgraph has
// no deficit reachable from s. visited doubles as the on-stack and dead-node
// mark; cur is the Dinic-style current-arc pointer, so repeated probes from
// the sources of one phase never rescan a node's rejected arcs.
func (g *Graph) dfsAugment(s int, st *SolveStats) bool {
	g.stack = g.stack[:0]
	g.visited[s] = true
	v := s
	for {
		advanced := false
		for g.cur[v] < len(g.head[v]) {
			ai := g.head[v][g.cur[v]]
			a := &g.arcs[ai]
			if a.cap > Eps && !g.visited[a.to] && a.cost+g.pot[v]-g.pot[a.to] <= costEps {
				if g.excess[a.to] < -Eps {
					g.augmentStack(s, ai, st)
					return true
				}
				g.visited[a.to] = true
				g.stack = append(g.stack, ai)
				v = a.to
				advanced = true
				break
			}
			g.cur[v]++
		}
		if advanced {
			continue
		}
		if len(g.stack) == 0 {
			// s itself is dead for this phase; the mark stays so other
			// sources' probes skip it too.
			return false
		}
		// Retreat. v stays marked (its arcs are exhausted — dead until the
		// next phase) and the search resumes at its parent.
		ai := g.stack[len(g.stack)-1]
		g.stack = g.stack[:len(g.stack)-1]
		v = g.arcs[ai^1].to
	}
}

// augmentStack pushes the bottleneck along g.stack plus the final arc `last`
// from source s to the deficit at arcs[last].to, then unmarks the path nodes
// so the next probe from s can reuse the path up to whatever saturated.
func (g *Graph) augmentStack(s, last int, st *SolveStats) {
	t := g.arcs[last].to
	bottleneck := -g.excess[t]
	if g.excess[s] < bottleneck {
		bottleneck = g.excess[s]
	}
	if c := g.arcs[last].cap; c < bottleneck {
		bottleneck = c
	}
	for _, ai := range g.stack {
		if c := g.arcs[ai].cap; c < bottleneck {
			bottleneck = c
		}
	}
	g.arcs[last].cap -= bottleneck
	g.arcs[last^1].cap += bottleneck
	for _, ai := range g.stack {
		g.arcs[ai].cap -= bottleneck
		g.arcs[ai^1].cap += bottleneck
		g.visited[g.arcs[ai].to] = false
	}
	g.visited[s] = false
	g.excess[s] -= bottleneck
	g.excess[t] += bottleneck
	st.AugmentingPaths++
	if augmentCheck != nil {
		augmentCheck(g, g.pot)
	}
}

// Solve routes the given supplies (supply[v] > 0 means v produces flow,
// < 0 means v consumes) at minimum total cost. Supplies must sum to ~0.
// It returns the total cost of the optimal flow.
//
// Solve is the one-shot interface: it may be called once and consumes the
// network. Callers that re-solve under changing costs or supplies should
// use SetSupply/SetArcCost with Resolve instead.
func (g *Graph) Solve(supply []float64) (float64, error) {
	if g.solved {
		return 0, errors.New("mcmf: Solve may only be called once per network (capacities are consumed)")
	}
	if g.inc {
		return 0, errors.New("mcmf: Solve on a network driven incrementally (use Resolve)")
	}
	if len(supply) != g.n {
		return 0, fmt.Errorf("mcmf: supply length %d != node count %d", len(supply), g.n)
	}
	var total float64
	for _, s := range supply {
		total += s
	}
	if math.Abs(total) > 1e-6 {
		return 0, fmt.Errorf("mcmf: supplies sum to %g, want 0", total)
	}
	g.solved = true // even a failed attempt consumes capacities
	g.ensureIncState()
	for v, s := range supply {
		if d := s - g.supply[v]; d > Eps || d < -Eps {
			g.excess[v] += d
			g.supply[v] = s
			g.pendSup++
		}
	}
	return g.resolve()
}

// augmentCheck, when non-nil, runs after every augmentation with the
// current potentials. It is a test hook (see mcmf_test.go) used to verify
// the successive-shortest-path invariant — nonnegative residual reduced
// costs — at every intermediate state, not just at optimality; it covers
// both the cold (Solve) and warm (Resolve) paths, which share the routing
// loop.
var augmentCheck func(g *Graph, pot []float64)

// Potentials returns the shortest-path distance of every node
// from a virtual root connected to all nodes with zero-cost arcs, computed
// over the current residual network. Before any solve this doubles as the
// initial-potential computation (and negative-cycle check); after a solve
// the residual network has no negative cycles at optimality, so the
// distances are well defined.
//
// For retiming: with constraint arcs u→v of cost b encoding
// r(u) − r(v) ≤ b, setting r(v) = −Potentials()[v] yields an optimal
// feasible retiming (shortest-path inequalities give feasibility; saturated
// arcs' reverse arcs give complementary slackness, hence optimality).
// Because the feasible-potential region of the residual network is the
// optimal dual face — the same for every optimal flow — these distances are
// canonical: a warm-started and a cold solve extract identical labels even
// when their flows differ among ties.
func (g *Graph) Potentials() ([]float64, error) {
	dist := make([]float64, g.n)
	var changed bool
	for iter := 0; iter <= g.n; iter++ {
		changed = false
		for v := 0; v < g.n; v++ {
			for _, ai := range g.head[v] {
				a := g.arcs[ai]
				if a.cap <= Eps {
					continue
				}
				if nd := dist[v] + a.cost; nd < dist[a.to]-costEps {
					dist[a.to] = nd
					changed = true
				}
			}
		}
		if !changed {
			return dist, nil
		}
	}
	return nil, ErrNegativeCycle
}

// pqItem is one Dijkstra work item.
type pqItem struct {
	v    int
	dist float64
}

// pqHeap is a typed slice-based binary min-heap over (dist, v) — the
// interface{}-boxed container/heap was the last per-push allocation on the
// solver's hottest inner loop. The (dist, v) order is total for distinct
// items, so the pop sequence is implementation-independent.
type pqHeap struct {
	items []pqItem
}

func (h *pqHeap) len() int { return len(h.items) }
func (h *pqHeap) reset()   { h.items = h.items[:0] }
func (h *pqHeap) less(i, j int) bool {
	a, b := h.items[i], h.items[j]
	return a.dist < b.dist || (a.dist == b.dist && a.v < b.v)
}

func (h *pqHeap) push(it pqItem) {
	h.items = append(h.items, it)
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

func (h *pqHeap) pop() pqItem {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(h.items) && h.less(l, smallest) {
			smallest = l
		}
		if r < len(h.items) && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return top
		}
		h.items[i], h.items[smallest] = h.items[smallest], h.items[i]
		i = smallest
	}
}
