// Package mcmf implements a minimum-cost flow solver using successive
// shortest paths with node potentials (Bellman–Ford for initial potentials,
// so negative arc costs are supported; Dijkstra on reduced costs thereafter).
//
// It is the workhorse behind (weighted) minimum-area retiming: the LP dual of
// the retiming problem is a transshipment problem on the constraint graph,
// and the optimal retiming labels are recovered from shortest-path potentials
// of the final residual network (see Potentials).
//
// Capacities, costs, and supplies are float64, but callers that need
// guaranteed termination and integral optima should supply integral values
// (the retiming packages scale their real-valued area weights to integers
// before calling in here).
package mcmf

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
)

// Eps is the comparison tolerance for capacities and supplies. It is the
// solver's single numerical knob: every other tolerance derives from it.
const Eps = 1e-9

// costEps is the tolerance for cost-space comparisons (reduced costs,
// shortest-path label relaxations). Kept equal to Eps so the solver has one
// consistent notion of "numerically zero"; retiming callers scale their
// costs to integers, so any drift below this is pure floating-point noise.
const costEps = Eps

// ErrNegativeCycle is returned when the network contains a negative-cost
// cycle of unbounded capacity, making the problem unbounded (for retiming
// this means the constraint system is infeasible).
var ErrNegativeCycle = errors.New("mcmf: negative-cost cycle in network")

// ErrInfeasible is returned when the supplies cannot be routed (not enough
// capacity between sources and sinks).
var ErrInfeasible = errors.New("mcmf: flow infeasible, supplies cannot be routed")

// Inf is a convenience "infinite" capacity.
var Inf = math.Inf(1)

// ArcID identifies an arc added with AddArc.
type ArcID int

// arc is one direction of a residual pair; arcs[i^1] is its reverse.
type arc struct {
	to   int
	cap  float64 // remaining capacity
	cost float64
}

// Graph is a min-cost flow network. The zero value is not usable; call New.
type Graph struct {
	n      int
	arcs   []arc
	head   [][]int // head[v] = indices into arcs
	orig   []float64
	solved bool
}

// New returns a network with n nodes and no arcs.
func New(n int) *Graph {
	if n < 0 {
		panic(fmt.Sprintf("mcmf: negative node count %d", n))
	}
	return &Graph{n: n, head: make([][]int, n)}
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// AddNode appends a node and returns its index.
func (g *Graph) AddNode() int {
	g.head = append(g.head, nil)
	g.n++
	return g.n - 1
}

// AddArc adds a directed arc with the given capacity and per-unit cost and
// returns its identifier. Capacity may be mcmf.Inf.
func (g *Graph) AddArc(from, to int, capacity, cost float64) ArcID {
	if from < 0 || from >= g.n || to < 0 || to >= g.n {
		panic(fmt.Sprintf("mcmf: arc (%d,%d) out of range [0,%d)", from, to, g.n))
	}
	if capacity < 0 {
		panic("mcmf: negative capacity")
	}
	id := ArcID(len(g.arcs))
	g.arcs = append(g.arcs, arc{to: to, cap: capacity, cost: cost})
	g.arcs = append(g.arcs, arc{to: from, cap: 0, cost: -cost})
	g.head[from] = append(g.head[from], int(id))
	g.head[to] = append(g.head[to], int(id)+1)
	g.orig = append(g.orig, capacity)
	return id
}

// Flow returns the flow routed through arc a after Solve.
func (g *Graph) Flow(a ArcID) float64 {
	return g.arcs[int(a)^1].cap
}

// Capacity returns the original capacity arc a was created with.
func (g *Graph) Capacity(a ArcID) float64 {
	return g.orig[int(a)/2]
}

// dijkstra item
type pqItem struct {
	v    int
	dist float64
}

type pq []pqItem

func (h pq) Len() int { return len(h) }
func (h pq) Less(i, j int) bool {
	return h[i].dist < h[j].dist || (h[i].dist == h[j].dist && h[i].v < h[j].v)
}
func (h pq) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *pq) Push(x interface{}) { *h = append(*h, x.(pqItem)) }
func (h *pq) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Solve routes the given supplies (supply[v] > 0 means v produces flow,
// < 0 means v consumes) at minimum total cost. Supplies must sum to ~0.
// It returns the total cost of the optimal flow.
func (g *Graph) Solve(supply []float64) (float64, error) {
	if g.solved {
		return 0, errors.New("mcmf: Solve may only be called once per network (capacities are consumed)")
	}
	if len(supply) != g.n {
		panic(fmt.Sprintf("mcmf: supply length %d != node count %d", len(supply), g.n))
	}
	var total float64
	for _, s := range supply {
		total += s
	}
	if math.Abs(total) > 1e-6 {
		return 0, fmt.Errorf("mcmf: supplies sum to %g, want 0", total)
	}
	g.solved = true // even a failed attempt consumes capacities
	// Internal super source/sink.
	s := g.AddNode()
	t := g.AddNode()
	var want float64
	for v := 0; v < g.n-2; v++ {
		switch {
		case supply[v] > Eps:
			g.AddArc(s, v, supply[v], 0)
			want += supply[v]
		case supply[v] < -Eps:
			g.AddArc(v, t, -supply[v], 0)
		}
	}

	pot, err := g.Potentials()
	if err != nil {
		return 0, err
	}

	dist := make([]float64, g.n)
	prevArc := make([]int, g.n)
	visited := make([]bool, g.n)
	var sent, cost float64
	for sent < want-Eps {
		// Dijkstra with reduced costs from s to t.
		for i := range dist {
			dist[i] = Inf
			visited[i] = false
			prevArc[i] = -1
		}
		dist[s] = 0
		h := &pq{{v: s, dist: 0}}
		for h.Len() > 0 {
			it := heap.Pop(h).(pqItem)
			if visited[it.v] {
				continue
			}
			visited[it.v] = true
			if it.v == t {
				break // sink settled; remaining labels are not needed
			}
			for _, ai := range g.head[it.v] {
				a := g.arcs[ai]
				if a.cap <= Eps || visited[a.to] {
					continue
				}
				rc := a.cost + pot[it.v] - pot[a.to]
				if rc < 0 {
					// Residual reduced costs are nonnegative in exact
					// arithmetic (the successive-shortest-path invariant),
					// so any negative value is floating-point drift; clamp
					// it so Dijkstra's settled-label assumption holds.
					rc = 0
				}
				if nd := dist[it.v] + rc; nd < dist[a.to]-costEps {
					dist[a.to] = nd
					prevArc[a.to] = ai
					heap.Push(h, pqItem{v: a.to, dist: nd})
				}
			}
		}
		if !visited[t] {
			return 0, ErrInfeasible
		}
		// Early-terminated Dijkstra: capping the label update at dist[t]
		// keeps all residual reduced costs nonnegative (Ahuja–Magnanti–
		// Orlin §9.7).
		dt := dist[t]
		for v := 0; v < g.n; v++ {
			if dist[v] < dt {
				pot[v] += dist[v]
			} else {
				pot[v] += dt
			}
		}
		// Find bottleneck along s->t path.
		bottleneck := want - sent
		for v := t; v != s; {
			ai := prevArc[v]
			if g.arcs[ai].cap < bottleneck {
				bottleneck = g.arcs[ai].cap
			}
			v = g.arcs[ai^1].to
		}
		// Augment.
		for v := t; v != s; {
			ai := prevArc[v]
			g.arcs[ai].cap -= bottleneck
			g.arcs[ai^1].cap += bottleneck
			cost += bottleneck * g.arcs[ai].cost
			v = g.arcs[ai^1].to
		}
		sent += bottleneck
		if augmentCheck != nil {
			augmentCheck(g, pot)
		}
	}
	return cost, nil
}

// augmentCheck, when non-nil, runs after every augmentation in Solve with
// the current potentials. It is a test hook (see mcmf_test.go) used to
// verify the successive-shortest-path invariant — nonnegative residual
// reduced costs — at every intermediate state, not just at optimality.
var augmentCheck func(g *Graph, pot []float64)

// Potentials returns the shortest-path distance of every node
// from a virtual root connected to all nodes with zero-cost arcs, computed
// over the current residual network. Before Solve this doubles as the
// initial-potential computation (and negative-cycle check); after Solve the
// residual network has no negative cycles at optimality, so the distances
// are well defined.
//
// For retiming: with constraint arcs u→v of cost b encoding
// r(u) − r(v) ≤ b, setting r(v) = −Potentials()[v] yields an optimal
// feasible retiming (shortest-path inequalities give feasibility; saturated
// arcs' reverse arcs give complementary slackness, hence optimality).
func (g *Graph) Potentials() ([]float64, error) {
	dist := make([]float64, g.n)
	var changed bool
	for iter := 0; iter <= g.n; iter++ {
		changed = false
		for v := 0; v < g.n; v++ {
			for _, ai := range g.head[v] {
				a := g.arcs[ai]
				if a.cap <= Eps {
					continue
				}
				if nd := dist[v] + a.cost; nd < dist[a.to]-costEps {
					dist[a.to] = nd
					changed = true
				}
			}
		}
		if !changed {
			return dist, nil
		}
	}
	return nil, ErrNegativeCycle
}
