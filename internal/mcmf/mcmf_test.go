package mcmf

import (
	"math"
	"math/rand"
	"testing"
)

func TestSimplePath(t *testing.T) {
	// 0 -> 1 -> 2, unit costs; ship 5 units from 0 to 2.
	g := New(3)
	a := g.AddArc(0, 1, 10, 1)
	b := g.AddArc(1, 2, 10, 1)
	cost, err := g.Solve([]float64{5, 0, -5})
	if err != nil {
		t.Fatal(err)
	}
	if cost != 10 {
		t.Fatalf("cost=%g, want 10", cost)
	}
	if g.Flow(a) != 5 || g.Flow(b) != 5 {
		t.Fatalf("flows: %g, %g; want 5, 5", g.Flow(a), g.Flow(b))
	}
}

func TestChoosesCheaperPath(t *testing.T) {
	// Two parallel routes 0->2: direct cost 5, via 1 cost 2+2=4 but cap 3.
	g := New(3)
	direct := g.AddArc(0, 2, 10, 5)
	via1 := g.AddArc(0, 1, 3, 2)
	via2 := g.AddArc(1, 2, 3, 2)
	cost, err := g.Solve([]float64{5, 0, -5})
	if err != nil {
		t.Fatal(err)
	}
	// 3 units at cost 4, 2 at cost 5 -> 22.
	if cost != 22 {
		t.Fatalf("cost=%g, want 22", cost)
	}
	if g.Flow(via1) != 3 || g.Flow(via2) != 3 || g.Flow(direct) != 2 {
		t.Fatalf("flows: via=%g/%g direct=%g", g.Flow(via1), g.Flow(via2), g.Flow(direct))
	}
}

func TestNegativeCostArc(t *testing.T) {
	// Negative arc on the only path; Bellman-Ford potentials must handle it.
	g := New(3)
	g.AddArc(0, 1, 10, -4)
	g.AddArc(1, 2, 10, 1)
	cost, err := g.Solve([]float64{2, 0, -2})
	if err != nil {
		t.Fatal(err)
	}
	if cost != -6 {
		t.Fatalf("cost=%g, want -6", cost)
	}
}

func TestNegativeCycleDetected(t *testing.T) {
	g := New(2)
	g.AddArc(0, 1, Inf, -1)
	g.AddArc(1, 0, Inf, -1)
	if _, err := g.Solve([]float64{0, 0}); err != ErrNegativeCycle {
		t.Fatalf("err=%v, want ErrNegativeCycle", err)
	}
}

func TestInfeasibleSupplies(t *testing.T) {
	// No path from 0 to 1.
	g := New(2)
	if _, err := g.Solve([]float64{1, -1}); err != ErrInfeasible {
		t.Fatalf("err=%v, want ErrInfeasible", err)
	}
}

func TestUnbalancedSuppliesRejected(t *testing.T) {
	g := New(2)
	g.AddArc(0, 1, 10, 1)
	if _, err := g.Solve([]float64{2, -1}); err == nil {
		t.Fatal("expected error for unbalanced supplies")
	}
}

func TestZeroSupplyNoFlow(t *testing.T) {
	g := New(2)
	a := g.AddArc(0, 1, 10, 1)
	cost, err := g.Solve([]float64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if cost != 0 || g.Flow(a) != 0 {
		t.Fatalf("cost=%g flow=%g, want 0,0", cost, g.Flow(a))
	}
}

func TestInfiniteCapacity(t *testing.T) {
	g := New(2)
	a := g.AddArc(0, 1, Inf, 3)
	cost, err := g.Solve([]float64{7, -7})
	if err != nil {
		t.Fatal(err)
	}
	if cost != 21 || g.Flow(a) != 7 {
		t.Fatalf("cost=%g flow=%g", cost, g.Flow(a))
	}
}

func TestMultipleSourcesSinks(t *testing.T) {
	// 0 and 1 supply, 3 and 4 consume through middle node 2.
	g := New(5)
	g.AddArc(0, 2, Inf, 1)
	g.AddArc(1, 2, Inf, 2)
	g.AddArc(2, 3, Inf, 1)
	g.AddArc(2, 4, Inf, 3)
	cost, err := g.Solve([]float64{2, 3, 0, -4, -1})
	if err != nil {
		t.Fatal(err)
	}
	// All 5 units pass node 2: in-cost 2*1+3*2=8, out-cost 4*1+1*3=7.
	if cost != 15 {
		t.Fatalf("cost=%g, want 15", cost)
	}
}

func TestPotentialsFeasibility(t *testing.T) {
	// After solving, potentials must satisfy dist[to] <= dist[from]+cost on
	// every residual arc; in particular on unsaturated forward arcs.
	g := New(4)
	arcs := []struct {
		from, to int
		cap, c   float64
	}{
		{0, 1, 4, 2}, {1, 2, 4, -1}, {0, 2, 2, 5}, {2, 3, 6, 1}, {1, 3, 1, 4},
	}
	var ids []ArcID
	for _, a := range arcs {
		ids = append(ids, g.AddArc(a.from, a.to, a.cap, a.c))
	}
	if _, err := g.Solve([]float64{3, 0, 0, -3}); err != nil {
		t.Fatal(err)
	}
	pot, err := g.Potentials()
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range arcs {
		if g.Flow(ids[i]) < a.cap-Eps { // forward residual arc exists
			if pot[a.to] > pot[a.from]+a.c+1e-6 {
				t.Fatalf("residual arc (%d,%d) violates potential inequality", a.from, a.to)
			}
		}
		if g.Flow(ids[i]) > Eps { // backward residual arc exists
			if pot[a.from] > pot[a.to]-a.c+1e-6 {
				t.Fatalf("backward residual arc (%d,%d) violates potential inequality", a.to, a.from)
			}
		}
	}
}

// TestRandomAgainstBruteForce compares SSP against exhaustive enumeration of
// integral flows on tiny networks.
func TestRandomAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		n := 3 + rng.Intn(3)
		type arcSpec struct {
			from, to int
			cap      int
			cost     float64
		}
		var specs []arcSpec
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == j || rng.Float64() < 0.45 {
					continue
				}
				specs = append(specs, arcSpec{i, j, 1 + rng.Intn(3), float64(rng.Intn(7))})
			}
		}
		amount := 1 + rng.Intn(3)
		src, dst := 0, n-1

		g := New(n)
		for _, s := range specs {
			g.AddArc(s.from, s.to, float64(s.cap), s.cost)
		}
		supply := make([]float64, n)
		supply[src] = float64(amount)
		supply[dst] = -float64(amount)
		got, err := g.Solve(supply)

		// Brute force over integral arc flows via recursion with
		// conservation checking (small sizes only).
		best := math.Inf(1)
		flows := make([]int, len(specs))
		var rec func(k int)
		rec = func(k int) {
			if k == len(specs) {
				// Check conservation.
				for v := 0; v < n; v++ {
					net := 0
					for i, s := range specs {
						if s.from == v {
							net += flows[i]
						}
						if s.to == v {
							net -= flows[i]
						}
					}
					want := 0
					if v == src {
						want = amount
					} else if v == dst {
						want = -amount
					}
					if net != want {
						return
					}
				}
				c := 0.0
				for i, s := range specs {
					c += float64(flows[i]) * s.cost
				}
				if c < best {
					best = c
				}
				return
			}
			for f := 0; f <= specs[k].cap; f++ {
				flows[k] = f
				rec(k + 1)
			}
		}
		if len(specs) <= 12 {
			rec(0)
		} else {
			continue
		}
		if math.IsInf(best, 1) {
			if err == nil {
				t.Fatalf("trial %d: brute force infeasible but solver returned %g", trial, got)
			}
			continue
		}
		if err != nil {
			t.Fatalf("trial %d: solver error %v but brute force found %g", trial, err, best)
		}
		if math.Abs(got-best) > 1e-6 {
			t.Fatalf("trial %d: solver cost %g, brute force %g", trial, got, best)
		}
	}
}

func TestAddNodeAfterConstruction(t *testing.T) {
	g := New(1)
	v := g.AddNode()
	if v != 1 || g.N() != 2 {
		t.Fatalf("AddNode -> %d, N=%d", v, g.N())
	}
	g.AddArc(0, v, 5, 1)
	if _, err := g.Solve([]float64{3, -3}); err != nil {
		t.Fatal(err)
	}
}

// TestResidualReducedCostsNonnegative is the tolerance-unification stress
// test: random networks with near-tied path costs (distinct paths whose
// lengths differ by ~1e-10, below costEps) and Inf-capacity arcs. After
// every augmentation the maintained potentials must keep every residual
// arc's reduced cost above -costEps — the successive-shortest-path
// invariant that the early-terminated Dijkstra label update is supposed to
// preserve. The previous mismatched tolerances (-1e-6 clamp vs -1e-12
// relaxation vs -1e-9 in Potentials) let drift through this check.
func TestResidualReducedCostsNonnegative(t *testing.T) {
	defer func() { augmentCheck = nil }()
	augmentCheck = func(g *Graph, pot []float64) {
		for v := 0; v < g.n; v++ {
			for _, ai := range g.head[v] {
				a := g.arcs[ai]
				if a.cap <= Eps {
					continue
				}
				if rc := a.cost + pot[v] - pot[a.to]; rc < -costEps {
					t.Errorf("residual arc %d->%d has reduced cost %g", v, a.to, rc)
				}
			}
		}
	}
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		n := 4 + rng.Intn(5)
		g := New(n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == j || rng.Float64() < 0.4 {
					continue
				}
				capacity := float64(1 + rng.Intn(4))
				if rng.Float64() < 0.3 {
					capacity = Inf
				}
				// Integral base costs plus sub-costEps jitter: many paths
				// become numerically indistinguishable near-ties.
				cost := float64(rng.Intn(4)) + float64(rng.Intn(3))*1e-10
				g.AddArc(i, j, capacity, cost)
			}
		}
		supply := make([]float64, n)
		amt := float64(1 + rng.Intn(5))
		supply[0], supply[n-1] = amt, -amt
		if _, err := g.Solve(supply); err != nil && err != ErrInfeasible {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if t.Failed() {
			t.Fatalf("trial %d: residual reduced-cost invariant violated", trial)
		}
	}
}

func TestSolveTwiceRejected(t *testing.T) {
	g := New(2)
	g.AddArc(0, 1, 10, 1)
	if _, err := g.Solve([]float64{3, -3}); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Solve([]float64{3, -3}); err == nil {
		t.Fatal("second Solve accepted")
	}
}

func TestResolveWarmReroutesOnCostChange(t *testing.T) {
	// Two parallel routes 0->2; after the cheap one gets expensive, a warm
	// Resolve must drain it and move the flow to the other route.
	g := New(3)
	direct := g.AddArc(0, 2, 10, 5)
	via1 := g.AddArc(0, 1, 10, 1)
	via2 := g.AddArc(1, 2, 10, 1)
	if err := g.SetSupply([]float64{4, 0, -4}); err != nil {
		t.Fatal(err)
	}
	cost, err := g.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if cost != 8 || g.Flow(via1) != 4 || g.Flow(direct) != 0 {
		t.Fatalf("cold: cost=%g via=%g direct=%g", cost, g.Flow(via1), g.Flow(direct))
	}
	if st := g.Stats(); st.Warm || st.AugmentingPaths == 0 {
		t.Fatalf("cold stats: %+v", st)
	}

	g.SetArcCost(via1, 9)
	cost, err = g.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if cost != 20 || g.Flow(direct) != 4 || g.Flow(via1) != 0 || g.Flow(via2) != 0 {
		t.Fatalf("warm: cost=%g direct=%g via=%g/%g", cost, g.Flow(direct), g.Flow(via1), g.Flow(via2))
	}
	st := g.Stats()
	if !st.Warm || st.CostChanged != 1 || st.SupplyChanged != 0 {
		t.Fatalf("warm stats: %+v", st)
	}
}

func TestResolveWarmRoutesSupplyDelta(t *testing.T) {
	// Increasing one endpoint pair's supply in a large-enough network must
	// keep the prior flow and route only the delta, not re-route the base
	// (the network is big enough that 2 changed supplies stay under the
	// adaptive flow-reset threshold).
	const n = 10
	g := New(n)
	for v := 0; v+1 < n; v++ {
		g.AddArc(v, v+1, Inf, 3)
	}
	supply := make([]float64, n)
	supply[0], supply[n-1] = 5, -5
	if err := g.SetSupply(supply); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Resolve(); err != nil {
		t.Fatal(err)
	}
	supply[0], supply[n-1] = 7, -7
	if err := g.SetSupply(supply); err != nil {
		t.Fatal(err)
	}
	cost, err := g.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if want := 7.0 * 3 * (n - 1); cost != want {
		t.Fatalf("cost=%g, want %g", cost, want)
	}
	st := g.Stats()
	if !st.Warm || st.FlowReset || st.SupplyChanged != 2 || st.AugmentingPaths != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestResolveGlobalSupplyChangeResetsFlow(t *testing.T) {
	// When most supplies change, the warm solve drops the old flow (it
	// would only clutter the residual with narrow reverse arcs) but keeps
	// the built network, and must still match a from-scratch solve.
	const n = 6
	specs := [][4]float64{{0, 1, Inf, 0}, {1, 2, Inf, 0}, {2, 3, Inf, 0},
		{3, 4, Inf, 0}, {4, 5, Inf, 0}, {0, 3, Inf, 0}, {2, 5, Inf, 0}}
	costs := []float64{2, 1, 3, 1, 2, 5, 4}
	g := New(n)
	for i, s := range specs {
		g.AddArc(int(s[0]), int(s[1]), s[2], costs[i])
	}
	if err := g.SetSupply([]float64{4, 1, -2, 0, -1, -2}); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Resolve(); err != nil {
		t.Fatal(err)
	}
	supply := []float64{1, 3, -1, 2, -3, -2}
	if err := g.SetSupply(supply); err != nil {
		t.Fatal(err)
	}
	cost, err := g.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	st := g.Stats()
	if !st.Warm || !st.FlowReset || st.Restarted {
		t.Fatalf("stats: %+v", st)
	}
	wantCost, wantPot := coldCopy(t, n, specs, costs, supply)
	if cost != wantCost {
		t.Fatalf("cost=%g, cold=%g", cost, wantCost)
	}
	pot, err := g.Potentials()
	if err != nil {
		t.Fatal(err)
	}
	for v := range pot {
		if pot[v] != wantPot[v] {
			t.Fatalf("pot[%d]=%g, cold=%g", v, pot[v], wantPot[v])
		}
	}
}

func TestResolveUnchangedIsFree(t *testing.T) {
	g := New(3)
	g.AddArc(0, 1, 10, 1)
	g.AddArc(1, 2, 10, 1)
	if err := g.SetSupply([]float64{5, 0, -5}); err != nil {
		t.Fatal(err)
	}
	c1, err := g.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	c2, err := g.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Fatalf("re-resolve changed cost: %g -> %g", c1, c2)
	}
	st := g.Stats()
	if !st.Warm || st.AugmentingPaths != 0 || st.CostChanged != 0 || st.SupplyChanged != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestAddArcAfterResolve(t *testing.T) {
	// A cheaper arc added after the first solve must win on re-solve.
	g := New(2)
	g.AddArc(0, 1, 10, 5)
	if err := g.SetSupply([]float64{3, -3}); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Resolve(); err != nil {
		t.Fatal(err)
	}
	cheap := g.AddArc(0, 1, 10, 1)
	cost, err := g.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if cost != 3 || g.Flow(cheap) != 3 {
		t.Fatalf("cost=%g flow(cheap)=%g, want 3, 3", cost, g.Flow(cheap))
	}
	// The cheap arc plus the loaded expensive arc's reverse form a genuine
	// residual negative cycle, so the engine takes its documented cold
	// fallback rather than a pure warm repair — correctness over speed.
	if st := g.Stats(); st.CostChanged != 1 || !(st.Warm || st.Restarted) {
		t.Fatalf("stats: %+v", st)
	}
}

func TestSetSupplyValidation(t *testing.T) {
	g := New(2)
	g.AddArc(0, 1, 10, 1)
	if err := g.SetSupply([]float64{1}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if err := g.SetSupply([]float64{2, -1}); err == nil {
		t.Fatal("unbalanced supplies accepted")
	}
	if err := g.SetSupply([]float64{1, -1}); err != nil {
		t.Fatal(err)
	}
}

func TestSolveResolveMixingRejected(t *testing.T) {
	g := New(2)
	g.AddArc(0, 1, 10, 1)
	if _, err := g.Solve([]float64{1, -1}); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Resolve(); err == nil {
		t.Fatal("Resolve after Solve accepted")
	}
	if err := g.SetSupply([]float64{1, -1}); err == nil {
		t.Fatal("SetSupply after Solve accepted")
	}

	h := New(2)
	h.AddArc(0, 1, 10, 1)
	if err := h.SetSupply([]float64{1, -1}); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Resolve(); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Solve([]float64{1, -1}); err == nil {
		t.Fatal("Solve after Resolve accepted")
	}
}

// coldCopy rebuilds the same network from scratch with the given costs and
// solves it one-shot, as the pre-incremental engine would.
func coldCopy(t *testing.T, n int, specs [][4]float64, costs, supply []float64) (float64, []float64) {
	t.Helper()
	g := New(n)
	for i, s := range specs {
		g.AddArc(int(s[0]), int(s[1]), s[2], costs[i])
	}
	cost, err := g.Solve(supply)
	if err != nil {
		t.Fatalf("cold solve: %v", err)
	}
	pot, err := g.Potentials()
	if err != nil {
		t.Fatalf("cold potentials: %v", err)
	}
	return cost, pot
}

// TestResolveWarmEqualsColdRandom is the warm/cold equivalence gate at the
// mcmf level: random networks driven through rounds of random cost and
// supply changes must match a from-scratch solve in optimal cost after
// every round, and — because the residual network of any optimal flow spans
// the same dual face — in canonical potentials too. The augmentCheck hook
// keeps the reduced-cost invariant asserted after every augmentation of
// every warm round (the warm-path extension of
// TestResidualReducedCostsNonnegative).
func TestResolveWarmEqualsColdRandom(t *testing.T) {
	defer func() { augmentCheck = nil }()
	augmentCheck = func(g *Graph, pot []float64) {
		for v := 0; v < g.n; v++ {
			for _, ai := range g.head[v] {
				a := g.arcs[ai]
				if a.cap <= Eps {
					continue
				}
				if rc := a.cost + pot[v] - pot[a.to]; rc < -costEps {
					t.Errorf("residual arc %d->%d has reduced cost %g", v, a.to, rc)
				}
			}
		}
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		n := 4 + rng.Intn(5)
		var specs [][4]float64 // from, to, cap (Inf allowed), unused
		var costs []float64
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == j || rng.Float64() < 0.35 {
					continue
				}
				capacity := float64(2 + rng.Intn(5))
				if rng.Float64() < 0.25 {
					capacity = Inf
				}
				specs = append(specs, [4]float64{float64(i), float64(j), capacity, 0})
				costs = append(costs, float64(rng.Intn(6)))
			}
		}
		g := New(n)
		var ids []ArcID
		for i, s := range specs {
			ids = append(ids, g.AddArc(int(s[0]), int(s[1]), s[2], costs[i]))
		}
		supply := make([]float64, n)
		warmOK := true
		for round := 0; round < 5; round++ {
			if round > 0 {
				// Mutate a few costs and shift supplies, keeping balance.
				for k := 0; k < 1+rng.Intn(3) && len(ids) > 0; k++ {
					i := rng.Intn(len(ids))
					costs[i] = float64(rng.Intn(6))
					g.SetArcCost(ids[i], costs[i])
				}
				u, v := rng.Intn(n), rng.Intn(n)
				d := float64(1 + rng.Intn(2))
				supply[u] += d
				supply[v] -= d
			} else {
				supply[0] = float64(1 + rng.Intn(3))
				supply[n-1] = -supply[0]
			}
			if err := g.SetSupply(supply); err != nil {
				t.Fatalf("trial %d round %d: SetSupply: %v", trial, round, err)
			}
			warmCost, err := g.Resolve()
			if err == ErrInfeasible {
				warmOK = false
				break // state undefined after error; stop this trial
			}
			if err != nil {
				t.Fatalf("trial %d round %d: %v", trial, round, err)
			}
			if round > 0 && !g.Stats().Warm && !g.Stats().Restarted {
				t.Fatalf("trial %d round %d: expected warm solve, stats %+v", trial, round, g.Stats())
			}
			coldCost, coldPot := coldCopy(t, n, specs, costs, supply)
			if math.Abs(warmCost-coldCost) > 1e-6 {
				t.Fatalf("trial %d round %d: warm cost %g, cold cost %g", trial, round, warmCost, coldCost)
			}
			warmPot, err := g.Potentials()
			if err != nil {
				t.Fatalf("trial %d round %d: warm potentials: %v", trial, round, err)
			}
			for v := range warmPot {
				if math.Abs(warmPot[v]-coldPot[v]) > 1e-6 {
					t.Fatalf("trial %d round %d: potentials diverge at %d: warm %g cold %g",
						trial, round, v, warmPot[v], coldPot[v])
				}
			}
			if t.Failed() {
				t.Fatalf("trial %d round %d: invariant violated", trial, round)
			}
		}
		_ = warmOK
	}
}

func TestStatsCountsChangedArcsOnce(t *testing.T) {
	g := New(2)
	a := g.AddArc(0, 1, 10, 1)
	if err := g.SetSupply([]float64{1, -1}); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Resolve(); err != nil {
		t.Fatal(err)
	}
	g.SetArcCost(a, 2)
	g.SetArcCost(a, 3) // same arc twice: one dirty entry
	g.SetArcCost(a, 3) // no-op: cost unchanged
	if _, err := g.Resolve(); err != nil {
		t.Fatal(err)
	}
	if st := g.Stats(); st.CostChanged != 1 {
		t.Fatalf("CostChanged=%d, want 1", st.CostChanged)
	}
}
