package mcmf

import (
	"math"
	"math/rand"
	"testing"
)

func TestSimplePath(t *testing.T) {
	// 0 -> 1 -> 2, unit costs; ship 5 units from 0 to 2.
	g := New(3)
	a := g.AddArc(0, 1, 10, 1)
	b := g.AddArc(1, 2, 10, 1)
	cost, err := g.Solve([]float64{5, 0, -5})
	if err != nil {
		t.Fatal(err)
	}
	if cost != 10 {
		t.Fatalf("cost=%g, want 10", cost)
	}
	if g.Flow(a) != 5 || g.Flow(b) != 5 {
		t.Fatalf("flows: %g, %g; want 5, 5", g.Flow(a), g.Flow(b))
	}
}

func TestChoosesCheaperPath(t *testing.T) {
	// Two parallel routes 0->2: direct cost 5, via 1 cost 2+2=4 but cap 3.
	g := New(3)
	direct := g.AddArc(0, 2, 10, 5)
	via1 := g.AddArc(0, 1, 3, 2)
	via2 := g.AddArc(1, 2, 3, 2)
	cost, err := g.Solve([]float64{5, 0, -5})
	if err != nil {
		t.Fatal(err)
	}
	// 3 units at cost 4, 2 at cost 5 -> 22.
	if cost != 22 {
		t.Fatalf("cost=%g, want 22", cost)
	}
	if g.Flow(via1) != 3 || g.Flow(via2) != 3 || g.Flow(direct) != 2 {
		t.Fatalf("flows: via=%g/%g direct=%g", g.Flow(via1), g.Flow(via2), g.Flow(direct))
	}
}

func TestNegativeCostArc(t *testing.T) {
	// Negative arc on the only path; Bellman-Ford potentials must handle it.
	g := New(3)
	g.AddArc(0, 1, 10, -4)
	g.AddArc(1, 2, 10, 1)
	cost, err := g.Solve([]float64{2, 0, -2})
	if err != nil {
		t.Fatal(err)
	}
	if cost != -6 {
		t.Fatalf("cost=%g, want -6", cost)
	}
}

func TestNegativeCycleDetected(t *testing.T) {
	g := New(2)
	g.AddArc(0, 1, Inf, -1)
	g.AddArc(1, 0, Inf, -1)
	if _, err := g.Solve([]float64{0, 0}); err != ErrNegativeCycle {
		t.Fatalf("err=%v, want ErrNegativeCycle", err)
	}
}

func TestInfeasibleSupplies(t *testing.T) {
	// No path from 0 to 1.
	g := New(2)
	if _, err := g.Solve([]float64{1, -1}); err != ErrInfeasible {
		t.Fatalf("err=%v, want ErrInfeasible", err)
	}
}

func TestUnbalancedSuppliesRejected(t *testing.T) {
	g := New(2)
	g.AddArc(0, 1, 10, 1)
	if _, err := g.Solve([]float64{2, -1}); err == nil {
		t.Fatal("expected error for unbalanced supplies")
	}
}

func TestZeroSupplyNoFlow(t *testing.T) {
	g := New(2)
	a := g.AddArc(0, 1, 10, 1)
	cost, err := g.Solve([]float64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if cost != 0 || g.Flow(a) != 0 {
		t.Fatalf("cost=%g flow=%g, want 0,0", cost, g.Flow(a))
	}
}

func TestInfiniteCapacity(t *testing.T) {
	g := New(2)
	a := g.AddArc(0, 1, Inf, 3)
	cost, err := g.Solve([]float64{7, -7})
	if err != nil {
		t.Fatal(err)
	}
	if cost != 21 || g.Flow(a) != 7 {
		t.Fatalf("cost=%g flow=%g", cost, g.Flow(a))
	}
}

func TestMultipleSourcesSinks(t *testing.T) {
	// 0 and 1 supply, 3 and 4 consume through middle node 2.
	g := New(5)
	g.AddArc(0, 2, Inf, 1)
	g.AddArc(1, 2, Inf, 2)
	g.AddArc(2, 3, Inf, 1)
	g.AddArc(2, 4, Inf, 3)
	cost, err := g.Solve([]float64{2, 3, 0, -4, -1})
	if err != nil {
		t.Fatal(err)
	}
	// All 5 units pass node 2: in-cost 2*1+3*2=8, out-cost 4*1+1*3=7.
	if cost != 15 {
		t.Fatalf("cost=%g, want 15", cost)
	}
}

func TestPotentialsFeasibility(t *testing.T) {
	// After solving, potentials must satisfy dist[to] <= dist[from]+cost on
	// every residual arc; in particular on unsaturated forward arcs.
	g := New(4)
	arcs := []struct {
		from, to int
		cap, c   float64
	}{
		{0, 1, 4, 2}, {1, 2, 4, -1}, {0, 2, 2, 5}, {2, 3, 6, 1}, {1, 3, 1, 4},
	}
	var ids []ArcID
	for _, a := range arcs {
		ids = append(ids, g.AddArc(a.from, a.to, a.cap, a.c))
	}
	if _, err := g.Solve([]float64{3, 0, 0, -3}); err != nil {
		t.Fatal(err)
	}
	pot, err := g.Potentials()
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range arcs {
		if g.Flow(ids[i]) < a.cap-Eps { // forward residual arc exists
			if pot[a.to] > pot[a.from]+a.c+1e-6 {
				t.Fatalf("residual arc (%d,%d) violates potential inequality", a.from, a.to)
			}
		}
		if g.Flow(ids[i]) > Eps { // backward residual arc exists
			if pot[a.from] > pot[a.to]-a.c+1e-6 {
				t.Fatalf("backward residual arc (%d,%d) violates potential inequality", a.to, a.from)
			}
		}
	}
}

// TestRandomAgainstBruteForce compares SSP against exhaustive enumeration of
// integral flows on tiny networks.
func TestRandomAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		n := 3 + rng.Intn(3)
		type arcSpec struct {
			from, to int
			cap      int
			cost     float64
		}
		var specs []arcSpec
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == j || rng.Float64() < 0.45 {
					continue
				}
				specs = append(specs, arcSpec{i, j, 1 + rng.Intn(3), float64(rng.Intn(7))})
			}
		}
		amount := 1 + rng.Intn(3)
		src, dst := 0, n-1

		g := New(n)
		for _, s := range specs {
			g.AddArc(s.from, s.to, float64(s.cap), s.cost)
		}
		supply := make([]float64, n)
		supply[src] = float64(amount)
		supply[dst] = -float64(amount)
		got, err := g.Solve(supply)

		// Brute force over integral arc flows via recursion with
		// conservation checking (small sizes only).
		best := math.Inf(1)
		flows := make([]int, len(specs))
		var rec func(k int)
		rec = func(k int) {
			if k == len(specs) {
				// Check conservation.
				for v := 0; v < n; v++ {
					net := 0
					for i, s := range specs {
						if s.from == v {
							net += flows[i]
						}
						if s.to == v {
							net -= flows[i]
						}
					}
					want := 0
					if v == src {
						want = amount
					} else if v == dst {
						want = -amount
					}
					if net != want {
						return
					}
				}
				c := 0.0
				for i, s := range specs {
					c += float64(flows[i]) * s.cost
				}
				if c < best {
					best = c
				}
				return
			}
			for f := 0; f <= specs[k].cap; f++ {
				flows[k] = f
				rec(k + 1)
			}
		}
		if len(specs) <= 12 {
			rec(0)
		} else {
			continue
		}
		if math.IsInf(best, 1) {
			if err == nil {
				t.Fatalf("trial %d: brute force infeasible but solver returned %g", trial, got)
			}
			continue
		}
		if err != nil {
			t.Fatalf("trial %d: solver error %v but brute force found %g", trial, err, best)
		}
		if math.Abs(got-best) > 1e-6 {
			t.Fatalf("trial %d: solver cost %g, brute force %g", trial, got, best)
		}
	}
}

func TestAddNodeAfterConstruction(t *testing.T) {
	g := New(1)
	v := g.AddNode()
	if v != 1 || g.N() != 2 {
		t.Fatalf("AddNode -> %d, N=%d", v, g.N())
	}
	g.AddArc(0, v, 5, 1)
	if _, err := g.Solve([]float64{3, -3}); err != nil {
		t.Fatal(err)
	}
}

// TestResidualReducedCostsNonnegative is the tolerance-unification stress
// test: random networks with near-tied path costs (distinct paths whose
// lengths differ by ~1e-10, below costEps) and Inf-capacity arcs. After
// every augmentation the maintained potentials must keep every residual
// arc's reduced cost above -costEps — the successive-shortest-path
// invariant that the early-terminated Dijkstra label update is supposed to
// preserve. The previous mismatched tolerances (-1e-6 clamp vs -1e-12
// relaxation vs -1e-9 in Potentials) let drift through this check.
func TestResidualReducedCostsNonnegative(t *testing.T) {
	defer func() { augmentCheck = nil }()
	augmentCheck = func(g *Graph, pot []float64) {
		for v := 0; v < g.n; v++ {
			for _, ai := range g.head[v] {
				a := g.arcs[ai]
				if a.cap <= Eps {
					continue
				}
				if rc := a.cost + pot[v] - pot[a.to]; rc < -costEps {
					t.Errorf("residual arc %d->%d has reduced cost %g", v, a.to, rc)
				}
			}
		}
	}
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		n := 4 + rng.Intn(5)
		g := New(n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == j || rng.Float64() < 0.4 {
					continue
				}
				capacity := float64(1 + rng.Intn(4))
				if rng.Float64() < 0.3 {
					capacity = Inf
				}
				// Integral base costs plus sub-costEps jitter: many paths
				// become numerically indistinguishable near-ties.
				cost := float64(rng.Intn(4)) + float64(rng.Intn(3))*1e-10
				g.AddArc(i, j, capacity, cost)
			}
		}
		supply := make([]float64, n)
		amt := float64(1 + rng.Intn(5))
		supply[0], supply[n-1] = amt, -amt
		if _, err := g.Solve(supply); err != nil && err != ErrInfeasible {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if t.Failed() {
			t.Fatalf("trial %d: residual reduced-cost invariant violated", trial)
		}
	}
}

func TestSolveTwiceRejected(t *testing.T) {
	g := New(2)
	g.AddArc(0, 1, 10, 1)
	if _, err := g.Solve([]float64{3, -3}); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Solve([]float64{3, -3}); err == nil {
		t.Fatal("second Solve accepted")
	}
}
