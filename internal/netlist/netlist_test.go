package netlist

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

// buildSmall returns: inputs a,b; g1=AND(a,b); f1=DFF(g1); g2=OR(f1,a);
// output g2.
func buildSmall(t *testing.T) *Netlist {
	t.Helper()
	n := New("small")
	a, err := n.AddInput("a")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := n.AddInput("b")
	g1, err := n.AddGate("g1", "AND", a, b)
	if err != nil {
		t.Fatal(err)
	}
	f1, err := n.AddDFF("f1", g1)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := n.AddGate("g2", "OR", f1, a)
	if err != nil {
		t.Fatal(err)
	}
	n.MarkOutput(g2)
	return n
}

func TestBuildAndStats(t *testing.T) {
	n := buildSmall(t)
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	s := n.Stats()
	if s.Inputs != 2 || s.Gates != 2 || s.DFFs != 1 || s.Outputs != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.MaxFanin != 2 {
		t.Fatalf("MaxFanin=%d", s.MaxFanin)
	}
}

func TestAssignUniform(t *testing.T) {
	n := buildSmall(t)
	n.AssignUniform(2.5, 4)
	for _, node := range n.Nodes {
		switch node.Kind {
		case KindGate:
			if node.Delay != 2.5 || node.Area != 4 {
				t.Fatalf("gate %q not assigned: %+v", node.Name, node)
			}
		default:
			if node.Delay != 0 {
				t.Fatalf("non-gate %q has delay", node.Name)
			}
		}
	}
	s := n.Stats()
	if s.TotalGateArea != 8 || s.TotalGateDelay != 5 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestDuplicateNameRejected(t *testing.T) {
	n := New("dup")
	if _, err := n.AddInput("x"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.AddInput("x"); err == nil {
		t.Fatal("duplicate input accepted")
	}
	if _, err := n.AddGate("x", "AND", 0); err == nil {
		t.Fatal("duplicate gate accepted")
	}
}

func TestLookupAndAccessors(t *testing.T) {
	n := buildSmall(t)
	id, ok := n.Lookup("g1")
	if !ok || n.Node(id).Op != "AND" {
		t.Fatalf("Lookup failed: %v %v", id, ok)
	}
	if _, ok := n.Lookup("nosuch"); ok {
		t.Fatal("phantom lookup")
	}
	if got := len(n.InputIDs()); got != 2 {
		t.Fatalf("inputs %d", got)
	}
	if got := len(n.GateIDs()); got != 2 {
		t.Fatalf("gates %d", got)
	}
	if got := len(n.DFFIDs()); got != 1 {
		t.Fatalf("dffs %d", got)
	}
	names := n.SortedNames()
	if len(names) != 5 || names[0] != "a" {
		t.Fatalf("names %v", names)
	}
}

func TestFanouts(t *testing.T) {
	n := buildSmall(t)
	fo := n.Fanouts()
	a, _ := n.Lookup("a")
	if len(fo[a]) != 2 { // feeds g1 and g2
		t.Fatalf("fanout(a)=%v", fo[a])
	}
	g2, _ := n.Lookup("g2")
	if len(fo[g2]) != 0 {
		t.Fatalf("fanout(g2)=%v", fo[g2])
	}
}

func TestValidateCatchesCombinationalCycle(t *testing.T) {
	n := New("cyc")
	a, _ := n.AddInput("a")
	// Build g1 -> g2 -> g1 cycle by post-editing fanins (API prevents
	// forward refs, so we mutate directly, as a malicious caller could).
	g1, _ := n.AddGate("g1", "AND", a)
	g2, _ := n.AddGate("g2", "AND", g1)
	n.Nodes[g1].Fanin = append(n.Nodes[g1].Fanin, g2)
	if err := n.Validate(); err == nil || !strings.Contains(err.Error(), "combinational cycle") {
		t.Fatalf("err = %v", err)
	}
}

func TestValidateAllowsSequentialCycle(t *testing.T) {
	n := New("seqcyc")
	a, _ := n.AddInput("a")
	g1, _ := n.AddGate("g1", "AND", a) // placeholder fanin, patched below
	f1, _ := n.AddDFF("f1", g1)
	g2, _ := n.AddGate("g2", "OR", f1)
	n.Nodes[g1].Fanin = []NodeID{a, g2} // cycle g1 -> f1 -> g2 -> g1 crosses DFF
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadNodes(t *testing.T) {
	n := buildSmall(t)
	n.Nodes[0].Fanin = []NodeID{1} // input with fanin
	if err := n.Validate(); err == nil {
		t.Fatal("input with fanin accepted")
	}

	n = buildSmall(t)
	n.Nodes[3].Fanin = nil // DFF without fanin
	if err := n.Validate(); err == nil {
		t.Fatal("DFF without fanin accepted")
	}

	n = buildSmall(t)
	n.Nodes[2].Delay = -1
	if err := n.Validate(); err == nil {
		t.Fatal("negative delay accepted")
	}

	n = buildSmall(t)
	n.Outputs = []NodeID{99}
	if err := n.Validate(); err == nil {
		t.Fatal("out-of-range output accepted")
	}
}

func TestCollapseSmall(t *testing.T) {
	n := buildSmall(t)
	c, err := n.Collapse()
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Units) != 4 { // a, b, g1, g2
		t.Fatalf("units = %d", len(c.Units))
	}
	// Expect edges: a->g1 (w0), b->g1 (w0), g1->g2 (w1), a->g2 (w0).
	type key struct {
		f, t NodeID
		w    int
	}
	got := map[key]int{}
	for _, e := range c.Edges {
		got[key{e.From, e.To, e.W}]++
	}
	a, _ := n.Lookup("a")
	b, _ := n.Lookup("b")
	g1, _ := n.Lookup("g1")
	g2, _ := n.Lookup("g2")
	for _, want := range []key{{a, g1, 0}, {b, g1, 0}, {g1, g2, 1}, {a, g2, 0}} {
		if got[want] != 1 {
			t.Fatalf("missing edge %+v in %v", want, got)
		}
	}
	if len(c.OutputUnits) != 1 || c.OutputUnits[0].Driver != g2 || c.OutputUnits[0].W != 0 {
		t.Fatalf("outputs = %+v", c.OutputUnits)
	}
}

func TestCollapseDFFChain(t *testing.T) {
	n := New("chain")
	a, _ := n.AddInput("a")
	f1, _ := n.AddDFF("f1", a)
	f2, _ := n.AddDFF("f2", f1)
	f3, _ := n.AddDFF("f3", f2)
	g, _ := n.AddGate("g", "BUF", f3)
	n.MarkOutput(g)
	c, err := n.Collapse()
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Edges) != 1 || c.Edges[0].From != a || c.Edges[0].To != g || c.Edges[0].W != 3 {
		t.Fatalf("edges = %+v", c.Edges)
	}
}

func TestCollapseOutputThroughDFF(t *testing.T) {
	n := New("outdff")
	a, _ := n.AddInput("a")
	g, _ := n.AddGate("g", "NOT", a)
	f, _ := n.AddDFF("f", g)
	n.MarkOutput(f)
	c, err := n.Collapse()
	if err != nil {
		t.Fatal(err)
	}
	if len(c.OutputUnits) != 1 || c.OutputUnits[0].Driver != g || c.OutputUnits[0].W != 1 {
		t.Fatalf("outputs = %+v", c.OutputUnits)
	}
}

func TestCollapseDFFOnlyCycleRejected(t *testing.T) {
	n := New("ffloop")
	a, _ := n.AddInput("a")
	f1, _ := n.AddDFF("f1", a) // patched into a loop below
	f2, _ := n.AddDFF("f2", f1)
	n.Nodes[f1].Fanin = []NodeID{f2}
	g, _ := n.AddGate("g", "BUF", f1)
	n.MarkOutput(g)
	if _, err := n.Collapse(); err == nil {
		t.Fatal("DFF-only cycle accepted")
	}
}

func TestMarkOutputIdempotent(t *testing.T) {
	n := buildSmall(t)
	g2, _ := n.Lookup("g2")
	n.MarkOutput(g2)
	n.MarkOutput(g2)
	if len(n.Outputs) != 1 {
		t.Fatalf("outputs = %v", n.Outputs)
	}
}

const sampleBench = `
# A small sample circuit
INPUT(G0)
INPUT(G1)
OUTPUT(G5)

G2 = DFF(G5)
G3 = NAND(G0, G2)
G4 = NOT(G1)
G5 = AND(G3, G4)
`

func TestParseBench(t *testing.T) {
	n, err := ParseBench("sample", strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	s := n.Stats()
	if s.Inputs != 2 || s.Gates != 3 || s.DFFs != 1 || s.Outputs != 1 {
		t.Fatalf("stats = %+v", s)
	}
	// Forward reference: G2 = DFF(G5) defined before G5.
	g2, _ := n.Lookup("G2")
	g5, _ := n.Lookup("G5")
	if n.Node(g2).Fanin[0] != g5 {
		t.Fatalf("forward reference not resolved")
	}
}

func TestParseBenchErrors(t *testing.T) {
	cases := []struct {
		name, in, wantSub string
	}{
		{"garbage", "hello world", "unrecognized"},
		{"badparen", "INPUT G0", "malformed"},
		{"emptysig", "INPUT()", "empty signal"},
		{"badop", "G1 = FROB(G0)", "unsupported gate"},
		{"dfffanins", "INPUT(a)\nINPUT(b)\nG1 = DFF(a, b)", "exactly one fanin"},
		{"undefined", "INPUT(a)\nOUTPUT(zz)\nG1 = AND(a)", "undefined signal"},
		{"undeffanin", "G1 = AND(nosuch)", "undefined signal"},
		{"dupsignal", "INPUT(a)\nINPUT(a)", "already defined"},
		{"emptyfanin", "INPUT(a)\nG1 = AND(a,)", "empty fanin"},
	}
	for _, tc := range cases {
		_, err := ParseBench(tc.name, strings.NewReader(tc.in))
		if err == nil || !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.wantSub)
		}
	}
}

func TestBenchRoundTrip(t *testing.T) {
	n, err := ParseBench("sample", strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteBench(&buf, n); err != nil {
		t.Fatal(err)
	}
	n2, err := ParseBench("sample2", strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("re-parse failed: %v\n%s", err, buf.String())
	}
	s1, s2 := n.Stats(), n2.Stats()
	if s1 != s2 {
		t.Fatalf("round trip changed stats: %+v vs %+v", s1, s2)
	}
	// Same connectivity by name.
	for _, node := range n.Nodes {
		id2, ok := n2.Lookup(node.Name)
		if !ok {
			t.Fatalf("node %q lost", node.Name)
		}
		n2node := n2.Node(id2)
		if n2node.Kind != node.Kind || n2node.Op != node.Op || len(n2node.Fanin) != len(node.Fanin) {
			t.Fatalf("node %q changed: %+v vs %+v", node.Name, node, n2node)
		}
		for i, f := range node.Fanin {
			if n2.Node(n2node.Fanin[i]).Name != n.Node(f).Name {
				t.Fatalf("node %q fanin %d changed", node.Name, i)
			}
		}
	}
}

func TestParseBenchBuffAlias(t *testing.T) {
	n, err := ParseBench("buff", strings.NewReader("INPUT(a)\nOUTPUT(g)\ng = BUFF(a)\n"))
	if err != nil {
		t.Fatal(err)
	}
	g, _ := n.Lookup("g")
	if n.Node(g).Op != "BUF" {
		t.Fatalf("op = %q", n.Node(g).Op)
	}
}

func TestParseBenchCRLFAndWhitespace(t *testing.T) {
	in := "INPUT(a)\r\n  OUTPUT( g )\r\n\r\n# comment\r\n g = NOT( a )\r\n"
	n, err := ParseBench("crlf", strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := n.Lookup("g"); !ok {
		t.Fatal("g missing")
	}
	if len(n.Outputs) != 1 {
		t.Fatalf("outputs %v", n.Outputs)
	}
}

func TestParseBenchCaseInsensitiveKeywords(t *testing.T) {
	in := "input(a)\noutput(g)\ng = nand(a, a2)\ninput(a2)\n"
	n, err := ParseBench("lc", strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	g, _ := n.Lookup("g")
	if n.Node(g).Op != "NAND" {
		t.Fatalf("op %q", n.Node(g).Op)
	}
}

func TestParseBenchLargeFanin(t *testing.T) {
	in := "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nINPUT(e)\nOUTPUT(g)\ng = AND(a,b,c,d,e)\n"
	n, err := ParseBench("wide", strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if n.Stats().MaxFanin != 5 {
		t.Fatalf("fanin %d", n.Stats().MaxFanin)
	}
}

// TestParseBenchNeverPanics feeds random garbage to the parser; it must
// return an error or a valid netlist, never panic.
func TestParseBenchNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	alphabet := []byte("INPUTOUTDFAND()=,# \n\tabcxyz0123")
	for trial := 0; trial < 300; trial++ {
		n := rng.Intn(200)
		buf := make([]byte, n)
		for i := range buf {
			buf[i] = alphabet[rng.Intn(len(alphabet))]
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d panicked on %q: %v", trial, buf, r)
				}
			}()
			nl, err := ParseBench("fuzz", bytes.NewReader(buf))
			if err == nil {
				// Whatever parses must be structurally consistent.
				for _, node := range nl.Nodes {
					for _, f := range node.Fanin {
						if f < 0 || int(f) >= nl.N() {
							t.Fatalf("trial %d: dangling fanin", trial)
						}
					}
				}
			}
		}()
	}
}
