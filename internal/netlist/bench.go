package netlist

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Supported gate functions in .bench files, upper-cased.
var benchOps = map[string]bool{
	"AND": true, "NAND": true, "OR": true, "NOR": true,
	"XOR": true, "XNOR": true, "NOT": true, "BUF": true, "BUFF": true,
}

// ParseBench reads an ISCAS89 ".bench" description:
//
//	# comment
//	INPUT(g0)
//	OUTPUT(g5)
//	g3 = DFF(g0)
//	g5 = NAND(g3, g1)
//
// Signals may be referenced before definition (two-pass resolution). Gate
// delays and areas are left zero; callers assign them afterwards (for
// example with AssignUniform or a technology-driven rule).
func ParseBench(name string, r io.Reader) (*Netlist, error) {
	type protoGate struct {
		name   string
		op     string
		fanins []string
		line   int
	}
	var (
		inputs     []string
		outputs    []string
		gates      []protoGate
		sc         = bufio.NewScanner(r)
		lineNo     int
		seenSignal = map[string]int{} // name -> defining line
	)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		up := strings.ToUpper(line)
		switch {
		case strings.HasPrefix(up, "INPUT"):
			sig, err := parseParen(line)
			if err != nil {
				return nil, fmt.Errorf("bench %s:%d: %v", name, lineNo, err)
			}
			if prev, dup := seenSignal[sig]; dup {
				return nil, fmt.Errorf("bench %s:%d: signal %q already defined at line %d", name, lineNo, sig, prev)
			}
			seenSignal[sig] = lineNo
			inputs = append(inputs, sig)
		case strings.HasPrefix(up, "OUTPUT"):
			sig, err := parseParen(line)
			if err != nil {
				return nil, fmt.Errorf("bench %s:%d: %v", name, lineNo, err)
			}
			outputs = append(outputs, sig)
		default:
			eq := strings.Index(line, "=")
			if eq < 0 {
				return nil, fmt.Errorf("bench %s:%d: unrecognized line %q", name, lineNo, line)
			}
			lhs := strings.TrimSpace(line[:eq])
			rhs := strings.TrimSpace(line[eq+1:])
			open := strings.Index(rhs, "(")
			close := strings.LastIndex(rhs, ")")
			if lhs == "" || open <= 0 || close < open {
				return nil, fmt.Errorf("bench %s:%d: malformed assignment %q", name, lineNo, line)
			}
			op := strings.ToUpper(strings.TrimSpace(rhs[:open]))
			var fanins []string
			for _, f := range strings.Split(rhs[open+1:close], ",") {
				f = strings.TrimSpace(f)
				if f == "" {
					return nil, fmt.Errorf("bench %s:%d: empty fanin in %q", name, lineNo, line)
				}
				fanins = append(fanins, f)
			}
			if op != "DFF" && !benchOps[op] {
				return nil, fmt.Errorf("bench %s:%d: unsupported gate function %q", name, lineNo, op)
			}
			if op == "DFF" && len(fanins) != 1 {
				return nil, fmt.Errorf("bench %s:%d: DFF %q needs exactly one fanin", name, lineNo, lhs)
			}
			if prev, dup := seenSignal[lhs]; dup {
				return nil, fmt.Errorf("bench %s:%d: signal %q already defined at line %d", name, lineNo, lhs, prev)
			}
			seenSignal[lhs] = lineNo
			gates = append(gates, protoGate{name: lhs, op: op, fanins: fanins, line: lineNo})
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("bench %s: %v", name, err)
	}

	// Build: inputs first, then gates/DFFs in an order that respects
	// definition dependencies (topological over defined-before-use; .bench
	// allows forward references, so order by dependency, with DFFs breaking
	// cycles).
	nl := New(name)
	for _, in := range inputs {
		if _, err := nl.AddInput(in); err != nil {
			return nil, fmt.Errorf("bench %s: %v", name, err)
		}
	}
	// Resolve in passes: a gate can be added once all fanins exist; DFFs can
	// always be added via placeholder technique. Simpler: create all nodes
	// first as placeholders, then fill fanins. We do that by sorting gates
	// so DFFs and gates get IDs, using a two-phase insert.
	idByName := make(map[string]NodeID, len(inputs)+len(gates))
	for i, in := range inputs {
		idByName[in] = NodeID(i)
	}
	base := len(inputs)
	for i, g := range gates {
		idByName[g.name] = NodeID(base + i)
	}
	for _, g := range gates {
		var fan []NodeID
		for _, f := range g.fanins {
			id, ok := idByName[f]
			if !ok {
				return nil, fmt.Errorf("bench %s:%d: %q references undefined signal %q", name, g.line, g.name, f)
			}
			fan = append(fan, id)
		}
		node := Node{Name: g.name, Fanin: fan}
		if g.op == "DFF" {
			node.Kind = KindDFF
		} else {
			node.Kind = KindGate
			op := g.op
			if op == "BUFF" {
				op = "BUF"
			}
			node.Op = op
		}
		if _, err := nl.addUnchecked(node); err != nil {
			return nil, fmt.Errorf("bench %s:%d: %v", name, g.line, err)
		}
	}
	for _, o := range outputs {
		id, ok := idByName[o]
		if !ok {
			return nil, fmt.Errorf("bench %s: OUTPUT references undefined signal %q", name, o)
		}
		nl.MarkOutput(id)
	}
	return nl, nil
}

// addUnchecked inserts a node whose fanin IDs may point forward (not yet
// appended); used by the parser, which has pre-assigned all IDs.
func (n *Netlist) addUnchecked(node Node) (NodeID, error) {
	if node.Name == "" {
		return 0, fmt.Errorf("netlist: empty node name")
	}
	if _, dup := n.byName[node.Name]; dup {
		return 0, fmt.Errorf("netlist: duplicate node %q", node.Name)
	}
	id := NodeID(len(n.Nodes))
	n.Nodes = append(n.Nodes, node)
	n.byName[node.Name] = id
	return id, nil
}

func parseParen(line string) (string, error) {
	open := strings.Index(line, "(")
	close := strings.LastIndex(line, ")")
	if open < 0 || close < open {
		return "", fmt.Errorf("malformed declaration %q", line)
	}
	sig := strings.TrimSpace(line[open+1 : close])
	if sig == "" {
		return "", fmt.Errorf("empty signal name in %q", line)
	}
	return sig, nil
}

// WriteBench emits the netlist in ISCAS89 .bench format. Output is
// deterministic: declarations appear in node-ID order.
func WriteBench(w io.Writer, n *Netlist) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# %s (%d nodes)\n", n.Name, n.N())
	for _, node := range n.Nodes {
		if node.Kind == KindInput {
			fmt.Fprintf(bw, "INPUT(%s)\n", node.Name)
		}
	}
	outs := append([]NodeID(nil), n.Outputs...)
	sort.Slice(outs, func(i, j int) bool { return outs[i] < outs[j] })
	for _, o := range outs {
		fmt.Fprintf(bw, "OUTPUT(%s)\n", n.Nodes[o].Name)
	}
	for _, node := range n.Nodes {
		switch node.Kind {
		case KindDFF:
			fmt.Fprintf(bw, "%s = DFF(%s)\n", node.Name, n.Nodes[node.Fanin[0]].Name)
		case KindGate:
			names := make([]string, len(node.Fanin))
			for i, f := range node.Fanin {
				names[i] = n.Nodes[f].Name
			}
			fmt.Fprintf(bw, "%s = %s(%s)\n", node.Name, node.Op, strings.Join(names, ", "))
		}
	}
	return bw.Flush()
}
