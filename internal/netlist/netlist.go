// Package netlist models gate-level / RT-level sequential netlists in the
// style of the ISCAS89 benchmark suite: primary inputs, combinational gates,
// and D flip-flops, plus a set of observed primary outputs.
//
// Following the paper, gates are treated as RT-level functional units with
// caller-assigned delay and area. The package provides an ISCAS89 ".bench"
// parser and writer, structural validation (no combinational cycles, no
// dangling fanins), statistics, and the DFF-collapsing transformation that
// turns a netlist into a retiming graph (combinational units as vertices,
// flip-flop counts as edge weights).
package netlist

import (
	"fmt"
	"sort"
)

// NodeID indexes a node within a Netlist.
type NodeID int

// Kind discriminates node types.
type Kind uint8

const (
	// KindInput is a primary input.
	KindInput Kind = iota
	// KindGate is a combinational functional unit.
	KindGate
	// KindDFF is an edge-triggered D flip-flop.
	KindDFF
)

func (k Kind) String() string {
	switch k {
	case KindInput:
		return "input"
	case KindGate:
		return "gate"
	case KindDFF:
		return "dff"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Node is a signal-producing element: a primary input, a gate, or a DFF.
type Node struct {
	Name  string
	Kind  Kind
	Op    string // gate function (AND, NAND, OR, NOR, XOR, XNOR, NOT, BUF); empty for inputs and DFFs
	Fanin []NodeID
	Delay float64 // propagation delay of the unit (inputs and DFFs: 0)
	Area  float64 // layout area of the unit
}

// Netlist is a named sequential circuit.
type Netlist struct {
	Name    string
	Nodes   []Node
	Outputs []NodeID // primary outputs (refer to existing nodes)

	byName map[string]NodeID
}

// New returns an empty netlist.
func New(name string) *Netlist {
	return &Netlist{Name: name, byName: make(map[string]NodeID)}
}

// N returns the number of nodes.
func (n *Netlist) N() int { return len(n.Nodes) }

// Node returns the node with the given ID.
func (n *Netlist) Node(id NodeID) *Node { return &n.Nodes[id] }

// Lookup returns the node named s, if any.
func (n *Netlist) Lookup(s string) (NodeID, bool) {
	id, ok := n.byName[s]
	return id, ok
}

// AddInput appends a primary input node.
func (n *Netlist) AddInput(name string) (NodeID, error) {
	return n.add(Node{Name: name, Kind: KindInput})
}

// AddGate appends a combinational gate with the given function and fanins.
func (n *Netlist) AddGate(name, op string, fanin ...NodeID) (NodeID, error) {
	return n.add(Node{Name: name, Kind: KindGate, Op: op, Fanin: fanin})
}

// AddDFF appends a D flip-flop fed by d.
func (n *Netlist) AddDFF(name string, d NodeID) (NodeID, error) {
	return n.add(Node{Name: name, Kind: KindDFF, Fanin: []NodeID{d}})
}

// MarkOutput declares an existing node as a primary output.
func (n *Netlist) MarkOutput(id NodeID) {
	for _, o := range n.Outputs {
		if o == id {
			return
		}
	}
	n.Outputs = append(n.Outputs, id)
}

func (n *Netlist) add(node Node) (NodeID, error) {
	if node.Name == "" {
		return 0, fmt.Errorf("netlist: empty node name")
	}
	if _, dup := n.byName[node.Name]; dup {
		return 0, fmt.Errorf("netlist: duplicate node %q", node.Name)
	}
	for _, f := range node.Fanin {
		if f < 0 || int(f) >= len(n.Nodes) {
			return 0, fmt.Errorf("netlist: node %q references undefined fanin %d", node.Name, f)
		}
	}
	id := NodeID(len(n.Nodes))
	n.Nodes = append(n.Nodes, node)
	n.byName[node.Name] = id
	return id, nil
}

// Fanouts returns, for every node, the IDs of nodes it feeds. Output marking
// does not contribute fanout.
func (n *Netlist) Fanouts() [][]NodeID {
	fo := make([][]NodeID, len(n.Nodes))
	for id, node := range n.Nodes {
		for _, f := range node.Fanin {
			fo[f] = append(fo[f], NodeID(id))
		}
	}
	return fo
}

// Stats summarizes a netlist.
type Stats struct {
	Inputs, Outputs, Gates, DFFs int
	MaxFanin                     int
	TotalGateArea                float64
	TotalGateDelay               float64
}

// Stats computes summary statistics.
func (n *Netlist) Stats() Stats {
	var s Stats
	s.Outputs = len(n.Outputs)
	for _, node := range n.Nodes {
		switch node.Kind {
		case KindInput:
			s.Inputs++
		case KindGate:
			s.Gates++
			s.TotalGateArea += node.Area
			s.TotalGateDelay += node.Delay
		case KindDFF:
			s.DFFs++
		}
		if len(node.Fanin) > s.MaxFanin {
			s.MaxFanin = len(node.Fanin)
		}
	}
	return s
}

// Validate checks structural well-formedness:
//   - every fanin reference is in range;
//   - inputs have no fanins, DFFs exactly one, gates at least one;
//   - output references are in range;
//   - no combinational cycle (every feedback loop crosses a DFF).
func (n *Netlist) Validate() error {
	for id, node := range n.Nodes {
		switch node.Kind {
		case KindInput:
			if len(node.Fanin) != 0 {
				return fmt.Errorf("netlist %s: input %q has fanins", n.Name, node.Name)
			}
		case KindDFF:
			if len(node.Fanin) != 1 {
				return fmt.Errorf("netlist %s: dff %q has %d fanins, want 1", n.Name, node.Name, len(node.Fanin))
			}
		case KindGate:
			if len(node.Fanin) == 0 {
				return fmt.Errorf("netlist %s: gate %q has no fanins", n.Name, node.Name)
			}
			if (node.Op == "NOT" || node.Op == "BUF") && len(node.Fanin) != 1 {
				return fmt.Errorf("netlist %s: unary gate %q has %d fanins", n.Name, node.Name, len(node.Fanin))
			}
		default:
			return fmt.Errorf("netlist %s: node %q has invalid kind %d", n.Name, node.Name, node.Kind)
		}
		for _, f := range node.Fanin {
			if f < 0 || int(f) >= len(n.Nodes) {
				return fmt.Errorf("netlist %s: node %q fanin out of range", n.Name, node.Name)
			}
		}
		if node.Delay < 0 {
			return fmt.Errorf("netlist %s: node %q has negative delay", n.Name, node.Name)
		}
		if node.Area < 0 {
			return fmt.Errorf("netlist %s: node %q has negative area", n.Name, node.Name)
		}
		_ = id
	}
	for _, o := range n.Outputs {
		if o < 0 || int(o) >= len(n.Nodes) {
			return fmt.Errorf("netlist %s: output reference out of range", n.Name)
		}
	}
	if cyc := n.combinationalCycle(); cyc != nil {
		return fmt.Errorf("netlist %s: combinational cycle through %q", n.Name, n.Nodes[cyc[0]].Name)
	}
	return nil
}

// combinationalCycle returns some node on a DFF-free cycle, or nil.
func (n *Netlist) combinationalCycle() []NodeID {
	// Kahn over the subgraph of non-DFF nodes and edges not leaving a DFF.
	indeg := make([]int, len(n.Nodes))
	for id, node := range n.Nodes {
		if node.Kind == KindDFF {
			continue
		}
		for _, f := range node.Fanin {
			if n.Nodes[f].Kind != KindDFF {
				indeg[id]++
			}
		}
	}
	queue := make([]NodeID, 0, len(n.Nodes))
	removed := 0
	total := 0
	for id, node := range n.Nodes {
		if node.Kind == KindDFF {
			continue
		}
		total++
		if indeg[id] == 0 {
			queue = append(queue, NodeID(id))
		}
	}
	fo := n.Fanouts()
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		removed++
		for _, w := range fo[v] {
			if n.Nodes[w].Kind == KindDFF {
				continue
			}
			indeg[w]--
			if indeg[w] == 0 {
				queue = append(queue, w)
			}
		}
	}
	if removed == total {
		return nil
	}
	for id, node := range n.Nodes {
		if node.Kind != KindDFF && indeg[id] > 0 {
			return []NodeID{NodeID(id)}
		}
	}
	return nil
}

// AssignUniform sets the same delay and area on every gate. Inputs and DFFs
// keep zero delay; DFF area is tracked separately by the planner.
func (n *Netlist) AssignUniform(delay, area float64) {
	for i := range n.Nodes {
		if n.Nodes[i].Kind == KindGate {
			n.Nodes[i].Delay = delay
			n.Nodes[i].Area = area
		}
	}
}

// CollapsedEdge is a connection between two combinational units (or inputs)
// carrying W flip-flops, produced by Collapse.
type CollapsedEdge struct {
	From, To NodeID // non-DFF node IDs in the original netlist
	W        int    // number of DFFs traversed
}

// Collapsed is the DFF-collapsed view of a netlist: the retiming graph's raw
// material. Units lists the non-DFF nodes (inputs and gates) that become
// retiming vertices; Edges lists unit-to-unit connections weighted by the
// number of flip-flops between them; OutputUnits lists, for every primary
// output, the driving unit and the number of flip-flops between that unit
// and the output pin.
type Collapsed struct {
	Units       []NodeID
	Edges       []CollapsedEdge
	OutputUnits []CollapsedOutput
}

// CollapsedOutput records the unit driving a primary output and the register
// count along the way.
type CollapsedOutput struct {
	Output NodeID // the node marked as primary output (may be a DFF)
	Driver NodeID // the non-DFF unit that drives it
	W      int    // flip-flops between driver and the output pin
}

// Collapse traces every fanin connection back through chains of DFFs to a
// non-DFF driver, yielding the unit-level connectivity with register counts.
// The netlist must be valid (call Validate first); in particular every DFF
// chain must terminate at an input or gate — a DFF driven only by DFFs in a
// cycle is rejected.
func (n *Netlist) Collapse() (*Collapsed, error) {
	c := &Collapsed{}
	for id, node := range n.Nodes {
		if node.Kind != KindDFF {
			c.Units = append(c.Units, NodeID(id))
		}
	}
	// trace returns the non-DFF driver of node id and the DFF count passed.
	trace := func(id NodeID) (NodeID, int, error) {
		w := 0
		cur := id
		for n.Nodes[cur].Kind == KindDFF {
			w++
			cur = n.Nodes[cur].Fanin[0]
			if w > len(n.Nodes) {
				return 0, 0, fmt.Errorf("netlist %s: DFF-only cycle at %q", n.Name, n.Nodes[id].Name)
			}
		}
		return cur, w, nil
	}
	for id, node := range n.Nodes {
		if node.Kind == KindDFF || node.Kind == KindInput {
			continue
		}
		for _, f := range node.Fanin {
			drv, w, err := trace(f)
			if err != nil {
				return nil, err
			}
			c.Edges = append(c.Edges, CollapsedEdge{From: drv, To: NodeID(id), W: w})
		}
	}
	for _, o := range n.Outputs {
		drv, w, err := trace(o)
		if err != nil {
			return nil, err
		}
		c.OutputUnits = append(c.OutputUnits, CollapsedOutput{Output: o, Driver: drv, W: w})
	}
	return c, nil
}

// InputIDs returns the primary input node IDs in declaration order.
func (n *Netlist) InputIDs() []NodeID {
	var ids []NodeID
	for id, node := range n.Nodes {
		if node.Kind == KindInput {
			ids = append(ids, NodeID(id))
		}
	}
	return ids
}

// GateIDs returns the gate node IDs in declaration order.
func (n *Netlist) GateIDs() []NodeID {
	var ids []NodeID
	for id, node := range n.Nodes {
		if node.Kind == KindGate {
			ids = append(ids, NodeID(id))
		}
	}
	return ids
}

// DFFIDs returns the flip-flop node IDs in declaration order.
func (n *Netlist) DFFIDs() []NodeID {
	var ids []NodeID
	for id, node := range n.Nodes {
		if node.Kind == KindDFF {
			ids = append(ids, NodeID(id))
		}
	}
	return ids
}

// SortedNames returns all node names sorted, mainly for deterministic
// diagnostics and tests.
func (n *Netlist) SortedNames() []string {
	names := make([]string, 0, len(n.Nodes))
	for _, node := range n.Nodes {
		names = append(names, node.Name)
	}
	sort.Strings(names)
	return names
}
