package retime

import (
	"context"
	"fmt"

	"lacret/internal/obs"
)

// FeasiblePeriod reports whether target period T is achievable by retiming
// (with ports pinned), returning a realizing labeling when it is. The W/D
// matrices must belong to this graph.
func (rg *Graph) FeasiblePeriod(T float64, wd *WD) (r []int, ok bool) {
	cs, err := rg.BuildConstraintsWD(T, wd)
	if err != nil {
		return nil, false
	}
	return cs.Feasible(rg)
}

// MinPeriodPartial is the state of an interrupted minimum-period search:
// the bracket (Lo, Hi] with Lo proven infeasible (0 when no probe completed
// — no retiming achieves a non-positive period, so the invariant holds
// trivially) and Hi realized by the labeling R. Probes counts the
// feasibility probes that completed before the interruption.
type MinPeriodPartial struct {
	Lo, Hi float64
	R      []int
	Probes int
}

// ErrBudgetExceeded is returned by the context-aware searches when the
// context expires mid-search. Partial carries the best bracket found so
// far; callers running anytime pipelines degrade to Partial.Hi and its
// labeling instead of failing. Cause is the context's error (Unwrap), so
// errors.Is distinguishes deadline expiry from cancellation.
type ErrBudgetExceeded struct {
	Partial *MinPeriodPartial
	Cause   error
}

func (e *ErrBudgetExceeded) Error() string {
	return fmt.Sprintf("retime: period search stopped after %d probes with bracket (%g, %g]: %v",
		e.Partial.Probes, e.Partial.Lo, e.Partial.Hi, e.Cause)
}

func (e *ErrBudgetExceeded) Unwrap() error { return e.Cause }

// MinPeriod finds the minimum achievable clock period under retiming (with
// ports pinned) and a labeling that realizes it. The search is a binary
// search over period probes; each probe instantiates the active clock
// constraints from the precomputed W/D matrices and tests feasibility with
// Bellman–Ford. eps bounds the absolute search error (<=0 selects 1e-4);
// the returned period is the actual retimed period of the found labeling,
// a realizable value rather than a midpoint.
func (rg *Graph) MinPeriod(eps float64) (T float64, r []int, err error) {
	if err := rg.Validate(); err != nil {
		return 0, nil, err
	}
	return rg.MinPeriodWD(eps, rg.WDMatrices())
}

// MinPeriodContext is MinPeriod under a context: the deadline is checked
// between feasibility probes, and on expiry the search returns a typed
// *ErrBudgetExceeded carrying the current bracket (an anytime result; see
// MinPeriodPartial). An already-expired context yields a partial with zero
// probes whose Hi is the unretimed period.
func (rg *Graph) MinPeriodContext(ctx context.Context, eps float64) (T float64, r []int, err error) {
	if err := rg.Validate(); err != nil {
		return 0, nil, err
	}
	return rg.MinPeriodWDContext(ctx, eps, rg.WDMatrices())
}

// MinPeriodWD is MinPeriod against precomputed W/D matrices.
func (rg *Graph) MinPeriodWD(eps float64, wd *WD) (T float64, r []int, err error) {
	return rg.MinPeriodWDContext(context.Background(), eps, wd)
}

// MinPeriodWDContext is MinPeriodContext against precomputed W/D matrices.
func (rg *Graph) MinPeriodWDContext(ctx context.Context, eps float64, wd *WD) (T float64, r []int, err error) {
	if eps <= 0 {
		eps = 1e-4
	}
	hi, err := rg.Period()
	if err != nil {
		return 0, nil, err
	}
	lo := 0.0
	for v := 0; v < rg.N(); v++ {
		if rg.delay[v] > lo {
			lo = rg.delay[v]
		}
	}
	if hi < lo {
		hi = lo
	}
	// The zero labeling realizes hi. A successful probe at T realizes some
	// period p <= T which becomes the new upper bound (an achievable value,
	// so the bound tightens at least as fast as the midpoint).
	bestT := hi
	bestR := make([]int, rg.N())
	// provenLo is the largest period a completed probe proved infeasible —
	// the Lo of an interrupted search's bracket. It starts at 0, not at the
	// max vertex delay: that delay is a valid lower bound for the search but
	// has not been *proven* infeasible (probing it may well succeed).
	provenLo := 0.0
	probes := 0
	partial := func(cause error) error {
		return &ErrBudgetExceeded{
			Partial: &MinPeriodPartial{Lo: provenLo, Hi: bestT, R: bestR, Probes: probes},
			Cause:   cause,
		}
	}
	// Observability handles: all nil (and therefore free) unless the caller
	// installed an obs recorder on the context. Each probe becomes one
	// sub-stage span (period probed, feasibility, Bellman–Ford relaxations,
	// bracket after the probe); the live gauges track the shrinking bracket.
	reg := obs.FromContext(ctx).Registry()
	gLo, gHi := reg.Gauge("retime.bracket_lo"), reg.Gauge("retime.bracket_hi")
	cProbes := reg.Counter("retime.probes")
	hProbe := reg.Histogram("retime.probe_ms", obs.DurationBucketsMS)
	probe := func(T float64) (feasible bool) {
		_, sp := obs.StartSpan(ctx, "probe")
		sp.SetAttr("t", T)
		defer func() {
			probes++
			if feasible {
				sp.SetAttr("feasible", 1)
			} else {
				sp.SetAttr("feasible", 0)
			}
			sp.SetAttr("bracket_hi", bestT)
			sp.End()
			if sp != nil {
				hProbe.Observe(float64(sp.Dur.Microseconds()) / 1000)
			}
			cProbes.Inc()
			gHi.Set(bestT)
		}()
		cs, err := rg.BuildConstraintsWD(T, wd)
		if err != nil {
			return false
		}
		labels, ok, relax := cs.FeasibleStats(rg)
		sp.SetAttr("relaxations", float64(relax))
		if !ok {
			return false
		}
		applied, err := rg.Apply(labels)
		if err != nil {
			return false
		}
		p, err := applied.Period()
		if err != nil {
			return false
		}
		if p < bestT {
			bestT, bestR = p, labels
		}
		return true
	}
	if cerr := ctx.Err(); cerr != nil {
		return 0, nil, partial(cerr)
	}
	if !probe(lo) {
		provenLo = lo
		gLo.Set(provenLo)
	}
	for bestT-lo > eps {
		if cerr := ctx.Err(); cerr != nil {
			return 0, nil, partial(cerr)
		}
		mid := (lo + bestT) / 2
		if !probe(mid) {
			lo = mid
			provenLo = mid
			gLo.Set(provenLo)
		} else if bestT > mid+periodEps {
			// A feasible probe at mid must realize a period <= mid; guard
			// against numerical drift rather than looping forever.
			break
		}
	}
	if err := rg.CheckFeasible(bestR, bestT); err != nil {
		return 0, nil, fmt.Errorf("retime: MinPeriod produced invalid labeling: %v", err)
	}
	return bestT, bestR, nil
}
