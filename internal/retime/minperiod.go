package retime

import "fmt"

// FeasiblePeriod reports whether target period T is achievable by retiming
// (with ports pinned), returning a realizing labeling when it is. The W/D
// matrices must belong to this graph.
func (rg *Graph) FeasiblePeriod(T float64, wd *WD) (r []int, ok bool) {
	cs, err := rg.BuildConstraintsWD(T, wd)
	if err != nil {
		return nil, false
	}
	return cs.Feasible(rg)
}

// MinPeriod finds the minimum achievable clock period under retiming (with
// ports pinned) and a labeling that realizes it. The search is a binary
// search over period probes; each probe instantiates the active clock
// constraints from the precomputed W/D matrices and tests feasibility with
// Bellman–Ford. eps bounds the absolute search error (<=0 selects 1e-4);
// the returned period is the actual retimed period of the found labeling,
// a realizable value rather than a midpoint.
func (rg *Graph) MinPeriod(eps float64) (T float64, r []int, err error) {
	if err := rg.Validate(); err != nil {
		return 0, nil, err
	}
	return rg.MinPeriodWD(eps, rg.WDMatrices())
}

// MinPeriodWD is MinPeriod against precomputed W/D matrices.
func (rg *Graph) MinPeriodWD(eps float64, wd *WD) (T float64, r []int, err error) {
	if eps <= 0 {
		eps = 1e-4
	}
	hi, err := rg.Period()
	if err != nil {
		return 0, nil, err
	}
	lo := 0.0
	for v := 0; v < rg.N(); v++ {
		if rg.delay[v] > lo {
			lo = rg.delay[v]
		}
	}
	if hi < lo {
		hi = lo
	}
	// The zero labeling realizes hi. A successful probe at T realizes some
	// period p <= T which becomes the new upper bound (an achievable value,
	// so the bound tightens at least as fast as the midpoint).
	bestT := hi
	bestR := make([]int, rg.N())
	probe := func(T float64) bool {
		labels, ok := rg.FeasiblePeriod(T, wd)
		if !ok {
			return false
		}
		applied, err := rg.Apply(labels)
		if err != nil {
			return false
		}
		p, err := applied.Period()
		if err != nil {
			return false
		}
		if p < bestT {
			bestT, bestR = p, labels
		}
		return true
	}
	probe(lo)
	for bestT-lo > eps {
		mid := (lo + bestT) / 2
		if !probe(mid) {
			lo = mid
		} else if bestT > mid+periodEps {
			// A feasible probe at mid must realize a period <= mid; guard
			// against numerical drift rather than looping forever.
			break
		}
	}
	if err := rg.CheckFeasible(bestR, bestT); err != nil {
		return 0, nil, fmt.Errorf("retime: MinPeriod produced invalid labeling: %v", err)
	}
	return bestT, bestR, nil
}
