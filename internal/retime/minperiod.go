package retime

import (
	"context"
	"fmt"

	"lacret/internal/obs"
)

// FeasiblePeriod reports whether target period T is achievable by retiming
// (with ports pinned), returning a realizing labeling when it is. The W/D
// matrices must belong to this graph.
func (rg *Graph) FeasiblePeriod(T float64, wd *WD) (r []int, ok bool) {
	cs, err := rg.BuildConstraintsWD(T, wd)
	if err != nil {
		return nil, false
	}
	return cs.Feasible(rg)
}

// MinPeriodPartial is the state of an interrupted minimum-period search:
// the bracket (Lo, Hi] with Lo proven infeasible (0 when no probe completed
// — no retiming achieves a non-positive period, so the invariant holds
// trivially) and Hi realized by the labeling R. Probes counts the
// feasibility probes that completed before the interruption.
type MinPeriodPartial struct {
	Lo, Hi float64
	R      []int
	Probes int
}

// ErrBudgetExceeded is returned by the context-aware searches when the
// context expires mid-search. Partial carries the best bracket found so
// far; callers running anytime pipelines degrade to Partial.Hi and its
// labeling instead of failing. Cause is the context's error (Unwrap), so
// errors.Is distinguishes deadline expiry from cancellation.
type ErrBudgetExceeded struct {
	Partial *MinPeriodPartial
	Cause   error
}

func (e *ErrBudgetExceeded) Error() string {
	return fmt.Sprintf("retime: period search stopped after %d probes with bracket (%g, %g]: %v",
		e.Partial.Probes, e.Partial.Lo, e.Partial.Hi, e.Cause)
}

func (e *ErrBudgetExceeded) Unwrap() error { return e.Cause }

// MinPeriod finds the minimum achievable clock period under retiming (with
// ports pinned) and a labeling that realizes it. The search is a binary
// search over period probes; each probe instantiates the active clock
// constraints from the precomputed W/D matrices and tests feasibility with
// Bellman–Ford. eps bounds the absolute search error (<=0 selects 1e-4);
// the returned period is the actual retimed period of the found labeling,
// a realizable value rather than a midpoint.
func (rg *Graph) MinPeriod(eps float64) (T float64, r []int, err error) {
	if err := rg.Validate(); err != nil {
		return 0, nil, err
	}
	return rg.MinPeriodWD(eps, rg.WDMatrices())
}

// MinPeriodContext is MinPeriod under a context: the deadline is checked
// between feasibility probes, and on expiry the search returns a typed
// *ErrBudgetExceeded carrying the current bracket (an anytime result; see
// MinPeriodPartial). An already-expired context yields a partial with zero
// probes whose Hi is the unretimed period.
func (rg *Graph) MinPeriodContext(ctx context.Context, eps float64) (T float64, r []int, err error) {
	if err := rg.Validate(); err != nil {
		return 0, nil, err
	}
	return rg.MinPeriodWDContext(ctx, eps, rg.WDMatrices())
}

// MinPeriodWD is MinPeriod against precomputed W/D matrices.
func (rg *Graph) MinPeriodWD(eps float64, wd *WD) (T float64, r []int, err error) {
	return rg.MinPeriodWDContext(context.Background(), eps, wd)
}

// MinPeriodWDContext is MinPeriodContext against precomputed W/D matrices.
func (rg *Graph) MinPeriodWDContext(ctx context.Context, eps float64, wd *WD) (T float64, r []int, err error) {
	T, r, _, err = rg.MinPeriodWDStatsContext(ctx, eps, wd)
	return T, r, err
}

// applyForProbe is the labeling-application step of a feasibility probe,
// indirected so tests can inject a failure on the (structurally
// unreachable via the public API) internal-error path and assert it is
// propagated rather than misread as "period infeasible".
var applyForProbe = (*Graph).Apply

// MinPeriodWDStatsContext is MinPeriodWDContext plus the probe-work
// counters of the search's persistent feasibility solver (see ProbeStats).
func (rg *Graph) MinPeriodWDStatsContext(ctx context.Context, eps float64, wd *WD) (T float64, r []int, stats ProbeStats, err error) {
	src, err := NewDenseSource(rg, wd, 0)
	if err != nil {
		return 0, nil, stats, err
	}
	return rg.MinPeriodSourceStatsContext(ctx, eps, src)
}

// MinPeriodSourceStatsContext runs the minimum-period binary search against
// a ConstraintSource (dense matrices or the lazy sweep engine) and returns
// the probe-work counters alongside the result. The source's floor must
// not exceed the search's lower bracket end (the maximum vertex delay);
// engines built for this graph at that floor or below always qualify.
//
// The probes run on one FeasSolver built at the bracket's floor: each
// probe warm-starts from the previous feasible labeling and touches only
// the clock pairs whose activation status changed, instead of rebuilding
// the full constraint system and sweeping all O(V²) pairs. Verdicts and
// labelings are identical to the cold BuildConstraintsWD+Feasible path —
// and identical across source engines — so results are bit-identical to
// searches run before the solver existed.
//
// Internal failures while realizing a feasible labeling (Apply or Period
// on the retimed graph) are returned as errors — never folded into an
// "infeasible" verdict, which would corrupt the bracket invariant.
func (rg *Graph) MinPeriodSourceStatsContext(ctx context.Context, eps float64, src ConstraintSource) (T float64, r []int, stats ProbeStats, err error) {
	if eps <= 0 {
		eps = 1e-4
	}
	hi, err := rg.Period()
	if err != nil {
		return 0, nil, stats, err
	}
	lo := 0.0
	for v := 0; v < rg.N(); v++ {
		if rg.delay[v] > lo {
			lo = rg.delay[v]
		}
	}
	if hi < lo {
		hi = lo
	}
	// The zero labeling realizes hi. A successful probe at T realizes some
	// period p <= T which becomes the new upper bound (an achievable value,
	// so the bound tightens at least as fast as the midpoint).
	bestT := hi
	bestR := make([]int, rg.N())
	// provenLo is the largest period a completed probe proved infeasible —
	// the Lo of an interrupted search's bracket. It starts at 0, not at the
	// max vertex delay: that delay is a valid lower bound for the search but
	// has not been *proven* infeasible (probing it may well succeed).
	provenLo := 0.0
	probes := 0
	partial := func(cause error) error {
		return &ErrBudgetExceeded{
			Partial: &MinPeriodPartial{Lo: provenLo, Hi: bestT, R: bestR, Probes: probes},
			Cause:   cause,
		}
	}
	// Observability handles: all nil (and therefore free) unless the caller
	// installed an obs recorder on the context. Each probe becomes one
	// sub-stage span (period probed, feasibility, relaxations, warm/cold,
	// bracket after the probe); the live gauges track the shrinking bracket
	// and the counters accumulate the incremental solver's probe work.
	reg := obs.FromContext(ctx).Registry()
	gLo, gHi := reg.Gauge("retime.bracket_lo"), reg.Gauge("retime.bracket_hi")
	cProbes := reg.Counter("retime.probes")
	cWarm := reg.Counter("retime.feas_warm")
	cPairs := reg.Counter("retime.pairs_scanned")
	cWitness := reg.Counter("retime.witness_rejects")
	hProbe := reg.Histogram("retime.probe_ms", obs.DurationBucketsMS)
	// Solver construction builds the candidate index — with a lazy source
	// that is the bulk of the search's sweep work, so it runs under the
	// same deadline as the probes: an expiry mid-build degrades to the
	// zero-probe partial (Hi = the unretimed period, realized by the zero
	// labeling) instead of sweeping past the budget.
	fs, err := NewFeasSolverContext(ctx, rg, src, lo)
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return 0, nil, stats, partial(cerr)
		}
		return 0, nil, stats, err
	}
	var prev ProbeStats
	probe := func(T float64) (feasible bool, perr error) {
		_, sp := obs.StartSpan(ctx, "probe")
		sp.SetAttr("t", T)
		defer func() {
			probes++
			st := fs.Stats()
			if feasible {
				sp.SetAttr("feasible", 1)
			} else {
				sp.SetAttr("feasible", 0)
			}
			sp.SetAttr("relaxations", float64(st.Relaxations-prev.Relaxations))
			if st.Warm > prev.Warm {
				sp.SetAttr("warm", 1)
			} else {
				sp.SetAttr("warm", 0)
			}
			sp.SetAttr("bracket_hi", bestT)
			sp.End()
			if sp != nil {
				hProbe.Observe(float64(sp.Dur.Microseconds()) / 1000)
			}
			cProbes.Inc()
			cWarm.Add(int64(st.Warm - prev.Warm))
			cPairs.Add(st.PairsScanned - prev.PairsScanned)
			cWitness.Add(int64(st.WitnessRejects - prev.WitnessRejects))
			prev = st
			gHi.Set(bestT)
		}()
		labels, ok, err := fs.Probe(T)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
		applied, err := applyForProbe(rg, labels)
		if err != nil {
			return false, fmt.Errorf("retime: applying probe labeling at %g: %w", T, err)
		}
		p, err := applied.Period()
		if err != nil {
			return false, fmt.Errorf("retime: measuring probe period at %g: %w", T, err)
		}
		if p < bestT {
			bestT, bestR = p, labels
		}
		return true, nil
	}
	if cerr := ctx.Err(); cerr != nil {
		return 0, nil, fs.Stats(), partial(cerr)
	}
	if ok, perr := probe(lo); perr != nil {
		return 0, nil, fs.Stats(), perr
	} else if !ok {
		provenLo = lo
		gLo.Set(provenLo)
	}
	for bestT-lo > eps {
		if cerr := ctx.Err(); cerr != nil {
			return 0, nil, fs.Stats(), partial(cerr)
		}
		mid := (lo + bestT) / 2
		ok, perr := probe(mid)
		if perr != nil {
			return 0, nil, fs.Stats(), perr
		}
		if !ok {
			lo = mid
			provenLo = mid
			gLo.Set(provenLo)
		} else if bestT > mid+periodEps {
			// A feasible probe at mid must realize a period <= mid; guard
			// against numerical drift rather than looping forever.
			break
		}
	}
	if err := rg.CheckFeasible(bestR, bestT); err != nil {
		return 0, nil, fs.Stats(), fmt.Errorf("retime: MinPeriod produced invalid labeling: %v", err)
	}
	return bestT, bestR, fs.Stats(), nil
}
