package retime

import (
	"fmt"
	"math"

	"lacret/internal/mcmf"
)

// areaScale converts real-valued area weights to integers so the min-cost
// flow runs on integral supplies (guaranteed termination, integral duals).
const areaScale = 1 << 10

// MinAreaResult reports a (weighted) minimum-area retiming.
type MinAreaResult struct {
	// R is the retiming labeling, normalized so pinned vertices are zero.
	R []int
	// Retimed is the graph with retimed edge weights.
	Retimed *Graph
	// Registers is the total register count after retiming.
	Registers int
	// WeightedArea is Σ_e A(tail(e))·w_r(e) under the caller's weights.
	WeightedArea float64
	// FlowCost is the raw min-cost-flow objective (scaled, relative).
	FlowCost float64
}

// MinArea computes a minimum-area retiming for target period T with uniform
// area weights (the classical problem): it minimizes the total number of
// registers subject to the clock-period constraints.
func (rg *Graph) MinArea(T float64) (*MinAreaResult, error) {
	cs, err := rg.BuildConstraints(T)
	if err != nil {
		return nil, err
	}
	return rg.MinAreaWithConstraints(cs, nil)
}

// MinAreaWithConstraints solves the weighted minimum-area retiming problem
// against a prepared constraint system. area gives the per-vertex register
// weight A(v) (the cost of a register sitting on an out-edge of v, i.e. in
// v's tile, per the paper's placement model); nil means uniform weights.
//
// The objective Σ_v r(v)·(fi(v) − fo(v)) with
// fi(v) = Σ_{u∈FI(v)} A(u), fo(v) = A(v)·|FO(v)| is minimized subject to
// the difference constraints; the LP dual is a transshipment problem solved
// by min-cost flow, and the optimal labels are recovered from residual
// shortest-path potentials. Bounds are integral, so the recovered labels
// are exactly integral regardless of the (real) weights.
func (rg *Graph) MinAreaWithConstraints(cs *Constraints, area []float64) (*MinAreaResult, error) {
	n := rg.N()
	if area != nil && len(area) != n {
		return nil, fmt.Errorf("retime: area weight count %d != vertex count %d", len(area), n)
	}
	// Per-edge costs derived from the tail vertex's weight (the paper's
	// model: a register on edge e occupies the tile of tail(e)).
	edgeCost := make([]float64, rg.M())
	for i, e := range rg.g.Edges() {
		a := 1.0
		if area != nil {
			a = area[e.From]
		}
		if a < 0 || math.IsNaN(a) || math.IsInf(a, 0) {
			return nil, fmt.Errorf("retime: bad area weight %g for vertex %d", a, e.From)
		}
		edgeCost[i] = a
	}
	return rg.minAreaEdgeCosts(cs, edgeCost, true)
}

// minAreaEdgeCosts is the general weighted min-area solver: cost[i] is the
// register area charged per register on edge i. When clamp is true, costs
// are clamped to at least 1/areaScale so no register is ever free; the
// fanout-sharing transform passes clamp=false because its zero-cost edges
// are intentional (only mirror edges carry cost).
func (rg *Graph) minAreaEdgeCosts(cs *Constraints, cost []float64, clamp bool) (*MinAreaResult, error) {
	n := rg.N()
	if cs.N != n {
		return nil, fmt.Errorf("retime: constraint system for %d vertices, graph has %d", cs.N, n)
	}
	if len(cost) != rg.M() {
		return nil, fmt.Errorf("retime: edge cost count %d != edge count %d", len(cost), rg.M())
	}
	// Quick feasibility check; gives a crisp error instead of a flow error.
	if _, ok := cs.Feasible(rg); !ok {
		return nil, ErrInfeasible{T: math.NaN()}
	}

	// Scaled integral costs.
	aw := make([]float64, rg.M())
	for i, c := range cost {
		s := math.Round(c * areaScale)
		if clamp && s < 1 {
			s = 1
		}
		if s < 0 {
			return nil, fmt.Errorf("retime: negative edge cost %g", c)
		}
		aw[i] = s
	}

	// Node supplies: the dual transshipment needs, at every node,
	// inflow − outflow = Σ_in cost − Σ_out cost, i.e.
	// supply(v) = Σ_out cost − Σ_in cost.
	supply := make([]float64, n)
	for i, e := range rg.g.Edges() {
		supply[e.From] += aw[i]
		supply[e.To] -= aw[i]
	}

	net := mcmf.New(n)
	for _, c := range cs.Cons {
		net.AddArc(c.U, c.V, mcmf.Inf, float64(c.Bound))
	}
	flowCost, err := net.Solve(supply)
	if err != nil {
		if err == mcmf.ErrNegativeCycle {
			return nil, ErrInfeasible{T: math.NaN()}
		}
		return nil, fmt.Errorf("retime: min-cost flow failed: %v", err)
	}
	pot, err := net.Potentials()
	if err != nil {
		return nil, fmt.Errorf("retime: potential extraction failed: %v", err)
	}
	r := make([]int, n)
	for v := 0; v < n; v++ {
		r[v] = -int(math.Round(pot[v]))
	}
	normalize(rg, r)

	retimed, err := rg.Apply(r)
	if err != nil {
		return nil, fmt.Errorf("retime: flow dual produced illegal labeling: %v", err)
	}
	res := &MinAreaResult{
		R:         r,
		Retimed:   retimed,
		Registers: retimed.TotalRegisters(),
		FlowCost:  flowCost,
	}
	for i, e := range retimed.g.Edges() {
		res.WeightedArea += cost[i] * float64(e.W)
	}
	return res, nil
}
