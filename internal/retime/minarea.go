package retime

import (
	"context"
	"fmt"
	"math"

	"lacret/internal/mcmf"
)

// areaScale converts real-valued area weights to integers so the min-cost
// flow runs on integral supplies (guaranteed termination, integral duals).
const areaScale = 1 << 10

// MinAreaResult reports a (weighted) minimum-area retiming.
type MinAreaResult struct {
	// R is the retiming labeling, normalized so pinned vertices are zero.
	R []int
	// Retimed is the graph with retimed edge weights.
	Retimed *Graph
	// Registers is the total register count after retiming.
	Registers int
	// WeightedArea is Σ_e A(tail(e))·w_r(e) under the caller's weights.
	WeightedArea float64
	// FlowCost is the raw min-cost-flow objective (scaled, relative).
	FlowCost float64
	// Stats reports how the underlying flow engine handled this solve
	// (warm vs cold, changed arcs/supplies, augmenting paths run).
	Stats mcmf.SolveStats
}

// MinArea computes a minimum-area retiming for target period T with uniform
// area weights (the classical problem): it minimizes the total number of
// registers subject to the clock-period constraints.
func (rg *Graph) MinArea(T float64) (*MinAreaResult, error) {
	cs, err := rg.BuildConstraints(T)
	if err != nil {
		return nil, err
	}
	return rg.MinAreaWithConstraints(cs, nil)
}

// MinAreaSolver solves the weighted minimum-area retiming problem
// repeatedly under changing per-vertex area weights, as the LAC reweighting
// loop does. The constraint network — one flow arc per difference
// constraint, cost = bound — is built once at construction; every Resolve
// only updates the node supplies induced by the new weights and
// warm-starts the flow engine from the previous round's residual network
// and potentials. Constraint bounds (arc costs) never change between
// rounds, so each round's work is proportional to the supply delta, not
// the network size.
//
// A MinAreaSolver is not safe for concurrent use.
type MinAreaSolver struct {
	rg *Graph
	cs *Constraints
	// net persists across Resolve calls (the tentpole state).
	net *mcmf.Graph
	// Scratch reused every round.
	edgeCost []float64
	aw       []float64
	supply   []float64
}

// NewMinAreaSolver builds the constraint flow network for repeated weighted
// min-area solves over rg. It fails fast with ErrInfeasible when the
// constraint system has no feasible retiming (checked once here, not per
// round).
func NewMinAreaSolver(rg *Graph, cs *Constraints) (*MinAreaSolver, error) {
	n := rg.N()
	if cs.N != n {
		return nil, fmt.Errorf("retime: constraint system for %d vertices, graph has %d", cs.N, n)
	}
	// Quick feasibility check; gives a crisp error instead of a flow error.
	if _, ok := cs.Feasible(rg); !ok {
		return nil, ErrInfeasible{T: math.NaN()}
	}
	net := mcmf.New(n)
	for _, c := range cs.Cons {
		net.AddArc(c.U, c.V, mcmf.Inf, float64(c.Bound))
	}
	return &MinAreaSolver{
		rg:       rg,
		cs:       cs,
		net:      net,
		edgeCost: make([]float64, rg.M()),
		aw:       make([]float64, rg.M()),
		supply:   make([]float64, n),
	}, nil
}

// Resolve solves the weighted minimum-area retiming for the given
// per-vertex register weights A(v) (nil means uniform). The first call
// solves cold; subsequent calls warm-start from the previous solution.
// Results are identical to a from-scratch MinAreaWithConstraints call with
// the same weights: the labels come from residual shortest-path potentials,
// which span the optimal dual face and are therefore the same for every
// optimal flow, however it was reached.
func (s *MinAreaSolver) Resolve(area []float64) (*MinAreaResult, error) {
	n := s.rg.N()
	if area != nil && len(area) != n {
		return nil, fmt.Errorf("retime: area weight count %d != vertex count %d", len(area), n)
	}
	// Per-edge costs derived from the tail vertex's weight (the paper's
	// model: a register on edge e occupies the tile of tail(e)).
	for i, e := range s.rg.g.Edges() {
		a := 1.0
		if area != nil {
			a = area[e.From]
		}
		if a < 0 || math.IsNaN(a) || math.IsInf(a, 0) {
			return nil, fmt.Errorf("retime: bad area weight %g for vertex %d", a, e.From)
		}
		s.edgeCost[i] = a
	}
	return s.resolveEdgeCosts(s.edgeCost, true)
}

// Stats reports how the flow engine handled the most recent Resolve.
func (s *MinAreaSolver) Stats() mcmf.SolveStats { return s.net.Stats() }

// SetContext installs a cancellation context on the underlying flow engine,
// checked between its routing phases. A Resolve interrupted this way
// returns an error wrapping the context's (errors.Is-matchable), and the
// solver should be discarded — the residual state is undefined, like after
// any other flow error.
func (s *MinAreaSolver) SetContext(ctx context.Context) { s.net.SetContext(ctx) }

// resolveEdgeCosts is the general weighted min-area solve against the
// persistent network: cost[i] is the register area charged per register on
// edge i. When clamp is true, costs are clamped to at least 1/areaScale so
// no register is ever free; the fanout-sharing transform passes clamp=false
// because its zero-cost edges are intentional (only mirror edges carry
// cost).
func (s *MinAreaSolver) resolveEdgeCosts(cost []float64, clamp bool) (*MinAreaResult, error) {
	rg, n := s.rg, s.rg.N()
	if len(cost) != rg.M() {
		return nil, fmt.Errorf("retime: edge cost count %d != edge count %d", len(cost), rg.M())
	}

	// Scaled integral costs.
	for i, c := range cost {
		sc := math.Round(c * areaScale)
		if clamp && sc < 1 {
			sc = 1
		}
		if sc < 0 {
			return nil, fmt.Errorf("retime: negative edge cost %g", c)
		}
		s.aw[i] = sc
	}

	// Node supplies: the dual transshipment needs, at every node,
	// inflow − outflow = Σ_in cost − Σ_out cost, i.e.
	// supply(v) = Σ_out cost − Σ_in cost. Only the supplies change between
	// rounds — the constraint arcs' costs are the (fixed) bounds — so the
	// engine routes just the imbalance the new weights introduce.
	for v := range s.supply {
		s.supply[v] = 0
	}
	for i, e := range rg.g.Edges() {
		s.supply[e.From] += s.aw[i]
		s.supply[e.To] -= s.aw[i]
	}

	if err := s.net.SetSupply(s.supply); err != nil {
		return nil, fmt.Errorf("retime: %v", err)
	}
	flowCost, err := s.net.Resolve()
	if err != nil {
		if err == mcmf.ErrNegativeCycle {
			return nil, ErrInfeasible{T: math.NaN()}
		}
		return nil, fmt.Errorf("retime: min-cost flow failed: %w", err)
	}
	pot, err := s.net.Potentials()
	if err != nil {
		return nil, fmt.Errorf("retime: potential extraction failed: %v", err)
	}
	r := make([]int, n)
	for v := 0; v < n; v++ {
		r[v] = -int(math.Round(pot[v]))
	}
	normalize(rg, r)

	retimed, err := rg.Apply(r)
	if err != nil {
		return nil, fmt.Errorf("retime: flow dual produced illegal labeling: %v", err)
	}
	res := &MinAreaResult{
		R:         r,
		Retimed:   retimed,
		Registers: retimed.TotalRegisters(),
		FlowCost:  flowCost,
		Stats:     s.net.Stats(),
	}
	for i, e := range retimed.g.Edges() {
		res.WeightedArea += cost[i] * float64(e.W)
	}
	return res, nil
}

// MinAreaWithConstraints solves the weighted minimum-area retiming problem
// against a prepared constraint system, one-shot. area gives the per-vertex
// register weight A(v) (the cost of a register sitting on an out-edge of v,
// i.e. in v's tile, per the paper's placement model); nil means uniform
// weights. Callers that re-solve under changing weights should hold a
// MinAreaSolver instead; this wrapper builds one, solves once, and drops
// it.
//
// The objective Σ_v r(v)·(fi(v) − fo(v)) with
// fi(v) = Σ_{u∈FI(v)} A(u), fo(v) = A(v)·|FO(v)| is minimized subject to
// the difference constraints; the LP dual is a transshipment problem solved
// by min-cost flow, and the optimal labels are recovered from residual
// shortest-path potentials. Bounds are integral, so the recovered labels
// are exactly integral regardless of the (real) weights.
func (rg *Graph) MinAreaWithConstraints(cs *Constraints, area []float64) (*MinAreaResult, error) {
	n := rg.N()
	if area != nil && len(area) != n {
		return nil, fmt.Errorf("retime: area weight count %d != vertex count %d", len(area), n)
	}
	s, err := NewMinAreaSolver(rg, cs)
	if err != nil {
		return nil, err
	}
	return s.Resolve(area)
}

// minAreaEdgeCosts is the one-shot entry for callers that weight edges
// directly rather than through tail-vertex areas (the fanout-sharing
// transform).
func (rg *Graph) minAreaEdgeCosts(cs *Constraints, cost []float64, clamp bool) (*MinAreaResult, error) {
	s, err := NewMinAreaSolver(rg, cs)
	if err != nil {
		return nil, err
	}
	return s.resolveEdgeCosts(cost, clamp)
}
