package retime

import "math"

// periodEps is the tolerance for clock-period comparisons (ns scale).
const periodEps = 1e-9

// WD holds the all-pairs minimum-latency / worst-delay matrices of a
// retiming graph (Leiserson–Saxe W and D): W[u][v] is the minimum register
// count over u→v paths (-1 if unreachable), and D[u][v] the maximum total
// vertex delay over paths attaining W[u][v], endpoints included.
//
// The matrices do not depend on the target period, so they are computed
// once per graph and reused across period probes (binary search) and across
// the repeated weighted min-area solves of the LAC loop. W is stored as
// int32 to shrink the O(V²) footprint; D must stay float64, because
// float32 rounding can inflate a path delay past an exactly-achievable
// period and generate spurious constraints.
type WD struct {
	N int
	W [][]int32
	D [][]float64
}

// WDMatrices computes the W/D matrices with one shortest-path pass per
// source vertex (Dijkstra on register counts, then longest delay over the
// tight-edge DAG; see graph.WDFromSource).
func (rg *Graph) WDMatrices() *WD {
	n := rg.N()
	wd := &WD{
		N: n,
		W: make([][]int32, n),
		D: make([][]float64, n),
	}
	delayFn := func(v int) float64 { return rg.delay[v] }
	for u := 0; u < n; u++ {
		wd.W[u] = make([]int32, n)
		wd.D[u] = make([]float64, n)
		if rg.g.OutDegree(u) == 0 {
			for v := range wd.W[u] {
				wd.W[u][v] = -1
			}
			wd.W[u][u] = 0
			wd.D[u][u] = rg.delay[u]
			continue
		}
		dists := rg.g.WDFromSource(u, delayFn)
		for v, d := range dists {
			if d.W < 0 {
				wd.W[u][v] = -1
				wd.D[u][v] = math.Inf(-1)
			} else {
				wd.W[u][v] = int32(d.W)
				wd.D[u][v] = d.D
			}
		}
	}
	return wd
}

// MaxD returns the largest finite D value — an upper bound on any clock
// period the constraint generator will ever care about.
func (wd *WD) MaxD() float64 {
	m := 0.0
	for u := 0; u < wd.N; u++ {
		for v := 0; v < wd.N; v++ {
			if wd.W[u][v] >= 0 && wd.D[u][v] > m {
				m = wd.D[u][v]
			}
		}
	}
	return m
}
