package retime

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"lacret/internal/graph"
)

// periodEps is the base tolerance for clock-period comparisons (ns scale).
const periodEps = 1e-9

// periodTol returns the comparison tolerance for period T. The tolerance is
// relative: path delays are sums of vertex delays whose floating-point
// rounding scales with the magnitude of the sum, so an absolute 1e-9 guard
// breaks down once delays reach ~1e7 (one ulp at that scale already exceeds
// it) and retiming at exactly the binary-searched Tmin can spuriously flip
// to infeasible. max(1, |T|) keeps the classical absolute behavior for
// ns-scale periods.
func periodTol(T float64) float64 {
	m := math.Abs(T)
	if m < 1 {
		m = 1
	}
	return periodEps * m
}

// WD holds the all-pairs minimum-latency / worst-delay matrices of a
// retiming graph (Leiserson–Saxe W and D): W[u][v] is the minimum register
// count over u→v paths (-1 if unreachable), and D[u][v] the maximum total
// vertex delay over paths attaining W[u][v], endpoints included.
//
// The matrices do not depend on the target period, so they are computed
// once per graph and reused across period probes (binary search) and across
// the repeated weighted min-area solves of the LAC loop. W is stored as
// int32 to shrink the O(V²) footprint; D must stay float64, because
// float32 rounding can inflate a path delay past an exactly-achievable
// period and generate spurious constraints.
type WD struct {
	N int
	W [][]int32
	D [][]float64
}

// wdParallelThreshold is the vertex count below which the per-source sweeps
// run on the calling goroutine (goroutine fan-out costs more than it saves
// on tiny graphs).
const wdParallelThreshold = 64

// WDMatrices computes the W/D matrices with one shortest-path pass per
// source vertex (Dijkstra on register counts, then longest delay over the
// tight-edge DAG; see graph.WDFromSource). The per-source sweeps are
// independent, so they are fanned across GOMAXPROCS workers; the result is
// identical to the sequential computation (each worker fills only its own
// source rows).
func (rg *Graph) WDMatrices() *WD {
	return rg.WDMatricesParallel(0)
}

// WDMatricesParallel is WDMatrices with an explicit worker count: 1 forces
// the sequential sweep, 0 selects GOMAXPROCS. Workers never exceed the
// vertex count.
func (rg *Graph) WDMatricesParallel(workers int) *WD {
	denseBuilds.Add(1)
	n := rg.N()
	wd := &WD{
		N: n,
		W: make([][]int32, n),
		D: make([][]float64, n),
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if n < wdParallelThreshold || workers <= 1 {
		sv := newWDSweep(rg)
		for u := 0; u < n; u++ {
			rg.wdRow(wd, sv, u)
		}
		return wd
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sv := newWDSweep(rg)
			for {
				u := int(next.Add(1)) - 1
				if u >= n {
					return
				}
				rg.wdRow(wd, sv, u)
			}
		}()
	}
	wg.Wait()
	return wd
}

// wdSweep bundles a per-goroutine graph.WDSolver with its scratch result
// slice, so the n per-source sweeps of one build reuse the same buffers.
type wdSweep struct {
	sv  *graph.WDSolver
	res []graph.WDDist
}

func newWDSweep(rg *Graph) *wdSweep {
	return &wdSweep{sv: graph.NewWDSolver(rg.g), res: make([]graph.WDDist, rg.N())}
}

// wdRow fills source row u of the matrices (one shortest-path + DAG sweep).
// Rows are disjoint, so concurrent calls with distinct u and distinct sweeps
// are safe.
func (rg *Graph) wdRow(wd *WD, sw *wdSweep, u int) {
	n := wd.N
	wd.W[u] = make([]int32, n)
	wd.D[u] = make([]float64, n)
	if rg.g.OutDegree(u) == 0 {
		// Agree with the general path below: unreachable entries carry
		// W = -1 and D = -Inf, not a zero D a consumer could misread as a
		// real path delay.
		for v := range wd.W[u] {
			wd.W[u][v] = -1
			wd.D[u][v] = math.Inf(-1)
		}
		wd.W[u][u] = 0
		wd.D[u][u] = rg.delay[u]
		return
	}
	sw.sv.FromSource(u, rg.delay, sw.res)
	for v, d := range sw.res {
		if d.W < 0 {
			wd.W[u][v] = -1
			wd.D[u][v] = math.Inf(-1)
		} else {
			wd.W[u][v] = int32(d.W)
			wd.D[u][v] = d.D
		}
	}
}

// denseBuilds counts dense W/D matrix builds process-wide. The lazy probe
// path must never trigger one; the memory-bounded CI smoke pins that down
// via DenseBuildCount.
var denseBuilds atomic.Int64

// DenseBuildCount returns the number of dense W/D matrix builds performed
// by this process (all graphs). Intended for tests guarding the lazy
// engine's no-materialization property.
func DenseBuildCount() int64 { return denseBuilds.Load() }

// Bytes returns the resident size of the matrices: N² int32 W entries plus
// N² float64 D entries (slice headers excluded — they are O(N) noise
// against the O(N²) payload).
func (wd *WD) Bytes() int64 {
	n := int64(wd.N)
	return n * n * (4 + 8)
}

// MaxD returns the largest finite D value — an upper bound on any clock
// period the constraint generator will ever care about.
func (wd *WD) MaxD() float64 {
	m := 0.0
	for u := 0; u < wd.N; u++ {
		for v := 0; v < wd.N; v++ {
			if wd.W[u][v] >= 0 && wd.D[u][v] > m {
				m = wd.D[u][v]
			}
		}
	}
	return m
}
