package retime

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"lacret/internal/netlist"
)

// ring builds a k-vertex cycle of unit delay d with regs registers on the
// last edge.
func ring(k int, d float64, regs int) *Graph {
	rg := NewGraph()
	for i := 0; i < k; i++ {
		rg.AddVertex("u", KindUnit, d)
	}
	for i := 0; i < k-1; i++ {
		rg.AddEdge(i, i+1, 0)
	}
	rg.AddEdge(k-1, 0, regs)
	return rg
}

// pipeline builds PI -> u1 -> u2 -> ... -> uk -> PO with the given delays
// and edge weights (len(weights) == k+1).
func pipeline(delays []float64, weights []int) *Graph {
	rg := NewGraph()
	pi := rg.AddVertex("pi", KindPort, 0)
	prev := pi
	for i, d := range delays {
		u := rg.AddVertex("u", KindUnit, d)
		rg.AddEdge(prev, u, weights[i])
		prev = u
	}
	po := rg.AddVertex("po", KindPort, 0)
	rg.AddEdge(prev, po, weights[len(weights)-1])
	return rg
}

func TestGraphBasics(t *testing.T) {
	rg := NewGraph()
	a := rg.AddVertex("a", KindUnit, 2)
	b := rg.AddVertex("b", KindWire, 1)
	p := rg.AddVertex("p", KindPort, 0)
	e := rg.AddEdge(a, b, 1)
	rg.AddEdge(b, p, 0)
	if rg.N() != 3 || rg.M() != 2 {
		t.Fatalf("N=%d M=%d", rg.N(), rg.M())
	}
	if rg.Delay(a) != 2 || rg.Kind(b) != KindWire || rg.Name(p) != "p" {
		t.Fatal("accessors wrong")
	}
	if !rg.Pinned(p) || rg.Pinned(a) {
		t.Fatal("pinning wrong")
	}
	if f, to, w := rg.Edge(e); f != a || to != b || w != 1 {
		t.Fatalf("edge = (%d,%d,%d)", f, to, w)
	}
	rg.SetEdgeWeight(e, 3)
	if rg.EdgeWeight(e) != 3 {
		t.Fatal("SetEdgeWeight failed")
	}
	if rg.TotalRegisters() != 3 {
		t.Fatalf("total = %d", rg.TotalRegisters())
	}
	if got := rg.RegistersPerEdgeTail(); got[a] != 3 || got[b] != 0 {
		t.Fatalf("tails = %v", got)
	}
	if KindUnit.String() != "unit" || KindWire.String() != "wire" || KindPort.String() != "port" {
		t.Fatal("kind strings")
	}
}

func TestValidateDetectsCombinationalCycle(t *testing.T) {
	rg := ring(3, 1, 1)
	if err := rg.Validate(); err != nil {
		t.Fatal(err)
	}
	rg2 := ring(3, 1, 0) // zero-weight cycle
	if err := rg2.Validate(); err == nil {
		t.Fatal("combinational cycle accepted")
	}
}

func TestArrivalsAndPeriod(t *testing.T) {
	// pi -> a(1) -> b(2) -> po, one register between a and b.
	rg := pipeline([]float64{1, 2}, []int{0, 1, 0})
	arr, err := rg.Arrivals()
	if err != nil {
		t.Fatal(err)
	}
	// arr: pi=0, a=1, b=2 (register resets), po=2.
	want := []float64{0, 1, 2, 2}
	for i, w := range want {
		if math.Abs(arr[i]-w) > 1e-12 {
			t.Fatalf("arr[%d]=%g, want %g (all %v)", i, arr[i], w, arr)
		}
	}
	p, err := rg.Period()
	if err != nil {
		t.Fatal(err)
	}
	if p != 2 {
		t.Fatalf("period=%g", p)
	}
}

func TestApplyAndConservation(t *testing.T) {
	rg := ring(4, 1, 2)
	r := []int{0, 1, 1, 1} // move one register around the ring
	out, err := rg.Apply(r)
	if err != nil {
		t.Fatal(err)
	}
	// Total register count around any cycle is invariant.
	if out.TotalRegisters() != rg.TotalRegisters() {
		t.Fatalf("cycle register count changed: %d -> %d", rg.TotalRegisters(), out.TotalRegisters())
	}
}

func TestApplyRejectsNegative(t *testing.T) {
	rg := pipeline([]float64{1}, []int{0, 0})
	if _, err := rg.Apply([]int{0, 1, 0}); err == nil {
		t.Fatal("negative weight accepted")
	}
}

func TestApplyRejectsPinnedNonzero(t *testing.T) {
	rg := pipeline([]float64{1}, []int{1, 1})
	if _, err := rg.Apply([]int{1, 0, 0}); err == nil || !strings.Contains(err.Error(), "pinned") {
		t.Fatalf("err=%v", err)
	}
}

func TestApplyLengthMismatch(t *testing.T) {
	rg := ring(3, 1, 1)
	if _, err := rg.Apply([]int{0}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestCloneIndependent(t *testing.T) {
	rg := ring(3, 1, 1)
	c := rg.Clone()
	c.SetEdgeWeight(0, 5)
	c.SetPinned(0, true)
	if rg.EdgeWeight(0) == 5 || rg.Pinned(0) {
		t.Fatal("clone shares state")
	}
}

func TestWDMatricesRing(t *testing.T) {
	rg := ring(3, 2, 1) // 0->1->2->0, reg on last edge
	wd := rg.WDMatrices()
	// W[0][2] = 0 (path 0->1->2), D = 6.
	if wd.W[0][2] != 0 || wd.D[0][2] != 6 {
		t.Fatalf("W=%d D=%g", wd.W[0][2], wd.D[0][2])
	}
	// W[2][1] = 1 (2->0->1), D = 6.
	if wd.W[2][1] != 1 || wd.D[2][1] != 6 {
		t.Fatalf("W=%d D=%g", wd.W[2][1], wd.D[2][1])
	}
	if wd.MaxD() != 6 {
		t.Fatalf("MaxD=%g", wd.MaxD())
	}
}

func TestMinPeriodRing(t *testing.T) {
	// Cycle of 3 unit-delay-2 vertices. With k registers the best period is
	// the largest chunk of the 6ns cycle between consecutive registers.
	cases := []struct {
		regs int
		want float64
	}{
		{1, 6}, {2, 4}, {3, 2},
	}
	for _, c := range cases {
		rg := ring(3, 2, c.regs)
		T, r, err := rg.MinPeriod(1e-6)
		if err != nil {
			t.Fatalf("regs=%d: %v", c.regs, err)
		}
		if math.Abs(T-c.want) > 1e-3 {
			t.Fatalf("regs=%d: T=%g, want %g", c.regs, T, c.want)
		}
		if err := rg.CheckFeasible(r, c.want+1e-9); err != nil {
			t.Fatalf("regs=%d: %v", c.regs, err)
		}
	}
}

func TestMinPeriodPipelineBalancing(t *testing.T) {
	// pi -> a(1) -> b(1) -> po with both registers bunched on pi->a.
	// Balanced placement achieves period 1.
	rg := pipeline([]float64{1, 1}, []int{2, 0, 0})
	p0, _ := rg.Period()
	if p0 != 2 {
		t.Fatalf("initial period %g", p0)
	}
	T, r, err := rg.MinPeriod(1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(T-1) > 1e-3 {
		t.Fatalf("T=%g, want 1", T)
	}
	// The balancing solution needs a negative internal label (register
	// moved forward across a); make sure we found one.
	neg := false
	for _, x := range r {
		if x < 0 {
			neg = true
		}
	}
	if !neg {
		t.Fatalf("expected negative label in %v", r)
	}
}

func TestMinPeriodCombinationalPathLimits(t *testing.T) {
	// pi -> a(1) -> b(1) -> po with no registers anywhere: ports pinned, so
	// no register can be inserted; min period stays 2.
	rg := pipeline([]float64{1, 1}, []int{0, 0, 0})
	T, _, err := rg.MinPeriod(1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(T-2) > 1e-3 {
		t.Fatalf("T=%g, want 2 (I/O path is unbreakable)", T)
	}
}

func TestFeasiblePeriodInfeasible(t *testing.T) {
	rg := pipeline([]float64{1, 1}, []int{0, 0, 0})
	wd := rg.WDMatrices()
	if _, ok := rg.FeasiblePeriod(1.5, wd); ok {
		t.Fatal("period 1.5 should be infeasible (comb path of 2)")
	}
	if r, ok := rg.FeasiblePeriod(2, wd); !ok {
		t.Fatal("period 2 should be feasible")
	} else if err := rg.CheckFeasible(r, 2); err != nil {
		t.Fatal(err)
	}
}

func TestMinAreaDiamondSharesRegisters(t *testing.T) {
	// pi -> a -> {b, c} -> d -> po; one register on each of b->d and c->d.
	// Min-area retiming can replace both with a single register on d->po.
	rg := NewGraph()
	pi := rg.AddVertex("pi", KindPort, 0)
	a := rg.AddVertex("a", KindUnit, 1)
	b := rg.AddVertex("b", KindUnit, 1)
	c := rg.AddVertex("c", KindUnit, 1)
	d := rg.AddVertex("d", KindUnit, 1)
	po := rg.AddVertex("po", KindPort, 0)
	rg.AddEdge(pi, a, 0)
	rg.AddEdge(a, b, 0)
	rg.AddEdge(a, c, 0)
	rg.AddEdge(b, d, 1)
	rg.AddEdge(c, d, 1)
	rg.AddEdge(d, po, 0)
	res, err := rg.MinArea(100) // loose period: pure area minimization
	if err != nil {
		t.Fatal(err)
	}
	if res.Registers != 1 {
		t.Fatalf("registers=%d, want 1 (labels %v)", res.Registers, res.R)
	}
	if err := rg.CheckFeasible(res.R, 100); err != nil {
		t.Fatal(err)
	}
}

func TestMinAreaRespectsPeriod(t *testing.T) {
	// Same diamond, but a tight period must keep registers where needed.
	rg := NewGraph()
	pi := rg.AddVertex("pi", KindPort, 0)
	a := rg.AddVertex("a", KindUnit, 1)
	b := rg.AddVertex("b", KindUnit, 1)
	d := rg.AddVertex("d", KindUnit, 1)
	po := rg.AddVertex("po", KindPort, 0)
	rg.AddEdge(pi, a, 0)
	rg.AddEdge(a, b, 0)
	rg.AddEdge(b, d, 1)
	rg.AddEdge(d, po, 1)
	// Period 2: path a..b (delay 2) is fine; moving the register off b->d
	// would create a 3-delay path pi..d. So both registers must stay
	// distinct: min registers at T=2 is 2.
	res, err := rg.MinArea(2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Registers != 2 {
		t.Fatalf("registers=%d, want 2", res.Registers)
	}
	ap, _ := res.Retimed.Period()
	if ap > 2+1e-9 {
		t.Fatalf("retimed period %g", ap)
	}
}

func TestMinAreaInfeasiblePeriod(t *testing.T) {
	rg := pipeline([]float64{1, 1}, []int{0, 0, 0})
	if _, err := rg.MinArea(1.5); err == nil {
		t.Fatal("infeasible period accepted")
	}
}

func TestMinAreaWeightedMovesRegisters(t *testing.T) {
	// pi -> a(1) -> b(1) -> po with one register that may sit on any of the
	// two internal positions (a->b or b->po; period 100 is loose, but it
	// cannot cross the ports). Weighting should steer its location.
	build := func() *Graph { return pipeline([]float64{1, 1}, []int{0, 1, 0}) }

	// Expensive registers on the input side: the register must end on b's
	// out-edge (the only cheap tail).
	rg := build()
	cs, err := rg.BuildConstraints(100)
	if err != nil {
		t.Fatal(err)
	}
	area := []float64{10, 10, 1, 1} // pi, a, b, po
	res, err := rg.MinAreaWithConstraints(cs, area)
	if err != nil {
		t.Fatal(err)
	}
	tails := res.Retimed.RegistersPerEdgeTail()
	if tails[2] != 1 || tails[0] != 0 || tails[1] != 0 {
		t.Fatalf("heavy-input: tails=%v (labels %v)", tails, res.R)
	}

	// Expensive on the output side: the register must avoid b's tile.
	rg = build()
	area = []float64{1, 1, 10, 10}
	res, err = rg.MinAreaWithConstraints(cs, area)
	if err != nil {
		t.Fatal(err)
	}
	tails = res.Retimed.RegistersPerEdgeTail()
	if tails[2] != 0 || tails[0]+tails[1] != 1 {
		t.Fatalf("heavy-output: tails=%v (labels %v)", tails, res.R)
	}
}

func TestMinAreaUniformNeverWorseThanInitial(t *testing.T) {
	// At the initial period, the identity labeling is feasible, so min-area
	// retiming can never need more registers than the initial count.
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		rg := randomGraph(rng, 8, true)
		p, err := rg.Period()
		if err != nil {
			t.Fatal(err)
		}
		res, err := rg.MinArea(p)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if res.Registers > rg.TotalRegisters() {
			t.Fatalf("trial %d: min-area increased registers %d -> %d",
				trial, rg.TotalRegisters(), res.Registers)
		}
		if err := rg.CheckFeasible(res.R, p); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

// randomGraph builds a small random retiming graph. Forward edges may carry
// 0..2 registers; back edges at least 1 (no combinational cycles). With
// ports=true, a pinned source/sink pair is attached.
func randomGraph(rng *rand.Rand, n int, ports bool) *Graph {
	rg := NewGraph()
	for i := 0; i < n; i++ {
		rg.AddVertex("u", KindUnit, float64(1+rng.Intn(4)))
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j || rng.Float64() < 0.6 {
				continue
			}
			w := rng.Intn(3)
			if j < i && w == 0 {
				w = 1 + rng.Intn(2)
			}
			rg.AddEdge(i, j, w)
		}
	}
	// Ensure some structure: chain 0..n-1 lightly.
	for i := 0; i+1 < n; i++ {
		rg.AddEdge(i, i+1, rng.Intn(2))
	}
	if ports {
		pi := rg.AddVertex("pi", KindPort, 0)
		po := rg.AddVertex("po", KindPort, 0)
		rg.AddEdge(pi, 0, rng.Intn(2))
		rg.AddEdge(n-1, po, rng.Intn(2))
	}
	return rg
}

// TestMinAreaAgainstBruteForce enumerates labelings on tiny graphs and
// checks the flow-based optimum matches.
func TestMinAreaAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 40; trial++ {
		n := 3 + rng.Intn(3)
		rg := randomGraph(rng, n, trial%2 == 0)
		p, err := rg.Period()
		if err != nil {
			t.Fatal(err)
		}
		T := p * (0.7 + rng.Float64()*0.6)
		res, err := rg.MinArea(T)
		if err != nil {
			// Infeasible targets are fine as long as brute force agrees.
			if bruteForceMinRegisters(rg, T) >= 0 {
				t.Fatalf("trial %d: solver infeasible but brute force found a solution (T=%g)", trial, T)
			}
			continue
		}
		want := bruteForceMinRegisters(rg, T)
		if want < 0 {
			t.Fatalf("trial %d: solver found %d but brute force infeasible", trial, res.Registers)
		}
		if res.Registers != want {
			t.Fatalf("trial %d: solver %d registers, brute force %d (T=%g)", trial, res.Registers, want, T)
		}
	}
}

// bruteForceMinRegisters enumerates labelings in [-3,3]^N (pinned fixed at
// 0) and returns the minimum feasible register count, or -1.
func bruteForceMinRegisters(rg *Graph, T float64) int {
	n := rg.N()
	labels := make([]int, n)
	best := -1
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			if rg.CheckFeasible(labels, T) == nil {
				applied, _ := rg.Apply(labels)
				if c := applied.TotalRegisters(); best < 0 || c < best {
					best = c
				}
			}
			return
		}
		if rg.Pinned(i) {
			labels[i] = 0
			rec(i + 1)
			return
		}
		for v := -3; v <= 3; v++ {
			labels[i] = v
			rec(i + 1)
		}
	}
	rec(0)
	return best
}

func TestMinPeriodAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 25; trial++ {
		n := 3 + rng.Intn(3)
		rg := randomGraph(rng, n, trial%2 == 1)
		T, r, err := rg.MinPeriod(1e-6)
		if err != nil {
			t.Fatal(err)
		}
		if err := rg.CheckFeasible(r, T+1e-6); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want := bruteForceMinPeriod(rg)
		if math.Abs(T-want) > 1e-3 {
			t.Fatalf("trial %d: MinPeriod=%g, brute force=%g", trial, T, want)
		}
	}
}

func bruteForceMinPeriod(rg *Graph) float64 {
	n := rg.N()
	labels := make([]int, n)
	best := math.Inf(1)
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			applied, err := rg.Apply(labels)
			if err != nil {
				return
			}
			if p, err := applied.Period(); err == nil && p < best {
				best = p
			}
			return
		}
		if rg.Pinned(i) {
			labels[i] = 0
			rec(i + 1)
			return
		}
		for v := -3; v <= 3; v++ {
			labels[i] = v
			rec(i + 1)
		}
	}
	rec(0)
	return best
}

func TestFromCollapsed(t *testing.T) {
	nl := netlist.New("c")
	a, _ := nl.AddInput("a")
	g1, _ := nl.AddGate("g1", "AND", a)
	f1, _ := nl.AddDFF("f1", g1)
	g2, _ := nl.AddGate("g2", "OR", f1)
	nl.MarkOutput(g2)
	nl.AssignUniform(1.5, 10)
	col, err := nl.Collapse()
	if err != nil {
		t.Fatal(err)
	}
	rg, vmap, err := FromCollapsed(nl, col)
	if err != nil {
		t.Fatal(err)
	}
	// Vertices: a (port), g1, g2 (units), po pin = 4.
	if rg.N() != 4 || rg.M() != 3 {
		t.Fatalf("N=%d M=%d", rg.N(), rg.M())
	}
	if !rg.Pinned(vmap[a]) || rg.Pinned(vmap[g1]) {
		t.Fatal("pinning wrong")
	}
	if rg.Delay(vmap[g1]) != 1.5 {
		t.Fatalf("delay=%g", rg.Delay(vmap[g1]))
	}
	if rg.TotalRegisters() != 1 {
		t.Fatalf("registers=%d", rg.TotalRegisters())
	}
	if rg.Origin(vmap[g1]) != g1 {
		t.Fatal("origin mapping wrong")
	}
	p, err := rg.Period()
	if err != nil {
		t.Fatal(err)
	}
	if p != 1.5 {
		t.Fatalf("period=%g", p)
	}
}

func TestConstraintCounts(t *testing.T) {
	rg := pipeline([]float64{1, 1, 1}, []int{0, 1, 1, 0})
	cs, err := rg.BuildConstraints(2)
	if err != nil {
		t.Fatal(err)
	}
	if cs.EdgeCount == 0 || cs.PinCount == 0 {
		t.Fatalf("counts: %+v", cs)
	}
	if len(cs.Cons) != cs.EdgeCount+cs.ClockCount+cs.PinCount {
		t.Fatalf("inconsistent counts: %+v", cs)
	}
}

func TestClockConstraintPruning(t *testing.T) {
	// A long chain produces many violating pairs; pruning should keep far
	// fewer than the full O(V^2) set.
	delays := make([]float64, 12)
	weights := make([]int, 13)
	for i := range delays {
		delays[i] = 1
	}
	weights[0] = 0
	weights[12] = 0
	for i := 1; i < 12; i++ {
		weights[i] = 1
	}
	rg := pipeline(delays, weights)
	wd := rg.WDMatrices()
	cons, err := rg.ClockConstraints(1, wd)
	if err != nil {
		t.Fatal(err)
	}
	// Full pair set with D>1 would be ~N^2/2; pruned should be at most
	// one per (source, frontier) which for a chain is O(N).
	if len(cons) > 40 {
		t.Fatalf("pruning ineffective: %d constraints", len(cons))
	}
	// And the pruned system must be exactly as restrictive: compare
	// feasibility against the unpruned system on a few probes.
	for _, T := range []float64{1, 1.5, 2, 3} {
		pruned, err := rg.BuildConstraintsWD(T, wd)
		if err != nil {
			continue
		}
		rp, okP := pruned.Feasible(rg)
		full := fullConstraints(rg, T, wd)
		_, okF := full.Feasible(rg)
		if okP != okF {
			t.Fatalf("T=%g: pruned feasibility %v != full %v", T, okP, okF)
		}
		if okP {
			if err := rg.CheckFeasible(rp, T); err != nil {
				t.Fatalf("T=%g: pruned solution invalid: %v", T, err)
			}
		}
	}
}

// fullConstraints builds the unpruned constraint system for cross-checks.
func fullConstraints(rg *Graph, T float64, wd *WD) *Constraints {
	cs := &Constraints{N: rg.N()}
	cs.Cons = append(cs.Cons, rg.EdgeConstraints()...)
	for u := 0; u < rg.N(); u++ {
		for v := 0; v < rg.N(); v++ {
			if u == v || wd.W[u][v] < 0 || float64(wd.D[u][v]) <= T+periodTol(T) {
				continue
			}
			cs.Cons = append(cs.Cons, Constraint{U: u, V: v, Bound: int(wd.W[u][v]) - 1})
		}
	}
	cs.Cons = append(cs.Cons, rg.PinConstraints()...)
	return cs
}

// TestPrunedMatchesFullOnRandomGraphs is the pruning soundness property
// test: pruned and full systems accept exactly the same labelings on
// random graphs and random periods.
func TestPrunedMatchesFullOnRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 50; trial++ {
		rg := randomGraph(rng, 4+rng.Intn(4), trial%2 == 0)
		wd := rg.WDMatrices()
		p, _ := rg.Period()
		T := p * (0.5 + rng.Float64())
		maxDelay := 0.0
		for v := 0; v < rg.N(); v++ {
			if rg.Delay(v) > maxDelay {
				maxDelay = rg.Delay(v)
			}
		}
		if T < maxDelay {
			T = maxDelay
		}
		pruned, err := rg.BuildConstraintsWD(T, wd)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		full := fullConstraints(rg, T, wd)
		rP, okP := pruned.Feasible(rg)
		rF, okF := full.Feasible(rg)
		if okP != okF {
			t.Fatalf("trial %d: pruned %v != full %v (T=%g)", trial, okP, okF, T)
		}
		if okP {
			if err := rg.CheckFeasible(rP, T); err != nil {
				t.Fatalf("trial %d: pruned labeling invalid: %v", trial, err)
			}
			if err := rg.CheckFeasible(rF, T); err != nil {
				t.Fatalf("trial %d: full labeling invalid: %v", trial, err)
			}
		}
	}
}

func TestEdgeConstraintsDedupeParallel(t *testing.T) {
	rg := NewGraph()
	a := rg.AddVertex("a", KindUnit, 1)
	b := rg.AddVertex("b", KindUnit, 1)
	rg.AddEdge(a, b, 3)
	rg.AddEdge(a, b, 1) // tighter
	rg.AddEdge(a, a, 5) // self loop: dropped
	cons := rg.EdgeConstraints()
	if len(cons) != 1 || cons[0].Bound != 1 {
		t.Fatalf("cons = %+v", cons)
	}
}

func TestPinConstraintsCounts(t *testing.T) {
	rg := NewGraph()
	rg.AddVertex("u", KindUnit, 1)
	if got := rg.PinConstraints(); len(got) != 0 {
		t.Fatalf("no pins -> %v", got)
	}
	rg.AddVertex("p1", KindPort, 0)
	if got := rg.PinConstraints(); len(got) != 0 {
		t.Fatalf("single pin -> %v", got)
	}
	rg.AddVertex("p2", KindPort, 0)
	rg.AddVertex("p3", KindPort, 0)
	// 3 pins -> 2 pairs x 2 directions = 4 constraints.
	if got := rg.PinConstraints(); len(got) != 4 {
		t.Fatalf("3 pins -> %d constraints", len(got))
	}
}

func TestSetPinnedOverride(t *testing.T) {
	rg := pipeline([]float64{1}, []int{1, 1})
	rg.SetPinned(1, true) // pin the internal unit too
	T, r, err := rg.MinPeriod(1e-4)
	if err != nil {
		t.Fatal(err)
	}
	if r[1] != 0 {
		t.Fatalf("pinned internal vertex moved: %v (T=%g)", r, T)
	}
}
