package retime

import (
	"math/rand"
	"testing"
)

// fanoutStar: pi -> u -> {v1, v2, v3} -> po, with one register on each
// fanout edge of u. Edge-independent counting sees 3 registers; the
// sharing model sees a single shared register at u's output.
func fanoutStar() *Graph {
	rg := NewGraph()
	pi := rg.AddVertex("pi", KindPort, 0)
	u := rg.AddVertex("u", KindUnit, 1)
	v1 := rg.AddVertex("v1", KindUnit, 1)
	v2 := rg.AddVertex("v2", KindUnit, 1)
	v3 := rg.AddVertex("v3", KindUnit, 1)
	po := rg.AddVertex("po", KindPort, 0)
	rg.AddEdge(pi, u, 0)
	rg.AddEdge(u, v1, 1)
	rg.AddEdge(u, v2, 1)
	rg.AddEdge(u, v3, 1)
	rg.AddEdge(v1, po, 0)
	rg.AddEdge(v2, po, 0)
	rg.AddEdge(v3, po, 0)
	return rg
}

func TestSharedRegisterCount(t *testing.T) {
	rg := fanoutStar()
	if got := rg.TotalRegisters(); got != 3 {
		t.Fatalf("edge count %d", got)
	}
	if got := rg.SharedRegisterCount(); got != 1 {
		t.Fatalf("shared count %d", got)
	}
}

func TestMinAreaSharedCountsMax(t *testing.T) {
	rg := fanoutStar()
	res, err := rg.MinAreaShared(10)
	if err != nil {
		t.Fatal(err)
	}
	if res.SharedRegisters != 1 {
		t.Fatalf("shared registers %d, want 1 (labels %v)", res.SharedRegisters, res.R)
	}
	if err := rg.CheckFeasible(res.R, 10); err != nil {
		t.Fatal(err)
	}
	if res.Retimed.SharedRegisterCount() != res.SharedRegisters {
		t.Fatal("shared count inconsistent with retimed graph")
	}
}

func TestMinAreaSharedPrefersSharedPosition(t *testing.T) {
	// pi -> u -> {a, b} -> m -> po with a register on a->m and b->m.
	// Edge-independent min-area is indifferent between {a->m, b->m} (2
	// registers) and the merged position m->po (1). The sharing model has
	// a second option: u's fanout edges u->a, u->b can hold ONE shared
	// register. Either way the shared optimum is 1.
	rg := NewGraph()
	pi := rg.AddVertex("pi", KindPort, 0)
	u := rg.AddVertex("u", KindUnit, 1)
	a := rg.AddVertex("a", KindUnit, 1)
	b := rg.AddVertex("b", KindUnit, 1)
	m := rg.AddVertex("m", KindUnit, 1)
	po := rg.AddVertex("po", KindPort, 0)
	rg.AddEdge(pi, u, 0)
	rg.AddEdge(u, a, 0)
	rg.AddEdge(u, b, 0)
	rg.AddEdge(a, m, 1)
	rg.AddEdge(b, m, 1)
	rg.AddEdge(m, po, 0)
	res, err := rg.MinAreaShared(10)
	if err != nil {
		t.Fatal(err)
	}
	if res.SharedRegisters != 1 {
		t.Fatalf("shared registers %d, want 1", res.SharedRegisters)
	}
}

func TestMinAreaSharedRespectsPeriod(t *testing.T) {
	rg := fanoutStar()
	// T = 2: path u..v_i (delay 2) ok with register between; T=1.5 forces
	// a register after u AND before po... delays: u=1, v=1, so T=2 needs
	// registers on the fanout edges (u..v path = 2 <= T fine) — check a
	// tight-but-feasible target keeps feasibility.
	res, err := rg.MinAreaShared(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := rg.CheckFeasible(res.R, 2); err != nil {
		t.Fatal(err)
	}
	p, _ := res.Retimed.Period()
	if p > 2+1e-9 {
		t.Fatalf("period %g", p)
	}
}

func TestMinAreaSharedInfeasible(t *testing.T) {
	rg := fanoutStar()
	if _, err := rg.MinAreaShared(0.5); err == nil {
		t.Fatal("infeasible period accepted")
	}
}

// TestSharedNeverWorseThanEdgeModel: the sharing optimum counted in the
// shared metric is <= the edge-independent optimum counted in the shared
// metric (it optimizes that metric directly), and both labelings are
// legal. Random graphs.
func TestSharedNeverWorseThanEdgeModel(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 25; trial++ {
		rg := randomGraph(rng, 4+rng.Intn(4), trial%2 == 0)
		p, err := rg.Period()
		if err != nil {
			t.Fatal(err)
		}
		T := p * (1 + rng.Float64())
		shared, err := rg.MinAreaShared(T)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		edge, err := rg.MinArea(T)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if got, ref := shared.SharedRegisters, edge.Retimed.SharedRegisterCount(); got > ref {
			t.Fatalf("trial %d: shared optimum %d worse than edge-model labeling's shared count %d",
				trial, got, ref)
		}
		if err := rg.CheckFeasible(shared.R, T); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

// TestSharedAgainstBruteForce verifies exact optimality of the mirror
// construction on tiny graphs.
func TestSharedAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 25; trial++ {
		rg := randomGraph(rng, 3+rng.Intn(3), trial%2 == 1)
		p, err := rg.Period()
		if err != nil {
			t.Fatal(err)
		}
		T := p * (0.8 + rng.Float64()*0.5)
		res, err := rg.MinAreaShared(T)
		if err != nil {
			continue // infeasible target; brute force would agree (checked elsewhere)
		}
		best := -1
		labels := make([]int, rg.N())
		var rec func(i int)
		rec = func(i int) {
			if i == rg.N() {
				if rg.CheckFeasible(labels, T) != nil {
					return
				}
				applied, _ := rg.Apply(labels)
				if c := applied.SharedRegisterCount(); best < 0 || c < best {
					best = c
				}
				return
			}
			if rg.Pinned(i) {
				labels[i] = 0
				rec(i + 1)
				return
			}
			for v := -3; v <= 3; v++ {
				labels[i] = v
				rec(i + 1)
			}
		}
		rec(0)
		if best < 0 {
			t.Fatalf("trial %d: solver found %d but brute force infeasible", trial, res.SharedRegisters)
		}
		if res.SharedRegisters != best {
			t.Fatalf("trial %d: solver %d, brute force %d", trial, res.SharedRegisters, best)
		}
	}
}
