// Package retime implements Leiserson–Saxe retiming for the interconnect
// planner: retiming-graph construction from collapsed netlists, clock-period
// evaluation, FEAS-based feasibility and minimum-period retiming, and
// (weighted) minimum-area retiming via minimum-cost flow.
//
// Vertices are functional units (RT-level gates), interconnect units
// (repeater segments of global wires), and port pins. Edge weights are
// flip-flop counts. Port pins (primary inputs and outputs) are "pinned":
// their retiming label is fixed to zero so registers never cross the chip
// boundary and I/O latency is preserved — this replaces the classical host
// vertex and avoids zero-weight cycles through the environment.
package retime

import (
	"fmt"
	"math"

	"lacret/internal/graph"
	"lacret/internal/netlist"
)

// VertexKind classifies retiming vertices.
type VertexKind uint8

const (
	// KindUnit is an RT-level functional unit (gate).
	KindUnit VertexKind = iota
	// KindWire is an interconnect unit (one repeater segment of a routed
	// global wire).
	KindWire
	// KindPort is a primary input or output pin; ports are pinned
	// (retiming label fixed at zero).
	KindPort
)

func (k VertexKind) String() string {
	switch k {
	case KindUnit:
		return "unit"
	case KindWire:
		return "wire"
	case KindPort:
		return "port"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Graph is a retiming graph: vertices with fixed delays, directed edges
// weighted by register counts.
type Graph struct {
	g      *graph.Digraph
	delay  []float64
	kind   []VertexKind
	name   []string
	pinned []bool
	// Origin maps vertices back to netlist nodes where applicable
	// (netlist.NodeID, or -1 for synthesized vertices such as wires/ports).
	origin []netlist.NodeID
}

// NewGraph returns an empty retiming graph.
func NewGraph() *Graph {
	return &Graph{g: graph.NewDigraph(0)}
}

// AddVertex appends a vertex and returns its ID. Port vertices are pinned
// automatically.
func (rg *Graph) AddVertex(name string, kind VertexKind, delay float64) int {
	if delay < 0 {
		panic(fmt.Sprintf("retime: negative delay %g for %q", delay, name))
	}
	v := rg.g.AddVertex()
	rg.delay = append(rg.delay, delay)
	rg.kind = append(rg.kind, kind)
	rg.name = append(rg.name, name)
	rg.pinned = append(rg.pinned, kind == KindPort)
	rg.origin = append(rg.origin, -1)
	return v
}

// SetOrigin records the netlist node a vertex came from.
func (rg *Graph) SetOrigin(v int, id netlist.NodeID) { rg.origin[v] = id }

// Origin returns the netlist node a vertex came from, or -1.
func (rg *Graph) Origin(v int) netlist.NodeID { return rg.origin[v] }

// AddEdge appends an edge carrying w registers and returns its index.
func (rg *Graph) AddEdge(from, to, w int) int {
	if w < 0 {
		panic(fmt.Sprintf("retime: negative register count %d on edge (%d,%d)", w, from, to))
	}
	return rg.g.AddEdge(from, to, w, 0)
}

// N returns the vertex count; M the edge count.
func (rg *Graph) N() int { return rg.g.N() }

// M returns the edge count.
func (rg *Graph) M() int { return rg.g.M() }

// Delay returns the delay of vertex v.
func (rg *Graph) Delay(v int) float64 { return rg.delay[v] }

// Kind returns the kind of vertex v.
func (rg *Graph) Kind(v int) VertexKind { return rg.kind[v] }

// Name returns the name of vertex v.
func (rg *Graph) Name(v int) string { return rg.name[v] }

// Pinned reports whether vertex v has its retiming label fixed at zero.
func (rg *Graph) Pinned(v int) bool { return rg.pinned[v] }

// SetPinned overrides the pinning of a vertex.
func (rg *Graph) SetPinned(v int, p bool) { rg.pinned[v] = p }

// Edge returns edge i as (from, to, w).
func (rg *Graph) Edge(i int) (from, to, w int) {
	e := rg.g.Edge(i)
	return e.From, e.To, e.W
}

// EdgeWeight returns the register count of edge i.
func (rg *Graph) EdgeWeight(i int) int { return rg.g.Edge(i).W }

// SetEdgeWeight sets the register count of edge i.
func (rg *Graph) SetEdgeWeight(i, w int) {
	if w < 0 {
		panic("retime: negative register count")
	}
	rg.g.SetEdgeW(i, w)
}

// Out returns the edge indices leaving v.
func (rg *Graph) Out(v int) []int { return rg.g.Out(v) }

// In returns the edge indices entering v.
func (rg *Graph) In(v int) []int { return rg.g.In(v) }

// TotalRegisters returns the sum of edge weights.
func (rg *Graph) TotalRegisters() int {
	t := 0
	for _, e := range rg.g.Edges() {
		t += e.W
	}
	return t
}

// Clone returns a deep copy.
func (rg *Graph) Clone() *Graph {
	return &Graph{
		g:      rg.g.Clone(),
		delay:  append([]float64(nil), rg.delay...),
		kind:   append([]VertexKind(nil), rg.kind...),
		name:   append([]string(nil), rg.name...),
		pinned: append([]bool(nil), rg.pinned...),
		origin: append([]netlist.NodeID(nil), rg.origin...),
	}
}

// Validate checks the structural invariants retiming relies on:
// nonnegative weights and delays, and no zero-weight (combinational) cycle.
func (rg *Graph) Validate() error {
	for i, e := range rg.g.Edges() {
		if e.W < 0 {
			return fmt.Errorf("retime: edge %d has negative weight %d", i, e.W)
		}
	}
	for v, d := range rg.delay {
		if d < 0 || math.IsNaN(d) || math.IsInf(d, 0) {
			return fmt.Errorf("retime: vertex %d (%s) has bad delay %g", v, rg.name[v], d)
		}
	}
	if rg.g.HasCycle(func(e graph.Edge) bool { return e.W == 0 }) {
		return fmt.Errorf("retime: graph has a zero-weight (combinational) cycle")
	}
	return nil
}

// FromCollapsed builds a retiming graph from a DFF-collapsed netlist.
// Primary inputs become pinned port vertices with zero delay; every primary
// output gets a pinned port vertex fed by its driver with the register count
// found between driver and output pin. Gate vertices take their netlist
// delays. VertexOf maps netlist node IDs of units to graph vertices.
func FromCollapsed(nl *netlist.Netlist, c *netlist.Collapsed) (*Graph, map[netlist.NodeID]int, error) {
	rg := NewGraph()
	vertexOf := make(map[netlist.NodeID]int, len(c.Units))
	for _, id := range c.Units {
		node := nl.Node(id)
		var v int
		switch node.Kind {
		case netlist.KindInput:
			v = rg.AddVertex(node.Name, KindPort, 0)
		case netlist.KindGate:
			v = rg.AddVertex(node.Name, KindUnit, node.Delay)
		default:
			return nil, nil, fmt.Errorf("retime: collapsed unit %q has kind %v", node.Name, node.Kind)
		}
		rg.SetOrigin(v, id)
		vertexOf[id] = v
	}
	for _, e := range c.Edges {
		fu, ok := vertexOf[e.From]
		if !ok {
			return nil, nil, fmt.Errorf("retime: edge source %d not a unit", e.From)
		}
		tu, ok := vertexOf[e.To]
		if !ok {
			return nil, nil, fmt.Errorf("retime: edge target %d not a unit", e.To)
		}
		rg.AddEdge(fu, tu, e.W)
	}
	for _, o := range c.OutputUnits {
		drv, ok := vertexOf[o.Driver]
		if !ok {
			return nil, nil, fmt.Errorf("retime: output driver %d not a unit", o.Driver)
		}
		pin := rg.AddVertex("po:"+nl.Node(o.Output).Name, KindPort, 0)
		rg.SetOrigin(pin, o.Output)
		rg.AddEdge(drv, pin, o.W)
	}
	if err := rg.Validate(); err != nil {
		return nil, nil, err
	}
	return rg, vertexOf, nil
}

// Arrivals computes combinational arrival times under the current register
// assignment: for every vertex, the maximum delay of any register-free path
// ending at it (including its own delay). It returns an error if the
// zero-weight subgraph is cyclic.
func (rg *Graph) Arrivals() ([]float64, error) {
	order, ok := rg.g.TopoOrder(func(e graph.Edge) bool { return e.W == 0 })
	if !ok {
		return nil, fmt.Errorf("retime: combinational cycle; arrivals undefined")
	}
	arr := make([]float64, rg.g.N())
	for _, v := range order {
		a := 0.0
		for _, ei := range rg.g.In(v) {
			e := rg.g.Edge(ei)
			if e.W == 0 && arr[e.From] > a {
				a = arr[e.From]
			}
		}
		arr[v] = a + rg.delay[v]
	}
	return arr, nil
}

// Period returns the clock period of the graph under the current register
// assignment: the maximum combinational arrival time.
func (rg *Graph) Period() (float64, error) {
	arr, err := rg.Arrivals()
	if err != nil {
		return 0, err
	}
	p := 0.0
	for _, a := range arr {
		if a > p {
			p = a
		}
	}
	return p, nil
}

// Apply produces a copy of the graph with retimed edge weights
// w_r(e) = w(e) + r(to) − r(from). It returns an error if any weight would
// go negative or a pinned vertex has nonzero label.
func (rg *Graph) Apply(r []int) (*Graph, error) {
	if len(r) != rg.g.N() {
		return nil, fmt.Errorf("retime: label count %d != vertex count %d", len(r), rg.g.N())
	}
	for v, p := range rg.pinned {
		if p && r[v] != 0 {
			return nil, fmt.Errorf("retime: pinned vertex %d (%s) has label %d", v, rg.name[v], r[v])
		}
	}
	out := rg.Clone()
	for i, e := range rg.g.Edges() {
		w := e.W + r[e.To] - r[e.From]
		if w < 0 {
			return nil, fmt.Errorf("retime: edge %d (%s→%s) weight %d negative after retiming",
				i, rg.name[e.From], rg.name[e.To], w)
		}
		out.g.SetEdgeW(i, w)
	}
	return out, nil
}

// CheckFeasible verifies that labels r satisfy all edge-weight constraints
// and that the retimed graph meets the clock period T.
func (rg *Graph) CheckFeasible(r []int, T float64) error {
	out, err := rg.Apply(r)
	if err != nil {
		return err
	}
	p, err := out.Period()
	if err != nil {
		return err
	}
	if p > T+periodTol(T) {
		return fmt.Errorf("retime: retimed period %g exceeds target %g", p, T)
	}
	return nil
}

// RegistersPerEdgeTail returns, for every vertex, the number of registers on
// its outgoing edges under the current weights — the registers that occupy
// the tail vertex's tile in the paper's placement model.
func (rg *Graph) RegistersPerEdgeTail() []int {
	cnt := make([]int, rg.g.N())
	for _, e := range rg.g.Edges() {
		cnt[e.From] += e.W
	}
	return cnt
}
