package retime

import (
	"math/rand"
	"reflect"
	"testing"
)

// nastyGraph builds a random cyclic retiming graph whose delays are
// binary-unrepresentable decimals at the given magnitude, so path-delay
// sums carry rounding noise in their low bits — the regime where strict
// float comparisons against a computed Tmin go wrong.
func nastyGraph(rng *rand.Rand, n int, scale float64) *Graph {
	decimals := []float64{0.1, 0.2, 0.3, 0.6, 0.7, 1.1}
	rg := NewGraph()
	for i := 0; i < n; i++ {
		rg.AddVertex("u", KindUnit, decimals[rng.Intn(len(decimals))]*scale)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j || rng.Float64() < 0.55 {
				continue
			}
			w := rng.Intn(3)
			if j <= i && w == 0 {
				w = 1 + rng.Intn(2)
			}
			rg.AddEdge(i, j, w)
		}
	}
	for i := 0; i+1 < n; i++ {
		rg.AddEdge(i, i+1, rng.Intn(2))
	}
	rg.AddEdge(n-1, 0, 1+rng.Intn(2))
	return rg
}

// TestRetimeAtExactTmin is the regression test for the strict D(u,v) > T
// comparison in ClockConstraints: re-solving at exactly the Tmin returned
// by MinPeriodWD — the planner's Tclk whenever the slack collapses — must
// stay feasible at every delay magnitude. With an absolute 1e-9 epsilon
// this spuriously flips to infeasible once delays reach ~1e7 (one ulp of
// the path sums already exceeds the tolerance).
func TestRetimeAtExactTmin(t *testing.T) {
	for _, scale := range []float64{1, 1e7} {
		rng := rand.New(rand.NewSource(11))
		for trial := 0; trial < 60; trial++ {
			rg := nastyGraph(rng, 4+rng.Intn(6), scale)
			if err := rg.Validate(); err != nil {
				continue
			}
			wd := rg.WDMatrices()
			tmin, r, err := rg.MinPeriodWD(1e-3*scale, wd)
			if err != nil {
				t.Fatalf("scale %g trial %d: MinPeriodWD: %v", scale, trial, err)
			}
			if err := rg.CheckFeasible(r, tmin); err != nil {
				t.Fatalf("scale %g trial %d: labeling from MinPeriodWD rejected: %v", scale, trial, err)
			}
			// The planner path: regenerate constraints at exactly T = Tmin.
			cs, err := rg.BuildConstraintsWD(tmin, wd)
			if err != nil {
				t.Fatalf("scale %g trial %d: constraints at exact Tmin: %v", scale, trial, err)
			}
			r2, ok := cs.Feasible(rg)
			if !ok {
				t.Fatalf("scale %g trial %d: infeasible at exactly Tmin=%v", scale, trial, tmin)
			}
			if err := rg.CheckFeasible(r2, tmin); err != nil {
				t.Fatalf("scale %g trial %d: solution at exact Tmin invalid: %v", scale, trial, err)
			}
		}
	}
}

// TestWDMatricesParallelMatchesSequential locks the parallel fan-out to the
// sequential result bit for bit (rows are independent, so any divergence is
// a sharing bug).
func TestWDMatricesParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 6; trial++ {
		rg := nastyGraph(rng, wdParallelThreshold+8, 1)
		seq := rg.WDMatricesParallel(1)
		par := rg.WDMatricesParallel(8)
		if !reflect.DeepEqual(seq, par) {
			t.Fatalf("trial %d: parallel W/D differs from sequential", trial)
		}
	}
}
