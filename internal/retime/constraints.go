package retime

import (
	"fmt"
	"math"
	"sort"

	"lacret/internal/graph"
)

// Constraint encodes r(U) − r(V) ≤ Bound.
type Constraint struct {
	U, V  int
	Bound int
}

// Constraints is a prepared constraint system for a retiming graph at a
// fixed target period. The paper's LAC heuristic builds this once and then
// re-solves weighted min-area retiming against it with varying weights
// (§4.2: "the clock period constraints are generated only once").
type Constraints struct {
	N    int // number of retiming variables (graph vertices)
	Cons []Constraint
	// Counts by origin, for diagnostics.
	EdgeCount, ClockCount, PinCount int

	// Solver-layout copy of Cons (us/vs/bounds triples), built once by
	// BuildConstraintsWD so repeated Feasible probes against the same
	// system do not re-allocate it. Lazily rebuilt if Cons is mutated.
	us, vs, bs []int
}

// solverArrays returns the us/vs/bounds triple-array view of Cons, building
// and caching it on first use (or after Cons changed length).
func (cs *Constraints) solverArrays() (us, vs, bs []int) {
	if len(cs.us) != len(cs.Cons) {
		cs.us = make([]int, len(cs.Cons))
		cs.vs = make([]int, len(cs.Cons))
		cs.bs = make([]int, len(cs.Cons))
		for i, c := range cs.Cons {
			cs.us[i], cs.vs[i], cs.bs[i] = c.U, c.V, c.Bound
		}
	}
	return cs.us, cs.vs, cs.bs
}

// ErrInfeasible reports that no retiming satisfies the target period.
type ErrInfeasible struct {
	T float64
}

func (e ErrInfeasible) Error() string {
	return fmt.Sprintf("retime: no retiming achieves clock period %g", e.T)
}

// EdgeConstraints returns the nonnegativity constraints
// r(u) − r(v) ≤ w(e) for every edge (u,v), deduplicated to the tightest
// bound per ordered pair.
func (rg *Graph) EdgeConstraints() []Constraint {
	best := map[[2]int]int{}
	for i := 0; i < rg.M(); i++ {
		f, t, w := rg.Edge(i)
		if f == t {
			continue // self-loop: 0 <= w always holds
		}
		k := [2]int{f, t}
		if b, ok := best[k]; !ok || w < b {
			best[k] = w
		}
	}
	cons := make([]Constraint, 0, len(best))
	for k, b := range best {
		cons = append(cons, Constraint{U: k[0], V: k[1], Bound: b})
	}
	sortConstraints(cons)
	return cons
}

// PinConstraints ties all pinned vertices together (their labels must be
// equal; normalization later sets them to zero).
func (rg *Graph) PinConstraints() []Constraint {
	var first = -1
	var cons []Constraint
	for v := 0; v < rg.N(); v++ {
		if !rg.Pinned(v) {
			continue
		}
		if first == -1 {
			first = v
			continue
		}
		cons = append(cons, Constraint{U: v, V: first, Bound: 0}, Constraint{U: first, V: v, Bound: 0})
	}
	return cons
}

// ClockConstraints generates the period constraints for target T from
// precomputed W/D matrices: for every ordered pair (u,v) with D(u,v) > T,
// r(u) − r(v) ≤ W(u,v) − 1 (Leiserson–Saxe condition 2).
//
// Constraints are pruned by a dominance rule (in the spirit of the
// Shenoy–Rudell / Maheshwari–Sapatnekar reductions): the pair (u,v) is
// dropped when v has a W-tight in-edge from some v' with D(u,v') > T,
// because then the (u,v') constraint plus the edge constraint (v',v)
// already imply it:
//
//	r(u) − r(v') ≤ W(u,v')−1  and  r(v') − r(v) ≤ w(e)
//	⟹ r(u) − r(v) ≤ W(u,v')−1+w(e) = W(u,v)−1  (tightness).
//
// Pruning chains terminate because tight edges form a DAG. Only the
// frontier where D first crosses T survives, which shrinks the system by
// orders of magnitude.
//
// An error is returned if some single vertex delay already exceeds T (no
// retiming can fix that).
func (rg *Graph) ClockConstraints(T float64, wd *WD) ([]Constraint, error) {
	src, err := NewDenseSource(rg, wd, 0)
	if err != nil {
		return nil, err
	}
	return rg.ClockConstraintsFrom(T, src)
}

// ClockConstraintsFrom is ClockConstraints against a ConstraintSource: the
// candidate test and dominance rule live in the source's rows, so this
// reduces to a per-row activation filter. T must be above the source's
// floor (rows do not cover lower periods). The result is identical — pair
// for pair, in the same sorted order — for every source built over the
// same graph, dense or lazy.
func (rg *Graph) ClockConstraintsFrom(T float64, src ConstraintSource) ([]Constraint, error) {
	n := rg.N()
	if src.N() != n {
		return nil, fmt.Errorf("retime: constraint source for %d vertices, graph has %d", src.N(), n)
	}
	// The D entries are floating-point sums whose rounding scales with the
	// magnitude of the path delay, so the T comparison needs a relative
	// tolerance: a strict D(u,v) > T at exactly T = Tmin (itself a computed
	// path-delay sum) would otherwise generate a spurious constraint and
	// flip an achievable period to infeasible.
	tol := periodTol(T)
	for v := 0; v < n; v++ {
		if rg.delay[v] > T+tol {
			return nil, ErrInfeasible{T: T}
		}
	}
	fT := activation(T)
	if fT < activation(src.Floor()) {
		return nil, fmt.Errorf("retime: period %g below constraint source floor %g", T, src.Floor())
	}
	var cons []Constraint
	for u := 0; u < n; u++ {
		for _, p := range src.Row(u) {
			if p.D <= fT {
				break // rows are D-descending: nothing further activates
			}
			if p.DPrune > fT {
				// Dominance: a W-tight in-edge from a violating
				// predecessor means this constraint is implied.
				continue
			}
			cons = append(cons, Constraint{U: u, V: int(p.V), Bound: int(p.Bound)})
		}
	}
	sortConstraints(cons)
	return cons, nil
}

// BuildConstraints assembles the full constraint system (edge weight, clock
// period, pinning) for target period T, computing the W/D matrices afresh.
// Callers that probe several periods should compute WDMatrices once and use
// BuildConstraintsWD.
func (rg *Graph) BuildConstraints(T float64) (*Constraints, error) {
	if err := rg.Validate(); err != nil {
		return nil, err
	}
	return rg.BuildConstraintsWD(T, rg.WDMatrices())
}

// BuildConstraintsWD is BuildConstraints against precomputed W/D matrices.
// The graph must be structurally valid and must not have changed since the
// matrices were computed.
func (rg *Graph) BuildConstraintsWD(T float64, wd *WD) (*Constraints, error) {
	src, err := NewDenseSource(rg, wd, 0)
	if err != nil {
		return nil, err
	}
	return rg.BuildConstraintsFrom(T, src)
}

// BuildConstraintsFrom is BuildConstraints against a ConstraintSource. The
// graph must be structurally valid and must not have changed since the
// source was built; T must be above the source's floor.
func (rg *Graph) BuildConstraintsFrom(T float64, src ConstraintSource) (*Constraints, error) {
	if math.IsNaN(T) || T <= 0 {
		return nil, fmt.Errorf("retime: invalid target period %g", T)
	}
	edge := rg.EdgeConstraints()
	clock, err := rg.ClockConstraintsFrom(T, src)
	if err != nil {
		return nil, err
	}
	pin := rg.PinConstraints()
	cs := &Constraints{
		N:          rg.N(),
		EdgeCount:  len(edge),
		ClockCount: len(clock),
		PinCount:   len(pin),
	}
	cs.Cons = append(cs.Cons, edge...)
	cs.Cons = append(cs.Cons, clock...)
	cs.Cons = append(cs.Cons, pin...)
	return cs, nil
}

// Feasible solves the constraint system with Bellman–Ford, returning a
// feasible integral labeling normalized so that pinned vertices (if any) are
// zero, or ok=false.
func (cs *Constraints) Feasible(rg *Graph) (r []int, ok bool) {
	r, ok, _ = cs.FeasibleStats(rg)
	return r, ok
}

// FeasibleStats is Feasible plus the Bellman–Ford relaxation count — the
// work measure of one feasibility probe, surfaced as a sub-stage span
// attribute by the observed period search.
func (cs *Constraints) FeasibleStats(rg *Graph) (r []int, ok bool, relaxations int) {
	us, vs, bs := cs.solverArrays()
	x, ok, relax := solveDiffInt(cs.N, us, vs, bs)
	if !ok {
		return nil, false, relax
	}
	normalize(rg, x)
	return x, true, relax
}

// normalize shifts labels so pinned vertices sit at zero (all pinned labels
// are equal by construction); with no pinned vertex, vertex 0 is the anchor.
func normalize(rg *Graph, r []int) {
	ref := 0
	for v := 0; v < rg.N(); v++ {
		if rg.Pinned(v) {
			ref = v
			break
		}
	}
	if len(r) == 0 {
		return
	}
	off := r[ref]
	for i := range r {
		r[i] -= off
	}
}

// solveDiffInt solves the difference-constraint system with the worklist
// (SPFA) solver, which detects a negative cycle as soon as the parent
// forest closes instead of after n+1 full Bellman–Ford passes — infeasible
// probes dominate a binary search, so early exit there is the common case.
// The labeling is the same unique component-wise maximum solution ≤ 0 the
// full-pass solver produced. The third result counts successful
// relaxations.
func solveDiffInt(n int, us, vs, bounds []int) ([]int, bool, int) {
	return graph.SolveDifferenceIntSPFA(n, us, vs, bounds)
}

func sortConstraints(cons []Constraint) {
	sort.Slice(cons, func(i, j int) bool {
		if cons[i].U != cons[j].U {
			return cons[i].U < cons[j].U
		}
		if cons[i].V != cons[j].V {
			return cons[i].V < cons[j].V
		}
		return cons[i].Bound < cons[j].Bound
	})
}
