package retime

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"lacret/internal/graph"
)

// ProbeStats aggregates the work of a feasibility-probe sequence — the
// per-search counters surfaced by the observed period search
// (retime.feas_warm, retime.pairs_scanned) and the planning trace.
type ProbeStats struct {
	// Probes is the number of Probe calls answered.
	Probes int
	// Warm counts probes answered by relaxing from a previous feasible
	// labeling instead of the trivial all-zero top.
	Warm int
	// WitnessRejects counts infeasible probes rejected by a recorded
	// negative-cycle witness without any constraint work.
	WitnessRejects int
	// Resets counts probes above the current warm threshold that had to
	// restart from the all-zero labeling (never happens in a binary
	// search, whose feasible probes descend monotonically).
	Resets int
	// IndexPairs is the size of the D-sorted candidate pair index — the
	// clock-constraint universe the whole search can ever touch, after
	// dominance pruning.
	IndexPairs int64
	// PairsScanned counts candidate pairs whose activation status was
	// examined across all probes. The cold search rescans all O(V²)
	// pairs per probe; the incremental one touches only the pairs whose
	// activation changed since the previous feasible labeling.
	PairsScanned int64
	// PairsActivated counts pairs materialized into the live constraint
	// pool (each pair is materialized at most once per solver).
	PairsActivated int64
	// Relaxations counts successful label relaxations across all probes.
	Relaxations int64
}

// indexPair is one candidate clock pair in the solver's activation index:
// the destination v, the constraint bound W(u,v)−1, and the activation key
// D(u,v). It is SourcePair minus the DPrune field — always-dominated pairs
// are already absent from source rows, and the solver keeps (soundly
// redundant) partially-dominated pairs active, so DPrune is dead weight
// here. At planned-s5378 scale the index holds ~750M pairs, so the 8 bytes
// per pair are a third of the solver's resident footprint.
type indexPair struct {
	v     int32
	bound int32
	d     float64
}

// feasArc is one live difference constraint r(u) − r(v) ≤ bound, stored on
// the adjacency list of v (relaxation rescans it when the label of v
// drops). d is the activation key: the constraint participates in a probe
// at period T iff d > T + periodTol(T); edge and pin constraints carry
// d = +Inf (always active).
type feasArc struct {
	u     int32
	bound int32
	d     float64
}

// FeasSolver is a persistent feasibility-probe solver for the minimum-period
// binary search. It replaces the per-probe "rebuild all constraints, run
// cold Bellman–Ford" cycle with three incremental structures:
//
//   - A candidate pair index built once from a ConstraintSource (dense
//     matrices or the lazy sweep engine): per source row u, the
//     destinations v whose clock constraint can ever activate (D(u,v)
//     above the search floor), sorted by D descending, with the dominance
//     rule of ClockConstraints folded in as an interval condition
//     (a pair dominated at every period where it is active is dropped).
//   - Lazy constraint materialization: a probe at period T materializes
//     only the index pairs whose activation threshold first crosses T,
//     appending them to per-vertex adjacency lists; each pair is
//     materialized at most once per solver lifetime.
//   - FEAS-style warm relaxation: the labeling of the last feasible probe
//     is kept, and a probe at a lower T relaxes only from the frontier of
//     newly activated violated constraints (SPFA worklist) instead of
//     sweeping all vertices; an infeasible probe restores the labeling and
//     records the negative cycle's witness — the smallest D on the cycle —
//     so every later probe below that witness is rejected in O(1).
//
// The verdicts and labelings are exactly those of the cold path
// (BuildConstraintsWD + Feasible): the warm relaxation converges to the
// same component-wise maximum solution, so a search driven by this solver
// is bit-identical to one driven by cold probes.
//
// A solver serves one goroutine at a time.
type FeasSolver struct {
	rg       *Graph
	src      ConstraintSource
	tfloor   float64
	maxDelay float64

	// Candidate clock-pair index, per source row u, D descending.
	rows    [][]indexPair
	rowNext []int32

	// Live constraint pool: arcs[v] sorted by d descending (edge/pin base
	// arcs first at d=+Inf). matFloor is the activation watermark: every
	// index pair with D > matFloor has been materialized.
	arcs     [][]feasArc
	matFloor float64

	// Warm state: x is the maximum solution ≤ 0 of the system active at
	// threshold fCur (+Inf before the first feasible probe: only the base
	// arcs, which the zero labeling solves).
	x     []int
	xSnap []int
	tCur  float64
	fCur  float64

	// witnessMinD is the strongest negative-cycle witness found: the
	// smallest activation d on a violated cycle. Every period whose
	// activation threshold lies below it keeps the whole cycle active and
	// is infeasible without a solve.
	witnessMinD float64

	// Scratch.
	wl          *graph.Worklist
	parent      []int32
	parentD     []float64
	parentB     []int32
	plen        []int32
	prefixLen   []int32
	prefixEpoch []int32
	epoch       int32
	touched     []int32
	touchStamp  []int32
	touchLen    []int32
	matEpoch    int32

	stats ProbeStats
}

// activation returns the activation threshold of period T: a clock pair
// (u,v) constrains the probe at T iff D(u,v) > activation(T). It is
// strictly increasing in T, so lower periods activate supersets.
func activation(T float64) float64 { return T + periodTol(T) }

// NewFeasSolver builds a persistent probe solver for periods in
// [tfloor, ∞) over a ConstraintSource. tfloor is the lowest period any
// probe may ask about — the binary search uses its lower bracket end (the
// maximum vertex delay); pairs whose constraint can only activate below
// tfloor are excluded from the index. The source's own floor must not
// exceed tfloor (its rows must cover every probe-able period). Probing
// below tfloor returns an error.
func NewFeasSolver(rg *Graph, src ConstraintSource, tfloor float64) (*FeasSolver, error) {
	return NewFeasSolverContext(context.Background(), rg, src, tfloor)
}

// NewFeasSolverContext is NewFeasSolver under a context. Building the
// candidate index is the construction cost — with a lazy source it runs
// one W/D sweep per live vertex — so the build observes the context and
// aborts with its error on expiry. Callers running anytime searches treat
// that abort like a deadline between probes (see
// MinPeriodSourceStatsContext).
func NewFeasSolverContext(ctx context.Context, rg *Graph, src ConstraintSource, tfloor float64) (*FeasSolver, error) {
	n := rg.N()
	if src.N() != n {
		return nil, fmt.Errorf("retime: constraint source for %d vertices, graph has %d", src.N(), n)
	}
	if src.Floor() > tfloor {
		return nil, fmt.Errorf("retime: constraint source floor %g above solver floor %g", src.Floor(), tfloor)
	}
	fs := &FeasSolver{
		rg:          rg,
		src:         src,
		tfloor:      tfloor,
		arcs:        make([][]feasArc, n),
		matFloor:    math.Inf(1),
		x:           make([]int, n),
		xSnap:       make([]int, n),
		tCur:        math.Inf(1),
		fCur:        math.Inf(1),
		witnessMinD: math.Inf(-1),
		wl:          graph.NewWorklist(n),
		parent:      make([]int32, n),
		parentD:     make([]float64, n),
		parentB:     make([]int32, n),
		plen:        make([]int32, n),
		prefixLen:   make([]int32, n),
		prefixEpoch: make([]int32, n),
		touchStamp:  make([]int32, n),
		touchLen:    make([]int32, n),
	}
	for v := 0; v < n; v++ {
		if d := rg.delay[v]; d > fs.maxDelay {
			fs.maxDelay = d
		}
	}
	// Base arcs: the T-independent edge-weight and pinning constraints,
	// always active (d = +Inf), installed ahead of every clock arc.
	for _, c := range rg.EdgeConstraints() {
		fs.arcs[c.V] = append(fs.arcs[c.V], feasArc{u: int32(c.U), bound: int32(c.Bound), d: math.Inf(1)})
	}
	for _, c := range rg.PinConstraints() {
		fs.arcs[c.V] = append(fs.arcs[c.V], feasArc{u: int32(c.U), bound: int32(c.Bound), d: math.Inf(1)})
	}
	if err := fs.buildIndex(ctx); err != nil {
		return nil, err
	}
	return fs, nil
}

// buildIndex fills the per-row candidate pair index from the constraint
// source. A pair (u,v) is a candidate iff its clock constraint can
// activate at some probe-able period (D(u,v) > activation(tfloor)) and is
// not dominated throughout its activation range — exactly the rows the
// source serves at its own floor, narrowed to the solver's floor when the
// two differ (rows are D-descending, so the narrowing is a prefix). Rows
// are independent, so the build fans out like the W/D sweep; Row is
// concurrency-safe by contract.
func (fs *FeasSolver) buildIndex(ctx context.Context) error {
	n := fs.rg.N()
	fs.rows = make([][]indexPair, n)
	fs.rowNext = make([]int32, n)
	cut := activation(fs.tfloor)
	var total atomic.Int64
	buildRow := func(u int) {
		row := fs.src.Row(u)
		row = row[:rowPrefixAbove(row, cut)]
		// Pack into 16-byte index pairs instead of subslicing: drops the
		// DPrune field the solver never reads, and never pins the source's
		// wider backing array.
		packed := make([]indexPair, len(row))
		for i, p := range row {
			packed[i] = indexPair{v: p.V, bound: p.Bound, d: p.D}
		}
		fs.rows[u] = packed
		total.Add(int64(len(packed)))
	}
	// The build dominates construction cost with a lazy source (one sweep
	// per live row), so poll the context between row batches; an aborted
	// build discards the partial index with the returned error.
	const ctxEvery = 64
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if n < wdParallelThreshold || workers <= 1 {
		for u := 0; u < n; u++ {
			if u%ctxEvery == 0 && ctx.Err() != nil {
				return ctx.Err()
			}
			buildRow(u)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for done := 0; ; done++ {
					if done%ctxEvery == 0 && ctx.Err() != nil {
						return
					}
					u := int(next.Add(1)) - 1
					if u >= n {
						return
					}
					buildRow(u)
				}
			}()
		}
		wg.Wait()
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	fs.stats.IndexPairs = total.Load()
	return nil
}

// Stats returns the accumulated probe counters.
func (fs *FeasSolver) Stats() ProbeStats { return fs.stats }

// materialize appends every not-yet-live index pair with D > fT to the
// adjacency lists. Appended suffixes are re-sorted so each list stays in
// descending-d order (existing entries all have d above the previous
// watermark, new ones at or below it).
func (fs *FeasSolver) materialize(fT float64) {
	if fT >= fs.matFloor {
		return
	}
	fs.matEpoch++
	fs.touched = fs.touched[:0]
	for u := range fs.rows {
		row := fs.rows[u]
		j := int(fs.rowNext[u])
		if j >= len(row) || row[j].d <= fT {
			continue
		}
		for ; j < len(row) && row[j].d > fT; j++ {
			v := row[j].v
			if fs.touchStamp[v] != fs.matEpoch {
				fs.touchStamp[v] = fs.matEpoch
				fs.touchLen[v] = int32(len(fs.arcs[v]))
				fs.touched = append(fs.touched, v)
			}
			fs.arcs[v] = append(fs.arcs[v], feasArc{u: int32(u), bound: row[j].bound, d: row[j].d})
			fs.stats.PairsActivated++
		}
		fs.rowNext[u] = int32(j)
	}
	for _, v := range fs.touched {
		suffix := fs.arcs[v][fs.touchLen[v]:]
		sort.Slice(suffix, func(i, j int) bool {
			if suffix[i].d != suffix[j].d {
				return suffix[i].d > suffix[j].d
			}
			return suffix[i].u < suffix[j].u
		})
	}
	fs.matFloor = fT
}

// arcPrefix returns the number of leading arcs of list a active at
// threshold fT (lists are d-descending, so the active set is a prefix).
func arcPrefix(a []feasArc, fT float64) int {
	lo, hi := 0, len(a)
	for lo < hi {
		mid := (lo + hi) / 2
		if a[mid].d > fT {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// activeLen is arcPrefix for the current probe's threshold, cached per
// vertex per probe (the SPFA loop revisits vertices).
func (fs *FeasSolver) activeLen(v int, fT float64) int {
	if fs.prefixEpoch[v] == fs.epoch {
		return int(fs.prefixLen[v])
	}
	p := arcPrefix(fs.arcs[v], fT)
	fs.prefixLen[v] = int32(p)
	fs.prefixEpoch[v] = fs.epoch
	return p
}

// reset discards the warm labeling, returning the solver to the trivial
// top (all-zero labels, feasible for the base arcs alone). Needed only
// when a probe asks about a period above the last feasible one — a
// pattern the binary search never produces.
func (fs *FeasSolver) reset() {
	for i := range fs.x {
		fs.x[i] = 0
	}
	fs.tCur = math.Inf(1)
	fs.fCur = math.Inf(1)
	fs.stats.Resets++
}

// Probe reports whether period T is achievable by retiming, returning a
// realizing labeling (normalized like Feasible: pinned vertices at zero)
// when it is. Verdicts and labelings are identical to the cold
// BuildConstraintsWD+Feasible path. T must be at least the solver's floor;
// non-positive or NaN T reports infeasible, matching the cold path's
// ErrInfeasible handling in the period search.
func (fs *FeasSolver) Probe(T float64) (r []int, feasible bool, err error) {
	if T < fs.tfloor {
		return nil, false, fmt.Errorf("retime: probe at %g below solver floor %g", T, fs.tfloor)
	}
	fs.stats.Probes++
	if math.IsNaN(T) || T <= 0 {
		return nil, false, nil
	}
	fT := activation(T)
	if fs.maxDelay > fT {
		// Some single vertex already exceeds T; no retiming fixes that.
		return nil, false, nil
	}
	if fs.witnessMinD > fT {
		// A recorded negative cycle stays fully active at T.
		fs.stats.WitnessRejects++
		return nil, false, nil
	}
	if fT > fs.fCur {
		fs.reset()
	} else if !math.IsInf(fs.fCur, 1) {
		fs.stats.Warm++
	}
	fs.materialize(fT)
	n := fs.rg.N()
	fs.epoch++
	fs.wl.Reset()
	copy(fs.xSnap, fs.x)
	for i := range fs.parent {
		fs.parent[i] = -1
		fs.plen[i] = 0
	}
	relax := func(v int, a feasArc) {
		fs.x[a.u] = fs.x[v] + int(a.bound)
		fs.parent[a.u] = int32(v)
		fs.parentD[a.u] = a.d
		fs.parentB[a.u] = a.bound
		fs.stats.Relaxations++
		fs.wl.Push(int(a.u))
	}
	// Seed: scan the constraints whose activation status changed between
	// the warm threshold and this probe — indices in (prefix(fCur),
	// prefix(fT)) of each list — and relax the violated ones. The warm
	// labeling already satisfies everything active at fCur.
	for v := 0; v < n; v++ {
		a := fs.arcs[v]
		lo := arcPrefix(a, fs.fCur)
		hi := fs.activeLen(v, fT)
		fs.stats.PairsScanned += int64(hi - lo)
		for i := lo; i < hi; i++ {
			if nd := fs.x[v] + int(a[i].bound); nd < fs.x[a[i].u] {
				relax(v, a[i])
				fs.plen[a[i].u] = fs.plen[v] + 1
			}
		}
	}
	// SPFA from the violated frontier, with early negative-cycle
	// detection: a periodic parent-forest walk plus a relaxation-walk
	// length bound (see graph.SolveDifferenceIntSPFA for the scheme).
	checkEvery := n
	if checkEvery < 64 {
		checkEvery = 64
	}
	sinceCheck := 0
	for {
		v, ok := fs.wl.Pop()
		if !ok {
			break
		}
		a := fs.arcs[v]
		pl := fs.activeLen(v, fT)
		xv, pv := fs.x[v], fs.plen[v]
		for i := 0; i < pl; i++ {
			if nd := xv + int(a[i].bound); nd < fs.x[a[i].u] {
				relax(v, a[i])
				sinceCheck++
				if fs.plen[a[i].u] = pv + 1; fs.plen[a[i].u] > int32(n) {
					if cyc := graph.FindParentCycle(fs.parent); cyc != nil {
						fs.recordWitness(cyc)
						copy(fs.x, fs.xSnap)
						return nil, false, nil
					}
					fs.plen[a[i].u] = forestDepth(fs.parent, a[i].u)
					sinceCheck = 0
				}
			}
		}
		if sinceCheck >= checkEvery {
			sinceCheck = 0
			if cyc := graph.FindParentCycle(fs.parent); cyc != nil {
				fs.recordWitness(cyc)
				copy(fs.x, fs.xSnap)
				return nil, false, nil
			}
		}
	}
	fs.tCur, fs.fCur = T, fT
	out := make([]int, n)
	copy(out, fs.x)
	normalize(fs.rg, out)
	return out, true, nil
}

// recordWitness extracts the period-rejection witness of a violated
// constraint cycle: the smallest activation d among its constraints. The
// cycle's bounds are period-independent, so any period whose activation
// threshold lies below that d keeps the whole cycle live and negative —
// later probes there are infeasible with no solve at all.
func (fs *FeasSolver) recordWitness(cyc []int32) {
	minD := math.Inf(1)
	sum := 0
	for _, v := range cyc {
		if fs.parentD[v] < minD {
			minD = fs.parentD[v]
		}
		sum += int(fs.parentB[v])
	}
	if sum >= 0 {
		// A parent cycle of strict relaxations is always negative; guard
		// the witness anyway so a broken invariant can't reject feasible
		// periods.
		panic("retime: non-negative parent cycle (internal error)")
	}
	if minD > fs.witnessMinD {
		fs.witnessMinD = minD
	}
}

// forestDepth returns the arc count from u to its root in an acyclic
// parent forest (the deflation step of the walk-length bound).
func forestDepth(parent []int32, u int32) int32 {
	var d int32
	for v := parent[u]; v >= 0; v = parent[v] {
		d++
	}
	return d
}
