package retime

import (
	"errors"
	"math"
	"math/rand"
	"os"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"lacret/internal/bench89"
)

// coldProbe is the from-scratch feasibility oracle the incremental solver
// must match bit-for-bit: rebuild the full constraint system at T and run
// the solver cold. Build errors (invalid T, vertex delay above T) are the
// infeasible verdict, exactly as the pre-solver period search treated them.
func coldProbe(rg *Graph, wd *WD, T float64) (r []int, ok bool) {
	cs, err := rg.BuildConstraintsWD(T, wd)
	if err != nil {
		return nil, false
	}
	return cs.Feasible(rg)
}

// coldMinPeriodWD re-implements the period search exactly as it ran before
// the incremental solver existed — cold probes, same bracket logic — as the
// bit-identity oracle for the full search.
func coldMinPeriodWD(rg *Graph, eps float64, wd *WD) (float64, []int, error) {
	if eps <= 0 {
		eps = 1e-4
	}
	hi, err := rg.Period()
	if err != nil {
		return 0, nil, err
	}
	lo := 0.0
	for v := 0; v < rg.N(); v++ {
		if rg.delay[v] > lo {
			lo = rg.delay[v]
		}
	}
	if hi < lo {
		hi = lo
	}
	bestT := hi
	bestR := make([]int, rg.N())
	probe := func(T float64) bool {
		labels, ok := coldProbe(rg, wd, T)
		if !ok {
			return false
		}
		applied, err := rg.Apply(labels)
		if err != nil {
			return false
		}
		p, err := applied.Period()
		if err != nil {
			return false
		}
		if p < bestT {
			bestT, bestR = p, labels
		}
		return true
	}
	probe(lo)
	for bestT-lo > eps {
		mid := (lo + bestT) / 2
		if !probe(mid) {
			lo = mid
		} else if bestT > mid+periodEps {
			break
		}
	}
	if err := rg.CheckFeasible(bestR, bestT); err != nil {
		return 0, nil, err
	}
	return bestT, bestR, nil
}

func bench89Graph(tb testing.TB, name string) *Graph {
	tb.Helper()
	p, ok := bench89.ByName(name)
	if !ok {
		tb.Fatalf("no catalog circuit %q", name)
	}
	nl, err := bench89.Generate(p)
	if err != nil {
		tb.Fatal(err)
	}
	nl.AssignUniform(1.0, 5.0)
	col, err := nl.Collapse()
	if err != nil {
		tb.Fatal(err)
	}
	rg, _, err := FromCollapsed(nl, col)
	if err != nil {
		tb.Fatal(err)
	}
	return rg
}

func labelsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// checkProbeSequence drives one FeasSolver through the given periods and
// asserts verdict and labeling agree exactly with the cold oracle at every
// step.
func checkProbeSequence(t *testing.T, rg *Graph, probes []float64) {
	t.Helper()
	wd := rg.WDMatrices()
	src, err := NewDenseSource(rg, wd, 0)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := NewFeasSolver(rg, src, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, T := range probes {
		warmR, warmOK, err := fs.Probe(T)
		if err != nil {
			t.Fatalf("probe %d at %g: %v", i, T, err)
		}
		coldR, coldOK := coldProbe(rg, wd, T)
		if warmOK != coldOK {
			t.Fatalf("probe %d at %g: warm=%v cold=%v (stats %+v)", i, T, warmOK, coldOK, fs.Stats())
		}
		if warmOK && !labelsEqual(warmR, coldR) {
			t.Fatalf("probe %d at %g: warm labels %v != cold %v", i, T, warmR, coldR)
		}
	}
}

// TestFeasSolverMatchesColdRandom: on random graphs, arbitrary probe
// sequences — descending (the real search), ascending (forces resets), and
// shuffled — give verdicts and labelings identical to cold solves.
func TestFeasSolverMatchesColdRandom(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rg := randomGraph(rng, 4+rng.Intn(6), seed%2 == 0)
		p, err := rg.Period()
		if err != nil {
			return false
		}
		var probes []float64
		for k := 0; k <= 10; k++ {
			probes = append(probes, p*(1.1-float64(k)*0.11))
		}
		for k := 0; k < 6; k++ {
			probes = append(probes, rng.Float64()*p*1.2)
		}
		checkProbeSequence(t, rg, probes)
		return !t.Failed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestFeasSolverMatchesColdBench89: the same equivalence on realistic
// circuit structures (collapsed synthetic ISCAS89 graphs).
func TestFeasSolverMatchesColdBench89(t *testing.T) {
	for _, name := range []string{"s386", "s400", "s526"} {
		t.Run(name, func(t *testing.T) {
			rg := bench89Graph(t, name)
			p, err := rg.Period()
			if err != nil {
				t.Fatal(err)
			}
			var probes []float64
			for k := 0; k <= 12; k++ {
				probes = append(probes, p*(1.0-float64(k)*0.08))
			}
			probes = append(probes, p*0.7, p*0.95, p*0.2) // non-monotone tail
			checkProbeSequence(t, rg, probes)
		})
	}
}

// TestMinPeriodMatchesColdSearch: the full incremental search lands on the
// exact same period and labeling as the pre-solver cold search — the
// bit-identity guarantee behind the golden plan outputs.
func TestMinPeriodMatchesColdSearch(t *testing.T) {
	check := func(t *testing.T, rg *Graph) {
		t.Helper()
		wd := rg.WDMatrices()
		wantT, wantR, wantErr := coldMinPeriodWD(rg, 1e-3, wd)
		gotT, gotR, err := rg.MinPeriodWD(1e-3, wd)
		if (err != nil) != (wantErr != nil) {
			t.Fatalf("err=%v cold err=%v", err, wantErr)
		}
		if err != nil {
			return
		}
		if gotT != wantT {
			t.Fatalf("T=%v cold=%v", gotT, wantT)
		}
		if !labelsEqual(gotR, wantR) {
			t.Fatalf("labels %v != cold %v", gotR, wantR)
		}
	}
	t.Run("random", func(t *testing.T) {
		for seed := int64(0); seed < 40; seed++ {
			rng := rand.New(rand.NewSource(seed))
			check(t, randomGraph(rng, 4+rng.Intn(6), seed%2 == 0))
		}
	})
	for _, name := range []string{"s386", "s400"} {
		t.Run(name, func(t *testing.T) {
			check(t, bench89Graph(t, name))
		})
	}
}

// TestFeasSolverWarmStats: the descending probe sequence of a real search
// reports warm probes (regression guard on the counter plumbing).
func TestFeasSolverWarmStats(t *testing.T) {
	rg := bench89Graph(t, "s400")
	wd := rg.WDMatrices()
	_, _, stats, err := rg.MinPeriodWDStatsContext(t.Context(), 1e-3, wd)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Probes == 0 {
		t.Fatal("no probes recorded")
	}
	if stats.Warm == 0 {
		t.Fatalf("search ran with zero warm probes: %+v", stats)
	}
	if stats.Resets != 0 {
		t.Fatalf("monotone search should never reset: %+v", stats)
	}
	if stats.IndexPairs == 0 || stats.PairsActivated > stats.IndexPairs {
		t.Fatalf("implausible index stats: %+v", stats)
	}
}

// TestProbeApplyErrorPropagates: an internal failure while realizing a
// feasible probe labeling must surface as an error from the search, not be
// folded into an "infeasible" verdict that corrupts the bracket invariant.
// The failure is injected through the applyForProbe seam because the public
// API cannot reach it (edge+pin constraints guarantee Apply succeeds on any
// labeling Feasible returns).
func TestProbeApplyErrorPropagates(t *testing.T) {
	orig := applyForProbe
	defer func() { applyForProbe = orig }()
	boom := errors.New("injected apply failure")
	applyForProbe = func(rg *Graph, r []int) (*Graph, error) { return nil, boom }

	// ring(3,1,3) retimes to period 1 = the search floor, so the very first
	// probe is feasible and hits the injected failure.
	rg := ring(3, 1, 3)
	_, _, err := rg.MinPeriod(1e-3)
	if err == nil {
		t.Fatal("injected Apply failure was swallowed")
	}
	if !errors.Is(err, boom) {
		t.Fatalf("error %v does not wrap the injected failure", err)
	}
	if !strings.Contains(err.Error(), "applying probe labeling") {
		t.Fatalf("unexpected error text: %v", err)
	}
}

// TestWDRowFastPathMatchesGeneral: the out-degree-0 fast path of wdRow must
// produce the same row as the general sweep — in particular, unreachable
// destinations carry D = -Inf, not 0.
func TestWDRowFastPathMatchesGeneral(t *testing.T) {
	build := func(selfLoop bool) *Graph {
		rg := NewGraph()
		a := rg.AddVertex("a", KindUnit, 2)
		b := rg.AddVertex("b", KindUnit, 3)
		s := rg.AddVertex("s", KindUnit, 1) // sink: out-degree 0
		rg.AddVertex("iso", KindUnit, 4)    // unreachable either way
		rg.AddEdge(a, b, 1)
		rg.AddEdge(b, s, 0)
		rg.AddEdge(b, a, 1)
		if selfLoop {
			// A registered self-loop flips s onto the general sweep without
			// making any other vertex reachable from it.
			rg.AddEdge(s, s, 1)
		}
		return rg
	}
	fast := build(false).WDMatrices()
	general := build(true).WDMatrices()
	const s = 2
	for v := 0; v < fast.N; v++ {
		if fast.W[s][v] != general.W[s][v] {
			t.Fatalf("W[s][%d]: fast=%d general=%d", v, fast.W[s][v], general.W[s][v])
		}
		if fast.D[s][v] != general.D[s][v] {
			t.Fatalf("D[s][%d]: fast=%g general=%g", v, fast.D[s][v], general.D[s][v])
		}
	}
	for v := 0; v < fast.N; v++ {
		if v == s {
			continue
		}
		if !math.IsInf(fast.D[s][v], -1) {
			t.Fatalf("unreachable D[s][%d]=%g, want -Inf", v, fast.D[s][v])
		}
	}
}

// TestFeasibleInfeasibleSystem: a constraint system with a negative cycle
// is reported infeasible (exercising the early-exit SPFA path behind
// solveDiffInt).
func TestFeasibleInfeasibleSystem(t *testing.T) {
	rg := ring(2, 1, 1)
	cs := &Constraints{N: 2, Cons: []Constraint{
		{U: 0, V: 1, Bound: -1},
		{U: 1, V: 0, Bound: -1},
	}}
	if _, ok := cs.Feasible(rg); ok {
		t.Fatal("negative-cycle system reported feasible")
	}
}

// TestFeasibleStatsReusesArrays: repeated probes against one built system
// must not rebuild the solver-layout triple arrays.
func TestFeasibleStatsReusesArrays(t *testing.T) {
	rg := bench89Graph(t, "s386")
	wd := rg.WDMatrices()
	T, _, err := rg.MinPeriodWD(1e-3, wd)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := rg.BuildConstraintsWD(T*1.05, wd)
	if err != nil {
		t.Fatal(err)
	}
	us1, _, _ := cs.solverArrays()
	us2, _, _ := cs.solverArrays()
	if len(us1) > 0 && &us1[0] != &us2[0] {
		t.Fatal("solverArrays rebuilt the cached triple")
	}
	if _, ok := cs.Feasible(rg); !ok {
		t.Fatal("system at 1.05*Tmin should be feasible")
	}
	// Alloc guard: a warm repeat allocates only the solver's own scratch
	// (labeling, adjacency, worklist) — a fixed count independent of the
	// constraint count, and strictly below the old path which also built
	// the three len(Cons)-sized triple arrays every call.
	allocs := testing.AllocsPerRun(20, func() {
		if _, ok := cs.Feasible(rg); !ok {
			t.Fatal("probe flipped to infeasible")
		}
	})
	if allocs > 10 {
		t.Fatalf("FeasibleStats allocates %v objects per probe, want <= 10", allocs)
	}
}

func BenchmarkFeasibleStats(b *testing.B) {
	rg := bench89Graph(b, "s953")
	wd := rg.WDMatrices()
	T, _, err := rg.MinPeriodWD(1e-3, wd)
	if err != nil {
		b.Fatal(err)
	}
	cs, err := rg.BuildConstraintsWD(T*1.05, wd)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := cs.Feasible(rg); !ok {
			b.Fatal("infeasible")
		}
	}
}

// TestWarmProbeSmokeS953: the incremental search on s953 beats a cold
// search probing the same periods. Wall-clock comparisons are noisy, so the
// test is opt-in (LACRET_SMOKE=1; CI runs it in the benchmark-smoke step).
func TestWarmProbeSmokeS953(t *testing.T) {
	if os.Getenv("LACRET_SMOKE") != "1" {
		t.Skip("set LACRET_SMOKE=1 to run the warm-vs-cold smoke comparison")
	}
	rg := bench89Graph(t, "s953")
	wd := rg.WDMatrices()
	run := func(f func()) time.Duration {
		best := time.Duration(math.MaxInt64)
		for i := 0; i < 3; i++ {
			start := time.Now()
			f()
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}
	var warmT, coldT float64
	warm := run(func() {
		T, _, err := rg.MinPeriodWD(1e-3, wd)
		if err != nil {
			t.Fatal(err)
		}
		warmT = T
	})
	cold := run(func() {
		T, _, err := coldMinPeriodWD(rg, 1e-3, wd)
		if err != nil {
			t.Fatal(err)
		}
		coldT = T
	})
	if warmT != coldT {
		t.Fatalf("warm Tmin %v != cold %v", warmT, coldT)
	}
	t.Logf("s953 min-period search: warm %v vs cold %v (%.1fx)", warm, cold, float64(cold)/float64(warm))
	if warm >= cold {
		t.Fatalf("warm search (%v) did not beat cold search (%v)", warm, cold)
	}
}
