package retime

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
)

// maxVertexDelay mirrors the period search's lower bracket end.
func maxVertexDelay(rg *Graph) float64 {
	lo := 0.0
	for v := 0; v < rg.N(); v++ {
		if d := rg.Delay(v); d > lo {
			lo = d
		}
	}
	return lo
}

func rowsEqual(a, b []SourcePair) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestDenseLazyRowsEqual pins the tentpole's bit-identity claim at the row
// level: at the same floor, the dense adapter and the lazy sweep engine
// serve identical SourcePair rows (same pairs, same order, same D and
// DPrune values) on random graphs.
func TestDenseLazyRowsEqual(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		rg := randomGraph(rng, 4+rng.Intn(8), seed%2 == 0)
		wd := rg.WDMatrices()
		for _, floor := range []float64{0, maxVertexDelay(rg)} {
			dense, err := NewDenseSource(rg, wd, floor)
			if err != nil {
				t.Fatal(err)
			}
			lazy := NewLazySource(rg, floor, 0)
			if dense.N() != lazy.N() || dense.Floor() != lazy.Floor() {
				t.Fatalf("seed %d: source metadata mismatch", seed)
			}
			for u := 0; u < rg.N(); u++ {
				dr, lr := dense.Row(u), lazy.Row(u)
				if !rowsEqual(dr, lr) {
					t.Fatalf("seed %d floor %g: row %d differs:\ndense %v\nlazy  %v",
						seed, floor, u, dr, lr)
				}
			}
			// Cached rows must be identical on a second read too.
			for u := 0; u < rg.N(); u++ {
				if !rowsEqual(dense.Row(u), lazy.Row(u)) {
					t.Fatalf("seed %d floor %g: cached row %d differs", seed, floor, u)
				}
			}
		}
	}
}

// TestLazyConstraintsMatchDense: the full constraint system generated
// through the lazy engine equals the dense BuildConstraintsWD system at
// every tested period — the LAC loop and the constraints stage see the
// same inputs whichever engine planned the periods.
func TestLazyConstraintsMatchDense(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		rg := randomGraph(rng, 5+rng.Intn(6), seed%2 == 1)
		wd := rg.WDMatrices()
		floor := maxVertexDelay(rg)
		lazy := NewLazySource(rg, floor, 0)
		p, err := rg.Period()
		if err != nil {
			t.Fatal(err)
		}
		for _, T := range []float64{floor, (floor + p) / 2, p, p * 1.5} {
			want, werr := rg.BuildConstraintsWD(T, wd)
			got, gerr := rg.BuildConstraintsFrom(T, lazy)
			if (werr == nil) != (gerr == nil) {
				t.Fatalf("seed %d T=%g: dense err %v, lazy err %v", seed, T, werr, gerr)
			}
			if werr != nil {
				continue
			}
			if len(want.Cons) != len(got.Cons) {
				t.Fatalf("seed %d T=%g: %d dense constraints, %d lazy", seed, T, len(want.Cons), len(got.Cons))
			}
			for i := range want.Cons {
				if want.Cons[i] != got.Cons[i] {
					t.Fatalf("seed %d T=%g: constraint %d: dense %+v lazy %+v",
						seed, T, i, want.Cons[i], got.Cons[i])
				}
			}
			if want.ClockCount != got.ClockCount || want.EdgeCount != got.EdgeCount || want.PinCount != got.PinCount {
				t.Fatalf("seed %d T=%g: count mismatch dense %+v lazy %+v", seed, T, want, got)
			}
		}
	}
}

// TestLazyMinPeriodMatchesDense: the whole search — Tmin and the realizing
// labeling — is bit-identical across engines on random graphs.
func TestLazyMinPeriodMatchesDense(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		rg := randomGraph(rng, 4+rng.Intn(7), seed%3 == 0)
		wd := rg.WDMatrices()
		wantT, wantR, err := rg.MinPeriodWD(1e-3, wd)
		if err != nil {
			t.Fatal(err)
		}
		lazy := NewLazySource(rg, maxVertexDelay(rg), 0)
		gotT, gotR, _, err := rg.MinPeriodSourceStatsContext(context.Background(), 1e-3, lazy)
		if err != nil {
			t.Fatal(err)
		}
		if gotT != wantT {
			t.Fatalf("seed %d: lazy Tmin %g != dense %g", seed, gotT, wantT)
		}
		if !labelsEqual(gotR, wantR) {
			t.Fatalf("seed %d: lazy labeling %v != dense %v", seed, gotR, wantR)
		}
	}
}

// TestLazyMinPeriodMatchesDenseBench89 repeats the search equivalence on
// realistic collapsed circuit structures.
func TestLazyMinPeriodMatchesDenseBench89(t *testing.T) {
	for _, name := range []string{"s386", "s400"} {
		t.Run(name, func(t *testing.T) {
			rg := bench89Graph(t, name)
			wantT, wantR, err := rg.MinPeriodWD(1e-3, rg.WDMatrices())
			if err != nil {
				t.Fatal(err)
			}
			lazy := NewLazySource(rg, maxVertexDelay(rg), 0)
			gotT, gotR, _, err := rg.MinPeriodSourceStatsContext(context.Background(), 1e-3, lazy)
			if err != nil {
				t.Fatal(err)
			}
			if gotT != wantT || !labelsEqual(gotR, wantR) {
				t.Fatalf("lazy (T=%g) != dense (T=%g)", gotT, wantT)
			}
		})
	}
}

// TestLazyCacheEviction squeezes the row cache to a handful of pairs: rows
// must survive eviction (recomputed sweeps still bit-identical), and the
// accounting must register the evictions.
func TestLazyCacheEviction(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	rg := randomGraph(rng, 12, false)
	wd := rg.WDMatrices()
	dense, err := NewDenseSource(rg, wd, 0)
	if err != nil {
		t.Fatal(err)
	}
	lazy := NewLazySource(rg, 0, 4) // ~one small row per shard
	for pass := 0; pass < 3; pass++ {
		for u := 0; u < rg.N(); u++ {
			if !rowsEqual(dense.Row(u), lazy.Row(u)) {
				t.Fatalf("pass %d: row %d differs after eviction pressure", pass, u)
			}
		}
	}
	mem := lazy.Mem()
	if mem.Evictions == 0 {
		t.Fatalf("no evictions under a 4-pair budget: %+v", mem)
	}
	if mem.CachedPairs < 0 || mem.CachedRows < 0 {
		t.Fatalf("negative cache accounting: %+v", mem)
	}
	if mem.Sweeps == 0 {
		t.Fatalf("no sweeps recorded: %+v", mem)
	}
}

// TestLazySourceAbandonsPeriphery: with the floor at the maximum vertex
// delay, sources whose every outgoing path stays at or below the floor
// (sinks, shallow periphery) are answered without any sweep.
func TestLazySourceAbandonsPeriphery(t *testing.T) {
	rg := NewGraph()
	a := rg.AddVertex("a", KindUnit, 5) // the max-delay vertex
	b := rg.AddVertex("b", KindUnit, 1)
	c := rg.AddVertex("c", KindUnit, 1) // sink: no outgoing path
	rg.AddEdge(a, b, 1)
	rg.AddEdge(b, a, 1)
	rg.AddEdge(b, c, 1)
	lazy := NewLazySource(rg, maxVertexDelay(rg), 0)
	if row := lazy.Row(c); row != nil {
		t.Fatalf("sink row = %v, want nil", row)
	}
	if mem := lazy.Mem(); mem.Abandoned == 0 || mem.Sweeps != 0 {
		t.Fatalf("expected an abandoned source and no sweeps, got %+v", mem)
	}
	// a and b reach the cycle: suffix +Inf, never abandoned.
	lazy.Row(a)
	if mem := lazy.Mem(); mem.Sweeps == 0 {
		t.Fatalf("cyclic-core source did not sweep: %+v", mem)
	}
}

// TestDenseSourceMem: the dense engine reports its matrix footprint.
func TestDenseSourceMem(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	rg := randomGraph(rng, 10, false)
	wd := rg.WDMatrices()
	src, err := NewDenseSource(rg, wd, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := int64(rg.N()) * int64(rg.N()) * 12
	if got := src.Mem().DenseBytes; got != want {
		t.Fatalf("DenseBytes = %d, want %d", got, want)
	}
	if src.EngineName() != "dense" {
		t.Fatalf("EngineName = %q", src.EngineName())
	}
	if src.MaxDBound() != wd.MaxD() {
		t.Fatalf("MaxDBound %g != MaxD %g", src.MaxDBound(), wd.MaxD())
	}
}

// TestLazyMaxDBound: the bound covers every finite D the dense matrices
// hold (it is +Inf whenever a vertex reaches a cycle).
func TestLazyMaxDBound(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		rg := randomGraph(rng, 4+rng.Intn(6), false)
		lazy := NewLazySource(rg, 0, 0)
		bound := lazy.MaxDBound()
		wd := rg.WDMatrices()
		if m := wd.MaxD(); m > bound && !math.IsInf(bound, 1) {
			t.Fatalf("seed %d: MaxD %g exceeds bound %g", seed, m, bound)
		}
		if lazy.EngineName() != "lazy" {
			t.Fatalf("EngineName = %q", lazy.EngineName())
		}
	}
}

// TestLazyMinPeriodBudgetAbortsIndexBuild: an expired context stops the
// search during solver construction — with a lazy source, the index build
// is the bulk of the sweep work — and degrades to the zero-probe partial
// (Hi = the unretimed period) instead of sweeping on past the deadline.
func TestLazyMinPeriodBudgetAbortsIndexBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	rg := randomGraph(rng, 12, true)
	src := NewLazySource(rg, maxVertexDelay(rg), 0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, _, err := rg.MinPeriodSourceStatsContext(ctx, 1e-3, src)
	var beb *ErrBudgetExceeded
	if !errors.As(err, &beb) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	if beb.Partial.Probes != 0 {
		t.Fatalf("probes = %d, want 0", beb.Partial.Probes)
	}
	p, perr := rg.Period()
	if perr != nil {
		t.Fatal(perr)
	}
	if beb.Partial.Hi != p {
		t.Fatalf("partial Hi = %g, want unretimed period %g", beb.Partial.Hi, p)
	}
	if got := src.Mem().Sweeps; got != 0 {
		t.Fatalf("aborted build ran %d sweeps", got)
	}
}

// TestLazyCacheScaleSheds drops the process-wide cache scale and verifies
// the shards shed down to the reduced budget on their next insertions —
// still serving bit-identical rows — then restores full budget behavior
// when the scale returns to 100.
func TestLazyCacheScaleSheds(t *testing.T) {
	defer SetLazyCacheScale(100)
	rng := rand.New(rand.NewSource(3))
	rg := randomGraph(rng, 16, false)
	wd := rg.WDMatrices()
	dense, err := NewDenseSource(rg, wd, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Ample at full scale (nothing evicts) but small enough that 1% of it
	// is below the resident pair count, so the shed has real work to do.
	lazy := NewLazySource(rg, 0, 2048)
	for u := 0; u < rg.N(); u++ {
		lazy.Row(u)
	}
	before := lazy.Mem()
	if before.Evictions != 0 {
		t.Fatalf("evictions under an ample budget: %+v", before)
	}
	if before.CachedPairs == 0 {
		t.Skip("graph produced no cacheable pairs")
	}

	if prev := SetLazyCacheScale(0); prev != 100 {
		t.Fatalf("previous scale = %d, want 100", prev)
	}
	if LazyCacheScale() != 1 {
		t.Fatalf("scale = %d after clamped set, want 1", LazyCacheScale())
	}
	// Re-touch every row: evicted rows recompute, and every insertion
	// evicts down to ~1 pair per shard.
	for u := 0; u < rg.N(); u++ {
		if !rowsEqual(dense.Row(u), lazy.Row(u)) {
			t.Fatalf("row %d differs under shed budget", u)
		}
	}
	after := lazy.Mem()
	if after.Evictions == 0 {
		t.Fatalf("no evictions after shedding to 1%%: %+v", after)
	}
	if after.CachedPairs >= before.CachedPairs {
		t.Fatalf("cache did not shrink: %d -> %d pairs", before.CachedPairs, after.CachedPairs)
	}

	if prev := SetLazyCacheScale(100); prev != 1 {
		t.Fatalf("previous scale = %d, want 1", prev)
	}
	evBase := lazy.Mem().Evictions
	for u := 0; u < rg.N(); u++ {
		if !rowsEqual(dense.Row(u), lazy.Row(u)) {
			t.Fatalf("row %d differs after budget restore", u)
		}
	}
	if ev := lazy.Mem().Evictions; ev != evBase {
		t.Fatalf("evictions after restoring scale 100: %d -> %d", evBase, ev)
	}
}
