package retime

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// SourcePair is one candidate clock-constraint pair served by a
// ConstraintSource: for source u and destination V, the clock constraint
// r(u) − r(V) ≤ Bound (= W(u,V) − 1) activates at period T iff
// D > activation(T).
//
// DPrune folds in the dominance rule of ClockConstraints: it is the
// largest D(u,v') over W-tight in-edges (v',V) when that value exceeds the
// source's cut, and −Inf otherwise (below the cut the exact value can never
// matter: every probe-able period's activation threshold is at least the
// cut, so the dominating pair is inactive there regardless). A consumer at
// period T drops the pair as implied iff DPrune > activation(T); a consumer
// covering every period at once (the FeasSolver index) never sees dominated-
// wherever-active pairs at all, because rows exclude pairs with D ≤ DPrune.
type SourcePair struct {
	V      int32
	Bound  int32
	D      float64
	DPrune float64
}

// SourceMem is a ConstraintSource's memory/work accounting, surfaced as obs
// gauges and stage counters.
type SourceMem struct {
	// DenseBytes is the resident W/D matrix footprint (dense engine only).
	DenseBytes int64
	// CachedRows / CachedPairs size the lazy engine's row cache.
	CachedRows  int64
	CachedPairs int64
	// Evictions counts rows dropped from the cache to stay in budget.
	Evictions int64
	// Sweeps counts per-source W/D sweeps run; Abandoned counts sources
	// skipped outright by the delay-pruned frontier (no path can exceed
	// the cut); Hits counts rows served from the cache.
	Sweeps    int64
	Abandoned int64
	Hits      int64
}

// ConstraintSource serves the W/D dependence of retiming row by row: for a
// source vertex u, the register-minimal pairs whose clock constraint can
// activate at some period above the source's floor, ready for constraint
// generation (ClockConstraintsFrom) and for the FeasSolver's D-sorted
// activation index. It also bounds the period search: no period at or
// below Floor() can be asked about, and no finite D exceeds MaxDBound(),
// so Tmin candidates live in (Floor(), MaxDBound() ∪ {unretimed period}].
//
// Implementations: the dense W/D matrices (NewDenseSource) and the lazy
// on-demand per-source sweep engine (NewLazySource).
type ConstraintSource interface {
	// N is the vertex count of the graph the source was built for.
	N() int
	// Floor is the period floor: rows contain exactly the pairs with
	// D > activation(Floor()). Consumers must not ask about periods
	// below it.
	Floor() float64
	// Row returns source u's candidate pairs, sorted by D descending
	// (V ascending at ties), excluding self-pairs, unreachable
	// destinations, pairs at or below the floor's activation threshold,
	// and pairs dominated at every period where they are active
	// (D ≤ DPrune). The returned slice is shared — callers must not
	// modify it. Row is safe for concurrent use.
	Row(u int) []SourcePair
	// MaxDBound is an upper bound on every finite D value: no clock
	// constraint exists above it.
	MaxDBound() float64
	// Mem reports the source's memory/work accounting.
	Mem() SourceMem
	// EngineName identifies the implementation ("dense" or "lazy") for
	// reports and traces.
	EngineName() string
}

// appendRowPair applies the shared per-destination candidate test and
// appends the qualifying pair: destination v of source u with labels
// (wv, dv), where wd supplies the (W, D) labels of u's row for the
// dominance scan over v's in-edges. Both engines funnel through this so
// their rows are bit-identical by construction.
func appendRowPair(rg *Graph, row []SourcePair, u, v int, wv int32, dv float64, cut float64,
	wd func(x int) (int32, float64)) []SourcePair {
	if v == u || wv < 0 || dv <= cut {
		return row
	}
	dprune := math.Inf(-1)
	for _, ei := range rg.g.In(v) {
		e := rg.g.Edge(ei)
		vp := e.From
		if vp == v || vp == u {
			continue
		}
		if wp, dp := wd(vp); wp >= 0 && wp+int32(e.W) == wv && dp > dprune {
			dprune = dp
		}
	}
	if dv <= dprune {
		return row
	}
	if dprune <= cut {
		// Below the cut the dominating pair can never be active, and the
		// lazy engine's frontier pruning may understate D values in that
		// range; clamping keeps the two engines' rows identical and the
		// consumers' verdicts unchanged.
		dprune = math.Inf(-1)
	}
	return append(row, SourcePair{V: int32(v), Bound: wv - 1, D: dv, DPrune: dprune})
}

// sortRow orders a row by D descending, V ascending at ties — the
// deterministic activation order the FeasSolver materializes in.
func sortRow(row []SourcePair) {
	sort.Slice(row, func(i, j int) bool {
		if row[i].D != row[j].D {
			return row[i].D > row[j].D
		}
		return row[i].V < row[j].V
	})
}

// rowPrefixAbove returns the number of leading pairs with D > cut (rows are
// D-descending, so the qualifying set is a prefix).
func rowPrefixAbove(row []SourcePair, cut float64) int {
	lo, hi := 0, len(row)
	for lo < hi {
		mid := (lo + hi) / 2
		if row[mid].D > cut {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// denseSource adapts the dense W/D matrices to the ConstraintSource
// interface. Rows are assembled on demand from the resident matrices (the
// same O(V + in-degree) scan ClockConstraints ran inline), so the adapter
// adds no persistent state beyond the matrices themselves.
type denseSource struct {
	rg    *Graph
	wd    *WD
	floor float64
	cut   float64

	maxDOnce sync.Once
	maxD     float64
}

// NewDenseSource wraps precomputed W/D matrices as a ConstraintSource with
// the given period floor (0 serves every positive period). The matrices
// must belong to the graph.
func NewDenseSource(rg *Graph, wd *WD, floor float64) (ConstraintSource, error) {
	if wd.N != rg.N() {
		return nil, fmt.Errorf("retime: WD matrices for %d vertices, graph has %d", wd.N, rg.N())
	}
	return &denseSource{rg: rg, wd: wd, floor: floor, cut: activation(floor)}, nil
}

func (ds *denseSource) N() int             { return ds.wd.N }
func (ds *denseSource) Floor() float64     { return ds.floor }
func (ds *denseSource) EngineName() string { return "dense" }

func (ds *denseSource) Row(u int) []SourcePair {
	Wu, Du := ds.wd.W[u], ds.wd.D[u]
	var row []SourcePair
	for v := 0; v < ds.wd.N; v++ {
		row = appendRowPair(ds.rg, row, u, v, Wu[v], Du[v], ds.cut,
			func(x int) (int32, float64) { return Wu[x], Du[x] })
	}
	sortRow(row)
	return row
}

func (ds *denseSource) MaxDBound() float64 {
	ds.maxDOnce.Do(func() { ds.maxD = ds.wd.MaxD() })
	return ds.maxD
}

func (ds *denseSource) Mem() SourceMem {
	return SourceMem{DenseBytes: ds.wd.Bytes()}
}
