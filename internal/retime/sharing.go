package retime

import "fmt"

// SharedMinAreaResult reports a fanout-sharing-aware minimum-area retiming.
type SharedMinAreaResult struct {
	// R is the labeling on the ORIGINAL graph's vertices.
	R []int
	// Retimed is the original graph retimed by R.
	Retimed *Graph
	// SharedRegisters is the register count under the sharing model:
	// one register chain per driver, of length max over its fanout edges.
	SharedRegisters int
	// EdgeRegisters is the plain per-edge register sum of the same
	// labeling, for comparison with the edge-independent model.
	EdgeRegisters int
}

// MinAreaShared solves minimum-area retiming under the fanout-sharing
// model (Leiserson–Saxe §8): registers on the fanout edges of one driver
// are realized as a single shared chain, so the area charged to a driver
// is max over its fanout edges of w_r(e) rather than the sum.
//
// The classical mirror-vertex construction reduces this to an ordinary
// weighted min-area retiming: every multi-fanout driver u with fanout
// weights w_i gets a mirror vertex m_u and edges
//
//	u  → m_u  weight Wmax(u) = max_i w_i   (cost A(u))
//	v_i → m_u weight Wmax(u) − w_i         (cost 0)
//
// with the original fanout edges at cost 0. For any labeling,
// w_r(u→m_u) = w_r(u→v_i) + w_r(v_i→m_u) ≥ max_i w_r(u→v_i); since m_u is
// otherwise unconstrained, minimizing the mirror edge's weight attains the
// max exactly, so the flow objective equals the shared register count.
//
// This is an extension beyond the paper, which treats fanout edges
// independently (its LAC accounting and Table 1 use the edge-independent
// model); it quantifies how much register area the sharing model saves.
func (rg *Graph) MinAreaShared(T float64) (*SharedMinAreaResult, error) {
	if err := rg.Validate(); err != nil {
		return nil, err
	}
	n := rg.N()
	ext := rg.Clone()
	// Mirror construction on the clone.
	costOf := map[int]float64{} // extended-graph edge index -> cost
	for u := 0; u < n; u++ {
		outs := rg.g.Out(u)
		if len(outs) == 0 {
			continue
		}
		wmax := 0
		for _, ei := range outs {
			if w := rg.g.Edge(ei).W; w > wmax {
				wmax = w
			}
		}
		m := ext.AddVertex(fmt.Sprintf("mirror:%s", rg.name[u]), KindUnit, 0)
		me := ext.AddEdge(u, m, wmax)
		costOf[me] = 1
		for _, ei := range outs {
			e := rg.g.Edge(ei)
			ext.AddEdge(e.To, m, wmax-e.W)
		}
	}

	cs, err := ext.BuildConstraints(T)
	if err != nil {
		return nil, err
	}
	cost := make([]float64, ext.M())
	for ei, c := range costOf {
		cost[ei] = c
	}
	res, err := ext.minAreaEdgeCosts(cs, cost, false)
	if err != nil {
		return nil, err
	}

	// Project the labeling back onto the original vertices and recount.
	r := res.R[:n]
	retimed, err := rg.Apply(r)
	if err != nil {
		return nil, fmt.Errorf("retime: shared labeling invalid on original graph: %v", err)
	}
	out := &SharedMinAreaResult{
		R:             append([]int(nil), r...),
		Retimed:       retimed,
		EdgeRegisters: retimed.TotalRegisters(),
	}
	// Shared count: per driver, max over fanout edges of the retimed
	// weight.
	for u := 0; u < n; u++ {
		wmax := 0
		for _, ei := range retimed.g.Out(u) {
			if w := retimed.g.Edge(ei).W; w > wmax {
				wmax = w
			}
		}
		out.SharedRegisters += wmax
	}
	return out, nil
}

// SharedRegisterCount evaluates the sharing-model register count of a
// graph under its current weights: Σ over drivers of max fanout weight.
func (rg *Graph) SharedRegisterCount() int {
	total := 0
	for u := 0; u < rg.N(); u++ {
		wmax := 0
		for _, ei := range rg.g.Out(u) {
			if w := rg.g.Edge(ei).W; w > wmax {
				wmax = w
			}
		}
		total += wmax
	}
	return total
}
