package retime

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestQuickCycleWeightConservation: for any graph and any legal labeling,
// the total register count around every cycle is invariant under Apply.
func TestQuickCycleWeightConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 3 + rng.Intn(8)
		rg := ring(k, 1, 1+rng.Intn(3))
		// Add chords with enough registers to stay legal under the
		// labeling below.
		for i := 0; i < k/2; i++ {
			a, b := rng.Intn(k), rng.Intn(k)
			if a != b {
				rg.AddEdge(a, b, 2+rng.Intn(2))
			}
		}
		r := make([]int, rg.N())
		for i := range r {
			r[i] = rng.Intn(2) // labels in {0,1} keep chords legal
		}
		out, err := rg.Apply(r)
		if err != nil {
			return true // illegal labeling is allowed to fail
		}
		// Σ w_r(e) - Σ w(e) must equal Σ (r[to]-r[from]) = telescoping 0
		// only over cycles; check the exact identity per edge instead.
		for i := 0; i < rg.M(); i++ {
			f0, t0, w0 := rg.Edge(i)
			_, _, w1 := out.Edge(i)
			if w1 != w0+r[t0]-r[f0] {
				return false
			}
		}
		// And around the base ring, total is unchanged.
		sum0, sum1 := 0, 0
		for i := 0; i < k; i++ {
			_, _, w0 := rg.Edge(i)
			_, _, w1 := out.Edge(i)
			sum0 += w0
			sum1 += w1
		}
		return sum0 == sum1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickMinAreaAlwaysFeasible: whatever random legal graph and a target
// at or above the current period, MinArea returns a labeling that passes
// CheckFeasible and never increases the register count.
func TestQuickMinAreaAlwaysFeasible(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rg := randomGraph(rng, 4+rng.Intn(5), seed%2 == 0)
		p, err := rg.Period()
		if err != nil {
			return false
		}
		T := p * (1 + rng.Float64())
		res, err := rg.MinArea(T)
		if err != nil {
			return false
		}
		if rg.CheckFeasible(res.R, T) != nil {
			return false
		}
		return res.Registers <= rg.TotalRegisters()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickMinPeriodLowerBoundsPeriod: the minimum period never exceeds
// the current period and never undercuts the largest vertex delay.
func TestQuickMinPeriodBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rg := randomGraph(rng, 4+rng.Intn(4), seed%2 == 1)
		p, err := rg.Period()
		if err != nil {
			return false
		}
		T, r, err := rg.MinPeriod(1e-4)
		if err != nil {
			return false
		}
		maxD := 0.0
		for v := 0; v < rg.N(); v++ {
			if rg.Delay(v) > maxD {
				maxD = rg.Delay(v)
			}
		}
		if T > p+1e-6 || T < maxD-1e-6 {
			return false
		}
		return rg.CheckFeasible(r, T+1e-6) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickWDTriangle: W satisfies the triangle inequality over
// concatenated paths: W(u,w) <= W(u,v) + W(v,w) whenever all are defined.
func TestQuickWDTriangle(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rg := randomGraph(rng, 4+rng.Intn(5), false)
		wd := rg.WDMatrices()
		n := rg.N()
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if wd.W[u][v] < 0 {
					continue
				}
				for w := 0; w < n; w++ {
					if wd.W[v][w] < 0 || wd.W[u][w] < 0 {
						continue
					}
					if wd.W[u][w] > wd.W[u][v]+wd.W[v][w] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
