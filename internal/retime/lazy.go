package retime

import (
	"runtime"
	"sync"
	"sync/atomic"

	"lacret/internal/graph"
)

// DefaultLazyCachePairs is the default row-cache budget of the lazy engine,
// in cached SourcePairs across all shards (~24 bytes each, so the default
// caps cache memory around 100 MB). The cache is an optimization only —
// evicted rows are recomputed on demand — so the budget trades repeated
// sweep work against resident memory.
const DefaultLazyCachePairs = 4 << 20

// LazySource is the on-demand ConstraintSource: instead of materializing
// the O(V²) W/D matrices, it answers Row(u) by running one per-source
// sweep (graph.WDSolver.FromSourceAbove) when asked, with
//
//   - a delay-pruned frontier: per-vertex suffix-delay upper bounds
//     (graph.DelaySuffixBound, computed once) let a sweep abandon a source
//     outright when no path out of it can exceed the floor's activation
//     threshold, and skip delay propagation from vertices that can no
//     longer matter;
//   - sharding across GOMAXPROCS: sources hash to per-shard solvers with
//     O(V) scratch each, so concurrent Row calls (the FeasSolver's index
//     build fans out exactly like the dense build used to) sweep in
//     parallel without shared mutable state;
//   - an LRU row cache per shard, bounded by a global pair budget, so the
//     hot rows the period search and the later constraint generation at
//     Tclk both touch are computed once.
//
// Rows are bit-identical to the dense engine's at the same floor: the
// sweep's D values above the cut are exact (see FromSourceAbove), W labels
// are always exact, and both engines assemble rows through the same
// candidate test (appendRowPair).
type LazySource struct {
	rg     *Graph
	floor  float64
	cut    float64
	suffix []float64
	maxUB  float64
	shards []lazyShard

	sweeps    atomic.Int64
	abandoned atomic.Int64
	hits      atomic.Int64
	evictions atomic.Int64
	rows      atomic.Int64
	pairs     atomic.Int64
}

// lazyShard is one cache+solver shard. The mutex covers the shard's sweep
// scratch and its slice of the LRU; a row computed under the lock is
// returned (and cached) as an immutable slice, so readers holding evicted
// rows stay valid.
type lazyShard struct {
	mu       sync.Mutex
	src      *LazySource
	sv       *graph.WDSolver
	res      []graph.WDDist
	entries  map[int32]*lazyRow
	head     *lazyRow // most recently used
	tail     *lazyRow // least recently used
	pairs    int64
	maxPairs int64
}

// lazyRow is an LRU cache node.
type lazyRow struct {
	u          int32
	row        []SourcePair
	prev, next *lazyRow
}

// lazyCacheScale is the process-wide row-cache budget scale, in percent
// (100 = configured budgets). It is the memory-pressure shed hook: a
// governor lowers it to cut the caches' residency without touching the
// sources themselves (they are plumbed deep into running passes).
var lazyCacheScale atomic.Int64

func init() { lazyCacheScale.Store(100) }

// SetLazyCacheScale scales every LazySource row-cache budget — current and
// future, process-wide — to pct percent of its configured size, clamped to
// [1, 100]. Shards converge lazily: each one evicts down to the reduced
// budget on its next insertion, so shrinking costs nothing on the hot
// path. Returns the previous scale. The cache is an optimization only, so
// any scale preserves bit-identical results.
func SetLazyCacheScale(pct int) int {
	if pct < 1 {
		pct = 1
	}
	if pct > 100 {
		pct = 100
	}
	return int(lazyCacheScale.Swap(int64(pct)))
}

// LazyCacheScale reports the current process-wide scale in percent.
func LazyCacheScale() int { return int(lazyCacheScale.Load()) }

// budget is the shard's pair budget after the global scale.
func (sh *lazyShard) budget() int64 {
	b := sh.maxPairs * lazyCacheScale.Load() / 100
	if b < 1 {
		b = 1
	}
	return b
}

// NewLazySource builds the lazy engine for periods in (floor, ∞).
// cachePairs bounds the total cached SourcePairs across shards
// (0 selects DefaultLazyCachePairs). Construction is O(V + E): it computes
// the suffix-delay bounds and allocates the shards, but runs no sweeps.
func NewLazySource(rg *Graph, floor float64, cachePairs int64) *LazySource {
	if cachePairs <= 0 {
		cachePairs = DefaultLazyCachePairs
	}
	nshards := runtime.GOMAXPROCS(0)
	if nshards < 1 {
		nshards = 1
	}
	if n := rg.N(); nshards > n && n > 0 {
		nshards = n
	}
	ls := &LazySource{
		rg:     rg,
		floor:  floor,
		cut:    activation(floor),
		suffix: rg.g.DelaySuffixBound(rg.delay),
		shards: make([]lazyShard, nshards),
	}
	for v := 0; v < rg.N(); v++ {
		if ub := rg.delay[v] + ls.suffix[v]; ub > ls.maxUB {
			ls.maxUB = ub
		}
	}
	per := cachePairs / int64(nshards)
	if per < 1 {
		per = 1
	}
	for i := range ls.shards {
		sh := &ls.shards[i]
		sh.src = ls
		sh.sv = graph.NewWDSolver(rg.g)
		sh.res = make([]graph.WDDist, rg.N())
		sh.entries = make(map[int32]*lazyRow)
		sh.maxPairs = per
	}
	return ls
}

func (ls *LazySource) N() int             { return ls.rg.N() }
func (ls *LazySource) Floor() float64     { return ls.floor }
func (ls *LazySource) EngineName() string { return "lazy" }

// MaxDBound returns max_v(delay[v] + suffix[v]) — an upper bound on every
// path delay, hence on every finite D. It is +Inf when some vertex reaches
// a cycle (almost always for a sequential circuit); the period search
// brackets from the unretimed period instead, so the bound only matters
// for feed-forward graphs, where it is exact.
func (ls *LazySource) MaxDBound() float64 { return ls.maxUB }

func (ls *LazySource) Mem() SourceMem {
	return SourceMem{
		CachedRows:  ls.rows.Load(),
		CachedPairs: ls.pairs.Load(),
		Evictions:   ls.evictions.Load(),
		Sweeps:      ls.sweeps.Load(),
		Abandoned:   ls.abandoned.Load(),
		Hits:        ls.hits.Load(),
	}
}

// Row serves source u, sweeping on a cache miss. Safe for concurrent use;
// calls for sources on distinct shards proceed in parallel.
func (ls *LazySource) Row(u int) []SourcePair {
	// Source abandonment: no path out of u can exceed the cut, so the row
	// is empty — O(1), no lock, no sweep, nothing to cache.
	if ls.rg.delay[u]+ls.suffix[u] <= ls.cut {
		ls.abandoned.Add(1)
		return nil
	}
	sh := &ls.shards[u%len(ls.shards)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if ent, ok := sh.entries[int32(u)]; ok {
		ls.hits.Add(1)
		sh.moveToFront(ent)
		// The global scale may have dropped since these rows were cached;
		// without this, a fully-resident hot set would never shed.
		sh.evictTo(sh.budget(), ent)
		return ent.row
	}
	row := sh.sweep(u)
	sh.insert(&lazyRow{u: int32(u), row: row})
	return row
}

// sweep runs the pruned per-source sweep and assembles the candidate row.
// Caller holds the shard lock (the solver scratch is shard-local).
func (sh *lazyShard) sweep(u int) []SourcePair {
	ls := sh.src
	if ls.rg.g.OutDegree(u) == 0 {
		// Nothing but u itself is reachable; self-pairs are never
		// candidates. (The abandonment test usually catches this first:
		// suffix is 0, so it only gets here when delay[u] alone exceeds
		// the cut.)
		return nil
	}
	if !sh.sv.FromSourceAbove(u, ls.rg.delay, ls.cut, ls.suffix, sh.res) {
		ls.abandoned.Add(1)
		return nil
	}
	ls.sweeps.Add(1)
	res := sh.res
	var row []SourcePair
	for v := range res {
		row = appendRowPair(ls.rg, row, u, v, int32(res[v].W), res[v].D, ls.cut,
			func(x int) (int32, float64) { return int32(res[x].W), res[x].D })
	}
	sortRow(row)
	return row
}

// insert adds a row at the front of the shard LRU and evicts from the tail
// past the pair budget. A row larger than the whole budget is still served
// and cached momentarily; the next insert evicts it.
func (sh *lazyShard) insert(ent *lazyRow) {
	sh.entries[ent.u] = ent
	sh.pushFront(ent)
	sh.pairs += int64(len(ent.row))
	sh.src.rows.Add(1)
	sh.src.pairs.Add(int64(len(ent.row)))
	sh.evictTo(sh.budget(), ent)
}

// evictTo drops LRU-tail rows until the shard's cached pairs fit budget,
// never evicting keep (the row being served). Caller holds the shard lock.
func (sh *lazyShard) evictTo(budget int64, keep *lazyRow) {
	for sh.pairs > budget && sh.tail != nil && sh.tail != keep {
		ev := sh.tail
		sh.unlink(ev)
		delete(sh.entries, ev.u)
		sh.pairs -= int64(len(ev.row))
		sh.src.rows.Add(-1)
		sh.src.pairs.Add(-int64(len(ev.row)))
		sh.src.evictions.Add(1)
	}
}

func (sh *lazyShard) pushFront(ent *lazyRow) {
	ent.prev, ent.next = nil, sh.head
	if sh.head != nil {
		sh.head.prev = ent
	}
	sh.head = ent
	if sh.tail == nil {
		sh.tail = ent
	}
}

func (sh *lazyShard) unlink(ent *lazyRow) {
	if ent.prev != nil {
		ent.prev.next = ent.next
	} else {
		sh.head = ent.next
	}
	if ent.next != nil {
		ent.next.prev = ent.prev
	} else {
		sh.tail = ent.prev
	}
	ent.prev, ent.next = nil, nil
}

func (sh *lazyShard) moveToFront(ent *lazyRow) {
	if sh.head == ent {
		return
	}
	sh.unlink(ent)
	sh.pushFront(ent)
}
