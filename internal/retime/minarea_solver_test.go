package retime

import (
	"math"
	"math/rand"
	"testing"
)

func TestMinAreaSolverMatchesOneShot(t *testing.T) {
	rg := ring(6, 1, 3)
	cs, err := rg.BuildConstraints(2)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewMinAreaSolver(rg, cs)
	if err != nil {
		t.Fatal(err)
	}
	for round, area := range [][]float64{
		nil,
		{1, 1, 1, 1, 1, 1},
		{3, 0.5, 1, 2, 0.25, 1},
		{3, 0.5, 1, 2, 0.25, 1}, // unchanged weights: free round
	} {
		warm, err := s.Resolve(area)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		cold, err := rg.MinAreaWithConstraints(cs, area)
		if err != nil {
			t.Fatalf("round %d: cold: %v", round, err)
		}
		if warm.Registers != cold.Registers || warm.WeightedArea != cold.WeightedArea {
			t.Fatalf("round %d: warm %d/%g, cold %d/%g",
				round, warm.Registers, warm.WeightedArea, cold.Registers, cold.WeightedArea)
		}
		for v := range warm.R {
			if warm.R[v] != cold.R[v] {
				t.Fatalf("round %d: r(%d) = %d warm, %d cold", round, v, warm.R[v], cold.R[v])
			}
		}
		if warm.Stats.Warm != (round > 0) {
			t.Fatalf("round %d: Warm=%v", round, warm.Stats.Warm)
		}
		if warm.Stats.CostChanged != 0 {
			t.Fatalf("round %d: CostChanged=%d; constraint bounds never change", round, warm.Stats.CostChanged)
		}
	}
	// The fourth round repeated the third's weights: nothing to route.
	if st := s.Stats(); st.AugmentingPaths != 0 || st.SupplyChanged != 0 {
		t.Fatalf("repeat round stats: %+v", st)
	}
}

// TestMinAreaSolverWarmEqualsCold is the randomized warm/cold equivalence
// gate at the retime level: random graphs, rounds of random per-vertex
// weights, every round's persistent-solver result compared against a
// from-scratch MinAreaWithConstraints. Labels must match exactly (residual
// shortest-path potentials are canonical across optimal flows), hence so do
// Registers and WeightedArea.
func TestMinAreaSolverWarmEqualsCold(t *testing.T) {
	rng := rand.New(rand.NewSource(88))
	for trial := 0; trial < 25; trial++ {
		rg := randomGraph(rng, 4+rng.Intn(5), rng.Intn(2) == 0)
		T, err := rg.Period()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		cs, err := rg.BuildConstraints(T) // r = 0 is feasible at the initial period
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		s, err := NewMinAreaSolver(rg, cs)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for round := 0; round < 6; round++ {
			var area []float64
			if round > 0 { // round 0 exercises the nil (uniform) path
				area = make([]float64, rg.N())
				for v := range area {
					area[v] = 0.1 + 3*rng.Float64()
				}
			}
			warm, err := s.Resolve(area)
			if err != nil {
				t.Fatalf("trial %d round %d: %v", trial, round, err)
			}
			cold, err := rg.MinAreaWithConstraints(cs, area)
			if err != nil {
				t.Fatalf("trial %d round %d: cold: %v", trial, round, err)
			}
			if warm.Registers != cold.Registers {
				t.Fatalf("trial %d round %d: registers %d warm, %d cold",
					trial, round, warm.Registers, cold.Registers)
			}
			if math.Abs(warm.WeightedArea-cold.WeightedArea) > 1e-9 {
				t.Fatalf("trial %d round %d: weighted area %g warm, %g cold",
					trial, round, warm.WeightedArea, cold.WeightedArea)
			}
			for v := range warm.R {
				if warm.R[v] != cold.R[v] {
					t.Fatalf("trial %d round %d: r(%d) = %d warm, %d cold",
						trial, round, v, warm.R[v], cold.R[v])
				}
			}
			if round > 0 && !warm.Stats.Warm {
				t.Fatalf("trial %d round %d: expected warm solve, stats %+v",
					trial, round, warm.Stats)
			}
		}
	}
}

func TestNewMinAreaSolverValidation(t *testing.T) {
	rg := ring(6, 1, 3)
	cs, err := rg.BuildConstraints(2)
	if err != nil {
		t.Fatal(err)
	}
	other := ring(4, 1, 2)
	if _, err := NewMinAreaSolver(other, cs); err == nil {
		t.Fatal("vertex-count mismatch accepted")
	}
	s, err := NewMinAreaSolver(rg, cs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Resolve([]float64{1, 2}); err == nil {
		t.Fatal("short area vector accepted")
	}
	if _, err := s.Resolve([]float64{1, 1, 1, -2, 1, 1}); err == nil {
		t.Fatal("negative area weight accepted")
	}
	if _, err := s.Resolve([]float64{1, 1, 1, math.NaN(), 1, 1}); err == nil {
		t.Fatal("NaN area weight accepted")
	}
}

func TestNewMinAreaSolverInfeasible(t *testing.T) {
	// A 3-ring with 1 register and unit delays cannot meet T=1: every
	// legal register distribution leaves a 2-delay combinational path.
	rg := ring(3, 1, 1)
	cs := &Constraints{N: rg.N(), Cons: []Constraint{
		{U: 0, V: 1, Bound: -1}, {U: 1, V: 2, Bound: -1}, {U: 2, V: 0, Bound: -1},
	}}
	if _, err := NewMinAreaSolver(rg, cs); err == nil {
		t.Fatal("infeasible constraint system accepted")
	} else if _, ok := err.(ErrInfeasible); !ok {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}
