package tile

import (
	"math"
	"strings"
	"testing"

	"lacret/internal/floorplan"
)

// twoBlockPlacement: soft block 0 at left half, hard block 1 at bottom
// right quarter; rest free.
func twoBlockPlacement() *floorplan.Placement {
	return &floorplan.Placement{
		X: []float64{0, 500}, Y: []float64{0, 0},
		W: []float64{500, 250}, H: []float64{1000, 250},
		ChipW: 1000, ChipH: 1000,
	}
}

func build(t *testing.T, p Params) *Grid {
	t.Helper()
	g, err := Build(twoBlockPlacement(), []bool{false, true}, []float64{100000, 0}, p)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBuildClassification(t *testing.T) {
	g := build(t, Params{Rows: 4, Cols: 4})
	if g.Rows != 4 || g.Cols != 4 || g.TileW != 250 || g.TileH != 250 {
		t.Fatalf("grid %+v", g)
	}
	// Left half soft (cols 0-1), bottom-right cell over hard block.
	for r := 0; r < 4; r++ {
		for c := 0; c < 2; c++ {
			if g.CellClass[r*4+c] != ClassSoft || g.CellBlock[r*4+c] != 0 {
				t.Fatalf("cell (%d,%d) = %v", r, c, g.CellClass[r*4+c])
			}
		}
	}
	if g.CellClass[2] != ClassHard || g.CellBlock[2] != 1 {
		t.Fatalf("hard cell class %v block %d", g.CellClass[2], g.CellBlock[2])
	}
	if g.CellClass[3] != ClassFree {
		t.Fatalf("free cell class %v", g.CellClass[3])
	}
	if g.NumCells() != 16 || g.NumTiles() != 17 { // 16 cells + 1 merged soft
		t.Fatalf("cells=%d tiles=%d", g.NumCells(), g.NumTiles())
	}
}

func TestCapacities(t *testing.T) {
	g := build(t, Params{Rows: 4, Cols: 4, FreeUtil: 0.5, HardSiteArea: 123})
	cellArea := 250.0 * 250
	if got := g.Cap[3]; math.Abs(got-cellArea*0.5) > 1e-9 {
		t.Fatalf("free cap %g", got)
	}
	if got := g.Cap[2]; got != 123 {
		t.Fatalf("hard cap %g", got)
	}
	soft := g.SoftTile[0]
	if soft != 16 {
		t.Fatalf("soft tile id %d", soft)
	}
	// Soft block area 500x1000 minus 100000 unit area.
	if got := g.Cap[soft]; math.Abs(got-(500000-100000)) > 1e-9 {
		t.Fatalf("soft cap %g", got)
	}
	// Soft grid cells have no direct capacity.
	if g.Cap[0] != 0 {
		t.Fatalf("soft cell cap %g", g.Cap[0])
	}
}

func TestCapTileMapping(t *testing.T) {
	g := build(t, Params{Rows: 4, Cols: 4})
	if g.CapTile(0) != g.SoftTile[0] {
		t.Fatal("soft cell should map to merged tile")
	}
	if g.CapTile(3) != 3 || g.CapTile(2) != 2 {
		t.Fatal("free/hard cells map to themselves")
	}
}

func TestCellAtAndCenterRoundTrip(t *testing.T) {
	g := build(t, Params{Rows: 4, Cols: 4})
	for id := 0; id < g.NumCells(); id++ {
		x, y := g.CellCenter(id)
		if g.CellAt(x, y) != id {
			t.Fatalf("cell %d round trip failed", id)
		}
	}
	// Clamping.
	if g.CellAt(-5, -5) != 0 {
		t.Fatal("clamp low")
	}
	if g.CellAt(5000, 5000) != 15 {
		t.Fatal("clamp high")
	}
}

func TestBlockTile(t *testing.T) {
	pl := twoBlockPlacement()
	g := build(t, Params{Rows: 4, Cols: 4})
	if g.BlockTile(0, pl) != g.SoftTile[0] {
		t.Fatal("soft block tile")
	}
	// Hard block center (625,125) -> row 0, col 2 -> cell 2.
	if g.BlockTile(1, pl) != 2 {
		t.Fatalf("hard block tile %d", g.BlockTile(1, pl))
	}
}

func TestReserveAndFree(t *testing.T) {
	g := build(t, Params{Rows: 4, Cols: 4})
	id := 3
	before := g.Free(id)
	g.Reserve(id, 100)
	if math.Abs(g.Free(id)-(before-100)) > 1e-9 {
		t.Fatal("reserve not accounted")
	}
	g.Reserve(id, 1e12)
	if g.Free(id) >= 0 {
		t.Fatal("over-subscription should go negative")
	}
}

func TestAutoGridSize(t *testing.T) {
	g := build(t, Params{})
	if g.Rows < 2 || g.Cols < 2 {
		t.Fatalf("auto grid %dx%d", g.Rows, g.Cols)
	}
	if g.Rows*g.Cols != g.NumCells() {
		t.Fatal("cell count mismatch")
	}
}

func TestRenderFigure2(t *testing.T) {
	g := build(t, Params{Rows: 4, Cols: 4})
	out := g.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 || len(lines[0]) != 4 {
		t.Fatalf("render shape:\n%s", out)
	}
	// Bottom row (last line) should be: a a # .
	if lines[3] != "aa#." {
		t.Fatalf("bottom row %q:\n%s", lines[3], out)
	}
	if !strings.Contains(out, "#") || !strings.Contains(out, ".") {
		t.Fatalf("render missing classes:\n%s", out)
	}
}

func TestBuildErrors(t *testing.T) {
	pl := twoBlockPlacement()
	if _, err := Build(pl, []bool{false}, []float64{0, 0}, Params{}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := Build(pl, []bool{false, true}, []float64{0, 0}, Params{FreeUtil: 2}); err == nil {
		t.Fatal("bad FreeUtil accepted")
	}
	if _, err := Build(pl, []bool{false, true}, []float64{0, 0}, Params{HardSiteArea: -1}); err == nil {
		t.Fatal("negative site area accepted")
	}
	bad := &floorplan.Placement{ChipW: 0, ChipH: 10}
	if _, err := Build(bad, nil, nil, Params{}); err == nil {
		t.Fatal("empty chip accepted")
	}
}

func TestSoftCapacityClampedAtZero(t *testing.T) {
	// Unit area exceeding block area must clamp capacity to zero.
	g, err := Build(twoBlockPlacement(), []bool{false, true}, []float64{1e9, 0}, Params{Rows: 2, Cols: 2})
	if err != nil {
		t.Fatal(err)
	}
	if g.Cap[g.SoftTile[0]] != 0 {
		t.Fatalf("cap %g", g.Cap[g.SoftTile[0]])
	}
}
