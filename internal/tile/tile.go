// Package tile builds the tile graph over a floorplan (the paper's
// Figure 2): the chip is divided into a uniform grid; cells inside hard
// blocks have only pre-located insertion sites, cells in channels and dead
// space offer their free area, and all cells of a soft block are merged
// into a single capacity tile whose budget is the block's whitespace
// (total capacity minus the area consumed by its functional units).
//
// Repeater insertion and LAC-retiming consume capacity from these tiles;
// the local area constraints of the paper (Eqn. 3) are expressed against
// them.
package tile

import (
	"fmt"
	"strings"

	"lacret/internal/floorplan"
)

// Class classifies a grid cell.
type Class uint8

const (
	// ClassFree is channel or dead space: capacity = free area * FreeUtil.
	ClassFree Class = iota
	// ClassHard lies inside a hard block: capacity = pre-located sites.
	ClassHard
	// ClassSoft lies inside a soft block: capacity is pooled in the
	// block's merged tile.
	ClassSoft
)

func (c Class) String() string {
	switch c {
	case ClassFree:
		return "free"
	case ClassHard:
		return "hard"
	case ClassSoft:
		return "soft"
	default:
		return fmt.Sprintf("class(%d)", uint8(c))
	}
}

// Params tunes grid construction.
type Params struct {
	// Rows, Cols: grid dimensions; 0 selects automatically (aiming for
	// roughly 16 tiles across the longer chip edge).
	Rows, Cols int
	// FreeUtil is the fraction of a free cell's area usable for repeater
	// and flip-flop insertion (default 0.8).
	FreeUtil float64
	// HardSiteArea is the insertion-site area available per hard-block
	// cell (default 0: hard blocks are closed).
	HardSiteArea float64
}

// Grid is the tile decomposition of a floorplan. Capacity tiles are indexed
// 0..NumTiles): first the grid cells (row-major), then one merged tile per
// soft block.
type Grid struct {
	Rows, Cols   int
	TileW, TileH float64
	ChipW, ChipH float64

	// CellClass / CellBlock give, per grid cell, its class and owning
	// block (-1 for free cells).
	CellClass []Class
	CellBlock []int

	// Cap and Used are indexed by capacity-tile ID. For soft grid cells
	// Cap is zero — their capacity lives in the block's merged tile.
	Cap  []float64
	Used []float64

	// SoftTile maps block index -> merged capacity tile ID (-1 when the
	// block is hard).
	SoftTile []int

	nCells int
}

// Build constructs the grid over a placement. hard[b] marks hard blocks;
// unitArea[b] is the functional-unit area already consumed inside block b
// (subtracted from soft capacity).
func Build(pl *floorplan.Placement, hard []bool, unitArea []float64, p Params) (*Grid, error) {
	nb := len(pl.X)
	if len(hard) != nb || len(unitArea) != nb {
		return nil, fmt.Errorf("tile: hard/unitArea length mismatch (%d blocks)", nb)
	}
	if pl.ChipW <= 0 || pl.ChipH <= 0 {
		return nil, fmt.Errorf("tile: empty chip outline")
	}
	if p.FreeUtil == 0 {
		p.FreeUtil = 0.8
	}
	if p.FreeUtil < 0 || p.FreeUtil > 1 {
		return nil, fmt.Errorf("tile: FreeUtil %g outside [0,1]", p.FreeUtil)
	}
	if p.HardSiteArea < 0 {
		return nil, fmt.Errorf("tile: negative HardSiteArea")
	}
	rows, cols := p.Rows, p.Cols
	if rows <= 0 || cols <= 0 {
		long := pl.ChipW
		if pl.ChipH > long {
			long = pl.ChipH
		}
		t := long / 16
		cols = int(pl.ChipW/t + 0.5)
		rows = int(pl.ChipH/t + 0.5)
		if cols < 2 {
			cols = 2
		}
		if rows < 2 {
			rows = 2
		}
	}
	g := &Grid{
		Rows: rows, Cols: cols,
		TileW: pl.ChipW / float64(cols), TileH: pl.ChipH / float64(rows),
		ChipW: pl.ChipW, ChipH: pl.ChipH,
		CellClass: make([]Class, rows*cols),
		CellBlock: make([]int, rows*cols),
		SoftTile:  make([]int, nb),
		nCells:    rows * cols,
	}
	for i := range g.CellBlock {
		g.CellBlock[i] = -1
	}
	nSoft := 0
	for b := 0; b < nb; b++ {
		if hard[b] {
			g.SoftTile[b] = -1
		} else {
			g.SoftTile[b] = rows*cols + nSoft
			nSoft++
		}
	}
	g.Cap = make([]float64, rows*cols+nSoft)
	g.Used = make([]float64, rows*cols+nSoft)

	cellArea := g.TileW * g.TileH
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			id := r*cols + c
			cx := (float64(c) + 0.5) * g.TileW
			cy := (float64(r) + 0.5) * g.TileH
			owner := -1
			for b := 0; b < nb; b++ {
				if cx >= pl.X[b] && cx < pl.X[b]+pl.W[b] && cy >= pl.Y[b] && cy < pl.Y[b]+pl.H[b] {
					owner = b
					break
				}
			}
			switch {
			case owner < 0:
				g.CellClass[id] = ClassFree
				g.Cap[id] = cellArea * p.FreeUtil
			case hard[owner]:
				g.CellClass[id] = ClassHard
				g.CellBlock[id] = owner
				g.Cap[id] = p.HardSiteArea
			default:
				g.CellClass[id] = ClassSoft
				g.CellBlock[id] = owner
				// Capacity pooled in the merged tile below.
			}
		}
	}
	for b := 0; b < nb; b++ {
		if hard[b] {
			continue
		}
		cap := pl.BlockArea(b) - unitArea[b]
		if cap < 0 {
			cap = 0
		}
		g.Cap[g.SoftTile[b]] = cap
	}
	return g, nil
}

// NumTiles returns the number of capacity tiles (grid cells + merged soft).
func (g *Grid) NumTiles() int { return len(g.Cap) }

// NumCells returns the number of grid cells.
func (g *Grid) NumCells() int { return g.nCells }

// Rehydrate recomputes the derived unexported fields after the exported
// ones were restored from a serialized snapshot (encoding/gob carries only
// exported fields). Safe to call on any structurally valid grid.
func (g *Grid) Rehydrate() { g.nCells = g.Rows * g.Cols }

// CellAt returns the grid cell containing point (x,y), clamped to the chip.
func (g *Grid) CellAt(x, y float64) int {
	c := int(x / g.TileW)
	r := int(y / g.TileH)
	if c < 0 {
		c = 0
	}
	if c >= g.Cols {
		c = g.Cols - 1
	}
	if r < 0 {
		r = 0
	}
	if r >= g.Rows {
		r = g.Rows - 1
	}
	return r*g.Cols + c
}

// CellCenter returns the center coordinates of grid cell id.
func (g *Grid) CellCenter(id int) (float64, float64) {
	r, c := id/g.Cols, id%g.Cols
	return (float64(c) + 0.5) * g.TileW, (float64(r) + 0.5) * g.TileH
}

// CapTile maps a grid cell to the capacity tile that absorbs insertions
// there: soft cells map to their block's merged tile, others to themselves.
func (g *Grid) CapTile(cell int) int {
	if g.CellClass[cell] == ClassSoft {
		return g.SoftTile[g.CellBlock[cell]]
	}
	return cell
}

// BlockTile returns the capacity tile for units of block b: the merged
// tile for soft blocks, or the hard block's center cell.
func (g *Grid) BlockTile(b int, pl *floorplan.Placement) int {
	if g.SoftTile[b] >= 0 {
		return g.SoftTile[b]
	}
	cx, cy := pl.Center(b)
	return g.CellAt(cx, cy)
}

// Reserve consumes area in a capacity tile (going over budget is allowed —
// the planner measures violations rather than failing).
func (g *Grid) Reserve(tileID int, area float64) {
	g.Used[tileID] += area
}

// Free returns the remaining capacity of a tile (may be negative when
// over-subscribed).
func (g *Grid) Free(tileID int) float64 { return g.Cap[tileID] - g.Used[tileID] }

// Render draws an ASCII map of the grid (rows top to bottom): '.' free,
// '#' hard, letters for soft blocks (by block index mod 26) — the textual
// equivalent of the paper's Figure 2.
func (g *Grid) Render() string {
	var sb strings.Builder
	for r := g.Rows - 1; r >= 0; r-- {
		for c := 0; c < g.Cols; c++ {
			id := r*g.Cols + c
			switch g.CellClass[id] {
			case ClassFree:
				sb.WriteByte('.')
			case ClassHard:
				sb.WriteByte('#')
			default:
				sb.WriteByte(byte('a' + g.CellBlock[id]%26))
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
