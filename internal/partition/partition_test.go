package partition

import (
	"math"
	"math/rand"
	"testing"
)

// clusteredGraph builds nClusters dense clusters of size each, connected by
// a single chain of bridge nets. Optimal k-way cut = the bridges.
func clusteredGraph(nClusters, size int) *Hypergraph {
	h := &Hypergraph{}
	n := nClusters * size
	h.Area = make([]float64, n)
	for i := range h.Area {
		h.Area[i] = 1
	}
	for c := 0; c < nClusters; c++ {
		base := c * size
		for i := 0; i < size; i++ {
			for j := i + 1; j < size; j++ {
				h.Nets = append(h.Nets, []int{base + i, base + j})
			}
		}
	}
	for c := 0; c+1 < nClusters; c++ {
		h.Nets = append(h.Nets, []int{c*size + size - 1, (c + 1) * size})
	}
	return h
}

func TestValidate(t *testing.T) {
	h := &Hypergraph{Area: []float64{1, 1}, Nets: [][]int{{0, 1}}}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	h.Nets = [][]int{{0, 5}}
	if err := h.Validate(); err == nil {
		t.Fatal("bad net accepted")
	}
	h = &Hypergraph{Area: []float64{-1}}
	if err := h.Validate(); err == nil {
		t.Fatal("negative area accepted")
	}
}

func TestNormalize(t *testing.T) {
	h := &Hypergraph{
		Area: []float64{1, 1, 1},
		Nets: [][]int{{0}, {1, 1}, {0, 1, 1}, {2, 0}},
	}
	h.Normalize()
	if len(h.Nets) != 2 {
		t.Fatalf("nets = %v", h.Nets)
	}
}

func TestBipartitionSeparatesClusters(t *testing.T) {
	h := clusteredGraph(2, 12)
	parts, cut := Bipartition(h, 0.5, 0.1, 1)
	if cut != 1 {
		t.Fatalf("cut = %d, want 1 (parts=%v)", cut, parts)
	}
	// Each cluster fully on one side.
	for i := 1; i < 12; i++ {
		if parts[i] != parts[0] {
			t.Fatalf("cluster 0 split: %v", parts[:12])
		}
		if parts[12+i] != parts[12] {
			t.Fatalf("cluster 1 split: %v", parts[12:])
		}
	}
	if parts[0] == parts[12] {
		t.Fatal("clusters merged")
	}
}

func TestBipartitionBalance(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	h := &Hypergraph{}
	n := 60
	h.Area = make([]float64, n)
	total := 0.0
	for i := range h.Area {
		h.Area[i] = 1 + rng.Float64()*3
		total += h.Area[i]
	}
	for i := 0; i < 150; i++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a != b {
			h.Nets = append(h.Nets, []int{a, b})
		}
	}
	parts, _ := Bipartition(h, 0.5, 0.1, 7)
	areas := PartAreas(h, parts, 2)
	frac := areas[0] / total
	if frac < 0.38 || frac > 0.62 {
		t.Fatalf("unbalanced: %g", frac)
	}
}

func TestBipartitionEmptyAndTiny(t *testing.T) {
	h := &Hypergraph{}
	parts, cut := Bipartition(h, 0.5, 0.1, 1)
	if len(parts) != 0 || cut != 0 {
		t.Fatal("empty case")
	}
	h = &Hypergraph{Area: []float64{1}}
	parts, cut = Bipartition(h, 0.5, 0.5, 1)
	if len(parts) != 1 || cut != 0 {
		t.Fatal("single-cell case")
	}
}

func TestKWaySeparatesClusters(t *testing.T) {
	h := clusteredGraph(4, 10)
	parts, err := KWay(h, 4, 0.1, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Each cluster must land in a single part, and all four parts used.
	used := map[int]bool{}
	for c := 0; c < 4; c++ {
		p := parts[c*10]
		used[p] = true
		for i := 1; i < 10; i++ {
			if parts[c*10+i] != p {
				t.Fatalf("cluster %d split: %v", c, parts[c*10:(c+1)*10])
			}
		}
	}
	if len(used) != 4 {
		t.Fatalf("parts used: %v", used)
	}
	if cut := h.CutSize(parts); cut != 3 {
		t.Fatalf("cut = %d, want 3", cut)
	}
}

func TestKWayPartIDsInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, k := range []int{1, 2, 3, 5, 7} {
		h := &Hypergraph{}
		n := 40
		h.Area = make([]float64, n)
		for i := range h.Area {
			h.Area[i] = 1
		}
		for i := 0; i < 80; i++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a != b {
				h.Nets = append(h.Nets, []int{a, b})
			}
		}
		parts, err := KWay(h, k, 0.15, 11)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range parts {
			if p < 0 || p >= k {
				t.Fatalf("k=%d: part %d out of range", k, p)
			}
		}
		areas := PartAreas(h, parts, k)
		mean := h.TotalArea() / float64(k)
		for p, a := range areas {
			if a > 2.2*mean || (k <= 5 && a < 0.2*mean) {
				t.Fatalf("k=%d: part %d area %g vs mean %g (all %v)", k, p, a, mean, areas)
			}
		}
	}
}

func TestKWayErrors(t *testing.T) {
	h := &Hypergraph{Area: []float64{1, 1}}
	if _, err := KWay(h, 0, 0.1, 1); err == nil {
		t.Fatal("k=0 accepted")
	}
	h.Nets = [][]int{{0, 9}}
	if _, err := KWay(h, 2, 0.1, 1); err == nil {
		t.Fatal("invalid hypergraph accepted")
	}
}

func TestKWayMoreCellsThanParts(t *testing.T) {
	// k close to n still assigns every part id.
	h := &Hypergraph{Area: []float64{1, 1, 1, 1, 1}}
	parts, err := KWay(h, 5, 0.5, 2)
	if err != nil {
		t.Fatal(err)
	}
	used := map[int]bool{}
	for _, p := range parts {
		used[p] = true
	}
	if len(used) != 5 {
		t.Fatalf("parts = %v", parts)
	}
}

func TestCutSizeNeverNegativeAfterFM(t *testing.T) {
	// FM must never worsen a random start beyond the initial cut.
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 20; trial++ {
		n := 20 + rng.Intn(30)
		h := &Hypergraph{Area: make([]float64, n)}
		for i := range h.Area {
			h.Area[i] = 1
		}
		for i := 0; i < 3*n; i++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a != b {
				h.Nets = append(h.Nets, []int{a, b})
			}
		}
		h.Normalize()
		// Random initial assignment's expected cut ~ half the nets; FM
		// should do clearly better.
		_, cut := Bipartition(h, 0.5, 0.1, int64(trial))
		if cut > int(0.5*float64(len(h.Nets))) {
			t.Fatalf("trial %d: cut %d of %d nets", trial, cut, len(h.Nets))
		}
	}
}

func TestPartAreasSum(t *testing.T) {
	h := clusteredGraph(3, 5)
	parts, err := KWay(h, 3, 0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	areas := PartAreas(h, parts, 3)
	sum := 0.0
	for _, a := range areas {
		sum += a
	}
	if math.Abs(sum-h.TotalArea()) > 1e-9 {
		t.Fatalf("areas %v do not sum to total %g", areas, h.TotalArea())
	}
}
