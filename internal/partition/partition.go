// Package partition implements Fiduccia–Mattheyses (FM) hypergraph
// bipartitioning with gain buckets and recursive bisection for k-way
// partitioning. The planner uses it to split the RT-level netlist into
// circuit blocks before floorplanning, mirroring the paper's experimental
// flow ("we first partition those circuits into soft blocks").
package partition

import (
	"fmt"
	"math/rand"
	"sort"
)

// Hypergraph is a weighted-cell hypergraph.
type Hypergraph struct {
	// Area holds per-cell areas (len = cell count).
	Area []float64
	// Nets lists, per net, the cells it connects (size >= 2 after
	// normalization; degenerate nets are dropped by Normalize).
	Nets [][]int
}

// N returns the number of cells.
func (h *Hypergraph) N() int { return len(h.Area) }

// TotalArea returns the sum of cell areas.
func (h *Hypergraph) TotalArea() float64 {
	t := 0.0
	for _, a := range h.Area {
		t += a
	}
	return t
}

// Validate checks structural sanity.
func (h *Hypergraph) Validate() error {
	for i, a := range h.Area {
		if a < 0 {
			return fmt.Errorf("partition: cell %d has negative area %g", i, a)
		}
	}
	for ni, net := range h.Nets {
		for _, c := range net {
			if c < 0 || c >= len(h.Area) {
				return fmt.Errorf("partition: net %d references cell %d outside [0,%d)", ni, c, len(h.Area))
			}
		}
	}
	return nil
}

// Normalize drops single-pin and duplicate-pin entries from nets.
func (h *Hypergraph) Normalize() {
	var keep [][]int
	for _, net := range h.Nets {
		seen := map[int]bool{}
		var cells []int
		for _, c := range net {
			if !seen[c] {
				seen[c] = true
				cells = append(cells, c)
			}
		}
		if len(cells) >= 2 {
			sort.Ints(cells)
			keep = append(keep, cells)
		}
	}
	h.Nets = keep
}

// CutSize returns the number of nets spanning both parts under parts[].
func (h *Hypergraph) CutSize(parts []int) int {
	cut := 0
	for _, net := range h.Nets {
		first := parts[net[0]]
		for _, c := range net[1:] {
			if parts[c] != first {
				cut++
				break
			}
		}
	}
	return cut
}

// Bipartition splits the cells into parts 0 and 1 with FM passes.
// targetFrac is the desired fraction of total area in part 0 (0.5 for an
// even split); tol is the allowed absolute deviation of that fraction
// (e.g. 0.1). seed drives the random initial solution. It returns the part
// assignment and the cut size.
func Bipartition(h *Hypergraph, targetFrac, tol float64, seed int64) ([]int, int) {
	n := h.N()
	parts := make([]int, n)
	if n == 0 {
		return parts, 0
	}
	if targetFrac <= 0 || targetFrac >= 1 {
		targetFrac = 0.5
	}
	if tol <= 0 {
		tol = 0.1
	}
	rng := rand.New(rand.NewSource(seed))
	total := h.TotalArea()
	target0 := targetFrac * total

	// Initial random assignment close to the target split.
	order := rng.Perm(n)
	a0 := 0.0
	for _, c := range order {
		if a0 < target0 {
			parts[c] = 0
			a0 += h.Area[c]
		} else {
			parts[c] = 1
		}
	}

	// Precompute cell -> nets incidence.
	cellNets := make([][]int, n)
	for ni, net := range h.Nets {
		for _, c := range net {
			cellNets[c] = append(cellNets[c], ni)
		}
	}
	maxDeg := 1
	for _, ns := range cellNets {
		if len(ns) > maxDeg {
			maxDeg = len(ns)
		}
	}

	lo := (targetFrac - tol) * total
	hi := (targetFrac + tol) * total

	for pass := 0; pass < 12; pass++ {
		improved := fmPass(h, parts, cellNets, maxDeg, lo, hi)
		if !improved {
			break
		}
	}
	return parts, h.CutSize(parts)
}

// fmPass performs one FM pass (tentatively move every cell once in
// best-gain order, then roll back to the best prefix). Returns whether the
// cut improved.
func fmPass(h *Hypergraph, parts []int, cellNets [][]int, maxDeg int, loArea, hiArea float64) bool {
	n := h.N()
	// Net state: count of cells on each side.
	cnt := make([][2]int, len(h.Nets))
	for ni, net := range h.Nets {
		for _, c := range net {
			cnt[ni][parts[c]]++
		}
	}
	area0 := 0.0
	for c := 0; c < n; c++ {
		if parts[c] == 0 {
			area0 += h.Area[c]
		}
	}

	gain := make([]int, n)
	computeGain := func(c int) int {
		g := 0
		from := parts[c]
		to := 1 - from
		for _, ni := range cellNets[c] {
			if cnt[ni][from] == 1 {
				g++ // moving uncuts this net
			}
			if cnt[ni][to] == 0 {
				g-- // moving cuts this net
			}
		}
		return g
	}

	// Gain buckets: index = gain + maxDeg, each bucket a slice used as a
	// stack. Stale entries are skipped via curGain.
	buckets := make([][]int, 2*maxDeg+1)
	bucketOf := func(g int) int { return g + maxDeg }
	locked := make([]bool, n)
	for c := 0; c < n; c++ {
		gain[c] = computeGain(c)
		b := bucketOf(gain[c])
		buckets[b] = append(buckets[b], c)
	}
	maxBucket := 2 * maxDeg

	type move struct {
		cell int
		gain int
	}
	var moves []move
	cumGain, bestGain, bestIdx := 0, 0, -1

	// balanceOK reports whether moving cell c keeps part-0 area in range.
	balanceOK := func(c int) bool {
		na := area0
		if parts[c] == 0 {
			na -= h.Area[c]
		} else {
			na += h.Area[c]
		}
		return na >= loArea && na <= hiArea
	}
	// pick returns the highest-gain unlocked, balance-legal cell and
	// removes it from its bucket; stale entries (moved or regained) are
	// compacted lazily. Returns -1 when nothing is movable.
	pick := func() int {
		for b := maxBucket; b >= 0; b-- {
			bucket := buckets[b]
			// Compact stale and locked entries from the top.
			for len(bucket) > 0 {
				c := bucket[len(bucket)-1]
				if locked[c] || bucketOf(gain[c]) != b {
					bucket = bucket[:len(bucket)-1]
					continue
				}
				break
			}
			// Scan the remaining live entries for a balance-legal one.
			for i := len(bucket) - 1; i >= 0; i-- {
				c := bucket[i]
				if locked[c] || bucketOf(gain[c]) != b {
					continue
				}
				if balanceOK(c) {
					bucket = append(bucket[:i], bucket[i+1:]...)
					buckets[b] = bucket
					return c
				}
			}
			buckets[b] = bucket
		}
		return -1
	}

	for len(moves) < n {
		cell := pick()
		if cell < 0 {
			break // no movable cell under balance
		}

		// Apply the move.
		from := parts[cell]
		to := 1 - from
		cumGain += gain[cell]
		moves = append(moves, move{cell, gain[cell]})
		locked[cell] = true
		if from == 0 {
			area0 -= h.Area[cell]
		} else {
			area0 += h.Area[cell]
		}
		for _, ni := range cellNets[cell] {
			cnt[ni][from]--
			cnt[ni][to]++
		}
		parts[cell] = to
		// Update gains of unlocked neighbors on affected nets.
		for _, ni := range cellNets[cell] {
			for _, c := range h.Nets[ni] {
				if locked[c] {
					continue
				}
				ng := computeGain(c)
				if ng != gain[c] {
					gain[c] = ng
					buckets[bucketOf(ng)] = append(buckets[bucketOf(ng)], c)
				}
			}
		}
		if cumGain > bestGain {
			bestGain = cumGain
			bestIdx = len(moves) - 1
		}
	}

	// Roll back moves after the best prefix.
	for i := len(moves) - 1; i > bestIdx; i-- {
		c := moves[i].cell
		parts[c] = 1 - parts[c]
	}
	return bestGain > 0
}

// KWay partitions the hypergraph into k parts by recursive bisection,
// returning per-cell part IDs in [0,k). tol is the per-bisection balance
// tolerance. Part areas come out roughly equal.
func KWay(h *Hypergraph, k int, tol float64, seed int64) ([]int, error) {
	if err := h.Validate(); err != nil {
		return nil, err
	}
	if k < 1 {
		return nil, fmt.Errorf("partition: k must be >= 1, got %d", k)
	}
	n := h.N()
	parts := make([]int, n)
	if k == 1 || n == 0 {
		return parts, nil
	}
	cells := make([]int, n)
	for i := range cells {
		cells[i] = i
	}
	nextID := 0
	var rec func(cells []int, k int, seed int64)
	rec = func(cells []int, k int, seed int64) {
		if k == 1 || len(cells) == 0 {
			id := nextID
			nextID++
			for _, c := range cells {
				parts[c] = id
			}
			return
		}
		k0 := (k + 1) / 2
		frac := float64(k0) / float64(k)
		sub, back := induce(h, cells)
		assign, _ := Bipartition(sub, frac, tol, seed)
		var left, right []int
		for i, c := range back {
			if assign[i] == 0 {
				left = append(left, c)
			} else {
				right = append(right, c)
			}
		}
		// Degenerate split guard: force a size-based split.
		if len(left) == 0 || len(right) == 0 {
			sorted := append([]int(nil), cells...)
			sort.Slice(sorted, func(a, b int) bool { return h.Area[sorted[a]] > h.Area[sorted[b]] })
			mid := int(float64(len(sorted)) * frac)
			if mid == 0 {
				mid = 1
			}
			if mid >= len(sorted) {
				mid = len(sorted) - 1
			}
			left, right = sorted[:mid], sorted[mid:]
		}
		rec(left, k0, seed*2+1)
		rec(right, k-k0, seed*2+2)
	}
	rec(cells, k, seed)
	return parts, nil
}

// induce builds the sub-hypergraph on the given cells; back maps sub-cell
// indices to original indices.
func induce(h *Hypergraph, cells []int) (*Hypergraph, []int) {
	idx := make(map[int]int, len(cells))
	back := make([]int, len(cells))
	area := make([]float64, len(cells))
	for i, c := range cells {
		idx[c] = i
		back[i] = c
		area[i] = h.Area[c]
	}
	sub := &Hypergraph{Area: area}
	for _, net := range h.Nets {
		var cs []int
		for _, c := range net {
			if i, ok := idx[c]; ok {
				cs = append(cs, i)
			}
		}
		if len(cs) >= 2 {
			sub.Nets = append(sub.Nets, cs)
		}
	}
	return sub, back
}

// PartAreas returns the total area per part.
func PartAreas(h *Hypergraph, parts []int, k int) []float64 {
	areas := make([]float64, k)
	for c, p := range parts {
		areas[p] += h.Area[c]
	}
	return areas
}
