// Package core implements the paper's contribution: local area constrained
// retiming (LAC-retiming). Given a retiming graph whose vertices are mapped
// to capacity tiles of the floorplan, it finds a retiming that meets the
// target clock period while minimizing the number of flip-flops that
// violate per-tile area capacities.
//
// The LAC problem is an ILP (each tile constraint couples many retiming
// variables), so — following the paper — it is solved as a series of
// weighted minimum-area retimings: all units in a tile share an area
// weight, and after each solve the weights are adapted by
//
//	w_new(t) = w_old(t) * ((1-alpha) + alpha * AC(t)/C(t))
//
// which steers flip-flops away from over-utilized tiles. Iteration stops
// when all constraints are met or no improvement is seen for Nmax rounds.
// Clock-period constraints are generated once and reused across rounds.
package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"lacret/internal/obs"
	"lacret/internal/retime"
)

// Problem is a LAC-retiming instance.
type Problem struct {
	// Graph is the retiming graph (functional units, interconnect units,
	// ports).
	Graph *retime.Graph
	// Tclk is the target clock period.
	Tclk float64
	// TileOf maps every vertex to its capacity tile: a flip-flop on an
	// out-edge of vertex v occupies tile TileOf[v] (the paper's P
	// mapping: "each flip-flop is placed in the same tile as its fanin
	// functional unit or interconnect unit").
	TileOf []int
	// Cap is the remaining area capacity per tile (after repeater
	// insertion), in the same units as FFArea.
	Cap []float64
	// FFArea is the area of one flip-flop.
	FFArea float64
	// Constraints optionally supplies a prebuilt constraint system for
	// Graph at Tclk (for example reusing W/D matrices); when nil, Solve
	// builds it.
	Constraints *retime.Constraints
	// Source optionally supplies the constraint engine the planner
	// selected (dense matrices or the lazy sweep engine). When
	// Constraints is nil, constraint systems are regenerated through it
	// instead of materializing fresh dense W/D matrices; pair sets are
	// identical either way.
	Source retime.ConstraintSource
}

// buildConstraints regenerates the constraint system at Tclk through the
// planner's constraint engine when one is attached, falling back to a
// fresh dense build.
func (p *Problem) buildConstraints() (*retime.Constraints, error) {
	if p.Source != nil {
		return p.Graph.BuildConstraintsFrom(p.Tclk, p.Source)
	}
	return p.Graph.BuildConstraints(p.Tclk)
}

// Options tunes the LAC loop.
type Options struct {
	// Alpha blends the previous tile weight with the utilization ratio.
	// The zero value selects the paper's recommended default 0.2 unless
	// AlphaSet is true, in which case Alpha == 0 is honored literally
	// (tile weights never adapt; every round re-solves uniform weights).
	Alpha float64
	// AlphaSet marks Alpha as explicitly chosen, so a literal 0 is not
	// conflated with "use the default".
	AlphaSet bool
	// Nmax is the no-improvement round limit (default 5).
	Nmax int
	// MaxIters hard-caps the number of weighted min-area solves
	// (default 30).
	MaxIters int
	// ColdSolves disables the warm-started incremental flow engine: every
	// round rebuilds the constraint network and solves from zero flow
	// (the pre-incremental behavior; kept for benchmarking and as a
	// safety valve).
	ColdSolves bool
	// VerifyWarm cross-checks every round of the incremental engine
	// against a from-scratch solve and errors on any divergence in
	// labeling, register count, or weighted area — the warm/cold
	// equivalence gate. Costs one full cold solve per round; meant for
	// tests, not production runs.
	VerifyWarm bool
}

// IterStat records one weighted min-area round.
type IterStat struct {
	NFOA      int
	Registers int
	MaxRatio  float64 // worst AC(t)/C(t)
	// Duration is the wall time of this round's weighted min-area solve
	// (including violation accounting).
	Duration time.Duration
	// Warm is true when the round reused the flow engine's previous
	// residual network and potentials instead of solving from scratch.
	Warm bool
	// AugPaths counts the augmenting paths the flow engine ran this
	// round. Warm rounds route a localized supply delta through the
	// previous round's flow, or — when reweighting perturbs most supplies
	// — re-route from zero through the already-built network.
	AugPaths int
	// Phases counts the flow engine's multi-source Dijkstra searches this
	// round (each settles all deficits and batch-augments the forest).
	Phases int
	// CostChanged and SupplyChanged count the flow arcs and node supplies
	// that differed from the previous round when the solve started. In
	// the LAC loop the constraint arcs' costs are fixed bounds, so
	// CostChanged stays 0 and reweighting shows up purely in supplies.
	CostChanged   int
	SupplyChanged int
}

// Result is the outcome of LAC-retiming.
type Result struct {
	// R is the chosen retiming labeling; Retimed the resulting graph.
	R       []int
	Retimed *retime.Graph
	// NFOA is the number of flip-flops violating local area constraints
	// (sum over tiles of the flip-flops that do not fit).
	NFOA int
	// NF is the total number of flip-flops after retiming.
	NF int
	// NWR is the number of weighted min-area retimings performed.
	NWR int
	// TileFF holds the flip-flop count charged to each tile.
	TileFF []int
	// Violated lists tiles over capacity.
	Violated []int
	// Iters records per-round telemetry.
	Iters []IterStat
	// Truncated marks an anytime result: the context expired before the
	// LAC loop converged, and this is the best of the completed rounds
	// (SolveContext) or the min-area fallback an anytime caller degraded
	// to. The result is still a valid retiming — only the adaptive search
	// was cut short.
	Truncated bool
}

func (p *Problem) validate() error {
	if p.Graph == nil {
		return fmt.Errorf("core: nil graph")
	}
	if len(p.TileOf) != p.Graph.N() {
		return fmt.Errorf("core: TileOf has %d entries for %d vertices", len(p.TileOf), p.Graph.N())
	}
	for v, t := range p.TileOf {
		if t < 0 || t >= len(p.Cap) {
			return fmt.Errorf("core: vertex %d mapped to tile %d outside [0,%d)", v, t, len(p.Cap))
		}
	}
	if p.FFArea <= 0 {
		return fmt.Errorf("core: FFArea must be positive")
	}
	if p.Tclk <= 0 || math.IsNaN(p.Tclk) {
		return fmt.Errorf("core: invalid Tclk %g", p.Tclk)
	}
	return nil
}

// TileFFCounts returns, per tile, the number of flip-flops charged to it by
// the given (already retimed) graph under the problem's P mapping.
func (p *Problem) TileFFCounts(g *retime.Graph) []int {
	counts := make([]int, len(p.Cap))
	tails := g.RegistersPerEdgeTail()
	for v, c := range tails {
		counts[p.TileOf[v]] += c
	}
	return counts
}

// Violations computes N_FOA: the total number of flip-flops that do not fit
// their tile's capacity.
func (p *Problem) Violations(tileFF []int) (nfoa int, violated []int) {
	for t, c := range tileFF {
		over := float64(c)*p.FFArea - p.Cap[t]
		if over > 1e-9 {
			nfoa += int(math.Ceil(over / p.FFArea))
			violated = append(violated, t)
		}
	}
	return nfoa, violated
}

// MinAreaBaseline runs plain (uniform-weight) minimum-area retiming at Tclk
// and reports its violation metrics — the comparison column of Table 1.
func (p *Problem) MinAreaBaseline() (*Result, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	cs := p.Constraints
	if cs == nil {
		var err error
		cs, err = p.buildConstraints()
		if err != nil {
			return nil, err
		}
	}
	t0 := time.Now()
	ma, err := p.Graph.MinAreaWithConstraints(cs, nil)
	if err != nil {
		return nil, err
	}
	res := &Result{
		R:       ma.R,
		Retimed: ma.Retimed,
		NF:      ma.Registers,
		NWR:     1,
		TileFF:  p.TileFFCounts(ma.Retimed),
	}
	res.NFOA, res.Violated = p.Violations(res.TileFF)
	res.Iters = []IterStat{{NFOA: res.NFOA, Registers: res.NF, Duration: time.Since(t0),
		Warm: ma.Stats.Warm, AugPaths: ma.Stats.AugmentingPaths, Phases: ma.Stats.Phases,
		CostChanged: ma.Stats.CostChanged, SupplyChanged: ma.Stats.SupplyChanged}}
	return res, nil
}

// Solve runs the LAC-retiming heuristic. The weighted min-area rounds run
// on one persistent retime.MinAreaSolver: the constraint network is built
// once and each reweighting round warm-starts the min-cost flow from the
// previous round's residual state (see Options.ColdSolves to opt out).
func (p *Problem) Solve(opt Options) (*Result, error) {
	return p.SolveContext(context.Background(), opt)
}

// SolveContext is Solve as an anytime computation. The context is checked
// between rounds and forwarded into the flow engine (checked between its
// routing phases), so even a single pathological solve is interruptible.
// When the context fires after at least one completed round, the best
// result tracked so far is returned with Truncated set — no error; with no
// completed round, the context's error is returned.
func (p *Problem) SolveContext(ctx context.Context, opt Options) (*Result, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	alpha := opt.Alpha
	if alpha == 0 && !opt.AlphaSet {
		alpha = 0.2
	}
	if alpha < 0 || alpha > 1 {
		return nil, fmt.Errorf("core: alpha %g outside [0,1]", alpha)
	}
	if opt.Nmax <= 0 {
		opt.Nmax = 5
	}
	if opt.MaxIters <= 0 {
		opt.MaxIters = 30
	}
	cs := p.Constraints
	if cs == nil {
		var err error
		cs, err = p.buildConstraints()
		if err != nil {
			return nil, err
		}
	}

	var solver *retime.MinAreaSolver
	if !opt.ColdSolves {
		var err error
		solver, err = retime.NewMinAreaSolver(p.Graph, cs)
		if err != nil {
			return nil, err
		}
		// The flow engine needs the context when it must either honor a
		// deadline between phases or hang its per-solve spans off the
		// caller's recorder.
		if ctx.Done() != nil || obs.FromContext(ctx) != nil {
			solver.SetContext(ctx)
		}
	}

	nTiles := len(p.Cap)
	weight := make([]float64, nTiles)
	for t := range weight {
		weight[t] = 1
	}
	area := make([]float64, p.Graph.N())

	// Observability handles: nil no-ops unless the caller installed a
	// recorder on the context. Each weighted min-area round becomes one
	// "lac-round" sub-stage span carrying the paper's per-round telemetry
	// (N_FOA, registers, warm/cold engine stats, weight-rescale magnitude).
	reg := obs.FromContext(ctx).Registry()
	gNfoa := reg.Gauge("lac.nfoa")
	cRounds := reg.Counter("lac.rounds")
	hRound := reg.Histogram("lac.round_ms", obs.DurationBucketsMS)

	var best *Result
	noImprove := 0
	for iter := 0; iter < opt.MaxIters; iter++ {
		if cerr := ctx.Err(); cerr != nil {
			if best != nil {
				best.Truncated = true
				return best, nil
			}
			return nil, cerr
		}
		rctx, rsp := obs.StartSpan(ctx, "lac-round")
		cRounds.Inc()
		// Re-point the flow engine at the round's context so its per-solve
		// spans nest under this round rather than under the stage.
		if rsp != nil && solver != nil {
			solver.SetContext(rctx)
		}
		roundStart := time.Now()
		for v := 0; v < p.Graph.N(); v++ {
			area[v] = weight[p.TileOf[v]]
		}
		var ma *retime.MinAreaResult
		var err error
		if solver != nil {
			ma, err = solver.Resolve(area)
		} else {
			ma, err = p.Graph.MinAreaWithConstraints(cs, area)
		}
		if err != nil {
			rsp.End()
			// A solve aborted by the context mid-flow leaves the engine's
			// residual state undefined, but the best completed round is
			// still a valid result — surface it as the anytime answer.
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				if best != nil {
					best.Truncated = true
					return best, nil
				}
				return nil, ctx.Err()
			}
			return nil, err
		}
		if opt.VerifyWarm && solver != nil {
			if err := p.verifyWarm(cs, area, ma); err != nil {
				rsp.End()
				return nil, err
			}
		}
		tileFF := p.TileFFCounts(ma.Retimed)
		nfoa, violated := p.Violations(tileFF)
		cur := &Result{
			R:        ma.R,
			Retimed:  ma.Retimed,
			NFOA:     nfoa,
			NF:       ma.Registers,
			TileFF:   tileFF,
			Violated: violated,
		}
		maxRatio := 0.0
		for t, c := range tileFF {
			ratio := utilization(float64(c)*p.FFArea, p.Cap[t], p.FFArea)
			if ratio > maxRatio {
				maxRatio = ratio
			}
		}
		stat := IterStat{NFOA: nfoa, Registers: ma.Registers, MaxRatio: maxRatio,
			Duration: time.Since(roundStart),
			Warm:     ma.Stats.Warm, AugPaths: ma.Stats.AugmentingPaths, Phases: ma.Stats.Phases,
			CostChanged: ma.Stats.CostChanged, SupplyChanged: ma.Stats.SupplyChanged}
		gNfoa.Set(float64(nfoa))
		hRound.Observe(float64(stat.Duration.Microseconds()) / 1000)
		rsp.SetAttr("nfoa", float64(nfoa))
		rsp.SetAttr("registers", float64(ma.Registers))
		rsp.SetAttr("max_ratio", maxRatio)
		warmF := 0.0
		if ma.Stats.Warm {
			warmF = 1
		}
		rsp.SetAttr("warm", warmF)
		rsp.SetAttr("augpaths", float64(ma.Stats.AugmentingPaths))
		rsp.SetAttr("phases", float64(ma.Stats.Phases))
		rsp.SetAttr("cost_changed", float64(ma.Stats.CostChanged))
		rsp.SetAttr("supply_changed", float64(ma.Stats.SupplyChanged))

		if best == nil || cur.NFOA < best.NFOA || (cur.NFOA == best.NFOA && cur.NF < best.NF) {
			iters := best.itersOrNil()
			best = cur
			best.Iters = iters
			noImprove = 0
		} else {
			noImprove++
		}
		best.Iters = append(best.Iters, stat)
		best.NWR = iter + 1
		if best.NFOA == 0 || noImprove >= opt.Nmax {
			rsp.End()
			break
		}

		// The span records how hard the reweighting kicked the solver: the
		// largest absolute per-tile weight change, renormalization included.
		var oldWeight []float64
		if rsp != nil {
			oldWeight = append([]float64(nil), weight...)
		}
		// Adapt tile weights (paper step 6), then renormalize to the mean
		// so the magnitudes stay bounded across rounds.
		sum := 0.0
		for t := range weight {
			ratio := utilization(float64(tileFF[t])*p.FFArea, p.Cap[t], p.FFArea)
			weight[t] *= (1 - alpha) + alpha*ratio
			sum += weight[t]
		}
		mean := sum / float64(nTiles)
		if mean > 0 {
			for t := range weight {
				weight[t] /= mean
			}
		}
		if rsp != nil {
			rescale := 0.0
			for t := range weight {
				if d := math.Abs(weight[t] - oldWeight[t]); d > rescale {
					rescale = d
				}
			}
			rsp.SetAttr("weight_rescale", rescale)
		}
		rsp.End()
	}
	return best, nil
}

// verifyWarm is the warm/cold equivalence gate: it re-solves the round
// from scratch and errors if the incremental engine's answer differs in
// labeling, register count, or weighted area. Labels are compared exactly —
// residual shortest-path potentials span the optimal dual face, which is
// the same for every optimal flow, so warm and cold must agree bit for bit.
func (p *Problem) verifyWarm(cs *retime.Constraints, area []float64, warm *retime.MinAreaResult) error {
	cold, err := p.Graph.MinAreaWithConstraints(cs, area)
	if err != nil {
		return fmt.Errorf("core: warm/cold gate: cold solve failed: %v", err)
	}
	if warm.Registers != cold.Registers {
		return fmt.Errorf("core: warm/cold gate: registers %d (warm) != %d (cold)",
			warm.Registers, cold.Registers)
	}
	if math.Abs(warm.WeightedArea-cold.WeightedArea) > 1e-9 {
		return fmt.Errorf("core: warm/cold gate: weighted area %g (warm) != %g (cold)",
			warm.WeightedArea, cold.WeightedArea)
	}
	for v := range warm.R {
		if warm.R[v] != cold.R[v] {
			return fmt.Errorf("core: warm/cold gate: label r(%d) = %d (warm) != %d (cold)",
				v, warm.R[v], cold.R[v])
		}
	}
	return nil
}

func (r *Result) itersOrNil() []IterStat {
	if r == nil {
		return nil
	}
	return r.Iters
}

// utilization returns AC/C with a guard for (near-)zero capacities: a tile
// with no capacity but content is treated as heavily over-utilized, and the
// ratio is capped so weights cannot explode in one round.
func utilization(ac, cap, ffArea float64) float64 {
	const maxRatio = 16
	if cap < ffArea {
		cap = ffArea
	}
	r := ac / cap
	if r > maxRatio {
		return maxRatio
	}
	return r
}
