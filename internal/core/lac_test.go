package core

import (
	"math/rand"
	"testing"

	"lacret/internal/retime"
)

// tightLoose builds: pi -> a -> b -> po with one movable register (on a->b)
// and two tiles: tile 0 (tight, zero capacity) holding pi and a; tile 1
// (roomy) holding b and po. Plain min-area retiming has no reason to move
// the register out of tile 0; LAC must.
func tightLoose() *Problem {
	rg := retime.NewGraph()
	pi := rg.AddVertex("pi", retime.KindPort, 0)
	a := rg.AddVertex("a", retime.KindUnit, 1)
	b := rg.AddVertex("b", retime.KindUnit, 1)
	po := rg.AddVertex("po", retime.KindPort, 0)
	rg.AddEdge(pi, a, 0)
	rg.AddEdge(a, b, 1)
	rg.AddEdge(b, po, 0)
	return &Problem{
		Graph:  rg,
		Tclk:   10,
		TileOf: []int{0, 0, 1, 1},
		Cap:    []float64{0, 1000},
		FFArea: 10,
	}
}

func TestMinAreaBaselineReportsViolation(t *testing.T) {
	p := tightLoose()
	res, err := p.MinAreaBaseline()
	if err != nil {
		t.Fatal(err)
	}
	if res.NF != 1 {
		t.Fatalf("NF=%d", res.NF)
	}
	// Uniform min-area is indifferent; whichever placement it picks, the
	// accounting must be consistent.
	nfoa, _ := p.Violations(res.TileFF)
	if nfoa != res.NFOA {
		t.Fatalf("inconsistent NFOA %d vs %d", res.NFOA, nfoa)
	}
}

func TestLACMovesRegisterOutOfTightTile(t *testing.T) {
	p := tightLoose()
	res, err := p.Solve(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.NFOA != 0 {
		t.Fatalf("NFOA=%d after LAC (tileFF=%v)", res.NFOA, res.TileFF)
	}
	if res.TileFF[0] != 0 || res.TileFF[1] != 1 {
		t.Fatalf("tileFF=%v", res.TileFF)
	}
	if res.NF != 1 {
		t.Fatalf("NF=%d", res.NF)
	}
	if res.NWR < 1 {
		t.Fatalf("NWR=%d", res.NWR)
	}
	// Period still met.
	if err := p.Graph.CheckFeasible(res.R, p.Tclk); err != nil {
		t.Fatal(err)
	}
}

// ringProblem: a ring of 6 unit-delay vertices over 3 tiles (2 vertices
// each) carrying 3 registers; capacities allow registers only in specific
// tiles.
func ringProblem(caps []float64) *Problem {
	rg := retime.NewGraph()
	for i := 0; i < 6; i++ {
		rg.AddVertex("u", retime.KindUnit, 1)
	}
	for i := 0; i < 5; i++ {
		rg.AddEdge(i, i+1, 0)
	}
	rg.AddEdge(5, 0, 3)
	return &Problem{
		Graph:  rg,
		Tclk:   2,
		TileOf: []int{0, 0, 1, 1, 2, 2},
		Cap:    caps,
		FFArea: 1,
	}
}

func TestLACOnRingRespectsPeriodAndCaps(t *testing.T) {
	// Tclk=2 needs a register every 2 delay units: 3 registers spread out.
	// Give each tile capacity 1: a valid solution puts one register per
	// tile.
	p := ringProblem([]float64{1, 1, 1})
	res, err := p.Solve(Options{Nmax: 8, MaxIters: 40})
	if err != nil {
		t.Fatal(err)
	}
	if res.NFOA != 0 {
		t.Fatalf("NFOA=%d tileFF=%v", res.NFOA, res.TileFF)
	}
	if err := p.Graph.CheckFeasible(res.R, p.Tclk); err != nil {
		t.Fatal(err)
	}
	if res.NF != 3 {
		t.Fatalf("NF=%d", res.NF)
	}
}

func TestLACInfeasibleCapacityStillReturnsBest(t *testing.T) {
	// Zero capacity everywhere: violations are unavoidable; LAC must
	// return its best attempt, not fail.
	p := ringProblem([]float64{0, 0, 0})
	res, err := p.Solve(Options{Nmax: 3, MaxIters: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.NFOA == 0 {
		t.Fatal("expected violations with zero capacity")
	}
	if res.NF != 3 {
		t.Fatalf("NF=%d", res.NF)
	}
	if len(res.Iters) == 0 || res.NWR == 0 {
		t.Fatalf("missing telemetry: %+v", res)
	}
}

func TestLACNeverWorseThanMinArea(t *testing.T) {
	for _, caps := range [][]float64{
		{1, 1, 1}, {0, 3, 0}, {3, 0, 0}, {2, 2, 2}, {0, 0, 3},
	} {
		p := ringProblem(caps)
		ma, err := p.MinAreaBaseline()
		if err != nil {
			t.Fatal(err)
		}
		lac, err := p.Solve(Options{Nmax: 8, MaxIters: 40})
		if err != nil {
			t.Fatal(err)
		}
		if lac.NFOA > ma.NFOA {
			t.Fatalf("caps %v: LAC NFOA %d > min-area %d", caps, lac.NFOA, ma.NFOA)
		}
	}
}

func TestLACInfeasiblePeriod(t *testing.T) {
	p := tightLoose()
	p.Tclk = 0.5 // below unit delay
	if _, err := p.Solve(Options{}); err == nil {
		t.Fatal("infeasible period accepted")
	}
}

func TestProblemValidation(t *testing.T) {
	good := tightLoose()
	bad := *good
	bad.TileOf = []int{0}
	if _, err := bad.Solve(Options{}); err == nil {
		t.Fatal("short TileOf accepted")
	}
	bad = *good
	bad.TileOf = []int{0, 0, 9, 0}
	if _, err := bad.Solve(Options{}); err == nil {
		t.Fatal("out-of-range tile accepted")
	}
	bad = *good
	bad.FFArea = 0
	if _, err := bad.Solve(Options{}); err == nil {
		t.Fatal("zero FFArea accepted")
	}
	bad = *good
	bad.Tclk = -1
	if _, err := bad.Solve(Options{}); err == nil {
		t.Fatal("negative Tclk accepted")
	}
	if _, err := good.Solve(Options{Alpha: 2}); err == nil {
		t.Fatal("alpha > 1 accepted")
	}
	var nilGraph Problem = *good
	nilGraph.Graph = nil
	if _, err := nilGraph.Solve(Options{}); err == nil {
		t.Fatal("nil graph accepted")
	}
}

func TestConstraintReuse(t *testing.T) {
	p := tightLoose()
	cs, err := p.Graph.BuildConstraints(p.Tclk)
	if err != nil {
		t.Fatal(err)
	}
	p.Constraints = cs
	res, err := p.Solve(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.NFOA != 0 {
		t.Fatalf("NFOA=%d", res.NFOA)
	}
}

func TestUtilizationGuard(t *testing.T) {
	if utilization(100, 0, 1) != 16 {
		t.Fatal("zero capacity should cap at max ratio")
	}
	if utilization(5, 10, 1) != 0.5 {
		t.Fatal("plain ratio")
	}
	if utilization(1e9, 10, 1) != 16 {
		t.Fatal("cap at max ratio")
	}
}

func TestViolationsCeil(t *testing.T) {
	p := tightLoose()
	p.Cap = []float64{15, 1000} // 1.5 FFs of capacity in tile 0
	nfoa, violated := p.Violations([]int{3, 0})
	// 3 FFs x 10 area = 30; over = 15 -> ceil(15/10) = 2 FFs don't fit.
	if nfoa != 2 || len(violated) != 1 || violated[0] != 0 {
		t.Fatalf("nfoa=%d violated=%v", nfoa, violated)
	}
}

func TestSolveExactMatchesKnownOptimum(t *testing.T) {
	p := tightLoose()
	res, err := p.SolveExact()
	if err != nil {
		t.Fatal(err)
	}
	if res.NFOA != 0 || res.NF != 1 {
		t.Fatalf("exact: NFOA=%d NF=%d", res.NFOA, res.NF)
	}
	if err := p.Graph.CheckFeasible(res.R, p.Tclk); err != nil {
		t.Fatal(err)
	}
}

func TestSolveExactInfeasiblePeriod(t *testing.T) {
	p := tightLoose()
	p.Tclk = 0.5
	if _, err := p.SolveExact(); err == nil {
		t.Fatal("infeasible period accepted")
	}
}

// TestHeuristicOptimalityGap measures the paper's heuristic against the
// exact ILP optimum on small random instances: the heuristic can never be
// better, and on these sizes it should usually match.
func TestHeuristicOptimalityGap(t *testing.T) {
	rng := rand.New(rand.NewSource(111))
	trials, matched := 0, 0
	for iter := 0; iter < 30; iter++ {
		// Small ring with chords over 3 tiles, random tight capacities.
		nv := 4 + rng.Intn(3)
		rg := retime.NewGraph()
		for i := 0; i < nv; i++ {
			rg.AddVertex("u", retime.KindUnit, 1)
		}
		for i := 0; i+1 < nv; i++ {
			rg.AddEdge(i, i+1, rng.Intn(2))
		}
		rg.AddEdge(nv-1, 0, 1+rng.Intn(2))
		tileOf := make([]int, nv)
		for i := range tileOf {
			tileOf[i] = rng.Intn(3)
		}
		caps := []float64{float64(rng.Intn(3)), float64(rng.Intn(3)), float64(rng.Intn(3))}
		p := &Problem{
			Graph: rg, Tclk: float64(2 + rng.Intn(3)),
			TileOf: tileOf, Cap: caps, FFArea: 1,
		}
		exact, err := p.SolveExact()
		if err != nil {
			continue // infeasible period for this instance
		}
		heur, err := p.Solve(Options{Nmax: 6, MaxIters: 25})
		if err != nil {
			t.Fatalf("iter %d: heuristic failed where exact succeeded: %v", iter, err)
		}
		trials++
		if heur.NFOA < exact.NFOA {
			t.Fatalf("iter %d: heuristic %d beat the exact optimum %d", iter, heur.NFOA, exact.NFOA)
		}
		if heur.NFOA == exact.NFOA {
			matched++
		}
	}
	if trials == 0 {
		t.Skip("no feasible instances generated")
	}
	// The heuristic should match the optimum on a solid majority of these
	// tiny instances.
	if matched*2 < trials {
		t.Fatalf("heuristic matched the optimum on only %d/%d instances", matched, trials)
	}
	t.Logf("heuristic matched the exact ILP optimum on %d/%d instances", matched, trials)
}

// TestAlphaZeroHonored pins the Options.Alpha sentinel fix: Alpha: 0 with
// AlphaSet freezes the tile weights, so every round re-solves the identical
// uniform problem, nothing ever improves on round 1, and the loop runs out
// its full no-improvement window. Before the fix, Alpha == 0 silently
// became 0.2 and pure unweighted reweighting was unrequestable.
func TestAlphaZeroHonored(t *testing.T) {
	p := ringProblem([]float64{0, 0, 0}) // violations unavoidable: never stops early
	nmax := 3
	res, err := p.Solve(Options{Alpha: 0, AlphaSet: true, Nmax: nmax, MaxIters: 40})
	if err != nil {
		t.Fatal(err)
	}
	if want := 1 + nmax; res.NWR != want {
		t.Fatalf("NWR=%d, want %d (round 1 + full no-improvement window)", res.NWR, want)
	}
	for i, it := range res.Iters {
		if it.NFOA != res.Iters[0].NFOA || it.Registers != res.Iters[0].Registers {
			t.Fatalf("round %d differs under frozen weights: %+v vs %+v", i+1, it, res.Iters[0])
		}
	}
	// Without AlphaSet the zero value still selects the 0.2 default (the
	// long-standing behavior every existing caller relies on).
	if _, err := p.Solve(Options{Alpha: 0, Nmax: nmax, MaxIters: 40}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Solve(Options{Alpha: -0.1, AlphaSet: true}); err == nil {
		t.Fatal("negative alpha accepted")
	}
}

// TestLACIterationAccounting locks the telemetry contract: one IterStat per
// weighted min-area round, wall time populated on every round, and the
// incremental-engine counters consistent with the LAC structure (round 1
// cold, later rounds warm, constraint arc costs never change).
func TestLACIterationAccounting(t *testing.T) {
	for _, caps := range [][]float64{{1, 1, 1}, {0, 0, 0}, {0, 3, 0}} {
		p := ringProblem(caps)
		res, err := p.Solve(Options{Nmax: 4, MaxIters: 20})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Iters) != res.NWR {
			t.Fatalf("caps %v: len(Iters)=%d, NWR=%d", caps, len(res.Iters), res.NWR)
		}
		for i, it := range res.Iters {
			if it.Duration <= 0 {
				t.Fatalf("caps %v: round %d has no Duration", caps, i+1)
			}
			if it.Warm != (i > 0) {
				t.Fatalf("caps %v: round %d Warm=%v", caps, i+1, it.Warm)
			}
			if it.CostChanged != 0 {
				t.Fatalf("caps %v: round %d changed %d arc costs; LAC rounds only move supplies",
					caps, i+1, it.CostChanged)
			}
			if i > 0 && it.SupplyChanged == 0 && it.AugPaths > 0 {
				t.Fatalf("caps %v: round %d ran %d augmenting paths with no supply change",
					caps, i+1, it.AugPaths)
			}
		}
	}
}

// TestMinAreaBaselineMatchesSolveRound1 pins that the baseline column of
// Table 1 and the LAC loop's first round are the same solve: uniform
// weights, identical NFOA and violated-tile accounting.
func TestMinAreaBaselineMatchesSolveRound1(t *testing.T) {
	for _, caps := range [][]float64{{1, 1, 1}, {0, 0, 0}, {0, 3, 0}, {2, 2, 2}} {
		p := ringProblem(caps)
		base, err := p.MinAreaBaseline()
		if err != nil {
			t.Fatal(err)
		}
		if len(base.Iters) != 1 || base.NWR != 1 {
			t.Fatalf("caps %v: baseline telemetry %d iters, NWR=%d", caps, len(base.Iters), base.NWR)
		}
		if base.Iters[0].Duration <= 0 {
			t.Fatalf("caps %v: baseline round has no Duration", caps)
		}
		round1, err := p.Solve(Options{MaxIters: 1})
		if err != nil {
			t.Fatal(err)
		}
		if round1.NFOA != base.NFOA || round1.NF != base.NF {
			t.Fatalf("caps %v: round 1 NFOA=%d NF=%d, baseline NFOA=%d NF=%d",
				caps, round1.NFOA, round1.NF, base.NFOA, base.NF)
		}
		if len(round1.Violated) != len(base.Violated) {
			t.Fatalf("caps %v: violated %v vs baseline %v", caps, round1.Violated, base.Violated)
		}
		for i := range round1.Violated {
			if round1.Violated[i] != base.Violated[i] {
				t.Fatalf("caps %v: violated %v vs baseline %v", caps, round1.Violated, base.Violated)
			}
		}
	}
}

// TestSolveWarmEqualsCold runs the full LAC loop twice — once on the
// incremental engine with the per-round warm/cold gate armed, once forced
// cold — and requires the identical trajectory: same labeling, violation
// count, register count, and round count.
func TestSolveWarmEqualsCold(t *testing.T) {
	problems := []*Problem{
		tightLoose(),
		ringProblem([]float64{1, 1, 1}),
		ringProblem([]float64{0, 0, 0}),
		ringProblem([]float64{0, 3, 0}),
	}
	for pi, p := range problems {
		warm, err := p.Solve(Options{Nmax: 6, MaxIters: 25, VerifyWarm: true})
		if err != nil {
			t.Fatalf("problem %d: warm: %v", pi, err)
		}
		cold, err := p.Solve(Options{Nmax: 6, MaxIters: 25, ColdSolves: true})
		if err != nil {
			t.Fatalf("problem %d: cold: %v", pi, err)
		}
		if warm.NFOA != cold.NFOA || warm.NF != cold.NF || warm.NWR != cold.NWR {
			t.Fatalf("problem %d: warm NFOA/NF/NWR %d/%d/%d != cold %d/%d/%d",
				pi, warm.NFOA, warm.NF, warm.NWR, cold.NFOA, cold.NF, cold.NWR)
		}
		for v := range warm.R {
			if warm.R[v] != cold.R[v] {
				t.Fatalf("problem %d: r(%d) = %d warm, %d cold", pi, v, warm.R[v], cold.R[v])
			}
		}
		for _, it := range cold.Iters {
			if it.Warm {
				t.Fatalf("problem %d: ColdSolves round reported Warm", pi)
			}
		}
	}
}

// TestSolveWarmEqualsColdRandom is the randomized half of the warm/cold
// equivalence gate: random small instances (the optimality-gap generator's
// shape), every round cross-checked against a from-scratch solve by
// VerifyWarm, and the final results compared against a forced-cold run.
func TestSolveWarmEqualsColdRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(271))
	for iter := 0; iter < 40; iter++ {
		nv := 4 + rng.Intn(4)
		rg := retime.NewGraph()
		for i := 0; i < nv; i++ {
			rg.AddVertex("u", retime.KindUnit, 1)
		}
		for i := 0; i+1 < nv; i++ {
			rg.AddEdge(i, i+1, rng.Intn(2))
		}
		rg.AddEdge(nv-1, 0, 1+rng.Intn(2))
		tileOf := make([]int, nv)
		for i := range tileOf {
			tileOf[i] = rng.Intn(3)
		}
		caps := []float64{float64(rng.Intn(3)), float64(rng.Intn(3)), float64(rng.Intn(3))}
		p := &Problem{
			Graph: rg, Tclk: float64(2 + rng.Intn(3)),
			TileOf: tileOf, Cap: caps, FFArea: 1,
		}
		warm, err := p.Solve(Options{Nmax: 5, MaxIters: 20, VerifyWarm: true})
		if err != nil {
			if _, infeasible := errInfeasible(err); infeasible {
				continue
			}
			t.Fatalf("iter %d: %v", iter, err)
		}
		cold, err := p.Solve(Options{Nmax: 5, MaxIters: 20, ColdSolves: true})
		if err != nil {
			t.Fatalf("iter %d: cold: %v", iter, err)
		}
		if warm.NFOA != cold.NFOA || warm.NF != cold.NF || warm.NWR != cold.NWR {
			t.Fatalf("iter %d: warm NFOA/NF/NWR %d/%d/%d != cold %d/%d/%d",
				iter, warm.NFOA, warm.NF, warm.NWR, cold.NFOA, cold.NF, cold.NWR)
		}
		for v := range warm.R {
			if warm.R[v] != cold.R[v] {
				t.Fatalf("iter %d: r(%d) = %d warm, %d cold", iter, v, warm.R[v], cold.R[v])
			}
		}
	}
}

// errInfeasible reports whether err is a retiming infeasibility (the random
// generator produces periods below the minimum achievable).
func errInfeasible(err error) (retime.ErrInfeasible, bool) {
	e, ok := err.(retime.ErrInfeasible)
	return e, ok
}
