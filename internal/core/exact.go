package core

import (
	"fmt"
	"math"

	"lacret/internal/retime"
)

// SolveExact solves the LAC-retiming instance exactly by enumerating all
// feasible integral labelings with interval propagation over the
// difference constraints — the ILP the paper proves the problem to be
// (§4.2: "it is a integer linear programming problem, which is
// NP-Complete"). It minimizes N_FOA with N_F as tie-breaker.
//
// The search is exponential; it exists to measure the optimality gap of
// the paper's adaptive-weight heuristic on small instances (see the
// ablation tests). Use Solve for anything real.
func (p *Problem) SolveExact() (*Result, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	cs := p.Constraints
	if cs == nil {
		var err error
		cs, err = p.Graph.BuildConstraints(p.Tclk)
		if err != nil {
			return nil, err
		}
	}
	n := p.Graph.N()

	// Initial domains from the difference constraints: anchor at the
	// first pinned vertex (or vertex 0) and take shortest-path bounds in
	// both directions. Constraint r(u) − r(v) ≤ b gives, for any anchor a,
	// r(u) ≤ r(v) + b, so hi/lo bounds follow from Bellman–Ford over the
	// constraint graph from/to the anchor.
	anchor := 0
	for v := 0; v < n; v++ {
		if p.Graph.Pinned(v) {
			anchor = v
			break
		}
	}
	const inf = math.MaxInt32
	hi := make([]int, n)
	lo := make([]int, n)
	for v := range hi {
		hi[v] = inf
		lo[v] = -inf
	}
	hi[anchor], lo[anchor] = 0, 0
	for iter := 0; iter <= n+1; iter++ {
		changed := false
		for _, c := range cs.Cons {
			// r(U) <= r(V) + b tightens hi[U]; r(V) >= r(U) - b tightens lo[V].
			if hi[c.V] != inf && hi[c.V]+c.Bound < hi[c.U] {
				hi[c.U] = hi[c.V] + c.Bound
				changed = true
			}
			if lo[c.U] != -inf && lo[c.U]-c.Bound > lo[c.V] {
				lo[c.V] = lo[c.U] - c.Bound
				changed = true
			}
		}
		if !changed {
			break
		}
		if iter == n+1 {
			return nil, retime.ErrInfeasible{T: p.Tclk}
		}
	}
	for v := 0; v < n; v++ {
		if hi[v] == inf || lo[v] == -inf {
			// Unconstrained relative to the anchor (disconnected);
			// restrict to a small window around zero — larger labels only
			// move registers around without new placements on finite
			// graphs of this size.
			if hi[v] == inf {
				hi[v] = n
			}
			if lo[v] == -inf {
				lo[v] = -n
			}
		}
		if lo[v] > hi[v] {
			return nil, retime.ErrInfeasible{T: p.Tclk}
		}
	}

	// Bound the search space; SolveExact is for small instances only.
	space := 1.0
	for v := 0; v < n; v++ {
		space *= float64(hi[v] - lo[v] + 1)
		if space > 5e7 {
			return nil, fmt.Errorf("core: exact search space too large (%d vertices)", n)
		}
	}

	// Index constraints by vertex for incremental checking.
	consOf := make([][]retime.Constraint, n)
	for _, c := range cs.Cons {
		consOf[c.U] = append(consOf[c.U], c)
		consOf[c.V] = append(consOf[c.V], c)
	}

	r := make([]int, n)
	assigned := make([]bool, n)
	var best *Result
	var rec func(v int)
	rec = func(v int) {
		if v == n {
			retimed, err := p.Graph.Apply(r)
			if err != nil {
				return
			}
			tileFF := p.TileFFCounts(retimed)
			nfoa, violated := p.Violations(tileFF)
			nf := retimed.TotalRegisters()
			if best == nil || nfoa < best.NFOA || (nfoa == best.NFOA && nf < best.NF) {
				best = &Result{
					R:        append([]int(nil), r...),
					Retimed:  retimed,
					NFOA:     nfoa,
					NF:       nf,
					TileFF:   tileFF,
					Violated: violated,
					NWR:      0,
				}
			}
			return
		}
		for val := lo[v]; val <= hi[v]; val++ {
			r[v] = val
			assigned[v] = true
			ok := true
			for _, c := range consOf[v] {
				if assigned[c.U] && assigned[c.V] && r[c.U]-r[c.V] > c.Bound {
					ok = false
					break
				}
			}
			if ok {
				rec(v + 1)
			}
			assigned[v] = false
		}
	}
	rec(0)
	if best == nil {
		return nil, retime.ErrInfeasible{T: p.Tclk}
	}
	// Normalize to the anchor (pinned vertices are fixed at 0 by their
	// domains already, since the anchor is pinned when any pin exists).
	return best, nil
}
