// Package repeater implements Lmax-constrained repeater insertion along
// routed tile paths by dynamic programming (in the style of the practical
// buffer-planning methodology the paper builds on): choose repeater
// locations among the tile centers of a route so that no wire span between
// consecutive repeaters exceeds Lmax, minimizing Elmore delay with a mild
// preference for fewer repeaters and for tiles that still have insertion
// capacity.
//
// The resulting segmentation is exactly the paper's "natural segmentation
// of an interconnect into interconnect units": each segment becomes an
// interconnect-unit vertex of the retiming graph with a fixed delay
// (repeater + driven wire), and the segment end is where a relocated
// flip-flop would physically sit.
package repeater

import (
	"fmt"
	"math"

	"lacret/internal/route"
	"lacret/internal/tech"
	"lacret/internal/tile"
)

// Segment is one repeater-to-repeater span of a planned interconnect.
type Segment struct {
	// Length of the wire span (um).
	Length float64
	// Delay of the span: driver (repeater) delay plus Elmore wire delay.
	Delay float64
	// DriverCell is the grid cell of the span's driver (the source unit
	// for the first segment, an inserted repeater afterwards).
	DriverCell int
	// EndCell is the grid cell where the span terminates — the next
	// repeater or the sink, and the natural insertion point for a
	// flip-flop retimed onto the edge after this segment.
	EndCell int
}

// Plan is the repeater plan for one source→sink connection.
type Plan struct {
	Segments []Segment
	// Repeaters inserted (interior stops; excludes source driver & sink).
	Repeaters int
	// TotalDelay is the end-to-end interconnect delay (ns).
	TotalDelay float64
	// Length is the total route length (um).
	Length float64
}

// Options tunes the DP.
type Options struct {
	// RepeaterBias is a per-repeater delay bias (ns) discouraging
	// unnecessary stops (default 0.01).
	RepeaterBias float64
	// CongestionPenalty is the delay-equivalent penalty (ns) for placing
	// a repeater in a tile with no remaining capacity (default 0.5).
	CongestionPenalty float64
	// Reserve consumes repeater area from the grid when true.
	Reserve bool
}

// Insert plans repeaters along the given cell path (as returned by
// route.Tree.PathTo). A single-cell path yields an empty plan (intra-tile
// connection). An error is returned when the tile pitch exceeds Lmax —
// then no legal plan exists on this grid.
func Insert(g *tile.Grid, tc tech.Tech, path []int, opt Options) (*Plan, error) {
	if len(path) == 0 {
		return nil, fmt.Errorf("repeater: empty path")
	}
	if opt.RepeaterBias == 0 {
		opt.RepeaterBias = 0.01
	}
	if opt.RepeaterBias < 0 || opt.CongestionPenalty < 0 {
		return nil, fmt.Errorf("repeater: negative penalty options")
	}
	if opt.CongestionPenalty == 0 {
		opt.CongestionPenalty = 0.5
	}
	if len(path) == 1 {
		return &Plan{}, nil
	}
	// Cumulative distance of each path cell from the source cell center.
	n := len(path)
	pos := make([]float64, n)
	for i := 1; i < n; i++ {
		step := g.TileH
		if path[i-1]/g.Cols == path[i]/g.Cols {
			step = g.TileW
		}
		pos[i] = pos[i-1] + step
		if step > tc.Lmax {
			return nil, fmt.Errorf("repeater: tile pitch %g exceeds Lmax %g", step, tc.Lmax)
		}
	}

	// DP over path indices: best[i] = minimal cost with a stop at i.
	const inf = math.MaxFloat64
	best := make([]float64, n)
	prev := make([]int, n)
	for i := range best {
		best[i] = inf
		prev[i] = -1
	}
	best[0] = 0
	stopPenalty := func(i int) float64 {
		if i == 0 || i == n-1 {
			return 0 // source driver and sink are not inserted repeaters
		}
		p := opt.RepeaterBias
		if g.Free(g.CapTile(path[i])) < tc.RepeaterArea {
			p += opt.CongestionPenalty
		}
		return p
	}
	for i := 1; i < n; i++ {
		for j := i - 1; j >= 0; j-- {
			span := pos[i] - pos[j]
			if span > tc.Lmax {
				break
			}
			if best[j] == inf {
				continue
			}
			c := best[j] + tc.SegmentDelay(span) + stopPenalty(i)
			if c < best[i] {
				best[i] = c
				prev[i] = j
			}
		}
	}
	if best[n-1] == inf {
		return nil, fmt.Errorf("repeater: no feasible segmentation under Lmax %g", tc.Lmax)
	}

	// Recover stops.
	var stops []int
	for i := n - 1; i != -1; i = prev[i] {
		stops = append(stops, i)
	}
	for i, j := 0, len(stops)-1; i < j; i, j = i+1, j-1 {
		stops[i], stops[j] = stops[j], stops[i]
	}

	plan := &Plan{Length: pos[n-1]}
	for k := 1; k < len(stops); k++ {
		from, to := stops[k-1], stops[k]
		seg := Segment{
			Length:     pos[to] - pos[from],
			DriverCell: path[from],
			EndCell:    path[to],
		}
		seg.Delay = tc.SegmentDelay(seg.Length)
		plan.Segments = append(plan.Segments, seg)
		plan.TotalDelay += seg.Delay
		if k < len(stops)-1 {
			plan.Repeaters++
			if opt.Reserve {
				g.Reserve(g.CapTile(path[to]), tc.RepeaterArea)
			}
		}
	}
	return plan, nil
}

// PlanConnection routes-then-segments in one call: extracts the tree path
// to the sink and runs Insert on it.
func PlanConnection(g *tile.Grid, tc tech.Tech, tr *route.Tree, sink int, opt Options) (*Plan, error) {
	path, err := tr.PathTo(sink)
	if err != nil {
		return nil, err
	}
	return Insert(g, tc, path, opt)
}

// Validate checks a plan's invariants: spans within Lmax, consistent
// delays, and contiguous driver/end cells.
func (p *Plan) Validate(tc tech.Tech) error {
	sum := 0.0
	length := 0.0
	for i, s := range p.Segments {
		if s.Length <= 0 {
			return fmt.Errorf("repeater: segment %d has nonpositive length", i)
		}
		if s.Length > tc.Lmax+1e-9 {
			return fmt.Errorf("repeater: segment %d length %g exceeds Lmax", i, s.Length)
		}
		if math.Abs(s.Delay-tc.SegmentDelay(s.Length)) > 1e-9 {
			return fmt.Errorf("repeater: segment %d delay inconsistent", i)
		}
		if i > 0 && p.Segments[i-1].EndCell != s.DriverCell {
			return fmt.Errorf("repeater: segment %d not contiguous", i)
		}
		sum += s.Delay
		length += s.Length
	}
	if math.Abs(sum-p.TotalDelay) > 1e-6 {
		return fmt.Errorf("repeater: total delay %g != sum %g", p.TotalDelay, sum)
	}
	if math.Abs(length-p.Length) > 1e-6 {
		return fmt.Errorf("repeater: total length %g != sum %g", p.Length, length)
	}
	if len(p.Segments) > 0 && p.Repeaters != len(p.Segments)-1 {
		return fmt.Errorf("repeater: %d repeaters for %d segments", p.Repeaters, len(p.Segments))
	}
	return nil
}
