package repeater

import (
	"math"
	"testing"

	"lacret/internal/floorplan"
	"lacret/internal/route"
	"lacret/internal/tech"
	"lacret/internal/tile"
)

func grid(t *testing.T, rows, cols int, tileUm float64) *tile.Grid {
	t.Helper()
	pl := &floorplan.Placement{ChipW: float64(cols) * tileUm, ChipH: float64(rows) * tileUm}
	g, err := tile.Build(pl, nil, nil, tile.Params{Rows: rows, Cols: cols})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func rowPath(cols int, n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return p
}

func TestInsertShortPathSingleSegment(t *testing.T) {
	g := grid(t, 2, 8, 500)
	tc := tech.Default()  // Lmax 2500
	path := rowPath(8, 4) // 1500 um
	plan, err := Insert(g, tc, path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Validate(tc); err != nil {
		t.Fatal(err)
	}
	if len(plan.Segments) != 1 || plan.Repeaters != 0 {
		t.Fatalf("plan %+v", plan)
	}
	if plan.Length != 1500 {
		t.Fatalf("length %g", plan.Length)
	}
	if math.Abs(plan.TotalDelay-tc.SegmentDelay(1500)) > 1e-12 {
		t.Fatalf("delay %g", plan.TotalDelay)
	}
}

func TestInsertLongPathRespectsLmax(t *testing.T) {
	g := grid(t, 1, 17, 500)
	tc := tech.Default()
	path := rowPath(17, 17) // 8000 um: needs >= ceil(8000/2500)=4 segments
	plan, err := Insert(g, tc, path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Validate(tc); err != nil {
		t.Fatal(err)
	}
	if len(plan.Segments) < 4 {
		t.Fatalf("only %d segments for 8000um", len(plan.Segments))
	}
	for _, s := range plan.Segments {
		if s.Length > tc.Lmax {
			t.Fatalf("segment %g exceeds Lmax", s.Length)
		}
	}
	if plan.Repeaters != len(plan.Segments)-1 {
		t.Fatalf("repeaters %d", plan.Repeaters)
	}
}

func TestInsertSingleCellPathEmptyPlan(t *testing.T) {
	g := grid(t, 2, 2, 500)
	plan, err := Insert(g, tech.Default(), []int{3}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Segments) != 0 || plan.TotalDelay != 0 {
		t.Fatalf("plan %+v", plan)
	}
}

func TestInsertTilePitchExceedsLmax(t *testing.T) {
	g := grid(t, 1, 4, 5000)
	tc := tech.Default() // Lmax 2500 < 5000 pitch
	if _, err := Insert(g, tc, rowPath(4, 4), Options{}); err == nil {
		t.Fatal("oversized pitch accepted")
	}
}

func TestInsertErrors(t *testing.T) {
	g := grid(t, 2, 2, 500)
	if _, err := Insert(g, tech.Default(), nil, Options{}); err == nil {
		t.Fatal("empty path accepted")
	}
	if _, err := Insert(g, tech.Default(), []int{0, 1}, Options{RepeaterBias: -1}); err == nil {
		t.Fatal("negative bias accepted")
	}
}

func TestInsertReserveConsumesCapacity(t *testing.T) {
	g := grid(t, 1, 17, 500)
	tc := tech.Default()
	path := rowPath(17, 17)
	before := make([]float64, g.NumTiles())
	for i := range before {
		before[i] = g.Free(i)
	}
	plan, err := Insert(g, tc, path, Options{Reserve: true})
	if err != nil {
		t.Fatal(err)
	}
	consumed := 0.0
	for i := range before {
		consumed += before[i] - g.Free(i)
	}
	want := float64(plan.Repeaters) * tc.RepeaterArea
	if math.Abs(consumed-want) > 1e-9 {
		t.Fatalf("consumed %g, want %g", consumed, want)
	}
}

func TestInsertAvoidsFullTiles(t *testing.T) {
	g := grid(t, 1, 11, 500)
	tc := tech.Default()
	// Exhaust capacity of cell 5 (the midpoint a repeater would like).
	g.Reserve(5, g.Cap[5]+1)
	path := rowPath(11, 11) // 5000um: needs 2 segments, repeater near middle
	plan, err := Insert(g, tc, path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range plan.Segments[:len(plan.Segments)-1] {
		if s.EndCell == 5 {
			t.Fatal("repeater placed in a full tile despite alternatives")
		}
	}
}

func TestInsertDelayBetterThanNaive(t *testing.T) {
	// DP delay must not exceed the even-split segmentation delay.
	g := grid(t, 1, 21, 400)
	tc := tech.Default()
	path := rowPath(21, 21) // 8000 um
	plan, err := Insert(g, tc, path, Options{RepeaterBias: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	nseg := tc.MinSegments(8000)
	naive := 0.0
	for i := 0; i < nseg; i++ {
		naive += tc.SegmentDelay(8000 / float64(nseg))
	}
	if plan.TotalDelay > naive+1e-9 {
		t.Fatalf("DP delay %g worse than naive %g", plan.TotalDelay, naive)
	}
}

func TestPlanConnection(t *testing.T) {
	g := grid(t, 4, 4, 500)
	res, err := route.Route(g, []route.Net{{ID: 0, Source: 0, Sinks: []int{15}}}, route.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tc := tech.Default()
	plan, err := PlanConnection(g, tc, &res.Trees[0], 15, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Validate(tc); err != nil {
		t.Fatal(err)
	}
	if plan.Length != 3000 { // 6 hops x 500
		t.Fatalf("length %g", plan.Length)
	}
	first := plan.Segments[0]
	last := plan.Segments[len(plan.Segments)-1]
	if first.DriverCell != 0 || last.EndCell != 15 {
		t.Fatalf("endpoints %d..%d", first.DriverCell, last.EndCell)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	g := grid(t, 1, 17, 500)
	tc := tech.Default()
	plan, err := Insert(g, tc, rowPath(17, 17), Options{})
	if err != nil {
		t.Fatal(err)
	}
	plan.Segments[0].Delay += 1
	if err := plan.Validate(tc); err == nil {
		t.Fatal("corrupted delay accepted")
	}
}

// TestInsertAgainstBruteForce: enumerate all stop subsets on short paths
// and confirm the DP picks the minimum total cost (delay + repeater bias).
func TestInsertAgainstBruteForce(t *testing.T) {
	g := grid(t, 1, 9, 400)
	tc := tech.Default()
	opt := Options{RepeaterBias: 0.02, CongestionPenalty: 0.5}
	path := rowPath(9, 9) // 3200 um, pitch 400
	plan, err := Insert(g, tc, path, opt)
	if err != nil {
		t.Fatal(err)
	}
	// Brute force: choose any subset of interior positions as stops.
	n := len(path)
	pos := make([]float64, n)
	for i := 1; i < n; i++ {
		pos[i] = pos[i-1] + 400
	}
	best := math.Inf(1)
	for mask := 0; mask < 1<<(n-2); mask++ {
		stops := []int{0}
		for i := 1; i < n-1; i++ {
			if mask&(1<<(i-1)) != 0 {
				stops = append(stops, i)
			}
		}
		stops = append(stops, n-1)
		cost := 0.0
		ok := true
		for k := 1; k < len(stops); k++ {
			span := pos[stops[k]] - pos[stops[k-1]]
			if span > tc.Lmax {
				ok = false
				break
			}
			cost += tc.SegmentDelay(span)
			if k < len(stops)-1 {
				cost += opt.RepeaterBias
			}
		}
		if ok && cost < best {
			best = cost
		}
	}
	got := plan.TotalDelay + float64(plan.Repeaters)*opt.RepeaterBias
	if math.Abs(got-best) > 1e-9 {
		t.Fatalf("DP cost %g, brute force %g", got, best)
	}
}
