package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"strconv"
	"time"

	"lacret/internal/job"
)

// Client is a small lacretd API client with bounded, jittered retry on the
// daemon's backpressure answers. A 429 (queue full, memory pressure) or
// 503 (draining) response and any transport error — a daemon mid-restart
// refuses connections — are retried with capped exponential backoff; when
// the daemon names its own pause in a Retry-After header, that wins over
// the computed backoff. Everything else (4xx, a terminal 5xx) fails fast.
//
// The zero value plus Base is usable; the CI smokes drive a freshly
// exec'd daemon with exactly that.
type Client struct {
	// Base is the daemon root, e.g. "http://127.0.0.1:8080".
	Base string
	// HTTP is the underlying client (nil = http.DefaultClient).
	HTTP *http.Client
	// MaxRetries bounds the retries of one call (0 = 8; negative = none).
	MaxRetries int
	// Backoff is the first retry delay (0 = 100ms); it doubles per attempt
	// up to BackoffCap (0 = 5s).
	Backoff    time.Duration
	BackoffCap time.Duration
	// Logger, when set, records each retry: what failed, with which status,
	// and how long the client is backing off. nil disables (the zero-value
	// client stays silent).
	Logger *slog.Logger
}

// APIError is a non-2xx daemon answer.
type APIError struct {
	Status int
	Msg    string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("service: daemon answered %d: %s", e.Status, e.Msg)
}

// retryable reports whether the answer is backpressure rather than failure.
func (e *APIError) retryable() bool {
	return e.Status == http.StatusTooManyRequests || e.Status == http.StatusServiceUnavailable
}

// JobResponse is the daemon's job envelope: the status plus, once the job
// is terminal, the raw report bytes.
type JobResponse struct {
	job.Status
	Report json.RawMessage `json:"report,omitempty"`
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) retries() int {
	if c.MaxRetries < 0 {
		return 0
	}
	if c.MaxRetries == 0 {
		return 8
	}
	return c.MaxRetries
}

// delay picks the pause before retry attempt (0-based): the server's
// Retry-After when it sent one, otherwise doubled-and-capped backoff —
// jittered to half-to-full so a herd of clients doesn't re-arrive in step.
func (c *Client) delay(attempt int, retryAfter time.Duration) time.Duration {
	base := c.Backoff
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	cap := c.BackoffCap
	if cap <= 0 {
		cap = 5 * time.Second
	}
	d := base << uint(attempt)
	if d > cap || d <= 0 {
		d = cap
	}
	if retryAfter > 0 {
		d = retryAfter
		if d > cap {
			d = cap
		}
	}
	return d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
}

// do runs one HTTP call with the retry policy, decoding a 2xx JSON body
// into out (when non-nil). body, when non-nil, is re-sent on every attempt.
func (c *Client) do(ctx context.Context, method, path string, body []byte, out any) error {
	var lastErr error
	for attempt := 0; ; attempt++ {
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.Base+path, rd)
		if err != nil {
			return err
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		retryAfter, err := c.attempt(req, out)
		if err == nil {
			return nil
		}
		lastErr = err
		if apiErr, ok := err.(*APIError); ok && !apiErr.retryable() {
			return err
		}
		if attempt >= c.retries() {
			return lastErr
		}
		pause := c.delay(attempt, retryAfter)
		if c.Logger != nil {
			attrs := []slog.Attr{
				slog.String("method", method),
				slog.String("path", path),
				slog.Int("attempt", attempt+1),
				slog.Duration("backoff", pause),
			}
			if apiErr, ok := err.(*APIError); ok {
				attrs = append(attrs, slog.Int("status", apiErr.Status))
			} else {
				attrs = append(attrs, slog.String("error", err.Error()))
			}
			c.Logger.LogAttrs(ctx, slog.LevelWarn, "retrying request", attrs...)
		}
		select {
		case <-time.After(pause):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// attempt is one request/response cycle; it returns the server's
// Retry-After (0 when absent) alongside the error so do can honor it.
func (c *Client) attempt(req *http.Request, out any) (time.Duration, error) {
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return 0, err // transport error: the daemon may be mid-restart
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxRequestBytes))
	if err != nil {
		return 0, err
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var ra time.Duration
		if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
			ra = time.Duration(secs) * time.Second
		}
		var eb errorBody
		_ = json.Unmarshal(data, &eb)
		if eb.Error == "" {
			eb.Error = string(data)
		}
		return ra, &APIError{Status: resp.StatusCode, Msg: eb.Error}
	}
	if out == nil {
		return 0, nil
	}
	if raw, ok := out.(*[]byte); ok {
		*raw = data
		return 0, nil
	}
	return 0, json.Unmarshal(data, out)
}

// Submit posts a plan request and returns the accepted (or cache-hit) job.
func (c *Client) Submit(ctx context.Context, req job.PlanRequest) (*JobResponse, error) {
	body, err := json.Marshal(&req)
	if err != nil {
		return nil, err
	}
	var jr JobResponse
	if err := c.do(ctx, http.MethodPost, "/v1/jobs", body, &jr); err != nil {
		return nil, err
	}
	return &jr, nil
}

// Get polls one job.
func (c *Client) Get(ctx context.Context, id string) (*JobResponse, error) {
	var jr JobResponse
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &jr); err != nil {
		return nil, err
	}
	return &jr, nil
}

// Wait polls the job until it reaches a terminal state.
func (c *Client) Wait(ctx context.Context, id string) (*JobResponse, error) {
	for {
		jr, err := c.Get(ctx, id)
		if err != nil {
			return nil, err
		}
		if jr.State.Terminal() {
			return jr, nil
		}
		select {
		case <-time.After(100 * time.Millisecond):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// Report fetches the job's run report as the exact bytes the run encoded.
func (c *Client) Report(ctx context.Context, id string) ([]byte, error) {
	var raw []byte
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id+"/report", nil, &raw); err != nil {
		return nil, err
	}
	return raw, nil
}

// Trace fetches the job's span forest as the trace endpoint's JSON body
// (raw bytes; callers wanting the chrome format append ?format=chrome
// themselves and feed the body to a trace viewer).
func (c *Client) Trace(ctx context.Context, id string) ([]byte, error) {
	var raw []byte
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id+"/trace", nil, &raw); err != nil {
		return nil, err
	}
	return raw, nil
}

// Cancel cancels one job.
func (c *Client) Cancel(ctx context.Context, id string) (*JobResponse, error) {
	var jr JobResponse
	if err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, &jr); err != nil {
		return nil, err
	}
	return &jr, nil
}

// Stats fetches the pool snapshot.
func (c *Client) Stats(ctx context.Context) (*job.Stats, error) {
	var st job.Stats
	if err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}
