package service_test

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"lacret/internal/job"
	"lacret/internal/obs"
	"lacret/internal/service"
)

// TestDaemonChaosSmoke is the crash-recovery smoke (LACRET_SMOKE=1): a
// real lacretd process is killed mid-plan — os.Exit right after a stage
// checkpoint lands, the moral equivalent of kill -9 — and a second
// incarnation on the same data directory must recover the journaled job
// under its original ID, resume from the checkpoint, and serve a report
// that validates with the consumer decoder. The restart is also required
// to preserve the result cache, and a memory-capped daemon must shed load
// with 429 instead of dying.
func TestDaemonChaosSmoke(t *testing.T) {
	if os.Getenv("LACRET_SMOKE") != "1" {
		t.Skip("set LACRET_SMOKE=1 to run the daemon chaos smoke")
	}
	bin := filepath.Join(t.TempDir(), "lacretd")
	if out, err := exec.Command("go", "build", "-o", bin, "lacret/cmd/lacretd").CombinedOutput(); err != nil {
		t.Fatalf("build lacretd: %v\n%s", err, out)
	}
	dataDir := t.TempDir()
	addr := freeAddr(t)
	// The client logs its retries: daemon restarts show up on the test's
	// stderr as "retrying request" lines instead of silent pauses.
	clientLog := slog.New(slog.NewTextHandler(os.Stderr, nil))
	c := &service.Client{Base: "http://" + addr, Backoff: 50 * time.Millisecond, Logger: clientLog}
	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()
	req := job.PlanRequest{Source: job.Source{Circuit: "s400"}}

	// Incarnation one: dies right after the third checkpoint save — the
	// "grid" stage boundary, mid-plan.
	d1 := startDaemon(t, bin, "-addr", addr, "-workers", "1",
		"-data-dir", dataDir, "-crash-after-checkpoint", "3")
	jr, err := c.Submit(ctx, req)
	if err != nil {
		t.Fatalf("submit to first incarnation: %v", err)
	}
	if jr.State.Terminal() {
		t.Fatalf("job %s terminal (%s) before the crash", jr.ID, jr.State)
	}
	select {
	case err := <-d1.exited:
		var exitErr *exec.ExitError
		if !asExit(err, &exitErr) || exitErr.ExitCode() != 137 {
			t.Fatalf("first incarnation exited %v, want the injected code 137", err)
		}
	case <-time.After(2 * time.Minute):
		t.Fatal("first incarnation survived its crash point")
	}

	// Incarnation two: same data directory, same address, no crash.
	d2 := startDaemon(t, bin, "-addr", addr, "-workers", "1", "-data-dir", dataDir)
	fin, err := c.Wait(ctx, jr.ID)
	if err != nil {
		t.Fatalf("wait for recovered job %s: %v", jr.ID, err)
	}
	if fin.State != job.StateDone {
		t.Fatalf("recovered job ended %s: %s", fin.State, fin.Err)
	}
	if fin.Summary == nil || fin.Summary.Resumed != "grid" {
		t.Fatalf("summary %+v, want resumed from the grid checkpoint", fin.Summary)
	}
	rep, err := c.Report(ctx, jr.ID)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := obs.DecodeReport(rep); err != nil {
		t.Fatalf("recovered report fails the consumer decoder: %v", err)
	}
	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Recovered < 1 || st.Resumed < 1 {
		t.Fatalf("stats recovered=%d resumed=%d, want both >= 1", st.Recovered, st.Resumed)
	}
	// The settled outcome is durable: a resubmission is a cache hit.
	if hit, err := c.Submit(ctx, req); err != nil || !hit.CacheHit {
		t.Fatalf("resubmission after recovery: hit=%v err=%v", hit != nil && hit.CacheHit, err)
	}

	// The restarted daemon's /metrics carries the job counters and the
	// HTTP plane's latency histograms in Prometheus exposition format.
	text := httpBody(t, "http://"+addr+"/metrics")
	for _, want := range []string{"job_submitted", "http_latency_ms_submit_bucket", "job_run_ms_count"} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics after restart missing %q", want)
		}
	}
	if body := httpBody(t, "http://"+addr+"/readyz"); !strings.Contains(body, "ready") {
		t.Fatalf("readyz before drain: %q", body)
	}

	// Clean drain: an uncached job keeps the pool busy, SIGTERM starts the
	// drain, and readyz must answer 503 while HTTP stays up for the
	// in-flight job — then the process exits 0.
	busy, err := c.Submit(ctx, job.PlanRequest{Source: job.Source{Circuit: "s400"}, Config: job.ReqConfig{Seed: 7}})
	if err != nil {
		t.Fatalf("submit drain filler: %v", err)
	}
	if busy.CacheHit {
		t.Fatal("drain filler unexpectedly cached")
	}
	d2.cmd.Process.Signal(syscall.SIGTERM)
	saw503 := false
	for !saw503 {
		resp, err := http.Get("http://" + addr + "/readyz")
		if err != nil {
			break // listener gone: the drain finished before we sampled it
		}
		saw503 = resp.StatusCode == http.StatusServiceUnavailable
		resp.Body.Close()
	}
	if !saw503 {
		t.Fatal("readyz never answered 503 during the drain")
	}
	select {
	case err := <-d2.exited:
		if err != nil {
			t.Fatalf("drain exited with %v", err)
		}
	case <-time.After(2 * time.Minute):
		t.Fatal("second incarnation never drained")
	}

	// Restart three: the cache must survive a clean shutdown too.
	d3 := startDaemon(t, bin, "-addr", addr, "-workers", "1", "-data-dir", dataDir)
	if hit, err := c.Submit(ctx, req); err != nil || !hit.CacheHit {
		t.Fatalf("resubmission after restart: hit=%v err=%v", hit != nil && hit.CacheHit, err)
	}
	_ = d3 // killed by the process-group cleanup

	// A memory-capped daemon sheds load instead of dying.
	addr2 := freeAddr(t)
	startDaemon(t, bin, "-addr", addr2, "-workers", "1", "-max-mem", "1")
	c2 := &service.Client{Base: "http://" + addr2, Backoff: 50 * time.Millisecond, MaxRetries: -1}
	_, err = c2.Submit(ctx, req)
	apiErr, ok := err.(*service.APIError)
	if !ok || apiErr.Status != 429 {
		t.Fatalf("submit under -max-mem 1 = %v, want 429", err)
	}
}

type daemon struct {
	cmd    *exec.Cmd
	exited chan error
}

// startDaemon launches the built lacretd and waits until its API answers
// (or the process dies, which some chaos scenarios want — the caller reads
// exited). The process is killed at test cleanup if still running.
func startDaemon(t *testing.T, bin string, args ...string) *daemon {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	d := &daemon{cmd: cmd, exited: make(chan error, 1)}
	go func() { d.exited <- cmd.Wait() }()
	t.Cleanup(func() {
		cmd.Process.Kill()
		select {
		case <-d.exited:
		case <-time.After(10 * time.Second):
		}
	})
	// Ready-wait: the daemon prints its banner after Listen, so the API is
	// up once /v1/stats answers.
	addr := ""
	for i, a := range args {
		if a == "-addr" {
			addr = args[i+1]
		}
	}
	c := &service.Client{Base: "http://" + addr, MaxRetries: -1}
	deadline := time.Now().Add(30 * time.Second)
	for {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		_, err := c.Stats(ctx)
		cancel()
		if err == nil {
			return d
		}
		select {
		case err := <-d.exited:
			d.exited <- err // re-arm for the caller
			return d
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon on %s never became ready", addr)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// httpBody GETs a URL and returns the body (any status).
func httpBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// freeAddr reserves an ephemeral port and releases it for the daemon.
func freeAddr(t *testing.T) string {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	return fmt.Sprintf("127.0.0.1:%d", lis.Addr().(*net.TCPAddr).Port)
}

func asExit(err error, target **exec.ExitError) bool {
	e, ok := err.(*exec.ExitError)
	if ok {
		*target = e
	}
	return ok
}
