package service_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"lacret/internal/job"
	"lacret/internal/obs"
	"lacret/internal/plan"
	"lacret/internal/service"
)

// jobResponse mirrors the service's job envelope for decoding in tests.
type jobResponse struct {
	job.Status
	Report json.RawMessage `json:"report"`
}

func postJob(t *testing.T, ts *httptest.Server, body string) (*http.Response, jobResponse) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var jr jobResponse
	if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return resp, jr
}

func pollDone(t *testing.T, ts *httptest.Server, id string) jobResponse {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var jr jobResponse
		err = json.NewDecoder(resp.Body).Decode(&jr)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if jr.State.Terminal() {
			return jr
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", id, jr.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestEndToEnd drives the whole API against the real planner: submit s386,
// poll to done, fetch the report, validate it, resubmit for the cache hit,
// and check the stats.
func TestEndToEnd(t *testing.T) {
	mgr := job.NewManager(job.Options{Workers: 2})
	defer mgr.Shutdown(context.Background())
	ts := httptest.NewServer(service.New(mgr))
	defer ts.Close()

	resp, jr := postJob(t, ts, `{"source":{"circuit":"s386"},"config":{"seed":1}}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	if jr.ID == "" || jr.Digest == "" {
		t.Fatalf("submit response %+v", jr)
	}

	final := pollDone(t, ts, jr.ID)
	if final.State != job.StateDone {
		t.Fatalf("job %s: %s", final.State, final.Err)
	}
	if final.Summary == nil || final.Summary.Circuit != "s386" {
		t.Fatalf("summary %+v", final.Summary)
	}
	if len(final.Report) == 0 {
		t.Fatal("terminal poll carries no report")
	}

	// The report endpoint serves the exact bytes; they must decode.
	rresp, err := http.Get(ts.URL + "/v1/jobs/" + jr.ID + "/report")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(rresp.Body)
	rresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := obs.DecodeReport(raw)
	if err != nil {
		t.Fatalf("report invalid: %v", err)
	}
	if rep.Tool != "lacretd" || rep.Circuit != "s386" {
		t.Fatalf("report identity %s/%s", rep.Tool, rep.Circuit)
	}

	// Resubmit: cache hit, HTTP 200, byte-identical report.
	resp2, jr2 := postJob(t, ts, `{"source":{"circuit":"s386"},"config":{"seed":1}}`)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("cache-hit status %d", resp2.StatusCode)
	}
	if !jr2.CacheHit {
		t.Fatal("resubmission not marked cache hit")
	}
	rresp2, err := http.Get(ts.URL + "/v1/jobs/" + jr2.ID + "/report")
	if err != nil {
		t.Fatal(err)
	}
	raw2, err := io.ReadAll(rresp2.Body)
	rresp2.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, raw2) {
		t.Fatal("cached report bytes differ from the original run")
	}

	// Stats reflect the round trip.
	sresp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats job.Stats
	err = json.NewDecoder(sresp.Body).Decode(&stats)
	sresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Workers != 2 || stats.CacheHits != 1 || stats.Done != 2 {
		t.Fatalf("stats %+v", stats)
	}

	// The list endpoint shows both jobs.
	lresp, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Jobs []job.Status `json:"jobs"`
	}
	err = json.NewDecoder(lresp.Body).Decode(&list)
	lresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(list.Jobs) != 2 {
		t.Fatalf("listed %d jobs", len(list.Jobs))
	}
}

// TestSSEStream reads the event stream of a finished job: history replay in
// SSE framing, terminated by the server closing the stream.
func TestSSEStream(t *testing.T) {
	mgr := job.NewManager(job.Options{Workers: 1,
		Run: func(ctx context.Context, r *job.PlanRequest, trace func(plan.StageEvent)) (*job.RunResult, error) {
			trace(plan.StageEvent{Stage: "partition"})
			trace(plan.StageEvent{Stage: "route", Index: 1})
			return &job.RunResult{Circuit: r.Source.Label()}, nil
		}})
	defer mgr.Shutdown(context.Background())
	ts := httptest.NewServer(service.New(mgr))
	defer ts.Close()

	_, jr := postJob(t, ts, `{"source":{"circuit":"s386"},"config":{"seed":1}}`)
	pollDone(t, ts, jr.ID)

	resp, err := http.Get(ts.URL + "/v1/jobs/" + jr.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	var events []job.Event
	scanner := bufio.NewScanner(resp.Body)
	for scanner.Scan() {
		line := scanner.Text()
		if data, ok := strings.CutPrefix(line, "data: "); ok {
			var ev job.Event
			if err := json.Unmarshal([]byte(data), &ev); err != nil {
				t.Fatalf("bad SSE data %q: %v", data, err)
			}
			events = append(events, ev)
		}
	}
	// queued, running, 2 stages, done
	if len(events) != 5 {
		t.Fatalf("got %d events: %+v", len(events), events)
	}
	if events[0].State != job.StateQueued || events[len(events)-1].State != job.StateDone {
		t.Fatalf("event envelope %+v", events)
	}
	if events[2].Stage != "partition" || events[3].Stage != "route" {
		t.Fatalf("stage events %+v", events[2:4])
	}
}

// TestCancelEndpoint blocks a job and cancels it over HTTP.
func TestCancelEndpoint(t *testing.T) {
	mgr := job.NewManager(job.Options{Workers: 1,
		Run: func(ctx context.Context, r *job.PlanRequest, trace func(plan.StageEvent)) (*job.RunResult, error) {
			<-ctx.Done()
			return nil, ctx.Err()
		}})
	defer mgr.Shutdown(context.Background())
	ts := httptest.NewServer(service.New(mgr))
	defer ts.Close()

	_, jr := postJob(t, ts, `{"source":{"circuit":"s386"},"config":{"seed":1}}`)

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+jr.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status %d", resp.StatusCode)
	}
	final := pollDone(t, ts, jr.ID)
	if final.State != job.StateCanceled {
		t.Fatalf("state %s, want canceled", final.State)
	}
}

// TestBackpressure429 fills the queue and expects 429 + Retry-After.
func TestBackpressure429(t *testing.T) {
	var started atomic.Bool
	release := make(chan struct{})
	mgr := job.NewManager(job.Options{Workers: 1, QueueDepth: 1,
		Run: func(ctx context.Context, r *job.PlanRequest, trace func(plan.StageEvent)) (*job.RunResult, error) {
			started.Store(true)
			select {
			case <-release:
			case <-ctx.Done():
			}
			return &job.RunResult{Circuit: r.Source.Label()}, nil
		}})
	// Unblock the workers before the drain, or Shutdown waits forever.
	defer mgr.Shutdown(context.Background())
	defer close(release)
	ts := httptest.NewServer(service.New(mgr))
	defer ts.Close()

	postJob(t, ts, `{"source":{"circuit":"s386"},"config":{"seed":1}}`)
	deadline := time.Now().Add(10 * time.Second)
	for !started.Load() {
		if time.Now().After(deadline) {
			t.Fatal("worker never started")
		}
		time.Sleep(time.Millisecond)
	}
	postJob(t, ts, `{"source":{"circuit":"s386"},"config":{"seed":2}}`)
	resp, _ := postJob(t, ts, `{"source":{"circuit":"s386"},"config":{"seed":3}}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
}

// TestBadRequests covers the 4xx surface: malformed body, unknown fields,
// invalid config, unknown job IDs, and a report demanded too early.
func TestBadRequests(t *testing.T) {
	release := make(chan struct{})
	mgr := job.NewManager(job.Options{Workers: 1,
		Run: func(ctx context.Context, r *job.PlanRequest, trace func(plan.StageEvent)) (*job.RunResult, error) {
			select {
			case <-release:
			case <-ctx.Done():
			}
			return &job.RunResult{Circuit: r.Source.Label()}, nil
		}})
	// Unblock the workers before the drain, or Shutdown waits forever.
	defer mgr.Shutdown(context.Background())
	defer close(release)
	ts := httptest.NewServer(service.New(mgr))
	defer ts.Close()

	for _, body := range []string{
		`{not json`,
		`{"source":{"circuit":"s386"},"bogus":1}`,
		`{"source":{"circuit":"nosuch"}}`,
		`{"source":{"circuit":"s386"},"config":{"probe_engine":"eager"}}`,
		`{"config":{"seed":1}}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status %d, want 400", body, resp.StatusCode)
		}
	}

	resp, err := http.Get(ts.URL + "/v1/jobs/nosuch")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: %d, want 404", resp.StatusCode)
	}

	_, jr := postJob(t, ts, `{"source":{"circuit":"s386"},"config":{"seed":1}}`)
	rresp, err := http.Get(ts.URL + "/v1/jobs/" + jr.ID + "/report")
	if err != nil {
		t.Fatal(err)
	}
	rresp.Body.Close()
	if rresp.StatusCode != http.StatusConflict {
		t.Fatalf("early report: %d, want 409", rresp.StatusCode)
	}
}
