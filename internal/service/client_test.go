package service_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"lacret/internal/job"
	"lacret/internal/service"
)

func fastClient(base string) *service.Client {
	return &service.Client{Base: base, Backoff: time.Millisecond, BackoffCap: 5 * time.Millisecond}
}

// TestClientRetriesBackpressure: 429 and 503 answers are backpressure, not
// failure — the client backs off and retries until the daemon accepts.
func TestClientRetriesBackpressure(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch calls.Add(1) {
		case 1:
			w.Header().Set("Retry-After", "1")
			http.Error(w, `{"error":"queue full"}`, http.StatusTooManyRequests)
		case 2:
			http.Error(w, `{"error":"draining"}`, http.StatusServiceUnavailable)
		default:
			w.WriteHeader(http.StatusAccepted)
			json.NewEncoder(w).Encode(job.Status{ID: "j1-x", State: job.StateQueued})
		}
	}))
	defer ts.Close()

	start := time.Now()
	jr, err := fastClient(ts.URL).Submit(context.Background(), job.PlanRequest{Source: job.Source{Circuit: "s400"}})
	if err != nil {
		t.Fatalf("submit through backpressure: %v", err)
	}
	if jr.ID != "j1-x" || calls.Load() != 3 {
		t.Fatalf("got job %q after %d calls, want j1-x after 3", jr.ID, calls.Load())
	}
	// The 1s Retry-After must have been capped by BackoffCap, not obeyed
	// literally — retry pacing stays bounded by the client's own cap.
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Fatalf("retries took %s; Retry-After was not capped", elapsed)
	}
}

// TestClientFailsFastOnBadRequest: a 400 is the caller's bug; retrying it
// would just hammer the daemon with the same bad request.
func TestClientFailsFastOnBadRequest(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"no such circuit"}`, http.StatusBadRequest)
	}))
	defer ts.Close()

	_, err := fastClient(ts.URL).Submit(context.Background(), job.PlanRequest{Source: job.Source{Circuit: "nope"}})
	var apiErr *service.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
		t.Fatalf("err = %v, want APIError 400", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("400 was retried %d times", calls.Load()-1)
	}
}

// TestClientRetryBudget: persistent backpressure exhausts MaxRetries and
// surfaces the last answer instead of spinning forever.
func TestClientRetryBudget(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"queue full"}`, http.StatusTooManyRequests)
	}))
	defer ts.Close()

	c := fastClient(ts.URL)
	c.MaxRetries = 3
	_, err := c.Submit(context.Background(), job.PlanRequest{Source: job.Source{Circuit: "s400"}})
	var apiErr *service.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusTooManyRequests {
		t.Fatalf("err = %v, want the final 429", err)
	}
	if calls.Load() != 4 { // initial attempt + 3 retries
		t.Fatalf("%d calls, want 4", calls.Load())
	}
}

// TestClientRetriesTransportError: a refused connection (daemon
// mid-restart) is retried; here it never comes up, so the transport error
// surfaces once the budget is spent.
func TestClientRetriesTransportError(t *testing.T) {
	ts := httptest.NewServer(http.NotFoundHandler())
	ts.Close() // nothing listens here anymore

	c := fastClient(ts.URL)
	c.MaxRetries = 2
	_, err := c.Stats(context.Background())
	if err == nil {
		t.Fatal("stats against a dead daemon succeeded")
	}
	var apiErr *service.APIError
	if errors.As(err, &apiErr) {
		t.Fatalf("transport failure surfaced as APIError %d", apiErr.Status)
	}
}

// TestMemoryPressure429: the service maps the governor's rejection to 429
// with a Retry-After, and the client sees it as backpressure.
func TestMemoryPressure429(t *testing.T) {
	// A 1-byte limit rejects every submission on the real heap probe.
	mgr := job.NewManager(job.Options{Workers: 1, MaxMemBytes: 1})
	defer mgr.Shutdown(context.Background())
	ts := httptest.NewServer(service.New(mgr))
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"source":{"circuit":"s400"}}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d under memory pressure, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}

	c := fastClient(ts.URL)
	c.MaxRetries = -1
	var apiErr *service.APIError
	if _, err := c.Submit(context.Background(), job.PlanRequest{Source: job.Source{Circuit: "s400"}}); !errors.As(err, &apiErr) || apiErr.Status != http.StatusTooManyRequests {
		t.Fatalf("client saw %v, want APIError 429", err)
	}
}

// TestHTTPServerTimeouts pins the daemon's server hardening: header and
// read deadlines and idle reaping are set, and there is no write timeout —
// it would sever long-lived SSE streams.
func TestHTTPServerTimeouts(t *testing.T) {
	srv := service.HTTPServer(":0", http.NotFoundHandler())
	if srv.ReadHeaderTimeout <= 0 || srv.ReadTimeout <= 0 || srv.IdleTimeout <= 0 {
		t.Fatalf("missing timeouts: header %s read %s idle %s",
			srv.ReadHeaderTimeout, srv.ReadTimeout, srv.IdleTimeout)
	}
	if srv.WriteTimeout != 0 {
		t.Fatalf("write timeout %s would kill SSE subscriptions", srv.WriteTimeout)
	}
}

// TestClientWaitAndReport drives the real service end to end through the
// client: submit, wait for terminal, fetch the report bytes.
func TestClientWaitAndReport(t *testing.T) {
	mgr := job.NewManager(job.Options{Workers: 1})
	defer mgr.Shutdown(context.Background())
	ts := httptest.NewServer(service.New(mgr))
	defer ts.Close()

	c := fastClient(ts.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	jr, err := c.Submit(ctx, job.PlanRequest{Source: job.Source{Circuit: "s400"}})
	if err != nil {
		t.Fatal(err)
	}
	fin, err := c.Wait(ctx, jr.ID)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != job.StateDone {
		t.Fatalf("job ended %s: %s", fin.State, fin.Err)
	}
	rep, err := c.Report(ctx, jr.ID)
	if err != nil {
		t.Fatal(err)
	}
	// The job envelope re-indents the embedded report (the envelope itself
	// is an indented encoding); only /report is bit-exact. The two must
	// still agree as JSON values.
	var a, b bytes.Buffer
	if err := json.Compact(&a, rep); err != nil {
		t.Fatalf("report endpoint returned invalid JSON: %v", err)
	}
	if err := json.Compact(&b, fin.Report); err != nil {
		t.Fatalf("job envelope report invalid: %v", err)
	}
	if a.String() != b.String() {
		t.Fatal("report endpoint and job envelope disagree")
	}
	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Done != 1 {
		t.Fatalf("stats done = %d, want 1", st.Done)
	}
}

// TestClientRetryLogging: a client with a Logger records every retry —
// the path, the status that bounced it, and the backoff it chose.
func TestClientRetryLogging(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, `{"error":"queue full"}`, http.StatusTooManyRequests)
			return
		}
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(job.Status{ID: "j1-x", State: job.StateQueued})
	}))
	defer ts.Close()

	var buf bytes.Buffer
	c := fastClient(ts.URL)
	c.Logger = slog.New(slog.NewJSONHandler(&buf, nil))
	if _, err := c.Submit(context.Background(), job.PlanRequest{Source: job.Source{Circuit: "s400"}}); err != nil {
		t.Fatalf("submit through backpressure: %v", err)
	}

	var retries []map[string]any
	for _, raw := range strings.Split(buf.String(), "\n") {
		if raw == "" {
			continue
		}
		var line map[string]any
		if err := json.Unmarshal([]byte(raw), &line); err != nil {
			t.Fatalf("non-JSON log line %q: %v", raw, err)
		}
		if line["msg"] == "retrying request" {
			retries = append(retries, line)
		}
	}
	if len(retries) != 2 {
		t.Fatalf("logged %d retries, want 2:\n%s", len(retries), buf.String())
	}
	for i, line := range retries {
		if line["status"] != float64(http.StatusTooManyRequests) ||
			line["path"] != "/v1/jobs" || line["attempt"] != float64(i+1) {
			t.Fatalf("retry line %d: %v", i, line)
		}
		if _, ok := line["backoff"]; !ok {
			t.Fatalf("retry line %d has no backoff: %v", i, line)
		}
	}
}
