// Package service is the daemon's HTTP API over the job layer: submit a
// plan request, poll a job, stream its live progress, cancel it, and
// inspect the pool. The API is versioned under /v1/:
//
//	POST   /v1/jobs          submit a PlanRequest        → 202 (200 cache hit)
//	GET    /v1/jobs          list tracked jobs
//	GET    /v1/jobs/{id}     poll: status + report when terminal
//	GET    /v1/jobs/{id}/report  the raw run-report bytes
//	GET    /v1/jobs/{id}/events  live progress (Server-Sent Events)
//	DELETE /v1/jobs/{id}     cancel
//	GET    /v1/stats         pool, cache, and metrics snapshot
//
// Backpressure surfaces as HTTP 429 with a Retry-After header; a draining
// daemon answers submissions with 503.
package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"lacret/internal/job"
)

// maxRequestBytes bounds a submission body (inline .bench netlists can be
// sizable, but not unbounded).
const maxRequestBytes = 64 << 20

// Server serves the job API. Construct with New; it is an http.Handler.
type Server struct {
	mgr *job.Manager
	mux *http.ServeMux
}

// New builds the API server over a manager.
func New(mgr *job.Manager) *Server {
	s := &Server{mgr: mgr, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /v1/jobs", s.submit)
	s.mux.HandleFunc("GET /v1/jobs", s.list)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.get)
	s.mux.HandleFunc("GET /v1/jobs/{id}/report", s.report)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.events)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.cancel)
	s.mux.HandleFunc("GET /v1/stats", s.stats)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// HTTPServer wraps a handler in an http.Server with the daemon's timeout
// policy: slow-loris protection on headers and bodies, idle-connection
// reaping, and no overall write timeout — the events endpoint streams SSE
// for as long as a plan runs, so a write deadline would sever every
// long-lived subscription.
func HTTPServer(addr string, handler http.Handler) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
}

// errorBody is the uniform error envelope.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorBody{Error: fmt.Sprintf(format, args...)})
}

// jobResponse is a job status plus, once the job is terminal, the run
// report embedded verbatim (json.RawMessage keeps the cached bytes
// byte-identical inside the envelope).
type jobResponse struct {
	job.Status
	Report json.RawMessage `json:"report,omitempty"`
}

func response(j *job.Job) jobResponse {
	resp := jobResponse{Status: j.Status()}
	if resp.State.Terminal() {
		if out := j.Outcome(); out != nil {
			resp.Report = out.Report
		}
	}
	return resp
}

func (s *Server) submit(w http.ResponseWriter, r *http.Request) {
	var req job.PlanRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	j, err := s.mgr.Submit(req)
	if err != nil {
		var full *job.ErrQueueFull
		var mem *job.ErrMemoryPressure
		switch {
		case errors.As(err, &full):
			w.Header().Set("Retry-After", strconv.Itoa(int(full.RetryAfter.Seconds())))
			writeError(w, http.StatusTooManyRequests, "%v", err)
		case errors.As(err, &mem):
			// Overload, not a bad request: the client should back off the
			// same way it does for a full queue.
			w.Header().Set("Retry-After", strconv.Itoa(int(mem.RetryAfter.Seconds())))
			writeError(w, http.StatusTooManyRequests, "%v", err)
		case errors.Is(err, job.ErrShutdown):
			writeError(w, http.StatusServiceUnavailable, "%v", err)
		default:
			writeError(w, http.StatusBadRequest, "%v", err)
		}
		return
	}
	code := http.StatusAccepted
	if j.Status().CacheHit {
		code = http.StatusOK
	}
	writeJSON(w, code, response(j))
}

func (s *Server) lookup(w http.ResponseWriter, r *http.Request) (*job.Job, bool) {
	j, ok := s.mgr.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
	}
	return j, ok
}

func (s *Server) get(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, response(j))
}

func (s *Server) list(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Jobs []job.Status `json:"jobs"`
	}{Jobs: s.mgr.Jobs()})
}

// report serves the job's run report as the exact bytes the run encoded —
// the endpoint whose output feeds lacplan -check-report and whose
// bit-identity the cache test pins.
func (s *Server) report(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(w, r)
	if !ok {
		return
	}
	if !j.State().Terminal() {
		writeError(w, http.StatusConflict, "job %s is %s; report available once terminal", j.ID(), j.State())
		return
	}
	out := j.Outcome()
	if out == nil || len(out.Report) == 0 {
		writeError(w, http.StatusNotFound, "job %s produced no report", j.ID())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(out.Report)
}

// events streams the job's progress as Server-Sent Events: the full event
// history first (so late subscribers see everything), then live events
// until the job reaches a terminal state or the client goes away.
func (s *Server) events(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(w, r)
	if !ok {
		return
	}
	flusher, canFlush := w.(http.Flusher)
	if !canFlush {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	hist, live, unsubscribe := j.Subscribe()
	defer unsubscribe()
	for _, ev := range hist {
		if !writeSSE(w, ev) {
			return
		}
	}
	flusher.Flush()
	for {
		select {
		case ev, open := <-live:
			if !open {
				return // job terminal: history carried the final state event
			}
			if !writeSSE(w, ev) {
				return
			}
			flusher.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// writeSSE emits one event in SSE framing; false on a dead client.
func writeSSE(w http.ResponseWriter, ev job.Event) bool {
	data, err := json.Marshal(ev)
	if err != nil {
		return false
	}
	_, err = fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, data)
	return err == nil
}

func (s *Server) cancel(w http.ResponseWriter, r *http.Request) {
	j, err := s.mgr.Cancel(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, response(j))
}

func (s *Server) stats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.mgr.Stats())
}
