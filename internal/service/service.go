// Package service is the daemon's HTTP API over the job layer: submit a
// plan request, poll a job, stream its live progress, cancel it, and
// inspect the pool. The API is versioned under /v1/:
//
//	POST   /v1/jobs          submit a PlanRequest        → 202 (200 cache hit)
//	GET    /v1/jobs          list tracked jobs
//	GET    /v1/jobs/{id}     poll: status + report when terminal
//	GET    /v1/jobs/{id}/report  the raw run-report bytes
//	GET    /v1/jobs/{id}/events  live progress (Server-Sent Events)
//	GET    /v1/jobs/{id}/trace   span forest: JSON, or ?format=chrome
//	DELETE /v1/jobs/{id}     cancel
//	GET    /v1/stats         pool, cache, metrics, and vitals time series
//
// plus the operational surface outside the version prefix:
//
//	GET /metrics   the manager's registry in Prometheus text format
//	GET /healthz   liveness: 200 while the process serves
//	GET /readyz    readiness: 503 while draining or under memory pressure
//
// Every endpoint runs through one middleware recording per-route latency
// histograms (http.latency_ms.<route>), status-class counters
// (http.requests.<route>.<N>xx), and an in-flight gauge into the
// manager's registry — the same registry /metrics exposes, so the HTTP
// plane and the job plane land in one scrape.
//
// Backpressure surfaces as HTTP 429 with a Retry-After header; a draining
// daemon answers submissions with 503.
package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"lacret/internal/job"
	"lacret/internal/obs"
)

// maxRequestBytes bounds a submission body (inline .bench netlists can be
// sizable, but not unbounded).
const maxRequestBytes = 64 << 20

// defaultSSEKeepalive is how often an idle event stream emits a ": ping"
// comment. Comments are invisible to SSE consumers but count as traffic,
// so proxies and the server's own idle timeout (2 minutes in HTTPServer)
// don't sever a subscription that is quietly waiting on a long stage.
const defaultSSEKeepalive = 15 * time.Second

// Server serves the job API. Construct with New; it is an http.Handler.
type Server struct {
	mgr *job.Manager
	mux *http.ServeMux
	log *slog.Logger // nil = request logging disabled
	reg *obs.Registry

	keepalive time.Duration
	inFlight  atomic.Int64
	gInFlight *obs.Gauge
}

// Option configures a Server at construction.
type Option func(*Server)

// WithLogger installs the request logger: one line per request (method,
// route, status, duration, and the job ID when the route carries one) at
// debug level, warnings for 5xx. nil (the default) disables logging.
func WithLogger(l *slog.Logger) Option {
	return func(s *Server) { s.log = l }
}

// WithSSEKeepalive overrides the event-stream ping interval (tests dial
// it down to observe pings; production keeps the default 15s).
func WithSSEKeepalive(d time.Duration) Option {
	return func(s *Server) {
		if d > 0 {
			s.keepalive = d
		}
	}
}

// New builds the API server over a manager.
func New(mgr *job.Manager, opts ...Option) *Server {
	s := &Server{
		mgr:       mgr,
		mux:       http.NewServeMux(),
		reg:       mgr.Registry(),
		keepalive: defaultSSEKeepalive,
	}
	for _, o := range opts {
		o(s)
	}
	s.gInFlight = s.reg.Gauge("http.in_flight")
	s.handle("POST /v1/jobs", "submit", s.submit)
	s.handle("GET /v1/jobs", "list", s.list)
	s.handle("GET /v1/jobs/{id}", "get", s.get)
	s.handle("GET /v1/jobs/{id}/report", "report", s.report)
	s.handle("GET /v1/jobs/{id}/events", "events", s.events)
	s.handle("GET /v1/jobs/{id}/trace", "trace", s.trace)
	s.handle("DELETE /v1/jobs/{id}", "cancel", s.cancel)
	s.handle("GET /v1/stats", "stats", s.stats)
	s.handle("GET /metrics", "metrics", s.metrics)
	s.handle("GET /healthz", "healthz", s.healthz)
	s.handle("GET /readyz", "readyz", s.readyz)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// handle registers one route behind the instrumentation middleware. The
// metric handles are resolved once here, not per request, so the hot path
// takes no registry lock.
func (s *Server) handle(pattern, name string, h http.HandlerFunc) {
	lat := s.reg.Histogram("http.latency_ms."+name, obs.DurationBucketsMS)
	var classes [6]*obs.Counter
	for c := 1; c <= 5; c++ {
		classes[c] = s.reg.Counter(fmt.Sprintf("http.requests.%s.%dxx", name, c))
	}
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		s.gInFlight.Set(float64(s.inFlight.Add(1)))
		sw := &statusWriter{ResponseWriter: w}
		h(sw, r)
		s.gInFlight.Set(float64(s.inFlight.Add(-1)))
		dur := time.Since(t0)
		lat.Observe(float64(dur.Microseconds()) / 1000)
		code := sw.status()
		if cls := code / 100; cls >= 1 && cls <= 5 {
			classes[cls].Inc()
		}
		if s.log != nil {
			lvl := slog.LevelDebug
			if code >= 500 {
				lvl = slog.LevelWarn
			}
			attrs := []slog.Attr{
				slog.String("method", r.Method),
				slog.String("route", name),
				slog.Int("status", code),
				slog.Duration("dur", dur),
			}
			if id := r.PathValue("id"); id != "" {
				attrs = append(attrs, slog.String("job", id))
			}
			s.log.LogAttrs(r.Context(), lvl, "http request", attrs...)
		}
	})
}

// statusWriter captures the response status for the middleware. It keeps
// http.Flusher reachable, which the SSE endpoint needs.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// status returns the committed status; a handler that never wrote is an
// implicit 200.
func (w *statusWriter) status() int {
	if w.code == 0 {
		return http.StatusOK
	}
	return w.code
}

// Flush passes through to the underlying flusher (SSE streaming).
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// HTTPServer wraps a handler in an http.Server with the daemon's timeout
// policy: slow-loris protection on headers and bodies, idle-connection
// reaping, and no overall write timeout — the events endpoint streams SSE
// for as long as a plan runs, so a write deadline would sever every
// long-lived subscription.
func HTTPServer(addr string, handler http.Handler) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
}

// errorBody is the uniform error envelope.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorBody{Error: fmt.Sprintf(format, args...)})
}

// jobResponse is a job status plus, once the job is terminal, the run
// report embedded verbatim (json.RawMessage keeps the cached bytes
// byte-identical inside the envelope).
type jobResponse struct {
	job.Status
	Report json.RawMessage `json:"report,omitempty"`
}

func response(j *job.Job) jobResponse {
	resp := jobResponse{Status: j.Status()}
	if resp.State.Terminal() {
		if out := j.Outcome(); out != nil {
			resp.Report = out.Report
		}
	}
	return resp
}

func (s *Server) submit(w http.ResponseWriter, r *http.Request) {
	var req job.PlanRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	j, err := s.mgr.Submit(req)
	if err != nil {
		var full *job.ErrQueueFull
		var mem *job.ErrMemoryPressure
		switch {
		case errors.As(err, &full):
			w.Header().Set("Retry-After", strconv.Itoa(int(full.RetryAfter.Seconds())))
			writeError(w, http.StatusTooManyRequests, "%v", err)
		case errors.As(err, &mem):
			// Overload, not a bad request: the client should back off the
			// same way it does for a full queue.
			w.Header().Set("Retry-After", strconv.Itoa(int(mem.RetryAfter.Seconds())))
			writeError(w, http.StatusTooManyRequests, "%v", err)
		case errors.Is(err, job.ErrShutdown):
			writeError(w, http.StatusServiceUnavailable, "%v", err)
		default:
			writeError(w, http.StatusBadRequest, "%v", err)
		}
		return
	}
	code := http.StatusAccepted
	if j.Status().CacheHit {
		code = http.StatusOK
	}
	writeJSON(w, code, response(j))
}

func (s *Server) lookup(w http.ResponseWriter, r *http.Request) (*job.Job, bool) {
	j, ok := s.mgr.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
	}
	return j, ok
}

func (s *Server) get(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, response(j))
}

func (s *Server) list(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Jobs []job.Status `json:"jobs"`
	}{Jobs: s.mgr.Jobs()})
}

// report serves the job's run report as the exact bytes the run encoded —
// the endpoint whose output feeds lacplan -check-report and whose
// bit-identity the cache test pins.
func (s *Server) report(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(w, r)
	if !ok {
		return
	}
	if !j.State().Terminal() {
		writeError(w, http.StatusConflict, "job %s is %s; report available once terminal", j.ID(), j.State())
		return
	}
	out := j.Outcome()
	if out == nil || len(out.Report) == 0 {
		writeError(w, http.StatusNotFound, "job %s produced no report", j.ID())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(out.Report)
}

// traceResponse is the JSON shape of the trace endpoint: the span forest
// plus the run's final metrics snapshot.
type traceResponse struct {
	ID      string              `json:"id"`
	State   job.State           `json:"state"`
	Circuit string              `json:"circuit,omitempty"`
	Spans   []*obs.Span         `json:"spans"`
	Metrics obs.MetricsSnapshot `json:"metrics"`
}

// trace serves a terminal job's span forest — the hierarchical sub-stage
// timeline internal/obs collected while the job ran — as JSON, or as
// Chrome trace-event format with ?format=chrome (load the body in
// chrome://tracing or ui.perfetto.dev). The forest normally comes from
// the outcome captured at run end; for outcomes recovered from a store
// without one, the stage spans are reconstructed from the report.
func (s *Server) trace(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(w, r)
	if !ok {
		return
	}
	if !j.State().Terminal() {
		writeError(w, http.StatusConflict, "job %s is %s; trace available once terminal", j.ID(), j.State())
		return
	}
	out := j.Outcome()
	if out == nil || (len(out.Trace) == 0 && len(out.Report) == 0) {
		writeError(w, http.StatusNotFound, "job %s produced no trace", j.ID())
		return
	}
	var rep *obs.Report
	if len(out.Report) > 0 {
		rep, _ = obs.DecodeReport(out.Report)
	}
	spans := out.Trace
	var tracks []obs.TraceTrack
	switch {
	case len(spans) > 0:
		tracks = []obs.TraceTrack{{Name: j.ID(), Spans: spans}}
	case rep != nil:
		tracks = rep.Tracks()
		for _, tr := range tracks {
			spans = append(spans, tr.Spans...)
		}
	}
	switch r.URL.Query().Get("format") {
	case "", "json":
		resp := traceResponse{ID: j.ID(), State: j.State(), Spans: spans}
		if rep != nil {
			resp.Circuit = rep.Circuit
			resp.Metrics = rep.Metrics
		}
		writeJSON(w, http.StatusOK, resp)
	case "chrome":
		w.Header().Set("Content-Type", "application/json")
		_ = obs.WriteChromeTrace(w, tracks)
	default:
		writeError(w, http.StatusBadRequest, "unknown trace format %q (want json or chrome)", r.URL.Query().Get("format"))
	}
}

// events streams the job's progress as Server-Sent Events: the full event
// history first (so late subscribers see everything), then live events
// until the job reaches a terminal state or the client goes away. Idle
// streams carry ": ping" comments so proxies and idle timeouts see a live
// connection while a long stage runs quietly.
func (s *Server) events(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(w, r)
	if !ok {
		return
	}
	flusher, canFlush := w.(http.Flusher)
	if !canFlush {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	hist, live, unsubscribe := j.Subscribe()
	defer unsubscribe()
	for _, ev := range hist {
		if !writeSSE(w, ev) {
			return
		}
	}
	flusher.Flush()
	keepalive := time.NewTicker(s.keepalive)
	defer keepalive.Stop()
	for {
		select {
		case ev, open := <-live:
			if !open {
				return // job terminal: history carried the final state event
			}
			if !writeSSE(w, ev) {
				return
			}
			flusher.Flush()
		case <-keepalive.C:
			if _, err := io.WriteString(w, ": ping\n\n"); err != nil {
				return
			}
			flusher.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// writeSSE emits one event in SSE framing; false on a dead client.
func writeSSE(w http.ResponseWriter, ev job.Event) bool {
	data, err := json.Marshal(ev)
	if err != nil {
		return false
	}
	_, err = fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, data)
	return err == nil
}

func (s *Server) cancel(w http.ResponseWriter, r *http.Request) {
	j, err := s.mgr.Cancel(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, response(j))
}

func (s *Server) stats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.mgr.Stats())
}

// metrics serves the manager's registry — job counters, queue-wait and
// run-duration histograms, memory gauges, and the HTTP plane's own
// latency/status metrics — in Prometheus text exposition format.
func (s *Server) metrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", obs.PromContentType)
	_ = obs.WritePrometheus(w, s.reg)
}

// healthz is the liveness probe: if this handler runs, the process is
// alive. It stays 200 through drain — killing a draining daemon early
// would cut in-flight jobs off the anytime path.
func (s *Server) healthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// readyz is the readiness probe: 503 while the manager is draining or the
// memory governor is shedding, so a load balancer stops routing new work
// before clients start eating 429s and 503s.
func (s *Server) readyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if ok, reason := s.mgr.Ready(); !ok {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, reason)
		return
	}
	fmt.Fprintln(w, "ready")
}
