package service_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"lacret/internal/job"
	"lacret/internal/obs"
	"lacret/internal/plan"
	"lacret/internal/service"
)

// TestMetricsEndpoint drives a real job through the API and scrapes
// /metrics: the job-layer counters, the middleware's per-route latency
// histogram and status-class counters, and the pool histograms must all
// appear in valid exposition format.
func TestMetricsEndpoint(t *testing.T) {
	mgr := job.NewManager(job.Options{Workers: 1})
	defer mgr.Shutdown(context.Background())
	ts := httptest.NewServer(service.New(mgr))
	defer ts.Close()

	_, jr := postJob(t, ts, `{"source":{"circuit":"s386"},"config":{"seed":1}}`)
	pollDone(t, ts, jr.ID)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.PromContentType {
		t.Fatalf("metrics content type %q", ct)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE job_submitted counter",
		"job_submitted 1",
		"# TYPE http_latency_ms_submit histogram",
		`http_latency_ms_submit_bucket{le="+Inf"} 1`,
		"http_requests_submit_2xx 1",
		"# TYPE job_queue_wait_ms histogram",
		"job_run_ms_count 1",
		"# TYPE http_in_flight gauge",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// The scrape itself runs through the middleware: a second scrape must
	// see the first one's counter.
	resp2, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body2, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if !strings.Contains(string(body2), "http_requests_metrics_2xx 1") {
		t.Error("second scrape does not count the first")
	}
}

// TestHealthProbes: healthz is always 200; readyz flips to 503 once the
// manager drains.
func TestHealthProbes(t *testing.T) {
	mgr := job.NewManager(job.Options{Workers: 1})
	ts := httptest.NewServer(service.New(mgr))
	defer ts.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, string(body)
	}

	if code, body := get("/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("healthz %d %q", code, body)
	}
	if code, body := get("/readyz"); code != http.StatusOK || !strings.Contains(body, "ready") {
		t.Fatalf("readyz %d %q", code, body)
	}

	if err := mgr.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if code, body := get("/readyz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "draining") {
		t.Fatalf("drained readyz %d %q, want 503 draining", code, body)
	}
	// Liveness is not readiness: the process still answers.
	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Fatalf("drained healthz %d, want 200", code)
	}
}

// TestTraceEndpoint fetches a finished job's span forest in both formats
// and checks the conflict and bad-format edges.
func TestTraceEndpoint(t *testing.T) {
	mgr := job.NewManager(job.Options{Workers: 1})
	defer mgr.Shutdown(context.Background())
	ts := httptest.NewServer(service.New(mgr))
	defer ts.Close()

	_, jr := postJob(t, ts, `{"source":{"circuit":"s386"},"config":{"seed":1}}`)
	pollDone(t, ts, jr.ID)

	resp, err := http.Get(ts.URL + "/v1/jobs/" + jr.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	var tr struct {
		ID      string              `json:"id"`
		State   job.State           `json:"state"`
		Circuit string              `json:"circuit"`
		Spans   []*obs.Span         `json:"spans"`
		Metrics obs.MetricsSnapshot `json:"metrics"`
	}
	err = json.NewDecoder(resp.Body).Decode(&tr)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace status %d", resp.StatusCode)
	}
	if tr.ID != jr.ID || tr.State != job.StateDone || tr.Circuit != "s386" {
		t.Fatalf("trace identity %+v", tr)
	}
	if len(tr.Spans) == 0 {
		t.Fatal("trace has no spans")
	}
	var stages int
	for _, root := range tr.Spans {
		stages += len(root.Children)
	}
	if stages == 0 {
		t.Fatalf("trace roots carry no stage spans: %+v", tr.Spans)
	}
	if len(tr.Metrics.Counters) == 0 {
		t.Fatal("trace carries no metrics snapshot")
	}

	// Chrome trace-event format: must decode as the chrome://tracing shape.
	cresp, err := http.Get(ts.URL + "/v1/jobs/" + jr.ID + "/trace?format=chrome")
	if err != nil {
		t.Fatal(err)
	}
	var chrome struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	err = json.NewDecoder(cresp.Body).Decode(&chrome)
	cresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(chrome.TraceEvents) == 0 || chrome.DisplayTimeUnit != "ms" {
		t.Fatalf("chrome trace %d events, unit %q", len(chrome.TraceEvents), chrome.DisplayTimeUnit)
	}

	// Unknown format is a 400.
	bresp, err := http.Get(ts.URL + "/v1/jobs/" + jr.ID + "/trace?format=pprof")
	if err != nil {
		t.Fatal(err)
	}
	bresp.Body.Close()
	if bresp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad format status %d, want 400", bresp.StatusCode)
	}
}

// TestTraceBeforeTerminal: a running job has no trace yet — 409, like the
// report endpoint.
func TestTraceBeforeTerminal(t *testing.T) {
	release := make(chan struct{})
	mgr := job.NewManager(job.Options{Workers: 1,
		Run: func(ctx context.Context, r *job.PlanRequest, trace func(plan.StageEvent)) (*job.RunResult, error) {
			select {
			case <-release:
			case <-ctx.Done():
			}
			return &job.RunResult{Circuit: r.Source.Label()}, nil
		}})
	defer mgr.Shutdown(context.Background())
	defer close(release)
	ts := httptest.NewServer(service.New(mgr))
	defer ts.Close()

	_, jr := postJob(t, ts, `{"source":{"circuit":"s386"},"config":{"seed":1}}`)
	resp, err := http.Get(ts.URL + "/v1/jobs/" + jr.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("early trace status %d, want 409", resp.StatusCode)
	}
}

// TestSSEKeepalive subscribes to a job that is stalled inside its run
// function and expects ": ping" comments to flow while no events do.
func TestSSEKeepalive(t *testing.T) {
	release := make(chan struct{})
	mgr := job.NewManager(job.Options{Workers: 1,
		Run: func(ctx context.Context, r *job.PlanRequest, trace func(plan.StageEvent)) (*job.RunResult, error) {
			select {
			case <-release:
			case <-ctx.Done():
			}
			return &job.RunResult{Circuit: r.Source.Label()}, nil
		}})
	defer mgr.Shutdown(context.Background())
	defer close(release)
	ts := httptest.NewServer(service.New(mgr, service.WithSSEKeepalive(20*time.Millisecond)))
	defer ts.Close()

	_, jr := postJob(t, ts, `{"source":{"circuit":"s386"},"config":{"seed":1}}`)

	resp, err := http.Get(ts.URL + "/v1/jobs/" + jr.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	lines := make(chan string)
	go func() {
		defer close(lines)
		scanner := bufio.NewScanner(resp.Body)
		for scanner.Scan() {
			lines <- scanner.Text()
		}
	}()
	deadline := time.After(10 * time.Second)
	pings := 0
	for pings < 3 {
		select {
		case line, open := <-lines:
			if !open {
				t.Fatal("stream closed before any pings")
			}
			if line == ": ping" {
				pings++
			}
		case <-deadline:
			t.Fatalf("saw %d pings in 10s, want 3", pings)
		}
	}
}

// TestRequestLogging installs a JSON slog logger and checks the
// middleware writes one line per request with the route and job attrs.
func TestRequestLogging(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, &slog.HandlerOptions{Level: slog.LevelDebug}))
	mgr := job.NewManager(job.Options{Workers: 1, Logger: logger})
	defer mgr.Shutdown(context.Background())
	ts := httptest.NewServer(service.New(mgr, service.WithLogger(logger)))
	defer ts.Close()

	_, jr := postJob(t, ts, `{"source":{"circuit":"s386"},"config":{"seed":1}}`)
	pollDone(t, ts, jr.ID)

	var sawSubmit, sawGet, sawAccepted bool
	for _, raw := range strings.Split(buf.String(), "\n") {
		if raw == "" {
			continue
		}
		var line map[string]any
		if err := json.Unmarshal([]byte(raw), &line); err != nil {
			t.Fatalf("non-JSON log line %q: %v", raw, err)
		}
		switch line["msg"] {
		case "http request":
			switch line["route"] {
			case "submit":
				sawSubmit = true
				if line["status"] != float64(http.StatusAccepted) {
					t.Fatalf("submit logged status %v", line["status"])
				}
			case "get":
				sawGet = true
				if line["job"] != jr.ID {
					t.Fatalf("get logged job %v, want %s", line["job"], jr.ID)
				}
			}
		case "job accepted":
			sawAccepted = true
			if line["digest"] != jr.Digest {
				t.Fatalf("accept logged digest %v, want %s", line["digest"], jr.Digest)
			}
		}
	}
	if !sawSubmit || !sawGet || !sawAccepted {
		t.Fatalf("missing log lines: submit=%v get=%v accepted=%v in:\n%s",
			sawSubmit, sawGet, sawAccepted, buf.String())
	}
}
