package render

import (
	"encoding/xml"
	"strings"
	"testing"

	"lacret/internal/bench89"
	"lacret/internal/plan"
)

func planned(t *testing.T, ws float64) *plan.Result {
	t.Helper()
	nl, err := bench89.Generate(bench89.Params{
		Name: "rnd", Gates: 90, DFFs: 10, Inputs: 5, Outputs: 5,
		Depth: 8, MaxFanin: 3, Seed: 23, FeedbackDepth: 0.4,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := plan.Plan(nl, plan.Config{Seed: 23, FloorplanMoves: 2000, Whitespace: ws})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSVGWellFormed(t *testing.T) {
	res := planned(t, 0.15)
	svg := SVG(res, DefaultOptions())
	// Parse as XML: must be well-formed.
	dec := xml.NewDecoder(strings.NewReader(svg))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("SVG not well-formed: %v\n%s", err, svg[:min(len(svg), 500)])
		}
	}
	for _, want := range []string{"<svg", "rect", "blk0", "</svg>"} {
		if !strings.Contains(svg, want) {
			t.Fatalf("SVG missing %q", want)
		}
	}
}

func TestSVGShowsRoutesAndGrid(t *testing.T) {
	res := planned(t, 0.15)
	full := SVG(res, DefaultOptions())
	bare := SVG(res, Options{WidthPx: 400})
	if strings.Count(full, "<line") <= strings.Count(bare, "<line") {
		t.Fatal("routes/grid did not add lines")
	}
}

func TestSVGHighlightsViolations(t *testing.T) {
	res := planned(t, 0.03) // starved: violations likely
	if res.LAC.NFOA == 0 {
		t.Skip("no violations at this configuration")
	}
	svg := SVG(res, DefaultOptions())
	if !strings.Contains(svg, "#e33") {
		t.Fatal("violations not highlighted")
	}
}

func TestSVGDefaultWidth(t *testing.T) {
	res := planned(t, 0.15)
	svg := SVG(res, Options{})
	if !strings.Contains(svg, `width="800"`) {
		t.Fatal("default width not applied")
	}
}

func TestTileClasses(t *testing.T) {
	res := planned(t, 0.15)
	classes := TileClasses(res.Grid)
	if classes["soft"] == 0 || classes["free"] == 0 {
		t.Fatalf("classes = %v", classes)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
