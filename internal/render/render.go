// Package render draws a planning result as a standalone SVG: the chip
// outline, the floorplanned blocks, the tile grid, the routed inter-block
// trees, and the tiles whose flip-flop capacity is violated. It gives the
// planner's output the visual form of the paper's Figure 2 plus routing.
package render

import (
	"fmt"
	"strings"

	"lacret/internal/plan"
	"lacret/internal/tile"
)

// Options tunes the drawing.
type Options struct {
	// WidthPx is the target image width in pixels (default 800).
	WidthPx float64
	// ShowGrid draws tile boundaries (default true via DefaultOptions).
	ShowGrid bool
	// ShowRoutes draws the routed trees.
	ShowRoutes bool
	// HighlightViolations fills over-capacity tiles (from the LAC result).
	HighlightViolations bool
}

// DefaultOptions enables everything at 800px.
func DefaultOptions() Options {
	return Options{WidthPx: 800, ShowGrid: true, ShowRoutes: true, HighlightViolations: true}
}

// SVG renders the result.
func SVG(res *plan.Result, opt Options) string {
	if opt.WidthPx <= 0 {
		opt.WidthPx = 800
	}
	s := opt.WidthPx / res.Placement.ChipW
	h := res.Placement.ChipH * s
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.1f %.1f">`+"\n",
		opt.WidthPx, h, opt.WidthPx, h)
	// SVG y grows downward; flip so the floorplan's origin is bottom-left.
	flipY := func(y float64) float64 { return h - y*s }

	fmt.Fprintf(&b, `<rect x="0" y="0" width="%.1f" height="%.1f" fill="#fcfcf8" stroke="#333"/>`+"\n", opt.WidthPx, h)

	// Blocks.
	for i := range res.Placement.X {
		x := res.Placement.X[i] * s
		y := flipY(res.Placement.Y[i] + res.Placement.H[i])
		w := res.Placement.W[i] * s
		hh := res.Placement.H[i] * s
		fill := "#cfe3f7" // soft
		if res.Grid.SoftTile[i] < 0 {
			fill = "#d8d8d8" // hard
		}
		fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s" stroke="#345" stroke-width="1"/>`+"\n",
			x, y, w, hh, fill)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="%.1f" fill="#234">blk%d</text>`+"\n",
			x+3, y+12, 11.0, i)
	}

	// Violated tiles (LAC result).
	if opt.HighlightViolations && res.LAC != nil {
		for _, t := range res.LAC.Violated {
			drawCapTile(&b, res, t, s, flipY)
		}
	}

	// Routed trees: one polyline segment per tree edge between adjacent
	// tile centers.
	if opt.ShowRoutes {
		g := res.Grid
		for _, tr := range res.Routes {
			for _, e := range tr.Edges() {
				ax, ay := g.CellCenter(e[0])
				bx, by := g.CellCenter(e[1])
				fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#d60" stroke-width="0.8" stroke-opacity="0.6"/>`+"\n",
					ax*s, flipY(ay), bx*s, flipY(by))
			}
		}
	}

	// Tile grid.
	if opt.ShowGrid {
		g := res.Grid
		for r := 0; r <= g.Rows; r++ {
			y := flipY(float64(r) * g.TileH)
			fmt.Fprintf(&b, `<line x1="0" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#bbb" stroke-width="0.3"/>`+"\n",
				y, opt.WidthPx, y)
		}
		for c := 0; c <= g.Cols; c++ {
			x := float64(c) * g.TileW * s
			fmt.Fprintf(&b, `<line x1="%.1f" y1="0" x2="%.1f" y2="%.1f" stroke="#bbb" stroke-width="0.3"/>`+"\n",
				x, x, h)
		}
	}

	fmt.Fprintln(&b, `</svg>`)
	return b.String()
}

// drawCapTile shades a capacity tile: a grid cell, or the whole block for
// merged soft tiles.
func drawCapTile(b *strings.Builder, res *plan.Result, t int, s float64, flipY func(float64) float64) {
	g := res.Grid
	if t < g.NumCells() {
		cx, cy := g.CellCenter(t)
		x := (cx - g.TileW/2) * s
		y := flipY(cy + g.TileH/2)
		fmt.Fprintf(b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="#e33" fill-opacity="0.45"/>`+"\n",
			x, y, g.TileW*s, g.TileH*s)
		return
	}
	// Merged soft tile: find the block.
	for blk, st := range g.SoftTile {
		if st == t {
			x := res.Placement.X[blk] * s
			y := flipY(res.Placement.Y[blk] + res.Placement.H[blk])
			fmt.Fprintf(b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="#e33" fill-opacity="0.35"/>`+"\n",
				x, y, res.Placement.W[blk]*s, res.Placement.H[blk]*s)
			return
		}
	}
}

// TileClasses renders a legend-friendly summary of the grid composition.
func TileClasses(g *tile.Grid) map[string]int {
	out := map[string]int{}
	for _, c := range g.CellClass {
		out[c.String()]++
	}
	return out
}
