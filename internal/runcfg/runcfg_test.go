package runcfg

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestValidateEngineFlag(t *testing.T) {
	for _, ok := range []string{"", "auto", "dense", "lazy"} {
		if err := ValidateEngine(ok); err != nil {
			t.Errorf("%q rejected: %v", ok, err)
		}
	}
	for _, bad := range []string{"eager", "DENSE", "lazy ", "matrix"} {
		if err := ValidateEngine(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}

func TestLoadCircuitScaleTier(t *testing.T) {
	nl, err := LoadCircuit("", "s100k")
	if err != nil {
		t.Fatal(err)
	}
	if nl.Stats().Gates != 6000 {
		t.Fatalf("stats %+v", nl.Stats())
	}
}

func TestLoadCircuitCatalog(t *testing.T) {
	nl, err := LoadCircuit("", "s386")
	if err != nil {
		t.Fatal(err)
	}
	if nl.Stats().Gates != 159 {
		t.Fatalf("stats %+v", nl.Stats())
	}
}

func TestLoadCircuitBenchFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "c.bench")
	content := "INPUT(a)\nOUTPUT(g)\ng = NOT(a)\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	nl, err := LoadCircuit(path, "")
	if err != nil {
		t.Fatal(err)
	}
	if nl.Stats().Gates != 1 {
		t.Fatalf("stats %+v", nl.Stats())
	}
}

func TestLoadCircuitErrors(t *testing.T) {
	if _, err := LoadCircuit("", ""); err == nil {
		t.Fatal("empty args accepted")
	}
	if _, err := LoadCircuit("x.bench", "s386"); err == nil {
		t.Fatal("both args accepted")
	}
	if _, err := LoadCircuit("", "nosuch"); err == nil {
		t.Fatal("unknown circuit accepted")
	}
	if _, err := LoadCircuit("/nonexistent/file.bench", ""); err == nil {
		t.Fatal("missing file accepted")
	}
}

// TestParamsConfig pins the flag→request mapping the CLIs rely on: -budget
// becomes milliseconds, and the alpha tri-state (unset / explicit zero /
// explicit value) survives as the pointer sentinel.
func TestParamsConfig(t *testing.T) {
	p := Params{
		Blocks: 3, Whitespace: 0.2, Nmax: 7, MaxIters: 11,
		TclkSlack: 0.3, Tclk: 1.5, Seed: 42, Iterations: 2,
		Budget: 1500 * time.Millisecond, Engine: "lazy",
	}
	c := p.Config()
	if c.BudgetMS != 1500 {
		t.Fatalf("BudgetMS = %d, want 1500", c.BudgetMS)
	}
	if c.Alpha != nil {
		t.Fatalf("alpha set without AlphaSet: %v", *c.Alpha)
	}
	if c.Blocks != 3 || c.Nmax != 7 || c.MaxIters != 11 || c.Seed != 42 ||
		c.Iterations != 2 || c.ProbeEngine != "lazy" {
		t.Fatalf("config %+v", c)
	}

	p.AlphaSet = true // explicit -alpha 0 freezes the tile weights
	c = p.Config()
	if c.Alpha == nil || *c.Alpha != 0 {
		t.Fatalf("explicit zero alpha lost: %+v", c.Alpha)
	}
	pc := c.PlanConfig()
	if !pc.LAC.AlphaSet || pc.LAC.Alpha != 0 {
		t.Fatalf("plan config alpha %+v", pc.LAC)
	}

	p.Alpha = 0.35
	c = p.Config()
	if c.Alpha == nil || *c.Alpha != 0.35 {
		t.Fatalf("alpha = %v, want 0.35", c.Alpha)
	}
}

// TestParamsRequest checks the assembled request normalizes with the CLI
// defaults (whitespace 0.13, slack 0.2, nmax 5, auto engine).
func TestParamsRequest(t *testing.T) {
	src, err := Source("", "s386")
	if err != nil {
		t.Fatal(err)
	}
	req := Params{Seed: 1}.Request(src)
	req.Normalize()
	if err := req.Validate(); err != nil {
		t.Fatal(err)
	}
	cfg := req.PlanConfig()
	if cfg.Whitespace != 0.13 || cfg.TclkSlack != 0.2 || cfg.LAC.Nmax != 5 {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
	if cfg.ProbeEngine != "auto" {
		t.Fatalf("engine %q", cfg.ProbeEngine)
	}
}

func TestSourceInlinesBenchFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "c.bench")
	content := "INPUT(a)\nOUTPUT(g)\ng = NOT(a)\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	src, err := Source(path, "")
	if err != nil {
		t.Fatal(err)
	}
	if src.Bench != content {
		t.Fatalf("bench not inlined: %q", src.Bench)
	}
	if src.Name != path {
		t.Fatalf("name %q", src.Name)
	}
}
