// Package runcfg is the shared entry-point wiring: the flag→request
// mapping, circuit loading, and observability-sink plumbing that
// cmd/lacplan, cmd/table1, and cmd/lacretd previously each carried their
// own copy of. Every CLI builds a job.PlanRequest (or its ReqConfig)
// through here, so the daemon and the CLIs resolve configuration through
// one code path.
package runcfg

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"lacret/internal/job"
	"lacret/internal/netlist"
	"lacret/internal/obs"
	"lacret/internal/plan"
)

// ValidateEngine rejects bad -probe-engine flag values before any planning
// work starts (plan.NewState would catch them too, but only per pass).
func ValidateEngine(s string) error {
	switch s {
	case "", plan.ProbeEngineAuto, plan.ProbeEngineDense, plan.ProbeEngineLazy:
		return nil
	}
	return fmt.Errorf("unknown -probe-engine %q (want dense, lazy, or auto)", s)
}

// Source builds a job.Source from the -bench/-circuit flag pair: exactly
// one must be set. A .bench file is inlined into the source, so the
// resulting request is self-contained (and digestable) wherever it runs.
func Source(benchPath, circuit string) (job.Source, error) {
	switch {
	case benchPath != "" && circuit != "":
		return job.Source{}, fmt.Errorf("use either -bench or -circuit, not both")
	case benchPath != "":
		data, err := os.ReadFile(benchPath)
		if err != nil {
			return job.Source{}, err
		}
		return job.Source{Bench: string(data), Name: benchPath}, nil
	case circuit != "":
		return job.Source{Circuit: circuit}, nil
	default:
		return job.Source{}, fmt.Errorf("need -bench FILE or -circuit NAME")
	}
}

// LoadCircuit resolves the -bench/-circuit flag pair to a netlist — the
// catalog circuit by name, or the parsed .bench file.
func LoadCircuit(benchPath, circuit string) (*netlist.Netlist, error) {
	src, err := Source(benchPath, circuit)
	if err != nil {
		return nil, err
	}
	nl, err := src.Netlist()
	if err != nil {
		return nil, err
	}
	return nl, nil
}

// Params mirrors the planning flags the entry points share. Zero values
// mean "defaulted" with the same semantics the CLIs always had: the
// request normalization fills whitespace 0.13, slack 0.2, nmax 5,
// iterations 1, and the auto probe engine.
type Params struct {
	Blocks     int
	Whitespace float64
	// Alpha is meaningful only when AlphaSet; an explicit 0 freezes the
	// tile weights (the -alpha 0 semantics the flag tests pin).
	Alpha      float64
	AlphaSet   bool
	Nmax       int
	MaxIters   int
	TclkSlack  float64
	Tclk       float64
	Seed       int64
	Iterations int
	Budget     time.Duration
	Engine     string
}

// Config maps the flag values onto the canonical request configuration.
func (p Params) Config() job.ReqConfig {
	c := job.ReqConfig{
		Blocks:      p.Blocks,
		Whitespace:  p.Whitespace,
		Nmax:        p.Nmax,
		MaxIters:    p.MaxIters,
		TclkSlack:   p.TclkSlack,
		Tclk:        p.Tclk,
		Seed:        p.Seed,
		Iterations:  p.Iterations,
		BudgetMS:    p.Budget.Milliseconds(),
		ProbeEngine: p.Engine,
	}
	if p.AlphaSet {
		a := p.Alpha
		c.Alpha = &a
	}
	return c
}

// Request assembles the canonical plan request for a source.
func (p Params) Request(src job.Source) job.PlanRequest {
	return job.PlanRequest{Source: src, Config: p.Config()}
}

// Obs bundles a CLI run's observability wiring: the recorder feeding the
// report/trace sinks and the optional live debug listener.
type Obs struct {
	// Recorder is non-nil when any sink was requested; install it with
	// obs.NewContext before planning.
	Recorder *obs.Recorder
	// Debug is the -debug-addr listener, nil when none was requested.
	Debug *obs.DebugServer
}

// StartObs engages the recorder when any sink is requested (a report or
// trace output path, or the debug address) and starts the debug listener
// when debugAddr is non-empty. Without any sink the returned Obs is fully
// disabled: a nil recorder keeps every instrumented path a zero-alloc
// no-op.
func StartObs(debugAddr string, sinks ...string) (*Obs, error) {
	want := debugAddr != ""
	for _, s := range sinks {
		if s != "" {
			want = true
		}
	}
	if !want {
		return &Obs{}, nil
	}
	o := &Obs{Recorder: obs.NewRecorder()}
	if debugAddr != "" {
		ds, err := obs.StartDebugServer(debugAddr, o.Recorder.Registry())
		if err != nil {
			return nil, err
		}
		o.Debug = ds
	}
	return o, nil
}

// Enabled reports whether a recorder is engaged.
func (o *Obs) Enabled() bool { return o != nil && o.Recorder != nil }

// Close shuts the debug listener down (no-op without one).
func (o *Obs) Close() {
	if o != nil && o.Debug != nil {
		_ = o.Debug.Close()
	}
}

// WriteReport encodes the run report and writes it to path.
func WriteReport(path string, rep *obs.Report) error {
	data, err := rep.Encode()
	if err != nil {
		return fmt.Errorf("report: %v", err)
	}
	return os.WriteFile(path, data, 0o644)
}

// WriteReportDir writes one report per circuit into dir (table1's layout),
// creating the directory as needed.
func WriteReportDir(dir string, reps map[string]*obs.Report) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for circuit, rep := range reps {
		if err := WriteReport(filepath.Join(dir, circuit+".json"), rep); err != nil {
			return fmt.Errorf("%s: %v", circuit, err)
		}
	}
	return nil
}

// WriteTrace writes a Chrome trace-event file of the given tracks to path.
func WriteTrace(path string, tracks []obs.TraceTrack) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := obs.WriteChromeTrace(f, tracks); err != nil {
		return fmt.Errorf("trace: %v", err)
	}
	return nil
}
