package runcfg

import "testing"

func TestParseBytes(t *testing.T) {
	good := []struct {
		in   string
		want int64
	}{
		{"", 0},
		{"0", 0},
		{"123", 123},
		{"123B", 123},
		{"1KB", 1000},
		{"1k", 1024},
		{"1KiB", 1024},
		{"512MiB", 512 << 20},
		{"512mib", 512 << 20},
		{"512Mi", 512 << 20},
		{"2G", 2 << 30},
		{"2GB", 2_000_000_000},
		{"1.5GiB", 3 << 29},
		{" 64 MiB ", 64 << 20},
		{"1TiB", 1 << 40},
	}
	for _, c := range good {
		got, err := ParseBytes(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseBytes(%q) = %d, %v; want %d", c.in, got, err, c.want)
		}
	}
	for _, in := range []string{"x", "12XB", "-1MiB", "MiB", "9999999999999GiB", "12 34"} {
		if got, err := ParseBytes(in); err == nil {
			t.Errorf("ParseBytes(%q) = %d, want error", in, got)
		}
	}
}
