package runcfg

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// NewLogger builds a process logger from the CLI's -log-level and
// -log-format flag values. Level is one of debug, info, warn, error
// (empty = info); format is text or json (empty = text). The daemon logs
// to stderr in text for a human watching a terminal and in json for a
// collector scraping the stream.
func NewLogger(w io.Writer, level, format string) (*slog.Logger, error) {
	var lvl slog.Level
	switch strings.ToLower(level) {
	case "", "info":
		lvl = slog.LevelInfo
	case "debug":
		lvl = slog.LevelDebug
	case "warn", "warning":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown log level %q (want debug, info, warn, or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch strings.ToLower(format) {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("unknown log format %q (want text or json)", format)
	}
}
