package runcfg

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// ParseBytes parses a human-readable byte size for the -max-mem style
// flags: a number with an optional unit suffix. Decimal units (KB, MB,
// GB, TB) are powers of 1000; binary units (KiB, MiB, GiB, TiB — and the
// bare K, M, G, T shorthands) are powers of 1024. Matching is
// case-insensitive and a trailing "B" is optional, so "512MiB", "512mib",
// and "512Mi" agree. A bare number is bytes. The empty string is 0 (flag
// unset).
func ParseBytes(s string) (int64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, nil
	}
	num := s
	unit := ""
	for i, r := range s {
		if (r < '0' || r > '9') && r != '.' && r != '-' && r != '+' {
			num, unit = s[:i], s[i:]
			break
		}
	}
	val, err := strconv.ParseFloat(num, 64)
	if err != nil {
		return 0, fmt.Errorf("bad byte size %q", s)
	}
	if val < 0 {
		return 0, fmt.Errorf("negative byte size %q", s)
	}
	var mult float64
	switch strings.ToLower(strings.TrimSpace(unit)) {
	case "", "b":
		mult = 1
	case "kb":
		mult = 1e3
	case "mb":
		mult = 1e6
	case "gb":
		mult = 1e9
	case "tb":
		mult = 1e12
	case "k", "ki", "kib":
		mult = 1 << 10
	case "m", "mi", "mib":
		mult = 1 << 20
	case "g", "gi", "gib":
		mult = 1 << 30
	case "t", "ti", "tib":
		mult = 1 << 40
	default:
		return 0, fmt.Errorf("bad byte unit %q in %q", unit, s)
	}
	b := val * mult
	if b > math.MaxInt64 {
		return 0, fmt.Errorf("byte size %q overflows", s)
	}
	return int64(b), nil
}
