package runcfg

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestNewLoggerFormats(t *testing.T) {
	var buf bytes.Buffer
	log, err := NewLogger(&buf, "", "")
	if err != nil {
		t.Fatal(err)
	}
	log.Info("hello", "k", "v")
	if got := buf.String(); !strings.Contains(got, "msg=hello") || !strings.Contains(got, "k=v") {
		t.Fatalf("text line %q", got)
	}

	buf.Reset()
	log, err = NewLogger(&buf, "warn", "json")
	if err != nil {
		t.Fatal(err)
	}
	log.Info("dropped")
	log.Warn("kept", "k", "v")
	var line map[string]any
	if err := json.Unmarshal(buf.Bytes(), &line); err != nil {
		t.Fatalf("json line %q: %v", buf.String(), err)
	}
	if line["msg"] != "kept" || line["k"] != "v" {
		t.Fatalf("json line %v", line)
	}
	if strings.Contains(buf.String(), "dropped") {
		t.Fatal("warn level kept an info line")
	}
}

func TestNewLoggerErrors(t *testing.T) {
	if _, err := NewLogger(&bytes.Buffer{}, "loud", ""); err == nil {
		t.Fatal("bad level accepted")
	}
	if _, err := NewLogger(&bytes.Buffer{}, "", "xml"); err == nil {
		t.Fatal("bad format accepted")
	}
}
