package experiments

import (
	"strings"
	"testing"
	"time"
)

func TestCatalogNames(t *testing.T) {
	names := CatalogNames()
	if len(names) != 10 || names[0] != "s386" || names[9] != "s5378" {
		t.Fatalf("names = %v", names)
	}
}

func TestTable1RowUnknownCircuit(t *testing.T) {
	if _, err := Table1Row("nosuch", DefaultConfig()); err == nil {
		t.Fatal("unknown circuit accepted")
	}
}

func TestTable1RowSmallCircuit(t *testing.T) {
	if testing.Short() {
		t.Skip("planning run in short mode")
	}
	row, err := Table1Row("s386", DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if row.Circuit != "s386" {
		t.Fatalf("row = %+v", row)
	}
	if row.TclkNS <= 0 || row.TinitNS < row.TclkNS {
		t.Fatalf("periods: Tclk=%g Tinit=%g", row.TclkNS, row.TinitNS)
	}
	if row.MinArea.NF <= 0 || row.LAC.NF <= 0 {
		t.Fatalf("flip-flop counts: %+v", row)
	}
	if row.LAC.NFOA > row.MinArea.NFOA {
		t.Fatal("LAC worse than min-area")
	}
	if row.MinArea.NFOA == 0 && row.DecreasePct != -1 {
		t.Fatal("expected N/A decrease when min-area is clean")
	}
}

func TestFormatTable(t *testing.T) {
	rows := []Row{
		{
			Circuit: "sX", TclkNS: 2.5, TinitNS: 5.0,
			MinArea: Side{NFOA: 10, NF: 100, NFN: 20, Texec: time.Second},
			LAC:     Side{NFOA: 2, NF: 102, NFN: 25, NWR: 4, Texec: 2 * time.Second},
			NFOA2:   0, DecreasePct: 80,
		},
		{
			Circuit: "sY", TclkNS: 1, TinitNS: 2,
			MinArea:     Side{NFOA: 0, NF: 50, NFN: 5, Texec: time.Second},
			LAC:         Side{NFOA: 0, NF: 50, NFN: 5, NWR: 1, Texec: time.Second},
			NFOA2:       -1,
			DecreasePct: -1,
		},
		{
			Circuit: "sZ", TclkNS: 1, TinitNS: 2,
			MinArea:       Side{NFOA: 5, NF: 50, NFN: 5, Texec: time.Second},
			LAC:           Side{NFOA: 3, NF: 50, NFN: 5, NWR: 2, Texec: time.Second},
			NFOA2:         -1,
			SecondIterErr: "plan: target period 1 infeasible",
			DecreasePct:   40,
		},
	}
	out := FormatTable(rows, 60)
	for _, want := range []string{"sX", "2 (0)", "N/A", "80%", "(inf.)", "Average 60%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.LAC.Alpha != 0.2 || cfg.TclkSlack != 0.2 {
		t.Fatalf("cfg = %+v", cfg)
	}
	if cfg.Whitespace <= 0 || cfg.Whitespace >= 1 {
		t.Fatalf("whitespace %g", cfg.Whitespace)
	}
}

func TestAlphaSweepSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("planning run in short mode")
	}
	pts, err := AlphaSweep("s386", DefaultConfig(), []float64{0.4, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 || pts[0].Alpha != 0.1 || pts[1].Alpha != 0.4 {
		t.Fatalf("pts = %+v", pts)
	}
}

func TestAlphaSweepUnknown(t *testing.T) {
	if _, err := AlphaSweep("nosuch", DefaultConfig(), []float64{0.2}); err == nil {
		t.Fatal("unknown circuit accepted")
	}
}

func TestFormatMarkdown(t *testing.T) {
	rows := []Row{{
		Circuit: "sM", TclkNS: 2, TinitNS: 4,
		MinArea:     Side{NFOA: 10, NF: 100, NFN: 20, Texec: time.Second},
		LAC:         Side{NFOA: 0, NF: 100, NFN: 25, NWR: 3, Texec: time.Second},
		NFOA2:       -1,
		DecreasePct: 100,
	}}
	out := FormatMarkdown(rows, 100)
	for _, want := range []string{"| sM |", "100%", "Average N_FOA decrease: 100%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("markdown missing %q:\n%s", want, out)
		}
	}
}

func TestTable1SingleCircuit(t *testing.T) {
	if testing.Short() {
		t.Skip("planning run in short mode")
	}
	rows, avg, err := Table1(DefaultConfig(), []string{"s386"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Circuit != "s386" {
		t.Fatalf("rows = %+v", rows)
	}
	if rows[0].DecreasePct < 0 && avg != 0 {
		t.Fatalf("avg %g with no violating rows", avg)
	}
	out := FormatTable(rows, avg)
	if !strings.Contains(out, "s386") {
		t.Fatal("table missing circuit")
	}
}
